module dlion

go 1.22
