// Package dlion is a from-scratch Go reproduction of "DLion: Decentralized
// Distributed Deep Learning in Micro-Clouds" (Hong & Chandra, HPDC 2021).
//
// It provides:
//
//   - the DLion worker with the paper's three techniques — weighted dynamic
//     batching, per-link prioritized gradient exchange, and direct knowledge
//     transfer — plus the four comparison systems (Baseline, Ako, Gaia, Hop)
//     expressed as configurations of the same worker;
//   - every substrate the original prototype borrowed: a neural-network
//     engine (replacing TensorFlow), synthetic datasets (replacing
//     CIFAR10/ImageNet), a message broker (replacing Redis), and a
//     discrete-event micro-cloud simulator (replacing the physical CPU/GPU
//     clusters and their stress/tc emulation);
//   - the full evaluation harness regenerating the paper's tables and
//     figures (see EXPERIMENTS.md and cmd/dlion-bench).
//
// Quick start:
//
//	res, err := dlion.Quick("dlion", "Hetero SYS A", 300)
//	if err != nil { ... }
//	fmt.Printf("accuracy after 300 virtual seconds: %.3f\n",
//	    res.Timeline.FinalMean())
//
// The package is a façade over the internal packages; the types below are
// aliases so downstream code composes with the full API surface.
package dlion

import (
	"dlion/internal/cluster"
	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/env"
	"dlion/internal/metrics"
	"dlion/internal/nn"
	"dlion/internal/systems"
)

// Core configuration and result types.
type (
	// SystemConfig selects and parameterizes a distributed-DL system (which
	// gradients to exchange, how to synchronize, DKT, dynamic batching).
	SystemConfig = core.Config
	// ExperimentConfig describes one simulated experiment: system, model,
	// dataset, cluster resources, and horizon.
	ExperimentConfig = cluster.Config
	// Result is everything an experiment run produced.
	Result = cluster.Result
	// Timeline is the periodic accuracy evaluation series.
	Timeline = metrics.Timeline
	// Environment is an instantiated Table 3 micro-cloud.
	Environment = env.Env
	// ModelSpec describes a model to build (Cipher or MobileNetLite).
	ModelSpec = nn.Spec
	// DataConfig describes a synthetic dataset.
	DataConfig = data.Config
	// Dataset is an in-memory labeled image dataset.
	Dataset = data.Dataset
	// Shard is one worker's partition of a dataset.
	Shard = data.Shard
	// SyncConfig, DKTConfig and BatchConfig parameterize SystemConfig.
	SyncConfig = core.SyncConfig
	// DKTConfig parameterizes direct knowledge transfer.
	DKTConfig = core.DKTConfig
	// BatchConfig parameterizes weighted dynamic batching.
	BatchConfig = core.BatchConfig
)

// Synchronization strategies re-exported from internal/core.
const (
	SyncAsync   = core.SyncAsync
	SyncFull    = core.SyncFull
	SyncBounded = core.SyncBounded
)

// Systems returns the five evaluated system presets with the paper's
// settings: Baseline, Ako, Gaia, Hop, DLion.
func Systems() []SystemConfig { return systems.All() }

// System resolves a system preset by name ("dlion", "baseline", "ako",
// "gaia", "hop", plus the ablation variants "dlion-no-wu",
// "dlion-no-dbwu", "max10").
func System(name string) (SystemConfig, error) { return systems.ByName(name) }

// DLion returns the full DLion preset (all three techniques enabled).
func DLion() SystemConfig { return systems.DLion() }

// EnvironmentNames lists the Table 3 environments.
func EnvironmentNames() []string { return env.Names() }

// GetEnvironment instantiates a Table 3 environment by name.
func GetEnvironment(name string, seed uint64) (*Environment, error) {
	return env.Get(name, seed)
}

// CipherDataConfig returns the synthetic CIFAR10 substitute scaled by the
// given factor (1.0 = the paper's 60K/10K).
func CipherDataConfig(scale float64, seed uint64) DataConfig {
	return data.CIFAR10Config(scale, seed)
}

// ImageNetDataConfig returns the synthetic ImageNet-100 substitute.
func ImageNetDataConfig(scale float64, seed uint64) DataConfig {
	return data.ImageNet100Config(scale, seed)
}

// CipherSpec returns the paper's Cipher CNN model spec for the given input
// geometry (5 MB wire size).
func CipherSpec(channels, h, w, classes int, seed uint64) ModelSpec {
	return nn.CipherSpec(channels, h, w, classes, seed)
}

// MobileNetLiteSpec returns the reduced MobileNet spec (17 MB wire size).
func MobileNetLiteSpec(channels, h, w, classes int, seed uint64) ModelSpec {
	return nn.MobileNetLiteSpec(channels, h, w, classes, seed)
}

// Run executes one experiment on the discrete-event simulator.
func Run(cfg ExperimentConfig) (*Result, error) { return cluster.Run(cfg) }

// dataGenerate is facade glue (see GenerateData in facade.go).
func dataGenerate(cfg DataConfig) (*Dataset, *Dataset, error) { return data.Generate(cfg) }

// PartitionData splits a dataset into n disjoint worker shards.
func PartitionData(ds *Dataset, n int, seed uint64) ([]*Shard, error) {
	return data.Partition(ds, n, seed)
}

// Quick runs a named system in a named Table 3 environment for the given
// virtual-seconds horizon on a scaled-down synthetic CIFAR10, with
// harness defaults chosen to finish in seconds of wall time.
func Quick(system, environment string, horizon float64) (*Result, error) {
	sys, err := systems.ByName(system)
	if err != nil {
		return nil, err
	}
	e, err := env.Get(environment, 7)
	if err != nil {
		return nil, err
	}
	dc := data.CIFAR10Config(0.05, 11)
	model := nn.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0)
	if e.GPU {
		dc = data.ImageNet100Config(0.002, 11)
		model = nn.MobileNetLiteSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0)
	}
	return cluster.Run(cluster.Config{
		System:   sys,
		Model:    model,
		Data:     dc,
		N:        e.N,
		Computes: e.Computes,
		Network:  e.Network,
		Horizon:  horizon,
		Seed:     3,
	})
}
