# Tier-1 gate: everything a change must pass before merging.
# The -race pass covers the concurrency-heavy packages (TCP broker,
# reconnecting client, real-mode runtime, serving) plus the nn
# checkpoint-vs-Forward concurrency tests; running it repo-wide would
# multiply simulation test time ~20x for no extra coverage.
.PHONY: check build vet test race fuzz-smoke conformance bench bench-serve bench-sim chaos e2e-jobs audit-gate

check: build vet test race fuzz-smoke

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/queue/... ./internal/realtime/... ./internal/serve/... ./internal/jobs/...
	go test -race -run 'Concurrent' ./internal/nn/... ./internal/obs/...
	go test -race ./internal/simclock/...
	go test -race -run 'ParallelEval' ./internal/cluster/...

# Short fuzz pass over the wire decoder, framer, lineage-manifest codecs,
# and the calendar-queue-vs-heap scheduler oracle: catches panics,
# canonicalization regressions, and event-ordering divergence without the
# cost of a long campaign. The committed corpus under
# internal/wire/testdata/fuzz seeds the wire targets.
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzDecode -fuzztime=10s ./internal/wire
	go test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=10s ./internal/wire
	go test -run='^$$' -fuzz=FuzzManifestDecode -fuzztime=10s ./internal/wire
	go test -run='^$$' -fuzz=FuzzCalendarVsHeap -fuzztime=10s ./internal/simclock

# Conformance harness (see TESTING.md): gradcheck on every nn layer,
# sim<->realtime weight equivalence, and the golden convergence gates, all
# under the race detector. Regenerate snapshots deliberately with
#   go test ./internal/testkit -run Golden -update-golden
conformance:
	go test -race -count=1 ./internal/testkit/...

# Kernel microbenchmarks, emitted as a BENCH JSON report (see METRICS.md).
# The committed BENCH_kernels.json doubles as the baseline: benchfmt reads it
# before overwriting, prints per-benchmark deltas, and BENCH_REGRESS (a
# percentage, empty = off) turns the comparison into a hard gate.
bench:
	go test -run='^$$' -bench=. -benchmem \
		./internal/tensor/... ./internal/nn/... ./internal/grad/... ./internal/wire/... \
		| go run ./cmd/dlion-benchfmt -out BENCH_kernels.json \
			-baseline BENCH_kernels.json -regress '$(or $(BENCH_REGRESS),0)'

# Serving load benchmark: batch=1 vs dynamic micro-batching vs overload
# shedding, emitted as BENCH_serve.json (see EXPERIMENTS.md).
bench-serve:
	go run ./cmd/dlion-bench -serve -json BENCH_serve.json

# DES throughput: events per wall second at 6/32/128 workers (flat mesh,
# with and without elastic churn) and 256/512/1024 workers (4-cloud
# hierarchical federations), emitted as BENCH_sim.json. The committed
# report is the baseline, like BENCH_kernels.json. For profiling one
# workload, use `go run ./cmd/dlion-bench -sim -cpuprofile sim.pprof`.
bench-sim:
	go test -run='^$$' -bench=SimEvents -benchtime=1x -timeout 60m ./internal/cluster \
		| go run ./cmd/dlion-benchfmt -name sim -out BENCH_sim.json \
			-baseline BENCH_sim.json -regress '$(or $(BENCH_REGRESS),0)'

# Control-plane end-to-end gate (see TESTING.md): one broker, two
# concurrent jobs with different sync strategies trained to completion over
# the REST API, quota rejection, and store persistence — under -race.
e2e-jobs:
	go test -race -count=1 -run 'TestE2E' ./internal/jobs

# Checkpoint-lineage audit gate (see TESTING.md): a seeded two-worker
# ordered-apply training segment is checkpointed with a chained manifest,
# replayed on both substrates by dlion-audit, and the published digest must
# match bit-exactly — and the built-in forgeries (one mutated weight value,
# one flipped parent-digest bit) must both be reported as verification
# failures. Exits nonzero on any divergence.
audit-gate:
	go run ./cmd/dlion-audit -self-test

# Churn soak for the scheduled CI job: the sim churn scenarios and the
# membership protocol tests, repeated under the race detector. -count=3
# re-runs catch schedule-dependent flakes a single pass would miss.
chaos:
	go test -race -count=3 -run 'Membership|Churn|Join|Leave|Quorum|Recheck|Elastic' \
		./internal/core/... ./internal/cluster/... ./internal/realtime/... ./internal/testkit/...
