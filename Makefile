# Tier-1 gate: everything a change must pass before merging.
# The -race pass covers the concurrency-heavy packages (TCP broker,
# reconnecting client, real-mode runtime); running it repo-wide would
# multiply simulation test time ~20x for no extra coverage.
.PHONY: check build vet test race bench

check: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/queue/... ./internal/realtime/...

# Kernel microbenchmarks, emitted as a BENCH JSON report (see METRICS.md).
bench:
	go test -run='^$$' -bench=. -benchmem \
		./internal/tensor/... ./internal/nn/... ./internal/wire/... \
		| go run ./cmd/dlion-benchfmt -out BENCH_kernels.json
