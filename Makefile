# Tier-1 gate: everything a change must pass before merging.
# The -race pass covers the concurrency-heavy packages (TCP broker,
# reconnecting client, real-mode runtime); running it repo-wide would
# multiply simulation test time ~20x for no extra coverage.
.PHONY: check build vet test race

check: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/queue/... ./internal/realtime/...
