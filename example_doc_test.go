package dlion_test

// Godoc examples for the public API. These have no "Output:" comments, so
// `go test` compiles them (keeping the documentation honest) without
// running multi-second simulations on every test invocation.

import (
	"fmt"
	"log"

	"dlion"
)

// ExampleQuick shows the one-liner entry point: a named system in a named
// Table 3 environment.
func ExampleQuick() {
	res, err := dlion.Quick("dlion", "Hetero SYS A", 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final accuracy: %.3f\n", res.Timeline.FinalMean())
}

// ExampleRun shows a fully custom experiment: explicit system, model,
// dataset, and cluster resources.
func ExampleRun() {
	sys, _ := dlion.System("dlion")
	env, _ := dlion.GetEnvironment("Hetero SYS B", 7)
	dc := dlion.CipherDataConfig(0.05, 11)
	model := dlion.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0)

	res, err := dlion.Run(dlion.ExperimentConfig{
		System: sys, Model: model, Data: dc,
		N: env.N, Computes: env.Computes, Network: env.Network,
		Horizon: 600, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Timeline {
		fmt.Printf("t=%.0f acc=%.3f\n", p.T, p.Mean)
	}
}

// ExampleCustomEnvironment builds a bespoke micro-cloud: two fast workers
// on a fat LAN, four slow ones behind a 20 Mbps WAN that degrades halfway
// through training.
func ExampleCustomEnvironment() {
	caps := []dlion.Schedule{
		dlion.ConstantSchedule(24), dlion.ConstantSchedule(24),
		dlion.ConstantSchedule(6), dlion.ConstantSchedule(6),
		dlion.ConstantSchedule(6), dlion.ConstantSchedule(6),
	}
	egress := make([]dlion.Schedule, 6)
	for i := range egress {
		if i < 2 {
			egress[i] = dlion.ConstantSchedule(dlion.LANMbps)
		} else {
			egress[i] = dlion.StepSchedule(0, 20, 300, 10) // degrades at t=300
		}
	}
	env := dlion.CustomEnvironment("bespoke",
		caps, dlion.EgressNetwork(egress, dlion.WANLatency), 7)
	fmt.Println(env.Name, env.N)
}

// ExampleModel_Checkpoint round-trips a model through its binary
// checkpoint, the periodic start/resume workflow of the paper's §1.
func ExampleModel_Checkpoint() {
	spec := dlion.CipherSpec(1, 16, 16, 10, 42)
	trained := spec.Build()
	// ... train ...
	blob := trained.Checkpoint()

	resumed := spec.Build()
	if err := resumed.Restore(blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d bytes\n", len(blob))
}
