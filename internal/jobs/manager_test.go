package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dlion/internal/obs"
	"dlion/internal/queue"
)

// testManager builds a manager over a fresh in-process broker with fast
// supervision, sized for tiny test jobs.
func testManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	b := queue.NewBroker()
	t.Cleanup(func() { b.Close() })
	cfg.Broker = b
	if cfg.Poll == 0 {
		cfg.Poll = 10 * time.Millisecond
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(m.Close)
	return m
}

// tinySpec is a job small enough to finish in well under a second.
func tinySpec(system string) Spec {
	return Spec{System: system, Workers: 2, MaxIters: 3, Scale: 0.001, LBS: 4}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State, timeout time.Duration) *Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, j.State, j.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s after %v, want %s", id, j.State, timeout, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	m := testManager(t, Config{})
	j, err := m.Submit(tinySpec("baseline"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitState(t, m, j.ID, StateCompleted, 30*time.Second)

	if done.FinalAcc <= 0 {
		t.Errorf("final accuracy %g, want > 0", done.FinalAcc)
	}
	if len(done.Iters) != 2 {
		t.Fatalf("iters %v, want 2 entries", done.Iters)
	}
	for i, it := range done.Iters {
		if it < done.Spec.MaxIters {
			t.Errorf("worker %d stopped at iter %d, want >= %d", i, it, done.Spec.MaxIters)
		}
	}
	if len(done.Workers) != 2 {
		t.Fatalf("reports %d, want 2", len(done.Workers))
	}
	for _, rep := range done.Workers {
		if rep.Job != j.ID {
			t.Errorf("report for worker %d labelled %q, want %q", rep.ID, rep.Job, j.ID)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	m := testManager(t, Config{})
	bad := []Spec{
		{System: "", Workers: 2, MaxIters: 3},
		{System: "no-such-system", Workers: 2, MaxIters: 3},
		{System: "baseline", Workers: 0, MaxIters: 3},
		{System: "baseline", Workers: 2, MaxIters: 0},
		{System: "baseline", Workers: 2, MaxIters: 3, Quant: "i4"},
		{System: "baseline", Workers: 2, MaxIters: 3, Tenant: "a b"},
		{System: "baseline", Workers: 4, Slots: 2, MaxIters: 3},
	}
	for _, s := range bad {
		if _, err := m.Submit(s); err == nil {
			t.Errorf("Submit(%+v) accepted, want validation error", s)
		}
	}
}

func TestTenantQuota(t *testing.T) {
	// MaxConcurrent 1 keeps the second job queued (non-terminal), so the
	// third submission must trip the quota of 2.
	m := testManager(t, Config{MaxConcurrent: 1, TenantQuota: 2})
	if _, err := m.Submit(tinySpec("baseline")); err != nil {
		t.Fatalf("job 1: %v", err)
	}
	if _, err := m.Submit(tinySpec("baseline")); err != nil {
		t.Fatalf("job 2: %v", err)
	}
	_, err := m.Submit(tinySpec("baseline"))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("job 3 error %v, want ErrQuotaExceeded", err)
	}
	// A different tenant is unaffected.
	other := tinySpec("baseline")
	other.Tenant = "team-b"
	if _, err := m.Submit(other); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

func TestQueueFull(t *testing.T) {
	m := testManager(t, Config{MaxConcurrent: 1, QueueDepth: 1, TenantQuota: 64})
	// One running (eventually), one queued; queue depth 1 is then full once
	// both submissions landed in it. Depth-1 queue: the third-ish submit in
	// quick succession must see a full queue before the scheduler drains it.
	var sawFull bool
	for i := 0; i < 8; i++ {
		_, err := m.Submit(tinySpec("baseline"))
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if !sawFull {
		t.Fatal("never observed ErrQueueFull with QueueDepth=1")
	}
}

func TestHaltQueuedJob(t *testing.T) {
	m := testManager(t, Config{MaxConcurrent: 1, TenantQuota: 8})
	first, err := m.Submit(tinySpec("baseline"))
	if err != nil {
		t.Fatalf("job 1: %v", err)
	}
	second, err := m.Submit(tinySpec("baseline"))
	if err != nil {
		t.Fatalf("job 2: %v", err)
	}
	// The second job waits behind the first; halting it while queued is
	// immediate.
	j, err := m.Halt(second.ID)
	if err != nil {
		t.Fatalf("Halt: %v", err)
	}
	if j.State != StateHalted {
		t.Fatalf("state %s, want halted", j.State)
	}
	// Halting a terminal job is a conflict.
	if _, err := m.Halt(second.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("second halt error %v, want ErrTerminal", err)
	}
	// The first still completes.
	waitState(t, m, first.ID, StateCompleted, 30*time.Second)
}

func TestHaltTrainingJob(t *testing.T) {
	m := testManager(t, Config{})
	spec := tinySpec("baseline")
	spec.MaxIters = 50_000 // far beyond what the test window allows
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, j.ID, StateTraining, 30*time.Second)
	if _, err := m.Halt(j.ID); err != nil {
		t.Fatalf("Halt: %v", err)
	}
	got := waitState(t, m, j.ID, StateHalted, 10*time.Second)
	if got.Error == "" {
		t.Error("halted job has empty Error reason")
	}
}

func TestCrashRestartCompletes(t *testing.T) {
	// The tight liveness timeout keeps the blocked peer's recovery (routing
	// around the crashed worker while it restarts) fast in the test window.
	m := testManager(t, Config{MaxRestarts: 3, LivenessTimeout: 0.2})
	spec := tinySpec("baseline")
	spec.MaxIters = 40 // long enough to catch it mid-flight
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, j.ID, StateTraining, 30*time.Second)
	if err := m.CrashWorker(j.ID, 0); err != nil {
		t.Fatalf("CrashWorker: %v", err)
	}
	done := waitState(t, m, j.ID, StateCompleted, 60*time.Second)
	if done.Restarts < 1 {
		t.Errorf("restarts %d, want >= 1", done.Restarts)
	}
	if done.FinalAcc <= 0 {
		t.Errorf("final accuracy %g, want > 0", done.FinalAcc)
	}
}

func TestRestartBudgetExhaustionFailsJob(t *testing.T) {
	m := testManager(t, Config{MaxRestarts: 1})
	spec := tinySpec("baseline")
	spec.MaxIters = 50_000
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, j.ID, StateTraining, 30*time.Second)
	// Crash past the budget: each crash needs the worker back up first.
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := m.Get(j.ID)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got.State == StateFailed {
			if got.Error == "" {
				t.Error("failed job has empty Error")
			}
			return
		}
		if got.State.Terminal() {
			t.Fatalf("job ended %s, want failed", got.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never failed after repeated crashes")
		}
		m.CrashWorker(j.ID, 0) // error (not running yet) is fine; retry
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCrashUnknownJob(t *testing.T) {
	m := testManager(t, Config{})
	if err := m.CrashWorker("job-999", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("error %v, want ErrNotFound", err)
	}
}

func TestStorePersistsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	st, err := NewStore(path)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	m := testManager(t, Config{Store: st})
	j, err := m.Submit(tinySpec("baseline"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitState(t, m, j.ID, StateCompleted, 30*time.Second)
	m.Close()

	// A new store over the same file still serves the finished record.
	st2, err := NewStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := st2.Get(j.ID)
	if err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if got.State != StateCompleted || got.FinalAcc != done.FinalAcc {
		t.Errorf("reloaded record %s acc %g, want %s acc %g",
			got.State, got.FinalAcc, done.State, done.FinalAcc)
	}
	// And a fresh id sequence continues past the persisted one.
	if id := st2.NextID(); id == j.ID {
		t.Errorf("NextID reissued %s", id)
	}
}

func TestStoreMarksInterruptedJobsFailed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	st, err := NewStore(path)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	j := &Job{ID: "job-1", State: StateTraining, Spec: tinySpec("baseline")}
	if err := st.Put(j); err != nil {
		t.Fatalf("Put: %v", err)
	}
	st2, err := NewStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := st2.Get("job-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.State != StateFailed || got.Error == "" {
		t.Errorf("interrupted job reloaded as %s (%q), want failed with reason",
			got.State, got.Error)
	}
}

func TestManagerCloseHaltsActiveJobs(t *testing.T) {
	b := queue.NewBroker()
	defer b.Close()
	m, err := NewManager(Config{Broker: b, Poll: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	spec := tinySpec("baseline")
	spec.MaxIters = 50_000
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, j.ID, StateTraining, 30*time.Second)
	m.Close()
	got, err := m.Get(j.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.State != StateHalted {
		t.Errorf("state after Close %s, want halted", got.State)
	}
	if _, err := m.Submit(tinySpec("baseline")); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close error %v, want ErrClosed", err)
	}
}

func TestJobsMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	m := testManager(t, Config{Metrics: reg, MaxConcurrent: 1, TenantQuota: 1})
	j, err := m.Submit(tinySpec("baseline"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := m.Submit(tinySpec("baseline")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("quota error %v", err)
	}
	waitState(t, m, j.ID, StateCompleted, 30*time.Second)
	snap := reg.Snapshot()
	if snap["jobs.submitted"] != 1 {
		t.Errorf("jobs.submitted = %d, want 1", snap["jobs.submitted"])
	}
	if snap["jobs.rejected"] != 1 {
		t.Errorf("jobs.rejected = %d, want 1", snap["jobs.rejected"])
	}
	if snap["jobs.completed"] != 1 {
		t.Errorf("jobs.completed = %d, want 1", snap["jobs.completed"])
	}
}

// TestMonitorDuringDeploy hammers the job monitor and the chaos hook through
// the queued/deploying window: neither may panic or race (under -race) while
// the worker group is still half-built, and the job must still complete.
func TestMonitorDuringDeploy(t *testing.T) {
	m := testManager(t, Config{MaxRestarts: 100})
	j, err := m.Submit(tinySpec("baseline"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for {
		cur, err := m.Get(j.ID)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if cur.State != StateQueued && cur.State != StateDeploying {
			break
		}
		jm, err := m.JobMetrics(j.ID)
		if err != nil {
			t.Fatalf("JobMetrics while %s: %v", cur.State, err)
		}
		for _, rep := range jm.Workers {
			if rep.Job != j.ID {
				t.Fatalf("report labelled %q, want %q", rep.Job, j.ID)
			}
		}
		// Rejected while no fully-deployed group exists; crashes that land
		// just after training starts are absorbed by the big restart budget.
		m.CrashWorker(j.ID, 0)
	}
	waitState(t, m, j.ID, StateCompleted, 30*time.Second)
}

// TestHaltImmediatelyAfterSubmit races Halt against the scheduler picking
// the job up: whichever side wins, the job must end halted — never trained
// to completion after Halt reported success.
func TestHaltImmediatelyAfterSubmit(t *testing.T) {
	m := testManager(t, Config{MaxConcurrent: 1})
	for i := 0; i < 5; i++ {
		j, err := m.Submit(tinySpec("baseline"))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if _, err := m.Halt(j.ID); err != nil {
			t.Fatalf("Halt: %v", err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			cur, err := m.Get(j.ID)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if cur.State.Terminal() {
				if cur.State != StateHalted {
					t.Fatalf("halted job ended %s (error %q), want halted",
						cur.State, cur.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never reached a terminal state", j.ID)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestStorePutAtomicOnPersistError verifies a failed persist rolls the
// in-memory map back: the record neither appears in Get nor counts against
// the tenant quota.
func TestStorePutAtomicOnPersistError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	st, err := NewStore(path)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	// A directory squatting on the store path makes the tmp+rename persist
	// fail even when running as root (rename onto a directory is EISDIR).
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	j := &Job{ID: "job-1", State: StateQueued, Spec: tinySpec("baseline")}
	if err := st.Put(j); err == nil {
		t.Fatal("Put succeeded, want persist error")
	}
	if _, err := st.Get("job-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after failed Put: %v, want ErrNotFound", err)
	}
	if n := st.ActiveByTenant(j.Spec.Tenant); n != 0 {
		t.Fatalf("failed insert counts %d active jobs against the tenant", n)
	}
	// With the blocker gone the same Put lands normally.
	if err := os.Remove(path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := st.Put(j); err != nil {
		t.Fatalf("Put after unblocking: %v", err)
	}
	if _, err := st.Get("job-1"); err != nil {
		t.Fatalf("Get: %v", err)
	}
}
