package jobs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"dlion/internal/obs"
	"dlion/internal/queue"
)

// TestE2EConcurrentJobs is the control plane's acceptance test: one broker,
// two concurrent jobs with different sync strategies submitted over the
// REST API, both trained to completion on per-job isolated channels; the
// job monitor returns final accuracy and folded obs reports for each; a
// third job over the tenant quota is rejected with the structured 429; and
// the JSON-file store survives a controller restart. Run it under -race
// (make e2e-jobs).
func TestE2EConcurrentJobs(t *testing.T) {
	broker := queue.NewBroker()
	defer broker.Close()

	storePath := filepath.Join(t.TempDir(), "jobs.json")
	store, err := NewStore(storePath)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	reg := obs.NewRegistry()
	m, err := NewManager(Config{
		Broker:        broker,
		Store:         store,
		Metrics:       reg,
		MaxConcurrent: 2, // both jobs train at once, sharing the broker
		TenantQuota:   2,
		Poll:          10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()
	srv := httptest.NewServer(NewAPI(m))
	defer srv.Close()

	submit := func(spec Spec) (*http.Response, []byte) {
		t.Helper()
		raw, _ := json.Marshal(spec)
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Two jobs, different sync strategies, one broker: baseline trains with
	// the full synchronous barrier, ako asynchronously.
	specs := []Spec{
		{System: "baseline", Workers: 2, MaxIters: 5, Scale: 0.001, LBS: 4},
		{System: "ako", Workers: 2, MaxIters: 5, Scale: 0.001, LBS: 4},
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		resp, raw := submit(spec)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %s: status %d body %s", spec.System, resp.StatusCode, raw)
		}
		var j Job
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatalf("decode: %v", err)
		}
		ids[i] = j.ID
	}

	// Third job over the tenant quota (2 active): structured 429.
	resp, raw := submit(Spec{System: "baseline", Workers: 2, MaxIters: 5, Scale: 0.001})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429 (body %s)", resp.StatusCode, raw)
	}
	var e apiError
	if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code != "quota_exceeded" {
		t.Fatalf("over-quota body %s, want structured quota_exceeded", raw)
	}

	// Both jobs complete.
	for i, id := range ids {
		done := waitState(t, m, id, StateCompleted, 60*time.Second)
		if done.FinalAcc <= 0 {
			t.Errorf("job %s (%s) final accuracy %g, want > 0", id, specs[i].System, done.FinalAcc)
		}
		for w, it := range done.Iters {
			if it < specs[i].MaxIters {
				t.Errorf("job %s worker %d at iter %d, want >= %d", id, w, it, specs[i].MaxIters)
			}
		}
	}

	// The monitor's metrics endpoint serves per-job folded reports, each
	// labelled with its own job id — proof the concurrent groups' obs
	// streams never mixed.
	for _, id := range ids {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/metrics")
		if err != nil {
			t.Fatalf("GET metrics: %v", err)
		}
		var jm JobMetrics
		err = json.NewDecoder(resp.Body).Decode(&jm)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode metrics: %v", err)
		}
		if jm.FinalAcc <= 0 {
			t.Errorf("job %s metrics accuracy %g, want > 0", id, jm.FinalAcc)
		}
		if len(jm.Workers) != 2 {
			t.Fatalf("job %s metrics: %d reports, want 2", id, len(jm.Workers))
		}
		for _, rep := range jm.Workers {
			if rep.Job != id {
				t.Errorf("job %s report labelled %q — cross-job folding", id, rep.Job)
			}
			if rep.SentMsgs["gradient"] == 0 {
				t.Errorf("job %s worker %d sent no gradients", id, rep.ID)
			}
		}
	}

	// jobs.* metrics reflect the run.
	snap := reg.Snapshot()
	if snap["jobs.submitted"] != 2 || snap["jobs.completed"] != 2 || snap["jobs.rejected"] != 1 {
		t.Errorf("jobs.* counters %v, want 2 submitted, 2 completed, 1 rejected",
			map[string]int64{"submitted": snap["jobs.submitted"],
				"completed": snap["jobs.completed"], "rejected": snap["jobs.rejected"]})
	}

	// Store file survives a "controller restart": a fresh store over the
	// same path still serves both completed records.
	reopened, err := NewStore(storePath)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	for _, id := range ids {
		j, err := reopened.Get(id)
		if err != nil {
			t.Fatalf("reopened Get(%s): %v", id, err)
		}
		if j.State != StateCompleted || j.FinalAcc <= 0 {
			t.Errorf("reloaded job %s: %s acc %g, want completed with accuracy", id, j.State, j.FinalAcc)
		}
	}
}
