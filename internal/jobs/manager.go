package jobs

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/lineage"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/queue"
	"dlion/internal/realtime"
	"dlion/internal/systems"
)

// Config assembles a lifecycle manager.
type Config struct {
	// Broker is the shared message broker every job's worker group runs
	// over (required). Each job gets its own channel namespace on it.
	Broker *queue.Broker

	// Store records job state and results (nil = a fresh in-memory store).
	Store *Store

	// Metrics, when non-nil, receives the jobs.* counters and gauges
	// (METRICS.md) plus the spawned workers' realtime.* instrumentation.
	Metrics *obs.Registry

	// MaxConcurrent bounds how many jobs train at once (default 2); the
	// rest wait in the queue.
	MaxConcurrent int
	// QueueDepth bounds the admitted-but-waiting job queue (default 8).
	// Beyond it submissions are rejected with ErrQueueFull — the same
	// 429-style shedding internal/serve applies to predict requests.
	QueueDepth int
	// TenantQuota bounds each tenant's non-terminal jobs (default 4).
	TenantQuota int
	// MaxRestarts is the per-job budget of checkpoint-restore worker
	// restarts before the job fails (default 2).
	MaxRestarts int
	// Poll is the supervision interval: iteration progress reads and
	// checkpoint captures (default 50ms).
	Poll time.Duration
	// LivenessTimeout (seconds) is plumbed into every job's worker config
	// so blocking sync strategies route around a crashed-and-restarting
	// peer instead of wedging the whole group (default 2).
	LivenessTimeout float64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 8
	}
	if c.TenantQuota < 1 {
		c.TenantQuota = 4
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 2
	}
	if c.Poll <= 0 {
		c.Poll = 50 * time.Millisecond
	}
	if c.LivenessTimeout == 0 {
		c.LivenessTimeout = 2
	}
	return c
}

// Manager is the lifecycle half of the control plane: it admits jobs
// against quotas and the bounded queue, schedules them onto training slots,
// spawns each job's worker group over per-job namespaced broker channels,
// supervises progress with periodic checkpoint capture, restarts crashed
// workers from their checkpoints, and drives every job to a terminal state.
type Manager struct {
	cfg   Config
	store *Store

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
	runs   map[string]*run
	pend   chan string // queued job ids; bounded by QueueDepth

	// jobs.* metric handles (nil-safe without a registry).
	mSubmitted *obs.Counter
	mRejected  *obs.Counter
	mCompleted *obs.Counter
	mFailed    *obs.Counter
	mHalted    *obs.Counter
	mRestarts  *obs.Counter
	gActive    *obs.Gauge
	gQueued    *obs.Gauge
	hDuration  *obs.Histogram
}

// NewManager builds a manager and starts its scheduler.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Broker == nil {
		return nil, fmt.Errorf("jobs: nil broker")
	}
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		st, err := NewStore("")
		if err != nil {
			return nil, err
		}
		cfg.Store = st
	}
	m := &Manager{
		cfg:   cfg,
		store: cfg.Store,
		runs:  map[string]*run{},
		pend:  make(chan string, cfg.QueueDepth),

		mSubmitted: cfg.Metrics.Counter("jobs.submitted"),
		mRejected:  cfg.Metrics.Counter("jobs.rejected"),
		mCompleted: cfg.Metrics.Counter("jobs.completed"),
		mFailed:    cfg.Metrics.Counter("jobs.failed"),
		mHalted:    cfg.Metrics.Counter("jobs.halted"),
		mRestarts:  cfg.Metrics.Counter("jobs.restarts"),
		gActive:    cfg.Metrics.Gauge("jobs.active"),
		gQueued:    cfg.Metrics.Gauge("jobs.queued"),
		hDuration:  cfg.Metrics.Histogram("jobs.duration"),
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())
	m.wg.Add(1)
	go m.scheduler()
	return m, nil
}

// Submit validates and admits one job: quota check, bounded-queue check,
// record creation. It returns the queued record, or a structured admission
// error (ErrQuotaExceeded / ErrQueueFull / a validation error).
func (m *Manager) Submit(spec Spec) (*Job, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		m.mRejected.Inc()
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.store.ActiveByTenant(spec.Tenant) >= m.cfg.TenantQuota {
		m.mRejected.Inc()
		return nil, fmt.Errorf("%w: tenant %q at %d active jobs",
			ErrQuotaExceeded, spec.Tenant, m.cfg.TenantQuota)
	}
	if len(m.pend) == cap(m.pend) {
		m.mRejected.Inc()
		return nil, fmt.Errorf("%w: %d jobs queued", ErrQueueFull, cap(m.pend))
	}
	j := &Job{
		ID:    m.store.NextID(),
		Spec:  spec,
		State: StateQueued,
		Iters: make([]int64, spec.Workers),
	}
	if err := m.store.Put(j); err != nil {
		return nil, err
	}
	// Guaranteed room: only Submit (under m.mu) feeds pend, and the length
	// was checked above — the scheduler only drains.
	m.pend <- j.ID
	m.mSubmitted.Inc()
	m.gQueued.Set(int64(len(m.pend)))
	return j.clone(), nil
}

// Get returns a copy of the job record.
func (m *Manager) Get(id string) (*Job, error) { return m.store.Get(id) }

// List returns copies of every job record, newest first.
func (m *Manager) List() []*Job { return m.store.List() }

// Halt stops a job: a queued job transitions to halted immediately; a
// deploying/training job's run context is canceled and the run marks it
// halted as it unwinds (poll Get to observe the transition). Terminal jobs
// return ErrTerminal.
func (m *Manager) Halt(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, err := m.store.Get(id)
	if err != nil {
		return nil, err
	}
	if j.State.Terminal() {
		return nil, fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.State)
	}
	if r := m.runs[id]; r != nil {
		r.requestHalt()
		return m.store.Get(id)
	}
	// Still queued: the scheduler will observe the terminal state and skip.
	j.State = StateHalted
	j.Error = "halted before start"
	if err := m.store.Put(j); err != nil {
		return nil, err
	}
	m.mHalted.Inc()
	return j.clone(), nil
}

// CrashWorker kills one worker of a running job, as if its process died
// (the chaos hook behind restart testing): the worker's incarnation context
// is canceled, and the supervisor restarts it from its latest checkpoint —
// or fails the job if the restart budget is spent.
func (m *Manager) CrashWorker(id string, worker int) error {
	m.mu.Lock()
	r := m.runs[id]
	m.mu.Unlock()
	if r == nil {
		return fmt.Errorf("%w: %q has no active run", ErrNotFound, id)
	}
	return r.crashWorker(worker)
}

// JobMetrics is the job monitor's answer for one job: lifecycle state,
// final accuracy, and the folded per-worker obs reports. For a job still
// training, the reports are live snapshots.
type JobMetrics struct {
	ID        string             `json:"id"`
	State     State              `json:"state"`
	Restarts  int                `json:"restarts,omitempty"`
	Iters     []int64            `json:"iters,omitempty"`
	FinalAcc  float64            `json:"final_acc,omitempty"`
	FinalLoss float64            `json:"final_loss,omitempty"`
	Workers   []obs.WorkerReport `json:"workers,omitempty"`
}

// JobMetrics folds a job's observability into one queryable record.
func (m *Manager) JobMetrics(id string) (*JobMetrics, error) {
	j, err := m.store.Get(id)
	if err != nil {
		return nil, err
	}
	jm := &JobMetrics{ID: j.ID, State: j.State, Restarts: j.Restarts,
		Iters: j.Iters, FinalAcc: j.FinalAcc, FinalLoss: j.FinalLoss,
		Workers: j.Workers}
	m.mu.Lock()
	r := m.runs[id]
	m.mu.Unlock()
	if r != nil {
		// Live: snapshot the (atomic, concurrency-safe) per-worker sinks.
		// A still-deploying run snapshots as nil — keep the store's reports.
		if reps := r.snapshotReports(); reps != nil {
			jm.Workers = reps
		}
	}
	return jm, nil
}

// Close stops the scheduler, cancels every active run (their jobs end
// halted), and waits for all run goroutines to unwind.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
}

// scheduler pops queued jobs and runs them, at most MaxConcurrent at once.
func (m *Manager) scheduler() {
	defer m.wg.Done()
	sem := make(chan struct{}, m.cfg.MaxConcurrent)
	for {
		select {
		case <-m.ctx.Done():
			return
		case id := <-m.pend:
			m.gQueued.Set(int64(len(m.pend)))
			select {
			case sem <- struct{}{}:
			case <-m.ctx.Done():
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				defer func() { <-sem }()
				m.runJob(id)
			}()
		}
	}
}

// --- one job's run ---

// run is the in-flight state of one job's worker group.
type run struct {
	m   *Manager
	job *Job // working copy; persisted via sync()

	ctx    context.Context
	cancel context.CancelFunc

	cfg    core.Config
	mspec  nn.Spec
	shards []*data.Shard
	test   *data.Dataset

	mu      sync.Mutex // guards job fields, halt/err, slot node swaps
	halted  bool
	failErr error
	done    bool

	slots []*slot
	sinks []*obs.WorkerObs
	wg    sync.WaitGroup

	start time.Time
}

// slot is one worker position across its incarnations.
type slot struct {
	mu     sync.Mutex
	node   *realtime.Node
	tr     *realtime.BrokerTransport
	wctx   context.Context    // the current incarnation's Run context
	cancel context.CancelFunc // cancels the current incarnation's Run
	ckpt   []byte             // latest captured checkpoint
	man    *lineage.Manifest  // latest captured lineage manifest (chains across captures)
	iters  int64              // latest observed iteration count
}

// runJob drives one job from deploying to a terminal state.
func (m *Manager) runJob(id string) {
	// CAS queued→registered under m.mu: Halt serializes on the same lock,
	// so a job halted between being popped off the queue and reaching here
	// is observed terminal and never starts (no lost-halt window).
	m.mu.Lock()
	j, err := m.store.Get(id)
	if err != nil || j.State != StateQueued {
		m.mu.Unlock()
		return // halted (or vanished) while queued
	}
	ctx, cancel := context.WithCancel(m.ctx)
	r := &run{m: m, job: j, ctx: ctx, cancel: cancel, start: time.Now()}
	m.runs[id] = r
	m.gActive.Set(int64(len(m.runs)))
	m.mu.Unlock()
	defer cancel()
	defer func() {
		m.mu.Lock()
		delete(m.runs, id)
		m.gActive.Set(int64(len(m.runs)))
		m.mu.Unlock()
		m.hDuration.Observe(time.Since(r.start).Seconds())
	}()

	r.setState(StateDeploying, "")
	if err := r.deploy(); err != nil {
		r.mu.Lock()
		r.failErr = err
		r.mu.Unlock()
		r.finish()
		return
	}
	r.setState(StateTraining, "")
	for i := range r.slots {
		r.wg.Add(1)
		go r.workerLoop(i)
	}
	r.supervise()
	r.cancel() // stop the worker group (completion, halt, or failure)
	r.wg.Wait()
	r.finish()
}

// setState transitions the job record and persists it.
func (r *run) setState(st State, msg string) {
	r.mu.Lock()
	r.job.State = st
	r.job.Error = msg
	r.m.store.Put(r.job)
	r.mu.Unlock()
}

// requestHalt asks the run to unwind into the halted state.
func (r *run) requestHalt() {
	r.mu.Lock()
	r.halted = true
	r.mu.Unlock()
	r.cancel()
}

// failWith records the first failure and unwinds the run.
func (r *run) failWith(err error) {
	r.mu.Lock()
	if r.failErr == nil {
		r.failErr = err
	}
	r.mu.Unlock()
	r.cancel()
}

// deploy resolves the spec into configs, data, and the initial worker
// group. Any error here fails the job before it reaches training.
func (r *run) deploy() error {
	spec := r.job.Spec
	cfg, err := systems.ForJob(spec.System, spec.Quant, r.job.ID, spec.MaxIters)
	if err != nil {
		return err
	}
	if spec.LBS > 0 {
		cfg.Batch.InitialLBS = spec.LBS
	}
	// Blocking sync strategies must route around a crashed peer during its
	// restart window instead of wedging the group (see PR 1's live-set-
	// aware synchronization).
	cfg.LivenessTimeout = r.m.cfg.LivenessTimeout
	if spec.Slots > spec.Workers {
		// Leave joiner slots: the group is founded by [0, Workers) and
		// external -job -join workers may take the remaining address space.
		roster := make([]int, spec.Workers)
		for i := range roster {
			roster[i] = i
		}
		cfg.Membership.InitialMembers = roster
	}
	r.cfg = cfg

	dc := data.CIFAR10Config(spec.Scale, spec.Seed+13)
	train, test, err := data.Generate(dc)
	if err != nil {
		return err
	}
	shards, err := data.Partition(train, spec.Slots, spec.Seed)
	if err != nil {
		return err
	}
	r.shards = shards
	r.test = test
	r.mspec = nn.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, spec.Seed+1000)

	sinks := make([]*obs.WorkerObs, spec.Workers)
	for i := range sinks {
		sinks[i] = obs.NewWorkerObs()
	}
	r.mu.Lock()
	r.sinks = sinks
	r.mu.Unlock()

	// Build the group into a local slice: r.slots is published (under r.mu)
	// only once every worker exists, so concurrent readers — JobMetrics,
	// CrashWorker — never observe a half-built group, and a failed deploy
	// closes the transports it already opened instead of leaking broker
	// subscriptions.
	slots := make([]*slot, spec.Workers)
	for i := 0; i < spec.Workers; i++ {
		node, tr, err := r.buildNode(i, nil)
		if err != nil {
			for _, s := range slots[:i] {
				s.cancel()
				s.tr.Close()
			}
			return err
		}
		s := &slot{node: node, tr: tr}
		s.wctx, s.cancel = context.WithCancel(r.ctx)
		slots[i] = s
	}
	r.mu.Lock()
	r.slots = slots
	r.mu.Unlock()
	return nil
}

// buildNode constructs one worker incarnation on the job's broker
// namespace, restoring ckpt into its model when resuming after a crash
// (the realtime half of PR 1's checkpoint-restore path).
func (r *run) buildNode(i int, ckpt []byte) (*realtime.Node, *realtime.BrokerTransport, error) {
	tr := realtime.NewBrokerTransportNS(r.m.cfg.Broker, i, queue.JobNamespace(r.job.ID))
	node, err := realtime.NewNode(realtime.Config{
		ID: i, N: r.job.Spec.Slots, System: r.cfg, Spec: r.mspec,
		Shard: r.shards[i], Transport: tr,
		Obs: r.sinks[i], Metrics: r.m.cfg.Metrics,
	})
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	if len(ckpt) > 0 {
		if err := node.Worker().Model().Restore(ckpt); err != nil {
			tr.Close()
			return nil, nil, fmt.Errorf("jobs: restore worker %d: %w", i, err)
		}
	}
	return node, tr, nil
}

// workerLoop runs one worker slot across crash-restart incarnations. A Run
// return while the job context is still live is a crash (transport failure
// or CrashWorker): the slot is rebuilt from its latest checkpoint, within
// the job's restart budget. A restarted worker re-runs its full iteration
// budget on the restored weights — at-least-once iteration semantics — so
// blocking peers always see it reach their iteration horizon.
func (r *run) workerLoop(i int) {
	defer r.wg.Done()
	s := r.slots[i]
	for {
		s.mu.Lock()
		node, tr, wctx := s.node, s.tr, s.wctx
		s.mu.Unlock()

		err := node.Run(wctx)
		node.FlushSends(200 * time.Millisecond)
		tr.Close()

		if r.ctx.Err() != nil {
			return // job unwinding: completion, halt, failure, or shutdown
		}

		// Crash path: account the restart against the job budget.
		r.mu.Lock()
		r.job.Restarts++
		restarts := r.job.Restarts
		r.m.store.Put(r.job)
		r.mu.Unlock()
		if restarts > r.m.cfg.MaxRestarts {
			if err == nil {
				err = fmt.Errorf("worker %d exited early", i)
			}
			r.failWith(fmt.Errorf("jobs: restart budget (%d) spent: %w",
				r.m.cfg.MaxRestarts, err))
			return
		}
		r.m.mRestarts.Inc()

		s.mu.Lock()
		ckpt := s.ckpt
		s.mu.Unlock()
		node, tr, berr := r.buildNode(i, ckpt)
		if berr != nil {
			r.failWith(berr)
			return
		}
		s.mu.Lock()
		s.cancel() // release the dead incarnation's context
		s.node, s.tr = node, tr
		s.wctx, s.cancel = context.WithCancel(r.ctx)
		s.mu.Unlock()
	}
}

// crashWorker cancels one slot's current incarnation (the chaos hook).
func (r *run) crashWorker(i int) error {
	r.mu.Lock()
	slots := r.slots
	r.mu.Unlock()
	if slots == nil {
		return fmt.Errorf("jobs: job %s still deploying", r.job.ID)
	}
	if i < 0 || i >= len(slots) {
		return fmt.Errorf("jobs: worker %d outside [0,%d)", i, len(slots))
	}
	s := slots[i]
	s.mu.Lock()
	cancel := s.cancel
	s.mu.Unlock()
	if cancel == nil {
		return fmt.Errorf("jobs: worker %d not running", i)
	}
	cancel()
	return nil
}

// supervise polls every worker's progress on its event loop (race-free via
// Inspect), captures checkpoints for crash recovery, publishes live
// iteration counts, and returns once every worker reached the budget — or
// the run context ended first (halt/failure/shutdown).
func (r *run) supervise() {
	tick := time.NewTicker(r.m.cfg.Poll)
	defer tick.Stop()
	target := r.job.Spec.MaxIters
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-tick.C:
			all := true
			iters := make([]int64, len(r.slots))
			for i, s := range r.slots {
				s.mu.Lock()
				node, parent := s.node, s.man
				s.mu.Unlock()
				ictx, cancel := context.WithTimeout(r.ctx, time.Second)
				it, ck, man, err := node.CheckpointManifest(ictx, parent)
				cancel()
				if err != nil {
					all = false // mid-restart; count as in progress
					s.mu.Lock()
					iters[i] = s.iters
					s.mu.Unlock()
					continue
				}
				s.mu.Lock()
				s.iters, s.ckpt = it, ck
				// Adopt the manifest only when training advanced: a same-iter
				// capture cannot extend the chain (links must strictly
				// advance), so the previous manifest stays authoritative.
				if s.man == nil || man.Iter > s.man.Iter {
					s.man = man
				}
				s.mu.Unlock()
				iters[i] = it
				if it < target {
					all = false
				}
			}
			r.mu.Lock()
			copy(r.job.Iters, iters)
			if len(r.job.Lineage) != len(r.slots) {
				r.job.Lineage = make([]*lineage.Manifest, len(r.slots))
			}
			for i, s := range r.slots {
				s.mu.Lock()
				r.job.Lineage[i] = s.man
				s.mu.Unlock()
			}
			r.m.store.Put(r.job)
			r.mu.Unlock()
			if all {
				r.mu.Lock()
				r.done = true
				r.mu.Unlock()
				return
			}
		}
	}
}

// snapshotReports folds the per-worker sinks into job-labelled reports. It
// returns nil until deploy has published the full worker group — callers
// fall back to the store-recorded reports for a still-deploying job.
func (r *run) snapshotReports() []obs.WorkerReport {
	r.mu.Lock()
	slots, sinks := r.slots, r.sinks
	jobID := r.job.ID
	r.mu.Unlock()
	if slots == nil || len(sinks) != len(slots) {
		return nil
	}
	out := make([]obs.WorkerReport, len(sinks))
	for i, o := range sinks {
		rep := o.Snapshot(i)
		rep.Job = jobID
		slots[i].mu.Lock()
		rep.Iters = slots[i].iters
		slots[i].mu.Unlock()
		out[i] = rep
	}
	return out
}

// finish decides the terminal state, evaluates the completed model, folds
// the final obs reports into the record, and persists it.
func (r *run) finish() {
	r.mu.Lock()
	halted, failErr, done := r.halted, r.failErr, r.done
	r.mu.Unlock()

	if reps := r.snapshotReports(); reps != nil {
		r.mu.Lock()
		r.job.Workers = reps
		r.mu.Unlock()
	}

	switch {
	case failErr != nil:
		r.setState(StateFailed, failErr.Error())
		r.m.mFailed.Inc()
	case halted:
		r.setState(StateHalted, "halted by request")
		r.m.mHalted.Inc()
	case done:
		acc, loss, err := r.evaluate()
		if err != nil {
			r.setState(StateFailed, err.Error())
			r.m.mFailed.Inc()
			return
		}
		r.mu.Lock()
		r.job.FinalAcc, r.job.FinalLoss = acc, loss
		r.mu.Unlock()
		r.setState(StateCompleted, "")
		r.m.mCompleted.Inc()
	default:
		// Manager shutdown canceled the run.
		r.setState(StateHalted, "controller shutting down")
		r.m.mHalted.Inc()
	}
}

// evaluate restores the most-trained captured checkpoint and scores it on
// the job's held-out test set — the final accuracy the job monitor serves.
func (r *run) evaluate() (acc, loss float64, err error) {
	var best []byte
	bestIters := int64(-1)
	for _, s := range r.slots {
		s.mu.Lock()
		if s.ckpt != nil && s.iters > bestIters {
			best, bestIters = s.ckpt, s.iters
		}
		s.mu.Unlock()
	}
	if best == nil {
		return 0, 0, fmt.Errorf("jobs: no checkpoint captured")
	}
	model := r.mspec.Build()
	if err := model.Restore(best); err != nil {
		return 0, 0, fmt.Errorf("jobs: final evaluation: %w", err)
	}
	acc, loss = model.Evaluate(r.test, 64)
	return acc, loss, nil
}
