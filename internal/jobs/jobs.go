// Package jobs is the multi-job training control plane: the layer that
// turns the hand-launched DLion reproduction into a job-serving system, the
// way FfDL wraps a training runtime with a REST tier, a lifecycle manager,
// and a job monitor. It accepts job specs over a REST/JSON API, admits them
// against per-tenant quotas and a bounded queue, spawns and supervises a
// worker group per job over the existing broker (per-job namespaced
// channels, so concurrent jobs share one broker without cross-delivery),
// drives the queued → deploying → training → completed/failed/halted state
// machine with checkpoint-restore worker restarts, and folds each run's obs
// reports and final accuracy into a queryable, JSON-file-backed store.
package jobs

import (
	"errors"
	"fmt"

	"dlion/internal/lineage"
	"dlion/internal/obs"
	"dlion/internal/queue"
	"dlion/internal/systems"
)

// State is a job's lifecycle state. Legal transitions:
//
//	queued ─→ deploying ─→ training ─→ completed
//	  │            │           ├─────→ failed
//	  │            └───────────┴─────→ halted
//	  └──────────────────────────────→ halted
//
// completed, failed, and halted are terminal.
type State string

// The job lifecycle states.
const (
	StateQueued    State = "queued"    // admitted, waiting for a training slot
	StateDeploying State = "deploying" // worker group being built and wired to the broker
	StateTraining  State = "training"  // workers iterating; supervisor watching
	StateCompleted State = "completed" // every worker reached the iteration budget
	StateFailed    State = "failed"    // crash budget exhausted or deploy error
	StateHalted    State = "halted"    // stopped by DELETE before completing
)

// Terminal reports whether s is a terminal state.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateHalted
}

// Spec is a training job description — the POST /v1/jobs request body. It
// names a system preset (the sync strategy), the dataset environment
// (scale + seed of the synthetic generator), the wire precision, the worker
// group size, and the per-worker iteration budget.
type Spec struct {
	// Name is a human label (optional; defaults to the system name).
	Name string `json:"name,omitempty"`
	// Tenant is the quota bucket this job counts against ("default" when
	// empty).
	Tenant string `json:"tenant,omitempty"`
	// System is the preset resolved via systems.ByName: baseline, ako,
	// gaia, hop, dlion, ... — each fixes a sync strategy and selector.
	System string `json:"system"`
	// Quant is the wire precision: "", "i8", "f16", or "auto" (WIRE.md).
	Quant string `json:"quant,omitempty"`
	// Workers is the worker group size spawned for this job.
	Workers int `json:"workers"`
	// Slots, when > Workers, reserves address space for external workers
	// joining the job live (dlion-worker -job -join). The group is founded
	// by ids [0, Workers); ids [Workers, Slots) are joiner slots. 0 means
	// Slots = Workers — a closed group.
	Slots int `json:"slots,omitempty"`
	// MaxIters is the per-worker iteration budget; reaching it on every
	// worker completes the job.
	MaxIters int64 `json:"max_iters"`
	// Scale sizes the synthetic dataset (fraction of the paper's full
	// size; default 0.02).
	Scale float64 `json:"scale,omitempty"`
	// Seed is the shared cluster seed (dataset, sharding, model init).
	Seed uint64 `json:"seed,omitempty"`
	// LBS overrides the initial local batch size (0 keeps the preset's).
	LBS int `json:"lbs,omitempty"`
}

// specLimits bound what a single job may ask of the control plane.
const (
	maxSpecWorkers = 64
	maxSpecSlots   = 256
	maxSpecIters   = 1_000_000
)

// withDefaults fills a spec's zero values.
func (s Spec) withDefaults() Spec {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Name == "" {
		s.Name = s.System
	}
	if s.Slots == 0 {
		s.Slots = s.Workers
	}
	if s.Scale == 0 {
		s.Scale = 0.02
	}
	if s.Seed == 0 {
		s.Seed = 7
	}
	return s
}

// Validate rejects malformed specs with one-line errors (the API maps them
// to 400s). It runs on the defaulted spec.
func (s Spec) Validate() error {
	switch {
	case s.System == "":
		return fmt.Errorf("jobs: spec has no system")
	case s.Workers < 1 || s.Workers > maxSpecWorkers:
		return fmt.Errorf("jobs: workers %d outside [1,%d]", s.Workers, maxSpecWorkers)
	case s.Slots < s.Workers || s.Slots > maxSpecSlots:
		return fmt.Errorf("jobs: slots %d outside [workers=%d,%d]", s.Slots, s.Workers, maxSpecSlots)
	case s.MaxIters < 1 || s.MaxIters > maxSpecIters:
		return fmt.Errorf("jobs: max_iters %d outside [1,%d]", s.MaxIters, maxSpecIters)
	case s.Scale < 0.001 || s.Scale > 1:
		return fmt.Errorf("jobs: scale %g outside [0.001,1]", s.Scale)
	case s.LBS < 0 || s.LBS > 4096:
		return fmt.Errorf("jobs: lbs %d outside [0,4096]", s.LBS)
	case !queue.ValidJobID(s.Tenant):
		return fmt.Errorf("jobs: tenant %q is not a valid identifier", s.Tenant)
	}
	// Resolve the preset + precision now so a bad system or quant mode is
	// a 400 at submission, not a deploy-time failure.
	if _, err := systems.ForJob(s.System, s.Quant, "", s.MaxIters); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// Job is one training job's record: the spec, the lifecycle state, and the
// monitor's folded results. The manager mutates it under the store's lock;
// API reads get copies.
type Job struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	// Error carries the failure (or halt) reason for terminal states.
	Error string `json:"error,omitempty"`

	// Iters is the per-worker completed iteration count, updated live by
	// the supervisor while the job trains.
	Iters []int64 `json:"iters,omitempty"`
	// Restarts counts checkpoint-restore worker restarts across the group.
	Restarts int `json:"restarts,omitempty"`

	// Lineage is each worker's latest checkpoint manifest, chained per
	// worker across supervisor captures — the store-persisted provenance
	// trail (which weights each worker last reached, and what history
	// produced them). Entries are nil until the first capture.
	Lineage []*lineage.Manifest `json:"lineage,omitempty"`

	// FinalAcc/FinalLoss are the completed model's test-set evaluation.
	FinalAcc  float64 `json:"final_acc,omitempty"`
	FinalLoss float64 `json:"final_loss,omitempty"`

	// Workers holds each worker's folded obs report (job-labelled), filled
	// when the job reaches a terminal state.
	Workers []obs.WorkerReport `json:"workers,omitempty"`
}

// clone deep-copies the record so API consumers never alias store state.
func (j *Job) clone() *Job {
	c := *j
	c.Iters = append([]int64(nil), j.Iters...)
	// Manifests are immutable once captured, so sharing the pointers is safe;
	// only the slice header needs copying.
	c.Lineage = append([]*lineage.Manifest(nil), j.Lineage...)
	c.Workers = append([]obs.WorkerReport(nil), j.Workers...)
	return &c
}

// Structured admission and lookup errors. The REST layer maps these onto
// status codes (429 for quota/queue pressure, 404 for unknown ids, 409 for
// state conflicts, 400 for bad specs).
var (
	// ErrQuotaExceeded rejects a submission that would push its tenant past
	// the per-tenant active-job quota.
	ErrQuotaExceeded = errors.New("jobs: tenant quota exceeded")
	// ErrQueueFull rejects a submission when the bounded job queue is full —
	// the control-plane analogue of serve's 429 admission shedding.
	ErrQueueFull = errors.New("jobs: job queue full")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrTerminal reports an operation on a job already in a terminal state.
	ErrTerminal = errors.New("jobs: job already terminal")
	// ErrClosed reports an operation on a closed manager.
	ErrClosed = errors.New("jobs: manager closed")
)
