package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// testAPI stands up the REST tier over a small manager.
func testAPI(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m := testManager(t, cfg)
	srv := httptest.NewServer(NewAPI(m))
	t.Cleanup(srv.Close)
	return m, srv
}

// post submits spec and returns the status code and decoded body.
func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// decodeErr extracts the structured error code from an error response.
func decodeErr(t *testing.T, raw []byte) string {
	t.Helper()
	var e apiError
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("error body %q not structured: %v", raw, err)
	}
	if e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("error body %q missing code or message", raw)
	}
	return e.Error.Code
}

func TestAPISubmitAndGet(t *testing.T) {
	_, srv := testAPI(t, Config{})
	resp, raw := post(t, srv.URL, tinySpec("baseline"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST status %d, body %s", resp.StatusCode, raw)
	}
	var j Job
	if err := json.Unmarshal(raw, &j); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	if j.ID == "" || j.State != StateQueued {
		t.Fatalf("created job %+v, want queued with id", j)
	}

	// GET by id round-trips.
	get, err := http.Get(srv.URL + "/v1/jobs/" + j.ID)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer get.Body.Close()
	var got Job
	if err := json.NewDecoder(get.Body).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.ID != j.ID {
		t.Fatalf("GET returned %q, want %q", got.ID, j.ID)
	}

	// List contains it.
	list, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET list: %v", err)
	}
	defer list.Body.Close()
	var all []Job
	if err := json.NewDecoder(list.Body).Decode(&all); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(all) != 1 || all[0].ID != j.ID {
		t.Fatalf("list %+v, want the one job", all)
	}
}

func TestAPIBadRequests(t *testing.T) {
	_, srv := testAPI(t, Config{})
	cases := []struct {
		name string
		body any
		code string
	}{
		{"unknown system", Spec{System: "nope", Workers: 2, MaxIters: 3}, "invalid_spec"},
		{"zero workers", Spec{System: "baseline", Workers: 0, MaxIters: 3}, "invalid_spec"},
		{"bad quant", Spec{System: "baseline", Workers: 2, MaxIters: 3, Quant: "i4"}, "invalid_spec"},
		{"unknown field", map[string]any{"system": "baseline", "workerz": 2}, "bad_request"},
	}
	for _, tc := range cases {
		resp, raw := post(t, srv.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, raw)
			continue
		}
		if code := decodeErr(t, raw); code != tc.code {
			t.Errorf("%s: error code %q, want %q", tc.name, code, tc.code)
		}
	}
}

func TestAPIQuotaRejection(t *testing.T) {
	_, srv := testAPI(t, Config{MaxConcurrent: 1, TenantQuota: 1})
	if resp, raw := post(t, srv.URL, tinySpec("baseline")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first POST status %d, body %s", resp.StatusCode, raw)
	}
	resp, raw := post(t, srv.URL, tinySpec("baseline"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second POST status %d, want 429 (body %s)", resp.StatusCode, raw)
	}
	if code := decodeErr(t, raw); code != "quota_exceeded" {
		t.Errorf("error code %q, want quota_exceeded", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}

func TestAPINotFoundAndConflict(t *testing.T) {
	m, srv := testAPI(t, Config{})
	resp, err := http.Get(srv.URL + "/v1/jobs/job-404")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown id status %d, want 404", resp.StatusCode)
	}

	// Halt a completed job → 409 with the structured code.
	j, err := m.Submit(tinySpec("baseline"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, j.ID, StateCompleted, 30*time.Second)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+j.ID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	defer del.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(del.Body)
	if del.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE terminal job status %d, want 409 (body %s)", del.StatusCode, buf.Bytes())
	}
	if code := decodeErr(t, buf.Bytes()); code != "already_terminal" {
		t.Errorf("error code %q, want already_terminal", code)
	}
}

func TestAPIHaltAndMetrics(t *testing.T) {
	m, srv := testAPI(t, Config{})
	j, err := m.Submit(tinySpec("baseline"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitState(t, m, j.ID, StateCompleted, 30*time.Second)

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/metrics", srv.URL, j.ID))
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var jm JobMetrics
	if err := json.NewDecoder(resp.Body).Decode(&jm); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if jm.State != StateCompleted || jm.FinalAcc != done.FinalAcc {
		t.Errorf("metrics %+v, want completed with acc %g", jm, done.FinalAcc)
	}
	if len(jm.Workers) != 2 {
		t.Errorf("metrics reports %d workers, want 2", len(jm.Workers))
	}
	for _, rep := range jm.Workers {
		if rep.Job != j.ID {
			t.Errorf("worker %d report labelled %q, want %q", rep.ID, rep.Job, j.ID)
		}
	}
}
