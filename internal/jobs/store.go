package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Store is the job monitor's record keeper: an in-memory map of job records
// with optional JSON-file persistence, so a restarted controller still
// answers GET /v1/jobs for finished runs. Every read hands out deep copies;
// every write re-persists the whole set (job records are small — specs,
// counters, and folded reports, never checkpoints).
type Store struct {
	mu   sync.Mutex
	path string // "" = memory only
	jobs map[string]*Job
	seq  int
}

// storeFile is the on-disk schema.
type storeFile struct {
	Schema string `json:"schema"`
	Seq    int    `json:"seq"`
	Jobs   []*Job `json:"jobs"`
}

// storeSchema tags the persisted file; bump on incompatible change.
const storeSchema = "dlion.jobs.v1"

// NewStore opens (or creates) a store. With path == "" the store is
// memory-only. An existing file is loaded; jobs recorded as non-terminal by
// a previous controller are marked failed — their worker groups died with
// that process, and resurrecting them silently would misreport state.
func NewStore(path string) (*Store, error) {
	s := &Store{path: path, jobs: map[string]*Job{}}
	if path == "" {
		return s, nil
	}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var f storeFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("jobs: store %s: %w", path, err)
	}
	if f.Schema != storeSchema {
		return nil, fmt.Errorf("jobs: store %s: schema %q, want %q", path, f.Schema, storeSchema)
	}
	s.seq = f.Seq
	for _, j := range f.Jobs {
		if !j.State.Terminal() {
			j.State = StateFailed
			j.Error = "controller restarted while job was active"
		}
		s.jobs[j.ID] = j
	}
	return s, nil
}

// NextID allocates the next job id ("job-<n>").
func (s *Store) NextID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return fmt.Sprintf("job-%d", s.seq)
}

// Put inserts or replaces a record (a deep copy of j) and persists. The
// update is atomic: if persistence fails the in-memory map keeps its prior
// contents, so a failed insert does not leave a phantom record counting
// against tenant quotas.
func (s *Store) Put(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.jobs[j.ID]
	s.jobs[j.ID] = j.clone()
	if err := s.persistLocked(); err != nil {
		if had {
			s.jobs[j.ID] = prev
		} else {
			delete(s.jobs, j.ID)
		}
		return err
	}
	return nil
}

// Get returns a copy of the record, or ErrNotFound.
func (s *Store) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j.clone(), nil
}

// List returns copies of every record, newest submission first (ids are
// sequential, so reverse id order is reverse submission order).
func (s *Store) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.clone())
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].ID) != len(out[b].ID) {
			return len(out[a].ID) > len(out[b].ID)
		}
		return out[a].ID > out[b].ID
	})
	return out
}

// ActiveByTenant counts non-terminal jobs per tenant — the quota input.
func (s *Store) ActiveByTenant(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.Spec.Tenant == tenant && !j.State.Terminal() {
			n++
		}
	}
	return n
}

// persistLocked writes the whole store atomically (tmp + rename) when a
// path is configured. Called with s.mu held.
func (s *Store) persistLocked() error {
	if s.path == "" {
		return nil
	}
	f := storeFile{Schema: storeSchema, Seq: s.seq, Jobs: make([]*Job, 0, len(s.jobs))}
	for _, j := range s.jobs {
		f.Jobs = append(f.Jobs, j)
	}
	sort.Slice(f.Jobs, func(a, b int) bool { return f.Jobs[a].ID < f.Jobs[b].ID })
	raw, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(s.path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path)
}
