package jobs

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
)

// API is the control plane's REST/JSON tier over a Manager:
//
//	POST   /v1/jobs              submit a job (Spec body) → 201 + Job
//	GET    /v1/jobs              list all jobs, newest first
//	GET    /v1/jobs/{id}         one job's record
//	DELETE /v1/jobs/{id}         halt a job
//	GET    /v1/jobs/{id}/metrics the monitor's folded JobMetrics
//
// Errors come back as {"error":{"code":...,"message":...}}: bad specs are
// 400s, unknown ids 404s, halting a terminal job 409, and quota or queue
// pressure 429 with a Retry-After header — the same admission-shedding
// contract internal/serve's predict path exposes.
type API struct {
	m   *Manager
	mux *http.ServeMux
}

// maxSpecBody bounds a POST /v1/jobs request body.
const maxSpecBody = 1 << 16

// NewAPI builds the REST tier over m.
func NewAPI(m *Manager) *API {
	a := &API{m: m, mux: http.NewServeMux()}
	a.mux.HandleFunc("POST /v1/jobs", a.handleSubmit)
	a.mux.HandleFunc("GET /v1/jobs", a.handleList)
	a.mux.HandleFunc("GET /v1/jobs/{id}", a.handleGet)
	a.mux.HandleFunc("DELETE /v1/jobs/{id}", a.handleHalt)
	a.mux.HandleFunc("GET /v1/jobs/{id}/metrics", a.handleMetrics)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// Serve runs the API on ln until the listener closes.
func (a *API) Serve(ln net.Listener) error {
	return (&http.Server{Handler: a}).Serve(ln)
}

// apiError is the structured error envelope.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// writeError maps a jobs error onto a status code + structured body.
func writeError(w http.ResponseWriter, err error) {
	code, status := "internal", http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrQuotaExceeded):
		code, status = "quota_exceeded", http.StatusTooManyRequests
		w.Header().Set("Retry-After", "5")
	case errors.Is(err, ErrQueueFull):
		code, status = "queue_full", http.StatusTooManyRequests
		w.Header().Set("Retry-After", "5")
	case errors.Is(err, ErrNotFound):
		code, status = "not_found", http.StatusNotFound
	case errors.Is(err, ErrTerminal):
		code, status = "already_terminal", http.StatusConflict
	case errors.Is(err, ErrClosed):
		code, status = "shutting_down", http.StatusServiceUnavailable
	case errors.Is(err, errBadRequest):
		code, status = "bad_request", http.StatusBadRequest
	default:
		// Validation errors from Spec.Validate / systems resolution.
		code, status = "invalid_spec", http.StatusBadRequest
	}
	var body apiError
	body.Error.Code = code
	body.Error.Message = err.Error()
	writeJSON(w, status, &body)
}

// errBadRequest tags malformed request bodies (vs. well-formed bad specs).
var errBadRequest = errors.New("jobs: bad request")

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, errors.Join(errBadRequest, err))
		return
	}
	j, err := a.m.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, j)
}

func (a *API) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.m.List())
}

func (a *API) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (a *API) handleHalt(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Halt(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	jm, err := a.m.JobMetrics(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jm)
}
