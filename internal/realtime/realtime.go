// Package realtime runs DLion workers over wall-clock time and a real
// message transport (the Redis-substitute broker from internal/queue),
// demonstrating that the worker logic in internal/core is not bound to the
// simulator. Each node hosts one worker on a single-threaded event loop:
// timers and incoming messages are serialized onto the loop, which is the
// concurrency contract core.Worker requires.
package realtime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/lineage"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/queue"
	"dlion/internal/wire"
)

// Transport moves encoded messages between workers. Implementations:
// BrokerTransport (in-process broker) and ClientTransport (TCP broker).
type Transport interface {
	// Send delivers payload to the worker with the given id.
	Send(to int, payload []byte) error
	// Recv blocks until a payload addressed to this node arrives. It
	// returns an error when the transport closes.
	Recv() ([]byte, error)
	Close() error
}

// DataKey returns the broker list key carrying worker id's inbound data in
// the root (single-job) namespace. Control-plane jobs use per-job
// namespaced keys instead (queue.JobNamespace + the *NS transport
// constructors).
func DataKey(id int) string { return queue.Namespace("").DataKey(id) }

// Config assembles one real-mode node.
type Config struct {
	ID     int
	N      int
	System core.Config
	Spec   nn.Spec
	Shard  *data.Shard

	Transport Transport

	// Bandwidth reports the assumed available Mbps towards a peer (the
	// network monitor's answer in real mode, where we cannot introspect the
	// kernel). Nil defaults to 100 Mbps everywhere.
	Bandwidth func(to int) float64

	// Obs, when non-nil, records this node's wall-clock phase breakdown
	// (compute/serialize/send/recv-wait/apply) and per-class transfer
	// counters. Nil disables tracing at zero cost (see METRICS.md).
	Obs *obs.WorkerObs

	// Metrics, when non-nil, receives the node's named counters:
	// realtime.fifo_drops and the realtime.send_queue_depth gauge.
	Metrics *obs.Registry
}

// Node hosts one worker over wall time.
type Node struct {
	cfg    Config
	worker *core.Worker
	loop   chan func()
	start  time.Time

	evStart  time.Time // when the currently-executing event began
	profiled [][2][]float64

	// Per-peer FIFO senders: outbound messages to one peer are serialized
	// through a single goroutine so a stale weight snapshot can never
	// overtake a fresher one (goroutine-per-message made delivery order a
	// scheduler lottery). The queues are bounded; when one fills, the
	// oldest message is dropped, like a congested link's tail-drop — fresh
	// state is worth more than stale state.
	sendMu  sync.Mutex
	senders map[int]chan []byte
	done    chan struct{} // closed when Run exits; stops the senders

	// sendPending counts messages enqueued but not yet handed to the
	// transport (or shed), so FlushSends can tell when the FIFOs are dry.
	sendPending atomic.Int64

	// Counter handles resolved from cfg.Metrics at construction (nil-safe
	// no-ops when no registry is configured).
	fifoDrops *obs.Counter
	sendDepth *obs.Gauge
}

// sendQueueDepth bounds each per-peer outbound queue.
const sendQueueDepth = 256

// realEnv adapts the Node to core.Env.
type realEnv struct{ n *Node }

func (e realEnv) Now() float64 { return time.Since(e.n.start).Seconds() }

func (e realEnv) After(d float64, fn func()) {
	if d <= 0 {
		// run on the next loop turn, preserving the single-thread contract
		go func() { e.n.loop <- fn }()
		return
	}
	time.AfterFunc(time.Duration(d*float64(time.Second)), func() {
		e.n.loop <- fn
	})
}

func (e realEnv) NumWorkers() int    { return e.n.cfg.N }
func (e realEnv) SendScale() float64 { return 1 }

func (e realEnv) Bandwidth(_, to int) float64 {
	if e.n.cfg.Bandwidth != nil {
		return e.n.cfg.Bandwidth(to)
	}
	return 100
}

// IterSeconds reports how long the current event has been executing — by
// the time the worker asks (right after its TrainStep), that is the real
// compute duration of the iteration.
func (e realEnv) IterSeconds(_, _ int) float64 {
	d := time.Since(e.n.evStart).Seconds()
	if d < 1e-3 {
		d = 1e-3
	}
	return d
}

// ProfileCompute measures actual TrainStep wall time at each batch size on
// a scratch replica, so profiling never perturbs the live model.
func (e realEnv) ProfileCompute(_ int, batches []int) (x, y []float64) {
	scratch := e.n.cfg.Spec.Build()
	for _, b := range batches {
		xb, yb := e.n.cfg.Shard.NextBatch(b)
		t0 := time.Now()
		scratch.TrainStep(xb, yb)
		x = append(x, float64(b))
		y = append(y, time.Since(t0).Seconds())
	}
	return x, y
}

func (e realEnv) Send(_, to int, m *wire.Message) {
	o := e.n.cfg.Obs
	if o == nil {
		e.n.enqueue(to, wire.Encode(m))
		return
	}
	t0 := time.Now()
	payload := wire.Encode(m)
	o.AddPhase(obs.PhaseSerialize, time.Since(t0).Seconds())
	e.n.enqueue(to, payload)
}

// enqueue hands payload to the destination's FIFO sender, spawning it on
// first use. Called only from the event-loop goroutine.
func (n *Node) enqueue(to int, payload []byte) {
	n.sendMu.Lock()
	ch := n.senders[to]
	if ch == nil {
		ch = make(chan []byte, sendQueueDepth)
		n.senders[to] = ch
		go n.sendLoop(to, ch)
	}
	n.sendMu.Unlock()
	n.sendPending.Add(1)
	for {
		select {
		case ch <- payload:
			n.sendDepth.Set(int64(len(ch)))
			return
		default:
			// full: shed the oldest queued message and retry
			select {
			case <-ch:
				n.sendPending.Add(-1)
				n.fifoDrops.Inc()
			default:
			}
		}
	}
}

// trySend hands one frame to the transport, recording send-phase time when
// tracing is on. A send error drops the frame, like a partitioned link.
func (n *Node) trySend(to int, p []byte) error {
	defer n.sendPending.Add(-1)
	if o := n.cfg.Obs; o != nil {
		t0 := time.Now()
		err := n.cfg.Transport.Send(to, p)
		o.AddPhase(obs.PhaseSend, time.Since(t0).Seconds())
		return err
	}
	return n.cfg.Transport.Send(to, p)
}

// sendLoop drains one peer's queue. Like the receive pump, it can outlive
// Run while blocked inside Transport.Send (e.g. a reconnecting transport
// retrying against a dead broker); the owner's Transport.Close unblocks
// that send, after which the closed done channel retires the loop. Run
// must NOT wait on sendLoops — the caller only closes the transport after
// Run returns, so waiting here would deadlock the shutdown.
//
// When done closes, the loop flushes whatever is already queued — a
// stopping worker's final broadcasts live here — stopping at the first
// transport error. Callers that need the flush to have happened before
// closing the transport should gate on FlushSends.
// A retired peer's channel is closed (see retireSender): the loop flushes
// what is already queued, then exits on the closed-channel read.
func (n *Node) sendLoop(to int, ch chan []byte) {
	for {
		select {
		case <-n.done:
			for {
				select {
				case p, ok := <-ch:
					if !ok {
						return
					}
					if err := n.trySend(to, p); err != nil {
						for { // transport gone: discard the remainder
							select {
							case _, ok := <-ch:
								if !ok {
									return
								}
								n.sendPending.Add(-1)
							default:
								return
							}
						}
					}
				default:
					return
				}
			}
		case p, ok := <-ch:
			if !ok {
				return
			}
			_ = n.trySend(to, p)
		}
	}
}

// retireSender closes the outbound FIFO towards a departed peer so its
// goroutine exits once the queue drains, and removes it from the map so a
// later message to the same id (a rejoin under a recycled slot) gets a
// fresh sender. Runs on the event loop, like enqueue — the loop serializes
// the two, so close can never race a channel send.
func (n *Node) retireSender(to int) {
	n.sendMu.Lock()
	ch := n.senders[to]
	delete(n.senders, to)
	n.sendMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// FlushSends blocks until every outbound FIFO has handed its frames to the
// transport (or shed them), or the timeout elapses; it reports whether the
// queues drained. Call it after Run returns and before Transport.Close so
// a worker's final messages reach the broker instead of dying queued.
func (n *Node) FlushSends(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for n.sendPending.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// Inspect runs fn on the node's event loop and waits for it to finish.
// Between events the hosted worker is quiescent — never mid-TrainStep,
// never mid-HandleMessage — so fn may read (or snapshot) any worker state
// without racing the loop. fn must not block and must not call Inspect
// recursively (the loop would deadlock). It is only serviced while Run is
// executing; otherwise it fails once the node stops or ctx expires.
func (n *Node) Inspect(ctx context.Context, fn func(w *core.Worker)) error {
	ran := make(chan struct{})
	job := func() {
		fn(n.worker)
		close(ran)
	}
	select {
	case n.loop <- job:
	case <-n.done:
		return fmt.Errorf("realtime: node stopped")
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-ran:
		return nil
	case <-n.done:
		// Run can exit between accepting the job and executing it; the
		// closed channel tells the two apart.
		select {
		case <-ran:
			return nil
		default:
			return fmt.Errorf("realtime: node stopped")
		}
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Leave performs a graceful departure: the worker drains on the event
// loop (broadcasting its LEAVE tombstones and stopping training), then
// FlushSends waits for every queued frame — tombstones included — to reach
// the transport, so a clean leave drops zero in-flight messages. The node
// keeps servicing its loop afterwards (late arrivals are ignored by the
// stopped worker); cancel Run's context to shut it down fully.
func (n *Node) Leave(ctx context.Context, flushTimeout time.Duration) error {
	if err := n.Inspect(ctx, func(w *core.Worker) { w.Leave() }); err != nil {
		return err
	}
	if !n.FlushSends(flushTimeout) {
		return fmt.Errorf("realtime: leave: %d frames still queued after %v",
			n.sendPending.Load(), flushTimeout)
	}
	return nil
}

// Checkpoint snapshots the hosted worker's model without violating the
// event-loop contract: the snapshot closure runs on the loop between
// events (via Inspect), so it can never observe a model mid-TrainStep. It
// returns the worker's completed iteration count alongside the checkpoint
// bytes — the pair a serving registry needs for ordered hot-swaps.
func (n *Node) Checkpoint(ctx context.Context) (int64, []byte, error) {
	var iter int64
	var ckpt []byte
	err := n.Inspect(ctx, func(w *core.Worker) {
		iter, ckpt = w.Iter(), w.Model().Checkpoint()
	})
	if err != nil {
		return 0, nil, err
	}
	return iter, ckpt, nil
}

// CheckpointManifest snapshots the worker's model together with its lineage
// manifest: the content digest (per variable and combined), the iteration
// and membership epoch the snapshot was taken at, and the node's config
// fingerprint. A non-nil parent chains the manifest to the previous
// snapshot of this node (manifests chain by digest; pass nil for a root).
// The snapshot and every digest are computed in one Inspect closure, so the
// manifest can never commit to weights from a different event-loop moment
// than the checkpoint bytes.
func (n *Node) CheckpointManifest(ctx context.Context, parent *lineage.Manifest) (int64, []byte, *lineage.Manifest, error) {
	cfg := n.cfg.System.Fingerprint()
	precision := n.cfg.System.Quant.Precision.String()
	if n.cfg.System.Quant.Auto {
		precision = "auto"
	}
	var ckpt []byte
	man := &lineage.Manifest{
		Schema:     lineage.Schema,
		Worker:     n.cfg.ID,
		Job:        n.cfg.System.Job,
		Config:     cfg,
		ConfigHash: lineage.Fingerprint(cfg),
		Precision:  precision,
	}
	err := n.Inspect(ctx, func(w *core.Worker) {
		m := w.Model()
		ckpt = m.Checkpoint()
		man.Model = m.ModelName
		man.Digest = lineage.ModelHash(m)
		vars := make(map[string]lineage.Hash, len(m.Params()))
		for _, p := range m.Params() {
			vars[p.Name] = lineage.TensorHash(p.W)
		}
		man.Vars = vars
		man.Iter = w.Iter()
		man.Epoch = w.Epoch()
	})
	if err != nil {
		return 0, nil, nil, err
	}
	man.Link(parent)
	if parent != nil && man.Iter <= parent.Iter {
		// No training progress since the parent snapshot: the chain cannot
		// advance (VerifyLink requires strictly increasing iterations), so
		// the caller should keep the parent manifest.
		man.Link(nil)
	}
	if err := man.Validate(); err != nil {
		return 0, nil, nil, err
	}
	return man.Iter, ckpt, man, nil
}

// NewNode builds a node and its worker. The model replica is built from
// cfg.Spec (same spec + seed on all nodes gives identical initial models).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("realtime: nil transport")
	}
	n := &Node{cfg: cfg, loop: make(chan func(), 1024),
		senders: map[int]chan []byte{}, done: make(chan struct{}),
		fifoDrops: cfg.Metrics.Counter("realtime.fifo_drops"),
		sendDepth: cfg.Metrics.Gauge("realtime.send_queue_depth")}
	w, err := core.New(cfg.ID, cfg.System, cfg.Spec.Build(), cfg.Shard, realEnv{n})
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		w.SetObs(cfg.Obs)
	}
	n.worker = w
	return n, nil
}

// Worker exposes the hosted worker (for metrics inspection after Run).
func (n *Node) Worker() *core.Worker { return n.worker }

// Run trains until ctx is done. It owns the event loop: the worker's
// Start, every timer, and every incoming message execute on this
// goroutine.
func (n *Node) Run(ctx context.Context) error {
	n.start = time.Now()
	defer close(n.done) // stop the per-peer senders; Run is one-shot

	// receive pump: decode and forward into the loop
	recvErr := make(chan error, 1)
	go func() {
		for {
			payload, err := n.cfg.Transport.Recv()
			if err != nil {
				recvErr <- err
				return
			}
			m, err := wire.Decode(payload)
			if err != nil {
				continue // corrupt frame: drop
			}
			fn := func() { n.worker.HandleMessage(m) }
			if m.Type == wire.TypeLeave {
				// The peer is gone: after the worker processes the
				// tombstone, retire its outbound FIFO. Per-link FIFO
				// ordering means nothing useful can follow a tombstone.
				fn = func() {
					n.worker.HandleMessage(m)
					n.retireSender(int(m.From))
				}
			}
			select {
			case n.loop <- fn:
			case <-ctx.Done():
				return
			}
		}
	}()

	n.runEvent(func() { n.worker.Start() })
	for {
		select {
		case fn := <-n.loop:
			n.runEvent(fn)
		case err := <-recvErr:
			if ctx.Err() != nil {
				return nil // shutdown race: context canceled first
			}
			return fmt.Errorf("realtime: transport: %w", err)
		case <-ctx.Done():
			return nil
		}
	}
}

func (n *Node) runEvent(fn func()) {
	n.evStart = time.Now()
	fn()
}
