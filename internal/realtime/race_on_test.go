//go:build race

package realtime

// raceEnabled reports whether the race detector is active; tests scale
// their real-time budgets accordingly.
const raceEnabled = true
