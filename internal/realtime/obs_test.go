package realtime

import (
	"context"
	"sync"
	"testing"
	"time"

	"dlion/internal/data"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/queue"
)

// TestRealModeObservability runs an instrumented two-node cluster over the
// in-process broker and checks the wall-clock phase breakdown and transfer
// counters accumulate. Runs under -race: the sinks are written from the
// event loop and the sender goroutines concurrently.
func TestRealModeObservability(t *testing.T) {
	b := queue.NewBroker()
	defer b.Close()
	reg := obs.NewRegistry()
	b.SetMetrics(reg)

	const n = 2
	dc := data.Config{Name: "rt", NumClasses: 3, Train: 240, Test: 60,
		Channels: 1, Height: 8, Width: 8, Noise: 0.4, Jitter: 0, Bumps: 3, Seed: 21}
	train, _, err := data.Generate(dc)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.Partition(train, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := nn.CipherSpec(1, 8, 8, 3, 5)

	sinks := make([]*obs.WorkerObs, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		sinks[i] = obs.NewWorkerObs()
		node, err := NewNode(Config{
			ID: i, N: n, System: realSystem(), Spec: spec, Shard: shards[i],
			Transport: NewBrokerTransport(b, i),
			Obs:       sinks[i], Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget(2*time.Second))
	defer cancel()
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(nd *Node) {
			defer wg.Done()
			if err := nd.Run(ctx); err != nil {
				t.Errorf("node: %v", err)
			}
		}(node)
	}
	wg.Wait()

	for i, o := range sinks {
		w := o.Snapshot(i)
		if w.Phases["compute"] <= 0 {
			t.Fatalf("node %d: no compute time", i)
		}
		if w.Phases["serialize"] <= 0 {
			t.Fatalf("node %d: no serialize time", i)
		}
		if w.Phases["send"] <= 0 {
			t.Fatalf("node %d: no send time", i)
		}
		if w.SentMsgs["gradient"] <= 0 || w.RecvMsgs["gradient"] <= 0 {
			t.Fatalf("node %d: gradient traffic missing: %+v", i, w)
		}
		if nodes[i].Worker().Obs() != o {
			t.Fatalf("node %d: sink not attached to worker", i)
		}
	}
	snap := reg.Snapshot()
	if snap["queue.pushed"] <= 0 || snap["queue.popped"] <= 0 {
		t.Fatalf("broker metrics empty: %v", snap)
	}
}
