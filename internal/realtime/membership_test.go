package realtime

import (
	"context"
	"sync"
	"testing"
	"time"

	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/queue"
)

// Elastic membership over wall-clock time: graceful leaves must flush every
// queued frame, joins must complete through a real transport, and a broker
// restart in the middle of the admission handshake must be survivable.

// elasticNodes builds an n-slot real-mode cluster where ids < founders are
// founders and the rest are joiners sponsored by worker 0. All nodes are
// started; joiners begin their handshake immediately on Start.
func elasticNodes(t *testing.T, n, founders int, mkTransport func(id int) Transport, reg *obs.Registry) []*Node {
	t.Helper()
	dc := data.Config{Name: "rt-elastic", NumClasses: 3, Train: 240, Test: 60,
		Channels: 1, Height: 8, Width: 8, Noise: 0.4, Jitter: 0, Bumps: 3, Seed: 21}
	train, _, err := data.Generate(dc)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.Partition(train, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := nn.CipherSpec(1, 8, 8, 3, 5)
	roster := make([]int, founders)
	for i := range roster {
		roster[i] = i
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		sys := realSystem()
		if i < founders {
			sys.Membership = core.MembershipConfig{InitialMembers: roster}
		} else {
			sys.Membership = core.MembershipConfig{Join: true, Sponsor: 0,
				JoinTimeout: budget(60 * time.Second).Seconds(),
				JoinRetry:   0.2}
		}
		node, err := NewNode(Config{ID: i, N: n, System: sys, Spec: spec,
			Shard: shards[i], Transport: mkTransport(i), Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	return nodes
}

// inspectWorker reads one loop-owned value off a live node, failing the
// test if the node refuses inspection.
func inspectWorker(t *testing.T, n *Node, fn func(w *core.Worker)) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), budget(5*time.Second))
	defer cancel()
	if err := n.Inspect(ctx, fn); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

func waitForCond(t *testing.T, stage string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(budget(20 * time.Second))
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: never reached", stage)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGracefulLeaveFlushesEverything: a leaving node must drain its
// outbound queues — tombstones included — before the call returns, the
// survivors must renormalize onto the reduced roster, and nothing may be
// shed on the way out.
func TestGracefulLeaveFlushesEverything(t *testing.T) {
	b := queue.NewBroker()
	defer b.Close()
	reg := obs.NewRegistry()
	nodes := elasticNodes(t, 3, 3, func(id int) Transport {
		return NewBrokerTransport(b, id)
	}, reg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(nd *Node) { defer wg.Done(); _ = nd.Run(ctx) }(node)
	}

	// let the full roster train together first
	waitForCond(t, "initial training", func() bool {
		ok := true
		for _, nd := range nodes {
			var it int64
			inspectWorker(t, nd, func(w *core.Worker) { it = w.Iter() })
			ok = ok && it >= 2
		}
		return ok
	})

	lctx, lcancel := context.WithTimeout(ctx, budget(10*time.Second))
	defer lcancel()
	if err := nodes[2].Leave(lctx, budget(10*time.Second)); err != nil {
		t.Fatalf("graceful leave dropped frames: %v", err)
	}
	var st core.MemberState
	inspectWorker(t, nodes[2], func(w *core.Worker) { st = w.State() })
	if st != core.StateLeft {
		t.Fatalf("leaver state %v, want left", st)
	}

	// survivors must process the tombstone and shrink to {0, 1}
	waitForCond(t, "tombstone processed", func() bool {
		ok := true
		for _, nd := range nodes[:2] {
			var members []int
			inspectWorker(t, nd, func(w *core.Worker) { members = w.Members() })
			ok = ok && len(members) == 2 && members[0] == 0 && members[1] == 1
		}
		return ok
	})
	// and keep training on the reduced roster
	var itersAfter int64
	inspectWorker(t, nodes[0], func(w *core.Worker) { itersAfter = w.Iter() })
	waitForCond(t, "post-leave training", func() bool {
		var it int64
		inspectWorker(t, nodes[0], func(w *core.Worker) { it = w.Iter() })
		return it > itersAfter
	})

	cancel()
	wg.Wait()
	if drops := reg.Counter("realtime.fifo_drops").Load(); drops != 0 {
		t.Fatalf("%d frames shed during the run; a graceful leave must drop none", drops)
	}
}

// TestJoinOverRealTransport: a joiner admitted through the in-process
// broker must converge onto the founders' roster and train.
func TestJoinOverRealTransport(t *testing.T) {
	b := queue.NewBroker()
	defer b.Close()
	nodes := elasticNodes(t, 3, 2, func(id int) Transport {
		return NewBrokerTransport(b, id)
	}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(nd *Node) { defer wg.Done(); _ = nd.Run(ctx) }(node)
	}

	waitForCond(t, "join admitted", func() bool {
		var st core.MemberState
		var it int64
		inspectWorker(t, nodes[2], func(w *core.Worker) { st, it = w.State(), w.Iter() })
		return st == core.StateActive && it >= 2
	})
	want := []int{0, 1, 2}
	waitForCond(t, "roster convergence", func() bool {
		for _, nd := range nodes {
			var members []int
			inspectWorker(t, nd, func(w *core.Worker) { members = w.Members() })
			if len(members) != len(want) {
				return false
			}
			for i := range want {
				if members[i] != want[i] {
					return false
				}
			}
		}
		return true
	})
	cancel()
	wg.Wait()
}

// TestBrokerRestartDuringJoinHandshake is the churn acceptance test for the
// realtime substrate: the TCP broker dies right before a joiner starts its
// admission handshake and comes back mid-retry. The joiner's HELLO rides
// the reconnecting transport, the core's join-retry timer keeps re-offering,
// and the admission must complete — solo fallback is a failure here because
// the timeout is far beyond the outage — without deadlocking any node.
func TestBrokerRestartDuringJoinHandshake(t *testing.T) {
	b := queue.NewBroker()
	srv, err := queue.Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	transports := make([]Transport, 3)
	for i := range transports {
		tr, err := NewClientTransport(addr, i)
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
	}
	nodes := elasticNodes(t, 3, 2, func(id int) Transport {
		return transports[id]
	}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	runNode := func(nd *Node) {
		wg.Add(1)
		go func() { defer wg.Done(); _ = nd.Run(ctx) }()
	}
	runNode(nodes[0])
	runNode(nodes[1])

	// founders healthy, then the broker dies
	waitForCond(t, "founders training", func() bool {
		ok := true
		for _, nd := range nodes[:2] {
			var it int64
			inspectWorker(t, nd, func(w *core.Worker) { it = w.Iter() })
			ok = ok && it >= 1
		}
		return ok
	})
	srv.Close()

	// the joiner starts its handshake into the outage: its HELLO stalls in
	// the reconnecting transport until the broker returns
	runNode(nodes[2])
	time.Sleep(budget(300 * time.Millisecond))

	var srv2 *queue.Server
	for i := 0; i < 50; i++ {
		srv2, err = queue.Serve(b, addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("broker restart: %v", err)
	}

	// admission must complete through the restarted broker
	waitForCond(t, "join across restart", func() bool {
		var st core.MemberState
		var it int64
		inspectWorker(t, nodes[2], func(w *core.Worker) { st, it = w.State(), w.Iter() })
		return st == core.StateActive && it >= 1
	})
	var members []int
	inspectWorker(t, nodes[0], func(w *core.Worker) { members = w.Members() })
	if len(members) != 3 {
		t.Fatalf("founder roster %v after join, want 3 members", members)
	}
	// solo fallback would also reach StateActive; the roster check above
	// rules it out on the founder side, and the joiner's must match
	inspectWorker(t, nodes[2], func(w *core.Worker) { members = w.Members() })
	if len(members) != 3 {
		t.Fatalf("joiner roster %v, want 3 members", members)
	}

	cancel()
	wg.Wait()
	for _, tr := range transports {
		if err := tr.Close(); err != nil {
			t.Errorf("transport close: %v", err)
		}
	}
	srv2.Close()
	b.Close()
}
