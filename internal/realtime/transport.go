package realtime

import (
	"context"
	"errors"

	"dlion/internal/obs"
	"dlion/internal/queue"
)

// Publisher is the optional broadcast side of a Transport: both
// BrokerTransport and ClientTransport implement it, and callers that want
// to fan out frames beyond point-to-point worker traffic (the serving
// weight feed) type-assert for it.
type Publisher interface {
	Publish(channel string, payload []byte) error
}

// BrokerTransport connects a node to an in-process broker: sends LPush to
// the destination's data list; Recv blocks on this node's own list.
// It mirrors the prototype's Redis data-queue usage (§4.2).
type BrokerTransport struct {
	b      *queue.Broker
	id     int
	ns     queue.Namespace
	ctx    context.Context
	cancel context.CancelFunc
}

// NewBrokerTransport builds a transport for worker id over broker b in the
// root namespace (the historical single-job key layout).
func NewBrokerTransport(b *queue.Broker, id int) *BrokerTransport {
	return NewBrokerTransportNS(b, id, "")
}

// NewBrokerTransportNS builds a transport whose data keys live inside ns,
// so several worker groups — one per control-plane job — can share one
// broker without cross-delivery.
func NewBrokerTransportNS(b *queue.Broker, id int, ns queue.Namespace) *BrokerTransport {
	ctx, cancel := context.WithCancel(context.Background())
	return &BrokerTransport{b: b, id: id, ns: ns, ctx: ctx, cancel: cancel}
}

// Send implements Transport.
func (t *BrokerTransport) Send(to int, payload []byte) error {
	return t.b.LPush(t.ns.DataKey(to), payload)
}

// Recv implements Transport.
func (t *BrokerTransport) Recv() ([]byte, error) {
	return t.b.BRPop(t.ctx, t.ns.DataKey(t.id))
}

// Publish broadcasts payload on one of the broker's PUB/SUB channels
// (e.g. serve.WeightsChannel for serving weight updates).
func (t *BrokerTransport) Publish(channel string, payload []byte) error {
	_, err := t.b.Publish(channel, payload)
	return err
}

// Close implements Transport.
func (t *BrokerTransport) Close() error {
	t.cancel()
	return nil
}

// ClientTransport connects a node to a TCP broker (cmd/dlion-broker), for
// workers running as separate processes. It rides ReconnectingClients, so
// a broker restart or transient TCP failure stalls the node's traffic and
// then recovers instead of killing the node: Send retries with backoff and
// Recv resumes its blocking pop on the new connection.
//
// Sends and receives use separate connections. A Client serializes its
// requests on one conn, and the receive side parks a blocking BRPop there
// indefinitely — sharing it would wedge every LPush behind the pop (and
// with every node wedged the same way, no message would ever flow at all).
// Dedicated connections for blocking pops are standard Redis practice for
// the same reason.
type ClientTransport struct {
	send *queue.ReconnectingClient
	recv *queue.ReconnectingClient
	id   int
	ns   queue.Namespace
}

// NewClientTransport builds a transport for worker id against the broker
// at addr, in the root namespace. The connections are established lazily,
// so the broker may come up after the worker. The error return is kept for
// call-site compatibility and future eager-dial policies; it is currently
// always nil.
func NewClientTransport(addr string, id int) (*ClientTransport, error) {
	return NewClientTransportNS(addr, id, "")
}

// NewClientTransportNS builds a TCP transport whose data keys live inside
// ns — how an external dlion-worker process attaches to one control-plane
// job's channels on a shared broker (the -job flag).
func NewClientTransportNS(addr string, id int, ns queue.Namespace) (*ClientTransport, error) {
	return &ClientTransport{
		send: queue.DialReconnecting(addr, queue.ReconnectConfig{}),
		recv: queue.DialReconnecting(addr, queue.ReconnectConfig{}),
		id:   id,
		ns:   ns,
	}, nil
}

// SetMetrics wires both underlying reconnecting clients' retry counters
// into reg (shared queue.reconnect_attempts counter).
func (t *ClientTransport) SetMetrics(reg *obs.Registry) {
	t.send.SetMetrics(reg)
	t.recv.SetMetrics(reg)
}

// Send implements Transport.
func (t *ClientTransport) Send(to int, payload []byte) error {
	return t.send.LPush(t.ns.DataKey(to), payload)
}

// Publish broadcasts payload on one of the broker's PUB/SUB channels,
// riding the send connection (publishes are fire-and-forget requests, so
// they share it safely; only blocking pops need a dedicated conn).
func (t *ClientTransport) Publish(channel string, payload []byte) error {
	return t.send.Publish(channel, payload)
}

// Recv implements Transport. It blocks across broker outages and returns
// an error only once the transport itself is closed.
func (t *ClientTransport) Recv() ([]byte, error) {
	for {
		p, err := t.recv.BRPop(t.ns.DataKey(t.id), 0)
		if errors.Is(err, queue.ErrTimeout) {
			continue
		}
		return p, err
	}
}

// Close implements Transport.
func (t *ClientTransport) Close() error {
	sendErr := t.send.Close()
	if err := t.recv.Close(); err != nil {
		return err
	}
	return sendErr
}
