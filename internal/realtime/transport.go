package realtime

import (
	"context"
	"errors"

	"dlion/internal/queue"
)

// BrokerTransport connects a node to an in-process broker: sends LPush to
// the destination's data list; Recv blocks on this node's own list.
// It mirrors the prototype's Redis data-queue usage (§4.2).
type BrokerTransport struct {
	b      *queue.Broker
	id     int
	ctx    context.Context
	cancel context.CancelFunc
}

// NewBrokerTransport builds a transport for worker id over broker b.
func NewBrokerTransport(b *queue.Broker, id int) *BrokerTransport {
	ctx, cancel := context.WithCancel(context.Background())
	return &BrokerTransport{b: b, id: id, ctx: ctx, cancel: cancel}
}

// Send implements Transport.
func (t *BrokerTransport) Send(to int, payload []byte) error {
	return t.b.LPush(DataKey(to), payload)
}

// Recv implements Transport.
func (t *BrokerTransport) Recv() ([]byte, error) {
	return t.b.BRPop(t.ctx, DataKey(t.id))
}

// Close implements Transport.
func (t *BrokerTransport) Close() error {
	t.cancel()
	return nil
}

// ClientTransport connects a node to a TCP broker (cmd/dlion-broker), for
// workers running as separate processes.
type ClientTransport struct {
	c  *queue.Client
	id int
}

// NewClientTransport dials the broker at addr for worker id.
func NewClientTransport(addr string, id int) (*ClientTransport, error) {
	c, err := queue.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &ClientTransport{c: c, id: id}, nil
}

// Send implements Transport.
func (t *ClientTransport) Send(to int, payload []byte) error {
	return t.c.LPush(DataKey(to), payload)
}

// Recv implements Transport.
func (t *ClientTransport) Recv() ([]byte, error) {
	for {
		p, err := t.c.BRPop(DataKey(t.id), 0)
		if errors.Is(err, queue.ErrTimeout) {
			continue
		}
		return p, err
	}
}

// Close implements Transport.
func (t *ClientTransport) Close() error { return t.c.Close() }
