package realtime

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dlion/internal/data"
	"dlion/internal/nn"
	"dlion/internal/queue"
)

// TestRealModeBrokerRestart is the real-mode acceptance scenario: the TCP
// broker is killed and restarted mid-run. ReconnectingClient must carry the
// nodes across the outage — they resubscribe their blocking pops, training
// resumes, and once everything shuts down no goroutines are left behind.
func TestRealModeBrokerRestart(t *testing.T) {
	beforeGoroutines := runtime.NumGoroutine()

	b := queue.NewBroker()
	srv, err := queue.Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	const n = 2
	dc := data.Config{Name: "chaos-rt", NumClasses: 3, Train: 240, Test: 60,
		Channels: 1, Height: 8, Width: 8, Noise: 0.4, Jitter: 0, Bumps: 3, Seed: 21}
	train, _, err := data.Generate(dc)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.Partition(train, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := nn.CipherSpec(1, 8, 8, 3, 5)

	// wrap each transport so the test can observe deliveries race-free
	// while the nodes are live (Worker.Stats is event-loop-owned)
	transports := make([]*countingTransport, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		tr, err := NewClientTransport(addr, i)
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = &countingTransport{Transport: tr}
		node, err := NewNode(Config{
			ID: i, N: n, System: realSystem(), Spec: spec,
			Shard: shards[i], Transport: transports[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(nd *Node) {
			defer wg.Done()
			if err := nd.Run(ctx); err != nil {
				t.Errorf("node: %v", err)
			}
		}(node)
	}

	waitFor := func(stage string, cond func() bool) {
		deadline := time.Now().Add(budget(20 * time.Second))
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("%s: never reached", stage)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// phase 1: healthy training — every node hears a peer — then the
	// broker dies
	waitFor("healthy traffic", func() bool {
		for _, tr := range transports {
			if tr.recvd.Load() < 1 {
				return false
			}
		}
		return true
	})
	srv.Close()
	recvdAtKill := make([]int64, n)
	for i, tr := range transports {
		recvdAtKill[i] = tr.recvd.Load()
	}

	// phase 2: dwell in the outage so the clients actually hit broken
	// connections, then restart the broker on the same address (state
	// survives, as a restarted Redis with persistence would)
	time.Sleep(budget(300 * time.Millisecond))
	var srv2 *queue.Server
	for i := 0; i < 50; i++ {
		srv2, err = queue.Serve(b, addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("broker restart: %v", err)
	}

	// phase 3: nodes must resume exchanging. Iterations alone would not
	// prove recovery (async workers keep training against a dead broker),
	// so require received messages past the kill snapshot: those can only
	// arrive through the restarted broker via a reconnected client.
	waitFor("post-restart traffic", func() bool {
		for i, tr := range transports {
			if tr.recvd.Load() <= recvdAtKill[i] {
				return false
			}
		}
		return true
	})
	cancel()
	wg.Wait()

	// the run is over, so Worker.Stats is safe to read: the received
	// traffic must have reached the workers, and training kept going
	for i, nd := range nodes {
		s := nd.Worker().Stats()
		if s.MsgsRecvd < recvdAtKill[i] {
			t.Errorf("node %d: worker saw %d messages, transport delivered %d",
				i, s.MsgsRecvd, recvdAtKill[i])
		}
		if s.Iters < 2 {
			t.Errorf("node %d stalled at %d iterations", i, s.Iters)
		}
	}

	// teardown everything and verify nothing leaked
	for _, tr := range transports {
		if err := tr.Close(); err != nil {
			t.Errorf("transport close: %v", err)
		}
	}
	srv2.Close()
	b.Close()

	deadline := time.Now().Add(budget(5 * time.Second))
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= beforeGoroutines+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutine leak: %d before, %d after\n%s",
		beforeGoroutines, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestSendOrderIsFIFOPerPeer pins the per-peer sender: messages enqueued to
// one peer must arrive in order even under load (the old goroutine-per-
// message send made ordering a scheduler lottery, letting a stale weight
// snapshot overtake a fresh one).
func TestSendOrderIsFIFOPerPeer(t *testing.T) {
	b := queue.NewBroker()
	defer b.Close()
	tr := NewBrokerTransport(b, 0)
	defer tr.Close()

	n := &Node{cfg: Config{Transport: tr}, loop: make(chan func(), 16),
		senders: map[int]chan []byte{}, done: make(chan struct{})}
	defer close(n.done)

	const total = 100
	for i := 0; i < total; i++ {
		n.enqueue(1, []byte{byte(i)})
	}
	// drain from the destination list; order must be exactly FIFO (the
	// bounded queue is 256 deep, so nothing was shed here)
	last := -1
	for i := 0; i < total; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		p, err := b.BRPop(ctx, DataKey(1))
		cancel()
		if err != nil {
			t.Fatalf("message %d missing: %v", i, err)
		}
		if got := int(p[0]); got <= last {
			t.Fatalf("reordering: %d arrived after %d", got, last)
		} else {
			last = got
		}
	}
}

// TestSendQueueShedsOldest: when a peer's queue overflows, the oldest
// message is shed, never the newest — fresh state beats stale state.
func TestSendQueueShedsOldest(t *testing.T) {
	blocked := &blockingTransport{release: make(chan struct{})}
	n := &Node{cfg: Config{Transport: blocked}, loop: make(chan func(), 16),
		senders: map[int]chan []byte{}, done: make(chan struct{})}
	defer close(n.done)

	// the sender goroutine wedges on the first message; everything else
	// queues. Overflow by 10 past the queue depth.
	for i := 0; i < sendQueueDepth+11; i++ {
		n.enqueue(1, []byte{byte(i % 251)})
	}
	close(blocked.release)

	deadline := time.Now().Add(budget(5 * time.Second))
	for blocked.count() < sendQueueDepth+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	got := blocked.payloads()
	// message 0 went straight to the (blocked) transport; of the rest, the
	// oldest 10 queued messages were shed, and the newest must be last
	if len(got) < 2 {
		t.Fatalf("only %d messages reached the transport", len(got))
	}
	lastWant := byte((sendQueueDepth + 10) % 251)
	if got[len(got)-1][0] != lastWant {
		t.Fatalf("newest message shed: last delivered %d, want %d",
			got[len(got)-1][0], lastWant)
	}
}

// countingTransport counts successful Recvs so a test can watch delivery
// progress from outside the event loop.
type countingTransport struct {
	Transport
	recvd atomic.Int64
}

func (c *countingTransport) Recv() ([]byte, error) {
	p, err := c.Transport.Recv()
	if err == nil {
		c.recvd.Add(1)
	}
	return p, err
}

type blockingTransport struct {
	release chan struct{}
	mu      sync.Mutex
	sent    [][]byte
}

func (b *blockingTransport) Send(_ int, p []byte) error {
	<-b.release
	b.mu.Lock()
	b.sent = append(b.sent, p)
	b.mu.Unlock()
	return nil
}
func (b *blockingTransport) Recv() ([]byte, error) { select {} }
func (b *blockingTransport) Close() error          { return nil }
func (b *blockingTransport) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.sent)
}
func (b *blockingTransport) payloads() [][]byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([][]byte(nil), b.sent...)
}
