package realtime

import (
	"context"
	"sync"
	"testing"
	"time"

	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/grad"
	"dlion/internal/nn"
	"dlion/internal/queue"
)

func realSystem() core.Config {
	return core.Config{
		Name:         "real",
		LearningRate: 0.05,
		NewSelector:  func() grad.Selector { return grad.NewMaxN(100) },
		Batch:        core.BatchConfig{InitialLBS: 8},
		Sync:         core.SyncConfig{Mode: core.SyncAsync},
	}
}

func runRealCluster(t *testing.T, n int, mkTransport func(id int) Transport, d time.Duration) []*Node {
	t.Helper()
	dc := data.Config{Name: "rt", NumClasses: 3, Train: 240, Test: 60,
		Channels: 1, Height: 8, Width: 8, Noise: 0.4, Jitter: 0, Bumps: 3, Seed: 21}
	train, _, err := data.Generate(dc)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.Partition(train, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := nn.CipherSpec(1, 8, 8, 3, 5)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(Config{
			ID: i, N: n, System: realSystem(), Spec: spec,
			Shard: shards[i], Transport: mkTransport(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(nd *Node) {
			defer wg.Done()
			if err := nd.Run(ctx); err != nil {
				t.Errorf("node: %v", err)
			}
		}(node)
	}
	wg.Wait()
	return nodes
}

// budget scales test wall-time for the race detector's ~20x slowdown.
func budget(d time.Duration) time.Duration {
	if raceEnabled {
		return d * 6
	}
	return d
}

func TestRealModeInProcBroker(t *testing.T) {
	b := queue.NewBroker()
	defer b.Close()
	nodes := runRealCluster(t, 3, func(id int) Transport {
		return NewBrokerTransport(b, id)
	}, budget(2*time.Second))
	for i, nd := range nodes {
		s := nd.Worker().Stats()
		if s.Iters < 2 {
			t.Fatalf("node %d made only %d iterations", i, s.Iters)
		}
		if s.MsgsSent == 0 {
			t.Fatalf("node %d sent nothing", i)
		}
	}
	// cross-worker updates must have landed: peers' gradient messages are
	// recorded via sent bytes on both sides
	total := int64(0)
	for _, nd := range nodes {
		total += nd.Worker().Stats().BytesSent
	}
	if total == 0 {
		t.Fatal("no traffic")
	}
}

func TestRealModeTCPBroker(t *testing.T) {
	b := queue.NewBroker()
	defer b.Close()
	srv, err := queue.Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	nodes := runRealCluster(t, 2, func(id int) Transport {
		tr, err := NewClientTransport(srv.Addr(), id)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}, budget(2*time.Second))
	for i, nd := range nodes {
		s := nd.Worker().Stats()
		if s.Iters < 1 {
			t.Fatalf("node %d made no progress", i)
		}
		// delivery, not just submission: a transport that wedges its sends
		// behind its own blocking pop passes every send-side assertion
		if s.MsgsRecvd == 0 {
			t.Fatalf("node %d never received a message over TCP", i)
		}
	}
}

func TestRealModeLearns(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing-dependent")
	}
	b := queue.NewBroker()
	defer b.Close()
	nodes := runRealCluster(t, 2, func(id int) Transport {
		return NewBrokerTransport(b, id)
	}, 3*time.Second)
	// training loss should have dropped below the ln(3)≈1.1 chance level
	for i, nd := range nodes {
		if l := nd.Worker().AvgRecentLoss(); l > 1.2 {
			t.Fatalf("node %d loss %.3f did not improve", i, l)
		}
	}
}

func TestNewNodeNilTransport(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("nil transport must error")
	}
}

func TestInspectRunsOnLoopAndFailsAfterStop(t *testing.T) {
	b := queue.NewBroker()
	defer b.Close()
	dc := data.Config{Name: "ins", NumClasses: 3, Train: 120, Test: 30,
		Channels: 1, Height: 8, Width: 8, Noise: 0.4, Jitter: 0, Bumps: 3, Seed: 8}
	train, _, err := data.Generate(dc)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.Partition(train, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := nn.CipherSpec(1, 8, 8, 3, 5)
	nodes := make([]*Node, 2)
	for i := range nodes {
		nodes[i], err = NewNode(Config{ID: i, N: 2, System: realSystem(),
			Spec: spec, Shard: shards[i], Transport: NewBrokerTransport(b, i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(nd *Node) { defer wg.Done(); _ = nd.Run(ctx) }(node)
	}

	// Inspect must observe a quiescent worker and see training progress.
	deadline := time.Now().Add(budget(5 * time.Second))
	var iter int64
	for iter < 2 {
		if time.Now().After(deadline) {
			t.Fatal("worker never reached 2 iterations")
		}
		ictx, icancel := context.WithTimeout(ctx, budget(time.Second))
		err := nodes[0].Inspect(ictx, func(w *core.Worker) { iter = w.Iter() })
		icancel()
		if err != nil {
			t.Fatalf("inspect: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	wg.Wait()
	// After Run exits the node must refuse inspection rather than hang.
	if err := nodes[0].Inspect(context.Background(), func(*core.Worker) {}); err == nil {
		t.Fatal("Inspect after stop must fail")
	}
}
