package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestServeDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("queue.pushed").Add(3)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// expvar endpoint carries the published registry snapshot
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("vars not JSON: %v", err)
	}
	raw, ok := vars["dlion"]
	if !ok {
		t.Fatalf("dlion var missing from /debug/vars: %v", vars)
	}
	var snap map[string]int64
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap["queue.pushed"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}

	// pprof endpoints respond
	if len(get("/debug/pprof/cmdline")) == 0 {
		t.Fatal("pprof cmdline empty")
	}
	get("/debug/pprof/")
}

func TestPublishIsIdempotent(t *testing.T) {
	Publish("obs_test_var", func() any { return 1 })
	// A second publish under the same name must not panic (expvar.Publish
	// would) and must keep the first variable.
	Publish("obs_test_var", func() any { return 2 })
}
