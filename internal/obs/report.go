package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// SchemaVersion identifies the BENCH JSON schema emitted by Report. Bump
// it on any incompatible change and record the migration in METRICS.md.
const SchemaVersion = "dlion.bench.v1"

// Report is the machine-readable summary of one run — a simulation, a
// real-mode session, a kernel benchmark sweep, or an experiment batch. It
// is the payload of every BENCH_*.json file; METRICS.md documents each
// field. Sections that do not apply to a run kind stay empty and are
// omitted from the JSON.
type Report struct {
	Schema string `json:"schema"` // always SchemaVersion
	Kind   string `json:"kind"`   // "sim-run", "kernel-bench", "experiments"
	Name   string `json:"name"`

	// Config echoes the knobs that produced the run (system, environment,
	// horizon, seed, ...) so a report is self-describing.
	Config map[string]any `json:"config,omitempty"`

	// Workers is the per-worker phase breakdown and transfer accounting.
	Workers []WorkerReport `json:"workers,omitempty"`

	// Counters is a process-wide Registry snapshot (queue, transport,
	// fault counters).
	Counters map[string]int64 `json:"counters,omitempty"`

	// Histograms holds quantile summaries of the run's distributions
	// (serving latency, batch fill, ...), keyed by metric name.
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`

	// Timeline is the accuracy-over-time series of a training run.
	Timeline []TimelinePoint `json:"timeline,omitempty"`

	// Benchmarks holds parsed `go test -bench` results (kernel-bench kind).
	Benchmarks []BenchResult `json:"benchmarks,omitempty"`

	// Experiments holds one record per harness experiment (experiments kind).
	Experiments []ExperimentReport `json:"experiments,omitempty"`

	// Summary is the run's headline scalars (final accuracy, total bytes,
	// iterations, ...).
	Summary map[string]float64 `json:"summary,omitempty"`
}

// NewReport returns a report of the given kind and name with the current
// schema version stamped.
func NewReport(kind, name string) *Report {
	return &Report{Schema: SchemaVersion, Kind: kind, Name: name}
}

// WorkerReport is one worker's observability snapshot.
type WorkerReport struct {
	ID    int   `json:"id"`
	Iters int64 `json:"iters,omitempty"`

	// Job labels the control-plane training job this worker served (empty
	// for hand-launched runs), so one broker's concurrent jobs can be told
	// apart when their reports are folded into a single store.
	Job string `json:"job,omitempty"`

	// Phases maps phase name → accumulated seconds (virtual in sim, wall
	// in real mode).
	Phases map[string]float64 `json:"phases"`

	// Per message class (gradient / weights / control).
	SentBytes map[string]int64 `json:"sent_bytes"`
	SentMsgs  map[string]int64 `json:"sent_msgs"`
	RecvBytes map[string]int64 `json:"recv_bytes"`
	RecvMsgs  map[string]int64 `json:"recv_msgs"`

	LivenessExpiries int64 `json:"liveness_expiries,omitempty"`
	SyncBlocks       int64 `json:"sync_blocks,omitempty"`
	QuantBytesSaved  int64 `json:"quant_bytes_saved,omitempty"`

	// Elastic membership (zero for static clusters).
	RosterSize    int64   `json:"roster_size,omitempty"`
	Epoch         int64   `json:"epoch,omitempty"`
	DegradedIters int64   `json:"degraded_iters,omitempty"`
	JoinLatencyS  float64 `json:"join_latency_s,omitempty"`
}

// TimelinePoint is one accuracy evaluation of a training run.
type TimelinePoint struct {
	T       float64 `json:"t"`
	MeanAcc float64 `json:"mean_acc"`
	StdAcc  float64 `json:"std_acc"`
	Loss    float64 `json:"loss"`
}

// BenchResult is one parsed `go test -bench` line.
type BenchResult struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// Extra holds custom metrics emitted via testing.B.ReportMetric (unit →
	// value), e.g. the DES scalability benchmarks' "events/s".
	Extra map[string]float64 `json:"extra,omitempty"`
}

// ExperimentReport is one harness experiment's headline values.
type ExperimentReport struct {
	ID     string             `json:"id"`
	Title  string             `json:"title,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
	Notes  []string           `json:"notes,omitempty"`
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = SchemaVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (the BENCH_*.json convention).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile parses a report written by WriteFile, verifying the schema tag.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("obs: report schema %q, want %q", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// ParseGoBench extracts benchmark results from `go test -bench` output.
// Non-benchmark lines (package headers, PASS/ok, logs) are skipped, so the
// raw command output can be piped in unfiltered.
func ParseGoBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseBenchLine(sc.Text()); ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// parseBenchLine parses one "BenchmarkX-8  100  123 ns/op  4 B/op ..." line.
func parseBenchLine(line string) (BenchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return BenchResult{}, false
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	b := BenchResult{Name: f[0], Runs: runs}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp, seen = v, true
		case "MB/s":
			b.MBPerSec = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			// Custom b.ReportMetric units (e.g. "events/s") land in Extra so
			// schema consumers can track them without a schema bump.
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[f[i+1]] = v
		}
	}
	return b, seen
}
