// Package obs is the runtime observability layer: per-worker phase tracing,
// atomic runtime counters, machine-readable run reports, and the debug HTTP
// endpoints (pprof + expvar) the binaries expose behind -debug-addr.
//
// The paper's evaluation (§5) rests on breakdowns — computation vs.
// communication time per worker, bytes moved per message class, quality vs.
// cost — that must be measured at runtime, not inferred. This package is
// the single place those measurements accumulate. Every name it exports is
// documented in METRICS.md, which is the schema contract for the
// BENCH_*.json files tracking the repo's performance trajectory.
//
// Everything is nil-safe: a nil *WorkerObs, *Counter, *Gauge, or *Registry
// turns every recording call into a cheap no-op, so instrumented hot paths
// pay one nil check when observability is disabled (verified by the
// benchmarks in this package).
package obs

import (
	"sync"
	"sync/atomic"
)

// Phase identifies one slice of a worker's iteration wall/virtual time.
// In simulation the durations are virtual seconds charged by the cost
// models (apply is modeled as free and records 0); in real mode they are
// measured wall-clock seconds.
type Phase uint8

// The five phases of a DLion worker's loop (§5 time breakdowns).
const (
	PhaseCompute   Phase = iota // forward+backward pass (IterSeconds)
	PhaseSerialize              // encoding messages onto the wire / egress serialization
	PhaseSend                   // transport send / modeled propagation delay
	PhaseRecvWait               // blocked on the sync strategy waiting for peer gradients
	PhaseApply                  // applying remote gradients and DKT weight merges
	NumPhases
)

var phaseNames = [NumPhases]string{"compute", "serialize", "send", "recv_wait", "apply"}

// String returns the phase's METRICS.md name.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// MsgClass buckets wire messages for byte accounting: bulk gradient
// payloads, bulk DKT weight payloads, and small control traffic (loss/RCP
// reports, DKT requests, sync signals).
type MsgClass uint8

// Message classes.
const (
	ClassGradient MsgClass = iota
	ClassWeights
	ClassControl
	NumClasses
)

var classNames = [NumClasses]string{"gradient", "weights", "control"}

// String returns the class's METRICS.md name.
func (c MsgClass) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return "unknown"
}

// Counter is a monotonically increasing atomic counter. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value that also tracks its high-water
// mark. All methods are safe for concurrent use and no-ops on nil.
type Gauge struct{ v, max atomic.Int64 }

// Set records the current value and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Load returns the last value set (0 on a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 on a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Registry is a named set of counters and gauges shared by the subsystems
// of one process (broker lists, FIFO senders, reconnect loops, ...).
// Lookup allocates on first use of a name and is mutex-guarded; recording
// through the returned handles is lock-free. A nil *Registry hands out nil
// handles, so "no registry configured" disables every counter downstream.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, gauges: map[string]*Gauge{}}
}

// Counter returns the named counter, creating it if needed (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// AttachCounter registers an externally owned counter under name, so
// package-level counters (e.g. the tensor workspace telemetry) appear in
// snapshots and expvar next to registry-born ones. Re-attaching a name
// replaces the previous handle. No-op on a nil registry or nil counter.
func (r *Registry) AttachCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	r.counters[name] = c
}

// AttachGauge registers an externally owned gauge under name. Re-attaching
// a name replaces the previous handle. No-op on a nil registry or nil gauge.
func (r *Registry) AttachGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	r.gauges[name] = g
}

// Snapshot returns every metric as name → value. Gauges contribute their
// current value under their name and the high-water mark under
// name + ".max". A nil registry snapshots to an empty map.
func (r *Registry) Snapshot() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
		out[name+".max"] = g.Max()
	}
	return out
}

// WorkerObs accumulates one worker's phase times and per-class transfer
// counters. All recording methods are atomic (real mode calls them from
// the event loop and sender goroutines concurrently) and no-ops on a nil
// receiver — the disabled fast path.
type WorkerObs struct {
	phaseNS   [NumPhases]atomic.Int64 // nanoseconds (virtual or wall)
	sentBytes [NumClasses]atomic.Int64
	sentMsgs  [NumClasses]atomic.Int64
	recvBytes [NumClasses]atomic.Int64
	recvMsgs  [NumClasses]atomic.Int64

	livenessExpiries atomic.Int64
	syncBlocks       atomic.Int64

	// wire.quant_bytes_saved (METRICS.md): wire bytes avoided by encoding
	// gradient selections at reduced precision instead of f32.
	quantBytesSaved atomic.Int64

	// Elastic membership (METRICS.md §membership): current roster size,
	// roster epoch, iterations completed below the quorum floor, and the
	// admission handshake latency (0 for founders). joinHist, when attached,
	// additionally feeds a cluster-level join latency histogram.
	rosterSize    atomic.Int64
	epoch         atomic.Int64
	degradedIters atomic.Int64
	joinLatencyNS atomic.Int64
	joinHist      *Histogram
}

// NewWorkerObs returns a zeroed per-worker sink.
func NewWorkerObs() *WorkerObs { return &WorkerObs{} }

// AddPhase charges seconds (virtual or wall) to phase p. Negative or NaN
// durations are dropped — clock skew must not corrupt the breakdown.
func (o *WorkerObs) AddPhase(p Phase, seconds float64) {
	if o == nil || !(seconds > 0) || p >= NumPhases {
		return
	}
	o.phaseNS[p].Add(int64(seconds * 1e9))
}

// PhaseSeconds returns the accumulated time in phase p.
func (o *WorkerObs) PhaseSeconds(p Phase) float64 {
	if o == nil || p >= NumPhases {
		return 0
	}
	return float64(o.phaseNS[p].Load()) / 1e9
}

// AddSent records an outbound message of class c with the given wire size.
func (o *WorkerObs) AddSent(c MsgClass, bytes int) {
	if o == nil || c >= NumClasses {
		return
	}
	o.sentMsgs[c].Add(1)
	o.sentBytes[c].Add(int64(bytes))
}

// AddRecv records a delivered inbound message of class c.
func (o *WorkerObs) AddRecv(c MsgClass, bytes int) {
	if o == nil || c >= NumClasses {
		return
	}
	o.recvMsgs[c].Add(1)
	o.recvBytes[c].Add(int64(bytes))
}

// AddQuantSaved records wire bytes avoided by reduced-precision encoding.
func (o *WorkerObs) AddQuantSaved(bytes int) {
	if o != nil && bytes > 0 {
		o.quantBytesSaved.Add(int64(bytes))
	}
}

// QuantBytesSaved returns the accumulated reduced-precision byte savings.
func (o *WorkerObs) QuantBytesSaved() int64 {
	if o == nil {
		return 0
	}
	return o.quantBytesSaved.Load()
}

// IncLivenessExpiry records one peer transitioning live → presumed dead.
func (o *WorkerObs) IncLivenessExpiry() {
	if o != nil {
		o.livenessExpiries.Add(1)
	}
}

// IncSyncBlock records the worker blocking on its synchronization strategy.
func (o *WorkerObs) IncSyncBlock() {
	if o != nil {
		o.syncBlocks.Add(1)
	}
}

// SetMembership records the worker's current roster size and roster epoch.
// The roster size gauge keeps its high-water mark via Snapshot consumers;
// here it is a plain last-value pair updated on every epoch change.
func (o *WorkerObs) SetMembership(size, epoch int64) {
	if o == nil {
		return
	}
	o.rosterSize.Store(size)
	o.epoch.Store(epoch)
}

// IncDegradedIter records one iteration completed below the quorum floor.
func (o *WorkerObs) IncDegradedIter() {
	if o != nil {
		o.degradedIters.Add(1)
	}
}

// SetJoinHistogram attaches a (usually registry-owned) histogram that
// ObserveJoin also feeds, aggregating join latency across workers. Call
// before Start; no-op on a nil sink.
func (o *WorkerObs) SetJoinHistogram(h *Histogram) {
	if o != nil {
		o.joinHist = h
	}
}

// ObserveJoin records the admission handshake latency in seconds (HELLO
// sent → WELCOME adopted, or → solo fallback).
func (o *WorkerObs) ObserveJoin(seconds float64) {
	if o == nil || !(seconds >= 0) {
		return
	}
	o.joinLatencyNS.Store(int64(seconds * 1e9))
	o.joinHist.Observe(seconds)
}

// Snapshot renders the sink as the report schema's per-worker record. A
// nil sink snapshots to a zeroed record with the given id.
func (o *WorkerObs) Snapshot(id int) WorkerReport {
	w := WorkerReport{
		ID:        id,
		Phases:    map[string]float64{},
		SentBytes: map[string]int64{},
		SentMsgs:  map[string]int64{},
		RecvBytes: map[string]int64{},
		RecvMsgs:  map[string]int64{},
	}
	if o == nil {
		return w
	}
	for p := Phase(0); p < NumPhases; p++ {
		w.Phases[p.String()] = o.PhaseSeconds(p)
	}
	for c := MsgClass(0); c < NumClasses; c++ {
		w.SentBytes[c.String()] = o.sentBytes[c].Load()
		w.SentMsgs[c.String()] = o.sentMsgs[c].Load()
		w.RecvBytes[c.String()] = o.recvBytes[c].Load()
		w.RecvMsgs[c.String()] = o.recvMsgs[c].Load()
	}
	w.LivenessExpiries = o.livenessExpiries.Load()
	w.SyncBlocks = o.syncBlocks.Load()
	w.QuantBytesSaved = o.quantBytesSaved.Load()
	w.RosterSize = o.rosterSize.Load()
	w.Epoch = o.epoch.Load()
	w.DegradedIters = o.degradedIters.Load()
	w.JoinLatencyS = float64(o.joinLatencyNS.Load()) / 1e9
	return w
}
