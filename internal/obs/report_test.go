package obs

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	r := NewReport("sim-run", "dlion/Homo A")
	r.Config = map[string]any{"horizon": 300.0, "seed": 7.0}
	o := NewWorkerObs()
	o.AddPhase(PhaseCompute, 2)
	o.AddSent(ClassGradient, 512)
	w := o.Snapshot(0)
	w.Iters = 42
	r.Workers = []WorkerReport{w}
	r.Counters = map[string]int64{"queue.pushed": 9}
	r.Timeline = []TimelinePoint{{T: 0, MeanAcc: 0.1}, {T: 50, MeanAcc: 0.8, StdAcc: 0.02, Loss: 0.5}}
	r.Summary = map[string]float64{"final_acc": 0.8}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.Kind != "sim-run" || got.Name != "dlion/Homo A" {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Workers) != 1 || got.Workers[0].Iters != 42 {
		t.Fatalf("workers: %+v", got.Workers)
	}
	if got.Workers[0].Phases["compute"] != 2 || got.Workers[0].SentBytes["gradient"] != 512 {
		t.Fatalf("worker breakdown: %+v", got.Workers[0])
	}
	if got.Counters["queue.pushed"] != 9 || got.Summary["final_acc"] != 0.8 {
		t.Fatalf("counters/summary: %+v", got)
	}
	if len(got.Timeline) != 2 || got.Timeline[1].MeanAcc != 0.8 {
		t.Fatalf("timeline: %+v", got.Timeline)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	r := &Report{Schema: "dlion.bench.v999", Kind: "sim-run"}
	f := *r
	if err := (&f).WriteFile(path); err == nil {
		// WriteFile stamps empty schemas only; v999 is preserved
		if _, err := ReadFile(path); err == nil {
			t.Fatal("ReadFile accepted wrong schema version")
		}
	}
}

func TestParseGoBench(t *testing.T) {
	raw := `goos: linux
goarch: amd64
pkg: dlion/internal/tensor
cpu: fake
BenchmarkMatMul-8           	     100	  11780634 ns/op	 182.30 MB/s	     512 B/op	      10 allocs/op
BenchmarkEncode/gradient-8  	    5000	      2500 ns/op
some log line
PASS
ok  	dlion/internal/tensor	2.198s
`
	got, err := ParseGoBench(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(got), got)
	}
	b := got[0]
	if b.Name != "BenchmarkMatMul-8" || b.Runs != 100 || b.NsPerOp != 11780634 {
		t.Fatalf("first: %+v", b)
	}
	if b.MBPerSec != 182.30 || b.BytesPerOp != 512 || b.AllocsPerOp != 10 {
		t.Fatalf("first extras: %+v", b)
	}
	if got[1].Name != "BenchmarkEncode/gradient-8" || got[1].NsPerOp != 2500 {
		t.Fatalf("second: %+v", got[1])
	}
}

// TestParseBenchExtraUnits: custom b.ReportMetric units (the sim engine's
// events/s throughput) must survive parsing into BenchResult.Extra.
func TestParseBenchExtraUnits(t *testing.T) {
	raw := "BenchmarkSimEvents/n=32-8  \t 10\t 5000000 ns/op\t  812345 events/s\n"
	got, err := ParseGoBench(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d results, want 1", len(got))
	}
	if got[0].Extra["events/s"] != 812345 {
		t.Fatalf("extra units %+v, want events/s=812345", got[0].Extra)
	}
}
