package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read as zero")
	}
	if s := h.Summary(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("nil summary %+v", s)
	}
}

func TestHistogramEmptyAndBadValues(t *testing.T) {
	h := NewHistogram()
	h.Observe(-1)
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("bad observations recorded: count %d", h.Count())
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile %v", q)
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{0.001, 0.002, 0.003, 0.004} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	if got, want := h.Sum(), 0.010; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum %v want %v", got, want)
	}
	if got, want := h.Mean(), 0.0025; math.Abs(got-want) > 1e-6 {
		t.Fatalf("mean %v want %v", got, want)
	}
	if got := h.Max(); got != 0.004 {
		t.Fatalf("max %v", got)
	}
}

// Quantiles must land within one bucket's relative error of the true value.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-3)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.500}, {0.90, 0.900}, {0.99, 0.990}, {1.00, 1.000},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > histGrowth-1 {
			t.Errorf("q%.2f = %v, want ~%v (rel err %.3f)", tc.q, got, tc.want, rel)
		}
	}
	// The max is exact and bounds every quantile.
	if h.Quantile(0.999) > h.Max() {
		t.Fatalf("quantile above max")
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)    // below first bound
	h.Observe(1e-9) // deep in bucket 0
	h.Observe(1e9)  // far past the last finite bound
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Max(); got != 1e9 {
		t.Fatalf("max %v", got)
	}
	// The overflow bucket reports the exact max, not a bucket bound.
	if got := h.Quantile(1); got != 1e9 {
		t.Fatalf("q100 %v", got)
	}
	if got := h.Quantile(0.1); got >= histBase {
		t.Fatalf("q10 %v should sit in the sub-µs bucket", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count %d want %d", h.Count(), goroutines*per)
	}
	want := float64(goroutines*per-1) * 1e-6
	if h.Max() != want {
		t.Fatalf("max %v want %v", h.Max(), want)
	}
}

func TestRegistryHistogram(t *testing.T) {
	var nilReg *Registry
	if nilReg.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
	nilReg.Histogram("x").Observe(1) // must not panic
	if len(nilReg.HistogramSummaries()) != 0 {
		t.Fatal("nil registry summaries must be empty")
	}

	reg := NewRegistry()
	h := reg.Histogram("serve.latency")
	if h == nil || reg.Histogram("serve.latency") != h {
		t.Fatal("histogram lookup must be stable")
	}
	h.Observe(0.5)
	reg.Counter("serve.sheds").Add(3)

	sums := reg.HistogramSummaries()
	if s, ok := sums["serve.latency"]; !ok || s.Count != 1 {
		t.Fatalf("summaries %+v", sums)
	}
	ev := reg.Expvar()
	if _, ok := ev["serve.latency"].(HistogramSummary); !ok {
		t.Fatalf("expvar missing histogram: %+v", ev)
	}
	if v, ok := ev["serve.sheds"].(int64); !ok || v != 3 {
		t.Fatalf("expvar missing counter: %+v", ev)
	}
}
