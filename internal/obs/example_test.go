package obs_test

import (
	"fmt"
	"os"

	"dlion/internal/obs"
)

// ExampleWorkerObs shows the per-worker sink: phases accumulate seconds,
// transfers accumulate per message class, and Snapshot renders the record
// that lands in a BENCH report's workers section.
func ExampleWorkerObs() {
	o := obs.NewWorkerObs()
	o.AddPhase(obs.PhaseCompute, 1.5)
	o.AddPhase(obs.PhaseCompute, 0.5)
	o.AddPhase(obs.PhaseRecvWait, 0.25)
	o.AddSent(obs.ClassGradient, 4096)
	o.AddSent(obs.ClassGradient, 4096)

	w := o.Snapshot(0)
	fmt.Printf("compute %.2fs, recv-wait %.2fs\n",
		w.Phases["compute"], w.Phases["recv_wait"])
	fmt.Printf("gradient: %d msgs, %d bytes\n",
		w.SentMsgs["gradient"], w.SentBytes["gradient"])
	// Output:
	// compute 2.00s, recv-wait 0.25s
	// gradient: 2 msgs, 8192 bytes
}

// ExampleRegistry shows named process-wide counters and gauges. A nil
// registry would hand out nil handles, turning the same calls into no-ops
// — which is how subsystems run uninstrumented by default.
func ExampleRegistry() {
	reg := obs.NewRegistry()
	reg.Counter("queue.pushed").Add(3)
	reg.Counter("queue.pushed").Inc()
	reg.Gauge("queue.list_depth").Set(7)
	reg.Gauge("queue.list_depth").Set(2)

	snap := reg.Snapshot()
	fmt.Println("pushed:", snap["queue.pushed"])
	fmt.Println("depth:", snap["queue.list_depth"], "max:", snap["queue.list_depth.max"])
	// Output:
	// pushed: 4
	// depth: 2 max: 7
}

// ExampleReport builds a minimal sim-run report and prints it in the
// BENCH_*.json schema documented in METRICS.md.
func ExampleReport() {
	r := obs.NewReport("sim-run", "demo")
	o := obs.NewWorkerObs()
	o.AddPhase(obs.PhaseCompute, 2)
	r.Workers = []obs.WorkerReport{o.Snapshot(0)}
	r.Summary = map[string]float64{"final_acc": 0.9}
	r.WriteJSON(os.Stdout)
	// Output:
	// {
	//   "schema": "dlion.bench.v1",
	//   "kind": "sim-run",
	//   "name": "demo",
	//   "workers": [
	//     {
	//       "id": 0,
	//       "phases": {
	//         "apply": 0,
	//         "compute": 2,
	//         "recv_wait": 0,
	//         "send": 0,
	//         "serialize": 0
	//       },
	//       "sent_bytes": {
	//         "control": 0,
	//         "gradient": 0,
	//         "weights": 0
	//       },
	//       "sent_msgs": {
	//         "control": 0,
	//         "gradient": 0,
	//         "weights": 0
	//       },
	//       "recv_bytes": {
	//         "control": 0,
	//         "gradient": 0,
	//         "weights": 0
	//       },
	//       "recv_msgs": {
	//         "control": 0,
	//         "gradient": 0,
	//         "weights": 0
	//       }
	//     }
	//   ],
	//   "summary": {
	//     "final_acc": 0.9
	//   }
	// }
}
