package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishMu serializes Publish's check-then-publish against the global
// expvar namespace (expvar.Publish panics on duplicates).
var publishMu sync.Mutex

// Publish registers fn's result as the expvar variable name, making it
// visible on /debug/vars. Unlike expvar.Publish it is idempotent: if the
// name is already taken (e.g. a test wiring two nodes in one process) the
// existing variable is kept and Publish is a no-op.
func Publish(name string, fn func() any) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(fn))
}

// PublishRegistry exposes reg's snapshot — counters, gauges, and histogram
// summaries — as the expvar variable name.
func PublishRegistry(name string, reg *Registry) {
	Publish(name, func() any { return reg.Expvar() })
}

// DebugServer is the HTTP server behind a binary's -debug-addr flag. It
// serves the standard Go profiling endpoints (/debug/pprof/...) and the
// process's published expvars (/debug/vars) on a dedicated mux, leaving
// http.DefaultServeMux untouched.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeDebug starts a debug server on addr (use "127.0.0.1:0" for an
// ephemeral port) and, when reg is non-nil, publishes it under the expvar
// name "dlion". It returns once the listener is bound.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	if reg != nil {
		PublishRegistry("dlion", reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "dlion debug server — see /debug/pprof/ and /debug/vars")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &DebugServer{srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's bound address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *DebugServer) Close() error { return s.srv.Close() }
