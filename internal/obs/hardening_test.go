package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentAttachSnapshot hammers one registry from many
// goroutines doing lookups, attaches, recording, and snapshots at once —
// the access pattern of a controller process where jobs come and go while
// the debug endpoint renders /debug/vars. Run under -race.
func TestRegistryConcurrentAttachSnapshot(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const rounds = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("m%d", i%7)
				r.Counter(name).Inc()
				r.Gauge(name + ".g").Set(int64(i))
				r.Histogram(name + ".h").Observe(float64(i) * 1e-4)
				r.AttachCounter(fmt.Sprintf("ext%d", g), &Counter{})
				r.AttachGauge(fmt.Sprintf("extg%d", g), &Gauge{})
				if i%10 == 0 {
					r.Snapshot()
					r.HistogramSummaries()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := r.Snapshot()
	var total int64
	for i := 0; i < 7; i++ {
		total += snap[fmt.Sprintf("m%d", i)]
	}
	if want := int64(goroutines * rounds); total != want {
		t.Errorf("counters sum to %d, want %d", total, want)
	}
	for i := 0; i < 7; i++ {
		name := fmt.Sprintf("m%d.h", i)
		if s := r.HistogramSummaries()[name]; s.Count == 0 {
			t.Errorf("histogram %s empty after concurrent observes", name)
		}
	}
}

// TestRegistryAttachReplaces checks the documented replace-on-reattach
// behavior: the snapshot follows the newest handle.
func TestRegistryAttachReplaces(t *testing.T) {
	r := NewRegistry()
	first := &Counter{}
	first.Add(5)
	r.AttachCounter("x", first)
	second := &Counter{}
	second.Add(9)
	r.AttachCounter("x", second)
	if got := r.Snapshot()["x"]; got != 9 {
		t.Errorf("snapshot x = %d, want the re-attached counter's 9", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	if s := h.Summary(); s.Count != 0 || s.Mean != 0 || s.Max != 0 || s.P99 != 0 {
		t.Errorf("empty Summary = %+v, want zeroes", s)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %g, want 0", got)
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	h := NewHistogram()
	const v = 0.0042
	h.Observe(v)
	// With one sample every quantile's owning bucket holds it, and the
	// interpolation is capped at the exact recorded max, so no quantile may
	// exceed v; the bucket floor bounds it from below.
	lo, _ := bucketBounds(bucketOf(v))
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got > v || got < lo {
			t.Errorf("single-sample Quantile(%g) = %g outside [%g,%g]", q, got, lo, v)
		}
	}
	if got := h.Max(); got != v {
		t.Errorf("Max = %g, want exact %g", got, v)
	}
}

func TestHistogramQuantileAllOneBucket(t *testing.T) {
	h := NewHistogram()
	// All observations land in one bucket: identical values.
	const v = 0.010
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	lo, hi := bucketBounds(bucketOf(v))
	if hi > v { // interpolation cap: max bounds the bucket ceiling
		hi = v
	}
	for _, q := range []float64{0.01, 0.5, 0.9, 0.999} {
		got := h.Quantile(q)
		if got < lo || got > v {
			t.Errorf("Quantile(%g) = %g outside bucket bounds [%g,%g]", q, got, lo, hi)
		}
	}
	if got := h.Quantile(1); got > v {
		t.Errorf("Quantile(1) = %g above the exact max %g", got, v)
	}
}

func TestHistogramQuantileZeroValues(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	// Bucket 0 is [0, histBase); the max is exactly 0, so the cap pins
	// every quantile to 0.
	for _, q := range []float64{0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("all-zero Quantile(%g) = %g, want 0", q, got)
		}
	}
}

func TestHistogramRejectsGarbage(t *testing.T) {
	h := NewHistogram()
	h.Observe(-1)
	h.Observe(nan())
	if h.Count() != 0 {
		t.Errorf("count %d after negative/NaN observes, want 0", h.Count())
	}
}

func nan() float64 { z := 0.0; return z / z }
