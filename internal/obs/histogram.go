package obs

import (
	"math"
	"sync/atomic"
)

// Histogram bucket geometry: bucket 0 holds [0, histBase); bucket i in
// [1, numBuckets-1) holds [histBase·g^(i-1), histBase·g^i); the last bucket
// is the overflow catch-all. With histBase = 1µs and 25% growth the range
// reaches ~1500 s, which covers every latency and batch-size distribution
// this repo records while keeping relative quantile error under the growth
// factor.
const (
	numBuckets = 96
	histBase   = 1e-6
	histGrowth = 1.25
)

var logHistGrowth = math.Log(histGrowth)

// Histogram is a lock-free fixed-bucket histogram of non-negative float64
// observations (seconds for latencies, counts for batch sizes). Recording
// is a single atomic add on the owning bucket plus count/sum/max updates,
// so it is safe — and cheap — to call from every request. Like Counter and
// Gauge, every method is a no-op (or zero) on a nil receiver.
//
// Quantiles are estimated by linear interpolation inside the owning
// exponential bucket, so their relative error is bounded by the 25% bucket
// growth; the recorded maximum is exact.
type Histogram struct {
	count   atomic.Int64
	sumNano atomic.Int64  // sum in 1e-9 fixed point, overflow-safe to ~9e9 units
	maxBits atomic.Uint64 // math.Float64bits of the max (bit order = value order for v >= 0)
	buckets [numBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a non-negative observation to its bucket index.
func bucketOf(v float64) int {
	if v < histBase {
		return 0
	}
	i := 1 + int(math.Log(v/histBase)/logHistGrowth)
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// bucketBounds returns bucket i's [lo, hi) value range. The last bucket's
// hi is +Inf.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, histBase
	}
	lo = histBase * math.Pow(histGrowth, float64(i-1))
	if i == numBuckets-1 {
		return lo, math.Inf(1)
	}
	return lo, lo * histGrowth
}

// Observe records one value. Negative and NaN observations are dropped —
// clock skew must not corrupt the distribution.
func (h *Histogram) Observe(v float64) {
	if h == nil || !(v >= 0) {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sumNano.Add(int64(v * 1e9))
	bits := math.Float64bits(v)
	for {
		m := h.maxBits.Load()
		if bits <= m || h.maxBits.CompareAndSwap(m, bits) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNano.Load()) / 1e9
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded values.
// It returns 0 on an empty (or nil) histogram. Concurrent Observes make
// the answer approximate, which is fine for the monitoring use case.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	max := h.Max()
	var cum int64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		lo, hi := bucketBounds(i)
		// The overflow bucket has no finite width; the exact max is the
		// best available upper estimate. Also cap interpolation at max so
		// a lone large value doesn't report above anything ever observed.
		if math.IsInf(hi, 1) || hi > max {
			hi = max
		}
		if hi < lo {
			return lo
		}
		frac := float64(rank-cum) / float64(n)
		return lo + (hi-lo)*frac
	}
	return max
}

// HistogramSummary is the report/expvar rendering of a histogram:
// count, mean, max and the standard latency quantiles.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary renders the histogram (zero-valued on nil or empty).
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	return HistogramSummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Histogram returns the named histogram, creating it if needed (nil on a
// nil registry), mirroring Registry.Counter and Registry.Gauge.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = map[string]*Histogram{}
	}
	h := r.histograms[name]
	if h == nil {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// HistogramSummaries renders every registered histogram as name → summary.
// A nil registry yields an empty map.
func (r *Registry) HistogramSummaries() map[string]HistogramSummary {
	out := map[string]HistogramSummary{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	hs := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hs[name] = h
	}
	r.mu.Unlock()
	for name, h := range hs {
		out[name] = h.Summary()
	}
	return out
}

// Expvar renders the registry for /debug/vars: the counter/gauge snapshot
// merged with histogram summaries (one JSON object per histogram).
func (r *Registry) Expvar() map[string]any {
	out := map[string]any{}
	for name, v := range r.Snapshot() {
		out[name] = v
	}
	for name, s := range r.HistogramSummaries() {
		out[name] = s
	}
	return out
}
