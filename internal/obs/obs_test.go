package obs

import (
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Set(3)
	if g.Load() != 3 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d, want 3 max 7", g.Load(), g.Max())
	}
}

func TestNilSinksAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Load() != 0 {
		t.Fatal("nil counter must load 0")
	}
	var g *Gauge
	g.Set(9)
	if g.Load() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge must load 0")
	}
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var o *WorkerObs
	o.AddPhase(PhaseCompute, 1)
	o.AddSent(ClassGradient, 100)
	o.AddRecv(ClassWeights, 100)
	o.IncLivenessExpiry()
	o.IncSyncBlock()
	if o.PhaseSeconds(PhaseCompute) != 0 {
		t.Fatal("nil worker obs must read 0")
	}
	w := o.Snapshot(3)
	if w.ID != 3 || w.Phases["compute"] != 0 {
		t.Fatalf("nil snapshot: %+v", w)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Counter("a").Add(3) // same handle by name
	r.Gauge("depth").Set(10)
	r.Gauge("depth").Set(4)
	snap := r.Snapshot()
	if snap["a"] != 5 {
		t.Fatalf("a = %d, want 5", snap["a"])
	}
	if snap["depth"] != 4 || snap["depth.max"] != 10 {
		t.Fatalf("depth = %d max %d, want 4 max 10", snap["depth"], snap["depth.max"])
	}
}

func TestRegistryAttach(t *testing.T) {
	r := NewRegistry()
	c := &Counter{}
	c.Add(7)
	g := &Gauge{}
	g.Set(9)
	r.AttachCounter("ext.count", c)
	r.AttachGauge("ext.depth", g)
	snap := r.Snapshot()
	if snap["ext.count"] != 7 || snap["ext.depth"] != 9 {
		t.Fatalf("attached metrics missing from snapshot: %v", snap)
	}
	if r.Counter("ext.count") != c {
		t.Fatal("lookup by name must return the attached handle")
	}
	c.Inc()
	if r.Snapshot()["ext.count"] != 8 {
		t.Fatal("attached counter must stay live")
	}
	// nil-safety: no panics, no effect
	var nilReg *Registry
	nilReg.AttachCounter("x", c)
	nilReg.AttachGauge("x", g)
	r.AttachCounter("nil", nil)
	r.AttachGauge("nil", nil)
	if _, ok := r.Snapshot()["nil"]; ok {
		t.Fatal("nil handles must not be attached")
	}
}

func TestWorkerObsAccumulates(t *testing.T) {
	o := NewWorkerObs()
	o.AddPhase(PhaseCompute, 1.5)
	o.AddPhase(PhaseCompute, 0.5)
	o.AddPhase(PhaseRecvWait, 0.25)
	o.AddPhase(PhaseCompute, -1) // dropped
	o.AddSent(ClassGradient, 100)
	o.AddSent(ClassGradient, 50)
	o.AddSent(ClassControl, 17)
	o.AddRecv(ClassWeights, 1000)
	o.IncLivenessExpiry()
	o.IncSyncBlock()
	o.IncSyncBlock()

	if got := o.PhaseSeconds(PhaseCompute); got < 1.999 || got > 2.001 {
		t.Fatalf("compute = %v, want 2", got)
	}
	w := o.Snapshot(1)
	if w.Phases["recv_wait"] < 0.249 || w.Phases["recv_wait"] > 0.251 {
		t.Fatalf("recv_wait = %v", w.Phases["recv_wait"])
	}
	if w.SentBytes["gradient"] != 150 || w.SentMsgs["gradient"] != 2 {
		t.Fatalf("gradient sent: %d bytes / %d msgs", w.SentBytes["gradient"], w.SentMsgs["gradient"])
	}
	if w.SentBytes["control"] != 17 || w.RecvBytes["weights"] != 1000 {
		t.Fatalf("class accounting wrong: %+v", w)
	}
	if w.LivenessExpiries != 1 || w.SyncBlocks != 2 {
		t.Fatalf("expiries %d blocks %d", w.LivenessExpiries, w.SyncBlocks)
	}
}

func TestWorkerObsConcurrent(t *testing.T) {
	o := NewWorkerObs()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				o.AddPhase(PhaseSend, 0.001)
				o.AddSent(ClassGradient, 10)
			}
		}()
	}
	wg.Wait()
	if got := o.PhaseSeconds(PhaseSend); got < 7.99 || got > 8.01 {
		t.Fatalf("send = %v, want 8", got)
	}
	if got := o.Snapshot(0).SentBytes["gradient"]; got != 80000 {
		t.Fatalf("sent = %d, want 80000", got)
	}
}

func TestPhaseAndClassNames(t *testing.T) {
	want := []string{"compute", "serialize", "send", "recv_wait", "apply"}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() != want[p] {
			t.Fatalf("phase %d = %q, want %q", p, p.String(), want[p])
		}
	}
	if Phase(200).String() != "unknown" || MsgClass(200).String() != "unknown" {
		t.Fatal("out-of-range names must be unknown")
	}
}

// TestMembershipObs pins the elastic-membership sink: roster/epoch gauges,
// the degraded-iteration counter, join latency (snapshot field plus the
// optional registry histogram), and nil-sink safety throughout.
func TestMembershipObs(t *testing.T) {
	o := NewWorkerObs()
	reg := NewRegistry()
	o.SetJoinHistogram(reg.Histogram("membership.join_latency"))

	o.SetMembership(5, 2)
	o.IncDegradedIter()
	o.IncDegradedIter()
	o.ObserveJoin(1.5)

	w := o.Snapshot(3)
	if w.RosterSize != 5 || w.Epoch != 2 {
		t.Fatalf("roster/epoch %d/%d, want 5/2", w.RosterSize, w.Epoch)
	}
	if w.DegradedIters != 2 {
		t.Fatalf("degraded iters %d, want 2", w.DegradedIters)
	}
	if w.JoinLatencyS < 1.4 || w.JoinLatencyS > 1.6 {
		t.Fatalf("join latency %g, want ~1.5", w.JoinLatencyS)
	}
	h := reg.HistogramSummaries()["membership.join_latency"]
	if h.Count != 1 || h.Max < 1.4 {
		t.Fatalf("histogram summary %+v, want one ~1.5s observation", h)
	}

	// negative latency is clock skew, not data
	o.ObserveJoin(-1)
	if got := o.Snapshot(3).JoinLatencyS; got < 1.4 {
		t.Fatalf("negative latency overwrote the record: %g", got)
	}

	// every method must be a no-op on a nil sink
	var nilObs *WorkerObs
	nilObs.SetMembership(1, 1)
	nilObs.IncDegradedIter()
	nilObs.SetJoinHistogram(nil)
	nilObs.ObserveJoin(1)
	if w := nilObs.Snapshot(0); w.RosterSize != 0 || w.DegradedIters != 0 {
		t.Fatalf("nil sink snapshot %+v, want zeroed", w)
	}
}
