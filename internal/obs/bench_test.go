package obs

// These benchmarks back the nil-sink design claim: with observability
// disabled the hot path pays one nil check per recording call and performs
// no stores or allocations. Run with:
//
//	go test -bench=. -benchmem ./internal/obs
//
// Expect the Nil variants at well under a nanosecond per op, 0 allocs.

import "testing"

func BenchmarkWorkerObsAddPhaseNil(b *testing.B) {
	var o *WorkerObs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.AddPhase(PhaseCompute, 0.001)
	}
}

func BenchmarkWorkerObsAddPhase(b *testing.B) {
	o := NewWorkerObs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.AddPhase(PhaseCompute, 0.001)
	}
}

func BenchmarkWorkerObsAddSentNil(b *testing.B) {
	var o *WorkerObs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.AddSent(ClassGradient, 512)
	}
}

func BenchmarkWorkerObsAddSent(b *testing.B) {
	o := NewWorkerObs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.AddSent(ClassGradient, 512)
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
