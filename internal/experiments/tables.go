package experiments

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"

	"dlion/internal/env"
	"dlion/internal/report"
)

func init() {
	register("table1", "Lines of code to emulate systems in DLion", runTable1)
	register("table2", "Measured network bandwidth between AWS regions", runTable2)
	register("table3", "Emulation details for micro-cloud environments", runTable3)
}

// runTable1 reproduces Table 1's point — each comparison system is a small
// plugin over the shared framework — by counting the actual lines of this
// repository's plugin surface: the per-system gradient-selection algorithm
// (the generate_partial_gradients analog in internal/grad) and the preset
// wiring (internal/systems). Counting is done from source when the repo is
// available, mirroring how the paper counted changed lines.
func runTable1(p Profile) (*Outcome, error) {
	t := report.NewTable("Table 1: plugin size per system (lines of Go)",
		"API", "Baseline", "Hop", "Gaia", "Ako", "DLion(MaxN)")
	selector := map[string]string{
		"Baseline":    "Full",
		"Hop":         "Full", // Hop exchanges whole gradients; its plugin is the sync strategy
		"Gaia":        "Gaia",
		"Ako":         "Ako",
		"DLion(MaxN)": "MaxN",
	}
	selLines := map[string]int{}
	for sys, typ := range selector {
		n, err := countTypeLines("internal/grad", typ)
		if err != nil {
			return nil, err
		}
		selLines[sys] = n
	}
	presetLines := map[string]int{}
	for sys, fn := range map[string]string{
		"Baseline": "Baseline", "Hop": "Hop", "Gaia": "Gaia",
		"Ako": "Ako", "DLion(MaxN)": "DLion",
	} {
		n, err := countFuncLines("internal/systems", fn)
		if err != nil {
			return nil, err
		}
		presetLines[sys] = n
	}
	order := []string{"Baseline", "Hop", "Gaia", "Ako", "DLion(MaxN)"}
	selRow := []any{"generate_partial_gradients (selector impl)"}
	cfgRow := []any{"system preset (selector + synch_training wiring)"}
	for _, s := range order {
		selRow = append(selRow, selLines[s])
		cfgRow = append(cfgRow, presetLines[s])
	}
	t.AddRow(selRow...)
	t.AddRow(cfgRow...)
	o := &Outcome{ID: "table1", Title: "Plugin lines of code",
		Text: t.String(),
		Notes: []string{
			"The paper reports <=23 changed lines per emulated system; here the entire",
			"per-system surface is the selector implementation plus a ~10-line preset,",
			"confirming the framework's generality claim.",
		}}
	for _, s := range order {
		o.addValue("preset/"+s, float64(presetLines[s]))
	}
	return o, nil
}

// countFuncLines counts the source lines of a named top-level function in
// a package directory (relative to the repo root).
func countFuncLines(dir, name string) (int, error) {
	return countDeclLines(dir, name, false)
}

// countTypeLines counts the lines of a named type declaration plus all of
// its methods and same-named constructor (NewX).
func countTypeLines(dir, name string) (int, error) {
	return countDeclLines(dir, name, true)
}

func countDeclLines(dir, name string, includeMethods bool) (int, error) {
	root, err := repoRoot()
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), nil, 0)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				total += declLinesIfNamed(fset, decl, name, includeMethods)
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("experiments: declaration %q not found in %s", name, dir)
	}
	return total, nil
}

// declLinesIfNamed returns the line count of decl if it is the named
// function, the named type declaration, or (when includeMethods) a method
// on the named type or its NewX constructor; otherwise 0.
func declLinesIfNamed(fset *token.FileSet, decl ast.Decl, name string, includeMethods bool) int {
	span := func(n ast.Node) int {
		return fset.Position(n.End()).Line - fset.Position(n.Pos()).Line + 1
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Recv == nil {
			if d.Name.Name == name || (includeMethods && d.Name.Name == "New"+name) {
				return span(d)
			}
			return 0
		}
		if !includeMethods {
			return 0
		}
		// method: match receiver base type
		t := d.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if ident, ok := t.(*ast.Ident); ok && ident.Name == name {
			return span(d)
		}
	case *ast.GenDecl:
		if d.Tok != token.TYPE {
			return 0
		}
		for _, spec := range d.Specs {
			if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == name {
				return span(ts)
			}
		}
	}
	return 0
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("experiments: go.mod not found above working directory")
		}
		dir = parent
	}
}

// runTable2 prints the AWS inter-region bandwidth matrix used to emulate
// WAN links.
func runTable2(Profile) (*Outcome, error) {
	cols := append([]string{"(Mbps)"}, abbrevRegions()...)
	t := report.NewTable("Table 2: measured bandwidth between AWS regions", cols...)
	for i, row := range env.Table2 {
		cells := []any{env.Table2Regions[i]}
		for j, v := range row {
			if i == j {
				cells = append(cells, "-")
			} else {
				cells = append(cells, int(v))
			}
		}
		t.AddRow(cells...)
	}
	return &Outcome{ID: "table2", Title: "AWS bandwidth matrix", Text: t.String(),
		Notes: []string{"Instantiated as the 'Table2 WAN' environment (simnet.FromMatrix)."}}, nil
}

func abbrevRegions() []string {
	out := make([]string, len(env.Table2Regions))
	for i, r := range env.Table2Regions {
		out[i] = r[:1]
	}
	out[4], out[5] = "S1", "S2"
	return out
}

// runTable3 prints every emulated environment with its compute and network
// settings at t=0 (the dynamic environments also list their later phases).
func runTable3(Profile) (*Outcome, error) {
	t := report.NewTable("Table 3: emulated micro-cloud environments",
		"Environment", "Computation (capacity units)", "Network (Mbps egress)")
	for _, name := range env.Names() {
		e, err := env.Get(name, 1)
		if err != nil {
			return nil, err
		}
		comp := ""
		net := ""
		for i := 0; i < e.N; i++ {
			if i > 0 {
				comp += "/"
				net += "/"
			}
			comp += fmt.Sprintf("%g", e.Computes[i].Capacity.At(0))
			bw, _ := e.Network.BandwidthAt(i, (i+1)%e.N, 0)
			net += fmt.Sprintf("%g", bw)
		}
		label := name
		if e.GPU {
			label += " (GPU)"
		}
		t.AddRow(label, comp, net)
	}
	return &Outcome{ID: "table3", Title: "Environments", Text: t.String(),
		Notes: []string{
			"Capacity units are CPU cores; one GPU = 30 units (p2.8xlarge = 240).",
			"Dynamic SYS A/B change compute and network at t=500s and t=1000s.",
		}}, nil
}
