package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Outcome is what one experiment produced: rendered text in the shape of
// the paper's table/figure, headline values for programmatic assertions,
// and notes documenting scale substitutions.
type Outcome struct {
	ID    string
	Title string
	Text  string
	// Values holds headline numbers keyed by short names, e.g.
	// "HeteroSYSA/DLion" -> final accuracy.
	Values map[string]float64
	Notes  []string
}

// addValue records a headline number.
func (o *Outcome) addValue(key string, v float64) {
	if o.Values == nil {
		o.Values = map[string]float64{}
	}
	o.Values[key] = v
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string // "table1", "fig11", ...
	Title string
	Run   func(p Profile) (*Outcome, error)
}

// registry is populated by the fig*/table* files' init-style definitions.
var registry []Experiment

func register(id, title string, run func(p Profile) (*Outcome, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every experiment in paper order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts tables first, then figures numerically, then ablations.
func orderKey(id string) string {
	switch {
	case strings.HasPrefix(id, "table"):
		return "0" + fmt.Sprintf("%04s", id[5:])
	case strings.HasPrefix(id, "fig"):
		num := id[3:]
		// pad the numeric prefix so fig9a < fig11
		i := 0
		for i < len(num) && num[i] >= '0' && num[i] <= '9' {
			i++
		}
		return "1" + fmt.Sprintf("%04s", num[:i]) + num[i:]
	default:
		return "2" + id
	}
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
		id, strings.Join(IDs(), ", "))
}

// IDs lists all experiment ids in order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}
