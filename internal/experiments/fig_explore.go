package experiments

import (
	"fmt"

	"dlion/internal/cluster"
	"dlion/internal/core"
	"dlion/internal/env"
	"dlion/internal/report"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
	"dlion/internal/systems"
)

func init() {
	register("fig5", "Accuracy vs epoch at which GBS doubles", runFig5)
	register("fig6", "LBS adaptation under GBS growth (Hetero CPU A)", runFig6)
	register("fig7", "Final accuracy vs Max N's N", runFig7)
	register("fig8", "Partial gradient size per link vs link bandwidth", runFig8)
	register("fig9a", "Time to target accuracy vs DKT period", runFig9a)
	register("fig9b", "Accuracy for DKT whom-to-send variants", runFig9b)
	register("fig9c", "Accuracy vs DKT merge ratio lambda", runFig9c)
	register("fig19", "LBS adaptation under dynamic compute capacity", runFig19)
	register("fig20", "Partial gradient size under dynamic bandwidth", runFig20)
}

// runFig5 doubles GBS at different training epochs and measures the final
// accuracy: doubling too early (epoch 0/1) should cost accuracy relative
// to doubling later, the finding the GBS controller's warm-up phase is
// built on.
func runFig5(p Profile) (*Outcome, error) {
	t := report.NewTable("Fig 5: accuracy when GBS doubles at a given epoch",
		"GBS doubles at epoch", "Final accuracy")
	o := &Outcome{ID: "fig5", Title: "GBS doubling start epoch"}
	cases := []struct {
		label string
		epoch float64
	}{
		{"0", 0}, {"1", 1}, {"2", 2}, {"4", 4}, {"never", 1e9},
	}
	for _, c := range cases {
		sys := systems.Baseline()
		sys.Name = "GBS@" + c.label
		sys.Batch.GBS = core.GBSConfig{Mode: "schedule", DoubleAtEpoch: c.epoch}
		accs, _, err := p.runAveraged(sys.Name, sys, "Homo A")
		if err != nil {
			return nil, err
		}
		mean := mean(accs)
		t.AddRow(c.label, mean)
		o.addValue("epoch"+c.label, mean)
	}
	o.Text = t.String()
	return o, nil
}

// runFig6 traces per-worker LBS while the auto GBS controller grows the
// global batch in the heterogeneous Hetero CPU A environment. The
// controller caps are pinned to the paper's full CIFAR10 size so growth is
// visible on the scaled dataset.
func runFig6(p Profile) (*Outcome, error) {
	sys := p.system(systems.DLion())
	sys.Batch.GBS = core.GBSConfig{
		Mode: "auto", AdjustPeriod: p.Horizon / 8, WarmupDuration: p.Horizon / 2,
		TrainSetSize: 60000,
	}
	e, err := env.Get("Hetero CPU A", p.Seed)
	if err != nil {
		return nil, err
	}
	cfg := p.clusterConfig(sys, e, 0)
	cfg.TracePeriod = p.TracePeriod
	res, err := cluster.Run(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig 6: GBS and per-worker LBS over time (cores 24/24/12/12/6/6)",
		"t(s)", "GBS", "w0", "w1", "w2", "w3", "w4", "w5")
	o := &Outcome{ID: "fig6", Title: "LBS adaptation"}
	for _, tr := range res.Traces {
		t.AddRow(fmt.Sprintf("%.0f", tr.T), tr.GBS,
			tr.LBS[0], tr.LBS[1], tr.LBS[2], tr.LBS[3], tr.LBS[4], tr.LBS[5])
	}
	last := res.Traces[len(res.Traces)-1]
	o.addValue("finalGBS", float64(last.GBS))
	o.addValue("w0_LBS", float64(last.LBS[0]))
	o.addValue("w4_LBS", float64(last.LBS[4]))
	o.Text = t.String()
	return o, nil
}

// runFig7 sweeps Max N's N with everything else disabled.
func runFig7(p Profile) (*Outcome, error) {
	t := report.NewTable("Fig 7: final accuracy vs N (Max N alone, Homo A)",
		"N", "Final accuracy")
	o := &Outcome{ID: "fig7", Title: "Max N sweep"}
	for _, n := range []float64{1, 10, 50, 100} {
		sys := systems.MaxNOnly(n)
		accs, _, err := p.runAveraged(sys.Name, sys, "Homo A")
		if err != nil {
			return nil, err
		}
		m := mean(accs)
		t.AddRow(fmt.Sprintf("%g", n), m)
		o.addValue(fmt.Sprintf("N%g", n), m)
	}
	o.Text = t.String()
	return o, nil
}

// runFig8 gives worker 0 two links with different bandwidths and records
// the partial gradient sizes the per-link prioritized exchange chooses for
// each: the faster link should carry more gradient values.
func runFig8(p Profile) (*Outcome, error) {
	caps := make([]simcompute.Schedule, 6)
	for i := range caps {
		caps[i] = simcompute.Constant(24)
	}
	nw := simnet.New(6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			bw := 50.0
			if i == 0 && j == 2 {
				bw = 50 // worker0 -> worker2: the fast link of Figure 8
			}
			if i == 0 && j == 4 {
				bw = 20 // worker0 -> worker4: the slow link
			}
			nw.SetLink(i, j, simnet.Link{Bandwidth: simcompute.Constant(bw), RTT: env.RTTWan})
		}
	}
	e := env.Custom("Fig8", caps, nw, p.Seed)
	sys := p.system(systems.DLion())
	cfg := p.clusterConfig(sys, e, 0)
	cfg.TracePeriod = p.TracePeriod
	res, err := cluster.Run(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig 8: gradient values sent per link (w0->w2 @50Mbps vs w0->w4 @20Mbps)",
		"t(s)", "w0->w2 (values)", "w0->w4 (values)")
	var sumFast, sumSlow, count float64
	for _, tr := range res.Traces {
		fast := tr.SelCount[[2]int{0, 2}]
		slow := tr.SelCount[[2]int{0, 4}]
		t.AddRow(fmt.Sprintf("%.0f", tr.T), fast, slow)
		if fast > 0 || slow > 0 {
			sumFast += float64(fast)
			sumSlow += float64(slow)
			count++
		}
	}
	o := &Outcome{ID: "fig8", Title: "Per-link gradient size", Text: t.String()}
	if count > 0 {
		o.addValue("fastLinkMean", sumFast/count)
		o.addValue("slowLinkMean", sumSlow/count)
	}
	return o, nil
}

// runFig9a sweeps the DKT period and measures time to a target accuracy:
// a moderate period should win over both chatty and rare exchange.
func runFig9a(p Profile) (*Outcome, error) {
	const target = 0.6
	t := report.NewTable(
		fmt.Sprintf("Fig 9a: seconds to %.0f%% accuracy vs DKT period (Homo B)", target*100),
		"DKT period (iterations)", "Time (s)")
	o := &Outcome{ID: "fig9a", Title: "DKT period"}
	periods := []struct {
		label  string
		period int64
	}{
		{"1", 1}, {fmt.Sprintf("%d", p.DKTPeriod), p.DKTPeriod},
		{fmt.Sprintf("%d", p.DKTPeriod*8), p.DKTPeriod * 8}, {"off", 0},
	}
	for _, c := range periods {
		sys := systems.DLion()
		if c.period == 0 {
			sys.DKT.Enabled = false
		} else {
			sys.DKT.Period = c.period
			sys.DKT.Lambda = p.DKTLambda
		}
		e, err := env.Get("Homo B", p.Seed)
		if err != nil {
			return nil, err
		}
		cfg := p.clusterConfig(sys, e, 0)
		cfg.System = sys // bypass profile DKT rescaling: the period IS the variable
		cfg.EvalPeriod = p.EvalPeriod / 3
		res, err := cluster.Run(cfg)
		if err != nil {
			return nil, err
		}
		tt, ok := res.Timeline.TimeToAccuracy(target)
		if !ok {
			tt = cfg.Horizon
		}
		t.AddRow(c.label, fmt.Sprintf("%.0f", tt))
		o.addValue("period_"+c.label, tt)
	}
	o.Text = t.String()
	o.Notes = append(o.Notes, "Times equal to the horizon mean the target was not reached.")
	return o, nil
}

// runFig9b compares No_DKT, DKT_Best2worst and DKT_Best2all.
func runFig9b(p Profile) (*Outcome, error) {
	t := report.NewTable("Fig 9b: accuracy for whom-to-send variants (Hetero SYS A)",
		"Variant", "Final accuracy")
	o := &Outcome{ID: "fig9b", Title: "DKT targets"}
	variants := []struct {
		label string
		mut   func(*core.Config)
	}{
		{"No_DKT", func(c *core.Config) { c.DKT.Enabled = false }},
		{"DKT_Best2worst", func(c *core.Config) { c.DKT.Best2Worst = true }},
		{"DKT_Best2all", func(c *core.Config) {}},
	}
	for _, v := range variants {
		sys := systems.DLion()
		v.mut(&sys)
		accs, _, err := p.runAveraged(v.label, sys, "Hetero SYS A")
		if err != nil {
			return nil, err
		}
		m := mean(accs)
		t.AddRow(v.label, m)
		o.addValue(v.label, m)
	}
	o.Text = t.String()
	return o, nil
}

// runFig9c sweeps the DKT merge ratio λ.
func runFig9c(p Profile) (*Outcome, error) {
	t := report.NewTable("Fig 9c: accuracy vs DKT merge ratio lambda (Hetero SYS A)",
		"lambda", "Final accuracy")
	o := &Outcome{ID: "fig9c", Title: "DKT lambda"}
	for _, l := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		sys := systems.DLion()
		if l == 0 {
			sys.DKT.Enabled = false // λ=0 is a no-op merge = No_DKT
		}
		sys.DKT.Lambda = l
		pp := p
		pp.DKTLambda = l
		accs, _, err := pp.runAveraged(sys.Name, sys, "Hetero SYS A")
		if err != nil {
			return nil, err
		}
		m := mean(accs)
		t.AddRow(fmt.Sprintf("%.2f", l), m)
		o.addValue(fmt.Sprintf("lambda%.2f", l), m)
	}
	o.Text = t.String()
	return o, nil
}

// runFig19 traces LBS under the paper's dynamic compute schedule:
// homogeneous 24 cores, then 24/24/12/12/4/4, then 12s, then inverted.
func runFig19(p Profile) (*Outcome, error) {
	ph := p.Horizon / 4
	mk := func(vals ...float64) simcompute.Schedule {
		pairs := make([]float64, 0, 8)
		for i, v := range vals {
			pairs = append(pairs, float64(i)*ph, v)
		}
		return simcompute.Steps(pairs...)
	}
	caps := []simcompute.Schedule{
		mk(24, 24, 12, 4), mk(24, 24, 12, 4),
		mk(24, 12, 12, 12), mk(24, 12, 12, 12),
		mk(24, 4, 12, 24), mk(24, 4, 12, 24),
	}
	e := env.Custom("Fig19", caps, simnet.Uniform(6, simcompute.Constant(env.LANMbps), env.RTTLan), p.Seed)
	sys := p.system(systems.DLion())
	sys.Batch.GBS = core.GBSConfig{Mode: "fixed"} // isolate the LBS controller
	sys.Batch.ProfilePeriod = p.Horizon / 30      // frequent re-profiling
	cfg := p.clusterConfig(sys, e, 0)
	cfg.TracePeriod = p.TracePeriod
	res, err := cluster.Run(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig 19: per-worker LBS under changing core counts (GBS fixed 192)",
		"t(s)", "w0", "w1", "w2", "w3", "w4", "w5")
	for _, tr := range res.Traces {
		t.AddRow(fmt.Sprintf("%.0f", tr.T),
			tr.LBS[0], tr.LBS[1], tr.LBS[2], tr.LBS[3], tr.LBS[4], tr.LBS[5])
	}
	o := &Outcome{ID: "fig19", Title: "Dynamic LBS trace", Text: t.String()}
	// headline: late in phase 2 (heterogeneous), w0 (24 cores) should hold
	// a larger share than w4 (4 cores); take the last trace in the phase so
	// the controller has had time to re-profile after the capacity change
	for _, tr := range res.Traces {
		if tr.T > 1.2*ph && tr.T < 2*ph {
			o.addValue("phase2_w0", float64(tr.LBS[0]))
			o.addValue("phase2_w4", float64(tr.LBS[4]))
		}
	}
	return o, nil
}

// runFig20 traces the per-link partial gradient size while every link's
// bandwidth steps between 30 and 100 Mbps.
func runFig20(p Profile) (*Outcome, error) {
	ph := p.Horizon / 5
	caps := make([]simcompute.Schedule, 6)
	scheds := make([]simcompute.Schedule, 6)
	for i := range caps {
		caps[i] = simcompute.Constant(24)
		// 30 Mbps in [0, ph) and [3ph, horizon); 100 Mbps in between
		scheds[i] = simcompute.Steps(0, 30, ph, 100, 3*ph, 30)
	}
	e := env.Custom("Fig20", caps, simnet.PerWorkerEgress(scheds, env.RTTWan), p.Seed)
	sys := p.system(systems.DLion())
	cfg := p.clusterConfig(sys, e, 0)
	cfg.TracePeriod = p.TracePeriod
	res, err := cluster.Run(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig 20: gradient values sent on w0->w1 as bandwidth steps 30/100/30 Mbps",
		"t(s)", "bandwidth (Mbps)", "values sent")
	o := &Outcome{ID: "fig20", Title: "Dynamic gradient size"}
	var lowSum, lowN, highSum, highN float64
	for _, tr := range res.Traces {
		bw, _ := e.Network.BandwidthAt(0, 1, tr.T)
		v := tr.SelCount[[2]int{0, 1}]
		t.AddRow(fmt.Sprintf("%.0f", tr.T), fmt.Sprintf("%.0f", bw), v)
		if v == 0 {
			continue
		}
		if bw < 50 {
			lowSum += float64(v)
			lowN++
		} else {
			highSum += float64(v)
			highN++
		}
	}
	if lowN > 0 && highN > 0 {
		o.addValue("meanAtLowBW", lowSum/lowN)
		o.addValue("meanAtHighBW", highSum/highN)
	}
	o.Text = t.String()
	return o, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
