package experiments

import (
	"strings"
	"testing"

	"dlion/internal/core"
	"dlion/internal/env"
	"dlion/internal/systems"
)

// tinyProfile shrinks everything so experiment plumbing can be tested in
// seconds; result *shapes* (not magnitudes) are asserted.
func tinyProfile() Profile {
	p := Fast()
	p.DataScale = 0.01 // 600 train samples
	p.Horizon = 60
	p.GPUHorizon = 40
	p.GPUDataScale = 0.0005
	p.EvalPeriod = 30
	p.EvalSubset = 100
	p.TracePeriod = 10
	p.DKTPeriod = 5
	return p
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig9c",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21",
		"ablation-budget", "ablation-dbclamp", "ablation-sync",
		"ablation-selector",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestOrdering(t *testing.T) {
	ids := IDs()
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	if !(pos["table1"] < pos["fig5"] && pos["fig5"] < pos["fig9a"] &&
		pos["fig9a"] < pos["fig11"] && pos["fig11"] < pos["fig21"] &&
		pos["fig21"] < pos["ablation-budget"]) {
		t.Fatalf("ordering wrong: %v", ids)
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig11")
	if err != nil || e.ID != "fig11" {
		t.Fatalf("%v %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestTableExperiments(t *testing.T) {
	p := tinyProfile()
	for _, id := range []string{"table1", "table2", "table3"} {
		e, _ := ByID(id)
		o, err := e.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(o.Text) < 50 {
			t.Fatalf("%s: empty output", id)
		}
	}
}

func TestTable1CountsArePlausible(t *testing.T) {
	e, _ := ByID("table1")
	o, err := e.Run(tinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	for sys, want := range map[string]float64{"Baseline": 30, "DLion(MaxN)": 40} {
		if got := o.Values["preset/"+sys]; got <= 0 || got > want {
			t.Fatalf("preset LoC for %s = %v (want 0 < n <= %v)", sys, got, want)
		}
	}
}

func TestFig8ProportionalToBandwidth(t *testing.T) {
	e, _ := ByID("fig8")
	o, err := e.Run(tinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := o.Values["fastLinkMean"], o.Values["slowLinkMean"]
	if fast <= slow {
		t.Fatalf("fast link must carry more gradients: %v vs %v", fast, slow)
	}
	ratio := fast / slow
	if ratio < 1.5 || ratio > 4 {
		t.Fatalf("ratio %.2f far from bandwidth ratio 2.5", ratio)
	}
}

func TestFig19LBSFollowsCores(t *testing.T) {
	e, _ := ByID("fig19")
	o, err := e.Run(tinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	if o.Values["phase2_w0"] <= o.Values["phase2_w4"] {
		t.Fatalf("24-core worker LBS %v should exceed 4-core worker's %v",
			o.Values["phase2_w0"], o.Values["phase2_w4"])
	}
}

func TestFig20TracksBandwidth(t *testing.T) {
	e, _ := ByID("fig20")
	o, err := e.Run(tinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	if o.Values["meanAtHighBW"] <= o.Values["meanAtLowBW"] {
		t.Fatalf("100 Mbps phase should carry more: %v vs %v",
			o.Values["meanAtHighBW"], o.Values["meanAtLowBW"])
	}
}

func TestFig6GBSGrows(t *testing.T) {
	e, _ := ByID("fig6")
	o, err := e.Run(tinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	if o.Values["finalGBS"] <= 192 {
		t.Fatalf("auto GBS never grew: %v", o.Values["finalGBS"])
	}
	if o.Values["w0_LBS"] <= o.Values["w4_LBS"] {
		t.Fatalf("24-core worker LBS %v <= 6-core worker %v",
			o.Values["w0_LBS"], o.Values["w4_LBS"])
	}
}

func TestComparisonOutcomeShape(t *testing.T) {
	// run the smallest comparison figure on the tiny profile
	e, _ := ByID("fig16")
	o, err := e.Run(tinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(o.Text, "Max10") {
		t.Fatalf("missing system in output:\n%s", o.Text)
	}
	if len(o.Values) < 10 {
		t.Fatalf("values missing: %v", o.Values)
	}
	for k, v := range o.Values {
		if v < 0 || v > 1.01 {
			t.Fatalf("accuracy %s=%v out of range", k, v)
		}
	}
}

func TestProfileSystemRescalesDKT(t *testing.T) {
	p := Fast()
	cfg := p.system(sysWithDKT())
	if cfg.DKT.Period != p.DKTPeriod || cfg.DKT.Lambda != p.DKTLambda {
		t.Fatalf("DKT not rescaled: %+v", cfg.DKT)
	}
	// systems without DKT are untouched
	noDKT := sysWithDKT()
	noDKT.DKT.Enabled = false
	noDKT.DKT.Period = 77
	if got := p.system(noDKT); got.DKT.Period != 77 {
		t.Fatal("non-DKT system was modified")
	}
}

func TestClusterConfigWireAmplify(t *testing.T) {
	p := Fast()
	p.WireAmplify = 3
	e := mustEnv(t, "Homo A")
	cfg := p.clusterConfig(sysWithDKT(), e, 0)
	if cfg.Model.WireBytes != 3*(5<<20) {
		t.Fatalf("wire bytes %d", cfg.Model.WireBytes)
	}
}

// --- test helpers ---

func sysWithDKT() core.Config { return systems.DLion() }

func mustEnv(t *testing.T, name string) *env.Env {
	t.Helper()
	e, err := env.Get(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
