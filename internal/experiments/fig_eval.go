package experiments

import (
	"fmt"

	"dlion/internal/cluster"
	"dlion/internal/core"
	"dlion/internal/env"
	"dlion/internal/report"
	"dlion/internal/stats"
	"dlion/internal/systems"
)

func init() {
	register("fig11", "System heterogeneity (CPU cluster): accuracy at time budget", runFig11)
	register("fig12", "GPU cluster robustness: accuracy at time budget", runFig12)
	register("fig13", "Heterogeneous compute resources: accuracy at time budget", runFig13)
	register("fig14", "Dynamic batching / weighted update ablation: time to target", runFig14)
	register("fig15", "Heterogeneous network resources: accuracy at time budget", runFig15)
	register("fig16", "Max10 alone vs existing systems", runFig16)
	register("fig17", "Deviation of model accuracy among workers", runFig17)
	register("fig18", "Dynamic resource changes: highest accuracy", runFig18)
	register("fig21", "Converged accuracy and time to convergence (Homo A)", runFig21)
}

// comparisonOutcome runs each system in each environment and tabulates the
// mean final accuracy (averaged over p.Runs seeds), the shape shared by
// Figures 11, 12, 13, 15, 16 and 18.
func comparisonOutcome(id, title string, p Profile, envNames []string, sysList []core.Config) (*Outcome, error) {
	cols := append([]string{"System"}, envNames...)
	t := report.NewTable(title, cols...)
	o := &Outcome{ID: id, Title: title}
	type row struct {
		name string
		accs []string
	}
	var rows []row
	for _, sys := range sysList {
		r := row{name: sys.Name}
		for _, envName := range envNames {
			accs, _, err := p.runAveraged(sys.Name, sys, envName)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", sys.Name, envName, err)
			}
			s := stats.Summarize(accs)
			cell := fmt.Sprintf("%.3f", s.Mean)
			if s.N > 1 {
				cell += fmt.Sprintf("±%.3f", s.CI95)
			}
			r.accs = append(r.accs, cell)
			o.addValue(envName+"/"+sys.Name, s.Mean)
		}
		rows = append(rows, r)
	}
	for _, r := range rows {
		cells := []any{r.name}
		for _, a := range r.accs {
			cells = append(cells, a)
		}
		t.AddRow(cells...)
	}
	// improvement summary of DLion over each baseline, the headline the
	// paper reports per figure
	imp := report.NewTable("DLion improvement over each system (accuracy ratio)",
		append([]string{"vs"}, envNames...)...)
	for _, sys := range sysList {
		if sys.Name == "DLion" {
			continue
		}
		cells := []any{sys.Name}
		for _, envName := range envNames {
			d := o.Values[envName+"/DLion"]
			b := o.Values[envName+"/"+sys.Name]
			if b > 0 {
				cells = append(cells, fmt.Sprintf("%.2fx", d/b))
			} else {
				cells = append(cells, "-")
			}
		}
		imp.AddRow(cells...)
	}
	o.Text = t.String() + "\n" + imp.String()
	return o, nil
}

func runFig11(p Profile) (*Outcome, error) {
	return comparisonOutcome("fig11",
		"Fig 11: accuracy after the training budget, CPU cluster",
		p, []string{"Homo A", "Hetero SYS A", "Hetero SYS B"}, systems.All())
}

func runFig12(p Profile) (*Outcome, error) {
	return comparisonOutcome("fig12",
		"Fig 12: MobileNetLite accuracy after the training budget, GPU cluster",
		p, []string{"Homo C", "Hetero SYS C"}, systems.All())
}

func runFig13(p Profile) (*Outcome, error) {
	return comparisonOutcome("fig13",
		"Fig 13: accuracy under heterogeneous compute, homogeneous network",
		p, []string{"Homo A", "Hetero CPU A", "Hetero CPU B"}, systems.All())
}

func runFig15(p Profile) (*Outcome, error) {
	return comparisonOutcome("fig15",
		"Fig 15: accuracy under heterogeneous network, homogeneous compute",
		p, []string{"Homo A", "Homo B", "Hetero NET A"}, systems.All())
}

func runFig16(p Profile) (*Outcome, error) {
	sysList := []core.Config{systems.Baseline(), systems.Ako(4), systems.Gaia(1),
		systems.Hop(1, 5), systems.MaxNOnly(10)}
	o, err := comparisonOutcome("fig16",
		"Fig 16: Max10 alone (no other DLion techniques) vs existing systems",
		p, []string{"Homo A", "Hetero SYS A"}, sysList)
	if err != nil {
		return nil, err
	}
	o.Notes = append(o.Notes,
		"Max10 runs the Max N selector with fixed N=10 and no dynamic batching,",
		"link budget, or DKT, isolating the data quality assurance module.")
	return o, nil
}

// runFig14 measures time until the Cipher model reaches a target accuracy
// for the three DLion variants of the dynamic-batching ablation.
func runFig14(p Profile) (*Outcome, error) {
	const target = 0.60
	envNames := []string{"Homo A", "Hetero CPU A", "Hetero CPU B"}
	variants := []core.Config{systems.DLionNoDBWU(), systems.DLionNoWU(), systems.DLion()}
	t := report.NewTable(
		fmt.Sprintf("Fig 14: seconds to reach %.0f%% accuracy (lower is better)", target*100),
		append([]string{"Variant"}, envNames...)...)
	o := &Outcome{ID: "fig14", Title: "DB/WU ablation"}
	// finer evaluation cadence so time-to-accuracy is well resolved
	fine := p
	fine.EvalPeriod = p.EvalPeriod / 3
	for _, sys := range variants {
		cells := []any{sys.Name}
		for _, envName := range envNames {
			times := make([]float64, 0, fine.Runs)
			for r := 0; r < fine.Runs; r++ {
				e, err := env.Get(envName, fine.Seed+uint64(r)*31)
				if err != nil {
					return nil, err
				}
				res, err := cluster.Run(fine.clusterConfig(sys, e, r))
				if err != nil {
					return nil, err
				}
				if tt, ok := res.Timeline.TimeToAccuracy(target); ok {
					times = append(times, tt)
				} else {
					times = append(times, fine.Horizon) // censored at horizon
				}
			}
			mean := stats.Mean(times)
			cells = append(cells, fmt.Sprintf("%.0f", mean))
			o.addValue(envName+"/"+sys.Name, mean)
		}
		t.AddRow(cells...)
	}
	o.Text = t.String()
	o.Notes = append(o.Notes,
		"Times equal to the horizon mean the target was not reached (censored).")
	return o, nil
}

// runFig17 reports the standard deviation of accuracy across workers.
func runFig17(p Profile) (*Outcome, error) {
	envNames := []string{"Hetero SYS B", "Hetero NET B", "Hetero CPU B"}
	t := report.NewTable("Fig 17: stddev of final accuracy across workers (lower is better)",
		append([]string{"System"}, envNames...)...)
	o := &Outcome{ID: "fig17", Title: "Accuracy deviation"}
	for _, sys := range systems.All() {
		cells := []any{sys.Name}
		for _, envName := range envNames {
			devs := make([]float64, 0, p.Runs)
			for r := 0; r < p.Runs; r++ {
				e, err := env.Get(envName, p.Seed+uint64(r)*31)
				if err != nil {
					return nil, err
				}
				res, err := cluster.Run(p.clusterConfig(sys, e, r))
				if err != nil {
					return nil, err
				}
				devs = append(devs, res.Timeline.FinalDeviation())
			}
			mean := stats.Mean(devs)
			cells = append(cells, fmt.Sprintf("%.4f", mean))
			o.addValue(envName+"/"+sys.Name, mean)
		}
		t.AddRow(cells...)
	}
	o.Text = t.String()
	return o, nil
}

// runFig18 compares the systems under dynamically changing resources, with
// the three 500-second paper phases scaled to a third of the horizon each.
func runFig18(p Profile) (*Outcome, error) {
	t := report.NewTable("Fig 18: best accuracy under dynamic resources",
		"System", "Dynamic SYS A", "Dynamic SYS B")
	o := &Outcome{ID: "fig18", Title: "Dynamic resources"}
	for _, sys := range systems.All() {
		cells := []any{sys.Name}
		for _, variant := range []string{"A", "B"} {
			accs := make([]float64, 0, p.Runs)
			for r := 0; r < p.Runs; r++ {
				e := env.Dynamic(variant, p.Horizon/3, p.Seed+uint64(r)*31)
				res, err := cluster.Run(p.clusterConfig(sys, e, r))
				if err != nil {
					return nil, err
				}
				accs = append(accs, res.Timeline.BestMean())
			}
			mean := stats.Mean(accs)
			cells = append(cells, fmt.Sprintf("%.3f", mean))
			o.addValue("Dynamic SYS "+variant+"/"+sys.Name, mean)
		}
		t.AddRow(cells...)
	}
	o.Text = t.String()
	o.Notes = append(o.Notes,
		fmt.Sprintf("Paper phases last 500 s each; here %.0f s each (horizon/3).", p.Horizon/3))
	return o, nil
}

// runFig21 trains each system in Homo A until the accuracy timeline
// plateaus, reporting the converged accuracy and the time to reach it.
func runFig21(p Profile) (*Outcome, error) {
	t := report.NewTable("Fig 21: converged accuracy and time to convergence (Homo A)",
		"System", "Final accuracy", "Convergence time (s)")
	o := &Outcome{ID: "fig21", Title: "Convergence"}
	for _, sys := range systems.All() {
		e, err := env.Get("Homo A", p.Seed)
		if err != nil {
			return nil, err
		}
		cfg := p.clusterConfig(sys, e, 0)
		res, convT, err := cluster.RunUntilConverged(cfg, 3, 0.01, 2*p.Horizon)
		if err != nil {
			return nil, err
		}
		acc := res.Timeline.FinalMean()
		t.AddRow(sys.Name, acc, fmt.Sprintf("%.0f", convT))
		o.addValue("acc/"+sys.Name, acc)
		o.addValue("time/"+sys.Name, convT)
	}
	o.Text = t.String()
	return o, nil
}
