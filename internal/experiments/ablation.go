package experiments

import (
	"fmt"

	"dlion/internal/core"
	"dlion/internal/grad"
	"dlion/internal/report"
	"dlion/internal/systems"
)

func init() {
	register("ablation-budget", "Transmission speed assurance on/off", runAblationBudget)
	register("ablation-dbclamp", "Dynamic batching weight clamp", runAblationDBClamp)
	register("ablation-sync", "DLion synchronization strategy", runAblationSync)
	register("ablation-selector", "Data quality module: MaxN vs TopK vs RandomK", runAblationSelector)
}

// runAblationBudget isolates the transmission speed assurance module: DLion
// with the per-link budget versus the same system always sending N=100
// (whole gradients), in a constrained-network environment. The budget
// should win where the network is the bottleneck (DESIGN.md decision 3).
func runAblationBudget(p Profile) (*Outcome, error) {
	t := report.NewTable("Ablation: per-link budget (Hetero NET A)",
		"Variant", "Final accuracy")
	o := &Outcome{ID: "ablation-budget", Title: "Link budget ablation"}
	with := systems.DLion()
	without := systems.DLion()
	without.Name = "DLion-no-budget"
	without.LinkBudget = false
	accW, _, err := p.runAveraged(with.Name, with, "Hetero NET A")
	if err != nil {
		return nil, err
	}
	accWO, _, err := p.runAveraged(without.Name, without, "Hetero NET A")
	if err != nil {
		return nil, err
	}
	t.AddRow("with budget", mean(accW))
	t.AddRow("without budget (always N=100)", mean(accWO))
	o.addValue("with", mean(accW))
	o.addValue("without", mean(accWO))
	o.Text = t.String()
	return o, nil
}

// runAblationDBClamp compares the default db clamp against an effectively
// unclamped weighted update in the extreme-straggler environment.
func runAblationDBClamp(p Profile) (*Outcome, error) {
	t := report.NewTable("Ablation: db clamp (Hetero CPU B, one 4-core straggler)",
		"DBClampMax", "Final accuracy")
	o := &Outcome{ID: "ablation-dbclamp", Title: "db clamp ablation"}
	for _, clamp := range []float64{2, 8, 1e9} {
		sys := systems.DLion()
		sys.Batch.DBClampMax = clamp
		accs, _, err := p.runAveraged(sys.Name, sys, "Hetero CPU B")
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%g", clamp)
		if clamp >= 1e9 {
			label = "unclamped"
		}
		t.AddRow(label, mean(accs))
		o.addValue(label, mean(accs))
	}
	o.Text = t.String()
	return o, nil
}

// runAblationSelector swaps the data quality assurance module, keeping the
// transmission budget and everything else fixed: Max N (magnitude within
// N% of the max), exact top-k with error feedback, unbiased random-k, and
// unfiltered Full. The paper's related-work section invites exactly this
// plug-in comparison ("their compression algorithms can be placed in the
// data quality assurance module", §6). Magnitude-aware selection should
// beat random-k at equal bytes.
func runAblationSelector(p Profile) (*Outcome, error) {
	t := report.NewTable("Ablation: gradient selection algorithm at equal link budget (Hetero NET A)",
		"Selector", "Final accuracy")
	o := &Outcome{ID: "ablation-selector", Title: "selector ablation"}
	variants := []struct {
		label string
		mk    func() grad.Selector
	}{
		{"MaxN (DLion)", func() grad.Selector { return grad.NewMaxN(100) }},
		{"TopK+error feedback", func() grad.Selector { return grad.NewTopK(0.25) }},
		{"RandomK (unbiased)", func() grad.Selector { return grad.NewRandomK(0.25, 17) }},
		{"Full (ignores budget)", func() grad.Selector { return grad.Full{} }},
	}
	for _, v := range variants {
		sys := systems.DLion()
		sys.Name = "DLion/" + v.label
		sys.NewSelector = v.mk
		accs, _, err := p.runAveraged(sys.Name, sys, "Hetero NET A")
		if err != nil {
			return nil, err
		}
		t.AddRow(v.label, mean(accs))
		o.addValue(v.label, mean(accs))
	}
	o.Text = t.String()
	return o, nil
}

// runAblationSync compares DLion under the three synch_training strategies
// of §4.2 in a heterogeneous environment.
func runAblationSync(p Profile) (*Outcome, error) {
	t := report.NewTable("Ablation: DLion synchronization strategy (Hetero SYS A)",
		"Strategy", "Final accuracy")
	o := &Outcome{ID: "ablation-sync", Title: "sync strategy ablation"}
	for _, v := range []struct {
		label string
		sync  core.SyncConfig
	}{
		{"async", core.SyncConfig{Mode: core.SyncAsync}},
		{"bounded (backup=1, staleness=5)", core.SyncConfig{Mode: core.SyncBounded, BackupWorkers: 1, Staleness: 5}},
		{"sync", core.SyncConfig{Mode: core.SyncFull}},
	} {
		sys := systems.DLion()
		sys.Sync = v.sync
		accs, _, err := p.runAveraged(v.label, sys, "Hetero SYS A")
		if err != nil {
			return nil, err
		}
		t.AddRow(v.label, mean(accs))
		o.addValue(v.label, mean(accs))
	}
	o.Text = t.String()
	return o, nil
}
