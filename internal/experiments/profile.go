// Package experiments defines one runnable reproduction per table and
// figure of the paper's evaluation (§5), shared by the benchmark suite
// (bench_test.go) and the CLI harness (cmd/dlion-bench). Each experiment
// builds on the Table 3 environments, runs the relevant systems on the
// simulator, and renders the same rows/series the paper reports.
package experiments

import (
	"dlion/internal/cluster"
	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/env"
	"dlion/internal/nn"
)

// Profile scales every experiment. The paper trained real CIFAR10 for 1500
// wall seconds per run; this reproduction trains a scaled synthetic
// dataset for a scaled virtual horizon so the full suite finishes in
// minutes. Relative comparisons (who wins, by roughly what factor) are the
// reproduction target, not absolute numbers — see EXPERIMENTS.md.
type Profile struct {
	// DataScale scales the synthetic CIFAR10 substitute (1.0 = 60K/10K).
	DataScale float64
	// GPUDataScale scales the ImageNet-100 substitute for GPU experiments.
	GPUDataScale float64

	// Horizon stands in for the paper's 1500-second CPU-cluster budget.
	Horizon float64
	// GPUHorizon stands in for the paper's 2-hour GPU-cluster budget.
	GPUHorizon float64

	EvalPeriod  float64
	EvalSubset  int
	TracePeriod float64

	// DKTPeriod and DKTLambda rescale direct knowledge transfer for the
	// shorter runs: the paper's period of 100 iterations assumes runs of
	// thousands of iterations; ours have tens to hundreds.
	DKTPeriod int64
	DKTLambda float64

	// Runs averages each measurement over this many seeds (the paper
	// averages 3).
	Runs int
	Seed uint64

	// WireAmplify multiplies the models' paper wire sizes (5 MB Cipher,
	// 17 MB MobileNet). The simulated compute cost model runs iterations
	// ~5x slower than the paper's real hardware (so that experiments
	// finish in seconds of wall time); amplifying the wire size by the
	// same factor preserves the paper's communication-to-computation
	// ratio, which is what makes its WAN experiments network-bound.
	WireAmplify float64
}

// Fast is the quick profile used by `go test -bench` — each experiment
// finishes in tens of seconds of wall time on a single core.
func Fast() Profile {
	return Profile{
		DataScale:    0.035,  // 2100 train / 350 test
		GPUDataScale: 0.0015, // 1800 train
		Horizon:      200,
		GPUHorizon:   200,
		EvalPeriod:   50,
		EvalSubset:   180,
		TracePeriod:  8,
		DKTPeriod:    10,
		DKTLambda:    1.0,
		Runs:         1,
		Seed:         7,
		WireAmplify:  5,
	}
}

// Standard is the fuller profile used by `cmd/dlion-bench` for the numbers
// recorded in EXPERIMENTS.md: longer horizons and paper-style 3-run
// averaging.
func Standard() Profile {
	p := Fast()
	p.DataScale = 0.05
	p.GPUDataScale = 0.002
	p.Horizon = 600
	p.GPUHorizon = 600
	p.EvalPeriod = 100
	p.Runs = 3
	return p
}

// system applies the profile's DKT rescaling to a preset.
func (p Profile) system(cfg core.Config) core.Config {
	if cfg.DKT.Enabled {
		cfg.DKT.Period = p.DKTPeriod
		cfg.DKT.Lambda = p.DKTLambda
	}
	return cfg
}

// clusterConfig assembles a cluster.Config for a system in an environment.
// run indexes the averaging seed.
func (p Profile) clusterConfig(sys core.Config, e *env.Env, run int) cluster.Config {
	seed := p.Seed + uint64(run)*101
	dc := data.CIFAR10Config(p.DataScale, seed+13)
	model := nn.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0)
	horizon := p.Horizon
	if e.GPU {
		dc = data.ImageNet100Config(p.GPUDataScale, seed+13)
		model = nn.MobileNetLiteSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0)
		horizon = p.GPUHorizon
	}
	if p.WireAmplify > 0 {
		model.WireBytes = int(float64(model.WireBytes) * p.WireAmplify)
	}
	return cluster.Config{
		System:     p.system(sys),
		Model:      model,
		Data:       dc,
		N:          e.N,
		Computes:   e.Computes,
		Network:    e.Network,
		Horizon:    horizon,
		EvalPeriod: p.EvalPeriod,
		EvalSubset: p.EvalSubset,
		Seed:       seed,
	}
}

// runAveraged runs a (system, environment) pair p.Runs times and returns
// the final mean accuracies, one per run. Fresh environments are built per
// run because compute schedules carry RNG state.
func (p Profile) runAveraged(sysName string, sys core.Config, envName string) ([]float64, []*cluster.Result, error) {
	accs := make([]float64, 0, p.Runs)
	results := make([]*cluster.Result, 0, p.Runs)
	for r := 0; r < p.Runs; r++ {
		e, err := env.Get(envName, p.Seed+uint64(r)*31)
		if err != nil {
			return nil, nil, err
		}
		res, err := cluster.Run(p.clusterConfig(sys, e, r))
		if err != nil {
			return nil, nil, err
		}
		accs = append(accs, res.Timeline.FinalMean())
		results = append(results, res)
	}
	_ = sysName
	return accs, results, nil
}
