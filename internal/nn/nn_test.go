package nn

import (
	"math"
	"testing"

	"dlion/internal/data"
	"dlion/internal/stats"
	"dlion/internal/tensor"
)

// numericalCheck verifies analytic gradients against central finite
// differences for a sample of weights in every parameter of the model.
func numericalCheck(t *testing.T, m *Model, x *tensor.Tensor, y []int) {
	t.Helper()
	lossAt := func() float64 {
		logits := m.Forward(x)
		l, _, _ := SoftmaxCrossEntropy(logits, y)
		return l
	}
	m.TrainStep(x, y) // fills G
	const eps = 1e-2
	for _, p := range m.Params() {
		// check up to 5 spread-out indices per parameter
		stride := p.W.Len()/5 + 1
		for i := 0; i < p.W.Len(); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossAt()
			p.W.Data[i] = orig - eps
			lm := lossAt()
			p.W.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.G.Data[i])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(5e-2, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > 0.2 {
				t.Errorf("%s[%d]: analytic %.5f vs numeric %.5f", p.Name, i, analytic, numeric)
			}
		}
	}
}

func smallBatch(rng *stats.RNG, b, c, h, w, classes int) (*tensor.Tensor, []int) {
	x := tensor.New(b, c, h, w)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	y := make([]int, b)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	return x, y
}

func TestGradCheckDense(t *testing.T) {
	rng := stats.NewRNG(1)
	m := NewModel("d",
		NewFlatten("f"),
		NewDense("fc1", 12, 7, rng), NewReLU("r"),
		NewDense("fc2", 7, 3, rng))
	x, y := smallBatch(rng, 4, 1, 3, 4, 3)
	numericalCheck(t, m, x, y)
}

func TestGradCheckConv(t *testing.T) {
	rng := stats.NewRNG(2)
	m := NewModel("c",
		NewConv2D("conv", 2, 3, 3, 1, 1, rng), NewReLU("r"),
		NewFlatten("f"),
		NewDense("fc", 3*6*6, 4, rng))
	x, y := smallBatch(rng, 2, 2, 6, 6, 4)
	numericalCheck(t, m, x, y)
}

func TestGradCheckConvStride2(t *testing.T) {
	rng := stats.NewRNG(8)
	m := NewModel("c2",
		NewConv2D("conv", 1, 2, 3, 2, 1, rng),
		NewFlatten("f"),
		NewDense("fc", 2*3*3, 3, rng))
	x, y := smallBatch(rng, 2, 1, 6, 6, 3)
	numericalCheck(t, m, x, y)
}

func TestGradCheckMaxPool(t *testing.T) {
	rng := stats.NewRNG(3)
	m := NewModel("p",
		NewConv2D("conv", 1, 2, 3, 1, 1, rng),
		NewMaxPool2("pool"),
		NewFlatten("f"),
		NewDense("fc", 2*3*3, 3, rng))
	x, y := smallBatch(rng, 2, 1, 6, 6, 3)
	numericalCheck(t, m, x, y)
}

func TestGradCheckDepthwise(t *testing.T) {
	rng := stats.NewRNG(4)
	m := NewModel("dw",
		NewDepthwiseConv2D("dw", 3, 3, 1, 1, rng), NewReLU("r"),
		NewGlobalAvgPool("gap"),
		NewDense("fc", 3, 2, rng))
	x, y := smallBatch(rng, 2, 3, 5, 5, 2)
	numericalCheck(t, m, x, y)
}

func TestGradCheckDepthwiseStride2(t *testing.T) {
	rng := stats.NewRNG(5)
	m := NewModel("dw2",
		NewDepthwiseConv2D("dw", 2, 3, 2, 1, rng),
		NewFlatten("f"),
		NewDense("fc", 2*3*3, 2, rng))
	x, y := smallBatch(rng, 2, 2, 6, 6, 2)
	numericalCheck(t, m, x, y)
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	logits := tensor.FromSlice([]float32{2, 0, 0, 3}, 2, 2)
	loss, acc, d := SoftmaxCrossEntropy(logits, []int{0, 1})
	// mean loss = (log(1+e^-2) + log(1+e^-3))/2 ≈ (0.1269+0.0486)/2 ≈ 0.0878
	if math.Abs(loss-0.0878) > 1e-3 {
		t.Fatalf("loss %v", loss)
	}
	if acc != 1 {
		t.Fatalf("acc %v", acc)
	}
	// gradient row 0: (p0-1, p1)/2 where p0 = sigmoid(2) ≈ 0.8808
	if math.Abs(float64(d.Data[0])-(0.8808-1)/2) > 1e-3 {
		t.Fatalf("grad %v", d.Data)
	}
}

func TestSoftmaxBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(1, 2), []int{5})
}

func TestModelDeterministicBuild(t *testing.T) {
	s := CipherSpec(1, 16, 16, 10, 99)
	a, b := s.Build(), s.Build()
	for i, p := range a.Params() {
		q := b.Params()[i]
		for k := range p.W.Data {
			if p.W.Data[k] != q.W.Data[k] {
				t.Fatal("same spec+seed must build identical weights")
			}
		}
	}
}

func TestCipherStructure(t *testing.T) {
	m := CipherSpec(1, 16, 16, 10, 1).Build()
	if m.Param("conv1/W") == nil || m.Param("fc2/b") == nil {
		t.Fatal("expected named params")
	}
	logits := m.Forward(tensor.New(3, 1, 16, 16))
	if logits.Shape[0] != 3 || logits.Shape[1] != 10 {
		t.Fatalf("logits shape %v", logits.Shape)
	}
	if m.NumParams() < 10000 {
		t.Fatalf("cipher too small: %d params", m.NumParams())
	}
}

func TestMobileNetLiteStructure(t *testing.T) {
	m := MobileNetLiteSpec(3, 16, 16, 100, 1).Build()
	logits := m.Forward(tensor.New(2, 3, 16, 16))
	if logits.Shape[0] != 2 || logits.Shape[1] != 100 {
		t.Fatalf("logits shape %v", logits.Shape)
	}
}

func TestSpecExchangeBytes(t *testing.T) {
	s := CipherSpec(1, 16, 16, 10, 1)
	if s.ExchangeBytes() != 5<<20 {
		t.Fatalf("cipher wire bytes %d", s.ExchangeBytes())
	}
	s.WireBytes = 0
	if s.ExchangeBytes() != s.Build().SizeBytes() {
		t.Fatal("zero WireBytes should fall back to real size")
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Spec{Kind: "nope"}.Build()
}

func TestDuplicateParamPanics(t *testing.T) {
	rng := stats.NewRNG(1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewModel("dup", NewDense("fc", 2, 2, rng), NewDense("fc", 2, 2, rng))
}

func TestSGDReducesLoss(t *testing.T) {
	rng := stats.NewRNG(6)
	m := NewModel("t",
		NewFlatten("f"),
		NewDense("fc1", 16, 16, rng), NewReLU("r"),
		NewDense("fc2", 16, 4, rng))
	x, y := smallBatch(rng, 16, 1, 4, 4, 4)
	first, _ := m.TrainStep(x, y)
	for i := 0; i < 60; i++ {
		m.TrainStep(x, y)
		m.ApplySGD(0.1)
	}
	last, acc := m.TrainStep(x, y)
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if acc < 0.9 {
		t.Fatalf("failed to overfit tiny batch: acc %v", acc)
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	s := CipherSpec(1, 8, 8, 4, 3)
	a, b := s.Build(), s.Build()
	// perturb a, then restore via Weights/SetWeights into b
	a.Param("fc2/b").W.Data[0] = 42
	if err := b.SetWeights(a.Weights()); err != nil {
		t.Fatal(err)
	}
	if b.Param("fc2/b").W.Data[0] != 42 {
		t.Fatal("SetWeights did not apply")
	}
	if err := b.SetWeights(map[string]*tensor.Tensor{"nope": tensor.New(1)}); err == nil {
		t.Fatal("unknown param must error")
	}
	if err := b.SetWeights(map[string]*tensor.Tensor{"fc2/b": tensor.New(1)}); err == nil {
		t.Fatal("size mismatch must error")
	}
}

func TestMergeWeightsLambda(t *testing.T) {
	s := CipherSpec(1, 8, 8, 4, 3)
	m := s.Build()
	p := m.Param("fc2/b")
	p.W.Fill(1)
	remote := map[string]*tensor.Tensor{"fc2/b": tensor.New(p.W.Shape...)}
	remote["fc2/b"].Fill(3)

	if err := m.MergeWeights(remote, 0.5); err != nil {
		t.Fatal(err)
	}
	if p.W.Data[0] != 2 { // 1 - 0.5*(1-3) = 2
		t.Fatalf("merge 0.5: got %v", p.W.Data[0])
	}
	if err := m.MergeWeights(remote, 1); err != nil {
		t.Fatal(err)
	}
	if p.W.Data[0] != 3 {
		t.Fatalf("merge 1 should replace: got %v", p.W.Data[0])
	}
	before := p.W.Data[0]
	if err := m.MergeWeights(remote, 0); err != nil {
		t.Fatal(err)
	}
	if p.W.Data[0] != before {
		t.Fatal("merge 0 should be no-op")
	}
	if err := m.MergeWeights(remote, 1.5); err == nil {
		t.Fatal("lambda > 1 must error")
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	s := CipherSpec(1, 8, 8, 4, 3)
	a := s.Build()
	s2 := s
	s2.Seed = 77
	b := s2.Build()
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Param("conv1/W"), b.Param("conv1/W")
	for i := range pa.W.Data {
		if pa.W.Data[i] != pb.W.Data[i] {
			t.Fatal("weights differ after copy")
		}
	}
}

func TestEvaluate(t *testing.T) {
	cfg := data.Config{Name: "t", NumClasses: 3, Train: 90, Test: 30,
		Channels: 1, Height: 8, Width: 8, Noise: 0.1, Jitter: 0, Bumps: 3, Seed: 5}
	train, test := data.MustGenerate(cfg)
	m := CipherSpec(1, 8, 8, 3, 7).Build()
	acc0, _ := m.Evaluate(test, 16)
	shards, _ := data.Partition(train, 1, 1)
	for i := 0; i < 40; i++ {
		x, y := shards[0].NextBatch(30)
		m.TrainStep(x, y)
		m.ApplySGD(0.05)
	}
	acc1, loss1 := m.Evaluate(test, 16)
	if acc1 <= acc0 && acc1 < 0.6 {
		t.Fatalf("training did not improve: %v -> %v", acc0, acc1)
	}
	if loss1 <= 0 {
		t.Fatalf("loss %v", loss1)
	}
}

func TestTrainStepGradIsMean(t *testing.T) {
	// Doubling the batch by duplicating samples must leave the mean
	// gradient unchanged (Eq. 6 semantics).
	rng := stats.NewRNG(12)
	m := NewModel("g", NewFlatten("f"), NewDense("fc", 8, 3, rng))
	x1, y1 := smallBatch(rng, 4, 1, 2, 4, 3)
	m.TrainStep(x1, y1)
	g1 := m.Param("fc/W").G.Clone()

	x2 := tensor.New(8, 1, 2, 4)
	copy(x2.Data[:x1.Len()], x1.Data)
	copy(x2.Data[x1.Len():], x1.Data)
	y2 := append(append([]int{}, y1...), y1...)
	m.TrainStep(x2, y2)
	g2 := m.Param("fc/W").G
	for i := range g1.Data {
		if math.Abs(float64(g1.Data[i]-g2.Data[i])) > 1e-5 {
			t.Fatalf("mean gradient changed with duplicated batch at %d: %v vs %v",
				i, g1.Data[i], g2.Data[i])
		}
	}
}
