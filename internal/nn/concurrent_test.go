package nn

import (
	"bytes"
	"sync"
	"testing"

	"dlion/internal/stats"
)

// TestConcurrentCheckpointForward exercises the serving contract: a Model
// is single-threaded (Forward mutates layer caches), but checkpoint BYTES
// are immutable, so a trainer may keep training its replica while any
// number of servers restore those bytes into private replicas and run
// Forward concurrently. The trainer emits tagged checkpoints from its own
// goroutine (the event-loop rule); consumers verify round-trip fidelity,
// deterministic inference, and that continued training never mutates
// already-published bytes. Run under -race: any sharing between the
// trainer's replica and the serving replicas is a bug this must catch.
func TestConcurrentCheckpointForward(t *testing.T) {
	spec := CipherSpec(1, 8, 8, 3, 11)
	rng := stats.NewRNG(17)
	x, y := smallBatch(rng, 8, 1, 8, 8, 3)
	xq, _ := smallBatch(rng, 4, 1, 8, 8, 3)

	type version struct {
		iter int64
		ckpt []byte
	}
	const rounds, servers = 12, 3
	feed := make(chan version, rounds)

	// Trainer: its replica is touched by this goroutine only.
	go func() {
		defer close(feed)
		m := spec.Build()
		for i := 1; i <= rounds; i++ {
			for k := 0; k < 5; k++ {
				m.TrainStep(x, y)
				m.ApplySGD(0.05)
			}
			feed <- version{iter: int64(i), ckpt: m.Checkpoint()}
		}
	}()

	var mu sync.Mutex
	var published []version // retained to re-verify after training ends

	var wg sync.WaitGroup
	for s := 0; s < servers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			replica := spec.Build()
			witness := spec.Build()
			var lastIter int64
			for v := range feed {
				// Hot-swap ordering: the feed hands out versions in publish
				// order; a consumer must never see the iteration go back.
				if v.iter <= lastIter {
					t.Errorf("version order violated: %d after %d", v.iter, lastIter)
					return
				}
				lastIter = v.iter
				if err := replica.Restore(v.ckpt); err != nil {
					t.Errorf("restore iter %d: %v", v.iter, err)
					return
				}
				// Round trip: restored replica re-checkpoints to the same bytes.
				if !bytes.Equal(replica.Checkpoint(), v.ckpt) {
					t.Errorf("iter %d: checkpoint round trip not byte-identical", v.iter)
					return
				}
				// Deterministic inference: two replicas of the same version
				// agree exactly, even while the trainer keeps mutating its own.
				out := replica.Forward(xq)
				if err := witness.Restore(v.ckpt); err != nil {
					t.Errorf("witness restore: %v", err)
					return
				}
				ref := witness.Forward(xq)
				for i := range out.Data {
					if out.Data[i] != ref.Data[i] {
						t.Errorf("iter %d: concurrent Forward diverged at %d", v.iter, i)
						return
					}
				}
				mu.Lock()
				published = append(published, v)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Published bytes survived training untouched: every retained version
	// still restores and round-trips after the trainer is done.
	if len(published) != rounds {
		t.Fatalf("consumed %d versions, want %d", len(published), rounds)
	}
	replica := spec.Build()
	for _, v := range published {
		if err := replica.Restore(v.ckpt); err != nil {
			t.Fatalf("post-hoc restore iter %d: %v", v.iter, err)
		}
		if !bytes.Equal(replica.Checkpoint(), v.ckpt) {
			t.Fatalf("iter %d: published bytes mutated", v.iter)
		}
	}
}

// TestConcurrentWorkspaceForward exercises the arena under concurrency: each
// goroutine owns a private replica (and therefore a private Workspace — the
// arena is per-model by contract, DESIGN.md §9) restored from the same
// checkpoint, and runs Forward in a tight loop so every pass recycles the
// previous pass's buffers. Outputs must stay bit-identical to the reference
// on every iteration; under -race, any arena buffer leaking between models
// or a stale recycled buffer influencing results shows up here.
func TestConcurrentWorkspaceForward(t *testing.T) {
	spec := CipherSpec(1, 8, 8, 3, 11)
	rng := stats.NewRNG(23)
	x, _ := smallBatch(rng, 8, 1, 8, 8, 3)

	src := spec.Build()
	ckpt := src.Checkpoint()
	// Copy the reference output: Forward's result aliases arena memory and is
	// only valid until the model's next pass.
	want := append([]float32(nil), src.Forward(x).Data...)

	const goroutines, iters = 4, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := spec.Build()
			if err := m.Restore(ckpt); err != nil {
				t.Errorf("goroutine %d: restore: %v", g, err)
				return
			}
			for it := 0; it < iters; it++ {
				out := m.Forward(x)
				for j := range want {
					if out.Data[j] != want[j] {
						t.Errorf("goroutine %d iter %d: output diverged at %d", g, it, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
