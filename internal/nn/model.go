package nn

import (
	"fmt"

	"dlion/internal/data"
	"dlion/internal/tensor"
)

// Model is an ordered stack of layers trained with softmax cross-entropy.
// A model owns its weights; DLion gives each worker its own replica built
// from the same Spec and seed so all replicas start identical.
//
// A model also owns a tensor.Workspace its layers draw activations and
// scratch from, so the steady-state training loop recycles a constant set
// of buffers instead of allocating megabytes per step. The aliasing
// consequence (DESIGN.md §9): tensors returned by Forward and TrainStep's
// internal activations are valid only until the next Forward/TrainStep on
// the same model — callers that retain results across steps must Clone.
// Models remain single-goroutine; concurrent use of one model was already
// a race before the workspace existed.
type Model struct {
	ModelName string
	Layers    []Layer

	params   []*Param
	byName   map[string]*Param
	ws       *tensor.Workspace
	prevDout *tensor.Tensor // last loss gradient, recycled next TrainStep
	lastOut  *tensor.Tensor
}

// NewModel assembles a model from layers and indexes its parameters.
// Duplicate parameter names are a programming error and panic.
func NewModel(name string, layers ...Layer) *Model {
	m := &Model{ModelName: name, Layers: layers, byName: map[string]*Param{},
		ws: tensor.NewWorkspace()}
	for _, l := range layers {
		if wu, ok := l.(workspaceUser); ok {
			wu.setWorkspace(m.ws)
		}
		for _, p := range l.Params() {
			if _, dup := m.byName[p.Name]; dup {
				panic(fmt.Sprintf("nn: duplicate parameter %q", p.Name))
			}
			m.byName[p.Name] = p
			m.params = append(m.params, p)
		}
	}
	return m
}

// Name returns the model name.
func (m *Model) Name() string { return m.ModelName }

// Params returns all weight variables in layer order.
func (m *Model) Params() []*Param { return m.params }

// Param returns the named weight variable, or nil.
func (m *Model) Param(name string) *Param { return m.byName[name] }

// NumParams returns the total number of scalar weights.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += p.W.Len()
	}
	return n
}

// SizeBytes returns the in-memory model size (float32 weights).
func (m *Model) SizeBytes() int { return 4 * m.NumParams() }

// Forward runs the stack on x and returns logits.
func (m *Model) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	m.lastOut = x
	return x
}

// ZeroGrads clears all gradient buffers.
func (m *Model) ZeroGrads() {
	for _, p := range m.params {
		p.G.Zero()
	}
}

// TrainStep runs one forward/backward pass over the batch, leaving the mean
// gradient in each Param's G buffer (replacing previous contents), and
// returns the batch loss and accuracy. It does NOT update weights — in
// DLion the model-update module applies gradients separately (possibly
// combined with remote gradients).
func (m *Model) TrainStep(x *tensor.Tensor, labels []int) (loss, acc float64) {
	m.ZeroGrads()
	logits := m.Forward(x)
	m.ws.Put(m.prevDout) // last step's loss gradient is dead by now
	loss, acc, dout := softmaxCrossEntropyWS(m.ws, logits, labels)
	m.prevDout = dout
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dout = m.Layers[i].Backward(dout)
	}
	return loss, acc
}

// ApplySGD performs w -= lr*g for every parameter using the gradients
// currently stored in G.
func (m *Model) ApplySGD(lr float64) {
	f := float32(lr)
	for _, p := range m.params {
		p.W.AddScaled(-f, p.G)
	}
}

// Evaluate computes accuracy and mean loss over a dataset, batching by
// evalBatch samples.
func (m *Model) Evaluate(ds *data.Dataset, evalBatch int) (acc, loss float64) {
	var totalCorrectWeighted, totalLossWeighted float64
	total := 0
	data.EvalBatches(ds, evalBatch, func(x *tensor.Tensor, y []int) {
		logits := m.Forward(x)
		l, a, _ := SoftmaxCrossEntropy(logits, y)
		totalCorrectWeighted += a * float64(len(y))
		totalLossWeighted += l * float64(len(y))
		total += len(y)
	})
	if total == 0 {
		return 0, 0
	}
	return totalCorrectWeighted / float64(total), totalLossWeighted / float64(total)
}

// Weights returns deep copies of all weight tensors keyed by name (for
// direct knowledge transfer).
func (m *Model) Weights() map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor, len(m.params))
	for _, p := range m.params {
		out[p.Name] = p.W.Clone()
	}
	return out
}

// SetWeights overwrites parameters from the given map. Unknown names are an
// error; missing names are left unchanged.
func (m *Model) SetWeights(w map[string]*tensor.Tensor) error {
	for name, t := range w {
		p := m.byName[name]
		if p == nil {
			return fmt.Errorf("nn: unknown parameter %q", name)
		}
		if t.Len() != p.W.Len() {
			return fmt.Errorf("nn: parameter %q size %d != %d", name, t.Len(), p.W.Len())
		}
		copy(p.W.Data, t.Data)
	}
	return nil
}

// MergeWeights blends remote weights into local ones:
// w_local = w_local - λ(w_local - w_remote), the leader-SGD merge rule the
// paper adopts for direct knowledge transfer (§3.4). λ=0 is a no-op, λ=1
// replaces local weights entirely.
func (m *Model) MergeWeights(remote map[string]*tensor.Tensor, lambda float64) error {
	if lambda < 0 || lambda > 1 {
		return fmt.Errorf("nn: lambda %v outside [0,1]", lambda)
	}
	lf := float32(lambda)
	for name, t := range remote {
		p := m.byName[name]
		if p == nil {
			return fmt.Errorf("nn: unknown parameter %q", name)
		}
		if t.Len() != p.W.Len() {
			return fmt.Errorf("nn: parameter %q size %d != %d", name, t.Len(), p.W.Len())
		}
		for i := range p.W.Data {
			p.W.Data[i] -= lf * (p.W.Data[i] - t.Data[i])
		}
	}
	return nil
}

// CopyWeightsFrom makes m's weights identical to src's (shapes must match).
func (m *Model) CopyWeightsFrom(src *Model) error {
	if len(m.params) != len(src.params) {
		return fmt.Errorf("nn: models differ: %d vs %d params", len(m.params), len(src.params))
	}
	for i, p := range m.params {
		sp := src.params[i]
		if p.Name != sp.Name || p.W.Len() != sp.W.Len() {
			return fmt.Errorf("nn: parameter mismatch at %d: %q/%d vs %q/%d",
				i, p.Name, p.W.Len(), sp.Name, sp.W.Len())
		}
		copy(p.W.Data, sp.W.Data)
	}
	return nil
}
