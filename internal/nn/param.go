// Package nn is the from-scratch neural-network substrate standing in for
// TensorFlow in this DLion reproduction. It provides layers with explicit
// forward/backward passes, named weight variables (DLion exchanges
// gradients per weight variable, §4.2), softmax cross-entropy loss, plain
// SGD, and the two evaluation models: the Cipher CNN and MobileNetLite.
package nn

import (
	"fmt"
	"math"

	"dlion/internal/stats"
	"dlion/internal/tensor"
)

// Param is a named weight variable together with its gradient buffer. Names
// are unique within a model (e.g. "conv1/W", "fc2/b") and are the unit of
// gradient exchange between DLion workers.
type Param struct {
	Name string
	W    *tensor.Tensor // weights
	G    *tensor.Tensor // gradient of the current iteration (mean over batch)
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), G: tensor.New(shape...)}
}

// initHe fills p.W with He-normal values (good default for ReLU nets) using
// fanIn as the scaling denominator.
func (p *Param) initHe(rng *stats.RNG, fanIn int) {
	std := math.Sqrt(2 / float64(fanIn))
	for i := range p.W.Data {
		p.W.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// Layer is one differentiable stage of a model. Forward consumes the
// previous activation; Backward consumes dL/d(output) and returns
// dL/d(input), accumulating weight gradients into the layer's Params.
// Layers cache whatever they need between Forward and Backward and are not
// safe for concurrent use.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(dout *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// shapeErr builds a consistent panic message for layer shape violations.
func shapeErr(layer string, want, got any) string {
	return fmt.Sprintf("nn: %s: want %v, got %v", layer, want, got)
}
