package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Checkpointing: the paper's workload is periodic — "DL models then
// periodically start or resume training process with the collected data"
// (§1) — so models must round-trip through storage between sessions. The
// format is a simple self-describing binary: a magic header, the model
// name, and each parameter as (name, length, float32 values).

var checkpointMagic = [4]byte{'D', 'L', 'N', '1'}

// ErrBadCheckpoint reports a structurally invalid checkpoint.
var ErrBadCheckpoint = errors.New("nn: bad checkpoint")

// Checkpoint serializes the model's weights.
func (m *Model) Checkpoint() []byte {
	size := 4 + 2 + len(m.ModelName) + 4
	for _, p := range m.params {
		size += 2 + len(p.Name) + 4 + 4*p.W.Len()
	}
	buf := make([]byte, 0, size)
	buf = append(buf, checkpointMagic[:]...)
	buf = appendString(buf, m.ModelName)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.params)))
	for _, p := range m.params {
		buf = appendString(buf, p.Name)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.W.Len()))
		for _, v := range p.W.Data {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return buf
}

// Restore loads weights from a checkpoint produced by Checkpoint. The
// model architecture must match: every checkpointed parameter must exist
// with the same length, and every model parameter must be present.
func (m *Model) Restore(data []byte) error {
	if len(data) < 4 || [4]byte(data[:4]) != checkpointMagic {
		return fmt.Errorf("%w: missing magic", ErrBadCheckpoint)
	}
	off := 4
	name, off, err := readString(data, off)
	if err != nil {
		return err
	}
	if name != m.ModelName {
		return fmt.Errorf("%w: checkpoint of %q, model is %q", ErrBadCheckpoint, name, m.ModelName)
	}
	if off+4 > len(data) {
		return fmt.Errorf("%w: truncated", ErrBadCheckpoint)
	}
	count := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if int(count) != len(m.params) {
		return fmt.Errorf("%w: %d parameters, model has %d", ErrBadCheckpoint, count, len(m.params))
	}
	seen := 0
	for i := uint32(0); i < count; i++ {
		pname, next, err := readString(data, off)
		if err != nil {
			return err
		}
		off = next
		if off+4 > len(data) {
			return fmt.Errorf("%w: truncated", ErrBadCheckpoint)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		p := m.byName[pname]
		if p == nil {
			return fmt.Errorf("%w: unknown parameter %q", ErrBadCheckpoint, pname)
		}
		if p.W.Len() != n {
			return fmt.Errorf("%w: %q has %d values, model wants %d",
				ErrBadCheckpoint, pname, n, p.W.Len())
		}
		if off+4*n > len(data) {
			return fmt.Errorf("%w: truncated values", ErrBadCheckpoint)
		}
		for k := 0; k < n; k++ {
			p.W.Data[k] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
		seen++
	}
	if off != len(data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(data)-off)
	}
	_ = seen
	return nil
}

// ScanCheckpoint structurally validates a checkpoint without a model: the
// magic, model name, parameter count, and every (name, length, values)
// record must parse and consume the buffer exactly. It returns the model
// name and total value count. Serving watchers use it to reject torn or
// truncated files — a partial write fails here, before any swap is
// attempted against a live registry.
func ScanCheckpoint(data []byte) (model string, values int, err error) {
	if len(data) < 4 || [4]byte(data[:4]) != checkpointMagic {
		return "", 0, fmt.Errorf("%w: missing magic", ErrBadCheckpoint)
	}
	off := 4
	model, off, err = readString(data, off)
	if err != nil {
		return "", 0, err
	}
	if off+4 > len(data) {
		return "", 0, fmt.Errorf("%w: truncated", ErrBadCheckpoint)
	}
	count := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	// Each parameter record is at least 6 bytes (empty name, zero length),
	// so a count the remaining bytes cannot hold is structurally bogus —
	// reject it before looping.
	if count > (len(data)-off)/6 {
		return "", 0, fmt.Errorf("%w: %d parameters in %d bytes", ErrBadCheckpoint, count, len(data)-off)
	}
	for i := 0; i < count; i++ {
		if _, off, err = readString(data, off); err != nil {
			return "", 0, err
		}
		if off+4 > len(data) {
			return "", 0, fmt.Errorf("%w: truncated", ErrBadCheckpoint)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n < 0 || off+4*n > len(data) {
			return "", 0, fmt.Errorf("%w: truncated values", ErrBadCheckpoint)
		}
		off += 4 * n
		values += n
	}
	if off != len(data) {
		return "", 0, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(data)-off)
	}
	return model, values, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func readString(data []byte, off int) (string, int, error) {
	if off+2 > len(data) {
		return "", 0, fmt.Errorf("%w: truncated string", ErrBadCheckpoint)
	}
	n := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	if off+n > len(data) {
		return "", 0, fmt.Errorf("%w: truncated string body", ErrBadCheckpoint)
	}
	return string(data[off : off+n]), off + n, nil
}
