package nn

import (
	"testing"

	"dlion/internal/stats"
	"dlion/internal/tensor"
)

func benchBatch(b *testing.B, batch int) (*tensor.Tensor, []int) {
	b.Helper()
	rng := stats.NewRNG(1)
	x := tensor.New(batch, 1, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	y := make([]int, batch)
	for i := range y {
		y[i] = rng.Intn(10)
	}
	return x, y
}

func BenchmarkCipherForward32(b *testing.B) {
	m := CipherSpec(1, 16, 16, 10, 1).Build()
	x, _ := benchBatch(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkCipherTrainStep32(b *testing.B) {
	m := CipherSpec(1, 16, 16, 10, 1).Build()
	x, y := benchBatch(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainStep(x, y)
	}
}

func BenchmarkMobileNetLiteTrainStep16(b *testing.B) {
	m := MobileNetLiteSpec(3, 16, 16, 100, 1).Build()
	rng := stats.NewRNG(2)
	x := tensor.New(16, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	y := make([]int, 16)
	for i := range y {
		y[i] = rng.Intn(100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainStep(x, y)
	}
}

func BenchmarkApplySGD(b *testing.B) {
	m := CipherSpec(1, 16, 16, 10, 1).Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ApplySGD(0.001)
	}
}

func BenchmarkMergeWeights(b *testing.B) {
	m := CipherSpec(1, 16, 16, 10, 1).Build()
	remote := m.Weights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MergeWeights(remote, 0.75); err != nil {
			b.Fatal(err)
		}
	}
}
