package nn

import (
	"testing"

	"dlion/internal/stats"
)

func TestCheckpointRoundTrip(t *testing.T) {
	spec := CipherSpec(1, 8, 8, 4, 3)
	a := spec.Build()
	// perturb weights so the round trip is meaningful
	rng := stats.NewRNG(5)
	for _, p := range a.Params() {
		for i := range p.W.Data {
			p.W.Data[i] = float32(rng.NormFloat64())
		}
	}
	data := a.Checkpoint()

	b := spec.Build()
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	for i, p := range a.Params() {
		q := b.Params()[i]
		for k := range p.W.Data {
			if p.W.Data[k] != q.W.Data[k] {
				t.Fatalf("weight %s[%d] differs after restore", p.Name, k)
			}
		}
	}
}

func TestCheckpointResumeTraining(t *testing.T) {
	// Train, checkpoint, restore into a fresh replica, keep training: the
	// paper's periodic start/resume workflow.
	spec := CipherSpec(1, 8, 8, 3, 7)
	m := spec.Build()
	rng := stats.NewRNG(9)
	x, y := smallBatch(rng, 16, 1, 8, 8, 3)
	for i := 0; i < 30; i++ {
		m.TrainStep(x, y)
		m.ApplySGD(0.05)
	}
	lossBefore, _ := m.TrainStep(x, y)
	ck := m.Checkpoint()

	resumed := spec.Build()
	if err := resumed.Restore(ck); err != nil {
		t.Fatal(err)
	}
	lossResumed, _ := resumed.TrainStep(x, y)
	if lossResumed != lossBefore {
		t.Fatalf("resumed model differs: %v vs %v", lossResumed, lossBefore)
	}
	for i := 0; i < 10; i++ {
		resumed.TrainStep(x, y)
		resumed.ApplySGD(0.05)
	}
	lossAfter, _ := resumed.TrainStep(x, y)
	if lossAfter >= lossBefore {
		t.Fatalf("resumed training made no progress: %v -> %v", lossBefore, lossAfter)
	}
}

func TestRestoreErrors(t *testing.T) {
	spec := CipherSpec(1, 8, 8, 4, 3)
	m := spec.Build()
	good := m.Checkpoint()

	if err := m.Restore(nil); err == nil {
		t.Fatal("nil data must fail")
	}
	if err := m.Restore(good[:10]); err == nil {
		t.Fatal("truncated must fail")
	}
	if err := m.Restore(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if err := m.Restore(bad); err == nil {
		t.Fatal("bad magic must fail")
	}
	// wrong architecture
	other := MobileNetLiteSpec(3, 16, 16, 10, 1).Build()
	if err := other.Restore(good); err == nil {
		t.Fatal("cross-architecture restore must fail")
	}
}

func TestRestoreFuzzDoesNotPanic(t *testing.T) {
	spec := CipherSpec(1, 8, 8, 4, 3)
	m := spec.Build()
	good := m.Checkpoint()
	rng := stats.NewRNG(11)
	for trial := 0; trial < 300; trial++ {
		b := append([]byte{}, good...)
		for f := 0; f < 1+rng.Intn(6); f++ {
			b[rng.Intn(len(b))] ^= byte(rng.Uint64())
		}
		m.Restore(b) // error or garbage weights, but never a panic
	}
}
