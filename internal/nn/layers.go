package nn

import (
	"dlion/internal/stats"
	"dlion/internal/tensor"
)

// workspaceUser is implemented by layers that draw activations and scratch
// from a model-owned arena. NewModel injects its workspace into every layer
// that implements it; a standalone layer keeps a nil workspace, which makes
// every arena call degrade to a plain heap allocation.
type workspaceUser interface {
	setWorkspace(ws *tensor.Workspace)
}

// arena is the per-layer handle to the model workspace plus the layer's
// retained previous outputs. The recycling discipline (DESIGN.md §9): a
// layer owns the tensors it returns and recycles each one at the start of
// producing its successor — by which point the rest of the model has
// finished reading it (Forward outputs are consumed by the next layer and
// the loss, Backward outputs by the preceding layer, all before the next
// pass begins).
type arena struct {
	ws     *tensor.Workspace
	prevY  *tensor.Tensor
	prevDx *tensor.Tensor
}

func (a *arena) setWorkspace(ws *tensor.Workspace) { a.ws = ws }

// nextY recycles the layer's previous Forward output and draws the next
// one. The returned buffer is dirty; callers must write every element.
func (a *arena) nextY(shape ...int) *tensor.Tensor {
	a.ws.Put(a.prevY)
	a.prevY = a.ws.Get(shape...)
	return a.prevY
}

// nextDx recycles the layer's previous Backward output and draws the next
// one, zeroed when the caller accumulates instead of overwriting.
func (a *arena) nextDx(zeroed bool, shape ...int) *tensor.Tensor {
	a.ws.Put(a.prevDx)
	if zeroed {
		a.prevDx = a.ws.GetZeroed(shape...)
	} else {
		a.prevDx = a.ws.Get(shape...)
	}
	return a.prevDx
}

// Dense is a fully-connected layer: y = x·Wᵀ + b for x (batch, in),
// W (out, in), b (out).
type Dense struct {
	arena
	name    string
	In, Out int
	w, b    *Param
	x       *tensor.Tensor // cached input
}

// NewDense builds a Dense layer with He-initialized weights.
func NewDense(name string, in, out int, rng *stats.RNG) *Dense {
	d := &Dense{name: name, In: in, Out: out,
		w: newParam(name+"/W", out, in),
		b: newParam(name+"/b", out),
	}
	d.w.initHe(rng, in)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Shape[1] != d.In {
		panic(shapeErr(d.name, []int{-1, d.In}, x.Shape))
	}
	d.x = x
	batch := x.Shape[0]
	y := d.nextY(batch, d.Out)
	tensor.MatMulTransB(y, x, d.w.W)
	for i := 0; i < batch; i++ {
		row := y.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += d.b.W.Data[j]
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	batch := d.x.Shape[0]
	// dW += doutᵀ·x ; shapes: dout (batch,out), x (batch,in), dW (out,in)
	dw := d.ws.Get(d.Out, d.In) // scratch; MatMulTransA writes every element
	tensor.MatMulTransA(dw, dout, d.x)
	d.w.G.Add(dw)
	d.ws.Put(dw)
	for i := 0; i < batch; i++ {
		row := dout.Data[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			d.b.G.Data[j] += v
		}
	}
	dx := d.nextDx(false, batch, d.In)
	tensor.MatMul(dx, dout, d.w.W)
	return dx
}

// Conv2D is a standard cross-correlation layer over NCHW input, implemented
// as im2col + matmul. Output channels = Filters, kernel KxK, given stride
// and zero-padding.
type Conv2D struct {
	arena
	name                string
	InCh, Filters       int
	K, Stride, Pad      int
	w, b                *Param
	x                   *tensor.Tensor
	cols                *tensor.Tensor
	inH, inW, outH, out int // cached geometry; out = outW
}

// NewConv2D builds a Conv2D layer with He-initialized kernels.
func NewConv2D(name string, inCh, filters, k, stride, pad int, rng *stats.RNG) *Conv2D {
	c := &Conv2D{name: name, InCh: inCh, Filters: filters, K: k, Stride: stride, Pad: pad,
		w: newParam(name+"/W", filters, inCh*k*k),
		b: newParam(name+"/b", filters),
	}
	c.w.initHe(rng, inCh*k*k)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != c.InCh {
		panic(shapeErr(c.name, []int{-1, c.InCh, -1, -1}, x.Shape))
	}
	batch, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	c.x, c.inH, c.inW = x, h, w
	c.outH = (h+2*c.Pad-c.K)/c.Stride + 1
	c.out = (w+2*c.Pad-c.K)/c.Stride + 1
	// Columns live until this iteration's Backward; recycle last iteration's.
	c.ws.Put(c.cols)
	c.cols = tensor.Im2ColWS(c.ws, x, c.K, c.K, c.Stride, c.Pad) // (batch*oh*ow, inCh*K*K)
	// y_cols (batch*oh*ow, filters) = cols · Wᵀ
	yc := c.ws.Get(batch*c.outH*c.out, c.Filters) // scratch; fully written
	tensor.MatMulTransB(yc, c.cols, c.w.W)
	// rearrange to (batch, filters, oh, ow) and add bias
	y := c.nextY(batch, c.Filters, c.outH, c.out)
	plane := c.outH * c.out
	for n := 0; n < batch; n++ {
		for p := 0; p < plane; p++ {
			src := yc.Data[(n*plane+p)*c.Filters:][:c.Filters]
			for f, v := range src {
				y.Data[(n*c.Filters+f)*plane+p] = v + c.b.W.Data[f]
			}
		}
	}
	c.ws.Put(yc)
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	batch := c.x.Shape[0]
	plane := c.outH * c.out
	// Rearrange dout (batch, filters, oh, ow) into (batch*oh*ow, filters).
	dyc := c.ws.Get(batch*plane, c.Filters) // scratch; fully written
	for n := 0; n < batch; n++ {
		for f := 0; f < c.Filters; f++ {
			src := dout.Data[(n*c.Filters+f)*plane:][:plane]
			for p, v := range src {
				dyc.Data[(n*plane+p)*c.Filters+f] = v
			}
		}
	}
	// dW (filters, inCh*K*K) += dycᵀ·cols ; db += column sums of dyc
	dw := c.ws.Get(c.Filters, c.InCh*c.K*c.K) // scratch; fully written
	tensor.MatMulTransA(dw, dyc, c.cols)
	c.w.G.Add(dw)
	c.ws.Put(dw)
	for r := 0; r < batch*plane; r++ {
		row := dyc.Data[r*c.Filters:][:c.Filters]
		for f, v := range row {
			c.b.G.Data[f] += v
		}
	}
	// dcols = dyc · W ; then scatter back to input shape.
	dcols := c.ws.Get(batch*plane, c.InCh*c.K*c.K) // scratch; fully written
	tensor.MatMul(dcols, dyc, c.w.W)
	c.ws.Put(dyc)
	c.ws.Put(c.prevDx)
	dx := tensor.Col2ImWS(c.ws, dcols, batch, c.InCh, c.inH, c.inW, c.K, c.K, c.Stride, c.Pad)
	c.prevDx = dx
	c.ws.Put(dcols)
	return dx
}

// DepthwiseConv2D convolves each input channel with its own KxK kernel
// (channel multiplier 1) — the core of MobileNet's separable convolutions.
type DepthwiseConv2D struct {
	arena
	name           string
	Ch             int
	K, Stride, Pad int
	w, b           *Param
	x              *tensor.Tensor
	outH, outW     int
}

// NewDepthwiseConv2D builds a depthwise convolution layer.
func NewDepthwiseConv2D(name string, ch, k, stride, pad int, rng *stats.RNG) *DepthwiseConv2D {
	d := &DepthwiseConv2D{name: name, Ch: ch, K: k, Stride: stride, Pad: pad,
		w: newParam(name+"/W", ch, k, k),
		b: newParam(name+"/b", ch),
	}
	d.w.initHe(rng, k*k)
	return d
}

// Name implements Layer.
func (d *DepthwiseConv2D) Name() string { return d.name }

// Params implements Layer.
func (d *DepthwiseConv2D) Params() []*Param { return []*Param{d.w, d.b} }

// Forward implements Layer.
func (d *DepthwiseConv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != d.Ch {
		panic(shapeErr(d.name, []int{-1, d.Ch, -1, -1}, x.Shape))
	}
	batch, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	d.x = x
	d.outH = (h+2*d.Pad-d.K)/d.Stride + 1
	d.outW = (w+2*d.Pad-d.K)/d.Stride + 1
	y := d.nextY(batch, d.Ch, d.outH, d.outW)
	for n := 0; n < batch; n++ {
		for ch := 0; ch < d.Ch; ch++ {
			in := x.Data[(n*d.Ch+ch)*h*w:][:h*w]
			out := y.Data[(n*d.Ch+ch)*d.outH*d.outW:][:d.outH*d.outW]
			ker := d.w.W.Data[ch*d.K*d.K:][:d.K*d.K]
			bias := d.b.W.Data[ch]
			for oy := 0; oy < d.outH; oy++ {
				for ox := 0; ox < d.outW; ox++ {
					var s float32
					for ky := 0; ky < d.K; ky++ {
						iy := oy*d.Stride + ky - d.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < d.K; kx++ {
							ix := ox*d.Stride + kx - d.Pad
							if ix < 0 || ix >= w {
								continue
							}
							s += in[iy*w+ix] * ker[ky*d.K+kx]
						}
					}
					out[oy*d.outW+ox] = s + bias
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (d *DepthwiseConv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	batch, h, w := d.x.Shape[0], d.x.Shape[2], d.x.Shape[3]
	dx := d.nextDx(true, batch, d.Ch, h, w) // zeroed: the scatter accumulates
	for n := 0; n < batch; n++ {
		for ch := 0; ch < d.Ch; ch++ {
			in := d.x.Data[(n*d.Ch+ch)*h*w:][:h*w]
			dxp := dx.Data[(n*d.Ch+ch)*h*w:][:h*w]
			dop := dout.Data[(n*d.Ch+ch)*d.outH*d.outW:][:d.outH*d.outW]
			ker := d.w.W.Data[ch*d.K*d.K:][:d.K*d.K]
			dker := d.w.G.Data[ch*d.K*d.K:][:d.K*d.K]
			var dbias float32
			for oy := 0; oy < d.outH; oy++ {
				for ox := 0; ox < d.outW; ox++ {
					g := dop[oy*d.outW+ox]
					if g == 0 {
						continue
					}
					dbias += g
					for ky := 0; ky < d.K; ky++ {
						iy := oy*d.Stride + ky - d.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < d.K; kx++ {
							ix := ox*d.Stride + kx - d.Pad
							if ix < 0 || ix >= w {
								continue
							}
							dker[ky*d.K+kx] += g * in[iy*w+ix]
							dxp[iy*w+ix] += g * ker[ky*d.K+kx]
						}
					}
				}
			}
			// bias gradient may be zero-skipped above only when g==0, which
			// contributes nothing anyway.
			d.b.G.Data[ch] += dbias
		}
	}
	return dx
}

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	arena
	name string
	mask []bool
}

// NewReLU builds a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	y := r.nextY(x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			r.mask[i] = true
		} else {
			y.Data[i] = 0
			r.mask[i] = false
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := r.nextDx(false, dout.Shape...)
	for i, v := range dout.Data {
		if r.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// MaxPool2 is 2x2 max pooling with stride 2 over NCHW input. Odd trailing
// rows/columns are dropped (floor semantics).
type MaxPool2 struct {
	arena
	name   string
	argmax []int
	insh   []int
}

// NewMaxPool2 builds a 2x2/stride-2 max-pooling layer.
func NewMaxPool2(name string) *MaxPool2 { return &MaxPool2{name: name} }

// Name implements Layer.
func (m *MaxPool2) Name() string { return m.name }

// Params implements Layer.
func (m *MaxPool2) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool2) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(shapeErr(m.name, "rank-4", x.Shape))
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/2, w/2
	m.insh = append(m.insh[:0], x.Shape...)
	y := m.nextY(b, c, oh, ow)
	if cap(m.argmax) < y.Len() {
		m.argmax = make([]int, y.Len())
	}
	m.argmax = m.argmax[:y.Len()]
	for n := 0; n < b; n++ {
		for ch := 0; ch < c; ch++ {
			in := x.Data[(n*c+ch)*h*w:][:h*w]
			outBase := (n*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					iy, ix := oy*2, ox*2
					best, bi := in[iy*w+ix], iy*w+ix
					for _, off := range [3]int{iy*w + ix + 1, (iy+1)*w + ix, (iy+1)*w + ix + 1} {
						if in[off] > best {
							best, bi = in[off], off
						}
					}
					y.Data[outBase+oy*ow+ox] = best
					m.argmax[outBase+oy*ow+ox] = (n*c+ch)*h*w + bi
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (m *MaxPool2) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := m.nextDx(true, m.insh...) // zeroed: the scatter accumulates
	for i, v := range dout.Data {
		dx.Data[m.argmax[i]] += v
	}
	return dx
}

// GlobalAvgPool averages each channel plane to a single value, producing
// (batch, ch) output from (batch, ch, h, w) input.
type GlobalAvgPool struct {
	arena
	name string
	insh []int
}

// NewGlobalAvgPool builds a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.name }

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(shapeErr(g.name, "rank-4", x.Shape))
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	g.insh = append(g.insh[:0], x.Shape...)
	y := g.nextY(b, c)
	inv := 1 / float32(h*w)
	for n := 0; n < b; n++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(n*c+ch)*h*w:][:h*w]
			var s float32
			for _, v := range plane {
				s += v
			}
			y.Data[n*c+ch] = s * inv
		}
	}
	return y
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b, c, h, w := g.insh[0], g.insh[1], g.insh[2], g.insh[3]
	dx := g.nextDx(false, g.insh...) // every element overwritten below
	inv := 1 / float32(h*w)
	for n := 0; n < b; n++ {
		for ch := 0; ch < c; ch++ {
			gv := dout.Data[n*c+ch] * inv
			plane := dx.Data[(n*c+ch)*h*w:][:h*w]
			for i := range plane {
				plane[i] = gv
			}
		}
	}
	return dx
}

// Flatten reshapes (batch, ...) activations to (batch, rest).
type Flatten struct {
	name string
	insh []int
	// out and dx are reused view headers over the caller's data (the arena
	// aliasing contract already bounds their lifetime to the next pass).
	// wsBits stays zero, so Put ignores them like any Reshape view.
	out, dx tensor.Tensor
}

// NewFlatten builds a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.insh = append(f.insh[:0], x.Shape...)
	rest := 1
	for _, d := range x.Shape[1:] {
		rest *= d
	}
	f.out.Data = x.Data
	f.out.Shape = append(f.out.Shape[:0], x.Shape[0], rest)
	return &f.out
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	f.dx.Data = dout.Data
	f.dx.Shape = append(f.dx.Shape[:0], f.insh...)
	return &f.dx
}
