package nn

import (
	"dlion/internal/tensor"
)

// QuantModel is an int8 inference view of a Model: the matmul-heavy layers
// (Dense, Conv2D) run on tensor.QuantMat int8 kernels with weights packed
// once at construction, while cheap or shape-only layers (ReLU, pooling,
// Flatten, DepthwiseConv2D) keep their float32 Forward. Activations are
// re-quantized per layer with per-row symmetric scales, so precision loss
// does not compound beyond each matmul's own rounding.
//
// A QuantModel wraps — and shares layer state with — its source model:
// Forward uses the f32 layers' own arenas for the pass-through layers, so
// the pair inherits the Model's single-goroutine contract, and outputs obey
// the same aliasing rule (valid until the next Forward). Weights are
// captured at NewQuantModel time; after mutating the source model (e.g.
// Restore), build a fresh QuantModel to repack.
type QuantModel struct {
	model  *Model
	layers []qForward
}

// qForward is one inference-only layer of the quantized stack.
type qForward interface {
	forward(x *tensor.Tensor) *tensor.Tensor
}

// NewQuantModel packs m's Dense and Conv2D weights into int8 panel form and
// returns the quantized inference stack. m must not be mutated for as long
// as the QuantModel is in use (its pass-through layers are shared).
func NewQuantModel(m *Model) *QuantModel {
	qm := &QuantModel{model: m}
	ws := tensor.NewWorkspace()
	for _, l := range m.Layers {
		switch t := l.(type) {
		case *Dense:
			qm.layers = append(qm.layers, newQDense(t, ws))
		case *Conv2D:
			qm.layers = append(qm.layers, newQConv(t, ws))
		default:
			qm.layers = append(qm.layers, passLayer{t})
		}
	}
	return qm
}

// Model returns the source model the quantized stack was packed from.
func (qm *QuantModel) Model() *Model { return qm.model }

// Forward runs the quantized stack on x and returns logits. Like
// Model.Forward, the result is valid only until the next Forward.
func (qm *QuantModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range qm.layers {
		x = l.forward(x)
	}
	return x
}

// passLayer adapts an unquantized layer into the stack.
type passLayer struct{ l Layer }

func (p passLayer) forward(x *tensor.Tensor) *tensor.Tensor { return p.l.Forward(x) }

// qBuf is the retained activation-quantization scratch shared by the
// quantized layers: int8-range codes (widened to int16) and per-row scales,
// grown on demand like ReLU's mask.
type qBuf struct {
	codes  []int16
	scales []float32
}

func (b *qBuf) grow(rows, packedK int) ([]int16, []float32) {
	if cap(b.codes) < rows*packedK {
		b.codes = make([]int16, rows*packedK)
	}
	if cap(b.scales) < rows {
		b.scales = make([]float32, rows)
	}
	return b.codes[:rows*packedK], b.scales[:rows]
}

// qDense is the int8 Dense forward: y = dequant(q8(x)·Wᵀ) + b.
type qDense struct {
	arena
	d *Dense
	q *tensor.QuantMat
	b qBuf
}

func newQDense(d *Dense, ws *tensor.Workspace) *qDense {
	z := &qDense{d: d, q: tensor.PackQuantMat(d.w.W.Data, d.Out, d.In)}
	z.setWorkspace(ws)
	return z
}

func (z *qDense) forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Shape[1] != z.d.In {
		panic(shapeErr(z.d.name, []int{-1, z.d.In}, x.Shape))
	}
	batch := x.Shape[0]
	qa, sc := z.b.grow(batch, z.q.PackedK())
	tensor.QuantizeRowsI8(qa, sc, x.Data, batch, z.d.In)
	y := z.nextY(batch, z.d.Out)
	z.q.MatMulTransB(y.Data, qa, sc, batch, z.d.b.W.Data)
	return y
}

// qConv is the int8 Conv2D forward: im2col, per-patch quantization, one
// packed int8 matmul, NCHW rearrange (bias folded into the matmul).
type qConv struct {
	arena
	c *Conv2D
	q *tensor.QuantMat
	b qBuf
}

func newQConv(c *Conv2D, ws *tensor.Workspace) *qConv {
	z := &qConv{c: c, q: tensor.PackQuantMat(c.w.W.Data, c.Filters, c.InCh*c.K*c.K)}
	z.setWorkspace(ws)
	return z
}

func (z *qConv) forward(x *tensor.Tensor) *tensor.Tensor {
	c := z.c
	if x.Rank() != 4 || x.Shape[1] != c.InCh {
		panic(shapeErr(c.name, []int{-1, c.InCh, -1, -1}, x.Shape))
	}
	batch, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	outH := (h+2*c.Pad-c.K)/c.Stride + 1
	outW := (w+2*c.Pad-c.K)/c.Stride + 1
	k := c.InCh * c.K * c.K
	cols := tensor.Im2ColWS(z.ws, x, c.K, c.K, c.Stride, c.Pad) // (batch*oh*ow, k)
	rows := batch * outH * outW
	qa, sc := z.b.grow(rows, z.q.PackedK())
	tensor.QuantizeRowsI8(qa, sc, cols.Data, rows, k)
	yc := z.ws.Get(rows, c.Filters) // scratch; fully written
	z.q.MatMulTransB(yc.Data, qa, sc, rows, c.b.W.Data)
	z.ws.Put(cols)
	y := z.nextY(batch, c.Filters, outH, outW)
	plane := outH * outW
	for n := 0; n < batch; n++ {
		for p := 0; p < plane; p++ {
			src := yc.Data[(n*plane+p)*c.Filters:][:c.Filters]
			for f, v := range src {
				y.Data[(n*c.Filters+f)*plane+p] = v
			}
		}
	}
	z.ws.Put(yc)
	return y
}
