package nn

import (
	"math"

	"dlion/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (batch, classes) against integer labels, the classification accuracy on
// the batch, and the gradient dL/dlogits already divided by the batch size
// (so downstream weight gradients are per-sample means, matching Eq. 6 of
// the paper).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, acc float64, dlogits *tensor.Tensor) {
	return softmaxCrossEntropyWS(nil, logits, labels)
}

// softmaxCrossEntropyWS is SoftmaxCrossEntropy with dlogits drawn from ws
// (every element is written, so a dirty arena buffer is fine). TrainStep
// uses it so the loss gradient joins the model's recycled working set.
func softmaxCrossEntropyWS(ws *tensor.Workspace, logits *tensor.Tensor, labels []int) (loss float64, acc float64, dlogits *tensor.Tensor) {
	batch, classes := logits.Shape[0], logits.Shape[1]
	if batch != len(labels) {
		panic("nn: label count does not match batch size")
	}
	dlogits = ws.Get(batch, classes)
	correct := 0
	var total float64
	for i := 0; i < batch; i++ {
		row := logits.Data[i*classes : (i+1)*classes]
		// stable softmax
		maxv := row[0]
		argmax := 0
		for j, v := range row {
			if v > maxv {
				maxv, argmax = v, j
			}
		}
		var sum float64
		probs := dlogits.Data[i*classes : (i+1)*classes]
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			probs[j] = float32(e)
			sum += e
		}
		inv := 1 / sum
		lbl := labels[i]
		if lbl < 0 || lbl >= classes {
			panic("nn: label out of range")
		}
		for j := range probs {
			probs[j] = float32(float64(probs[j]) * inv)
		}
		p := float64(probs[lbl])
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
		if argmax == lbl {
			correct++
		}
		// gradient: (softmax - onehot) / batch
		probs[lbl] -= 1
		invB := float32(1.0 / float64(batch))
		for j := range probs {
			probs[j] *= invB
		}
	}
	return total / float64(batch), float64(correct) / float64(batch), dlogits
}
