package nn

import (
	"fmt"

	"dlion/internal/stats"
)

// Spec describes a model to construct. Identical specs (same seed) build
// byte-identical replicas, which is how DLion workers start from a common
// initial model.
//
// WireBytes decouples the size the *network model* charges for exchanging
// the full model from the in-memory parameter count: the paper's Cipher is
// 5 MB and MobileNet 17 MB, and the communication experiments depend on
// those sizes even when this reproduction scales parameter counts down.
// Zero means "use the real in-memory size".
type Spec struct {
	Kind      string // "cipher" or "mobilenet-lite"
	Channels  int
	Height    int
	Width     int
	Classes   int
	Seed      uint64
	WireBytes int
}

// CipherSpec returns the paper's Cipher CNN spec (3 conv + 2 FC with
// 10/20/100 kernels and 200 neurons, §5.1.1) for the given input geometry,
// with the 5 MB wire size.
func CipherSpec(channels, h, w, classes int, seed uint64) Spec {
	return Spec{Kind: "cipher", Channels: channels, Height: h, Width: w,
		Classes: classes, Seed: seed, WireBytes: 5 << 20}
}

// MobileNetLiteSpec returns the scaled MobileNet spec (depthwise-separable
// blocks) with the paper's 17 MB wire size.
func MobileNetLiteSpec(channels, h, w, classes int, seed uint64) Spec {
	return Spec{Kind: "mobilenet-lite", Channels: channels, Height: h, Width: w,
		Classes: classes, Seed: seed, WireBytes: 17 << 20}
}

// Build constructs the model. Unknown kinds panic (specs are authored in
// code, not parsed from input).
func (s Spec) Build() *Model {
	rng := stats.NewRNG(s.Seed)
	switch s.Kind {
	case "cipher":
		return buildCipher(s, rng)
	case "mobilenet-lite":
		return buildMobileNetLite(s, rng)
	default:
		panic(fmt.Sprintf("nn: unknown model kind %q", s.Kind))
	}
}

// ExchangeBytes returns the byte size charged when the full model (or full
// gradient) crosses the network.
func (s Spec) ExchangeBytes() int {
	if s.WireBytes > 0 {
		return s.WireBytes
	}
	return s.Build().SizeBytes()
}

// buildCipher assembles the Cipher CNN: conv(10)-relu-pool,
// conv(20)-relu-pool, conv(100)-relu, fc(200)-relu, fc(classes).
func buildCipher(s Spec, rng *stats.RNG) *Model {
	h, w := s.Height, s.Width
	conv1 := NewConv2D("conv1", s.Channels, 10, 3, 1, 1, rng)
	pool1 := NewMaxPool2("pool1")
	h, w = h/2, w/2
	conv2 := NewConv2D("conv2", 10, 20, 3, 1, 1, rng)
	pool2 := NewMaxPool2("pool2")
	h, w = h/2, w/2
	conv3 := NewConv2D("conv3", 20, 100, 3, 1, 1, rng)
	flat := h * w * 100
	return NewModel("cipher",
		conv1, NewReLU("relu1"), pool1,
		conv2, NewReLU("relu2"), pool2,
		conv3, NewReLU("relu3"),
		NewFlatten("flatten"),
		NewDense("fc1", flat, 200, rng), NewReLU("relu4"),
		NewDense("fc2", 200, s.Classes, rng),
	)
}

// buildMobileNetLite assembles a reduced MobileNet: a stem convolution
// followed by depthwise-separable blocks (depthwise 3x3 + pointwise 1x1),
// global average pooling, and a classifier head.
func buildMobileNetLite(s Spec, rng *stats.RNG) *Model {
	type block struct{ in, out, stride int }
	blocks := []block{
		{32, 64, 1},
		{64, 128, 2},
		{128, 128, 1},
		{128, 256, 2},
	}
	layers := []Layer{
		NewConv2D("stem", s.Channels, 32, 3, 2, 1, rng),
		NewReLU("stem_relu"),
	}
	for i, b := range blocks {
		dw := fmt.Sprintf("dw%d", i+1)
		pw := fmt.Sprintf("pw%d", i+1)
		layers = append(layers,
			NewDepthwiseConv2D(dw, b.in, 3, b.stride, 1, rng),
			NewReLU(dw+"_relu"),
			NewConv2D(pw, b.in, b.out, 1, 1, 0, rng),
			NewReLU(pw+"_relu"),
		)
	}
	layers = append(layers,
		NewGlobalAvgPool("gap"),
		NewDense("fc", 256, s.Classes, rng),
	)
	return NewModel("mobilenet-lite", layers...)
}
