package nn

import (
	"math"
	"testing"

	"dlion/internal/stats"
	"dlion/internal/tensor"
)

// randInput fills a deterministic pseudo-image batch.
func randInput(rng *stats.RNG, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = float32(rng.Float64()*2 - 1)
	}
	return x
}

// TestQuantModelAgreesWithFloat: the int8 stack's logits track the f32
// stack closely enough that predictions agree — the serve-path contract.
func TestQuantModelAgreesWithFloat(t *testing.T) {
	for _, spec := range []Spec{
		CipherSpec(3, 16, 16, 10, 7),
		MobileNetLiteSpec(3, 16, 16, 10, 11),
	} {
		m := spec.Build()
		qm := NewQuantModel(m)
		rng := stats.NewRNG(99)
		const batch = 8
		x := randInput(rng, batch, spec.Channels, spec.Height, spec.Width)

		ref := m.Forward(x).Clone()
		got := qm.Forward(x).Clone()
		if len(ref.Data) != batch*spec.Classes || len(got.Data) != len(ref.Data) {
			t.Fatalf("%s: logit shape mismatch: %v vs %v", spec.Kind, ref.Shape, got.Shape)
		}

		// Scale-relative error: int8 per-layer quantization on an untrained
		// net keeps logits within a few percent of the activation magnitude.
		var maxAbs, maxErr float64
		for i := range ref.Data {
			if a := math.Abs(float64(ref.Data[i])); a > maxAbs {
				maxAbs = a
			}
			if e := math.Abs(float64(ref.Data[i] - got.Data[i])); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 0.1*maxAbs+0.05 {
			t.Fatalf("%s: max logit error %g vs max logit %g", spec.Kind, maxErr, maxAbs)
		}
		agree := 0
		for i := 0; i < batch; i++ {
			if argmaxRow(ref.Data[i*spec.Classes:][:spec.Classes]) ==
				argmaxRow(got.Data[i*spec.Classes:][:spec.Classes]) {
				agree++
			}
		}
		if agree < batch-1 {
			t.Fatalf("%s: only %d/%d argmax agreements", spec.Kind, agree, batch)
		}
	}
}

func argmaxRow(row []float32) int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range row {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// TestQuantModelDeterministic: repeated quantized forwards are bit-identical
// (integer accumulation plus fixed-order dequant).
func TestQuantModelDeterministic(t *testing.T) {
	spec := CipherSpec(1, 8, 8, 4, 3)
	m := spec.Build()
	qm := NewQuantModel(m)
	rng := stats.NewRNG(5)
	x := randInput(rng, 4, 1, 8, 8)
	a := qm.Forward(x).Clone()
	b := qm.Forward(x).Clone()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("logit %d differs across runs: %g vs %g", i, a.Data[i], b.Data[i])
		}
	}
}

// TestQuantModelTracksRestore: packing captures a weight snapshot — after
// Restore, a freshly built QuantModel follows the new weights.
func TestQuantModelTracksRestore(t *testing.T) {
	spec := CipherSpec(1, 8, 8, 4, 3)
	m := spec.Build()
	ckptA := m.Checkpoint()
	rng := stats.NewRNG(5)
	x := randInput(rng, 2, 1, 8, 8)
	outA := NewQuantModel(m).Forward(x).Clone()

	// Perturb, checkpoint, restore the original: a repacked QuantModel must
	// reproduce the original quantized logits exactly.
	for _, p := range m.Params() {
		for i := range p.W.Data {
			p.W.Data[i] += 0.25
		}
	}
	outB := NewQuantModel(m).Forward(x).Clone()
	if err := m.Restore(ckptA); err != nil {
		t.Fatal(err)
	}
	outC := NewQuantModel(m).Forward(x).Clone()
	same := true
	for i := range outA.Data {
		if outA.Data[i] != outC.Data[i] {
			same = false
		}
	}
	if !same {
		t.Fatal("repacked QuantModel does not reproduce pre-perturbation logits")
	}
	diff := false
	for i := range outA.Data {
		if outA.Data[i] != outB.Data[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("perturbed weights produced identical quantized logits")
	}
}
