// Package simcompute models worker compute capacity over virtual time. It
// substitutes for the paper's physical heterogeneity (different CPU core
// counts, p2.xlarge vs p2.8xlarge GPU instances) and its dynamism emulation
// (the Linux `stress` tool): capacity is a piecewise-constant schedule, and
// an iteration cost model converts (batch size, capacity) into virtual
// seconds.
package simcompute

import (
	"fmt"

	"dlion/internal/stats"
)

// Schedule is a piecewise-constant function of time. Steps must be sorted
// by time; the value before the first step is the first step's value.
type Schedule struct {
	Times  []float64 // step start times, ascending; Times[0] is typically 0
	Values []float64 // value from Times[i] until Times[i+1]
}

// Constant returns a schedule that always yields v.
func Constant(v float64) Schedule {
	return Schedule{Times: []float64{0}, Values: []float64{v}}
}

// Steps builds a schedule from (time, value) pairs. It panics on malformed
// input (odd length, unsorted times, empty) since schedules are authored in
// code as experiment configs.
func Steps(pairs ...float64) Schedule {
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		panic("simcompute: Steps needs non-empty (time, value) pairs")
	}
	s := Schedule{}
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 && pairs[i] <= s.Times[len(s.Times)-1] {
			panic(fmt.Sprintf("simcompute: step times not ascending at %v", pairs[i]))
		}
		s.Times = append(s.Times, pairs[i])
		s.Values = append(s.Values, pairs[i+1])
	}
	return s
}

// At returns the schedule's value at time t.
func (s Schedule) At(t float64) float64 {
	if len(s.Times) == 0 {
		return 0
	}
	v := s.Values[0]
	for i, st := range s.Times {
		if t < st {
			break
		}
		v = s.Values[i]
	}
	return v
}

// NextChange returns the first step time strictly after t, or ok=false if
// the schedule is constant afterwards. Simulations use it to re-profile
// when capacity shifts.
func (s Schedule) NextChange(t float64) (float64, bool) {
	for _, st := range s.Times {
		if st > t {
			return st, true
		}
	}
	return 0, false
}

// CostModel converts a batch into iteration seconds:
//
//	seconds = Overhead + PerSample·batch/capacity
//
// Overhead covers the fixed per-iteration work (framework dispatch, model
// update); PerSample is the cost of one training sample on one capacity
// unit (a CPU core, or 1/30th of a GPU — see GPUUnit).
type CostModel struct {
	Overhead  float64
	PerSample float64
	// Jitter, if > 0, multiplies each measurement by (1 ± Jitter·|N(0,1)|
	// clamped), modeling OS noise. Profiling still recovers the trend via
	// regression, exactly as the real LBS controller must.
	Jitter float64
}

// GPUUnit is the capacity of one GPU expressed in CPU-core units. Chosen so
// the simulated GPU cluster reproduces the paper's regime where
// computation far outpaces the network: p2.xlarge ≈ 30 cores,
// p2.8xlarge ≈ 240 cores.
const GPUUnit = 30.0

// Compute is one worker's compute resource: a capacity schedule plus a cost
// model and an optional noise stream.
type Compute struct {
	Capacity Schedule
	Cost     CostModel
	rng      *stats.RNG
}

// New builds a Compute with the given schedule and cost model. seed feeds
// the jitter stream; workers should use distinct seeds.
func New(capacity Schedule, cost CostModel, seed uint64) *Compute {
	return &Compute{Capacity: capacity, Cost: cost, rng: stats.NewRNG(seed)}
}

// IterTime returns the virtual seconds one training iteration over batch
// samples takes at time t. batch must be >= 1; zero capacity is treated as
// a minimal 0.01 units so a fully-stressed worker crawls instead of
// dividing by zero.
func (c *Compute) IterTime(batch int, t float64) float64 {
	if batch < 1 {
		panic("simcompute: IterTime with batch < 1")
	}
	cap := c.Capacity.At(t)
	if cap <= 0 {
		cap = 0.01
	}
	base := c.Cost.Overhead + c.Cost.PerSample*float64(batch)/cap
	if c.Cost.Jitter > 0 {
		n := c.rng.NormFloat64() * c.Cost.Jitter
		if n > 0.5 {
			n = 0.5
		}
		if n < -0.5 {
			n = -0.5
		}
		base *= 1 + n
	}
	return base
}

// Profile measures iteration time at each batch size in batches (at time
// t), returning parallel slices suitable for linear regression. This is
// the measurement the LBS controller performs instead of reading hardware
// specs (§3.2).
func (c *Compute) Profile(batches []int, t float64) (x, y []float64) {
	x = make([]float64, len(batches))
	y = make([]float64, len(batches))
	for i, b := range batches {
		x[i] = float64(b)
		y[i] = c.IterTime(b, t)
	}
	return x, y
}
