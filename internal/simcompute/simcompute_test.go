package simcompute

import (
	"math"
	"testing"
	"testing/quick"

	"dlion/internal/stats"
)

func TestConstantSchedule(t *testing.T) {
	s := Constant(24)
	for _, tt := range []float64{0, 1, 1e9} {
		if s.At(tt) != 24 {
			t.Fatalf("At(%v) = %v", tt, s.At(tt))
		}
	}
}

func TestStepsSchedule(t *testing.T) {
	s := Steps(0, 24, 100, 12, 300, 4)
	cases := []struct{ t, want float64 }{
		{-5, 24}, {0, 24}, {99.9, 24}, {100, 12}, {299, 12}, {300, 4}, {1e6, 4},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Fatalf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestStepsPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { Steps() },
		"odd":      func() { Steps(0, 1, 2) },
		"unsorted": func() { Steps(0, 1, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNextChange(t *testing.T) {
	s := Steps(0, 1, 50, 2, 80, 3)
	if nt, ok := s.NextChange(0); !ok || nt != 50 {
		t.Fatalf("NextChange(0) = %v,%v", nt, ok)
	}
	if nt, ok := s.NextChange(50); !ok || nt != 80 {
		t.Fatalf("NextChange(50) = %v,%v", nt, ok)
	}
	if _, ok := s.NextChange(80); ok {
		t.Fatal("no change after last step")
	}
}

func TestIterTimeScalesWithCapacity(t *testing.T) {
	cost := CostModel{Overhead: 0.01, PerSample: 0.002}
	fast := New(Constant(24), cost, 1)
	slow := New(Constant(4), cost, 2)
	tf, ts := fast.IterTime(96, 0), slow.IterTime(96, 0)
	if ts <= tf {
		t.Fatalf("slow worker should be slower: %v vs %v", ts, tf)
	}
	// ratio of the variable part should be exactly 6x
	wantRatio := 6.0
	gotRatio := (ts - cost.Overhead) / (tf - cost.Overhead)
	if math.Abs(gotRatio-wantRatio) > 1e-9 {
		t.Fatalf("ratio %v, want %v", gotRatio, wantRatio)
	}
}

func TestIterTimeLinearInBatch(t *testing.T) {
	c := New(Constant(10), CostModel{Overhead: 0.05, PerSample: 0.001}, 1)
	t32 := c.IterTime(32, 0)
	t64 := c.IterTime(64, 0)
	if math.Abs((t64-0.05)-2*(t32-0.05)) > 1e-12 {
		t.Fatalf("not linear: %v %v", t32, t64)
	}
}

func TestIterTimeZeroCapacity(t *testing.T) {
	c := New(Constant(0), CostModel{PerSample: 0.001}, 1)
	got := c.IterTime(10, 0)
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("zero capacity must not blow up: %v", got)
	}
	if got <= 0 {
		t.Fatalf("time must be positive: %v", got)
	}
}

func TestIterTimeBadBatchPanics(t *testing.T) {
	c := New(Constant(1), CostModel{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	c.IterTime(0, 0)
}

func TestIterTimeDynamicSchedule(t *testing.T) {
	c := New(Steps(0, 24, 100, 6), CostModel{PerSample: 0.001}, 1)
	early := c.IterTime(240, 50)
	late := c.IterTime(240, 150)
	if math.Abs(late/early-4) > 1e-9 {
		t.Fatalf("capacity drop not reflected: %v vs %v", early, late)
	}
}

func TestJitterPreservesTrend(t *testing.T) {
	c := New(Constant(12), CostModel{Overhead: 0.02, PerSample: 0.001, Jitter: 0.05}, 3)
	x, y := c.Profile([]int{16, 32, 64, 128, 256, 512}, 0)
	fit, err := stats.LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := 0.001 / 12
	if math.Abs(fit.Slope-wantSlope)/wantSlope > 0.3 {
		t.Fatalf("regression slope %v too far from %v", fit.Slope, wantSlope)
	}
}

func TestProfileShapes(t *testing.T) {
	c := New(Constant(2), CostModel{PerSample: 0.01}, 1)
	x, y := c.Profile([]int{8, 16}, 0)
	if len(x) != 2 || len(y) != 2 || x[1] != 16 {
		t.Fatalf("profile %v %v", x, y)
	}
}

func TestIterTimePositiveProperty(t *testing.T) {
	f := func(seed uint64, batch uint8) bool {
		c := New(Constant(float64(1+seed%32)), CostModel{Overhead: 0.01, PerSample: 0.001, Jitter: 0.2}, seed)
		return c.IterTime(int(batch)+1, 0) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleBoundaries pins the exact semantics at step edges: a step
// takes effect at its own time (closed on the left), the value before the
// first step is the first value, and NextChange is strictly-after.
func TestScheduleBoundaries(t *testing.T) {
	s := Steps(1, 10, 2, 0, 3, 20)
	cases := []struct{ t, want float64 }{
		{0, 10},   // before the first step: first value extends backwards
		{0.999, 10},
		{1, 10},
		{1.999, 10},
		{2, 0},    // zero-capacity window opens exactly at its step time
		{2.999, 0},
		{3, 20},   // and closes exactly at the next
		{100, 20}, // constant after the last step
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Fatalf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// NextChange at a step time skips to the following one.
	if nc, ok := s.NextChange(2); !ok || nc != 3 {
		t.Fatalf("NextChange(2) = %v,%v, want 3,true", nc, ok)
	}
	if _, ok := s.NextChange(3); ok {
		t.Fatal("NextChange past the last step must report no change")
	}
	if nc, ok := s.NextChange(-5); !ok || nc != 1 {
		t.Fatalf("NextChange(-5) = %v,%v, want 1,true", nc, ok)
	}
}

// TestIterTimeZeroCapacityWindow drives IterTime through a schedule that
// drops to zero mid-run: inside the window the 0.01-unit floor applies (a
// stressed worker crawls, it never divides by zero or goes negative), and
// capacity recovers to the schedule on the other side.
func TestIterTimeZeroCapacityWindow(t *testing.T) {
	c := New(Steps(0, 12, 10, 0, 20, 12), CostModel{Overhead: 0.05, PerSample: 0.5}, 1)
	before := c.IterTime(8, 5)
	inside := c.IterTime(8, 15)
	after := c.IterTime(8, 25)
	if before != after {
		t.Fatalf("capacity did not recover: %v vs %v", before, after)
	}
	wantInside := 0.05 + 0.5*8/0.01
	if inside != wantInside {
		t.Fatalf("zero-capacity IterTime %v, want floored %v", inside, wantInside)
	}
	if inside <= before {
		t.Fatal("zero-capacity window must be slower than nominal capacity")
	}
	// The boundaries belong to the new value on the left edge.
	if got := c.IterTime(8, 10); got != wantInside {
		t.Fatalf("IterTime at window-open boundary %v, want %v", got, wantInside)
	}
	if got := c.IterTime(8, 20); got != before {
		t.Fatalf("IterTime at window-close boundary %v, want %v", got, before)
	}
}

// TestSingleTickSchedule exercises a window so short only an exact
// boundary hit sees it — a regression guard for schedule scans that
// accumulate or interpolate instead of selecting the active step.
func TestSingleTickSchedule(t *testing.T) {
	s := Steps(0, 5, 10, 50, 10.001, 5)
	if got := s.At(10); got != 50 {
		t.Fatalf("At(10) = %v, want the single-tick value 50", got)
	}
	if got := s.At(10.0005); got != 50 {
		t.Fatalf("At(10.0005) = %v, want 50", got)
	}
	if got := s.At(10.001); got != 5 {
		t.Fatalf("At(10.001) = %v, want 5", got)
	}
	// Chained NextChange walks every tick exactly once.
	times := []float64{}
	t0 := -1.0
	for {
		nc, ok := s.NextChange(t0)
		if !ok {
			break
		}
		times = append(times, nc)
		t0 = nc
	}
	want := []float64{0, 10, 10.001}
	if len(times) != len(want) {
		t.Fatalf("NextChange walk %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("NextChange walk %v, want %v", times, want)
		}
	}
}
