package simcompute

import (
	"math"
	"testing"
	"testing/quick"

	"dlion/internal/stats"
)

func TestConstantSchedule(t *testing.T) {
	s := Constant(24)
	for _, tt := range []float64{0, 1, 1e9} {
		if s.At(tt) != 24 {
			t.Fatalf("At(%v) = %v", tt, s.At(tt))
		}
	}
}

func TestStepsSchedule(t *testing.T) {
	s := Steps(0, 24, 100, 12, 300, 4)
	cases := []struct{ t, want float64 }{
		{-5, 24}, {0, 24}, {99.9, 24}, {100, 12}, {299, 12}, {300, 4}, {1e6, 4},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Fatalf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestStepsPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { Steps() },
		"odd":      func() { Steps(0, 1, 2) },
		"unsorted": func() { Steps(0, 1, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNextChange(t *testing.T) {
	s := Steps(0, 1, 50, 2, 80, 3)
	if nt, ok := s.NextChange(0); !ok || nt != 50 {
		t.Fatalf("NextChange(0) = %v,%v", nt, ok)
	}
	if nt, ok := s.NextChange(50); !ok || nt != 80 {
		t.Fatalf("NextChange(50) = %v,%v", nt, ok)
	}
	if _, ok := s.NextChange(80); ok {
		t.Fatal("no change after last step")
	}
}

func TestIterTimeScalesWithCapacity(t *testing.T) {
	cost := CostModel{Overhead: 0.01, PerSample: 0.002}
	fast := New(Constant(24), cost, 1)
	slow := New(Constant(4), cost, 2)
	tf, ts := fast.IterTime(96, 0), slow.IterTime(96, 0)
	if ts <= tf {
		t.Fatalf("slow worker should be slower: %v vs %v", ts, tf)
	}
	// ratio of the variable part should be exactly 6x
	wantRatio := 6.0
	gotRatio := (ts - cost.Overhead) / (tf - cost.Overhead)
	if math.Abs(gotRatio-wantRatio) > 1e-9 {
		t.Fatalf("ratio %v, want %v", gotRatio, wantRatio)
	}
}

func TestIterTimeLinearInBatch(t *testing.T) {
	c := New(Constant(10), CostModel{Overhead: 0.05, PerSample: 0.001}, 1)
	t32 := c.IterTime(32, 0)
	t64 := c.IterTime(64, 0)
	if math.Abs((t64-0.05)-2*(t32-0.05)) > 1e-12 {
		t.Fatalf("not linear: %v %v", t32, t64)
	}
}

func TestIterTimeZeroCapacity(t *testing.T) {
	c := New(Constant(0), CostModel{PerSample: 0.001}, 1)
	got := c.IterTime(10, 0)
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("zero capacity must not blow up: %v", got)
	}
	if got <= 0 {
		t.Fatalf("time must be positive: %v", got)
	}
}

func TestIterTimeBadBatchPanics(t *testing.T) {
	c := New(Constant(1), CostModel{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	c.IterTime(0, 0)
}

func TestIterTimeDynamicSchedule(t *testing.T) {
	c := New(Steps(0, 24, 100, 6), CostModel{PerSample: 0.001}, 1)
	early := c.IterTime(240, 50)
	late := c.IterTime(240, 150)
	if math.Abs(late/early-4) > 1e-9 {
		t.Fatalf("capacity drop not reflected: %v vs %v", early, late)
	}
}

func TestJitterPreservesTrend(t *testing.T) {
	c := New(Constant(12), CostModel{Overhead: 0.02, PerSample: 0.001, Jitter: 0.05}, 3)
	x, y := c.Profile([]int{16, 32, 64, 128, 256, 512}, 0)
	fit, err := stats.LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := 0.001 / 12
	if math.Abs(fit.Slope-wantSlope)/wantSlope > 0.3 {
		t.Fatalf("regression slope %v too far from %v", fit.Slope, wantSlope)
	}
}

func TestProfileShapes(t *testing.T) {
	c := New(Constant(2), CostModel{PerSample: 0.01}, 1)
	x, y := c.Profile([]int{8, 16}, 0)
	if len(x) != 2 || len(y) != 2 || x[1] != 16 {
		t.Fatalf("profile %v %v", x, y)
	}
}

func TestIterTimePositiveProperty(t *testing.T) {
	f := func(seed uint64, batch uint8) bool {
		c := New(Constant(float64(1+seed%32)), CostModel{Overhead: 0.01, PerSample: 0.001, Jitter: 0.2}, seed)
		return c.IterTime(int(batch)+1, 0) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
