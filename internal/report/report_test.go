package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.23456)
	tb.AddRow("b", 42)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Fatalf("float not formatted:\n%s", out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("int row missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// columns align: header and rows share the first column width
	if !strings.HasPrefix(lines[3], "alpha") || !strings.HasPrefix(lines[4], "b    ") {
		t.Fatalf("alignment broken:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(1)
	if strings.Contains(tb.String(), "==") {
		t.Fatal("untitled table must omit the title banner")
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("curve", "t", "acc")
	s := f.AddSeries("dlion")
	s.Add(0, 0.1)
	s.Add(10, 0.9)
	out := f.String()
	for _, want := range []string{"== curve ==", "x = t, y = acc", "-- dlion --", "0.9000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input")
	}
	out := Sparkline([]float64{0, 0.5, 1})
	runes := []rune(out)
	if len(runes) != 3 {
		t.Fatalf("length %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("range mapping wrong: %q", out)
	}
	// flat input must not divide by zero
	flat := []rune(Sparkline([]float64{0.5, 0.5}))
	if len(flat) != 2 || flat[0] != flat[1] {
		t.Fatalf("flat sparkline: %q", string(flat))
	}
}
