// Package report renders the experiment harness's tables and series as
// fixed-width text, in the same rows/columns the paper's tables and figure
// axes use.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named (x, y) sequence, the text analog of one curve in a
// figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries registers and returns a new series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as one table with an x column per series pair,
// assuming aligned x values where possible.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "x = %s, y = %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "-- %s --\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "  %10.2f  %10.4f\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// Sparkline renders ys as a compact unicode trend line (for quick terminal
// inspection of accuracy curves).
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
