// Package stats provides the small statistical toolkit DLion needs: a
// deterministic RNG (so simulations are reproducible run-to-run), simple
// linear regression (the LBS controller fits iteration time against batch
// size to estimate relative compute power), and summary statistics with
// confidence intervals (the paper reports 95% CIs over three runs).
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift128+). It is not safe for concurrent use; give each worker its
// own stream via Split.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed. Any seed is acceptable,
// including 0.
func NewRNG(seed uint64) *RNG {
	// splitmix64 to spread the seed across both words.
	r := &RNG{}
	z := seed
	for i := 0; i < 2; i++ {
		z += 0x9e3779b97f4a7c15
		x := z
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		if i == 0 {
			r.s0 = x
		} else {
			r.s1 = x
		}
	}
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 1
	}
	return r
}

// Split derives an independent generator keyed by id, leaving r unchanged.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.s0 ^ (id+1)*0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Float64())
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
