package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams too similar: %d/64 equal", same)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(7)
	c1, c2 := r.Split(0), r.Split(1)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split streams should differ")
	}
	// Split must not disturb parent.
	p1 := NewRNG(7)
	p1.Split(0)
	p2 := NewRNG(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split mutated parent state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnUniformish(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d badly skewed: %d", i, c)
		}
	}
}

func TestIntnZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearRegressionExact(t *testing.T) {
	// y = 3 + 2x exactly
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 7, 9, 11, 13}
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-3) > 1e-9 || math.Abs(fit.Slope-2) > 1e-9 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	r := NewRNG(9)
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 1.5+0.25*xi+0.01*r.NormFloat64())
	}
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.25) > 0.01 {
		t.Fatalf("slope = %v, want ≈0.25", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v, want ≈1", fit.R2)
	}
}

func TestLinearRegressionDegenerate(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{2}); err != ErrDegenerate {
		t.Fatalf("one point: err = %v", err)
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err != ErrDegenerate {
		t.Fatalf("zero x-variance: err = %v", err)
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Median-4.5) > 1e-9 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary should be zero")
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.CI95 != 0 || s.Median != 3 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestCI95ThreeRuns(t *testing.T) {
	// Paper averages 3 runs; CI should use t(df=2)=4.303.
	s := Summarize([]float64{10, 12, 14})
	want := 4.303 * s.Std / math.Sqrt(3)
	if math.Abs(s.CI95-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", s.CI95, want)
	}
}

func TestMeanStdHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Mean([]float64{1, 3}) != 2 {
		t.Fatal("Mean")
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev single")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize reordered caller's slice")
	}
}
