package stats

import (
	"errors"
	"math"
	"sort"
)

// LinearFit holds the result of an ordinary-least-squares fit y ≈ a + b·x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// ErrDegenerate is returned by LinearRegression when the inputs cannot
// determine a line (fewer than two points, or zero variance in x).
var ErrDegenerate = errors.New("stats: degenerate regression input")

// LinearRegression fits y ≈ a + b·x by least squares. The LBS controller
// uses this with x = local batch size, y = iteration seconds: the slope is
// the per-sample cost, whose reciprocal is the worker's relative compute
// power (samples per second).
func LinearRegression(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, errors.New("stats: x and y lengths differ")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinearFit{}, ErrDegenerate
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrDegenerate
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := syy - b*sxy
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Intercept: a, Slope: b, R2: r2}, nil
}

// Summary holds the summary statistics used by the evaluation harness.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	CI95   float64 // half-width of the 95% confidence interval for the mean
	Median float64
}

// Summarize computes summary statistics for xs. An empty slice yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, v := range xs {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, v := range xs {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
		s.CI95 = tCritical95(len(xs)-1) * s.Std / math.Sqrt(float64(len(xs)))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	m := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[m]
	} else {
		s.Median = (sorted[m-1] + sorted[m]) / 2
	}
	return s
}

// tCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom. Values for small df are tabulated (the harness
// averages 3 runs, df=2, just like the paper); large df falls back to the
// normal quantile 1.96.
func tCritical95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	return Summarize(xs).Std
}
