// Package fault makes failure a first-class, injectable condition. DLion
// targets micro-clouds — small, geo-distributed clusters whose nodes and
// WAN links fail far more often than a datacenter's — so the harnesses must
// be able to rehearse those failures deterministically. A Schedule declares
// what goes wrong and when (worker crashes with optional restart, link
// partitions, packet loss, extra delay, message corruption, broker
// outages); an Injector compiled from it answers per-message verdicts for
// both the discrete-event simulator (internal/cluster) and the realtime
// harness (internal/realtime).
package fault

import (
	"fmt"

	"dlion/internal/stats"
)

// Any is a wildcard endpoint: a partition/loss/delay rule with From or To
// set to Any matches every worker on that side.
const Any = -1

// Window is a time interval [Start, End) in seconds on whichever clock the
// consumer runs (virtual seconds in the simulator, seconds since node start
// in real mode). End = 0 means open-ended.
type Window struct {
	Start, End float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool {
	return t >= w.Start && (w.End <= 0 || t < w.End)
}

func (w Window) validate(kind string) error {
	if w.Start < 0 {
		return fmt.Errorf("fault: %s window start %v < 0", kind, w.Start)
	}
	if w.End != 0 && w.End <= w.Start {
		return fmt.Errorf("fault: %s window [%v, %v) is empty", kind, w.Start, w.End)
	}
	return nil
}

// Crash kills Worker at time At. RestartAfter > 0 brings it back that many
// seconds later (restored from its latest checkpoint by the harness);
// RestartAfter <= 0 means the worker never returns.
type Crash struct {
	Worker       int
	At           float64
	RestartAfter float64
}

// Partition severs the directed link From->To (wildcards allowed) during
// the window; Bidirectional also severs To->From. Messages on a partitioned
// link are dropped before they consume any egress bandwidth.
type Partition struct {
	From, To      int
	Bidirectional bool
	Window
}

func (p Partition) matches(from, to int) bool {
	if matchLink(p.From, p.To, from, to) {
		return true
	}
	return p.Bidirectional && matchLink(p.From, p.To, to, from)
}

// Loss drops each message on the matching link with probability Rate
// during the window. Unlike a partition, a lost message still occupied the
// sender's egress link — it died in the WAN, not at the NIC.
type Loss struct {
	From, To int
	Rate     float64
	Window
}

// Delay adds Extra seconds to the delivery of each message on the matching
// link during the window (a congested or rerouted WAN path).
type Delay struct {
	From, To int
	Extra    float64
	Window
}

// Corrupt flips each message on the matching link to garbage with
// probability Rate during the window. Receivers are assumed to detect the
// damage (framing/integrity check) and discard the message, so a corrupted
// message behaves like a loss that still crossed the wire.
type Corrupt struct {
	From, To int
	Rate     float64
	Window
}

// Join adds Worker to the federation at time At via the membership
// admission handshake. Sponsor is the member the joiner HELLOs; Sponsor < 0
// lets the harness pick a live member at join time. Workers with a Join
// entry stay dormant (not started, not counted in founding rosters) until
// At.
type Join struct {
	Worker  int
	At      float64
	Sponsor int
}

// Leave makes Worker depart gracefully at time At: drain in-flight sends,
// broadcast a membership tombstone, and go silent. Unlike a Crash, peers
// renormalize immediately instead of waiting for a liveness expiry.
//
// AfterIters > 0 selects the step-exact trigger instead: the worker leaves
// after completing exactly that many of its own iterations (the core's
// Membership.LeaveAfterIters), independent of wall or virtual time. The
// equivalence harness uses this form — a time-scheduled leave lands on a
// substrate-dependent iteration, an iteration-scheduled one does not. The
// two triggers are mutually exclusive: with AfterIters set, At must be 0.
type Leave struct {
	Worker     int
	At         float64
	AfterIters int64
}

// BrokerOutage marks the message broker as down during the window. The
// simulator has no broker; the realtime harness uses it to schedule broker
// kill/restart in chaos tests, and ReconnectingClient is what survives it.
type BrokerOutage struct {
	Window
}

// Schedule is a declarative description of everything that goes wrong in
// one run. The zero value (and a nil *Schedule) injects no faults.
type Schedule struct {
	Crashes    []Crash
	Joins      []Join
	Leaves     []Leave
	Partitions []Partition
	Loss       []Loss
	Delays     []Delay
	Corruption []Corrupt
	Outages    []BrokerOutage

	// CheckpointPeriod is how often (seconds) the harness snapshots each
	// worker's weights so a crashed worker can restart from a recent state
	// rather than from scratch. 0 disables periodic checkpoints; crashed
	// workers then restart from a fresh model and rely on the rejoin
	// re-sync to catch up.
	CheckpointPeriod float64

	// Seed drives the injector's RNG (loss/corruption sampling). Runs with
	// the same schedule and seed make identical drop decisions.
	Seed uint64
}

// Validate checks the schedule against a cluster of n workers. n <= 0
// skips endpoint range checks (real mode may not know the cluster size).
func (s *Schedule) Validate(n int) error {
	if s == nil {
		return nil
	}
	checkEndpoint := func(kind string, id int) error {
		if id == Any {
			return nil
		}
		if id < 0 || (n > 0 && id >= n) {
			return fmt.Errorf("fault: %s endpoint %d out of range (n=%d)", kind, id, n)
		}
		return nil
	}
	for _, c := range s.Crashes {
		if c.Worker < 0 || (n > 0 && c.Worker >= n) {
			return fmt.Errorf("fault: crash worker %d out of range (n=%d)", c.Worker, n)
		}
		if c.At < 0 {
			return fmt.Errorf("fault: crash of worker %d at %v < 0", c.Worker, c.At)
		}
	}
	joiners := map[int]bool{}
	for _, j := range s.Joins {
		if j.Worker < 0 || (n > 0 && j.Worker >= n) {
			return fmt.Errorf("fault: join worker %d out of range (n=%d)", j.Worker, n)
		}
		if j.At < 0 {
			return fmt.Errorf("fault: join of worker %d at %v < 0", j.Worker, j.At)
		}
		if n > 0 && j.Sponsor >= n {
			return fmt.Errorf("fault: join sponsor %d out of range (n=%d)", j.Sponsor, n)
		}
		if j.Sponsor == j.Worker {
			return fmt.Errorf("fault: worker %d sponsoring its own join", j.Worker)
		}
		if joiners[j.Worker] {
			return fmt.Errorf("fault: worker %d joins twice", j.Worker)
		}
		joiners[j.Worker] = true
	}
	for _, l := range s.Leaves {
		if l.Worker < 0 || (n > 0 && l.Worker >= n) {
			return fmt.Errorf("fault: leave worker %d out of range (n=%d)", l.Worker, n)
		}
		if l.At < 0 {
			return fmt.Errorf("fault: leave of worker %d at %v < 0", l.Worker, l.At)
		}
		if l.AfterIters < 0 {
			return fmt.Errorf("fault: leave of worker %d after %d iters < 0", l.Worker, l.AfterIters)
		}
		if l.AfterIters > 0 && l.At != 0 {
			return fmt.Errorf("fault: leave of worker %d sets both At and AfterIters", l.Worker)
		}
	}
	for _, p := range s.Partitions {
		if err := checkEndpoint("partition", p.From); err != nil {
			return err
		}
		if err := checkEndpoint("partition", p.To); err != nil {
			return err
		}
		if err := p.Window.validate("partition"); err != nil {
			return err
		}
	}
	for _, l := range s.Loss {
		if err := checkEndpoint("loss", l.From); err != nil {
			return err
		}
		if err := checkEndpoint("loss", l.To); err != nil {
			return err
		}
		if l.Rate < 0 || l.Rate > 1 {
			return fmt.Errorf("fault: loss rate %v outside [0,1]", l.Rate)
		}
		if err := l.Window.validate("loss"); err != nil {
			return err
		}
	}
	for _, d := range s.Delays {
		if err := checkEndpoint("delay", d.From); err != nil {
			return err
		}
		if err := checkEndpoint("delay", d.To); err != nil {
			return err
		}
		if d.Extra < 0 {
			return fmt.Errorf("fault: negative delay %v", d.Extra)
		}
		if err := d.Window.validate("delay"); err != nil {
			return err
		}
	}
	for _, c := range s.Corruption {
		if err := checkEndpoint("corruption", c.From); err != nil {
			return err
		}
		if err := checkEndpoint("corruption", c.To); err != nil {
			return err
		}
		if c.Rate < 0 || c.Rate > 1 {
			return fmt.Errorf("fault: corruption rate %v outside [0,1]", c.Rate)
		}
		if err := c.Window.validate("corruption"); err != nil {
			return err
		}
	}
	for _, o := range s.Outages {
		if err := o.Window.validate("outage"); err != nil {
			return err
		}
	}
	if s.CheckpointPeriod < 0 {
		return fmt.Errorf("fault: checkpoint period %v < 0", s.CheckpointPeriod)
	}
	return nil
}

func matchLink(ruleFrom, ruleTo, from, to int) bool {
	return (ruleFrom == Any || ruleFrom == from) && (ruleTo == Any || ruleTo == to)
}

// Verdict is the injector's decision for one message.
type Verdict struct {
	// Deliver is false when the message must be dropped.
	Deliver bool
	// Partitioned distinguishes a partition drop (nothing leaves the NIC)
	// from loss/corruption (the bytes crossed the sender's egress and died
	// later). Harnesses charge egress time accordingly.
	Partitioned bool
	// Corrupted marks a drop caused by corruption (delivered bytes failed
	// the receiver's integrity check).
	Corrupted bool
	// ExtraDelay is added to the delivery latency of a delivered message.
	ExtraDelay float64
}

// Stats counts what the injector (and its harness) did to the run.
type Stats struct {
	Partitioned int64 // messages dropped on partitioned links
	Lost        int64 // messages dropped by random loss
	Corrupted   int64 // messages discarded after corruption
	Delayed     int64 // messages delivered with extra delay
	DeadDrops   int64 // messages dropped because the receiver was down
	Crashes     int64 // worker crashes executed
	Restarts    int64 // worker restarts executed
	Joins       int64 // membership joins initiated
	Leaves      int64 // graceful leaves executed
}

// Injector answers per-message fault verdicts for a schedule. It is not
// safe for concurrent use; the simulator calls it from the event loop, and
// realtime consumers must serialize access themselves.
type Injector struct {
	s     *Schedule
	rng   *stats.RNG
	stats Stats
}

// NewInjector compiles a schedule. A nil schedule yields a pass-through
// injector that delivers everything.
func NewInjector(s *Schedule) *Injector {
	seed := uint64(0)
	if s != nil {
		seed = s.Seed
	}
	return &Injector{s: s, rng: stats.NewRNG(seed ^ 0xfa017)}
}

// Message decides the fate of one message on link from->to at time t and
// updates the counters accordingly.
func (in *Injector) Message(from, to int, t float64) Verdict {
	if in.s == nil {
		return Verdict{Deliver: true}
	}
	for _, p := range in.s.Partitions {
		if p.matches(from, to) && p.Contains(t) {
			in.stats.Partitioned++
			return Verdict{Partitioned: true}
		}
	}
	for _, l := range in.s.Loss {
		if matchLink(l.From, l.To, from, to) && l.Contains(t) && in.rng.Float64() < l.Rate {
			in.stats.Lost++
			return Verdict{}
		}
	}
	for _, c := range in.s.Corruption {
		if matchLink(c.From, c.To, from, to) && c.Contains(t) && in.rng.Float64() < c.Rate {
			in.stats.Corrupted++
			return Verdict{Corrupted: true}
		}
	}
	v := Verdict{Deliver: true}
	for _, d := range in.s.Delays {
		if matchLink(d.From, d.To, from, to) && d.Contains(t) {
			v.ExtraDelay += d.Extra
		}
	}
	if v.ExtraDelay > 0 {
		in.stats.Delayed++
	}
	return v
}

// DeadDrop records a message dropped because its receiver was crashed.
func (in *Injector) DeadDrop() { in.stats.DeadDrops++ }

// CrashExecuted records a worker kill performed by the harness.
func (in *Injector) CrashExecuted() { in.stats.Crashes++ }

// RestartExecuted records a worker restart performed by the harness.
func (in *Injector) RestartExecuted() { in.stats.Restarts++ }

// JoinExecuted records a membership join initiated by the harness.
func (in *Injector) JoinExecuted() { in.stats.Joins++ }

// LeaveExecuted records a graceful leave executed by the harness.
func (in *Injector) LeaveExecuted() { in.stats.Leaves++ }

// BrokerDown reports whether a broker outage window covers t.
func (in *Injector) BrokerDown(t float64) bool {
	if in.s == nil {
		return false
	}
	for _, o := range in.s.Outages {
		if o.Contains(t) {
			return true
		}
	}
	return false
}

// Crashes returns the schedule's crash list (nil for a nil schedule).
func (in *Injector) Crashes() []Crash {
	if in.s == nil {
		return nil
	}
	return in.s.Crashes
}

// Joins returns the schedule's join list (nil for a nil schedule).
func (in *Injector) Joins() []Join {
	if in.s == nil {
		return nil
	}
	return in.s.Joins
}

// Leaves returns the schedule's leave list (nil for a nil schedule).
func (in *Injector) Leaves() []Leave {
	if in.s == nil {
		return nil
	}
	return in.s.Leaves
}

// CheckpointPeriod returns the schedule's checkpoint period (0 for none).
func (in *Injector) CheckpointPeriod() float64 {
	if in.s == nil {
		return 0
	}
	return in.s.CheckpointPeriod
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats { return in.stats }
