package fault

import "testing"

func TestWindowContains(t *testing.T) {
	cases := []struct {
		w    Window
		t    float64
		want bool
	}{
		{Window{10, 20}, 9.99, false},
		{Window{10, 20}, 10, true},
		{Window{10, 20}, 19.99, true},
		{Window{10, 20}, 20, false},
		{Window{10, 0}, 1e9, true}, // open-ended
		{Window{10, 0}, 5, false},
		{Window{0, 0}, 0, true}, // whole run
	}
	for _, c := range cases {
		if got := c.w.Contains(c.t); got != c.want {
			t.Errorf("window %+v contains(%v) = %v, want %v", c.w, c.t, got, c.want)
		}
	}
}

func TestNilScheduleDeliversEverything(t *testing.T) {
	in := NewInjector(nil)
	for i := 0; i < 100; i++ {
		v := in.Message(0, 1, float64(i))
		if !v.Deliver || v.ExtraDelay != 0 {
			t.Fatalf("nil schedule produced %+v", v)
		}
	}
	if in.BrokerDown(5) {
		t.Fatal("nil schedule has no outages")
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("counters moved: %+v", s)
	}
}

func TestPartitionWindowAndWildcard(t *testing.T) {
	in := NewInjector(&Schedule{Partitions: []Partition{
		{From: 0, To: 1, Window: Window{Start: 10, End: 20}},
		{From: 2, To: Any, Window: Window{Start: 0, End: 5}},
	}})
	if v := in.Message(0, 1, 15); v.Deliver || !v.Partitioned {
		t.Fatalf("0->1 at 15 should be partitioned: %+v", v)
	}
	if v := in.Message(0, 1, 25); !v.Deliver {
		t.Fatal("0->1 at 25 should be healed")
	}
	if v := in.Message(1, 0, 15); !v.Deliver {
		t.Fatal("unidirectional partition must not sever the reverse link")
	}
	if v := in.Message(2, 7, 1); v.Deliver {
		t.Fatal("wildcard destination should match any peer")
	}
	if s := in.Stats(); s.Partitioned != 2 {
		t.Fatalf("partition counter %d, want 2", s.Partitioned)
	}
}

func TestBidirectionalPartition(t *testing.T) {
	in := NewInjector(&Schedule{Partitions: []Partition{
		{From: 0, To: 1, Bidirectional: true, Window: Window{Start: 0, End: 10}},
	}})
	if v := in.Message(1, 0, 5); v.Deliver {
		t.Fatal("bidirectional partition must sever the reverse link too")
	}
}

func TestLossRateSampling(t *testing.T) {
	in := NewInjector(&Schedule{Seed: 7, Loss: []Loss{
		{From: Any, To: Any, Rate: 0.5, Window: Window{}},
	}})
	dropped := 0
	const total = 2000
	for i := 0; i < total; i++ {
		if v := in.Message(0, 1, float64(i)); !v.Deliver {
			dropped++
		}
	}
	if dropped < total/3 || dropped > 2*total/3 {
		t.Fatalf("50%% loss dropped %d of %d", dropped, total)
	}
	if s := in.Stats(); s.Lost != int64(dropped) {
		t.Fatalf("loss counter %d, want %d", s.Lost, dropped)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	mk := func() *Injector {
		return NewInjector(&Schedule{Seed: 42, Loss: []Loss{
			{From: Any, To: Any, Rate: 0.3, Window: Window{}},
		}})
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		va, vb := a.Message(0, 1, float64(i)), b.Message(0, 1, float64(i))
		if va != vb {
			t.Fatalf("verdicts diverge at %d: %+v vs %+v", i, va, vb)
		}
	}
}

func TestCorruptionAndDelay(t *testing.T) {
	in := NewInjector(&Schedule{
		Corruption: []Corrupt{{From: 0, To: 1, Rate: 1, Window: Window{Start: 0, End: 10}}},
		Delays:     []Delay{{From: Any, To: Any, Extra: 0.5, Window: Window{Start: 0, End: 10}}},
	})
	if v := in.Message(0, 1, 5); v.Deliver || !v.Corrupted {
		t.Fatalf("rate-1 corruption should always fire: %+v", v)
	}
	if v := in.Message(1, 0, 5); !v.Deliver || v.ExtraDelay != 0.5 {
		t.Fatalf("delay rule should add 0.5s: %+v", v)
	}
	s := in.Stats()
	if s.Corrupted != 1 || s.Delayed != 1 {
		t.Fatalf("counters %+v", s)
	}
}

func TestBrokerOutage(t *testing.T) {
	in := NewInjector(&Schedule{Outages: []BrokerOutage{{Window{Start: 3, End: 6}}}})
	if in.BrokerDown(2) || !in.BrokerDown(4) || in.BrokerDown(6) {
		t.Fatal("outage window misapplied")
	}
}

func TestValidate(t *testing.T) {
	good := &Schedule{
		Crashes:          []Crash{{Worker: 1, At: 10, RestartAfter: 5}},
		Partitions:       []Partition{{From: 0, To: Any, Window: Window{Start: 1, End: 2}}},
		Loss:             []Loss{{From: Any, To: Any, Rate: 0.1}},
		Leaves:           []Leave{{Worker: 2, At: 20}, {Worker: 3, AfterIters: 6}},
		CheckpointPeriod: 5,
	}
	if err := good.Validate(4); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if err := (*Schedule)(nil).Validate(4); err != nil {
		t.Fatalf("nil schedule rejected: %v", err)
	}
	bad := []*Schedule{
		{Crashes: []Crash{{Worker: 9, At: 1}}},
		{Crashes: []Crash{{Worker: 0, At: -1}}},
		{Partitions: []Partition{{From: -2, To: 0}}},
		{Partitions: []Partition{{From: 0, To: 1, Window: Window{Start: 5, End: 5}}}},
		{Loss: []Loss{{From: 0, To: 1, Rate: 1.5}}},
		{Delays: []Delay{{From: 0, To: 1, Extra: -1}}},
		{Corruption: []Corrupt{{From: 0, To: 1, Rate: -0.1}}},
		{CheckpointPeriod: -1},
		{Leaves: []Leave{{Worker: 1, AfterIters: -3}}},
		{Leaves: []Leave{{Worker: 1, At: 5, AfterIters: 3}}}, // ambiguous trigger
	}
	for i, s := range bad {
		if err := s.Validate(4); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
	// real mode: unknown cluster size skips range checks but keeps the rest
	if err := (&Schedule{Crashes: []Crash{{Worker: 9, At: 1}}}).Validate(0); err != nil {
		t.Fatalf("n=0 should skip range checks: %v", err)
	}
	if err := (&Schedule{Loss: []Loss{{From: 0, To: 1, Rate: 2}}}).Validate(0); err == nil {
		t.Fatal("n=0 must still validate rates")
	}
}
