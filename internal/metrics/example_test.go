package metrics_test

import (
	"fmt"

	"dlion/internal/metrics"
)

// ExampleTimeline builds a short accuracy timeline and queries the §5.1.3
// performance metrics: accuracy at a time budget, time to a target
// accuracy, and the converged-accuracy plateau test.
func ExampleTimeline() {
	tl := metrics.Timeline{
		metrics.NewPoint(0, []float64{0.10, 0.10}, 2.3),
		metrics.NewPoint(60, []float64{0.48, 0.52}, 1.1),
		metrics.NewPoint(120, []float64{0.70, 0.72}, 0.6),
		metrics.NewPoint(180, []float64{0.71, 0.73}, 0.6),
	}
	fmt.Printf("final mean %.2f\n", tl.FinalMean())
	fmt.Printf("mean at t=90s %.2f\n", tl.MeanAt(90))
	tta, ok := tl.TimeToAccuracy(0.5)
	fmt.Printf("time to 50%%: %.0fs (reached=%v)\n", tta, ok)
	fmt.Printf("converged: %v\n", tl.Converged(1, 0.02))
	// Output:
	// final mean 0.72
	// mean at t=90s 0.50
	// time to 50%: 60s (reached=true)
	// converged: true
}

// ExampleTimeline_deviation shows the Figure 17 style across-worker
// deviation queries.
func ExampleTimeline_deviation() {
	tl := metrics.Timeline{
		metrics.NewPoint(0, []float64{0.1, 0.9, 0.5}, 0),
		metrics.NewPoint(60, []float64{0.3, 0.5, 0.7}, 0),
		metrics.NewPoint(120, []float64{0.6, 0.6, 0.6}, 0),
	}
	fmt.Printf("final deviation %.2f\n", tl.FinalDeviation())
	fmt.Printf("max deviation %.2f\n", tl.MaxDeviation())
	// Output:
	// final deviation 0.00
	// max deviation 0.20
}
