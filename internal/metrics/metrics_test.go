package metrics

import (
	"math"
	"testing"
)

func tl(points ...EvalPoint) Timeline { return Timeline(points) }

func TestNewPoint(t *testing.T) {
	p := NewPoint(10, []float64{0.5, 0.7}, 1.2)
	if p.T != 10 || math.Abs(p.Mean-0.6) > 1e-9 {
		t.Fatalf("point %+v", p)
	}
	if p.Std == 0 {
		t.Fatal("std should be nonzero")
	}
	if p.Loss != 1.2 {
		t.Fatalf("loss %v", p.Loss)
	}
	// input must be copied
	in := []float64{0.1}
	p2 := NewPoint(0, in, 0)
	in[0] = 9
	if p2.PerWork[0] != 0.1 {
		t.Fatal("NewPoint must copy accuracies")
	}
}

func TestFinalAndBestMean(t *testing.T) {
	empty := tl()
	if empty.FinalMean() != 0 || empty.BestMean() != 0 {
		t.Fatal("empty timeline")
	}
	line := tl(
		NewPoint(0, []float64{0.1}, 0),
		NewPoint(10, []float64{0.8}, 0),
		NewPoint(20, []float64{0.6}, 0),
	)
	if line.FinalMean() != 0.6 {
		t.Fatalf("final %v", line.FinalMean())
	}
	if line.BestMean() != 0.8 {
		t.Fatalf("best %v", line.BestMean())
	}
}

func TestTimeToAccuracy(t *testing.T) {
	line := tl(
		NewPoint(0, []float64{0.1}, 0),
		NewPoint(10, []float64{0.5}, 0),
		NewPoint(20, []float64{0.9}, 0),
	)
	if tt, ok := line.TimeToAccuracy(0.5); !ok || tt != 10 {
		t.Fatalf("tta(0.5) = %v, %v", tt, ok)
	}
	if tt, ok := line.TimeToAccuracy(0.05); !ok || tt != 0 {
		t.Fatalf("tta(0.05) = %v, %v", tt, ok)
	}
	if _, ok := line.TimeToAccuracy(0.95); ok {
		t.Fatal("unreached target must report !ok")
	}
}

func TestMeanAt(t *testing.T) {
	line := tl(
		NewPoint(0, []float64{0.1}, 0),
		NewPoint(10, []float64{0.5}, 0),
	)
	if got := line.MeanAt(5); got != 0.1 {
		t.Fatalf("MeanAt(5) = %v", got)
	}
	if got := line.MeanAt(100); got != 0.5 {
		t.Fatalf("MeanAt(100) = %v", got)
	}
}

func TestDeviation(t *testing.T) {
	line := tl(
		NewPoint(0, []float64{0.5, 0.5}, 0),
		NewPoint(10, []float64{0.2, 0.8}, 0),
		NewPoint(20, []float64{0.4, 0.6}, 0),
		NewPoint(30, []float64{0.5, 0.5}, 0),
	)
	if line.FinalDeviation() != 0 {
		t.Fatalf("final dev %v", line.FinalDeviation())
	}
	// MaxDeviation skips the first half (points 0,1); max of points 2,3
	want := NewPoint(20, []float64{0.4, 0.6}, 0).Std
	if math.Abs(line.MaxDeviation()-want) > 1e-12 {
		t.Fatalf("max dev %v, want %v", line.MaxDeviation(), want)
	}
}

// TestEdgeCases pins the boundary behaviour every caller of Timeline relies
// on: empty and single-point timelines, windows wider than the data, and
// queries before the first evaluation.
func TestEdgeCases(t *testing.T) {
	empty := tl()
	if empty.FinalDeviation() != 0 || empty.MaxDeviation() != 0 {
		t.Fatal("empty timeline must report zero deviation")
	}
	if empty.MeanAt(100) != 0 {
		t.Fatal("empty timeline MeanAt must be 0")
	}
	if _, ok := empty.TimeToAccuracy(0); ok {
		t.Fatal("empty timeline never reaches a target")
	}
	if empty.Converged(0, 1) {
		t.Fatal("empty timeline cannot be converged")
	}

	single := tl(NewPoint(5, []float64{0.3}, 1))
	if single.FinalMean() != 0.3 || single.BestMean() != 0.3 {
		t.Fatalf("single point means: %v %v", single.FinalMean(), single.BestMean())
	}
	if single.FinalDeviation() != 0 {
		t.Fatal("single worker has zero deviation")
	}
	if single.Converged(1, 1) {
		t.Fatal("one point cannot show a plateau")
	}

	line := tl(
		NewPoint(10, []float64{0.2}, 0),
		NewPoint(20, []float64{0.4}, 0),
	)
	// query before the first evaluation: nothing measured yet
	if got := line.MeanAt(5); got != 0 {
		t.Fatalf("MeanAt before first eval = %v, want 0", got)
	}
	if got := line.MeanAt(10); got != 0.2 {
		t.Fatalf("MeanAt at first eval = %v, want 0.2", got)
	}
	// window larger than the whole timeline
	if line.Converged(5, 10) {
		t.Fatal("window wider than timeline must report not converged")
	}
	if !line.Converged(1, 0.5) {
		t.Fatal("exact-fit window should evaluate the plateau test")
	}
}

func TestConverged(t *testing.T) {
	line := tl(
		NewPoint(0, []float64{0.1}, 0),
		NewPoint(10, []float64{0.5}, 0),
		NewPoint(20, []float64{0.70}, 0),
		NewPoint(30, []float64{0.705}, 0),
		NewPoint(40, []float64{0.707}, 0),
	)
	if !line.Converged(2, 0.02) {
		t.Fatal("should be converged over trailing window")
	}
	if line.Converged(3, 0.02) {
		t.Fatal("wider window includes the climb")
	}
	if tl(NewPoint(0, []float64{1}, 0)).Converged(3, 0.1) {
		t.Fatal("short timeline cannot be converged")
	}
}
