// Package metrics holds the evaluation-side data structures: accuracy
// timelines sampled over virtual time, and the three performance metrics
// of §5.1.3 (accuracy at a training-time budget, time until a target
// accuracy, and converged accuracy), plus the per-worker accuracy
// deviation of Figure 17.
package metrics

import (
	"math"

	"dlion/internal/stats"
)

// EvalPoint is one periodic evaluation of every worker's model.
type EvalPoint struct {
	T       float64   // virtual seconds since training started
	PerWork []float64 // test accuracy per worker
	Mean    float64
	Std     float64 // stddev across workers (Fig 17)
	Loss    float64 // mean test loss across workers
}

// Timeline is an ordered series of evaluations.
type Timeline []EvalPoint

// NewPoint summarizes per-worker accuracies into an EvalPoint.
func NewPoint(t float64, accs []float64, meanLoss float64) EvalPoint {
	s := stats.Summarize(accs)
	return EvalPoint{T: t, PerWork: append([]float64(nil), accs...),
		Mean: s.Mean, Std: s.Std, Loss: meanLoss}
}

// FinalMean returns the mean accuracy at the last evaluation (0 for an
// empty timeline).
func (tl Timeline) FinalMean() float64 {
	if len(tl) == 0 {
		return 0
	}
	return tl[len(tl)-1].Mean
}

// BestMean returns the highest mean accuracy reached at any point.
func (tl Timeline) BestMean() float64 {
	best := 0.0
	for _, p := range tl {
		if p.Mean > best {
			best = p.Mean
		}
	}
	return best
}

// TimeToAccuracy returns the first time the mean accuracy reached target,
// and ok=false if it never did.
func (tl Timeline) TimeToAccuracy(target float64) (float64, bool) {
	for _, p := range tl {
		if p.Mean >= target {
			return p.T, true
		}
	}
	return 0, false
}

// MeanAt returns the mean accuracy at the last evaluation not after t
// (0 if none).
func (tl Timeline) MeanAt(t float64) float64 {
	acc := 0.0
	for _, p := range tl {
		if p.T > t {
			break
		}
		acc = p.Mean
	}
	return acc
}

// FinalDeviation returns the across-worker accuracy standard deviation at
// the last evaluation.
func (tl Timeline) FinalDeviation() float64 {
	if len(tl) == 0 {
		return 0
	}
	return tl[len(tl)-1].Std
}

// MaxDeviation returns the largest across-worker deviation observed after
// the warm-up half of the timeline (early points are noisy for every
// system and would swamp the comparison).
func (tl Timeline) MaxDeviation() float64 {
	max := 0.0
	for i, p := range tl {
		if i < len(tl)/2 {
			continue
		}
		if p.Std > max {
			max = p.Std
		}
	}
	return max
}

// Converged reports whether the mean accuracy has plateaued: the
// improvement over the trailing `window` evaluations is below eps.
func (tl Timeline) Converged(window int, eps float64) bool {
	if len(tl) < window+1 {
		return false
	}
	last := tl[len(tl)-1].Mean
	prev := tl[len(tl)-1-window].Mean
	return math.Abs(last-prev) < eps
}
