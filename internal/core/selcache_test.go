package core

import (
	"testing"

	"dlion/internal/grad"
	"dlion/internal/nn"
	"dlion/internal/wire"
)

// uncachedMaxN wraps MaxN without the LinkInvariant marker, forcing the
// exchange path to recompute the selection per peer — the pre-cache
// behavior, used as the oracle below.
type uncachedMaxN struct{ inner *grad.MaxN }

func (u uncachedMaxN) Name() string { return u.inner.Name() }
func (u uncachedMaxN) Select(to int, params []*nn.Param, budget int) []*grad.Selection {
	return u.inner.Select(to, params, budget)
}

// TestSelectionCacheSharesAndMatchesUncached pins the per-iteration
// selection cache: with a LinkInvariant selector and equal-bandwidth links,
// every gradient message of one (sender, iteration) shares one Selection
// set (computed once), and the payloads are bit-identical to a run whose
// selector recomputes per peer.
func TestSelectionCacheSharesAndMatchesUncached(t *testing.T) {
	run := func(newSel func() grad.Selector) []*wire.Message {
		env := newFakeEnv(3, []float64{1, 1, 1})
		cfg := asyncConfig()
		cfg.NewSelector = newSel
		cfg.LinkBudget = true
		ws := buildCluster(t, cfg, env)
		for _, w := range ws {
			w.Start()
		}
		env.eng.Run(6)
		var grads []*wire.Message
		for _, m := range env.sent {
			if m.Type == wire.TypeGradient {
				grads = append(grads, m)
			}
		}
		return grads
	}

	cached := run(func() grad.Selector { return grad.NewMaxN(95) })
	uncached := run(func() grad.Selector { return uncachedMaxN{inner: grad.NewMaxN(95)} })

	if len(cached) == 0 {
		t.Fatal("no gradient messages sent")
	}
	if len(cached) != len(uncached) {
		t.Fatalf("message counts diverge: cached %d, uncached %d", len(cached), len(uncached))
	}
	for k := range cached {
		a, b := cached[k], uncached[k]
		if a.From != b.From || a.To != b.To || a.Iter != b.Iter {
			t.Fatalf("message %d routing diverges: %+v vs %+v", k, a, b)
		}
		if len(a.Selections) != len(b.Selections) {
			t.Fatalf("message %d selection count: %d vs %d", k, len(a.Selections), len(b.Selections))
		}
		for si := range a.Selections {
			sa, sb := a.Selections[si], b.Selections[si]
			if sa.Var != sb.Var || sa.Total != sb.Total {
				t.Fatalf("message %d sel %d header diverges", k, si)
			}
			if len(sa.Dense) != len(sb.Dense) || len(sa.Idx) != len(sb.Idx) {
				t.Fatalf("message %d sel %d shape diverges", k, si)
			}
			for i := range sa.Dense {
				if sa.Dense[i] != sb.Dense[i] {
					t.Fatalf("message %d sel %d dense[%d]: %v vs %v", k, si, i, sa.Dense[i], sb.Dense[i])
				}
			}
			for i := range sa.Idx {
				if sa.Idx[i] != sb.Idx[i] || sa.Val[i] != sb.Val[i] {
					t.Fatalf("message %d sel %d sparse[%d] diverges", k, si, i)
				}
			}
		}
	}

	// Sharing: all messages of one (sender, iteration) carry the same
	// Selection pointers — the cache computed once and fanned out.
	type key struct {
		from int32
		iter int64
	}
	groups := map[key][]*wire.Message{}
	for _, m := range cached {
		if len(m.Selections) > 0 {
			k := key{m.From, m.Iter}
			groups[k] = append(groups[k], m)
		}
	}
	shared := 0
	for k, ms := range groups {
		for _, m := range ms[1:] {
			if m.Selections[0] != ms[0].Selections[0] {
				t.Fatalf("sender %d iter %d: messages do not share cached selections", k.from, k.iter)
			}
		}
		if len(ms) > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no multi-peer iteration exercised the cache")
	}
}
