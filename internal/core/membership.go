package core

import (
	"fmt"
	"sort"

	"dlion/internal/grad"
	"dlion/internal/wire"
)

// This file is the elastic membership subsystem: the per-worker roster +
// epoch state machine that lets workers join and leave a running federation
// without restarting it (ROADMAP: "workers joining/leaving mid-training").
//
// Every worker keeps a roster — the set of worker ids it believes are
// members — and an epoch counter that increments on every roster mutation.
// All renormalization-sensitive paths (GBS divisor, LBS shares, gradient
// fan-out, sync strategies, DKT electorates) derive their cluster size from
// the roster, so admission and departure renormalize them immediately. The
// default roster is 0..NumWorkers-1, which preserves the behavior (and the
// golden timelines) of every pre-elastic configuration bit-for-bit.
//
// Join: HELLO(needSync) → sponsor replies WELCOME carrying its roster,
// epoch, GBS, iteration, and a full weight snapshot → joiner adopts all of
// it, then announces itself with plain HELLOs to the remaining members.
// Per-link FIFO ordering (the simulator's egress serialization, the
// realtime broker's per-peer senders) guarantees a member sees the joiner's
// HELLO before any of its gradients.
//
// Leave: the final gradient exchange drains first, then a LEAVE tombstone
// goes to every peer on the same FIFO links, so peers apply the leaver's
// last gradients before removing it. Receivers renormalize in the same
// event that removes the tombstoned member.

// MemberState is a worker's position in the membership lifecycle.
type MemberState int

// Membership states. The zero value is StateActive so statically
// configured workers (the pre-elastic default) are full members from birth.
const (
	// StateActive: full member — training, exchanging, counted by peers.
	StateActive MemberState = iota
	// StateJoining: outside the federation, running the admission handshake.
	StateJoining
	// StateSyncing: WELCOME received, adopting the roster + weight snapshot.
	StateSyncing
	// StateDraining: leaving — final sends draining, tombstones broadcast.
	StateDraining
	// StateLeft: departed; the worker ignores all further traffic.
	StateLeft
)

// String returns the state's name.
func (s MemberState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateJoining:
		return "joining"
	case StateSyncing:
		return "syncing"
	case StateDraining:
		return "draining"
	case StateLeft:
		return "left"
	}
	return fmt.Sprintf("MemberState(%d)", int(s))
}

// EpochChange records one roster mutation as this worker observed it. The
// GradMsgsSent snapshot makes renormalization testable: between two
// consecutive changes the worker sent exactly ΔIter·(Size-1) gradient
// messages (Size is the roster size the earlier entry established), which
// the testkit churn gate asserts.
type EpochChange struct {
	Epoch        int64   // roster version after the change
	T            float64 // Env time of the change
	Size         int     // roster size after the change (including self)
	Iter         int64   // this worker's completed iterations at the change
	GradMsgsSent int64   // cumulative gradient messages sent at the change
	Reason       string  // "seed", "join", "welcome", "leave", "left", "solo"
}

// initMembership seeds the roster from the configuration. Founders start
// active over InitialMembers (default: the whole 0..NumWorkers-1 address
// space); joiners start alone in StateJoining and acquire the roster from
// their sponsor's WELCOME.
func (w *Worker) initMembership() error {
	w.roster = map[int]bool{}
	mc := w.cfg.Membership
	switch {
	case mc.Join:
		if mc.Sponsor == w.ID {
			return fmt.Errorf("core: worker %d sponsoring its own join", w.ID)
		}
		w.state = StateJoining
		w.roster[w.ID] = true
	case len(mc.InitialMembers) > 0:
		for _, id := range mc.InitialMembers {
			w.roster[id] = true
		}
		if !w.roster[w.ID] {
			return fmt.Errorf("core: worker %d not in InitialMembers %v", w.ID, mc.InitialMembers)
		}
	default:
		for i := 0; i < w.env.NumWorkers(); i++ {
			w.roster[i] = true
		}
	}
	w.rebuildMembers()
	return nil
}

// rebuildMembers refreshes the sorted member cache after a roster mutation.
func (w *Worker) rebuildMembers() {
	w.members = w.members[:0]
	for id := range w.roster {
		w.members = append(w.members, id)
	}
	sort.Ints(w.members)
}

// clusterSize is the roster size including self — the n of Eq. 5 and Eq. 7.
func (w *Worker) clusterSize() int { return len(w.members) }

// logMembership appends an EpochChange at the current epoch and refreshes
// the observability gauges. Call after every roster or epoch mutation.
func (w *Worker) logMembership(reason string) {
	w.memLog = append(w.memLog, EpochChange{
		Epoch:        w.epoch,
		T:            w.env.Now(),
		Size:         len(w.members),
		Iter:         w.iter,
		GradMsgsSent: w.stats.GradMsgsSent,
		Reason:       reason,
	})
	w.obs.SetMembership(int64(len(w.members)), w.epoch)
}

// bumpEpoch advances the roster version after a mutation and logs it.
func (w *Worker) bumpEpoch(reason string) {
	w.epoch++
	w.rebuildMembers()
	w.logMembership(reason)
}

// Membership accessors (drivers, metrics, tests).

// State returns the worker's membership state.
func (w *Worker) State() MemberState { return w.state }

// Epoch returns the current roster version.
func (w *Worker) Epoch() int64 { return w.epoch }

// Members returns the current roster (including self), in id order.
func (w *Worker) Members() []int {
	out := make([]int, len(w.members))
	copy(out, w.members)
	return out
}

// MembershipLog returns the worker's roster mutation history.
func (w *Worker) MembershipLog() []EpochChange {
	out := make([]EpochChange, len(w.memLog))
	copy(out, w.memLog)
	return out
}

// Degraded reports whether the live cluster is below the quorum floor.
func (w *Worker) Degraded() bool { return w.degradedNow() }

// degradedNow implements the quorum floor: with fewer than QuorumFloor live
// members (including self) the worker keeps training but stops blocking on
// its sync strategy and counts results as degraded. 0 disables the floor.
func (w *Worker) degradedNow() bool {
	q := w.cfg.Membership.QuorumFloor
	if q <= 0 {
		return false
	}
	return 1+len(w.livePeers()) < q
}

// StartJoin begins the admission handshake toward sponsor: HELLO with the
// needs-sync flag, retried with doubling backoff until a WELCOME arrives or
// JoinTimeout expires — at which point the worker degrades to solo training
// (roster of one) rather than wedging. Drivers call it instead of Start for
// workers added to a running federation.
func (w *Worker) StartJoin(sponsor int) {
	if w.started {
		panic("core: worker started twice")
	}
	if sponsor == w.ID {
		panic("core: worker sponsoring its own join")
	}
	w.started = true
	w.aliveFrom = w.env.Now()
	w.state = StateJoining
	w.roster = map[int]bool{w.ID: true}
	w.rebuildMembers()
	w.joinStart = w.env.Now()
	w.joinWait = w.cfg.Membership.JoinRetry
	w.logMembership("seed")
	w.sendHello(sponsor, true)
	w.armJoinRetry(sponsor)
}

// armJoinRetry schedules the next HELLO retry. Each firing re-checks the
// join deadline first, so a lost WELCOME can only delay admission, never
// hang it. The backoff doubles but is clamped to the time remaining so the
// timeout check fires promptly at the deadline.
func (w *Worker) armJoinRetry(sponsor int) {
	w.after(w.joinWait, func() {
		if w.state != StateJoining {
			return
		}
		if w.env.Now()-w.joinStart >= w.cfg.Membership.JoinTimeout {
			w.soloFallback()
			return
		}
		w.sendHello(sponsor, true)
		w.joinWait *= 2
		if rem := w.joinStart + w.cfg.Membership.JoinTimeout - w.env.Now(); w.joinWait > rem {
			w.joinWait = rem
			if w.joinWait < 1e-3 {
				w.joinWait = 1e-3
			}
		}
		w.armJoinRetry(sponsor)
	})
}

// soloFallback abandons the handshake at the join deadline: the worker
// trains alone (roster of one) so a partitioned joiner still makes local
// progress. Below any QuorumFloor > 1 every iteration counts as degraded.
func (w *Worker) soloFallback() {
	w.state = StateActive
	w.bumpEpoch("solo")
	w.obs.ObserveJoin(w.env.Now() - w.joinStart)
	w.startTraining()
}

// sendHello sends a HELLO to peer. needSync marks it as an admission
// request (the receiver answers with a WELCOME snapshot); without the flag
// it is a join announcement from an already-admitted worker.
func (w *Worker) sendHello(to int, needSync bool) {
	m := &wire.Message{Type: wire.TypeHello, From: int32(w.ID), To: int32(to),
		Iter: w.iter, Epoch: w.epoch, Quant: uint8(w.cfg.Quant.Accept)}
	if needSync {
		m.Flags = wire.HelloNeedSync
	}
	w.send(m)
}

// handleHello admits the sender into the roster (bumping the epoch on first
// contact) and, for needs-sync HELLOs, answers with a WELCOME snapshot. A
// retried HELLO after a lost WELCOME re-sends the snapshot without
// re-bumping the epoch.
func (w *Worker) handleHello(m *wire.Message) {
	if w.state == StateJoining || w.state == StateSyncing {
		return // not yet a member; cannot admit or sponsor anyone
	}
	from := int(m.From)
	// Record the sender's precision capabilities even on duplicate HELLOs:
	// the mask rides every handshake message, so the freshest wins.
	w.peerQuant[from] = grad.PrecMask(m.Quant)
	if !w.roster[from] {
		w.roster[from] = true
		if m.Iter > w.peerIter[from] {
			w.peerIter[from] = m.Iter
		}
		w.bumpEpoch("join")
		if w.waitingSync && w.canProceed() {
			w.unblockSync()
			w.startIteration()
		}
	}
	if m.Flags&wire.HelloNeedSync != 0 {
		w.sendWelcome(from)
	}
}

// sendWelcome answers an admission request with the epoch-stamped roster
// snapshot, the sponsor's GBS and iteration, and a full weight snapshot.
func (w *Worker) sendWelcome(to int) {
	members := make([]int32, 0, len(w.members))
	for _, id := range w.members {
		members = append(members, int32(id))
	}
	w.stats.WelcomesSent++
	w.send(&wire.Message{Type: wire.TypeWelcome, From: int32(w.ID), To: int32(to),
		Iter: w.iter, Epoch: w.epoch,
		GBS:     int32(w.gbs.GBSAt(w.env.Now(), w.epochsDone())),
		Quant:   uint8(w.cfg.Quant.Accept),
		Members: members, Weights: w.cloneWeights()})
}

// handleWelcome completes the joiner's admission: adopt the sponsor's
// roster, epoch, weights, iteration, and (fixed-mode) GBS, announce the
// join to the remaining members, then start training.
func (w *Worker) handleWelcome(m *wire.Message) {
	if w.state != StateJoining {
		return // duplicate WELCOME from a retried HELLO
	}
	w.state = StateSyncing
	sponsor := int(m.From)
	w.peerQuant[sponsor] = grad.PrecMask(m.Quant)
	w.roster = map[int]bool{w.ID: true}
	for _, id := range m.Members {
		w.roster[int(id)] = true
	}
	w.roster[sponsor] = true
	w.epoch = m.Epoch // the sponsor's epoch already counts this join
	w.rebuildMembers()
	now := w.env.Now()
	for _, p := range w.members {
		if p == w.ID {
			continue
		}
		w.lastHeard[p] = now
		// The cohort is at least at the sponsor's iteration; starting the
		// sync bookkeeping there keeps SyncFull from waiting on history the
		// joiner never ran.
		if w.peerIter[p] < m.Iter {
			w.peerIter[p] = m.Iter
		}
	}
	if len(m.Weights) > 0 {
		if err := w.model.SetWeights(m.Weights); err == nil {
			w.stats.DKTMerges++
		}
	}
	w.iter = m.Iter
	w.gbs.adopt(int(m.GBS), now)
	w.logMembership("welcome")
	w.obs.ObserveJoin(now - w.joinStart)
	// Announce the join to every member the sponsor did not admit us
	// through. FIFO links deliver these before our first gradients.
	for _, p := range w.members {
		if p != w.ID && p != sponsor {
			w.sendHello(p, false)
		}
	}
	w.state = StateActive
	w.startTraining()
}

// handleLeave removes a tombstoned member and renormalizes: the roster
// shrinks, the epoch advances, and the departed worker's sync, loss, and
// capacity state is dropped in the same event. A blocked sync strategy
// re-evaluates immediately — the leaver can no longer block anyone.
func (w *Worker) handleLeave(m *wire.Message) {
	from := int(m.From)
	if !w.roster[from] {
		return // duplicate tombstone
	}
	delete(w.roster, from)
	delete(w.peerIter, from)
	delete(w.peerLoss, from)
	delete(w.rcp, from)
	delete(w.lastHeard, from)
	delete(w.deadSeen, from)
	delete(w.peerQuant, from)
	w.bumpEpoch("leave")
	if w.waitingSync && w.canProceed() {
		w.unblockSync()
		w.startIteration()
	}
}

// Leave departs the federation gracefully: a LEAVE tombstone to every
// roster peer (queued behind any gradients already sent on the same FIFO
// links, so peers apply them first), then the worker goes silent. Pending
// timers are invalidated the same way Stop does it.
func (w *Worker) Leave() {
	if w.stopped || w.state == StateDraining || w.state == StateLeft {
		return
	}
	if w.state != StateJoining && w.state != StateSyncing {
		w.state = StateDraining
		for _, p := range w.peers() {
			w.send(&wire.Message{Type: wire.TypeLeave, From: int32(w.ID),
				To: int32(p), Iter: w.iter, Epoch: w.epoch})
		}
	}
	w.roster = map[int]bool{w.ID: true}
	w.bumpEpoch("left")
	w.state = StateLeft
	w.stopped = true
	w.gen++
	w.waitingSync = false
	w.recheckArmed = false
}
