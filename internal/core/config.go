// Package core implements the DLion worker (Figure 10 of the paper): the
// training workflow, the weighted dynamic batching technique (GBS and LBS
// controllers + weighted model update, §3.2), per-link prioritized gradient
// exchange (§3.3), direct knowledge transfer (§3.4), and the configurable
// synchronization strategies of §4.2. The four comparison systems are
// expressed as configurations of the same worker (see internal/systems),
// mirroring how the prototype emulated them with ≤23 changed lines.
package core

import (
	"fmt"

	"dlion/internal/grad"
)

// SyncMode selects the synchronization strategy of the synch_training API.
type SyncMode int

// Synchronization strategies.
const (
	// SyncAsync proceeds to the next iteration immediately (Ako).
	SyncAsync SyncMode = iota
	// SyncFull blocks until gradients for the current iteration arrived
	// from every peer (Baseline, Gaia, DLion).
	SyncFull
	// SyncBounded proceeds once gradients arrived from all but
	// BackupWorkers peers, while never running more than Staleness
	// iterations ahead of the slowest peer (Hop).
	SyncBounded
)

// String returns the mode's name.
func (m SyncMode) String() string {
	switch m {
	case SyncAsync:
		return "async"
	case SyncFull:
		return "sync"
	case SyncBounded:
		return "bounded"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// SyncConfig parameterizes the synchronization strategy.
type SyncConfig struct {
	Mode          SyncMode
	BackupWorkers int // SyncBounded: peers that may be skipped (Hop uses 1)
	Staleness     int // SyncBounded: max iteration lead over slowest peer (Hop uses 5)
}

// DKTConfig parameterizes direct knowledge transfer (§3.4).
type DKTConfig struct {
	Enabled    bool
	Period     int64   // iterations between loss sharing rounds (paper: 100)
	Lambda     float64 // merge ratio (paper: 0.75)
	LossWindow int     // l, the number of recent losses averaged (default 5)
	// Best2Worst restricts transfer to the single worst worker instead of
	// all workers (the DKT_Best2worst variant of Figure 9b).
	Best2Worst bool
}

// BatchConfig parameterizes weighted dynamic batching (§3.2).
type BatchConfig struct {
	InitialLBS int // starting local batch size (paper: 32)

	// DynamicBatching enables the GBS and LBS controllers. When false the
	// global batch is fixed at n·InitialLBS split evenly.
	DynamicBatching bool
	// WeightedUpdate enables the db_j^k confidence coefficients of Eq. 7.
	WeightedUpdate bool

	GBS GBSConfig

	// ProfilePeriod is how often (virtual seconds) the LBS controller
	// re-profiles compute capacity and broadcasts RCP (default 60).
	ProfilePeriod float64
	// MinLBS floors each worker's share (default 1).
	MinLBS int
	// DBClampMax bounds the dynamic batching weight db_j^k = LBS_j/LBS_k to
	// [1/DBClampMax, DBClampMax] for numerical stability with extreme
	// heterogeneity (default 8; see DESIGN.md decision 4).
	DBClampMax float64
}

// GBSConfig parameterizes the GBS controller.
type GBSConfig struct {
	// Mode "auto" runs the warm-up/speed-up controller; "fixed" keeps the
	// initial GBS; "schedule" doubles GBS once DoubleAtEpoch is reached
	// (the Figure 5 exploration).
	Mode string

	WarmupAdd      int     // C_warmup: arithmetic increment (default = initial GBS)
	SpeedupFactor  float64 // C_speedup: geometric factor (default 2)
	WarmupCapFrac  float64 // stop warm-up when GBS > frac·|train| (paper: 0.01)
	SpeedupCapFrac float64 // stop speed-up when GBS > frac·|train| (paper: 0.10)
	AdjustPeriod   float64 // virtual seconds between adjustments (default 120)
	WarmupDuration float64 // seconds before switching from warm-up to speed-up (default 600)
	DoubleAtEpoch  float64 // schedule mode: epoch at which GBS doubles
	TrainSetSize   int     // |train|, filled in by the cluster driver
}

// MembershipConfig parameterizes elastic membership: live join/leave of
// workers in a running federation, with quorum-aware graceful degradation.
// The zero value is the static-roster behavior every pre-elastic
// configuration had: the roster is 0..NumWorkers-1 forever.
type MembershipConfig struct {
	// InitialMembers is the founding roster (worker ids, must include this
	// worker). Empty means 0..NumWorkers-1 — the static-cluster default.
	// Drivers set it when some of the address space joins later.
	InitialMembers []int

	// Join marks this worker as starting outside the federation: instead of
	// training it runs the admission handshake — HELLO to Sponsor, adopt the
	// WELCOME's epoch-stamped roster and weight snapshot, announce itself to
	// the remaining members — and only then starts iterating.
	Join bool
	// Sponsor is the member the joiner sends its HELLO to. Drivers that
	// resolve the sponsor at join time (e.g. freshest live member) call
	// StartJoin directly and may leave this zero.
	Sponsor int
	// JoinTimeout bounds the admission handshake (seconds). When no WELCOME
	// arrives in time the joiner degrades to solo training — roster of one,
	// degraded iterations — rather than wedging (default 30).
	JoinTimeout float64
	// JoinRetry is the initial HELLO retry backoff in seconds; it doubles
	// per retry, capped by the time left until JoinTimeout (default 2).
	JoinRetry float64

	// QuorumFloor is the minimum live cluster size (including self) for
	// full-fidelity operation. Below it the worker keeps training locally
	// but stops blocking on its sync strategy and counts every iteration as
	// degraded (stats + obs). 0 disables the floor.
	QuorumFloor int

	// LeaveAfterIters, when > 0, makes the worker leave gracefully — final
	// gradient exchange, tombstone broadcast, drain — after completing that
	// many iterations. It is the deterministic leave trigger the churn
	// equivalence harness uses; drivers usually call Leave instead.
	LeaveAfterIters int64
}

// QuantConfig parameterizes gradient wire precision — the precision half of
// the paper's §3.3 data quality adjustment, next to Max-N's sparsity half.
// The zero value (f32, no auto) is the exact pre-quantization behavior.
type QuantConfig struct {
	// Precision is the fixed wire precision for outgoing gradient
	// selections. Ignored when Auto is set.
	Precision grad.Precision

	// Auto derives the precision per link from the transmission speed
	// assurance budget: f32 when the budget covers a full dense f32
	// exchange, f16 when it covers half, int8 below that. Requires
	// LinkBudget (there is no per-link budget to inspect without it).
	Auto bool

	// Accept is the mask of reduced precisions this worker accepts on
	// inbound links, advertised to peers in HELLO/WELCOME. Zero defaults to
	// accept-all; peers that never handshake (static founders) are assumed
	// accept-all too, since founders share one binary by construction.
	Accept grad.PrecMask
}

// Config assembles a complete system variant.
type Config struct {
	Name         string
	LearningRate float64

	// Job labels the control-plane training job this worker belongs to
	// (empty for hand-launched clusters). It is a pure label: the lifecycle
	// manager stamps it into worker reports and error messages so one
	// broker's concurrent jobs stay attributable.
	Job string

	// NewSelector builds the per-worker gradient selector (selectors are
	// stateful, so each worker needs its own instance).
	NewSelector func() grad.Selector

	// LinkBudget enables the transmission speed assurance module: the
	// per-link byte budget BW_net_j/Iter_com_i is passed to the selector.
	LinkBudget bool

	// LivenessTimeout is how long (seconds) a peer may stay silent before
	// this worker treats it as dead: synchronization strategies stop
	// waiting for it, gradient exchange and byte budgets adapt to the live
	// set, and its DKT loss reports expire. 0 (the default) disables
	// liveness tracking — every peer is assumed alive forever, the
	// fault-free behavior. Set it well above the longest quiet period a
	// healthy peer can have (a few iteration times plus network delay).
	LivenessTimeout float64

	// OrderedApply is the deterministic-replay discipline behind signed
	// checkpoint lineage (DESIGN.md §13): instead of applying peers'
	// gradients the moment they arrive, the worker buffers them and applies
	// each round at its synchronization barrier, in (iteration, worker-id)
	// order. Float32 apply order is the only thing the two substrates (DES
	// simulator vs realtime broker) disagree on under SyncFull with fixed
	// batching, so pinning it makes the final weight bits a pure function
	// of (config, seed, steps) — bit-exactly reproducible by dlion-audit on
	// either substrate. It requires the deterministic-math subset: SyncFull,
	// no DKT, no dynamic batching, static membership, no liveness routing.
	OrderedApply bool

	// MaxIters, when > 0, stops the worker after it completes that many
	// iterations: no further batches are drawn and no further gradients are
	// generated, while incoming messages keep being applied (peers finishing
	// their own final iterations still land). 0 (the default) trains until
	// the driver's horizon. The conformance harness uses it to run the same
	// number of steps on the simulator and the realtime broker so final
	// weights are comparable.
	MaxIters int64

	Batch      BatchConfig
	Sync       SyncConfig
	DKT        DKTConfig
	Membership MembershipConfig
	Quant      QuantConfig

	// EvalSubset caps how many test samples periodic accuracy evaluation
	// uses (0 = all). Purely a harness knob.
	EvalSubset int
}

// Validate checks the configuration for programming errors.
func (c *Config) Validate() error {
	switch {
	case c.NewSelector == nil:
		return fmt.Errorf("core: %s: NewSelector is nil", c.Name)
	case c.LearningRate <= 0:
		return fmt.Errorf("core: %s: learning rate %v", c.Name, c.LearningRate)
	case c.Batch.InitialLBS < 1:
		return fmt.Errorf("core: %s: initial LBS %d", c.Name, c.Batch.InitialLBS)
	case c.DKT.Enabled && (c.DKT.Lambda < 0 || c.DKT.Lambda > 1):
		return fmt.Errorf("core: %s: DKT lambda %v", c.Name, c.DKT.Lambda)
	case c.DKT.Enabled && c.DKT.Period < 1:
		return fmt.Errorf("core: %s: DKT period %d", c.Name, c.DKT.Period)
	case c.Sync.Mode == SyncBounded && c.Sync.Staleness < 1:
		return fmt.Errorf("core: %s: staleness %d", c.Name, c.Sync.Staleness)
	case c.LivenessTimeout < 0:
		return fmt.Errorf("core: %s: liveness timeout %v", c.Name, c.LivenessTimeout)
	case c.MaxIters < 0:
		return fmt.Errorf("core: %s: max iters %d", c.Name, c.MaxIters)
	case c.Membership.JoinTimeout < 0:
		return fmt.Errorf("core: %s: join timeout %v", c.Name, c.Membership.JoinTimeout)
	case c.Membership.JoinRetry < 0:
		return fmt.Errorf("core: %s: join retry %v", c.Name, c.Membership.JoinRetry)
	case c.Membership.QuorumFloor < 0:
		return fmt.Errorf("core: %s: quorum floor %d", c.Name, c.Membership.QuorumFloor)
	case c.Membership.LeaveAfterIters < 0:
		return fmt.Errorf("core: %s: leave after iters %d", c.Name, c.Membership.LeaveAfterIters)
	case c.Membership.Join && len(c.Membership.InitialMembers) > 0:
		return fmt.Errorf("core: %s: Join and InitialMembers are mutually exclusive", c.Name)
	case !c.Quant.Precision.Valid():
		return fmt.Errorf("core: %s: quant precision %d", c.Name, c.Quant.Precision)
	case c.Quant.Auto && !c.LinkBudget:
		return fmt.Errorf("core: %s: Quant.Auto requires LinkBudget", c.Name)
	case c.Quant.Accept > grad.MaskAll:
		return fmt.Errorf("core: %s: quant accept mask %#x", c.Name, uint8(c.Quant.Accept))
	}
	if c.OrderedApply {
		switch {
		case c.Sync.Mode != SyncFull:
			return fmt.Errorf("core: %s: OrderedApply requires SyncFull", c.Name)
		case c.DKT.Enabled:
			return fmt.Errorf("core: %s: OrderedApply excludes DKT (weight merges are unordered)", c.Name)
		case c.Batch.DynamicBatching:
			return fmt.Errorf("core: %s: OrderedApply excludes dynamic batching (RCP timing is wall-clock)", c.Name)
		case c.LivenessTimeout > 0:
			return fmt.Errorf("core: %s: OrderedApply excludes liveness routing (the live set is timing-dependent)", c.Name)
		case c.Membership.Join || c.Membership.LeaveAfterIters > 0 || c.Membership.QuorumFloor > 0:
			return fmt.Errorf("core: %s: OrderedApply requires a static roster", c.Name)
		}
	}
	return nil
}

// Fingerprint returns a canonical one-line summary of every field that
// determines the training computation — the string lineage manifests hash
// into their config commitment. Two configs with equal fingerprints run the
// same math on the same schedule (given equal seeds and worker counts);
// presentation-only fields (Job, EvalSubset) are deliberately excluded.
func (c Config) Fingerprint() string {
	c = c.withDefaults()
	return fmt.Sprintf(
		"name=%s lr=%g sync=%s/%d/%d lbs=%d dyn=%t wu=%t gbs=%s dkt=%t/%d/%g "+
			"budget=%t live=%g maxiters=%d quant=%s/auto=%t ordered=%t",
		c.Name, c.LearningRate, c.Sync.Mode, c.Sync.BackupWorkers, c.Sync.Staleness,
		c.Batch.InitialLBS, c.Batch.DynamicBatching, c.Batch.WeightedUpdate,
		c.Batch.GBS.Mode, c.DKT.Enabled, c.DKT.Period, c.DKT.Lambda,
		c.LinkBudget, c.LivenessTimeout, c.MaxIters,
		c.Quant.Precision, c.Quant.Auto, c.OrderedApply)
}

// withDefaults fills zero values with the defaults documented above.
func (c Config) withDefaults() Config {
	if c.Batch.GBS.Mode == "" {
		c.Batch.GBS.Mode = "fixed"
	}
	if c.Batch.GBS.SpeedupFactor == 0 {
		c.Batch.GBS.SpeedupFactor = 2
	}
	if c.Batch.GBS.WarmupCapFrac == 0 {
		c.Batch.GBS.WarmupCapFrac = 0.01
	}
	if c.Batch.GBS.SpeedupCapFrac == 0 {
		c.Batch.GBS.SpeedupCapFrac = 0.10
	}
	if c.Batch.GBS.AdjustPeriod == 0 {
		c.Batch.GBS.AdjustPeriod = 120
	}
	if c.Batch.GBS.WarmupDuration == 0 {
		c.Batch.GBS.WarmupDuration = 600
	}
	if c.Batch.ProfilePeriod == 0 {
		c.Batch.ProfilePeriod = 60
	}
	if c.Batch.MinLBS == 0 {
		c.Batch.MinLBS = 1
	}
	if c.Batch.DBClampMax == 0 {
		c.Batch.DBClampMax = 8
	}
	if c.DKT.LossWindow == 0 {
		c.DKT.LossWindow = 5
	}
	if c.Membership.JoinTimeout == 0 {
		c.Membership.JoinTimeout = 30
	}
	if c.Membership.JoinRetry == 0 {
		c.Membership.JoinRetry = 2
	}
	if c.Quant.Accept == 0 {
		c.Quant.Accept = grad.MaskAll
	}
	return c
}
