package core

import (
	"fmt"
	"testing"

	"dlion/internal/data"
	"dlion/internal/nn"
	"dlion/internal/wire"
)

// Elastic membership behavior over the fake env: admission handshake,
// solo fallback, tombstone renormalization, quorum degradation, and the
// recheck-timer lifecycle across crash/restart (the cluster-level churn
// tests cover the full simulator + realtime integration).

// buildClusterCfgs is buildCluster with one config per worker, so founders
// and joiners can coexist in the same address space.
func buildClusterCfgs(t *testing.T, cfgs []Config, env *fakeEnv) []*Worker {
	t.Helper()
	dc := data.Config{Name: "t", NumClasses: 3, Train: 120, Test: 30,
		Channels: 1, Height: 8, Width: 8, Noise: 0.3, Jitter: 0, Bumps: 3, Seed: 4}
	tr, _, err := data.Generate(dc)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.Partition(tr, env.n, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := nn.CipherSpec(1, 8, 8, 3, 77)
	ws := make([]*Worker, env.n)
	for i := range ws {
		w, err := New(i, cfgs[i], spec.Build(), shards[i], env)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	env.workers = ws
	return ws
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hasReason(log []EpochChange, reason string) bool {
	for _, e := range log {
		if e.Reason == reason {
			return true
		}
	}
	return false
}

func TestJoinHandshakeAdmitsWorker(t *testing.T) {
	env := newFakeEnv(3, []float64{1, 1, 1})
	founder := asyncConfig()
	founder.Membership.InitialMembers = []int{0, 1}
	joiner := asyncConfig()
	joiner.Membership.Join = true
	joiner.Membership.Sponsor = 0
	ws := buildClusterCfgs(t, []Config{founder, founder, joiner}, env)
	ws[0].Start()
	ws[1].Start()
	env.eng.At(5, ws[2].Start)
	env.eng.Run(30)

	want := []int{0, 1, 2}
	for i, w := range ws {
		if got := w.Members(); !equalInts(got, want) {
			t.Fatalf("worker %d roster %v, want %v", i, got, want)
		}
	}
	if ws[2].State() != StateActive {
		t.Fatalf("joiner state %v, want active", ws[2].State())
	}
	if ws[2].Iter() < 5 {
		t.Fatalf("joiner barely trained: %d iters", ws[2].Iter())
	}
	if got := ws[0].Stats().WelcomesSent; got != 1 {
		t.Fatalf("sponsor served %d welcomes, want 1", got)
	}
	// The joiner adopted the sponsor's snapshot (counted as a merge) and
	// the sponsor's iteration, so it never reports a pre-join history.
	if ws[2].Stats().DKTMerges == 0 {
		t.Fatal("joiner never adopted the WELCOME weight snapshot")
	}
	// Worker 1 learned of the join via the announce HELLO, not a WELCOME.
	if !hasReason(ws[1].MembershipLog(), "join") {
		t.Fatalf("worker 1 log %+v missing join entry", ws[1].MembershipLog())
	}
	if ws[1].Stats().WelcomesSent != 0 {
		t.Fatal("announce HELLO must not trigger a WELCOME")
	}
	if !hasReason(ws[2].MembershipLog(), "welcome") {
		t.Fatalf("joiner log %+v missing welcome entry", ws[2].MembershipLog())
	}
	// Epochs converge on the same mutation count: one join observed by all.
	for i, w := range ws {
		if w.Epoch() != 1 {
			t.Fatalf("worker %d epoch %d, want 1", i, w.Epoch())
		}
	}
}

func TestJoinTimeoutFallsBackToSolo(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	founder := asyncConfig()
	founder.Membership.InitialMembers = []int{0}
	joiner := asyncConfig()
	joiner.Membership.Join = true
	joiner.Membership.Sponsor = 0
	joiner.Membership.JoinTimeout = 10
	joiner.Membership.JoinRetry = 1
	ws := buildClusterCfgs(t, []Config{founder, joiner}, env)
	env.dropTo[0] = true // the sponsor never hears the HELLOs
	ws[1].Start()
	env.eng.Run(40)

	if ws[1].State() != StateActive {
		t.Fatalf("joiner state %v, want active (solo)", ws[1].State())
	}
	if got := ws[1].Members(); !equalInts(got, []int{1}) {
		t.Fatalf("solo roster %v, want [1]", got)
	}
	if !hasReason(ws[1].MembershipLog(), "solo") {
		t.Fatalf("log %+v missing solo entry", ws[1].MembershipLog())
	}
	if ws[1].Iter() < 10 {
		t.Fatalf("solo worker barely trained: %d iters", ws[1].Iter())
	}
	hellos := 0
	for _, m := range env.sent {
		if m.Type == wire.TypeHello {
			hellos++
		}
	}
	// initial HELLO at t=0, retries at 1, 3, 7, then the deadline fires
	if hellos < 3 {
		t.Fatalf("%d HELLOs sent, want retries before the deadline", hellos)
	}
	// No training happened before the deadline: first iteration starts at
	// the fallback, i.e. JoinTimeout virtual seconds in.
	if len(ws[1].MembershipLog()) == 0 || ws[1].MembershipLog()[0].T != 0 {
		t.Fatal("join should have started at t=0")
	}
}

func TestLeaveRenormalizesSurvivors(t *testing.T) {
	env := newFakeEnv(3, []float64{1, 1, 1})
	cfg := asyncConfig()
	leaver := asyncConfig()
	leaver.Membership.LeaveAfterIters = 3
	ws := buildClusterCfgs(t, []Config{cfg, cfg, leaver}, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(30)

	if ws[2].State() != StateLeft {
		t.Fatalf("leaver state %v, want left", ws[2].State())
	}
	if ws[2].Iter() != 3 {
		t.Fatalf("leaver ran %d iters, want exactly 3", ws[2].Iter())
	}
	for i := 0; i < 2; i++ {
		if got := ws[i].Members(); !equalInts(got, []int{0, 1}) {
			t.Fatalf("survivor %d roster %v, want [0 1]", i, got)
		}
		log := ws[i].MembershipLog()
		if !hasReason(log, "leave") {
			t.Fatalf("survivor %d log %+v missing leave entry", i, log)
		}
		// Renormalization gate in miniature: after the tombstone every
		// completed iteration fans out to exactly size-1 = 1 peer.
		e := log[len(log)-1]
		s := ws[i].Stats()
		wantGrad := e.GradMsgsSent + (s.Iters-e.Iter)*int64(e.Size-1)
		if s.GradMsgsSent != wantGrad {
			t.Fatalf("survivor %d sent %d gradient msgs, want %d (exact renormalization)",
				i, s.GradMsgsSent, wantGrad)
		}
		if ws[i].Iter() < 15 {
			t.Fatalf("survivor %d stalled at %d iters", i, ws[i].Iter())
		}
	}
}

func TestLeaveUnblocksSyncFullPeer(t *testing.T) {
	cfg := asyncConfig()
	cfg.Sync.Mode = SyncFull
	leaver := cfg
	leaver.Membership.LeaveAfterIters = 2
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildClusterCfgs(t, []Config{cfg, leaver}, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(40)
	// Without the tombstone-triggered re-evaluation worker 0 would block
	// forever at iteration 3 (LivenessTimeout is 0 here).
	if ws[0].Iter() < 30 {
		t.Fatalf("survivor blocked after peer left: %d iters", ws[0].Iter())
	}
}

func TestQuorumFloorDegradesInsteadOfBlocking(t *testing.T) {
	cfg := asyncConfig()
	cfg.Sync.Mode = SyncFull
	cfg.LivenessTimeout = 5
	cfg.Membership.QuorumFloor = 3
	env := newFakeEnv(3, []float64{1, 1, 1})
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)
	ws[1].Stop()
	ws[2].Stop()
	env.eng.Run(60)
	if !ws[0].Degraded() {
		t.Fatal("survivor below the quorum floor must report degraded")
	}
	s := ws[0].Stats()
	if s.DegradedIters == 0 {
		t.Fatal("degraded iterations not counted")
	}
	if ws[0].Iter() < 30 {
		t.Fatalf("degraded worker should keep training: %d iters", ws[0].Iter())
	}
	if s.DegradedIters >= s.Iters {
		t.Fatalf("all %d iters degraded; pre-crash ones should not be", s.Iters)
	}
}

func TestMembershipValidation(t *testing.T) {
	bad := map[string]func(*Config){
		"negative quorum":  func(c *Config) { c.Membership.QuorumFloor = -1 },
		"negative timeout": func(c *Config) { c.Membership.JoinTimeout = -1 },
		"negative retry":   func(c *Config) { c.Membership.JoinRetry = -1 },
		"negative leave":   func(c *Config) { c.Membership.LeaveAfterIters = -1 },
		"join+initial": func(c *Config) {
			c.Membership.Join = true
			c.Membership.InitialMembers = []int{0}
		},
	}
	for name, mutate := range bad {
		c := asyncConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", name)
		}
	}
}

func TestNewRejectsBadMembership(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"self sponsor":   func(c *Config) { c.Membership.Join = true; c.Membership.Sponsor = 0 },
		"not in initial": func(c *Config) { c.Membership.InitialMembers = []int{1, 2} },
	} {
		env := newFakeEnv(3, []float64{1, 1, 1})
		cfg := asyncConfig()
		mutate(&cfg)
		cfgs := []Config{cfg, asyncConfig(), asyncConfig()}
		func() {
			defer func() { recover() }() // buildClusterCfgs t.Fatal is fine too
			dc := data.Config{Name: "t", NumClasses: 3, Train: 120, Test: 30,
				Channels: 1, Height: 8, Width: 8, Noise: 0.3, Bumps: 3, Seed: 4}
			tr, _, err := data.Generate(dc)
			if err != nil {
				t.Fatal(err)
			}
			shards, err := data.Partition(tr, env.n, 5)
			if err != nil {
				t.Fatal(err)
			}
			spec := nn.CipherSpec(1, 8, 8, 3, 77)
			if _, err := New(0, cfgs[0], spec.Build(), shards[0], env); err == nil {
				t.Errorf("%s: New accepted a bad membership config", name)
			}
		}()
	}
}

func TestMemberStateStrings(t *testing.T) {
	want := map[MemberState]string{
		StateActive: "active", StateJoining: "joining", StateSyncing: "syncing",
		StateDraining: "draining", StateLeft: "left",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("state %d string %q, want %q", int(s), s.String(), name)
		}
	}
	if got := MemberState(42).String(); got != fmt.Sprintf("MemberState(42)") {
		t.Fatalf("unknown state renders %q", got)
	}
}

// Regression (satellite): Stop used to leave recheckArmed set — the gen
// bump voided the pending timer without clearing the flag — so a resumed
// worker that blocked on a dead peer never re-armed the recheck and hung
// forever on SyncFull.
func TestRecheckRearmsAfterStopResume(t *testing.T) {
	cfg := asyncConfig()
	cfg.Sync.Mode = SyncFull
	cfg.LivenessTimeout = 5
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)
	ws[1].Stop()
	// Let worker 0 block on the silent peer and arm its recheck timer,
	// then crash worker 0 while the timer is pending.
	env.eng.Run(2)
	ws[0].Stop()
	ws[0].Resume(-1)
	env.eng.Run(60)
	// The resumed worker blocks on the still-dead peer 1; only a re-armed
	// recheck can expire it and unblock training.
	if ws[0].Iter() < 20 {
		t.Fatalf("resumed worker hung at %d iters: recheck never re-armed", ws[0].Iter())
	}
}

// The recheck timer may fire after the blocking peer already recovered and
// unblocked the worker through the gradient path; the firing must be a
// harmless no-op, and the flag must clear so later blocks re-arm.
func TestRecheckFiringAfterPeerRecovered(t *testing.T) {
	cfg := asyncConfig()
	cfg.Sync.Mode = SyncFull
	cfg.LivenessTimeout = 8
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)
	ws[1].Stop()
	env.eng.Run(3) // worker 0 blocks, recheck armed for t≈+8
	ws[1].Resume(-1)
	env.eng.Run(60) // peer recovers; pending recheck fires mid-run
	d := ws[0].Iter() - ws[1].Iter()
	if d < -2 || d > 2 {
		t.Fatalf("lockstep broken after recovery: %d vs %d", ws[0].Iter(), ws[1].Iter())
	}
	if ws[0].Iter() < 40 {
		t.Fatalf("cluster stalled after recovery: %d iters", ws[0].Iter())
	}
}
