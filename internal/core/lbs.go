package core

import (
	"dlion/internal/stats"
)

// computeRCP derives a worker's relative compute power from profiling
// measurements: iteration seconds are fitted against batch size by linear
// regression (§3.2), and RCP is the number of samples the worker can
// process per unit time, i.e. the reciprocal of the per-sample slope. A
// degenerate or non-positive fit (all-equal batch sizes, dominating noise)
// falls back to a throughput estimate from the largest measured batch so
// the controller always produces something usable.
func computeRCP(batchSizes, seconds []float64) float64 {
	fit, err := stats.LinearRegression(batchSizes, seconds)
	if err == nil && fit.Slope > 0 {
		return 1 / fit.Slope
	}
	// fallback: crude throughput at the largest batch
	bestB, bestT := 0.0, 0.0
	for i, b := range batchSizes {
		if b > bestB {
			bestB, bestT = b, seconds[i]
		}
	}
	if bestB > 0 && bestT > 0 {
		return bestB / bestT
	}
	return 1
}

// lbsShares implements Eq. 5: LBS_i = GBS · RCP_i / Σ_j RCP_j, floored at
// minLBS per worker. rcp maps worker id to its latest reported RCP; workers
// without a report get the mean of the known ones (cold start).
func lbsShares(gbs int, n int, rcp map[int]float64, minLBS int) []int {
	shares := make([]int, n)
	filled := make([]float64, n)
	var sum, known float64
	for i := 0; i < n; i++ {
		if v, ok := rcp[i]; ok && v > 0 {
			filled[i] = v
			sum += v
			known++
		}
	}
	mean := 1.0
	if known > 0 {
		mean = sum / known
	}
	total := 0.0
	for i := 0; i < n; i++ {
		if filled[i] == 0 {
			filled[i] = mean
		}
		total += filled[i]
	}
	assigned := 0
	for i := 0; i < n; i++ {
		s := int(float64(gbs) * filled[i] / total)
		if s < minLBS {
			s = minLBS
		}
		shares[i] = s
		assigned += s
	}
	// distribute the rounding remainder to the most powerful workers so
	// Σ LBS_i tracks GBS
	for assigned < gbs {
		best := 0
		for i := 1; i < n; i++ {
			if filled[i] > filled[best] {
				best = i
			}
		}
		shares[best]++
		assigned++
		filled[best] *= 0.999 // spread ties
	}
	return shares
}

// profileBatches is the ladder of batch sizes the LBS controller measures.
func profileBatches(initialLBS int) []int {
	b := initialLBS
	if b < 4 {
		b = 4
	}
	return []int{b / 2, b, b * 2, b * 4}
}
