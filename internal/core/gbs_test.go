package core

import "testing"

func TestGBSFixed(t *testing.T) {
	g := newGBSController(GBSConfig{Mode: "fixed"}, 192)
	for _, tt := range []float64{0, 100, 1e6} {
		if got := g.GBSAt(tt, 0); got != 192 {
			t.Fatalf("fixed GBS at %v = %d", tt, got)
		}
	}
}

func TestGBSScheduleDoublesOnce(t *testing.T) {
	g := newGBSController(GBSConfig{Mode: "schedule", DoubleAtEpoch: 2}, 100)
	if got := g.GBSAt(0, 0); got != 100 {
		t.Fatalf("before epoch: %d", got)
	}
	if got := g.GBSAt(10, 1.9); got != 100 {
		t.Fatalf("epoch 1.9: %d", got)
	}
	if got := g.GBSAt(20, 2.0); got != 200 {
		t.Fatalf("epoch 2: %d", got)
	}
	if got := g.GBSAt(30, 7.0); got != 200 {
		t.Fatalf("must double only once: %d", got)
	}
}

func TestGBSAutoWarmupArithmetic(t *testing.T) {
	cfg := GBSConfig{Mode: "auto", WarmupAdd: 50, AdjustPeriod: 100,
		WarmupDuration: 1000, WarmupCapFrac: 0.01, SpeedupCapFrac: 0.10,
		SpeedupFactor: 2, TrainSetSize: 100000} // warm-up cap 1000, speed-up cap 10000
	g := newGBSController(cfg, 100)
	if got := g.GBSAt(50, 0); got != 100 {
		t.Fatalf("t=50: %d", got)
	}
	if got := g.GBSAt(100, 0); got != 150 {
		t.Fatalf("t=100: %d", got)
	}
	if got := g.GBSAt(350, 0); got != 250 {
		t.Fatalf("t=350: %d", got)
	}
}

func TestGBSAutoWarmupCap(t *testing.T) {
	cfg := GBSConfig{Mode: "auto", WarmupAdd: 500, AdjustPeriod: 100,
		WarmupDuration: 10000, WarmupCapFrac: 0.01, SpeedupCapFrac: 0.10,
		SpeedupFactor: 2, TrainSetSize: 100000} // cap 1000
	g := newGBSController(cfg, 600)
	// 600+500=1100 > 1000 cap: hold at 600 throughout warm-up
	if got := g.GBSAt(500, 0); got != 600 {
		t.Fatalf("capped warm-up: %d", got)
	}
}

func TestGBSAutoSpeedupGeometricAndCap(t *testing.T) {
	cfg := GBSConfig{Mode: "auto", WarmupAdd: 100, AdjustPeriod: 100,
		WarmupDuration: 100, WarmupCapFrac: 0.01, SpeedupCapFrac: 0.10,
		SpeedupFactor: 2, TrainSetSize: 10000} // warm-up cap 100, speed-up cap 1000
	g := newGBSController(cfg, 100)
	// t=100: speed-up begins (warmup duration over): 100*2=200
	if got := g.GBSAt(100, 0); got != 200 {
		t.Fatalf("t=100: %d", got)
	}
	if got := g.GBSAt(200, 0); got != 400 {
		t.Fatalf("t=200: %d", got)
	}
	if got := g.GBSAt(300, 0); got != 800 {
		t.Fatalf("t=300: %d", got)
	}
	// 800*2 = 1600 > 1000: frozen at 800 forever
	if got := g.GBSAt(10000, 0); got != 800 {
		t.Fatalf("frozen: %d", got)
	}
}

func TestGBSAutoMonotone(t *testing.T) {
	cfg := GBSConfig{Mode: "auto", WarmupAdd: 32, AdjustPeriod: 50,
		WarmupDuration: 300, WarmupCapFrac: 0.01, SpeedupCapFrac: 0.10,
		SpeedupFactor: 2, TrainSetSize: 60000}
	g := newGBSController(cfg, 192)
	prev := 0
	for tt := 0.0; tt < 3000; tt += 25 {
		got := g.GBSAt(tt, 0)
		if got < prev {
			t.Fatalf("GBS decreased at t=%v: %d < %d", tt, got, prev)
		}
		prev = got
	}
	if prev <= 192 {
		t.Fatalf("GBS never grew: %d", prev)
	}
	if prev > 6000 {
		t.Fatalf("GBS exceeded 10%% cap: %d", prev)
	}
}
