package core

import "math"

// gbsController computes the global batch size over time. All workers run
// the same deterministic controller over the (loosely) shared clock, so
// they agree on GBS without extra coordination — the decentralized analog
// of the paper's GBS controller.
type gbsController struct {
	cfg     GBSConfig
	initial int // n·InitialLBS

	cur        int
	lastAdjust float64
	inSpeedup  bool
	frozen     bool
	doubled    bool // schedule mode
}

func newGBSController(cfg GBSConfig, initialGBS int) *gbsController {
	return &gbsController{cfg: cfg, initial: initialGBS, cur: initialGBS}
}

// adopt aligns a joiner's controller with the federation's current GBS
// (carried by the WELCOME) at join time t. In auto mode the adjustment
// clock fast-forwards to the last period boundary so future adjustments
// continue from the adopted value instead of replaying history on top of
// it. Schedule-mode joiners inherit the already-doubled value but track
// their own epoch progress from zero (documented in DESIGN.md §10).
func (g *gbsController) adopt(gbs int, t float64) {
	if gbs <= 0 {
		return
	}
	g.cur = gbs
	if g.cfg.Mode == "auto" && g.cfg.AdjustPeriod > 0 {
		g.lastAdjust = t - math.Mod(t, g.cfg.AdjustPeriod)
		if g.lastAdjust >= g.cfg.WarmupDuration {
			g.inSpeedup = true
		}
	}
}

// GBSAt returns the global batch size at virtual time t given the training
// progress in epochs. It must be called with non-decreasing t.
func (g *gbsController) GBSAt(t float64, epochsDone float64) int {
	switch g.cfg.Mode {
	case "fixed":
		return g.cur
	case "schedule":
		// Figure 5 exploration: double once, at the configured epoch.
		if !g.doubled && epochsDone >= g.cfg.DoubleAtEpoch {
			g.cur *= 2
			g.doubled = true
		}
		return g.cur
	case "auto":
		return g.autoAt(t)
	default:
		return g.cur
	}
}

func (g *gbsController) autoAt(t float64) int {
	if g.frozen {
		return g.cur
	}
	for t-g.lastAdjust >= g.cfg.AdjustPeriod {
		g.lastAdjust += g.cfg.AdjustPeriod
		if !g.inSpeedup && g.lastAdjust >= g.cfg.WarmupDuration {
			g.inSpeedup = true
		}
		if !g.inSpeedup {
			// warm-up: arithmetic progression, capped at 1% of |train|
			add := g.cfg.WarmupAdd
			if add == 0 {
				add = g.initial
			}
			next := g.cur + add
			if cap := int(g.cfg.WarmupCapFrac * float64(g.cfg.TrainSetSize)); cap > 0 && next > cap {
				// hold at the warm-up cap until speed-up begins
				continue
			}
			g.cur = next
			continue
		}
		// speed-up: geometric progression, capped at 10% of |train|
		next := int(float64(g.cur) * g.cfg.SpeedupFactor)
		if cap := int(g.cfg.SpeedupCapFrac * float64(g.cfg.TrainSetSize)); cap > 0 && next > cap {
			g.frozen = true
			return g.cur
		}
		g.cur = next
	}
	return g.cur
}
