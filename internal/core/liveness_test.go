package core

import (
	"testing"

	"dlion/internal/wire"
)

// Liveness, crash/restart, and rejoin behavior of the worker itself,
// exercised over the fake env (the cluster-level chaos tests cover the
// full simulator integration).

func TestStopFreezesWorker(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)
	ws[1].Stop()
	frozen := ws[1].Iter()
	env.eng.Run(30)
	if !ws[1].Stopped() {
		t.Fatal("worker should report stopped")
	}
	if ws[1].Iter() != frozen {
		t.Fatalf("stopped worker kept iterating: %d -> %d", frozen, ws[1].Iter())
	}
	if ws[0].Iter() < 25 {
		t.Fatalf("async survivor should keep running: %d", ws[0].Iter())
	}
}

func TestStoppedWorkerIgnoresMessages(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	ws[1].Stop()
	before := ws[1].Stats().DKTMerges
	ws[1].HandleMessage(&wire.Message{Type: wire.TypeDKTRequest, From: 0, To: 1})
	if got := ws[1].Stats().MsgsSent; got != 0 {
		t.Fatalf("stopped worker answered a DKT request (%d msgs)", got)
	}
	if ws[1].Stats().DKTMerges != before {
		t.Fatal("stopped worker mutated state on message")
	}
}

func TestResumeRestartsIteration(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)
	ws[1].Stop()
	frozen := ws[1].Iter()
	env.eng.Run(20)
	ws[1].Resume(-1)
	env.eng.Run(40)
	if ws[1].Iter() <= frozen {
		t.Fatalf("resumed worker did not iterate: %d", ws[1].Iter())
	}
	if ws[1].Stopped() {
		t.Fatal("resumed worker still reports stopped")
	}
}

func TestResumeRejoinPullsWeights(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)
	ws[1].Stop()
	env.eng.Run(12)
	ws[1].Resume(0) // rejoin: pull a snapshot from worker 0
	env.eng.Run(20)
	s := ws[1].Stats()
	if s.DKTMerges == 0 {
		t.Fatal("rejoin should have adopted a weight snapshot")
	}
	if ws[0].Stats().DKTWeightsSent == 0 {
		t.Fatal("sync peer never served the rejoin request")
	}
	// the snapshot is adopted outright: replicas match where the rejoiner
	// has not yet trained past it — check a weight actually equals peer's
	// (both trained after, so just assert the transfer happened above)
}

func TestDoubleResumeIsIdempotent(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(5)
	ws[1].Resume(-1) // not stopped: must be a no-op, not a second loop
	env.eng.Run(10)
	// a duplicated iteration loop would show up as roughly double the
	// iteration rate of worker 0
	if ws[1].Iter() > ws[0].Iter()+2 {
		t.Fatalf("Resume on a running worker duplicated its loop: %d vs %d",
			ws[1].Iter(), ws[0].Iter())
	}
}

func TestStaleTimersDieAcrossRestart(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)
	// crash and immediately resume: the pre-crash completeIteration timer
	// is still queued, and must not run alongside the resumed loop
	ws[1].Stop()
	ws[1].Resume(-1)
	env.eng.Run(30)
	if ws[1].Iter() > ws[0].Iter()+3 {
		t.Fatalf("stale pre-crash timer kept firing: %d vs %d",
			ws[1].Iter(), ws[0].Iter())
	}
}

func TestSyncFullUnblocksWhenPeerDies(t *testing.T) {
	cfg := asyncConfig()
	cfg.Sync.Mode = SyncFull
	cfg.LivenessTimeout = 5
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)
	ws[1].Stop()
	env.eng.Run(60)
	// without liveness the survivor would freeze one iteration after the
	// crash; with it, the dead peer expires after 5s and training resumes
	if ws[0].Iter() < 30 {
		t.Fatalf("survivor stuck at %d iterations after peer death", ws[0].Iter())
	}
}

func TestSyncFullStillBlocksWithoutLiveness(t *testing.T) {
	cfg := asyncConfig()
	cfg.Sync.Mode = SyncFull
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)
	atCrash := ws[0].Iter()
	ws[1].Stop()
	env.eng.Run(60)
	if ws[0].Iter() > atCrash+1 {
		t.Fatalf("timeout disabled: survivor should block, ran %d -> %d",
			atCrash, ws[0].Iter())
	}
}

func TestLivePeersTracksSilence(t *testing.T) {
	cfg := asyncConfig()
	cfg.LivenessTimeout = 5
	env := newFakeEnv(3, []float64{1, 1, 1})
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(4)
	if got := len(ws[0].LivePeers()); got != 2 {
		t.Fatalf("all peers chattering, live = %d", got)
	}
	ws[2].Stop()
	env.eng.Run(20)
	live := ws[0].LivePeers()
	if len(live) != 1 || live[0] != 1 {
		t.Fatalf("after worker 2 died, live peers = %v", live)
	}
}

func TestDKTSkipsDeadBestWorker(t *testing.T) {
	cfg := asyncConfig()
	cfg.LivenessTimeout = 5
	cfg.DKT = DKTConfig{Enabled: true, Period: 5, Lambda: 0.75, LossWindow: 5}
	env := newFakeEnv(3, []float64{1, 1, 1})
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	// plant a stale, unbeatably good loss report from worker 2, then kill it
	env.eng.Run(3)
	ws[0].HandleMessage(&wire.Message{Type: wire.TypeLossReport, From: 2, To: 0, Loss: 1e-9})
	ws[2].Stop()
	env.eng.Run(40)
	// worker 0 must not be stuck requesting weights from the dead worker 2:
	// its merges should come from worker 1 instead, so some merges landed
	if ws[2].Stats().DKTWeightsSent != 0 {
		t.Fatal("dead worker served DKT")
	}
	if ws[0].Stats().DKTMerges == 0 {
		t.Fatal("worker 0 starved: kept electing the dead peer as best")
	}
}
