package core

import (
	"math"
	"testing"
)

func TestComputeRCPFromCleanProfile(t *testing.T) {
	// seconds = 0.1 + 0.05·batch  =>  RCP = 20 samples/sec
	x := []float64{16, 32, 64, 128}
	y := make([]float64, len(x))
	for i, b := range x {
		y[i] = 0.1 + 0.05*b
	}
	got := computeRCP(x, y)
	if math.Abs(got-20) > 1e-9 {
		t.Fatalf("RCP = %v, want 20", got)
	}
}

func TestComputeRCPProportionalToCapacity(t *testing.T) {
	// A 4x faster worker must have 4x the RCP.
	mk := func(capacity float64) float64 {
		x := []float64{16, 32, 64, 128}
		y := make([]float64, len(x))
		for i, b := range x {
			y[i] = 0.05 + 2.0*b/capacity
		}
		return computeRCP(x, y)
	}
	r24, r6 := mk(24), mk(6)
	if math.Abs(r24/r6-4) > 1e-6 {
		t.Fatalf("RCP ratio %v, want 4", r24/r6)
	}
}

func TestComputeRCPDegenerateFallback(t *testing.T) {
	// constant batch sizes -> regression degenerate -> throughput fallback
	got := computeRCP([]float64{32, 32, 32}, []float64{2, 2, 2})
	if got != 16 {
		t.Fatalf("fallback RCP = %v, want 32/2", got)
	}
	// completely empty
	if got := computeRCP(nil, nil); got != 1 {
		t.Fatalf("empty RCP = %v, want 1", got)
	}
	// negative slope (noise dominated): fallback
	got = computeRCP([]float64{10, 20}, []float64{5, 1})
	if got != 20.0/1.0 {
		t.Fatalf("negative slope RCP = %v", got)
	}
}

func TestLBSSharesEqualCapacity(t *testing.T) {
	rcp := map[int]float64{0: 10, 1: 10, 2: 10}
	shares := lbsShares(96, 3, rcp, 1)
	total := 0
	for i, s := range shares {
		if s != 32 {
			t.Fatalf("worker %d share %d, want 32", i, s)
		}
		total += s
	}
	if total != 96 {
		t.Fatalf("sum %d", total)
	}
}

func TestLBSSharesProportional(t *testing.T) {
	// cores 24/12/6/6 at GBS 192: shares 96/48/24/24
	rcp := map[int]float64{0: 24, 1: 12, 2: 6, 3: 6}
	shares := lbsShares(192, 4, rcp, 1)
	want := []int{96, 48, 24, 24}
	for i := range want {
		if shares[i] != want[i] {
			t.Fatalf("shares %v, want %v", shares, want)
		}
	}
}

func TestLBSSharesSumTracksGBS(t *testing.T) {
	rcp := map[int]float64{0: 7, 1: 13, 2: 29, 3: 3, 4: 17, 5: 11}
	for _, gbs := range []int{50, 192, 1000, 777} {
		shares := lbsShares(gbs, 6, rcp, 1)
		sum := 0
		for _, s := range shares {
			sum += s
		}
		if sum < gbs || sum > gbs+6 {
			t.Fatalf("GBS %d: shares sum %d", gbs, sum)
		}
	}
}

func TestLBSSharesMinFloor(t *testing.T) {
	rcp := map[int]float64{0: 1000, 1: 1}
	shares := lbsShares(64, 2, rcp, 4)
	if shares[1] < 4 {
		t.Fatalf("floor violated: %v", shares)
	}
}

func TestLBSSharesColdStart(t *testing.T) {
	// no reports at all: even split
	shares := lbsShares(60, 6, map[int]float64{}, 1)
	for _, s := range shares {
		if s != 10 {
			t.Fatalf("cold start shares %v", shares)
		}
	}
	// partial reports: unknown workers get the mean of known
	shares = lbsShares(90, 3, map[int]float64{0: 10, 1: 20}, 1)
	// filled: 10, 20, 15 -> 20, 40, 30
	if shares[0] != 20 || shares[1] != 40 || shares[2] != 30 {
		t.Fatalf("partial shares %v", shares)
	}
}

func TestProfileBatchesLadder(t *testing.T) {
	b := profileBatches(32)
	if len(b) != 4 || b[0] != 16 || b[3] != 128 {
		t.Fatalf("ladder %v", b)
	}
	b = profileBatches(1)
	for _, v := range b {
		if v < 1 {
			t.Fatalf("ladder has non-positive batch: %v", b)
		}
	}
}
