package core

import (
	"dlion/internal/tensor"
	"dlion/internal/wire"
)

// dktDecisionDelay is how long a worker waits after broadcasting its loss
// before electing the best worker, giving the (tiny) loss reports time to
// arrive. Loss reports are a few dozen bytes, so this is comfortably above
// any link's delivery time while staying well below the DKT period.
const dktDecisionDelay = 1.0

// maybeDKT runs the model synchronization module of Figure 10: every
// DKT.Period iterations the worker broadcasts its average recent loss,
// then (after a short collection delay) sends a DKT request to the worker
// with the smallest loss, which responds with its weights (§3.4).
func (w *Worker) maybeDKT() {
	if !w.cfg.DKT.Enabled || w.iter-w.lastDKTIter < w.cfg.DKT.Period {
		return
	}
	w.lastDKTIter = w.iter
	avg := w.AvgRecentLoss()
	for _, p := range w.livePeers() {
		w.send(&wire.Message{Type: wire.TypeLossReport, From: int32(w.ID),
			To: int32(p), Iter: w.iter, Loss: avg})
	}
	w.after(dktDecisionDelay, w.decideDKT)
}

// decideDKT elects the best worker from the latest loss reports and pulls
// its weights. In the Best2all default every worker that is not the best
// requests the transfer; in the Best2worst variant only the worst does.
// Loss reports from peers that have since gone silent past the liveness
// timeout are expired first — electing a dead peer as "best" would stall
// the transfer forever.
func (w *Worker) decideDKT() {
	for p := range w.peerLoss {
		if !w.peerLive(p) {
			delete(w.peerLoss, p)
		}
	}
	myLoss := w.AvgRecentLoss()
	best, bestLoss := w.ID, myLoss
	worst, worstLoss := w.ID, myLoss
	for p, l := range w.peerLoss {
		if l < bestLoss {
			best, bestLoss = p, l
		}
		if l > worstLoss {
			worst, worstLoss = p, l
		}
	}
	if best == w.ID {
		return // others will pull from us
	}
	if w.cfg.DKT.Best2Worst && worst != w.ID {
		return // only the worst worker pulls in this variant
	}
	w.send(&wire.Message{Type: wire.TypeDKTRequest, From: int32(w.ID),
		To: int32(best), Iter: w.iter})
}

// cloneWeights snapshots the local model — the payload of DKT transfers
// and membership WELCOMEs.
func (w *Worker) cloneWeights() map[string]*tensor.Tensor {
	weights := make(map[string]*tensor.Tensor)
	for _, p := range w.model.Params() {
		weights[p.Name] = p.W.Clone()
	}
	return weights
}

// sendWeights answers a DKT request with a full copy of the local model.
func (w *Worker) sendWeights(to int) {
	w.stats.DKTWeightsSent++
	w.send(&wire.Message{Type: wire.TypeWeights, From: int32(w.ID),
		To: int32(to), Iter: w.iter, Weights: w.cloneWeights()})
}
