package core

import (
	"testing"

	"dlion/internal/grad"
	"dlion/internal/wire"
)

// modelDenseBytes computes the full dense f32 exchange size of the test
// model — the auto policy's reference point.
func modelDenseBytes(w *Worker) int {
	totals := []int{}
	for _, p := range w.model.Params() {
		totals = append(totals, p.G.Len())
	}
	return grad.DenseBytes(totals)
}

// TestQuantFixedPrecision: with a fixed int8 configuration every gradient
// selection leaves quantized, the savings counter advances, and training
// still progresses.
func TestQuantFixedPrecision(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	cfg := asyncConfig()
	cfg.Quant = QuantConfig{Precision: grad.PrecI8}
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)

	if ws[0].Iter() < 5 {
		t.Fatalf("worker 0 made only %d iterations", ws[0].Iter())
	}
	if ws[0].LastPrecision(1) != grad.PrecI8 {
		t.Fatalf("link precision %v, want int8", ws[0].LastPrecision(1))
	}
	saved := ws[0].Stats().QuantBytesSaved
	if saved <= 0 {
		t.Fatal("QuantBytesSaved did not advance")
	}
	// Full selector + int8: savings are 3 bytes per value sent.
	if want := 3 * ws[0].Stats().GradValuesSent; saved != want {
		t.Fatalf("saved %d bytes, want %d (3B per value)", saved, want)
	}
	quantFrames := 0
	for _, m := range env.sent {
		if m.Type != wire.TypeGradient {
			continue
		}
		for _, s := range m.Selections {
			if s.Prec != grad.PrecI8 || s.Q8 == nil {
				t.Fatalf("unquantized selection %q left worker %d", s.Var, m.From)
			}
			quantFrames++
		}
	}
	if quantFrames == 0 {
		t.Fatal("no quantized selections on the wire")
	}
}

// TestQuantAutoPrecision pins the auto policy's thresholds: budget >= full
// dense f32 keeps f32, half budget drops to f16, anything lower to int8.
func TestQuantAutoPrecision(t *testing.T) {
	run := func(bwMbps float64) grad.Precision {
		env := newFakeEnv(2, []float64{1, 1})
		env.bw = bwMbps
		cfg := asyncConfig()
		cfg.LinkBudget = true
		cfg.Quant = QuantConfig{Auto: true}
		ws := buildCluster(t, cfg, env)
		for _, w := range ws {
			w.Start()
		}
		env.eng.Run(4)
		return ws[0].LastPrecision(1)
	}

	// The test model's full dense exchange is ~400 KB; per-link budget is
	// bw·1e6/8 · iterSec(=1) with fan-out 1.
	env := newFakeEnv(2, []float64{1, 1})
	full := modelDenseBytes(buildCluster(t, asyncConfig(), env)[0])

	f32BW := float64(full+1000) * 8 / 1e6      // budget just above full
	f16BW := float64(full) / 2 * 1.2 * 8 / 1e6 // between full/2 and full
	i8BW := float64(full) / 4 * 8 / 1e6        // below full/2
	if got := run(f32BW); got != grad.PrecF32 {
		t.Fatalf("ample budget chose %v, want f32", got)
	}
	if got := run(f16BW); got != grad.PrecF16 {
		t.Fatalf("half budget chose %v, want f16", got)
	}
	if got := run(i8BW); got != grad.PrecI8 {
		t.Fatalf("tight budget chose %v, want int8", got)
	}
}

// TestQuantPeerMaskClamp: the sender clamps its chosen precision by the
// accept mask the peer advertised — int8 falls back to f16 for a peer that
// only negotiated f16, and to f32 for a peer accepting nothing reduced.
func TestQuantPeerMaskClamp(t *testing.T) {
	env := newFakeEnv(3, []float64{1, 1, 1})
	cfg := asyncConfig()
	cfg.Quant = QuantConfig{Precision: grad.PrecI8}
	ws := buildCluster(t, cfg, env)
	// As if peers had advertised these masks during a handshake.
	ws[0].peerQuant[1] = grad.MaskF16
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(5)

	if got := ws[0].LastPrecision(1); got != grad.PrecF16 {
		t.Fatalf("f16-only peer got %v", got)
	}
	if got := ws[0].LastPrecision(2); got != grad.PrecI8 {
		t.Fatalf("unconstrained peer got %v, want int8", got)
	}
	if got := ws[0].PeerAcceptMask(2); got != grad.MaskAll {
		t.Fatalf("never-handshaken peer mask %v, want accept-all", got)
	}
}

// TestQuantMaskPropagatesThroughJoin: a joiner advertising a restricted
// accept mask in its HELLO is never sent int8 by the sponsor, and the
// joiner learns the sponsor's mask from the WELCOME.
func TestQuantMaskPropagatesThroughJoin(t *testing.T) {
	env := newFakeEnv(3, []float64{1, 1, 1})
	founder := asyncConfig()
	founder.Quant = QuantConfig{Precision: grad.PrecI8}
	founder.Membership.InitialMembers = []int{0, 1}
	joiner := asyncConfig()
	joiner.Quant = QuantConfig{Precision: grad.PrecI8, Accept: grad.MaskF16}
	joiner.Membership = MembershipConfig{Join: true, Sponsor: 0}
	ws := buildClusterCfgs(t, []Config{founder, founder, joiner}, env)
	ws[0].Start()
	ws[1].Start()
	env.eng.Run(3)
	ws[2].Start()
	env.eng.Run(10)

	if ws[2].State() != StateActive {
		t.Fatalf("joiner state %v", ws[2].State())
	}
	if got := ws[0].PeerAcceptMask(2); got != grad.MaskF16 {
		t.Fatalf("sponsor learned mask %v, want f16-only", got)
	}
	if got := ws[0].LastPrecision(2); got != grad.PrecF16 {
		t.Fatalf("sponsor sent joiner %v, want f16", got)
	}
	// The joiner learned the sponsor's (default accept-all) mask and may
	// keep sending int8.
	if got := ws[2].LastPrecision(0); got != grad.PrecI8 {
		t.Fatalf("joiner sent sponsor %v, want int8", got)
	}
}

// TestQuantConfigValidation covers the new rejection cases.
func TestQuantConfigValidation(t *testing.T) {
	cases := map[string]func(*Config){
		"bad precision":   func(c *Config) { c.Quant.Precision = 9 },
		"auto w/o budget": func(c *Config) { c.Quant.Auto = true },
		"bad mask":        func(c *Config) { c.Quant.Accept = 0x7f },
	}
	for name, mutate := range cases {
		c := asyncConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", name)
		}
	}
	ok := asyncConfig()
	ok.LinkBudget = true
	ok.Quant = QuantConfig{Auto: true, Accept: grad.MaskAll}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid quant config rejected: %v", err)
	}
}
