package core

import (
	"dlion/internal/grad"
	"dlion/internal/wire"
)

// exchangeGradients runs the partial gradients generation module of Figure
// 10: for each peer it asks the network resource monitor for the link's
// available bandwidth, derives the per-link byte budget of the transmission
// speed assurance module (§3.3), runs the configured selector, and sends
// the result. The budget is
//
//	maxBytes = BW_net_j / Iter_com_i = BW_bytes_per_sec · iterSeconds_i
//
// i.e. the bytes the link can absorb during one of this worker's
// iterations, exactly the paper's formula with Iter_com_i = 1/iterSeconds.
// Exchange targets only live peers: gradients serialized toward a dead
// peer would waste shared egress bandwidth, and the fan-out divisor of the
// byte budget shrinks with the live set so surviving links get the freed
// share.
// selCacheEntry is one per-iteration selection-cache slot (see
// exchangeGradients): the selection and quantization outcome for every link
// sharing a (selector budget, precision) pair this iteration.
type selCacheEntry struct {
	selBudget int
	prec      grad.Precision
	sels      []*grad.Selection
	saved     int // quantization bytes saved, re-counted per link
	count     int // grad.TotalCount(sels), cached alongside
}

func (w *Worker) exchangeGradients() {
	params := w.model.Params()
	peers := w.livePeers()
	quantOn := w.cfg.Quant.Auto || w.cfg.Quant.Precision != grad.PrecF32
	fullDense := 0
	if w.cfg.Quant.Auto {
		totals := make([]int, len(params))
		for i, p := range params {
			totals[i] = p.G.Len()
		}
		fullDense = grad.DenseBytes(totals)
	}
	// With a LinkInvariant selector (MaxN, Full), links that resolve to the
	// same (budget, precision) receive the same Selection set, so it is
	// computed once and shared across their messages. Under a uniform or
	// per-worker-egress network every peer hits one cache slot, and a
	// hierarchical federation hits one slot per tier (LAN, WAN) — the
	// selection cost per iteration drops from O(n·model) to
	// O(tiers·model), which is what makes 1000-worker federations
	// simulable (DESIGN.md §14). Receivers and encoders treat Selections
	// as read-only, so sharing is safe on both substrates, and a cached
	// result is bit-identical to a recomputation by definition of
	// LinkInvariant — seeded runs are unchanged by the cache.
	w.selCache = w.selCache[:0]
	for _, p := range peers {
		budget := 0
		if w.cfg.LinkBudget {
			// The worker transmits to all n-1 peers concurrently over a
			// shared egress, so each link's effective share of
			// BW_net_j/Iter_com_i is divided by the fan-out; the payload
			// budget additionally shrinks by the wire inflation factor.
			bwBytes := w.env.Bandwidth(w.ID, p) * 1e6 / 8
			budget = int(bwBytes * w.iterSec / (float64(len(peers)) * w.env.SendScale()))
			if budget < 64 {
				budget = 64
			}
		}
		prec := grad.PrecF32
		selBudget := budget
		if quantOn {
			prec = w.linkPrecision(p, budget, fullDense)
			if prec != grad.PrecF32 {
				// The selector thinks in f32 byte costs; a reduced-precision
				// payload fits more values per budget byte, so the budget it
				// sees is inflated by the entry-cost ratio.
				selBudget = int(float64(budget) * grad.BudgetInflation(prec))
			}
		}
		w.lastPrec[p] = prec

		var entry *selCacheEntry
		if w.selInvariant {
			for i := range w.selCache {
				if w.selCache[i].selBudget == selBudget && w.selCache[i].prec == prec {
					entry = &w.selCache[i]
					break
				}
			}
		}
		if entry == nil {
			sels := w.selector.Select(p, params, selBudget)
			saved := 0
			if prec != grad.PrecF32 {
				saved = grad.QuantizeAll(sels, prec)
			}
			w.selCache = append(w.selCache, selCacheEntry{
				selBudget: selBudget, prec: prec, sels: sels,
				saved: saved, count: grad.TotalCount(sels)})
			entry = &w.selCache[len(w.selCache)-1]
		}
		if entry.saved > 0 {
			// Byte savings are per transmission: every link sending this
			// payload avoids the same dense-f32 overshoot.
			w.stats.QuantBytesSaved += int64(entry.saved)
			w.obs.AddQuantSaved(entry.saved)
		}
		w.lastBudget[p] = budget
		w.lastSelCount[p] = entry.count
		w.stats.GradValuesSent += int64(entry.count)
		w.stats.GradMsgsSent++
		if len(entry.sels) == 0 {
			// Nothing significant to send (e.g. Gaia below threshold). The
			// peer's sync bookkeeping still needs the iteration signal.
			w.send(&wire.Message{Type: wire.TypeGradient, From: int32(w.ID),
				To: int32(p), Iter: w.iter, LBS: int32(w.lbs)})
			continue
		}
		w.send(&wire.Message{Type: wire.TypeGradient, From: int32(w.ID),
			To: int32(p), Iter: w.iter, LBS: int32(w.lbs), Selections: entry.sels})
	}
	// Drop the Selection references: the messages own them now, and a
	// retained cache would keep the previous iteration's gradients alive.
	for i := range w.selCache {
		w.selCache[i] = selCacheEntry{}
	}
}

// linkPrecision picks the wire precision for the link to peer p: the fixed
// configured precision, or — in auto mode — the cheapest precision whose
// loss is justified by the link's byte budget relative to a full dense f32
// exchange (f32 when the budget covers it, f16 at half, int8 below). The
// result is clamped by the peer's advertised accept mask, so a sender never
// emits a precision its receiver did not negotiate for.
func (w *Worker) linkPrecision(p, budget, fullDense int) grad.Precision {
	prec := w.cfg.Quant.Precision
	if w.cfg.Quant.Auto {
		switch {
		case budget <= 0 || budget >= fullDense:
			prec = grad.PrecF32
		case 2*budget >= fullDense:
			prec = grad.PrecF16
		default:
			prec = grad.PrecI8
		}
	}
	return w.PeerAcceptMask(p).Clamp(prec)
}

// applyRemoteGradient is the model update module: apply a peer's partial
// gradients to the local model with the dynamic batching weight
// db_j^k = LBS_j / LBS_k of Eq. 7 (clamped for stability; see DESIGN.md).
func (w *Worker) applyRemoteGradient(m *wire.Message) {
	if len(m.Selections) == 0 {
		return
	}
	db := 1.0
	if w.cfg.Batch.WeightedUpdate && m.LBS > 0 && w.lbs > 0 {
		db = float64(m.LBS) / float64(w.lbs)
		if maxDB := w.cfg.Batch.DBClampMax; maxDB > 1 {
			if db > maxDB {
				db = maxDB
			}
			if db < 1/maxDB {
				db = 1 / maxDB
			}
		}
	}
	scale := float32(-w.cfg.LearningRate * db / float64(w.clusterSize()))
	for _, sel := range m.Selections {
		p := w.model.Param(sel.Var)
		if p == nil {
			continue // unknown variable: ignore, consistent with a generic queue
		}
		if err := sel.AddTo(p.W.Data, scale); err != nil {
			continue
		}
	}
}
