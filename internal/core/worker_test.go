package core

import (
	"math"
	"testing"

	"dlion/internal/data"
	"dlion/internal/grad"
	"dlion/internal/nn"
	"dlion/internal/simclock"
	"dlion/internal/wire"
)

// fakeEnv implements Env over the DES with fixed per-worker iteration
// times, a fixed bandwidth matrix, and a recorded message log. Delivery is
// immediate unless delay > 0.
type fakeEnv struct {
	eng       *simclock.Engine
	n         int
	workers   []*Worker
	iterSec   []float64
	bw        float64
	delay     float64
	sent      []*wire.Message
	dropTo    map[int]bool // blackholed receivers
	sendScale float64
}

func newFakeEnv(n int, iterSec []float64) *fakeEnv {
	return &fakeEnv{eng: simclock.New(), n: n, iterSec: iterSec, bw: 100,
		dropTo: map[int]bool{}, sendScale: 1}
}

func (e *fakeEnv) Now() float64               { return e.eng.Now() }
func (e *fakeEnv) After(d float64, fn func()) { e.eng.After(d, fn) }
func (e *fakeEnv) NumWorkers() int            { return e.n }
func (e *fakeEnv) SendScale() float64         { return e.sendScale }
func (e *fakeEnv) Bandwidth(from, to int) float64 {
	return e.bw
}
func (e *fakeEnv) IterSeconds(w, batch int) float64 { return e.iterSec[w] }
func (e *fakeEnv) ProfileCompute(w int, batches []int) (x, y []float64) {
	for _, b := range batches {
		x = append(x, float64(b))
		// per-sample cost inversely proportional to speed (1/iterSec)
		y = append(y, 0.01+e.iterSec[w]*float64(b)/32)
	}
	return x, y
}
func (e *fakeEnv) Send(from, to int, m *wire.Message) {
	e.sent = append(e.sent, m)
	if e.dropTo[to] {
		return
	}
	e.eng.At(e.eng.Now()+e.delay, func() { e.workers[to].HandleMessage(m) })
}

// buildCluster creates n workers over a tiny model and dataset.
func buildCluster(t *testing.T, cfg Config, env *fakeEnv) []*Worker {
	t.Helper()
	dc := data.Config{Name: "t", NumClasses: 3, Train: 120, Test: 30,
		Channels: 1, Height: 8, Width: 8, Noise: 0.3, Jitter: 0, Bumps: 3, Seed: 4}
	tr, _, err := data.Generate(dc)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.Partition(tr, env.n, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := nn.CipherSpec(1, 8, 8, 3, 77)
	ws := make([]*Worker, env.n)
	for i := range ws {
		w, err := New(i, cfg, spec.Build(), shards[i], env)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	env.workers = ws
	return ws
}

func asyncConfig() Config {
	return Config{Name: "t", LearningRate: 0.05,
		NewSelector: func() grad.Selector { return grad.Full{} },
		Batch:       core0Batch(),
		Sync:        SyncConfig{Mode: SyncAsync}}
}

func core0Batch() BatchConfig { return BatchConfig{InitialLBS: 8} }

func TestValidateConfig(t *testing.T) {
	cases := map[string]func(*Config){
		"nil selector": func(c *Config) { c.NewSelector = nil },
		"bad lr":       func(c *Config) { c.LearningRate = 0 },
		"bad lbs":      func(c *Config) { c.Batch.InitialLBS = 0 },
		"bad lambda":   func(c *Config) { c.DKT = DKTConfig{Enabled: true, Period: 10, Lambda: 2} },
		"bad period":   func(c *Config) { c.DKT = DKTConfig{Enabled: true, Period: 0, Lambda: 0.5} },
		"bad staleness": func(c *Config) {
			c.Sync = SyncConfig{Mode: SyncBounded, Staleness: 0}
		},
	}
	for name, mutate := range cases {
		c := asyncConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", name)
		}
	}
	good := asyncConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestAsyncWorkersIterateIndependently(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 4}) // worker 1 is 4x slower
	ws := buildCluster(t, asyncConfig(), env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(20)
	if ws[0].Iter() < 15 || ws[1].Iter() > 6 {
		t.Fatalf("iters %d/%d; async should let fast worker run ahead",
			ws[0].Iter(), ws[1].Iter())
	}
}

func TestSyncFullLockstep(t *testing.T) {
	cfg := asyncConfig()
	cfg.Sync.Mode = SyncFull
	env := newFakeEnv(2, []float64{1, 4})
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(20)
	d := ws[0].Iter() - ws[1].Iter()
	if d < -1 || d > 1 {
		t.Fatalf("sync mode out of lockstep: %d vs %d", ws[0].Iter(), ws[1].Iter())
	}
	if ws[0].Iter() < 4 {
		t.Fatalf("sync cluster barely progressed: %d", ws[0].Iter())
	}
}

func TestSyncFullBlocksOnDeadPeer(t *testing.T) {
	cfg := asyncConfig()
	cfg.Sync.Mode = SyncFull
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, cfg, env)
	env.dropTo[0] = true // worker 0 never receives worker 1's gradients
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(50)
	if ws[0].Iter() > 1 {
		t.Fatalf("worker 0 should be blocked after iter 1, got %d", ws[0].Iter())
	}
}

func TestBoundedStalenessSkipsStragglerUpToBound(t *testing.T) {
	cfg := asyncConfig()
	cfg.Sync = SyncConfig{Mode: SyncBounded, BackupWorkers: 1, Staleness: 5}
	env := newFakeEnv(3, []float64{1, 1, 50}) // worker 2 is a hard straggler
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(60)
	// workers 0/1 proceed without worker 2 (backup=1) but stay within
	// staleness of it: worker 2 completed 1 iteration by t=50
	if ws[0].Iter() < 5 {
		t.Fatalf("bounded worker too slow: %d", ws[0].Iter())
	}
	// the bound is enforced when *starting* an iteration, so the lead can
	// reach staleness+1 on completion
	if ws[0].Iter() > ws[2].Iter()+6 {
		t.Fatalf("staleness bound violated: %d vs %d", ws[0].Iter(), ws[2].Iter())
	}
}

func TestGradientExchangeUpdatesPeers(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	before := ws[1].Model().Param("fc2/b").W.Clone()
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(5)
	after := ws[1].Model().Param("fc2/b").W
	same := true
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("peer model unchanged; gradient exchange broken")
	}
	// gradient messages must carry sender's LBS
	found := false
	for _, m := range env.sent {
		if m.Type == wire.TypeGradient && m.LBS == 8 {
			found = true
		}
	}
	if !found {
		t.Fatal("no gradient message with LBS seen")
	}
}

func TestWeightedUpdateScalesWithLBS(t *testing.T) {
	// Two identical workers; worker 0 receives the same gradient message
	// with different sender LBS; larger LBS must produce a larger step.
	mkWorker := func() *Worker {
		env := newFakeEnv(2, []float64{1, 1})
		cfg := asyncConfig()
		cfg.Batch.WeightedUpdate = true
		ws := buildCluster(t, cfg, env)
		return ws[0]
	}
	step := func(senderLBS int32) float64 {
		w := mkWorker()
		p := w.Model().Param("fc2/b")
		before := p.W.Clone()
		sel := &grad.Selection{Var: "fc2/b", Total: p.W.Len(),
			Idx: []int32{0}, Val: []float32{1}}
		w.HandleMessage(&wire.Message{Type: wire.TypeGradient, From: 1, To: 0,
			Iter: 1, LBS: senderLBS, Selections: []*grad.Selection{sel}})
		return math.Abs(float64(p.W.Data[0] - before.Data[0]))
	}
	small, large := step(8), step(32)
	if large <= small {
		t.Fatalf("db weighting missing: step %v for LBS32 vs %v for LBS8", large, small)
	}
	if math.Abs(large/small-4) > 1e-6 {
		t.Fatalf("db ratio %v, want 4", large/small)
	}
}

func TestWeightedUpdateClamped(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	cfg := asyncConfig()
	cfg.Batch.WeightedUpdate = true
	cfg.Batch.DBClampMax = 4
	ws := buildCluster(t, cfg, env)
	w := ws[0]
	p := w.Model().Param("fc2/b")
	before := p.W.Data[0]
	sel := &grad.Selection{Var: "fc2/b", Total: p.W.Len(), Idx: []int32{0}, Val: []float32{1}}
	w.HandleMessage(&wire.Message{Type: wire.TypeGradient, From: 1, To: 0,
		Iter: 1, LBS: 8000, Selections: []*grad.Selection{sel}})
	got := math.Abs(float64(p.W.Data[0] - before))
	want := 0.05 * 4 / 2 // lr·clamp/n
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("clamped step %v, want %v", got, want)
	}
}

func TestRCPReportsDriveLBS(t *testing.T) {
	cfg := asyncConfig()
	cfg.Batch.DynamicBatching = true
	cfg.Batch.GBS = GBSConfig{Mode: "fixed"}
	env := newFakeEnv(2, []float64{1, 3}) // worker 0 is 3x faster
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)
	if ws[0].LBS() <= ws[1].LBS() {
		t.Fatalf("faster worker should get larger LBS: %d vs %d",
			ws[0].LBS(), ws[1].LBS())
	}
	sum := ws[0].LBS() + ws[1].LBS()
	if sum < 16 || sum > 20 {
		t.Fatalf("LBS sum %d should track GBS 16", sum)
	}
}

func TestDKTBestWorkerSharesWeights(t *testing.T) {
	cfg := asyncConfig()
	cfg.DKT = DKTConfig{Enabled: true, Period: 3, Lambda: 1, LossWindow: 3}
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, cfg, env)
	// Force worker 1 to have a terrible model so worker 0 wins elections.
	for _, p := range ws[1].Model().Params() {
		p.W.Fill(0.5)
	}
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(30)
	merges := ws[0].Stats().DKTMerges + ws[1].Stats().DKTMerges
	sentW := ws[0].Stats().DKTWeightsSent + ws[1].Stats().DKTWeightsSent
	if merges == 0 || sentW == 0 {
		t.Fatalf("DKT inactive: merges=%d weightsSent=%d", merges, sentW)
	}
}

func TestDKTDisabledSendsNoWeights(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(20)
	for _, m := range env.sent {
		if m.Type == wire.TypeWeights || m.Type == wire.TypeLossReport {
			t.Fatalf("unexpected %v message with DKT disabled", m.Type)
		}
	}
}

func TestLinkBudgetPassedToSelector(t *testing.T) {
	cfg := asyncConfig()
	cfg.LinkBudget = true
	cfg.NewSelector = func() grad.Selector { return grad.NewMaxN(100) }
	env := newFakeEnv(2, []float64{1, 1})
	env.bw = 0.1 // starved link
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(6)
	full := ws[0].Model().NumParams()
	got := ws[0].LastSelectedCount(1)
	if got <= 0 || got >= full {
		t.Fatalf("budgeted selection %d of %d; want partial", got, full)
	}
	if ws[0].LastBudget(1) <= 0 {
		t.Fatal("budget not recorded")
	}
}

func TestLinkBudgetScalesWithSendScale(t *testing.T) {
	run := func(scale float64) int {
		cfg := asyncConfig()
		cfg.LinkBudget = true
		cfg.NewSelector = func() grad.Selector { return grad.NewMaxN(100) }
		env := newFakeEnv(2, []float64{1, 1})
		env.bw = 1
		env.sendScale = scale
		ws := buildCluster(t, cfg, env)
		for _, w := range ws {
			w.Start()
		}
		env.eng.Run(4)
		return ws[0].LastBudget(1)
	}
	if b1, b4 := run(1), run(4); b4 >= b1 {
		t.Fatalf("budget must shrink with wire inflation: %d vs %d", b4, b1)
	}
}

func TestWorkerStartTwicePanics(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	ws[0].Start()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	ws[0].Start()
}

func TestStatsAccumulate(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(10)
	s := ws[0].Stats()
	if s.Iters == 0 || s.MsgsSent == 0 || s.BytesSent == 0 || s.SamplesProcessed == 0 {
		t.Fatalf("stats empty: %+v", s)
	}
	if s.SamplesProcessed != s.Iters*8 {
		t.Fatalf("samples %d != iters*8 (%d)", s.SamplesProcessed, s.Iters*8)
	}
}

func TestAvgRecentLossInfBeforeTraining(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	if ws[0].AvgRecentLoss() < 1e100 {
		t.Fatal("untrained worker must report +inf-ish loss")
	}
}

func TestUnknownVariableIgnored(t *testing.T) {
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, asyncConfig(), env)
	sel := &grad.Selection{Var: "nope/W", Total: 3, Idx: []int32{0}, Val: []float32{1}}
	// must not panic
	ws[0].HandleMessage(&wire.Message{Type: wire.TypeGradient, From: 1, To: 0,
		Iter: 1, LBS: 8, Selections: []*grad.Selection{sel}})
}

func TestMaxItersStopsTraining(t *testing.T) {
	cfg := asyncConfig()
	cfg.MaxIters = 5
	env := newFakeEnv(2, []float64{1, 1})
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(100) // far more than 5 iterations of headroom
	for i, w := range ws {
		if w.Iter() != 5 {
			t.Fatalf("worker %d ran %d iters, want exactly 5", i, w.Iter())
		}
		// Peers' final-round gradients must still have been applied after the
		// budget was exhausted: each worker hears 5 rounds from its one peer.
		if got := w.Stats().MsgsRecvd; got != 5 {
			t.Fatalf("worker %d received %d msgs, want 5", i, got)
		}
	}
}

func TestMaxItersSyncFull(t *testing.T) {
	cfg := asyncConfig()
	cfg.Sync.Mode = SyncFull
	cfg.MaxIters = 7
	env := newFakeEnv(2, []float64{1, 3}) // heterogeneous speeds
	ws := buildCluster(t, cfg, env)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(200)
	for i, w := range ws {
		if w.Iter() != 7 {
			t.Fatalf("worker %d ran %d iters, want exactly 7", i, w.Iter())
		}
	}
}

func TestMaxItersValidation(t *testing.T) {
	c := asyncConfig()
	c.MaxIters = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative MaxIters must be rejected")
	}
}
