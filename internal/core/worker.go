package core

import (
	"fmt"

	"dlion/internal/data"
	"dlion/internal/grad"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/wire"
)

// Env abstracts everything outside a worker: the clock, the other workers,
// the network monitor, and the compute cost model. The simulation driver
// (internal/cluster) implements it over the discrete-event engine; a
// real-mode runtime implements it over wall time and the TCP broker.
type Env interface {
	// Now returns the current time in seconds.
	Now() float64
	// After schedules fn to run d seconds from now.
	After(d float64, fn func())
	// NumWorkers returns the cluster size n.
	NumWorkers() int
	// Send delivers m from worker `from` to worker `to`, charging the
	// network model for m's wire size.
	Send(from, to int, m *wire.Message)
	// Bandwidth returns the currently available bandwidth (Mbps) of the
	// link from->to — the network resource monitor of Figure 10.
	Bandwidth(from, to int) float64
	// IterSeconds returns the duration one training iteration over batch
	// samples costs worker w right now.
	IterSeconds(w, batch int) float64
	// ProfileCompute measures iteration seconds at each batch size — the
	// LBS controller's capacity probe.
	ProfileCompute(w int, batches []int) (x, y []float64)
	// SendScale returns how many bytes cross the wire per byte of gradient
	// or weight payload (the simulator inflates scaled-down models to the
	// paper's 5 MB / 17 MB wire sizes; real mode returns 1). The
	// transmission speed assurance module divides its budget by this.
	SendScale() float64
}

// Stats counts a worker's activity.
type Stats struct {
	Iters            int64
	SamplesProcessed int64
	MsgsSent         int64
	MsgsRecvd        int64
	BytesSent        int64
	GradValuesSent   int64
	GradMsgsSent     int64 // gradient messages (the renormalization gate's unit)
	DKTWeightsSent   int64
	DKTMerges        int64
	WelcomesSent     int64 // admission snapshots served as a sponsor
	DegradedIters    int64 // iterations completed below the quorum floor
	QuantBytesSaved  int64 // wire bytes avoided by reduced-precision gradients
}

// Worker is one DLion node. All methods must be invoked from the Env's
// event-loop goroutine; the worker performs real gradient computation but
// charges durations to the Env's clock.
type Worker struct {
	ID int

	cfg      Config
	env      Env
	model    *nn.Model
	shard    *data.Shard
	selector grad.Selector

	iter    int64
	lbs     int
	iterSec float64 // duration charged for the in-flight iteration
	gbs     *gbsController

	rcp       map[int]float64 // latest RCP report per worker (incl. self)
	peerIter  map[int]int64   // highest gradient iteration received per peer
	peerLoss  map[int]float64 // latest loss report per peer
	lastHeard map[int]float64 // last time each peer was heard from (liveness)

	lossWin     []float64
	lastDKTIter int64

	lastSelCount map[int]int // per-peer gradient values sent last iteration
	lastBudget   map[int]int // per-peer byte budget last iteration

	// Per-iteration selection cache (exchange.go). selInvariant is set when
	// the selector implements grad.LinkInvariant; selCache is the reused
	// slot array, cleared at the end of every exchange.
	selInvariant bool
	selCache     []selCacheEntry

	// Per-link precision state (§3.3's precision half; see exchange.go).
	// peerQuant holds the accept masks peers advertised in HELLO/WELCOME;
	// absent peers default to accept-all (static founders never handshake).
	// lastPrec records the precision chosen for each link last iteration.
	peerQuant map[int]grad.PrecMask
	lastPrec  map[int]grad.Precision

	epochSamples float64 // cumulative global samples (GBS summed per iter)
	trainSize    int

	waitingSync bool
	started     bool

	// Ordered-apply discipline (cfg.OrderedApply): peer gradients are held in
	// pendGrad[round][peer] and applied only when their round completes
	// locally, in peer-id order. orderedFlushed is the last round whose peer
	// gradients have all been applied.
	pendGrad       map[int64]map[int]*wire.Message
	orderedFlushed int64

	// Crash/restart lifecycle. A stopped worker ignores messages and its
	// pending timers; gen invalidates timers armed before the last Stop so
	// a resumed worker does not double-run its loops.
	stopped      bool
	gen          int
	aliveFrom    float64 // when this worker (re)started; liveness grace origin
	rejoining    bool    // next weights message is a rejoin snapshot: adopt fully
	recheckArmed bool    // a sync-liveness recheck timer is pending

	// Elastic membership (membership.go). roster is the believed member
	// set including self; members is its sorted cache; epoch counts roster
	// mutations; memLog records them for the renormalization gates.
	state     MemberState
	roster    map[int]bool
	members   []int
	epoch     int64
	memLog    []EpochChange
	joinStart float64 // when the admission handshake began
	joinWait  float64 // current HELLO retry backoff

	stats Stats

	// Observability (nil = disabled, the zero-overhead fast path). The
	// worker charges compute, apply, and recv-wait; the Env charges
	// serialize and send, where those durations are known.
	obs       *obs.WorkerObs
	waitStart float64      // when the current sync block began
	deadSeen  map[int]bool // peers already counted as liveness-expired
}

// New builds a worker. The model must be this worker's own replica; the
// shard its private partition of the training data.
func New(id int, cfg Config, model *nn.Model, shard *data.Shard, env Env) (*Worker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if env.NumWorkers() < 1 {
		return nil, fmt.Errorf("core: empty cluster")
	}
	trainSize := shard.Dataset().Len()
	gcfg := cfg.Batch.GBS
	if gcfg.TrainSetSize == 0 {
		// Default the GBS controller's 1%/10% caps to the actual dataset;
		// experiments running scaled-down data may pin TrainSetSize to the
		// paper's full dataset size so the controller behaves as it would
		// at full scale.
		gcfg.TrainSetSize = trainSize
	}
	w := &Worker{
		ID: id, cfg: cfg, env: env, model: model, shard: shard,
		selector:     cfg.NewSelector(),
		lbs:          cfg.Batch.InitialLBS,
		rcp:          map[int]float64{},
		peerIter:     map[int]int64{},
		peerLoss:     map[int]float64{},
		lastHeard:    map[int]float64{},
		lastSelCount: map[int]int{},
		lastBudget:   map[int]int{},
		peerQuant:    map[int]grad.PrecMask{},
		lastPrec:     map[int]grad.Precision{},
		pendGrad:     map[int64]map[int]*wire.Message{},
		trainSize:    trainSize,
		deadSeen:     map[int]bool{},
	}
	_, w.selInvariant = w.selector.(grad.LinkInvariant)
	if err := w.initMembership(); err != nil {
		return nil, err
	}
	// The initial GBS is n·InitialLBS over the founding roster (a joiner
	// starts at 1·InitialLBS and adopts the federation's GBS on WELCOME).
	w.gbs = newGBSController(gcfg, cfg.Batch.InitialLBS*w.clusterSize())
	return w, nil
}

// Accessors used by drivers, metrics collection and tests.

// Iter returns the number of completed iterations.
func (w *Worker) Iter() int64 { return w.iter }

// LBS returns the current local batch size.
func (w *Worker) LBS() int { return w.lbs }

// GBS returns the current global batch size as this worker computes it.
func (w *Worker) GBS() int { return w.gbs.GBSAt(w.env.Now(), w.epochsDone()) }

// Model returns the worker's model replica.
func (w *Worker) Model() *nn.Model { return w.model }

// Stats returns a copy of the activity counters.
func (w *Worker) Stats() Stats { return w.stats }

// SetObs attaches an observability sink. Call before Start; a nil sink
// (the default) keeps every instrumentation point a no-op.
func (w *Worker) SetObs(o *obs.WorkerObs) { w.obs = o }

// Obs returns the attached observability sink (nil when disabled).
func (w *Worker) Obs() *obs.WorkerObs { return w.obs }

// classOf buckets a message type for per-class byte accounting.
func classOf(t wire.MsgType) obs.MsgClass {
	switch t {
	case wire.TypeGradient:
		return obs.ClassGradient
	case wire.TypeWeights:
		return obs.ClassWeights
	default:
		return obs.ClassControl
	}
}

// LastSelectedCount returns the number of gradient values sent to peer on
// the most recent iteration (Figures 8 and 20).
func (w *Worker) LastSelectedCount(peer int) int { return w.lastSelCount[peer] }

// LastBudget returns the most recent per-link byte budget for peer.
func (w *Worker) LastBudget(peer int) int { return w.lastBudget[peer] }

// LastPrecision returns the wire precision chosen for the link to peer on
// the most recent gradient exchange (PrecF32 before any exchange).
func (w *Worker) LastPrecision(peer int) grad.Precision { return w.lastPrec[peer] }

// PeerAcceptMask returns the reduced-precision accept mask peer advertised
// during membership negotiation; peers that never handshook (static
// founders) default to accept-all.
func (w *Worker) PeerAcceptMask(peer int) grad.PrecMask {
	if m, ok := w.peerQuant[peer]; ok && m != 0 {
		return m
	}
	return grad.MaskAll
}

// AvgRecentLoss returns the mean of the recent-loss window (+Inf before
// any iteration completes, so fresh workers never win best-worker
// elections).
func (w *Worker) AvgRecentLoss() float64 {
	if len(w.lossWin) == 0 {
		return inf
	}
	var s float64
	for _, v := range w.lossWin {
		s += v
	}
	return s / float64(len(w.lossWin))
}

const inf = 1e308

func (w *Worker) epochsDone() float64 {
	return w.epochSamples / float64(w.trainSize)
}

// Start begins a founder's training: the initial capacity profile, the
// periodic re-profiling loop, and the first iteration. A worker configured
// with Membership.Join runs the admission handshake first and starts
// training only once admitted (or once it falls back to solo mode).
func (w *Worker) Start() {
	if w.cfg.Membership.Join {
		w.StartJoin(w.cfg.Membership.Sponsor)
		return
	}
	if w.started {
		panic("core: worker started twice")
	}
	w.started = true
	w.aliveFrom = w.env.Now()
	w.logMembership("seed")
	w.startTraining()
}

// startTraining arms the profiling loop and the first iteration — shared by
// founder start, join admission, and solo fallback.
func (w *Worker) startTraining() {
	if w.cfg.Batch.DynamicBatching {
		w.profileAndBroadcast()
		w.after(w.cfg.Batch.ProfilePeriod, w.profileLoop)
	}
	w.startIteration()
}

// Stop kills the worker, as if its process died: pending timers become
// no-ops and incoming messages are ignored until Resume. The armed-recheck
// flag resets too — the gen bump already voided the pending timer, and a
// stale flag would stop the resumed worker from ever re-arming it.
func (w *Worker) Stop() {
	w.stopped = true
	w.gen++
	w.waitingSync = false
	w.recheckArmed = false
}

// Stopped reports whether the worker is currently stopped (crashed).
func (w *Worker) Stopped() bool { return w.stopped }

// Resume restarts a stopped worker after the harness restored its model
// (e.g. from a checkpoint). syncPeer >= 0 is the rejoin path: the worker
// requests a fresh weight snapshot from that peer and adopts it outright,
// re-syncing state that a possibly-stale checkpoint cannot provide.
// Cross-worker soft state (loss window, liveness clocks) restarts from
// scratch, as it would in a new process.
func (w *Worker) Resume(syncPeer int) {
	if !w.stopped {
		return
	}
	w.stopped = false
	w.aliveFrom = w.env.Now()
	w.lossWin = nil
	w.lastHeard = map[int]float64{}
	w.peerLoss = map[int]float64{}
	w.deadSeen = map[int]bool{}
	w.waitingSync = false
	if syncPeer >= 0 && syncPeer != w.ID {
		w.rejoining = true
		w.send(&wire.Message{Type: wire.TypeDKTRequest, From: int32(w.ID),
			To: int32(syncPeer), Iter: w.iter})
	}
	if w.cfg.Batch.DynamicBatching {
		w.profileAndBroadcast()
		w.after(w.cfg.Batch.ProfilePeriod, w.profileLoop)
	}
	w.startIteration()
}

// after schedules fn like env.After, but arms it to the current lifecycle
// generation: if the worker crashes before the timer fires, the callback is
// a no-op (the process that armed it is gone).
func (w *Worker) after(d float64, fn func()) {
	gen := w.gen
	w.env.After(d, func() {
		if w.stopped || w.gen != gen {
			return
		}
		fn()
	})
}

func (w *Worker) profileLoop() {
	w.profileAndBroadcast()
	w.after(w.cfg.Batch.ProfilePeriod, w.profileLoop)
}

// profileAndBroadcast runs the LBS controller's capacity probe and shares
// the resulting RCP with all peers (§3.2).
func (w *Worker) profileAndBroadcast() {
	x, y := w.env.ProfileCompute(w.ID, profileBatches(w.cfg.Batch.InitialLBS))
	r := computeRCP(x, y)
	w.rcp[w.ID] = r
	for _, p := range w.livePeers() {
		w.send(&wire.Message{Type: wire.TypeRCPReport, From: int32(w.ID), To: int32(p),
			Iter: w.iter, RCP: r})
	}
}

// peers returns the roster members other than self, in id order. Every
// exchange path fans out over this set, so admissions and departures
// renormalize the fan-out the moment the roster mutates.
func (w *Worker) peers() []int {
	out := make([]int, 0, len(w.members)-1)
	for _, id := range w.members {
		if id != w.ID {
			out = append(out, id)
		}
	}
	return out
}

// peerLive reports whether peer p is considered alive: heard from within
// LivenessTimeout, or within the grace period after this worker started.
// With LivenessTimeout <= 0 every peer is always live (the fault-free
// assumption the pre-resilience code made).
func (w *Worker) peerLive(p int) bool {
	if w.cfg.LivenessTimeout <= 0 {
		return true
	}
	last, ok := w.lastHeard[p]
	if !ok {
		last = w.aliveFrom
	}
	return w.env.Now()-last <= w.cfg.LivenessTimeout
}

// livePeers returns the peers currently considered alive, in id order.
func (w *Worker) livePeers() []int {
	peers := w.peers()
	if w.cfg.LivenessTimeout <= 0 {
		return peers
	}
	live := make([]int, 0, len(peers))
	for _, p := range peers {
		if w.peerLive(p) {
			live = append(live, p)
		} else if w.obs != nil && !w.deadSeen[p] {
			// first observation of this peer's liveness expiry
			w.deadSeen[p] = true
			w.obs.IncLivenessExpiry()
		}
	}
	return live
}

// LivePeers exposes the live peer set (drivers and tests).
func (w *Worker) LivePeers() []int { return w.livePeers() }

func (w *Worker) send(m *wire.Message) {
	wb := m.WireBytes()
	w.stats.MsgsSent++
	w.stats.BytesSent += int64(wb)
	w.obs.AddSent(classOf(m.Type), wb)
	w.env.Send(w.ID, int(m.To), m)
}

// currentLBS applies the GBS and LBS controllers (Eq. 5) to decide this
// worker's batch for the next iteration. Shares are computed over the live
// worker set, so the global batch is redistributed — not silently shrunk —
// when peers die: dead workers' RCP entries stop diluting the split.
func (w *Worker) currentLBS() int {
	gbs := w.gbs.GBSAt(w.env.Now(), w.epochsDone())
	if !w.cfg.Batch.DynamicBatching {
		l := gbs / w.clusterSize()
		if l < 1 {
			l = 1
		}
		return l
	}
	// Build the live cohort (self + live roster peers) in id order and remap
	// RCP reports onto compact indices so lbsShares splits GBS among them
	// only.
	ids := make([]int, 0, len(w.members))
	for _, i := range w.members {
		if i == w.ID || w.peerLive(i) {
			ids = append(ids, i)
		}
	}
	me := 0
	rcp := make(map[int]float64, len(ids))
	for k, id := range ids {
		if id == w.ID {
			me = k
		}
		if v, ok := w.rcp[id]; ok {
			rcp[k] = v
		}
	}
	shares := lbsShares(gbs, len(ids), rcp, w.cfg.Batch.MinLBS)
	return shares[me]
}

// startIteration draws a batch, computes gradients against the current
// weights, and schedules completion after the modeled iteration time.
// Gradients live in the model's G buffers until completeIteration; remote
// updates arriving meanwhile modify W only, mirroring a real worker whose
// backward pass uses the weight snapshot it started from.
func (w *Worker) startIteration() {
	if w.cfg.MaxIters > 0 && w.iter >= w.cfg.MaxIters {
		return // iteration budget exhausted; keep servicing messages only
	}
	w.lbs = w.currentLBS()
	x, y := w.shard.NextBatch(w.lbs)
	loss, _ := w.model.TrainStep(x, y)
	w.pushLoss(loss)
	w.iterSec = w.env.IterSeconds(w.ID, w.lbs)
	w.after(w.iterSec, w.completeIteration)
}

func (w *Worker) pushLoss(l float64) {
	w.lossWin = append(w.lossWin, l)
	if len(w.lossWin) > w.cfg.DKT.LossWindow {
		w.lossWin = w.lossWin[1:]
	}
}

// completeIteration applies the local update, exchanges partial gradients,
// runs DKT bookkeeping, and advances (or blocks on) the sync strategy.
func (w *Worker) completeIteration() {
	w.iter++
	w.stats.Iters++
	w.stats.SamplesProcessed += int64(w.lbs)
	w.obs.AddPhase(obs.PhaseCompute, w.iterSec)
	w.epochSamples += float64(w.gbs.GBSAt(w.env.Now(), w.epochsDone()))

	// Local model update: own gradient with db = 1 (Eq. 7, j = k), averaged
	// over the current roster size so departures renormalize the divisor.
	n := float64(w.clusterSize())
	w.model.ApplySGD(w.cfg.LearningRate / n)

	if w.degradedNow() {
		w.stats.DegradedIters++
		w.obs.IncDegradedIter()
	}

	w.exchangeGradients()
	if w.cfg.OrderedApply {
		// The round this worker just completed may already have every peer's
		// gradient buffered; apply them now, before sync evaluation, so the
		// next iteration's backward pass sees them.
		w.flushOrdered()
	}
	if la := w.cfg.Membership.LeaveAfterIters; la > 0 && w.iter >= la {
		// Deterministic graceful departure: the final gradients above drain
		// ahead of the tombstones on the same FIFO links.
		w.Leave()
		return
	}
	w.maybeDKT()
	w.maybeStartNext()
}

// maybeStartNext starts the next iteration if the synchronization strategy
// allows, otherwise blocks until a qualifying gradient arrives — or, with
// liveness tracking on, until the blocking peer is declared dead (a dead
// peer sends no unblocking gradient, so a timer must re-evaluate).
func (w *Worker) maybeStartNext() {
	if w.canProceed() {
		w.waitingSync = false
		w.startIteration()
		return
	}
	w.waitingSync = true
	w.waitStart = w.env.Now()
	w.obs.IncSyncBlock()
	w.armSyncRecheck()
}

// unblockSync ends a sync wait, charging the blocked interval to the
// recv-wait phase.
func (w *Worker) unblockSync() {
	w.waitingSync = false
	w.obs.AddPhase(obs.PhaseRecvWait, w.env.Now()-w.waitStart)
}

func (w *Worker) armSyncRecheck() {
	if w.cfg.LivenessTimeout <= 0 || w.recheckArmed {
		return
	}
	w.recheckArmed = true
	w.after(w.cfg.LivenessTimeout, func() {
		w.recheckArmed = false
		if !w.waitingSync {
			return
		}
		if w.canProceed() {
			w.unblockSync()
			w.startIteration()
			return
		}
		w.armSyncRecheck()
	})
}

// canProceed implements the synch_training strategies (§4.2). Only live
// roster peers participate: a sync or bounded strategy that kept waiting
// for a crashed or departed peer would deadlock the whole cluster, so
// their missing gradients neither block progress nor count toward
// staleness. Below the quorum floor the strategies are bypassed entirely —
// the worker trains on, marking iterations degraded instead of blocking.
func (w *Worker) canProceed() bool {
	if w.degradedNow() {
		return true
	}
	switch w.cfg.Sync.Mode {
	case SyncAsync:
		return true
	case SyncFull:
		for _, p := range w.livePeers() {
			if w.peerIter[p] < w.iter {
				return false
			}
		}
		return true
	case SyncBounded:
		live := w.livePeers()
		if len(live) == 0 {
			return true
		}
		arrived := 0
		minIter := int64(1 << 62)
		for _, p := range live {
			if w.peerIter[p] >= w.iter {
				arrived++
			}
			if w.peerIter[p] < minIter {
				minIter = w.peerIter[p]
			}
		}
		need := len(live) - w.cfg.Sync.BackupWorkers
		if arrived < need {
			return false
		}
		return w.iter-minIter <= int64(w.cfg.Sync.Staleness)
	}
	return true
}

// HandleMessage processes one incoming message. It must be called from the
// Env's event-loop goroutine. A stopped (crashed) worker ignores traffic.
func (w *Worker) HandleMessage(m *wire.Message) {
	if w.stopped {
		return
	}
	from := int(m.From)
	w.stats.MsgsRecvd++
	w.lastHeard[from] = w.env.Now()
	if w.obs != nil {
		w.obs.AddRecv(classOf(m.Type), m.WireBytes())
		delete(w.deadSeen, from) // peer is demonstrably alive again
	}
	switch m.Type {
	case wire.TypeGradient:
		if w.state == StateJoining || w.state == StateSyncing {
			// Not admitted yet: the WELCOME snapshot will supersede the
			// local weights, and the roster-of-one divisor would overweight
			// the update.
			return
		}
		if m.Iter > w.peerIter[from] {
			w.peerIter[from] = m.Iter
		}
		if w.cfg.OrderedApply {
			w.bufferOrdered(m)
			w.flushOrdered()
		} else {
			w.timedApply(func() { w.applyRemoteGradient(m) })
		}
		if w.waitingSync && w.canProceed() {
			w.unblockSync()
			w.startIteration()
		}
	case wire.TypeHello:
		w.handleHello(m)
	case wire.TypeWelcome:
		w.handleWelcome(m)
	case wire.TypeLeave:
		w.handleLeave(m)
	case wire.TypeRCPReport:
		w.rcp[from] = m.RCP
	case wire.TypeLossReport:
		w.peerLoss[from] = m.Loss
	case wire.TypeDKTRequest:
		w.sendWeights(from)
	case wire.TypeWeights:
		if w.rejoining {
			// Rejoin snapshot: adopt the live peer's weights outright — a
			// λ-merge with a stale checkpoint would keep half the staleness.
			if err := w.model.SetWeights(m.Weights); err == nil {
				w.rejoining = false
				w.stats.DKTMerges++
			}
			return
		}
		w.timedApply(func() {
			if err := w.model.MergeWeights(m.Weights, w.cfg.DKT.Lambda); err == nil {
				w.stats.DKTMerges++
			}
		})
	}
}

// bufferOrdered stores a peer gradient for ordered application. Duplicates
// of already-flushed rounds (a FIFO link never produces them, but the codec
// does not forbid them) are dropped rather than double-applied.
func (w *Worker) bufferOrdered(m *wire.Message) {
	r := m.Iter
	if r <= w.orderedFlushed {
		return
	}
	byPeer := w.pendGrad[r]
	if byPeer == nil {
		byPeer = map[int]*wire.Message{}
		w.pendGrad[r] = byPeer
	}
	byPeer[int(m.From)] = m
}

// flushOrdered applies every completed round of buffered peer gradients in
// ascending (round, peer-id) order. A round is complete once this worker has
// finished its own iteration for it (w.iter >= round — the local update for
// round r lands in completeIteration, before peers' r-gradients) and every
// roster peer's gradient has arrived. This makes the total float32 apply
// order — own r, peers' r in id order, own r+1, ... — identical on the
// simulator and the realtime broker, which is what the lineage audit's
// bit-exact replay relies on.
func (w *Worker) flushOrdered() {
	peers := w.peers()
	for r := w.orderedFlushed + 1; r <= w.iter; r++ {
		byPeer := w.pendGrad[r]
		if len(byPeer) < len(peers) {
			return
		}
		for _, p := range peers {
			if byPeer[p] == nil {
				return
			}
		}
		for _, p := range peers {
			m := byPeer[p]
			w.timedApply(func() { w.applyRemoteGradient(m) })
		}
		delete(w.pendGrad, r)
		w.orderedFlushed = r
	}
}

// timedApply runs fn, charging its duration to the apply phase. The clock
// is the Env's, so real mode records wall time while the simulator —
// whose clock does not advance inside an event — records the phase as
// free, consistent with its cost model (see METRICS.md).
func (w *Worker) timedApply(fn func()) {
	if w.obs == nil {
		fn()
		return
	}
	t0 := w.env.Now()
	fn()
	w.obs.AddPhase(obs.PhaseApply, w.env.Now()-t0)
}
