package core

import (
	"fmt"

	"dlion/internal/data"
	"dlion/internal/grad"
	"dlion/internal/nn"
	"dlion/internal/wire"
)

// Env abstracts everything outside a worker: the clock, the other workers,
// the network monitor, and the compute cost model. The simulation driver
// (internal/cluster) implements it over the discrete-event engine; a
// real-mode runtime implements it over wall time and the TCP broker.
type Env interface {
	// Now returns the current time in seconds.
	Now() float64
	// After schedules fn to run d seconds from now.
	After(d float64, fn func())
	// NumWorkers returns the cluster size n.
	NumWorkers() int
	// Send delivers m from worker `from` to worker `to`, charging the
	// network model for m's wire size.
	Send(from, to int, m *wire.Message)
	// Bandwidth returns the currently available bandwidth (Mbps) of the
	// link from->to — the network resource monitor of Figure 10.
	Bandwidth(from, to int) float64
	// IterSeconds returns the duration one training iteration over batch
	// samples costs worker w right now.
	IterSeconds(w, batch int) float64
	// ProfileCompute measures iteration seconds at each batch size — the
	// LBS controller's capacity probe.
	ProfileCompute(w int, batches []int) (x, y []float64)
	// SendScale returns how many bytes cross the wire per byte of gradient
	// or weight payload (the simulator inflates scaled-down models to the
	// paper's 5 MB / 17 MB wire sizes; real mode returns 1). The
	// transmission speed assurance module divides its budget by this.
	SendScale() float64
}

// Stats counts a worker's activity.
type Stats struct {
	Iters            int64
	SamplesProcessed int64
	MsgsSent         int64
	BytesSent        int64
	GradValuesSent   int64
	DKTWeightsSent   int64
	DKTMerges        int64
}

// Worker is one DLion node. All methods must be invoked from the Env's
// event-loop goroutine; the worker performs real gradient computation but
// charges durations to the Env's clock.
type Worker struct {
	ID int

	cfg      Config
	env      Env
	model    *nn.Model
	shard    *data.Shard
	selector grad.Selector

	iter    int64
	lbs     int
	iterSec float64 // duration charged for the in-flight iteration
	gbs     *gbsController

	rcp      map[int]float64 // latest RCP report per worker (incl. self)
	peerIter map[int]int64   // highest gradient iteration received per peer
	peerLoss map[int]float64 // latest loss report per peer

	lossWin     []float64
	lastDKTIter int64

	lastSelCount map[int]int // per-peer gradient values sent last iteration
	lastBudget   map[int]int // per-peer byte budget last iteration

	epochSamples float64 // cumulative global samples (GBS summed per iter)
	trainSize    int

	waitingSync bool
	started     bool

	stats Stats
}

// New builds a worker. The model must be this worker's own replica; the
// shard its private partition of the training data.
func New(id int, cfg Config, model *nn.Model, shard *data.Shard, env Env) (*Worker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if env.NumWorkers() < 1 {
		return nil, fmt.Errorf("core: empty cluster")
	}
	trainSize := shard.Dataset().Len()
	gcfg := cfg.Batch.GBS
	if gcfg.TrainSetSize == 0 {
		// Default the GBS controller's 1%/10% caps to the actual dataset;
		// experiments running scaled-down data may pin TrainSetSize to the
		// paper's full dataset size so the controller behaves as it would
		// at full scale.
		gcfg.TrainSetSize = trainSize
	}
	w := &Worker{
		ID: id, cfg: cfg, env: env, model: model, shard: shard,
		selector:     cfg.NewSelector(),
		lbs:          cfg.Batch.InitialLBS,
		gbs:          newGBSController(gcfg, cfg.Batch.InitialLBS*env.NumWorkers()),
		rcp:          map[int]float64{},
		peerIter:     map[int]int64{},
		peerLoss:     map[int]float64{},
		lastSelCount: map[int]int{},
		lastBudget:   map[int]int{},
		trainSize:    trainSize,
	}
	return w, nil
}

// Accessors used by drivers, metrics collection and tests.

// Iter returns the number of completed iterations.
func (w *Worker) Iter() int64 { return w.iter }

// LBS returns the current local batch size.
func (w *Worker) LBS() int { return w.lbs }

// GBS returns the current global batch size as this worker computes it.
func (w *Worker) GBS() int { return w.gbs.GBSAt(w.env.Now(), w.epochsDone()) }

// Model returns the worker's model replica.
func (w *Worker) Model() *nn.Model { return w.model }

// Stats returns a copy of the activity counters.
func (w *Worker) Stats() Stats { return w.stats }

// LastSelectedCount returns the number of gradient values sent to peer on
// the most recent iteration (Figures 8 and 20).
func (w *Worker) LastSelectedCount(peer int) int { return w.lastSelCount[peer] }

// LastBudget returns the most recent per-link byte budget for peer.
func (w *Worker) LastBudget(peer int) int { return w.lastBudget[peer] }

// AvgRecentLoss returns the mean of the recent-loss window (+Inf before
// any iteration completes, so fresh workers never win best-worker
// elections).
func (w *Worker) AvgRecentLoss() float64 {
	if len(w.lossWin) == 0 {
		return inf
	}
	var s float64
	for _, v := range w.lossWin {
		s += v
	}
	return s / float64(len(w.lossWin))
}

const inf = 1e308

func (w *Worker) epochsDone() float64 {
	return w.epochSamples / float64(w.trainSize)
}

// Start begins training: the initial capacity profile, the periodic
// re-profiling loop, and the first iteration.
func (w *Worker) Start() {
	if w.started {
		panic("core: worker started twice")
	}
	w.started = true
	if w.cfg.Batch.DynamicBatching {
		w.profileAndBroadcast()
		w.env.After(w.cfg.Batch.ProfilePeriod, w.profileLoop)
	}
	w.startIteration()
}

func (w *Worker) profileLoop() {
	w.profileAndBroadcast()
	w.env.After(w.cfg.Batch.ProfilePeriod, w.profileLoop)
}

// profileAndBroadcast runs the LBS controller's capacity probe and shares
// the resulting RCP with all peers (§3.2).
func (w *Worker) profileAndBroadcast() {
	x, y := w.env.ProfileCompute(w.ID, profileBatches(w.cfg.Batch.InitialLBS))
	r := computeRCP(x, y)
	w.rcp[w.ID] = r
	for _, p := range w.peers() {
		w.send(&wire.Message{Type: wire.TypeRCPReport, From: int32(w.ID), To: int32(p),
			Iter: w.iter, RCP: r})
	}
}

func (w *Worker) peers() []int {
	n := w.env.NumWorkers()
	out := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != w.ID {
			out = append(out, i)
		}
	}
	return out
}

func (w *Worker) send(m *wire.Message) {
	w.stats.MsgsSent++
	w.stats.BytesSent += int64(m.WireBytes())
	w.env.Send(w.ID, int(m.To), m)
}

// currentLBS applies the GBS and LBS controllers (Eq. 5) to decide this
// worker's batch for the next iteration.
func (w *Worker) currentLBS() int {
	gbs := w.gbs.GBSAt(w.env.Now(), w.epochsDone())
	if !w.cfg.Batch.DynamicBatching {
		l := gbs / w.env.NumWorkers()
		if l < 1 {
			l = 1
		}
		return l
	}
	shares := lbsShares(gbs, w.env.NumWorkers(), w.rcp, w.cfg.Batch.MinLBS)
	return shares[w.ID]
}

// startIteration draws a batch, computes gradients against the current
// weights, and schedules completion after the modeled iteration time.
// Gradients live in the model's G buffers until completeIteration; remote
// updates arriving meanwhile modify W only, mirroring a real worker whose
// backward pass uses the weight snapshot it started from.
func (w *Worker) startIteration() {
	w.lbs = w.currentLBS()
	x, y := w.shard.NextBatch(w.lbs)
	loss, _ := w.model.TrainStep(x, y)
	w.pushLoss(loss)
	w.iterSec = w.env.IterSeconds(w.ID, w.lbs)
	w.env.After(w.iterSec, w.completeIteration)
}

func (w *Worker) pushLoss(l float64) {
	w.lossWin = append(w.lossWin, l)
	if len(w.lossWin) > w.cfg.DKT.LossWindow {
		w.lossWin = w.lossWin[1:]
	}
}

// completeIteration applies the local update, exchanges partial gradients,
// runs DKT bookkeeping, and advances (or blocks on) the sync strategy.
func (w *Worker) completeIteration() {
	w.iter++
	w.stats.Iters++
	w.stats.SamplesProcessed += int64(w.lbs)
	w.epochSamples += float64(w.gbs.GBSAt(w.env.Now(), w.epochsDone()))

	// Local model update: own gradient with db = 1 (Eq. 7, j = k).
	n := float64(w.env.NumWorkers())
	w.model.ApplySGD(w.cfg.LearningRate / n)

	w.exchangeGradients()
	w.maybeDKT()
	w.maybeStartNext()
}

// maybeStartNext starts the next iteration if the synchronization strategy
// allows, otherwise blocks until a qualifying gradient arrives.
func (w *Worker) maybeStartNext() {
	if w.canProceed() {
		w.waitingSync = false
		w.startIteration()
		return
	}
	w.waitingSync = true
}

// canProceed implements the synch_training strategies (§4.2).
func (w *Worker) canProceed() bool {
	switch w.cfg.Sync.Mode {
	case SyncAsync:
		return true
	case SyncFull:
		for _, p := range w.peers() {
			if w.peerIter[p] < w.iter {
				return false
			}
		}
		return true
	case SyncBounded:
		arrived := 0
		minIter := int64(1 << 62)
		for _, p := range w.peers() {
			if w.peerIter[p] >= w.iter {
				arrived++
			}
			if w.peerIter[p] < minIter {
				minIter = w.peerIter[p]
			}
		}
		need := len(w.peers()) - w.cfg.Sync.BackupWorkers
		if arrived < need {
			return false
		}
		return w.iter-minIter <= int64(w.cfg.Sync.Staleness)
	}
	return true
}

// HandleMessage processes one incoming message. It must be called from the
// Env's event-loop goroutine.
func (w *Worker) HandleMessage(m *wire.Message) {
	from := int(m.From)
	switch m.Type {
	case wire.TypeGradient:
		if m.Iter > w.peerIter[from] {
			w.peerIter[from] = m.Iter
		}
		w.applyRemoteGradient(m)
		if w.waitingSync && w.canProceed() {
			w.waitingSync = false
			w.startIteration()
		}
	case wire.TypeRCPReport:
		w.rcp[from] = m.RCP
	case wire.TypeLossReport:
		w.peerLoss[from] = m.Loss
	case wire.TypeDKTRequest:
		w.sendWeights(from)
	case wire.TypeWeights:
		if err := w.model.MergeWeights(m.Weights, w.cfg.DKT.Lambda); err == nil {
			w.stats.DKTMerges++
		}
	}
}
