package core

import (
	"testing"

	"dlion/internal/wire"
)

// dktCluster builds a 3-worker async cluster with DKT enabled.
func dktCluster(t *testing.T, period int64, best2worst bool) (*fakeEnv, []*Worker) {
	t.Helper()
	cfg := asyncConfig()
	cfg.DKT = DKTConfig{Enabled: true, Period: period, Lambda: 0.5,
		LossWindow: 3, Best2Worst: best2worst}
	env := newFakeEnv(3, []float64{1, 1, 1})
	ws := buildCluster(t, cfg, env)
	return env, ws
}

func countMsgs(env *fakeEnv, typ wire.MsgType) int {
	n := 0
	for _, m := range env.sent {
		if m.Type == typ {
			n++
		}
	}
	return n
}

func TestDKTLossReportsBroadcastPeriodically(t *testing.T) {
	env, ws := dktCluster(t, 4, false)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(20)
	// each worker completes ~20 iterations -> ~5 DKT rounds, each
	// broadcasting to 2 peers
	reports := countMsgs(env, wire.TypeLossReport)
	if reports < 3*2*3 {
		t.Fatalf("too few loss reports: %d", reports)
	}
}

func TestDKTElectionTargetsBestLoss(t *testing.T) {
	env, ws := dktCluster(t, 3, false)
	w := ws[1]
	// worker 1 knows: self 0.8, peer 0 has 0.2 (best), peer 2 has 1.5
	w.lossWin = []float64{0.8}
	w.peerLoss[0] = 0.2
	w.peerLoss[2] = 1.5
	w.decideDKT()
	if len(env.sent) != 1 || env.sent[0].Type != wire.TypeDKTRequest || env.sent[0].To != 0 {
		t.Fatalf("expected one request to worker 0, got %+v", env.sent)
	}
	// if self is best, no request is sent
	env.sent = nil
	w.lossWin = []float64{0.1}
	w.decideDKT()
	if len(env.sent) != 0 {
		t.Fatalf("best worker must not request: %+v", env.sent)
	}
}

func TestDKTEndToEndTransfers(t *testing.T) {
	env, ws := dktCluster(t, 3, false)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(30)
	if countMsgs(env, wire.TypeWeights) == 0 {
		t.Fatal("no weights shipped in 30s of DKT-enabled training")
	}
	var merges int64
	for _, w := range ws {
		merges += w.Stats().DKTMerges
	}
	if merges == 0 {
		t.Fatal("no merges happened")
	}
}

func TestDKTBest2WorstOnlyWorstRequests(t *testing.T) {
	env, ws := dktCluster(t, 3, true)
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(40)
	// in Best2worst mode, at most one worker per round sends a request;
	// with 3 workers and ~10 rounds, Best2all would send ~20 requests.
	reqs := countMsgs(env, wire.TypeDKTRequest)
	b2aEnv, b2aWs := dktCluster(t, 3, false)
	for _, w := range b2aWs {
		w.Start()
	}
	b2aEnv.eng.Run(40)
	reqsAll := countMsgs(b2aEnv, wire.TypeDKTRequest)
	if reqs >= reqsAll {
		t.Fatalf("Best2worst sent %d requests, Best2all %d; expected fewer", reqs, reqsAll)
	}
}

func TestDKTMergeMovesTowardBest(t *testing.T) {
	env, ws := dktCluster(t, 2, false)
	// make worker 1 terrible and record its distance to worker 0 weights
	for _, p := range ws[1].Model().Params() {
		p.W.Fill(0.9)
	}
	dist := func() float64 {
		var d float64
		for i, p := range ws[1].Model().Params() {
			q := ws[0].Model().Params()[i]
			for k := range p.W.Data {
				dv := float64(p.W.Data[k] - q.W.Data[k])
				d += dv * dv
			}
		}
		return d
	}
	before := dist()
	for _, w := range ws {
		w.Start()
	}
	env.eng.Run(25)
	if ws[1].Stats().DKTMerges == 0 {
		t.Skip("no merge happened in window")
	}
	if after := dist(); after >= before {
		t.Fatalf("merge did not pull worker 1 toward best: %v -> %v", before, after)
	}
}

func TestBudgetFormula(t *testing.T) {
	// budget = bw_bytes * iterSec / ((n-1) * sendScale)
	cfg := asyncConfig()
	cfg.LinkBudget = true
	env := newFakeEnv(3, []float64{2, 2, 2})
	env.bw = 8 // Mbps -> 1e6 bytes/s
	env.sendScale = 4
	ws := buildCluster(t, cfg, env)
	ws[0].Start()
	env.eng.Run(3)
	want := int(1e6 * 2 / (2 * 4.0))
	got := ws[0].LastBudget(1)
	if got != want {
		t.Fatalf("budget %d, want %d", got, want)
	}
}
