// Package env encodes the paper's evaluation environments: the Table 2 AWS
// inter-region bandwidth matrix and the eleven Table 3 micro-cloud
// emulations (homogeneous/heterogeneous compute and network, CPU and GPU
// clusters, and the two dynamic schedules). Compute capacity is expressed
// in CPU-core units (a GPU is simcompute.GPUUnit cores); bandwidth in Mbps.
package env

import (
	"fmt"
	"strings"

	"dlion/internal/simcompute"
	"dlion/internal/simnet"
)

// Table2Regions names the six AWS regions of Table 2.
var Table2Regions = []string{"Virginia", "Oregon", "Ireland", "Mumbai", "Seoul", "Sydney"}

// Table2 is the measured inter-region bandwidth matrix in Mbps
// (row = source, column = destination; diagonal unused).
var Table2 = [][]float64{
	{0, 190, 181, 53, 58, 56},
	{187, 0, 91, 41, 93, 84},
	{171, 92, 0, 73, 30, 41},
	{53, 41, 73, 0, 85, 79},
	{58, 88, 40, 85, 0, 79},
	{56, 84, 36, 79, 72, 0},
}

// Network timing constants.
const (
	LANMbps = 1000.0
	RTTLan  = 0.001
	RTTWan  = 0.05
)

// Cost model constants. The absolute values are calibrated so that the
// paper's regimes hold in simulation (see DESIGN.md): on the CPU cluster a
// 24-core worker takes ~2.7 virtual seconds for a 32-sample iteration, so
// full 5 MB gradient exchange saturates WAN links but not the LAN; on the
// GPU cluster computation is fast enough that even the LAN becomes the
// bottleneck for MobileNet's 17 MB exchanges.
func cpuCost() simcompute.CostModel {
	return simcompute.CostModel{Overhead: 0.05, PerSample: 2.0, Jitter: 0.03}
}

func gpuCost() simcompute.CostModel {
	// Same per-sample cost as the CPU model: GPU speed comes from capacity
	// units (one GPU = 30 cores' worth), which keeps wall-clock cost per
	// simulated sample uniform while preserving the paper's regime where
	// GPU compute far outpaces the network.
	return simcompute.CostModel{Overhead: 0.05, PerSample: 2.0, Jitter: 0.03}
}

// Env is a fully instantiated micro-cloud environment.
type Env struct {
	Name     string
	N        int
	Computes []*simcompute.Compute
	Network  *simnet.Network
	GPU      bool // GPU cluster (use MobileNetLite; Figure 12)
}

// coresEnv builds computes from constant per-worker core counts.
func coresEnv(cost simcompute.CostModel, seed uint64, cores ...float64) []*simcompute.Compute {
	out := make([]*simcompute.Compute, len(cores))
	for i, c := range cores {
		out[i] = simcompute.New(simcompute.Constant(c), cost, seed+uint64(i))
	}
	return out
}

// schedEnv builds computes from explicit per-worker capacity schedules.
func schedEnv(cost simcompute.CostModel, seed uint64, scheds []simcompute.Schedule) []*simcompute.Compute {
	out := make([]*simcompute.Compute, len(scheds))
	for i, s := range scheds {
		out[i] = simcompute.New(s, cost, seed+uint64(i))
	}
	return out
}

// egressNet builds a per-worker-egress WAN from Mbps figures.
func egressNet(mbps ...float64) *simnet.Network {
	scheds := make([]simcompute.Schedule, len(mbps))
	for i, m := range mbps {
		scheds[i] = simcompute.Constant(m)
	}
	return simnet.PerWorkerEgress(scheds, RTTWan)
}

// egressSchedNet builds a per-worker-egress WAN from bandwidth schedules.
func egressSchedNet(scheds []simcompute.Schedule) *simnet.Network {
	return simnet.PerWorkerEgress(scheds, RTTWan)
}

// Names lists every defined environment in Table 3 order.
func Names() []string {
	return []string{
		"Homo A", "Homo B", "Homo C",
		"Hetero CPU A", "Hetero CPU B",
		"Hetero NET A", "Hetero NET B",
		"Hetero SYS A", "Hetero SYS B", "Hetero SYS C",
		"Dynamic SYS A", "Dynamic SYS B",
		"Table2 WAN",
	}
}

// Get instantiates a Table 3 environment by name (case- and
// space-insensitive, e.g. "heterosysa"). seed feeds the compute jitter
// streams.
func Get(name string, seed uint64) (*Env, error) {
	canon := strings.ToLower(strings.ReplaceAll(name, " ", ""))
	hetCores := []float64{24, 24, 12, 12, 6, 6}
	hetNetA := []float64{50, 50, 35, 35, 20, 20}
	hetNetB := []float64{20, 20, 35, 35, 50, 50}
	switch canon {
	case "homoa":
		return &Env{Name: "Homo A", N: 6,
			Computes: coresEnv(cpuCost(), seed, 24, 24, 24, 24, 24, 24),
			Network:  simnet.Uniform(6, simcompute.Constant(LANMbps), RTTLan)}, nil
	case "homob":
		return &Env{Name: "Homo B", N: 6,
			Computes: coresEnv(cpuCost(), seed, 24, 24, 24, 24, 24, 24),
			Network:  egressNet(50, 50, 50, 50, 50, 50)}, nil
	case "homoc":
		g := simcompute.GPUUnit
		return &Env{Name: "Homo C", N: 6, GPU: true,
			Computes: coresEnv(gpuCost(), seed, g, g, g, g, g, g),
			Network:  simnet.Uniform(6, simcompute.Constant(LANMbps), RTTLan)}, nil
	case "heterocpua":
		return &Env{Name: "Hetero CPU A", N: 6,
			Computes: coresEnv(cpuCost(), seed, hetCores...),
			Network:  simnet.Uniform(6, simcompute.Constant(LANMbps), RTTLan)}, nil
	case "heterocpub":
		return &Env{Name: "Hetero CPU B", N: 6,
			Computes: coresEnv(cpuCost(), seed, 24, 24, 24, 24, 24, 4),
			Network:  simnet.Uniform(6, simcompute.Constant(LANMbps), RTTLan)}, nil
	case "heteroneta":
		return &Env{Name: "Hetero NET A", N: 6,
			Computes: coresEnv(cpuCost(), seed, 24, 24, 24, 24, 24, 24),
			Network:  egressNet(hetNetA...)}, nil
	case "heteronetb":
		// Used by the Figure 17 deviation study: the inverse skew of NET A.
		return &Env{Name: "Hetero NET B", N: 6,
			Computes: coresEnv(cpuCost(), seed, 24, 24, 24, 24, 24, 24),
			Network:  egressNet(hetNetB...)}, nil
	case "heterosysa":
		return &Env{Name: "Hetero SYS A", N: 6,
			Computes: coresEnv(cpuCost(), seed, hetCores...),
			Network:  egressNet(hetNetA...)}, nil
	case "heterosysb":
		return &Env{Name: "Hetero SYS B", N: 6,
			Computes: coresEnv(cpuCost(), seed, hetCores...),
			Network:  egressNet(hetNetB...)}, nil
	case "heterosysc":
		g := simcompute.GPUUnit
		return &Env{Name: "Hetero SYS C", N: 6, GPU: true,
			Computes: coresEnv(gpuCost(), seed, 8*g, 8*g, g, g, g, g),
			Network:  egressNet(190, 190, 140, 140, 100, 100)}, nil
	case "dynamicsysa":
		return Dynamic("A", 500, seed), nil
	case "dynamicsysb":
		return Dynamic("B", 500, seed), nil
	case "table2wan":
		return &Env{Name: "Table2 WAN", N: 6,
			Computes: coresEnv(cpuCost(), seed, 24, 24, 24, 24, 24, 24),
			Network:  simnet.FromMatrix(Table2, RTTWan)}, nil
	}
	return nil, fmt.Errorf("env: unknown environment %q", name)
}

// Dynamic builds the Table 3 dynamic environments with a configurable
// phase length (the paper uses 500 s per phase; scaled experiments shrink
// it proportionally to their horizon). Variant "A" runs
// Homo B -> Hetero SYS A -> Hetero SYS B (more resources early);
// variant "B" runs the reverse order (more resources late).
func Dynamic(variant string, phaseLen float64, seed uint64) *Env {
	hetCores := []float64{24, 24, 12, 12, 6, 6}
	hetNetA := []float64{50, 50, 35, 35, 20, 20}
	hetNetB := []float64{20, 20, 35, 35, 50, 50}
	comp := make([]simcompute.Schedule, 6)
	net := make([]simcompute.Schedule, 6)
	for i := 0; i < 6; i++ {
		switch variant {
		case "A":
			comp[i] = simcompute.Steps(0, 24, phaseLen, hetCores[i], 2*phaseLen, hetCores[i])
			net[i] = simcompute.Steps(0, 50, phaseLen, hetNetA[i], 2*phaseLen, hetNetB[i])
		default: // "B"
			comp[i] = simcompute.Steps(0, hetCores[i], phaseLen, hetCores[i], 2*phaseLen, 24)
			net[i] = simcompute.Steps(0, hetNetB[i], phaseLen, hetNetA[i], 2*phaseLen, 50)
		}
	}
	return &Env{Name: "Dynamic SYS " + variant, N: 6,
		Computes: schedEnv(cpuCost(), seed, comp),
		Network:  egressSchedNet(net)}
}

// Custom builds an environment from explicit per-worker capacity schedules
// and an arbitrary network (used by the Figure 8/19/20 trace experiments).
func Custom(name string, capacities []simcompute.Schedule, network *simnet.Network, seed uint64) *Env {
	return &Env{Name: name, N: len(capacities),
		Computes: schedEnv(cpuCost(), seed, capacities),
		Network:  network}
}

// CPUCost exposes the CPU-cluster iteration cost model for custom
// environments built outside this package.
func CPUCost() simcompute.CostModel { return cpuCost() }

// MustGet is Get for known-good names authored in code.
func MustGet(name string, seed uint64) *Env {
	e, err := Get(name, seed)
	if err != nil {
		panic(err)
	}
	return e
}
