package env

import (
	"testing"

	"dlion/internal/simcompute"
	"dlion/internal/simnet"
)

func TestAllNamedEnvironmentsBuild(t *testing.T) {
	for _, name := range Names() {
		e, err := Get(name, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.N != 6 || len(e.Computes) != 6 || e.Network.Size() != 6 {
			t.Fatalf("%s: wrong shape", name)
		}
		for i := 0; i < e.N; i++ {
			if cap := e.Computes[i].Capacity.At(0); cap <= 0 {
				t.Fatalf("%s: worker %d capacity %v", name, i, cap)
			}
			for j := 0; j < e.N; j++ {
				if i == j {
					continue
				}
				bw, err := e.Network.BandwidthAt(i, j, 0)
				if err != nil || bw <= 0 {
					t.Fatalf("%s: link %d->%d bw=%v err=%v", name, i, j, bw, err)
				}
			}
		}
	}
}

func TestGetNameNormalization(t *testing.T) {
	a, err := Get("Hetero SYS A", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Get("heterosysa", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name {
		t.Fatal("name normalization broken")
	}
	if _, err := Get("nope", 1); err == nil {
		t.Fatal("unknown env must error")
	}
}

func TestHeteroSysAShape(t *testing.T) {
	e := MustGet("Hetero SYS A", 1)
	wantCores := []float64{24, 24, 12, 12, 6, 6}
	wantBW := []float64{50, 50, 35, 35, 20, 20}
	for i := 0; i < 6; i++ {
		if got := e.Computes[i].Capacity.At(0); got != wantCores[i] {
			t.Fatalf("worker %d cores %v, want %v", i, got, wantCores[i])
		}
		bw, _ := e.Network.BandwidthAt(i, (i+1)%6, 0)
		if bw != wantBW[i] {
			t.Fatalf("worker %d egress %v, want %v", i, bw, wantBW[i])
		}
	}
}

func TestGPUEnvironments(t *testing.T) {
	c := MustGet("Homo C", 1)
	if !c.GPU {
		t.Fatal("Homo C must be GPU")
	}
	if got := c.Computes[0].Capacity.At(0); got != 30 {
		t.Fatalf("p2.xlarge capacity %v, want 30", got)
	}
	sc := MustGet("Hetero SYS C", 1)
	if got := sc.Computes[0].Capacity.At(0); got != 240 {
		t.Fatalf("p2.8xlarge capacity %v, want 240", got)
	}
	if got := sc.Computes[5].Capacity.At(0); got != 30 {
		t.Fatalf("p2.xlarge capacity %v, want 30", got)
	}
}

func TestDynamicPhases(t *testing.T) {
	e := Dynamic("A", 100, 1)
	// phase 1: Homo B (24 cores, 50 Mbps)
	if e.Computes[4].Capacity.At(50) != 24 {
		t.Fatal("phase 1 cores")
	}
	bw, _ := e.Network.BandwidthAt(4, 0, 50)
	if bw != 50 {
		t.Fatal("phase 1 bw")
	}
	// phase 2: Hetero SYS A (worker 4 has 6 cores, 20 Mbps)
	if e.Computes[4].Capacity.At(150) != 6 {
		t.Fatal("phase 2 cores")
	}
	bw, _ = e.Network.BandwidthAt(4, 0, 150)
	if bw != 20 {
		t.Fatal("phase 2 bw")
	}
	// phase 3: Hetero SYS B (worker 4 regains 50 Mbps, keeps 6 cores)
	bw, _ = e.Network.BandwidthAt(4, 0, 250)
	if bw != 50 {
		t.Fatal("phase 3 bw")
	}
	// variant B is the reverse: starts heterogeneous, ends homogeneous
	eb := Dynamic("B", 100, 1)
	if eb.Computes[4].Capacity.At(50) != 6 || eb.Computes[4].Capacity.At(250) != 24 {
		t.Fatal("variant B ordering")
	}
}

func TestTable2Consistency(t *testing.T) {
	if len(Table2) != 6 || len(Table2Regions) != 6 {
		t.Fatal("Table 2 must be 6x6")
	}
	e := MustGet("Table2 WAN", 1)
	bw, _ := e.Network.BandwidthAt(0, 3, 0) // Virginia -> Mumbai
	if bw != 53 {
		t.Fatalf("V->M = %v, want 53", bw)
	}
	bw, _ = e.Network.BandwidthAt(2, 4, 0) // Ireland -> Seoul
	if bw != 30 {
		t.Fatalf("I->S1 = %v, want 30", bw)
	}
}

func TestCustomEnv(t *testing.T) {
	caps := []simcompute.Schedule{simcompute.Constant(1), simcompute.Constant(2)}
	nw := simnet.Uniform(2, simcompute.Constant(10), 0)
	e := Custom("x", caps, nw, 1)
	if e.N != 2 || e.Computes[1].Capacity.At(0) != 2 || e.Network.Size() != 2 {
		t.Fatalf("custom env %+v", e)
	}
}
