package systems

import (
	"testing"

	"dlion/internal/core"
	"dlion/internal/grad"
)

func TestAllPresetsValid(t *testing.T) {
	if len(All()) != 5 {
		t.Fatalf("want 5 systems, got %d", len(All()))
	}
	for _, sys := range All() {
		if err := sys.Validate(); err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		// Stateful selectors (pointer-typed: Gaia, Ako, MaxN) must be
		// freshly constructed per call; stateless value selectors (Full)
		// may legitimately compare equal.
		a, b := sys.NewSelector(), sys.NewSelector()
		if _, stateless := a.(grad.Full); !stateless && a == b {
			t.Fatalf("%s: NewSelector returned shared stateful instance", sys.Name)
		}
	}
}

func TestPaperSettings(t *testing.T) {
	d := DLion()
	if !d.LinkBudget || !d.Batch.DynamicBatching || !d.Batch.WeightedUpdate {
		t.Fatal("DLion must enable all §3.2/§3.3 techniques")
	}
	if !d.DKT.Enabled || d.DKT.Period != 100 || d.DKT.Lambda != 0.75 {
		t.Fatalf("DLion DKT settings %+v (paper: period 100, lambda 0.75)", d.DKT)
	}
	h := Hop(1, 5)
	if h.Sync.Mode != core.SyncBounded || h.Sync.BackupWorkers != 1 || h.Sync.Staleness != 5 {
		t.Fatalf("Hop sync %+v", h.Sync)
	}
	if Baseline().Sync.Mode != core.SyncFull {
		t.Fatal("Baseline must be synchronous")
	}
	if Ako(4).Sync.Mode != core.SyncAsync {
		t.Fatal("Ako must be asynchronous")
	}
	if Gaia(1).Sync.Mode != core.SyncFull {
		t.Fatal("Gaia blocks until significant gradients are delivered")
	}
}

func TestAblationVariants(t *testing.T) {
	nodbwu := DLionNoDBWU()
	if nodbwu.Batch.DynamicBatching || nodbwu.Batch.WeightedUpdate {
		t.Fatal("no-DBWU must disable both")
	}
	nowu := DLionNoWU()
	if !nowu.Batch.DynamicBatching || nowu.Batch.WeightedUpdate {
		t.Fatal("no-WU keeps dynamic batching, drops weighted update")
	}
	m := MaxNOnly(10)
	if m.LinkBudget || m.DKT.Enabled || m.Batch.DynamicBatching {
		t.Fatal("MaxNOnly must isolate the selector")
	}
	if m.Name != "Max10" {
		t.Fatalf("name %q", m.Name)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"baseline", "Ako", "GAIA", "hop", "dlion",
		"dlion-no-wu", "dlion-no-dbwu", "max10"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}
