// Package systems wires the five evaluated systems — Baseline, Ako, Gaia,
// Hop, and DLion — as configurations of the shared worker in internal/core,
// the same way the prototype emulated them inside the DLion framework with
// a handful of changed lines per system (Table 1). The plugin surface is
// exactly the paper's two APIs: the partial-gradient selector
// (generate_partial_gradients) and the synchronization strategy
// (synch_training).
package systems

import (
	"fmt"
	"strings"

	"dlion/internal/core"
	"dlion/internal/grad"
)

// Defaults shared by every preset (overridable on the returned Config).
const (
	// DefaultLBS is the initial local batch size (paper: 32).
	DefaultLBS = 32
	// DefaultLR is the SGD learning rate used in all experiments,
	// calibrated so plain synchronous SGD is stable on the synthetic task
	// at the full global batch size.
	DefaultLR = 0.02
)

// Baseline exchanges whole gradients with all workers every iteration,
// synchronously (§5.1.4 system 1).
func Baseline() core.Config {
	return core.Config{
		Name:         "Baseline",
		LearningRate: DefaultLR,
		NewSelector:  func() grad.Selector { return grad.Full{} },
		Batch:        core.BatchConfig{InitialLBS: DefaultLBS},
		Sync:         core.SyncConfig{Mode: core.SyncFull},
	}
}

// Ako partitions gradients and sends one accumulated partition per peer
// per iteration, training asynchronously (§5.1.4 system 2). The paper's
// Ako sizes partitions from network and compute capacity; P is that knob.
func Ako(partitions int) core.Config {
	return core.Config{
		Name:         "Ako",
		LearningRate: DefaultLR,
		NewSelector:  func() grad.Selector { return grad.NewAko(partitions) },
		Batch:        core.BatchConfig{InitialLBS: DefaultLBS},
		Sync:         core.SyncConfig{Mode: core.SyncAsync},
	}
}

// Gaia exchanges only gradients whose accumulated relative change exceeds
// the significance threshold S percent, blocking each iteration until the
// significant gradients reached all workers (§5.1.4 system 3; S=1 in the
// paper's evaluation).
func Gaia(s float64) core.Config {
	return core.Config{
		Name:         "Gaia",
		LearningRate: DefaultLR,
		NewSelector:  func() grad.Selector { return grad.NewGaia(s) },
		Batch:        core.BatchConfig{InitialLBS: DefaultLBS},
		Sync:         core.SyncConfig{Mode: core.SyncFull},
	}
}

// Hop exchanges whole gradients but advances past stragglers using backup
// workers under a staleness bound (§5.1.4 system 4; backup=1, staleness=5
// in the paper's evaluation).
func Hop(backupWorkers, staleness int) core.Config {
	return core.Config{
		Name:         "Hop",
		LearningRate: DefaultLR,
		NewSelector:  func() grad.Selector { return grad.Full{} },
		Batch:        core.BatchConfig{InitialLBS: DefaultLBS},
		Sync: core.SyncConfig{Mode: core.SyncBounded,
			BackupWorkers: backupWorkers, Staleness: staleness},
	}
}

// DLion enables all three techniques: weighted dynamic batching (GBS/LBS
// controllers + weighted update), per-link prioritized gradient exchange
// (Max N with the transmission-speed-assurance budget, min N = 0.85), and
// direct knowledge transfer (period 100, λ = 0.75) — the §5.1.4 settings.
// Training is asynchronous: the dynamic batching controllers equalize
// iteration times, and DKT bounds replica divergence, so DLion does not
// need a barrier. The harness scales the DKT period with the experiment's
// iteration count (period 100 assumes the paper's multi-thousand-iteration
// runs).
func DLion() core.Config {
	return core.Config{
		Name:         "DLion",
		LearningRate: DefaultLR,
		NewSelector:  func() grad.Selector { return grad.NewMaxN(100) },
		LinkBudget:   true,
		Batch: core.BatchConfig{
			InitialLBS:      DefaultLBS,
			DynamicBatching: true,
			WeightedUpdate:  true,
			GBS:             core.GBSConfig{Mode: "auto"},
		},
		Sync: core.SyncConfig{Mode: core.SyncAsync},
		DKT:  core.DKTConfig{Enabled: true, Period: 100, Lambda: 0.75},
	}
}

// DLionNoDBWU is the Figure 14 ablation without dynamic batching or
// weighted updates (fixed even LBS).
func DLionNoDBWU() core.Config {
	c := DLion()
	c.Name = "DLion-no-DBWU"
	c.Batch.DynamicBatching = false
	c.Batch.WeightedUpdate = false
	c.Batch.GBS = core.GBSConfig{Mode: "fixed"}
	return c
}

// DLionNoWU is the Figure 14 ablation with dynamic batching but without
// weighted model updates.
func DLionNoWU() core.Config {
	c := DLion()
	c.Name = "DLion-no-WU"
	c.Batch.WeightedUpdate = false
	return c
}

// DLionQuant is DLion with the wire precision engaged as a second per-link
// data-quality lever next to Max-N: the budget that already sizes each
// link's selection now also picks the cheapest precision it justifies
// (f32 → f16 → int8; see WIRE.md's precision/bandwidth model).
func DLionQuant() core.Config {
	c := DLion()
	c.Name = "DLion-quant"
	c.Quant = core.QuantConfig{Auto: true}
	return c
}

// WithQuant applies a wire-precision mode to a preset: "i8" or "f16" fix
// the precision on every link, "auto" lets the link budget choose (forcing
// LinkBudget on, which auto requires), and "" returns c unchanged. The
// system name gains a "-quant-<mode>" suffix so reports and golden gates
// distinguish quantized runs.
func WithQuant(c core.Config, mode string) (core.Config, error) {
	switch strings.ToLower(mode) {
	case "":
		return c, nil
	case "i8", "int8":
		c.Quant = core.QuantConfig{Precision: grad.PrecI8}
	case "f16":
		c.Quant = core.QuantConfig{Precision: grad.PrecF16}
	case "auto":
		c.Quant = core.QuantConfig{Auto: true}
		c.LinkBudget = true
	default:
		return c, fmt.Errorf("systems: unknown quant mode %q (want i8, f16, auto)", mode)
	}
	c.Name += "-quant-" + strings.ToLower(mode)
	return c, nil
}

// ForJob resolves a control-plane job's (system, quant) pair into a worker
// config scoped to that job: the preset is looked up by name, the wire
// precision applied, the iteration budget pinned to maxIters, and the
// config labelled with the job id (Config.Job, plus a "@<job>" suffix on
// the name so logs and reports from concurrent jobs stay attributable).
// DKT's sharing period is clamped to maxIters/2 — the presets assume the
// paper's multi-thousand-iteration runs, and an unclamped period would
// silently disable DKT on short jobs.
func ForJob(system, quant, job string, maxIters int64) (core.Config, error) {
	c, err := ByName(system)
	if err != nil {
		return core.Config{}, err
	}
	if c, err = WithQuant(c, quant); err != nil {
		return core.Config{}, err
	}
	c.MaxIters = maxIters
	if c.DKT.Enabled && maxIters > 0 && c.DKT.Period > maxIters/2 {
		c.DKT.Period = maxIters / 2
		if c.DKT.Period < 1 {
			c.DKT.Period = 1
		}
	}
	if job != "" {
		c.Job = job
		c.Name += "@" + job
	}
	return c, nil
}

// MaxNOnly runs the Max N selector with a fixed N and nothing else from
// DLion — no dynamic batching, no link budget, no DKT (the Figure 16
// "Max10" configuration when n=10).
func MaxNOnly(n float64) core.Config {
	return core.Config{
		Name:         fmt.Sprintf("Max%g", n),
		LearningRate: DefaultLR,
		NewSelector:  func() grad.Selector { return grad.NewMaxN(n) },
		Batch:        core.BatchConfig{InitialLBS: DefaultLBS},
		Sync:         core.SyncConfig{Mode: core.SyncFull},
	}
}

// All returns the five paper systems with their evaluation settings.
func All() []core.Config {
	return []core.Config{Baseline(), Ako(4), Gaia(1), Hop(1, 5), DLion()}
}

// ByName resolves a system name (case-insensitive) to its preset.
func ByName(name string) (core.Config, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return Baseline(), nil
	case "ako":
		return Ako(4), nil
	case "gaia":
		return Gaia(1), nil
	case "hop":
		return Hop(1, 5), nil
	case "dlion":
		return DLion(), nil
	case "dlion-no-dbwu":
		return DLionNoDBWU(), nil
	case "dlion-no-wu":
		return DLionNoWU(), nil
	case "dlion-quant":
		return DLionQuant(), nil
	case "max10":
		return MaxNOnly(10), nil
	default:
		return core.Config{}, fmt.Errorf("systems: unknown system %q", name)
	}
}
