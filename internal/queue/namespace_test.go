package queue

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestJobNamespaceKeys(t *testing.T) {
	root := Namespace("")
	if got := root.DataKey(3); got != "dlion:data:3" {
		t.Errorf("root data key = %q, want the historical layout", got)
	}
	if got := root.Channel("serve:weights"); got != "serve:weights" {
		t.Errorf("root channel = %q, want unchanged", got)
	}
	ns := JobNamespace("job-12")
	if got := ns.DataKey(3); got != "dlion:job:job-12:data:3" {
		t.Errorf("job data key = %q", got)
	}
	if got := ns.Channel("ctl"); got != "dlion:job:job-12:ctl" {
		t.Errorf("job channel = %q", got)
	}
}

func TestValidJobID(t *testing.T) {
	for _, ok := range []string{"job-1", "a", "A.B_c-9", "x2345678901234567890123456789012345678901234567890123456789012345"[:64]} {
		if !ValidJobID(ok) {
			t.Errorf("ValidJobID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "has space", "a:b", "a/b", "ü", "x2345678901234567890123456789012345678901234567890123456789012345"} {
		if ValidJobID(bad) {
			t.Errorf("ValidJobID(%q) = true, want false", bad)
		}
	}
}

// TestJobNamespaceIsolation drives two jobs' worth of traffic — lists and
// pub/sub — through ONE broker concurrently and asserts zero
// cross-delivery: everything job A's publishers push is seen only by job
// A's consumers, tagged as A's. Run under -race this also exercises the
// broker's locking across namespaces.
func TestJobNamespaceIsolation(t *testing.T) {
	b := NewBroker()
	defer b.Close()

	const msgsPerWorker = 200
	const workers = 2
	jobs := []string{"A", "B"}

	// Subscribe each job's control channel before publishing starts.
	subs := map[string]*Subscription{}
	for _, j := range jobs {
		s, err := b.Subscribe(JobNamespace(j).Channel("ctl"), msgsPerWorker*workers)
		if err != nil {
			t.Fatalf("subscribe %s: %v", j, err)
		}
		subs[j] = s
	}

	// Publishers: per job, per worker, interleaved pushes + publishes.
	var wg sync.WaitGroup
	for _, j := range jobs {
		ns := JobNamespace(j)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(j string, ns Namespace, w int) {
				defer wg.Done()
				for i := 0; i < msgsPerWorker; i++ {
					payload := []byte(fmt.Sprintf("%s:%d:%d", j, w, i))
					if err := b.LPush(ns.DataKey(w), payload); err != nil {
						t.Errorf("LPush %s: %v", j, err)
						return
					}
					if _, err := b.Publish(ns.Channel("ctl"), payload); err != nil {
						t.Errorf("Publish %s: %v", j, err)
						return
					}
				}
			}(j, ns, w)
		}
	}

	// Consumers: per job, per worker, blocking pops on the job's data keys.
	type got struct {
		job     string
		payload []byte
	}
	results := make(chan got, len(jobs)*workers*msgsPerWorker)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, j := range jobs {
		ns := JobNamespace(j)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(j string, ns Namespace, w int) {
				defer wg.Done()
				for i := 0; i < msgsPerWorker; i++ {
					p, err := b.BRPop(ctx, ns.DataKey(w))
					if err != nil {
						t.Errorf("BRPop %s worker %d: %v", j, w, err)
						return
					}
					results <- got{j, p}
				}
			}(j, ns, w)
		}
	}
	wg.Wait()
	close(results)

	for r := range results {
		if string(r.payload[:1]) != r.job {
			t.Fatalf("job %s consumer popped %q — cross-namespace delivery", r.job, r.payload)
		}
	}

	// Pub/sub side: each job's subscriber saw exactly its own publishes.
	for _, j := range jobs {
		s := subs[j]
		seen := 0
	drain:
		for {
			select {
			case p := <-s.C:
				if string(p[:1]) != j {
					t.Fatalf("job %s subscriber got %q — cross-namespace delivery", j, p)
				}
				seen++
			default:
				break drain
			}
		}
		if want := msgsPerWorker * workers; seen != want {
			t.Errorf("job %s subscriber saw %d messages, want %d", j, seen, want)
		}
	}

	// Nothing left on any data key of either namespace.
	for _, j := range jobs {
		ns := JobNamespace(j)
		for w := 0; w < workers; w++ {
			if n := b.Len(ns.DataKey(w)); n != 0 {
				t.Errorf("job %s worker %d has %d undelivered frames", j, w, n)
			}
		}
	}
}
