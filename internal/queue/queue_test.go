package queue

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPubSubFanout(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	s1, err := b.Subscribe("ctrl", 8)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := b.Subscribe("ctrl", 8)
	n, err := b.Publish("ctrl", []byte("go"))
	if err != nil || n != 2 {
		t.Fatalf("published to %d, err %v", n, err)
	}
	for _, s := range []*Subscription{s1, s2} {
		select {
		case p := <-s.C:
			if string(p) != "go" {
				t.Fatalf("payload %q", p)
			}
		case <-time.After(time.Second):
			t.Fatal("subscriber starved")
		}
	}
}

func TestPublishNoSubscribers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	n, err := b.Publish("empty", []byte("x"))
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestSubscribeCancel(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	s, _ := b.Subscribe("c", 4)
	s.Cancel()
	s.Cancel() // idempotent
	if _, ok := <-s.C; ok {
		t.Fatal("C must be closed after Cancel")
	}
	n, _ := b.Publish("c", []byte("x"))
	if n != 0 {
		t.Fatal("canceled subscriber still receiving")
	}
}

func TestSlowSubscriberDropsOldest(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	s, _ := b.Subscribe("c", 2)
	for i := 0; i < 5; i++ {
		b.Publish("c", []byte{byte(i)})
	}
	// buffer holds the two newest messages (3, 4)
	got := []byte{(<-s.C)[0], (<-s.C)[0]}
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("got %v, want [3 4]", got)
	}
}

func TestListFIFO(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	for i := 0; i < 3; i++ {
		if err := b.LPush("q", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len("q") != 3 {
		t.Fatalf("len %d", b.Len("q"))
	}
	for i := 0; i < 3; i++ {
		p, ok := b.RPop("q")
		if !ok || p[0] != byte(i) {
			t.Fatalf("pop %d: %v %v", i, p, ok)
		}
	}
	if _, ok := b.RPop("q"); ok {
		t.Fatal("empty list must report !ok")
	}
}

func TestBRPopImmediate(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	b.LPush("q", []byte("a"))
	p, err := b.BRPop(context.Background(), "q")
	if err != nil || string(p) != "a" {
		t.Fatalf("%q %v", p, err)
	}
}

func TestBRPopBlocksUntilPush(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	done := make(chan []byte, 1)
	go func() {
		p, err := b.BRPop(context.Background(), "q")
		if err != nil {
			t.Error(err)
		}
		done <- p
	}()
	time.Sleep(10 * time.Millisecond)
	b.LPush("q", []byte("late"))
	select {
	case p := <-done:
		if string(p) != "late" {
			t.Fatalf("got %q", p)
		}
	case <-time.After(time.Second):
		t.Fatal("BRPop never woke")
	}
}

func TestBRPopContextCancel(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := b.BRPop(ctx, "q"); err == nil {
		t.Fatal("expected context error")
	}
	// The canceled waiter must be deregistered: a subsequent push should
	// stay on the list, not vanish into the dead waiter.
	b.LPush("q", []byte("x"))
	if b.Len("q") != 1 {
		t.Fatalf("len %d; payload leaked to dead waiter", b.Len("q"))
	}
}

func TestBRPopMultipleWaitersFIFO(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	results := make(chan string, 2)
	var ready sync.WaitGroup
	for i := 0; i < 2; i++ {
		ready.Add(1)
		go func() {
			ready.Done()
			p, err := b.BRPop(context.Background(), "q")
			if err != nil {
				t.Error(err)
				return
			}
			results <- string(p)
		}()
	}
	ready.Wait()
	time.Sleep(10 * time.Millisecond)
	b.LPush("q", []byte("one"))
	b.LPush("q", []byte("two"))
	got := map[string]bool{<-results: true, <-results: true}
	if !got["one"] || !got["two"] {
		t.Fatalf("got %v", got)
	}
}

func TestBrokerClose(t *testing.T) {
	b := NewBroker()
	s, _ := b.Subscribe("c", 4)
	errc := make(chan error, 1)
	go func() {
		_, err := b.BRPop(context.Background(), "q")
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	if _, ok := <-s.C; ok {
		t.Fatal("subscription must close on broker close")
	}
	if err := <-errc; err != ErrClosed {
		t.Fatalf("BRPop after close: %v", err)
	}
	if err := b.LPush("q", nil); err != ErrClosed {
		t.Fatalf("LPush after close: %v", err)
	}
	if _, err := b.Subscribe("c", 1); err != ErrClosed {
		t.Fatalf("Subscribe after close: %v", err)
	}
	if _, err := b.Publish("c", nil); err != ErrClosed {
		t.Fatalf("Publish after close: %v", err)
	}
	b.Close() // idempotent
}

func TestConcurrentPushPop(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	const n = 200
	var wg sync.WaitGroup
	seen := make(chan byte, n)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
				p, err := b.BRPop(ctx, "q")
				cancel()
				if err != nil {
					return
				}
				seen <- p[0]
			}
		}()
	}
	for i := 0; i < n; i++ {
		b.LPush("q", []byte{byte(i)})
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("received %d of %d", len(seen), n)
	}
}

// --- TCP transport ---

func startServer(t *testing.T) (*Broker, *Server) {
	t.Helper()
	b := NewBroker()
	s, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); b.Close() })
	return b, s
}

func TestTCPListRoundTrip(t *testing.T) {
	_, s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LPush("q", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	p, err := c.BRPop("q", time.Second)
	if err != nil || string(p) != "hello" {
		t.Fatalf("%q %v", p, err)
	}
}

func TestTCPBRPopTimeout(t *testing.T) {
	_, s := startServer(t)
	c, _ := Dial(s.Addr())
	defer c.Close()
	start := time.Now()
	_, err := c.BRPop("empty", 50*time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("err %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestTCPPubSub(t *testing.T) {
	_, s := startServer(t)
	pubC, _ := Dial(s.Addr())
	defer pubC.Close()
	subC, _ := Dial(s.Addr())
	defer subC.Close()
	ch, err := subC.Subscribe("ctrl", 8)
	if err != nil {
		t.Fatal(err)
	}
	// subscription registration races with publish; retry a few times
	deadline := time.After(2 * time.Second)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			pubC.Publish("ctrl", []byte("ping"))
		case p := <-ch:
			if string(p) != "ping" {
				t.Fatalf("payload %q", p)
			}
			return
		case <-deadline:
			t.Fatal("never received publish")
		}
	}
}

func TestTCPCrossClient(t *testing.T) {
	_, s := startServer(t)
	a, _ := Dial(s.Addr())
	defer a.Close()
	b, _ := Dial(s.Addr())
	defer b.Close()
	go func() {
		time.Sleep(20 * time.Millisecond)
		a.LPush("shared", []byte("x"))
	}()
	p, err := b.BRPop("shared", 2*time.Second)
	if err != nil || string(p) != "x" {
		t.Fatalf("%q %v", p, err)
	}
}

func TestTCPManyMessages(t *testing.T) {
	_, s := startServer(t)
	c, _ := Dial(s.Addr())
	defer c.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := c.LPush("q", []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		p, err := c.BRPop("q", time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if string(p) != fmt.Sprintf("m%03d", i) {
			t.Fatalf("out of order at %d: %q", i, p)
		}
	}
}

func TestClientCloseUnblocksBRPop(t *testing.T) {
	// Regression: Close must not wait on the request mutex a blocked
	// BRPop(timeout=0) holds — closing the connection is what unblocks it.
	_, s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	popErr := make(chan error, 1)
	go func() {
		_, err := c.BRPop("never", 0)
		popErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close deadlocked on blocked BRPop")
	}
	select {
	case err := <-popErr:
		if err == nil {
			t.Fatal("BRPop should fail after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("BRPop never unblocked")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	b := NewBroker()
	s, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := Dial(s.Addr())
	defer c.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := c.BRPop("q", 0)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	b.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("expected error after server close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client never unblocked")
	}
}
