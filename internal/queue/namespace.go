package queue

import "fmt"

// Namespace prefixes every broker key and channel a workload touches, so
// independent workloads — most importantly the control plane's concurrent
// training jobs — can share one broker without any cross-delivery. The
// empty namespace is the historical single-job layout ("dlion:data:<id>"),
// so pre-control-plane deployments keep their exact key shapes.
//
// A job's namespace is "dlion:job:<id>:"; inside it the same sub-key
// conventions apply as at the root (a data list per worker, named channels
// for broadcasts). Isolation is purely lexical: the broker needs no new
// machinery, and a frame published into one namespace can never surface in
// another because no key of one namespace is a key of any other (job ids
// cannot contain ':', enforced by ValidJobID).
type Namespace string

// JobNamespace returns the namespace of the training job with the given id:
// "dlion:job:<id>:". Callers must validate the id with ValidJobID first.
func JobNamespace(jobID string) Namespace {
	return Namespace("dlion:job:" + jobID + ":")
}

// DataKey returns the broker list key carrying a worker's inbound data
// within this namespace. The empty namespace yields the historical
// "dlion:data:<id>" keys.
func (ns Namespace) DataKey(worker int) string {
	if ns == "" {
		return fmt.Sprintf("dlion:data:%d", worker)
	}
	return fmt.Sprintf("%sdata:%d", string(ns), worker)
}

// Channel returns a namespaced PUB/SUB channel name. The empty namespace
// returns name unchanged, so root-level channels (e.g. the serving weight
// feed) keep their documented names.
func (ns Namespace) Channel(name string) string {
	return string(ns) + name
}

// ValidJobID reports whether id is usable as a job namespace component:
// 1–64 characters of [a-zA-Z0-9._-]. The character set excludes ':' (the
// key separator) and whitespace, which is what makes namespaces disjoint.
func ValidJobID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
