package queue

import (
	"context"
	"testing"
	"time"

	"dlion/internal/obs"
)

func TestBrokerMetrics(t *testing.T) {
	b := NewBroker()
	reg := obs.NewRegistry()
	b.SetMetrics(reg)

	b.LPush("k", []byte("a"))
	b.LPush("k", []byte("b"))
	if snap := reg.Snapshot(); snap["queue.pushed"] != 2 || snap["queue.list_depth"] != 2 {
		t.Fatalf("after pushes: %v", snap)
	}
	if _, ok := b.RPop("k"); !ok {
		t.Fatal("RPop failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := b.BRPop(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["queue.popped"] != 2 || snap["queue.list_depth"] != 0 {
		t.Fatalf("after pops: %v", snap)
	}
	if snap["queue.list_depth.max"] != 2 {
		t.Fatalf("depth high-water = %d, want 2", snap["queue.list_depth.max"])
	}

	// A hand-off to a blocked waiter counts as push+pop without touching depth.
	got := make(chan []byte, 1)
	go func() {
		p, _ := b.BRPop(context.Background(), "w")
		got <- p
	}()
	waitForWaiter(t, b, "w")
	b.LPush("w", []byte("x"))
	<-got
	snap = reg.Snapshot()
	if snap["queue.pushed"] != 3 || snap["queue.popped"] != 3 || snap["queue.list_depth"] != 0 {
		t.Fatalf("after hand-off: %v", snap)
	}

	// PUB/SUB delivery and drop-oldest accounting.
	sub, err := b.Subscribe("c", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	b.Publish("c", []byte("1"))
	b.Publish("c", []byte("2")) // buffer full: drops "1"
	snap = reg.Snapshot()
	if snap["queue.published"] != 2 || snap["queue.pub_dropped"] != 1 {
		t.Fatalf("pub accounting: %v", snap)
	}
}

// waitForWaiter blocks until a BRPop waiter is registered on key.
func waitForWaiter(t *testing.T, b *Broker, key string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		b.mu.Lock()
		n := len(b.waiters[key])
		b.mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("waiter never registered")
}

func TestReconnectAttemptsCounted(t *testing.T) {
	reg := obs.NewRegistry()
	// No broker behind this address: every operation fails and retries.
	r := DialReconnecting("127.0.0.1:1", ReconnectConfig{
		InitialBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, MaxAttempts: 3})
	r.SetMetrics(reg)
	defer r.Close()
	if err := r.LPush("k", []byte("x")); err == nil {
		t.Fatal("push against dead broker succeeded")
	}
	if got := reg.Snapshot()["queue.reconnect_attempts"]; got < 2 {
		t.Fatalf("reconnect_attempts = %d, want >= 2", got)
	}
}
