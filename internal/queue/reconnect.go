package queue

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dlion/internal/obs"
)

// ReconnectConfig tunes ReconnectingClient's backoff behavior. The zero
// value selects the documented defaults.
type ReconnectConfig struct {
	// InitialBackoff is the first retry delay (default 50ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
	// Jitter randomizes each delay by ±Jitter fraction so a fleet of
	// clients does not stampede a restarting broker. It must lie in
	// [0, 1]: below 0 the scale factor is meaningless, above 1 a delay
	// can go negative and fire immediately, defeating the backoff. The
	// zero value selects the default 0.2 (use a tiny epsilon like 1e-9
	// for effectively-unjittered backoff).
	Jitter float64
	// MaxAttempts bounds the dial attempts per operation; 0 retries until
	// the client is closed.
	MaxAttempts int
}

// Validate reports whether the configuration is usable. Zero values are
// valid (they select the defaults); Jitter outside [0, 1] is not.
func (c ReconnectConfig) Validate() error {
	if c.Jitter < 0 || c.Jitter > 1 {
		return fmt.Errorf("queue: reconnect jitter %g outside [0, 1]", c.Jitter)
	}
	return nil
}

func (c ReconnectConfig) withDefaults() ReconnectConfig {
	if c.InitialBackoff <= 0 {
		c.InitialBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	return c
}

// ReconnectingClient wraps Client with transparent reconnection: when an
// operation fails on a broken connection it redials the broker with
// exponential backoff plus jitter and retries, and subscriptions
// re-subscribe on the new connection. A broker restart or transient TCP
// failure therefore stalls callers instead of killing them — the recovery
// posture production transports (e.g. gRPC channels) take. Note the
// delivery guarantee stays at-most-once: frames in flight when the
// connection died are gone.
type ReconnectingClient struct {
	addr string
	cfg  ReconnectConfig

	mu     sync.Mutex
	c      *Client
	closed bool
	done   chan struct{}
	subWG  sync.WaitGroup

	mReconnects *obs.Counter // nil-safe; see SetMetrics
}

// SetMetrics wires the client's retry accounting into a registry
// (METRICS.md: queue.reconnect_attempts counts every backoff-then-retry
// cycle). Call before issuing operations.
func (r *ReconnectingClient) SetMetrics(reg *obs.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mReconnects = reg.Counter("queue.reconnect_attempts")
}

// DialReconnecting returns a client for the broker at addr. The connection
// is established lazily on first use, so the broker may come up after the
// client does. It panics when cfg fails Validate — a misconfigured jitter
// is a programming error, and surfacing it at dial time beats a backoff
// that silently fires immediately; call cfg.Validate first to reject
// operator-supplied values gracefully.
func DialReconnecting(addr string, cfg ReconnectConfig) *ReconnectingClient {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &ReconnectingClient{addr: addr, cfg: cfg.withDefaults(),
		done: make(chan struct{})}
}

// client returns the live connection, dialing if needed.
func (r *ReconnectingClient) client() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.c != nil {
		return r.c, nil
	}
	c, err := Dial(r.addr)
	if err != nil {
		return nil, err
	}
	r.c = c
	return c, nil
}

// invalidate discards a connection that produced an error, unless a
// concurrent operation already replaced it.
func (r *ReconnectingClient) invalidate(c *Client) {
	r.mu.Lock()
	if r.c == c {
		r.c = nil
	}
	r.mu.Unlock()
	c.Close()
}

// jittered scales d by a uniform factor in [1-Jitter, 1+Jitter]. With
// Jitter validated into [0, 1] the result can never go negative.
func (r *ReconnectingClient) jittered(d time.Duration) time.Duration {
	j := 1 + r.cfg.Jitter*(2*rand.Float64()-1)
	return time.Duration(float64(d) * j)
}

// backoff sleeps for the jittered delay, aborting early on Close. It
// returns the next delay: doubled, capped at MaxBackoff.
func (r *ReconnectingClient) backoff(d time.Duration) (time.Duration, error) {
	r.mu.Lock()
	c := r.mReconnects
	r.mu.Unlock()
	c.Inc()
	select {
	case <-time.After(r.jittered(d)):
	case <-r.done:
		return d, ErrClosed
	}
	d *= 2
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	return d, nil
}

// do runs op against the current connection, redialing and retrying on
// connection errors. Errors that are protocol answers rather than broken
// pipes (ErrTimeout) pass straight through.
func (r *ReconnectingClient) do(op func(*Client) error) error {
	delay := r.cfg.InitialBackoff
	for attempt := 1; ; attempt++ {
		c, err := r.client()
		if err == nil {
			err = op(c)
			if err == nil || errors.Is(err, ErrTimeout) {
				return err
			}
			r.invalidate(c)
		} else if errors.Is(err, ErrClosed) {
			return err
		}
		if r.cfg.MaxAttempts > 0 && attempt >= r.cfg.MaxAttempts {
			return err
		}
		if delay, err = r.backoff(delay); err != nil {
			return err
		}
	}
}

// Publish sends payload to all subscribers of channel.
func (r *ReconnectingClient) Publish(channel string, payload []byte) error {
	return r.do(func(c *Client) error { return c.Publish(channel, payload) })
}

// LPush appends payload to the named list.
func (r *ReconnectingClient) LPush(key string, payload []byte) error {
	return r.do(func(c *Client) error { return c.LPush(key, payload) })
}

// BRPop blocks until an element is available on key or timeout elapses,
// reconnecting across broker restarts. The server-side wait restarts from
// zero after each reconnect, so with a flapping broker the total wait can
// exceed timeout.
func (r *ReconnectingClient) BRPop(key string, timeout time.Duration) ([]byte, error) {
	var out []byte
	err := r.do(func(c *Client) error {
		p, err := c.BRPop(key, timeout)
		if err == nil {
			out = p
		}
		return err
	})
	return out, err
}

// Subscribe returns a channel of payloads published to channel. Unlike
// Client.Subscribe, the stream survives broker restarts: when the
// underlying subscription connection drops, the client resubscribes with
// backoff and keeps the same receive channel. The channel closes only when
// the client is closed. Messages published while disconnected are lost
// (PUB/SUB semantics, as with Redis).
func (r *ReconnectingClient) Subscribe(channel string, buf int) (<-chan []byte, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if buf < 1 {
		buf = 64
	}
	out := make(chan []byte, buf)
	r.subWG.Add(1)
	r.mu.Unlock()
	go r.subscribeLoop(channel, buf, out)
	return out, nil
}

func (r *ReconnectingClient) subscribeLoop(channel string, buf int, out chan []byte) {
	defer r.subWG.Done()
	defer close(out)
	delay := r.cfg.InitialBackoff
	for {
		select {
		case <-r.done:
			return
		default:
		}
		c, err := r.client()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return
			}
			if delay, err = r.backoff(delay); err != nil {
				return
			}
			continue
		}
		in, err := c.Subscribe(channel, buf)
		if err != nil {
			r.invalidate(c)
			if delay, err = r.backoff(delay); err != nil {
				return
			}
			continue
		}
		delay = r.cfg.InitialBackoff // connected: reset the backoff ladder
		for p := range in {
			select {
			case out <- p:
			case <-r.done:
				return
			}
		}
		// in closed: the subscription connection dropped; resubscribe.
	}
}

// Close tears down the client; all subscription channels close and pending
// operations return ErrClosed.
func (r *ReconnectingClient) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.subWG.Wait()
		return nil
	}
	r.closed = true
	close(r.done)
	c := r.c
	r.c = nil
	r.mu.Unlock()
	var err error
	if c != nil {
		err = c.Close()
	}
	r.subWG.Wait()
	return err
}
