package queue

import (
	"context"
	"testing"
	"time"
)

func BenchmarkLPushRPop(b *testing.B) {
	br := NewBroker()
	defer br.Close()
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.LPush("q", payload)
		br.RPop("q")
	}
}

func BenchmarkPublishFanout4(b *testing.B) {
	br := NewBroker()
	defer br.Close()
	for i := 0; i < 4; i++ {
		s, _ := br.Subscribe("c", b.N+1)
		defer s.Cancel()
	}
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Publish("c", payload)
	}
}

func BenchmarkBRPopHandoff(b *testing.B) {
	br := NewBroker()
	defer br.Close()
	payload := make([]byte, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			if _, err := br.BRPop(context.Background(), "q"); err != nil {
				return
			}
		}
	}()
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.LPush("q", payload)
	}
	<-done
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	br := NewBroker()
	defer br.Close()
	srv, err := Serve(br, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.LPush("q", payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c.BRPop("q", time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
