// Package queue is the Redis substitute in this DLion reproduction. The
// original prototype used Redis PUB/SUB for control signaling and Redis
// lists for gradient/weight data queues (§4.2); this package provides the
// same two primitives — fan-out publish/subscribe channels and blocking
// FIFO lists — as an in-memory broker, plus a TCP server/client pair so
// real-mode workers in separate processes can share one broker just as the
// prototype's workers shared one Redis.
package queue

import (
	"context"
	"errors"
	"sync"

	"dlion/internal/obs"
)

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = errors.New("queue: broker closed")

// Broker is an in-memory message broker with PUB/SUB channels and blocking
// FIFO lists. All methods are safe for concurrent use.
type Broker struct {
	mu      sync.Mutex
	closed  bool
	nextSub int
	subs    map[string]map[int]*Subscription
	lists   map[string][][]byte
	waiters map[string][]chan []byte
	queued  int // total items across all lists (drives the depth gauge)

	// Metric handles (nil-safe no-ops until SetMetrics is called).
	mPublished  *obs.Counter
	mPubDropped *obs.Counter
	mPushed     *obs.Counter
	mPopped     *obs.Counter
	mDepth      *obs.Gauge
}

// SetMetrics wires the broker's counters into a registry (METRICS.md:
// queue.published, queue.pub_dropped, queue.pushed, queue.popped, and the
// queue.list_depth gauge). Call before serving traffic; without it the
// broker runs uninstrumented at no cost.
func (b *Broker) SetMetrics(r *obs.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mPublished = r.Counter("queue.published")
	b.mPubDropped = r.Counter("queue.pub_dropped")
	b.mPushed = r.Counter("queue.pushed")
	b.mPopped = r.Counter("queue.popped")
	b.mDepth = r.Gauge("queue.list_depth")
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		subs:    map[string]map[int]*Subscription{},
		lists:   map[string][][]byte{},
		waiters: map[string][]chan []byte{},
	}
}

// Subscription is a live PUB/SUB subscription. Receive from C; call Cancel
// when done. C is closed on Cancel and on broker Close.
type Subscription struct {
	C       <-chan []byte
	c       chan []byte
	id      int
	channel string
	b       *Broker
	once    sync.Once
}

// Cancel removes the subscription and closes C.
func (s *Subscription) Cancel() {
	s.once.Do(func() {
		s.b.mu.Lock()
		if m := s.b.subs[s.channel]; m != nil {
			delete(m, s.id)
			if len(m) == 0 {
				delete(s.b.subs, s.channel)
			}
		}
		s.b.mu.Unlock()
		close(s.c)
	})
}

// Subscribe registers interest in a channel. buf is the subscriber's queue
// depth; a full subscriber drops the oldest message (slow consumers never
// block publishers, as with Redis client output buffers).
func (b *Broker) Subscribe(channel string, buf int) (*Subscription, error) {
	if buf < 1 {
		buf = 64
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.nextSub++
	s := &Subscription{c: make(chan []byte, buf), id: b.nextSub, channel: channel, b: b}
	s.C = s.c
	m := b.subs[channel]
	if m == nil {
		m = map[int]*Subscription{}
		b.subs[channel] = m
	}
	m[s.id] = s
	return s, nil
}

// Publish delivers payload to every current subscriber of channel and
// returns how many received it (after drop-oldest handling).
func (b *Broker) Publish(channel string, payload []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	n := 0
	for _, s := range b.subs[channel] {
		for {
			select {
			case s.c <- payload:
				n++
			default:
				// full: drop oldest and retry once
				select {
				case <-s.c:
					b.mPubDropped.Inc()
					continue
				default:
				}
			}
			break
		}
	}
	b.mPublished.Add(int64(n))
	return n, nil
}

// LPush appends payload to the list's tail. Combined with BRPop (which
// takes from the head) the list is FIFO, matching the prototype's
// LPUSH/BRPOP usage. If a consumer is blocked on the key, the payload is
// handed to it directly.
func (b *Broker) LPush(key string, payload []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	b.mPushed.Inc()
	if ws := b.waiters[key]; len(ws) > 0 {
		w := ws[0]
		b.waiters[key] = ws[1:]
		w <- payload // waiter channel is buffered size 1
		b.mPopped.Inc()
		return nil
	}
	b.lists[key] = append(b.lists[key], payload)
	b.queued++
	b.mDepth.Set(int64(b.queued))
	return nil
}

// RPop removes and returns the head of the list, reporting ok=false when
// the list is empty.
func (b *Broker) RPop(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	l := b.lists[key]
	if len(l) == 0 {
		return nil, false
	}
	head := b.popLocked(key, l)
	return head, true
}

// popLocked removes the head of list l (known non-empty) under b.mu,
// maintaining the depth accounting.
func (b *Broker) popLocked(key string, l [][]byte) []byte {
	head := l[0]
	if len(l) == 1 {
		delete(b.lists, key)
	} else {
		b.lists[key] = l[1:]
	}
	b.queued--
	b.mDepth.Set(int64(b.queued))
	b.mPopped.Inc()
	return head
}

// BRPop blocks until an element is available on key or ctx is done.
func (b *Broker) BRPop(ctx context.Context, key string) ([]byte, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if l := b.lists[key]; len(l) > 0 {
		head := b.popLocked(key, l)
		b.mu.Unlock()
		return head, nil
	}
	w := make(chan []byte, 1)
	b.waiters[key] = append(b.waiters[key], w)
	b.mu.Unlock()

	select {
	case p, ok := <-w:
		if !ok {
			return nil, ErrClosed
		}
		return p, nil
	case <-ctx.Done():
		// remove ourselves; a concurrent LPush may already have handed us a
		// payload, in which case prefer delivering it.
		b.mu.Lock()
		ws := b.waiters[key]
		for i, c := range ws {
			if c == w {
				b.waiters[key] = append(ws[:i:i], ws[i+1:]...)
				break
			}
		}
		b.mu.Unlock()
		select {
		case p, ok := <-w:
			if ok {
				return p, nil
			}
			return nil, ErrClosed
		default:
		}
		return nil, ctx.Err()
	}
}

// Len returns the current length of a list.
func (b *Broker) Len(key string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.lists[key])
}

// Close shuts the broker down: all subscriptions are closed and blocked
// BRPops return ErrClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := b.subs
	waiters := b.waiters
	b.subs = map[string]map[int]*Subscription{}
	b.waiters = map[string][]chan []byte{}
	b.mu.Unlock()
	for _, m := range subs {
		for _, s := range m {
			s.once.Do(func() { close(s.c) })
		}
	}
	for _, ws := range waiters {
		for _, w := range ws {
			close(w)
		}
	}
}
