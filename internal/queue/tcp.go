package queue

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire protocol: each request frame is
//
//	[1B cmd][2B keyLen][key][4B payloadLen][payload]
//
// cmdPublish and cmdLPush have no response. cmdBRPop carries an 8-byte
// little-endian timeout in milliseconds as payload and receives a response
// frame [1B status][4B len][payload] (status 0 = ok, 1 = timeout). After
// cmdSubscribe the connection becomes push-only: the server streams
// [4B len][payload] frames until either side closes, mirroring Redis's
// dedicated-subscriber-connection model.
const (
	cmdPublish = 1
	cmdLPush   = 2
	cmdBRPop   = 3
	cmdSub     = 4
)

const maxFrame = 64 << 20

// Server exposes a Broker over TCP.
type Server struct {
	broker *Broker
	ln     net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Serve starts a TCP server for b on addr (use "127.0.0.1:0" for an
// ephemeral port) and returns once listening.
func Serve(b *Broker, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{broker: b, ln: ln, conns: map[net.Conn]struct{}{}}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes all connections. The broker itself is
// left open (it may be shared).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cancel()
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		cmd, key, payload, err := readRequest(r)
		if err != nil {
			return
		}
		switch cmd {
		case cmdPublish:
			s.broker.Publish(key, payload)
		case cmdLPush:
			s.broker.LPush(key, payload)
		case cmdBRPop:
			if len(payload) != 8 {
				return
			}
			timeout := time.Duration(binary.LittleEndian.Uint64(payload)) * time.Millisecond
			ctx, cancel := contextWithOptionalTimeout(s.ctx, timeout)
			data, err := s.broker.BRPop(ctx, key)
			cancel()
			status := byte(0)
			if err != nil {
				status, data = 1, nil
			}
			if err := writeResponse(w, status, data); err != nil {
				return
			}
		case cmdSub:
			s.servePush(conn, w, key)
			return
		default:
			return
		}
	}
}

func (s *Server) servePush(conn net.Conn, w *bufio.Writer, channel string) {
	sub, err := s.broker.Subscribe(channel, 256)
	if err != nil {
		return
	}
	defer sub.Cancel()
	// Detect client disconnect by reading (the client sends nothing more).
	done := make(chan struct{})
	go func() {
		io.Copy(io.Discard, conn)
		close(done)
	}()
	for {
		select {
		case p, ok := <-sub.C:
			if !ok {
				return
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
			if _, err := w.Write(hdr[:]); err != nil {
				return
			}
			if _, err := w.Write(p); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		case <-done:
			return
		}
	}
}

// contextWithOptionalTimeout returns a child of parent bounded by d, or an
// unbounded child when d <= 0 (BRPOP with timeout 0 blocks until the
// server shuts down, like Redis blocks forever).
func contextWithOptionalTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

func readRequest(r *bufio.Reader) (cmd byte, key string, payload []byte, err error) {
	cmd, err = r.ReadByte()
	if err != nil {
		return 0, "", nil, err
	}
	var klen uint16
	if err = binary.Read(r, binary.LittleEndian, &klen); err != nil {
		return 0, "", nil, err
	}
	if klen > 4096 {
		return 0, "", nil, errors.New("queue: key too long")
	}
	kb := make([]byte, klen)
	if _, err = io.ReadFull(r, kb); err != nil {
		return 0, "", nil, err
	}
	var plen uint32
	if err = binary.Read(r, binary.LittleEndian, &plen); err != nil {
		return 0, "", nil, err
	}
	if plen > maxFrame {
		return 0, "", nil, fmt.Errorf("queue: payload %d exceeds limit", plen)
	}
	payload = make([]byte, plen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, "", nil, err
	}
	return cmd, string(kb), payload, nil
}

func writeRequest(w *bufio.Writer, cmd byte, key string, payload []byte) error {
	if err := w.WriteByte(cmd); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(key))); err != nil {
		return err
	}
	if _, err := w.WriteString(key); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(payload))); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

func writeResponse(w *bufio.Writer, status byte, payload []byte) error {
	if err := w.WriteByte(status); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(payload))); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// Client talks to a queue Server. One client multiplexes Publish, LPush
// and BRPop over a single connection (calls are serialized); Subscribe
// opens a dedicated connection, as the protocol requires.
type Client struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	subMu   sync.Mutex
	subs    []net.Conn
	closed  bool
	done    chan struct{} // closed by Close; unblocks slow-consumer sends
	subWait sync.WaitGroup
}

// Dial connects to a queue server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{addr: addr, conn: conn, done: make(chan struct{}),
		r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Publish sends payload to all subscribers of channel.
func (c *Client) Publish(channel string, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return writeRequest(c.w, cmdPublish, channel, payload)
}

// LPush appends payload to the named list.
func (c *Client) LPush(key string, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return writeRequest(c.w, cmdLPush, key, payload)
}

// ErrTimeout is returned by BRPop when the server-side wait expires.
var ErrTimeout = errors.New("queue: BRPOP timeout")

// BRPop blocks until an element is available on key or timeout elapses
// (timeout <= 0 waits forever).
func (c *Client) BRPop(key string, timeout time.Duration) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var tbuf [8]byte
	ms := int64(0)
	if timeout > 0 {
		ms = int64(timeout / time.Millisecond)
		if ms == 0 {
			ms = 1
		}
	}
	binary.LittleEndian.PutUint64(tbuf[:], uint64(ms))
	if err := writeRequest(c.w, cmdBRPop, key, tbuf[:]); err != nil {
		return nil, err
	}
	status, err := c.r.ReadByte()
	if err != nil {
		return nil, err
	}
	var plen uint32
	if err := binary.Read(c.r, binary.LittleEndian, &plen); err != nil {
		return nil, err
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return nil, err
	}
	if status != 0 {
		return nil, ErrTimeout
	}
	return payload, nil
}

// Subscribe opens a dedicated connection subscribed to channel and returns
// a receive channel that closes when the connection drops or the client is
// closed.
func (c *Client) Subscribe(channel string, buf int) (<-chan []byte, error) {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(conn)
	if err := writeRequest(w, cmdSub, channel, nil); err != nil {
		conn.Close()
		return nil, err
	}
	c.subMu.Lock()
	if c.closed {
		c.subMu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	c.subs = append(c.subs, conn)
	c.subMu.Unlock()

	if buf < 1 {
		buf = 64
	}
	out := make(chan []byte, buf)
	c.subWait.Add(1)
	go func() {
		defer c.subWait.Done()
		defer close(out)
		defer conn.Close()
		r := bufio.NewReader(conn)
		for {
			var plen uint32
			if err := binary.Read(r, binary.LittleEndian, &plen); err != nil {
				return
			}
			if plen > maxFrame {
				return
			}
			payload := make([]byte, plen)
			if _, err := io.ReadFull(r, payload); err != nil {
				return
			}
			// A slow (or absent) consumer must not wedge this goroutine on
			// the channel send: it would never return to the read loop, so
			// it would never observe the closed connection and Close would
			// hang forever on subWait.Wait. The done channel breaks the tie.
			select {
			case out <- payload:
			case <-c.done:
				return
			}
		}
	}()
	return out, nil
}

// Close tears down the client and all of its subscription connections. It
// deliberately does NOT take the request mutex before closing the main
// connection: a BRPop blocked waiting for a response holds that mutex, and
// closing the connection is what unblocks it.
func (c *Client) Close() error {
	c.subMu.Lock()
	if c.closed {
		c.subMu.Unlock()
		c.subWait.Wait()
		return nil
	}
	c.closed = true
	close(c.done)
	for _, s := range c.subs {
		s.Close()
	}
	c.subs = nil
	c.subMu.Unlock()
	err := c.conn.Close()
	c.subWait.Wait()
	return err
}
