package queue

import (
	"errors"
	"net"
	"testing"
	"time"
)

func fastReconnect() ReconnectConfig {
	return ReconnectConfig{
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
	}
}

func serveBroker(t *testing.T, b *Broker, addr string) *Server {
	t.Helper()
	var srv *Server
	var err error
	// re-binding the freed port can momentarily race the old listener
	for i := 0; i < 50; i++ {
		srv, err = Serve(b, addr)
		if err == nil {
			return srv
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("rebind %s: %v", addr, err)
	return nil
}

func TestReconnectingClientSurvivesBrokerRestart(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	srv := serveBroker(t, b, "127.0.0.1:0")
	addr := srv.Addr()

	c := DialReconnecting(addr, fastReconnect())
	defer c.Close()
	if err := c.LPush("k", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if p, err := c.BRPop("k", time.Second); err != nil || string(p) != "one" {
		t.Fatalf("BRPop before restart: %q, %v", p, err)
	}

	srv.Close() // broker process dies; the broker state itself survives
	srv2 := serveBroker(t, b, addr)
	defer srv2.Close()

	// The same client must recover without any explicit redial. A write
	// into the dead socket can be silently buffered by the kernel before
	// the RST arrives (delivery is at-most-once), so prove reconnection
	// with a round-trip first: this BRPop detects the broken connection,
	// redials, and times out cleanly against the fresh broker.
	if _, err := c.BRPop("k", 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("BRPop across restart: %v, want timeout", err)
	}
	if err := c.LPush("k", []byte("two")); err != nil {
		t.Fatalf("LPush after restart: %v", err)
	}
	if p, err := c.BRPop("k", time.Second); err != nil || string(p) != "two" {
		t.Fatalf("BRPop after restart: %q, %v", p, err)
	}
}

func TestReconnectingClientLazyDial(t *testing.T) {
	// reserve an address nothing is listening on yet
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := DialReconnecting(addr, fastReconnect())
	defer c.Close()

	done := make(chan error, 1)
	go func() { done <- c.LPush("k", []byte("early")) }()

	// the broker comes up after the client started pushing
	time.Sleep(30 * time.Millisecond)
	b := NewBroker()
	defer b.Close()
	srv := serveBroker(t, b, addr)
	defer srv.Close()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("LPush through lazy dial: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("LPush never recovered after the broker came up")
	}
	if p, err := c.BRPop("k", time.Second); err != nil || string(p) != "early" {
		t.Fatalf("BRPop: %q, %v", p, err)
	}
}

func TestReconnectingSubscribeResubscribes(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	srv := serveBroker(t, b, "127.0.0.1:0")
	addr := srv.Addr()

	c := DialReconnecting(addr, fastReconnect())
	defer c.Close()
	sub, err := c.Subscribe("ch", 16)
	if err != nil {
		t.Fatal(err)
	}

	pub := DialReconnecting(addr, fastReconnect())
	defer pub.Close()

	recvOne := func(stage string) {
		deadline := time.After(5 * time.Second)
		for {
			// publish repeatedly: PUB/SUB drops messages sent while the
			// subscriber is (re)connecting
			if err := pub.Publish("ch", []byte(stage)); err != nil {
				t.Fatalf("%s publish: %v", stage, err)
			}
			select {
			case p, ok := <-sub:
				if !ok {
					t.Fatalf("%s: subscription channel closed", stage)
				}
				if string(p) == stage {
					return
				}
			case <-deadline:
				t.Fatalf("%s: nothing received", stage)
			case <-time.After(10 * time.Millisecond):
			}
		}
	}

	recvOne("before")
	srv.Close()
	srv2 := serveBroker(t, b, addr)
	defer srv2.Close()
	recvOne("after") // the same channel must deliver again post-restart
}

func TestReconnectingClientMaxAttempts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cfg := fastReconnect()
	cfg.MaxAttempts = 3
	c := DialReconnecting(addr, cfg)
	defer c.Close()
	start := time.Now()
	if err := c.LPush("k", []byte("x")); err == nil {
		t.Fatal("LPush to a dead address with MaxAttempts must fail")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("bounded retries took too long — backoff not bounded?")
	}
}

func TestReconnectingClientCloseUnblocks(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := DialReconnecting(addr, fastReconnect())
	done := make(chan error, 1)
	go func() {
		_, err := c.BRPop("k", 0) // retries forever against a dead address
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("BRPop should fail after Close")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not unblock the retry loop")
	}
}

// TestSubscribeSlowConsumerClose: a subscriber that never drains its
// channel must not wedge Close — the reader goroutine used to block on the
// channel send forever, so Close hung on subWait.Wait().
func TestSubscribeSlowConsumerClose(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe("ch", 1); err != nil { // deliberately never read
		t.Fatal(err)
	}
	// overflow the 1-slot client buffer so the reader goroutine is blocked
	// mid-send when Close arrives
	pub, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 0; i < 16; i++ {
		if err := pub.Publish("ch", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond) // let the frames reach the reader

	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a slow consumer")
	}
}

// TestServerSurvivesClientVanishingMidBRPop: a client that disappears while
// its BRPop is parked server-side must not wedge the server — Close has to
// finish promptly and other clients keep working.
func TestServerSurvivesClientVanishingMidBRPop(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	popErr := make(chan error, 1)
	go func() {
		_, err := c.BRPop("empty", 0) // blocks server-side forever
		popErr <- err
	}()
	time.Sleep(100 * time.Millisecond) // request reaches the broker wait

	// the client dies abruptly mid-BRPop
	if err := c.Close(); err != nil {
		t.Fatalf("client close: %v", err)
	}
	if err := <-popErr; err == nil {
		t.Fatal("BRPop should fail when its connection dies")
	}

	// the server must still serve fresh clients...
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.LPush("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if p, err := c2.BRPop("k", time.Second); err != nil || string(p) != "v" {
		t.Fatalf("BRPop on healthy client: %q, %v", p, err)
	}
	c2.Close()

	// ...and shut down promptly despite the vanished waiter
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close hung after abrupt client disconnect")
	}
}

// TestReconnectConfigValidate pins the documented jitter bound: anything
// in [0, 1] is usable, anything outside is rejected.
func TestReconnectConfigValidate(t *testing.T) {
	for _, j := range []float64{0, 1e-9, 0.2, 0.5, 1} {
		if err := (ReconnectConfig{Jitter: j}).Validate(); err != nil {
			t.Errorf("jitter %g rejected: %v", j, err)
		}
	}
	for _, j := range []float64{-1, -0.01, 1.01, 2} {
		if err := (ReconnectConfig{Jitter: j}).Validate(); err == nil {
			t.Errorf("jitter %g accepted, want error", j)
		}
	}
}

// TestDialReconnectingRejectsBadJitter: an out-of-range jitter is a
// programming error surfaced at dial time, not a silent misbehavior.
func TestDialReconnectingRejectsBadJitter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DialReconnecting accepted jitter 1.5")
		}
	}()
	DialReconnecting("127.0.0.1:0", ReconnectConfig{Jitter: 1.5})
}

// TestBackoffGrowthCapAndJitter pins the retry ladder: delays double from
// InitialBackoff up to MaxBackoff and stay capped there, and each sleep is
// scaled by a uniform factor inside the ±Jitter envelope — never outside
// it, and in particular never negative.
func TestBackoffGrowthCapAndJitter(t *testing.T) {
	r := DialReconnecting("127.0.0.1:0", ReconnectConfig{
		InitialBackoff: time.Millisecond,
		MaxBackoff:     8 * time.Millisecond,
		Jitter:         0.5,
	})
	defer r.Close()

	// growth and cap: the returned next-delay sequence is deterministic
	d := r.cfg.InitialBackoff
	var got []time.Duration
	for i := 0; i < 6; i++ {
		next, err := r.backoff(d)
		if err != nil {
			t.Fatalf("backoff: %v", err)
		}
		got = append(got, next)
		d = next
	}
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond, 8 * time.Millisecond,
		8 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("backoff ladder %v, want %v", got, want)
		}
	}

	// jitter envelope: the scale factor stays within ±Jitter of 1
	lo, hi := 500*time.Millisecond, 1500*time.Millisecond
	sawLow, sawHigh := false, false
	for i := 0; i < 500; i++ {
		j := r.jittered(time.Second)
		if j < lo || j > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", j, lo, hi)
		}
		if j < 900*time.Millisecond {
			sawLow = true
		}
		if j > 1100*time.Millisecond {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Fatal("jitter never spread beyond ±10%: not actually randomizing")
	}

	// defaulted config: zero jitter selects the documented 0.2
	r2 := DialReconnecting("127.0.0.1:0", ReconnectConfig{})
	defer r2.Close()
	if r2.cfg.Jitter != 0.2 {
		t.Fatalf("default jitter %g, want 0.2", r2.cfg.Jitter)
	}
}
