package tensor

import (
	"math"
	"testing"
)

// quantRef computes the float reference y = x·Wᵀ + bias for error-bound
// checks, plus the worst-case quantization error bound per element:
// |y_q - y| ≤ Σ_p (sa/2·|w| + sw/2·|x| + sa·sw/4), the first-order bound of
// two symmetric round-half-away quantizers.
func quantRef(x, w []float32, m, k, n int, bias []float32, aScales, wScales []float32) (ref, bound []float32) {
	ref = make([]float32, m*n)
	bound = make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc, b float64
			sa, sw := float64(aScales[i]), float64(wScales[j])
			for p := 0; p < k; p++ {
				xv, wv := float64(x[i*k+p]), float64(w[j*k+p])
				acc += xv * wv
				b += sa/2*math.Abs(wv) + sw/2*math.Abs(xv) + sa*sw/4
			}
			if bias != nil {
				acc += float64(bias[j])
			}
			ref[i*n+j] = float32(acc)
			// Headroom for the float32 rounding of the dequant multiplies.
			bound[i*n+j] = float32(b*1.01) + 1e-5
		}
	}
	return ref, bound
}

func runQuantMatMul(t *testing.T, m, k, n int, withBias bool) {
	t.Helper()
	r := newTestRand(int64(m*1000 + k*10 + n))
	x := randTensor(r, m, k)
	w := randTensor(r, n, k)
	var bias []float32
	if withBias {
		bias = randTensor(r, n).Data
	}

	q := PackQuantMat(w.Data, n, k)
	qa := make([]int16, m*q.PackedK())
	aScales := make([]float32, m)
	QuantizeRowsI8(qa, aScales, x.Data, m, k)
	dst := make([]float32, m*n)
	q.MatMulTransB(dst, qa, aScales, m, bias)

	ref, bound := quantRef(x.Data, w.Data, m, k, n, bias, aScales, q.Scales)
	for i := range ref {
		if err := float64(dst[i] - ref[i]); math.Abs(err) > float64(bound[i]) {
			t.Fatalf("m=%d k=%d n=%d: dst[%d]=%g ref=%g err=%g > bound %g",
				m, k, n, i, dst[i], ref[i], err, bound[i])
		}
	}
}

// TestQuantMatMulMatchesFloat checks the quantized product against the f32
// reference within the analytic quantization error bound, across shapes
// that exercise odd k (pair padding), partial final panels, and m=1.
func TestQuantMatMulMatchesFloat(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{1, 7, 3},
		{4, 16, 16},
		{3, 33, 17},
		{8, 64, 40},
		{2, 100, 130},
	}
	for _, s := range shapes {
		runQuantMatMul(t, s.m, s.k, s.n, false)
		runQuantMatMul(t, s.m, s.k, s.n, true)
	}
}

// TestInt8PanelKernelsAgree pins exact equality between the AVX2 VPMADDWD
// kernel and the portable int32 kernel on random panels — the determinism
// contract for quantized inference.
func TestInt8PanelKernelsAgree(t *testing.T) {
	if !useWideKernel {
		t.Skip("no AVX2 kernel on this CPU")
	}
	r := newTestRand(42)
	for trial := 0; trial < 50; trial++ {
		kp := 1 + r.intn(64)
		a := make([]int16, 2*kp)
		pb := make([]int16, 2*qmNR*kp)
		for i := range a {
			a[i] = int16(r.intn(255) - 127)
		}
		for i := range pb {
			pb[i] = int16(r.intn(255) - 127)
		}
		var want, got [qmNR]int32
		mmPanelI8x16Go(&want, a, pb, kp)
		mmPanelI8x16(&got[0], &a[0], &pb[0], kp)
		if want != got {
			t.Fatalf("trial %d kp=%d: asm %v != portable %v", trial, kp, got, want)
		}
	}
}

// TestQuantMatMulDeterministic: identical results at any worker count and
// under SetDeterministic — integer accumulation leaves nothing to reorder.
func TestQuantMatMulDeterministic(t *testing.T) {
	r := newTestRand(7)
	const m, k, n = 16, 48, 32
	x := randTensor(r, m, k)
	w := randTensor(r, n, k)
	q := PackQuantMat(w.Data, n, k)
	qa := make([]int16, m*q.PackedK())
	aScales := make([]float32, m)
	QuantizeRowsI8(qa, aScales, x.Data, m, k)

	run := func() []float32 {
		dst := make([]float32, m*n)
		q.MatMulTransB(dst, qa, aScales, m, nil)
		return dst
	}
	base := run()
	prev := SetMaxWorkers(4)
	wide := run()
	SetMaxWorkers(prev)
	SetDeterministic(true)
	det := run()
	SetDeterministic(false)
	for i := range base {
		if base[i] != wide[i] || base[i] != det[i] {
			t.Fatalf("dst[%d] differs across worker configs: %g %g %g",
				i, base[i], wide[i], det[i])
		}
	}
}

// TestQuantMatZeroAndHostileRows: all-zero rows keep scale 1 (dequant
// no-op), non-finite weights quantize to code 0 instead of poisoning the
// panel, and zero-length K is tolerated.
func TestQuantMatZeroAndHostileRows(t *testing.T) {
	w := []float32{
		0, 0, 0, 0, // all-zero row
		float32(math.Inf(1)), float32(math.NaN()), 2, -4,
	}
	q := PackQuantMat(w, 2, 4)
	if q.Scales[0] != 1 {
		t.Fatalf("zero row scale %g, want 1", q.Scales[0])
	}
	// Row 1's scale comes from the finite values only (maxAbs=4).
	if q.Scales[1] != 4.0/127 {
		t.Fatalf("hostile row scale %g, want %g", q.Scales[1], 4.0/127)
	}
	x := []float32{1, 1, 1, 1}
	qa := make([]int16, q.PackedK())
	aScales := make([]float32, 1)
	QuantizeRowsI8(qa, aScales, x, 1, 4)
	dst := make([]float32, 2)
	q.MatMulTransB(dst, qa, aScales, 1, nil)
	if dst[0] != 0 {
		t.Fatalf("zero-weight output %g, want 0", dst[0])
	}
	// Inf/NaN → code 0; remaining finite terms ≈ 2 - 4 = -2.
	if math.Abs(float64(dst[1])+2) > 0.1 {
		t.Fatalf("hostile-weight output %g, want ≈ -2", dst[1])
	}

	empty := PackQuantMat(nil, 0, 0)
	empty.MatMulTransB(nil, nil, nil, 0, nil)
}

// TestInt8MatmulCounter: the tensor.int8_matmul_ns counter advances across
// quantized matmuls.
func TestInt8MatmulCounter(t *testing.T) {
	before := Int8MatmulNs()
	runQuantMatMul(t, 4, 64, 32, true)
	if Int8MatmulNs() < before {
		t.Fatal("int8 matmul ns counter went backwards")
	}
}
