// Package tensor provides dense float32 tensors and the parallel linear
// algebra kernels the neural-network substrate is built on.
//
// DLion's original prototype delegated all tensor math to TensorFlow; this
// package is the from-scratch replacement. It is deliberately small: dense
// row-major tensors, a handful of shaped constructors, and the kernels the
// layers in internal/nn need (matmul, im2col convolution, pooling,
// element-wise ops). Heavy kernels shard their outer loop across goroutines.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor. The zero value is an empty
// tensor; use New or one of the shaped constructors for anything useful.
type Tensor struct {
	Shape []int
	Data  []float32

	// wsBits records the Workspace size class when the tensor was born from
	// an arena Get; zero for ordinary tensors. Views (Reshape) and copies
	// deliberately drop it so only the original owner can recycle a buffer.
	wsBits int8
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly, not copied; len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Reshape returns a tensor sharing t's data with a new shape. The element
// count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.Shape, len(t.Data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given indices (rank must match).
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != u.Shape[i] {
			return false
		}
	}
	return true
}

// Add accumulates u into t element-wise. Shapes must have equal length.
func (t *Tensor) Add(u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: Add length mismatch")
	}
	for i, v := range u.Data {
		t.Data[i] += v
	}
}

// AddScaled accumulates alpha*u into t.
func (t *Tensor) AddScaled(alpha float32, u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AddScaled length mismatch")
	}
	for i, v := range u.Data {
		t.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Dot returns the inner product of t and u viewed as flat vectors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if len(t.Data) != len(u.Data) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i, v := range t.Data {
		s += float64(v) * float64(u.Data[i])
	}
	return s
}

// L2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// String renders a short description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.Shape)
}
