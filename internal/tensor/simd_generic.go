//go:build !amd64

package tensor

// useWideKernel gates the 32-wide AVX2 matmul path; other architectures use
// the portable 8-wide kernel.
const useWideKernel = false

// mmPanel32 is never called when useWideKernel is false.
func mmPanel32(dst *float32, a *float32, pb *float32, k int) {
	panic("tensor: mmPanel32 without SIMD support")
}

// mmPanelI8x16 is never called when useWideKernel is false.
func mmPanelI8x16(dst *int32, a *int16, pb *int16, kp int) {
	panic("tensor: mmPanelI8x16 without SIMD support")
}
