package tensor

import "testing"

func benchTensors(m, k, n int) (*Tensor, *Tensor, *Tensor) {
	r := newTestRand(1)
	return New(m, n), randTensor(r, m, k), randTensor(r, k, n)
}

func BenchmarkMatMul128(b *testing.B) {
	c, x, y := benchTensors(128, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, x, y)
	}
}

func BenchmarkMatMulTransB128(b *testing.B) {
	r := newTestRand(2)
	c := New(128, 128)
	x := randTensor(r, 128, 128)
	y := randTensor(r, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(c, x, y)
	}
}

// BenchmarkInt8MatMul128 is the quantized counterpart of
// BenchmarkMatMulTransB128: packed int8 weights, on-the-fly activation
// quantization excluded (weights pack once per Restore on the serve path).
func BenchmarkInt8MatMul128(b *testing.B) {
	r := newTestRand(2)
	const m, k, n = 128, 128, 128
	x := randTensor(r, m, k)
	w := randTensor(r, n, k)
	q := PackQuantMat(w.Data, n, k)
	qa := make([]int16, m*q.PackedK())
	aScales := make([]float32, m)
	QuantizeRowsI8(qa, aScales, x.Data, m, k)
	dst := make([]float32, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.MatMulTransB(dst, qa, aScales, m, nil)
	}
}

// BenchmarkInt8QuantizeRows prices the per-call activation quantization that
// the serve path pays on top of the packed matmul.
func BenchmarkInt8QuantizeRows(b *testing.B) {
	r := newTestRand(3)
	const m, k = 128, 128
	x := randTensor(r, m, k)
	qa := make([]int16, m*k)
	aScales := make([]float32, m)
	b.SetBytes(4 * m * k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuantizeRowsI8(qa, aScales, x.Data, m, k)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	r := newTestRand(3)
	in := randTensor(r, 32, 10, 16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(in, 3, 3, 1, 1)
	}
}

func BenchmarkAddScaled(b *testing.B) {
	r := newTestRand(4)
	x := randTensor(r, 1<<16)
	y := randTensor(r, 1<<16)
	b.SetBytes(4 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.AddScaled(0.001, y)
	}
}

func BenchmarkMaxAbs(b *testing.B) {
	r := newTestRand(5)
	x := randTensor(r, 1<<16)
	b.SetBytes(4 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.MaxAbs()
	}
}

func BenchmarkMatMulTransA128(b *testing.B) {
	r := newTestRand(6)
	c := New(128, 128)
	aT := randTensor(r, 128, 128)
	y := randTensor(r, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransA(c, aT, y)
	}
}

func BenchmarkCol2Im(b *testing.B) {
	r := newTestRand(7)
	in := randTensor(r, 32, 10, 16, 16)
	cols := Im2Col(in, 3, 3, 1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Col2Im(cols, 32, 10, 16, 16, 3, 3, 1, 1)
	}
}
