// AVX2 micro-kernel for the packed matmul engine (see kernels.go).
//
// mmPanel32 computes 32 output-row elements at once: dst[l] = sum over p of
// a[p] * pb[p*32+l], with four YMM accumulator chains. Each chain performs,
// per p, one single-precision multiply followed by one single-precision add
// (VMULPS + VADDPS, never FMA), so every lane's float32 rounding sequence is
// exactly the scalar `s += a[p] * b[p]` chain in ascending p — bit-identical
// to the pure-Go kernels for finite operands.

#include "textflag.h"

// func mmPanel32(dst *float32, a *float32, pb *float32, k int)
TEXT ·mmPanel32(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), BX
	MOVQ a+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ k+24(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	TESTQ CX, CX
	JZ    store

loop:
	VBROADCASTSS (SI), Y4
	VMULPS (DI), Y4, Y5
	VADDPS Y5, Y0, Y0
	VMULPS 32(DI), Y4, Y6
	VADDPS Y6, Y1, Y1
	VMULPS 64(DI), Y4, Y7
	VADDPS Y7, Y2, Y2
	VMULPS 96(DI), Y4, Y8
	VADDPS Y8, Y3, Y3
	ADDQ   $4, SI
	ADDQ   $128, DI
	DECQ   CX
	JNZ    loop

store:
	VMOVUPS Y0, (BX)
	VMOVUPS Y1, 32(BX)
	VMOVUPS Y2, 64(BX)
	VMOVUPS Y3, 96(BX)
	VZEROUPPER
	RET

// mmPanelI8x16 is the int8 inference kernel (see int8.go): dst[0:16] =
// Σ_pp a[2pp]·pb[pp*32+2l] + a[2pp+1]·pb[pp*32+2l+1] for l = 0..15. Each
// step broadcasts one activation k-pair as a dword and runs VPMADDWD against
// 16 interleaved weight pairs (two YMM loads), accumulating in int32 — exact
// integer arithmetic, bit-identical to the portable kernel. Operands are
// int8-range codes widened to int16, so VPMADDWD's only saturation case
// ((-32768)² in both pair lanes) is unreachable.
//
// func mmPanelI8x16(dst *int32, a *int16, pb *int16, kp int)
TEXT ·mmPanelI8x16(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), BX
	MOVQ a+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ kp+24(FP), CX

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1

	TESTQ CX, CX
	JZ    i8store

i8loop:
	VPBROADCASTD (SI), Y4
	VPMADDWD     (DI), Y4, Y5
	VPADDD       Y5, Y0, Y0
	VPMADDWD     32(DI), Y4, Y6
	VPADDD       Y6, Y1, Y1
	ADDQ         $4, SI
	ADDQ         $64, DI
	DECQ         CX
	JNZ          i8loop

i8store:
	VMOVDQU Y0, (BX)
	VMOVDQU Y1, 32(BX)
	VZEROUPPER
	RET

// func cpuHasAVX2() bool
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	// CPUID leaf 1: ECX bit 27 = OSXSAVE, bit 28 = AVX.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	BTL  $27, R8
	JCC  no
	BTL  $28, R8
	JCC  no

	// XCR0 bits 1..2: XMM and YMM state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	// CPUID leaf 7 subleaf 0: EBX bit 5 = AVX2.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	BTL  $5, BX
	JCC  no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
