package tensor

import (
	"sync"
	"sync/atomic"
)

// This file is the kernel scheduler: a persistent pool of helper goroutines
// that heavy kernels shard their outer loops across. The previous
// implementation spawned fresh goroutines on every kernel call; at
// CipherTrainStep's ~20 kernel invocations per iteration that is hundreds of
// goroutine starts per step. Helpers here are started once (lazily, up to
// SetMaxWorkers-1 of them) and then parked on a channel between calls, so a
// kernel dispatch is one pooled task, a few channel sends, and a WaitGroup.
//
// Work is distributed by atomic chunk claiming, not pre-partitioning: each
// participant (the caller plus every enlisted helper) grabs contiguous index
// chunks with a single atomic add until the range is exhausted. Every index
// is executed by exactly one goroutine, and each body(i) owns output index i
// with a fixed internal reduction order, so results are bit-identical at any
// worker count — the contract the conformance harness pins.
//
// indexBody bodies must not call back into parallelRun (no nested kernel
// parallelism): a helper blocked in a nested wait could starve the pool. No
// kernel in this package nests, and layers invoke kernels sequentially.

// indexBody is one parallel loop body. Kernels implement it on a pooled
// argument struct instead of passing closures so that a steady-state kernel
// call allocates nothing.
type indexBody interface {
	index(i int)
}

// kernTask is one parallelRun invocation, shared by the caller and the
// helpers it enlists. Tasks are pooled; the WaitGroup guarantees no helper
// touches the task after the caller's Wait returns.
type kernTask struct {
	body  indexBody
	n     int
	chunk int
	next  atomic.Int64
	wg    sync.WaitGroup
}

// run claims chunks until the index range is exhausted.
func (t *kernTask) run() {
	body, n, chunk := t.body, t.n, int64(t.chunk)
	for {
		hi := t.next.Add(chunk)
		lo := int(hi - chunk)
		if lo >= n {
			return
		}
		end := int(hi)
		if end > n {
			end = n
		}
		for i := lo; i < end; i++ {
			body.index(i)
		}
	}
}

var (
	taskPool = sync.Pool{New: func() any { return new(kernTask) }}

	// taskCh feeds parked helpers. The buffer only smooths bursts; a full
	// channel is handled by the caller keeping the work for itself.
	taskCh = make(chan *kernTask, 128)

	// helperCount is the number of persistent helpers ever started. Helpers
	// never exit; lowering SetMaxWorkers just enlists fewer per call.
	helperCount atomic.Int64
)

// helperLoop is one persistent pool worker.
func helperLoop() {
	for t := range taskCh {
		t.run()
		t.wg.Done()
	}
}

// ensureHelpers starts persistent helpers until at least want exist.
func ensureHelpers(want int64) {
	for {
		cur := helperCount.Load()
		if cur >= want {
			return
		}
		if helperCount.CompareAndSwap(cur, cur+1) {
			go helperLoop()
		}
	}
}

// parallelRun executes body.index(i) for i in [0,n) across the caller and up
// to maxWorkers-1 pool helpers. Deterministic mode and small ranges run
// inline on the caller.
func parallelRun(n int, body indexBody) {
	workers := int(maxWorkers.Load())
	if deterministic.Load() {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			body.index(i)
		}
		return
	}
	t := taskPool.Get().(*kernTask)
	t.body, t.n = body, n
	// Four chunks per participant balances load without excessive atomics.
	t.chunk = n / (workers * 4)
	if t.chunk < 1 {
		t.chunk = 1
	}
	t.next.Store(0)
	helpers := workers - 1
	ensureHelpers(int64(helpers))
	for i := 0; i < helpers; i++ {
		t.wg.Add(1)
		select {
		case taskCh <- t:
		default:
			// Every helper is busy and the queue is full; keep the rest of
			// the work on the calling goroutine rather than blocking.
			t.wg.Done()
			i = helpers
		}
	}
	t.run()
	t.wg.Wait()
	t.body = nil
	taskPool.Put(t)
}

// seqRange is the trivial indexBody adapter used by Workspace-free helpers
// and tests that need a plain function body. The function value escapes, so
// hot kernels use dedicated pooled job structs instead.
type seqRange struct{ f func(i int) }

func (s *seqRange) index(i int) { s.f(i) }

// parallelFor runs body(i) for i in [0,n) on the pool. It allocates for the
// closure; kernels on the steady-state training path use parallelRun with a
// pooled job struct.
func parallelFor(n int, body func(i int)) {
	parallelRun(n, &seqRange{f: body})
}

// ParallelReplicas runs body(i) for i in [0,n) across up to SetMaxWorkers
// goroutines. Unlike the kernel pool above, bodies MAY invoke pooled kernels:
// the fan-out uses dedicated short-lived goroutines rather than pool helpers,
// so replica-level parallelism (e.g. evaluating many model replicas) composes
// with kernel-level parallelism without the nested-wait starvation parallelRun
// forbids. Each body(i) must own the data for index i; callers merge results
// in index order afterwards, so output is independent of scheduling.
// Deterministic mode and single-worker settings run inline, in index order.
func ParallelReplicas(n int, body func(i int)) {
	workers := int(maxWorkers.Load())
	if deterministic.Load() {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	claim := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			body(i)
		}
	}
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			claim()
		}()
	}
	claim()
	wg.Wait()
}
