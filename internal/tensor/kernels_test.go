package tensor

import (
	"math"
	"testing"
)

func f32bits(v float32) uint32 { return math.Float32bits(v) }

// Seed-style reference kernels, kept deliberately naive. refMatMul is the
// original row-axpy loop with the zero-skip (c[i,:] += a[i,p]*b[p,:] for
// ascending p, skipping a[i,p]==0); refMatMulTransB is the original dense
// row-dot. The blocked/packed engine promises bit identity with these: every
// output element is one accumulator fed in ascending p order, one add per
// nonzero product. See the contract note atop kernels.go.
func refMatMul(c, a, b *Tensor, transA bool) {
	var m, k int
	if transA {
		k, m = a.Shape[0], a.Shape[1]
	} else {
		m, k = a.Shape[0], a.Shape[1]
	}
	n := b.Shape[1]
	for i := range c.Data {
		c.Data[i] = 0
	}
	for i := 0; i < m; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			var av float32
			if transA {
				av = a.Data[p*m+i]
			} else {
				av = a.Data[i*k+p]
			}
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

func refMatMulTransB(c, a, bT *Tensor) {
	m, k, n := a.Shape[0], a.Shape[1], bT.Shape[0]
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := bT.Data[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			c.Data[i*n+j] = s
		}
	}
}

// sparsify zeroes roughly half the entries (the post-ReLU regime the
// zero-skip exists for), including exact-zero products the packed kernels
// must skip identically.
func sparsify(r *testRand, t *Tensor) {
	for i := range t.Data {
		if r.intn(2) == 0 {
			t.Data[i] = 0
		}
	}
}

// TestBlockedMatMulMatchesReferenceBitExact pins the engine's bit-exactness
// contract: the packed 8-wide and 32-wide (AVX2) kernels, the transpose-pack
// paths, partial trailing panels, and the small-product fallback must all
// reproduce the seed kernels' outputs bit for bit, on dense and ~50%-sparse
// operands alike.
func TestBlockedMatMulMatchesReferenceBitExact(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	shapes := []struct{ m, k, n int }{
		{16, 16, 16},  // m*n*k == mmSmall: unblocked fallback
		{7, 19, 77},   // wide path, partial 32-panel (77 = 2*32 + 13)
		{33, 40, 64},  // wide path, exact panels
		{1, 128, 128}, // single row, pure panel sweep
		{64, 3, 33},   // tiny k, one trailing column past a panel
		{12, 50, 5},   // n <= mmNR: packed 8-wide narrow path
		{96, 31, 8},   // n == mmNR boundary
	}
	for _, dense := range []bool{true, false} {
		for _, s := range shapes {
			r := newTestRand(int64(s.m*1000 + s.k*10 + s.n))
			a := randTensor(r, s.m, s.k)
			b := randTensor(r, s.k, s.n)
			aT := randTensor(r, s.k, s.m)
			bT := randTensor(r, s.n, s.k)
			if !dense {
				sparsify(r, a)
				sparsify(r, b)
				sparsify(r, aT)
				sparsify(r, bT)
			}
			got, want := New(s.m, s.n), New(s.m, s.n)

			MatMul(got, a, b)
			refMatMul(want, a, b, false)
			diffIndex(t, "MatMul", s.m, s.k, s.n, dense, got, want)

			MatMulTransA(got, aT, b)
			refMatMul(want, aT, b, true)
			diffIndex(t, "MatMulTransA", s.m, s.k, s.n, dense, got, want)

			MatMulTransB(got, a, bT)
			refMatMulTransB(want, a, bT)
			diffIndex(t, "MatMulTransB", s.m, s.k, s.n, dense, got, want)
		}
	}
}

func diffIndex(t *testing.T, name string, m, k, n int, dense bool, got, want *Tensor) {
	t.Helper()
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s (%dx%dx%d dense=%v) not bit-exact at %d: got %v want %v (bits %08x vs %08x)",
				name, m, k, n, dense, i, got.Data[i], want.Data[i],
				f32bits(got.Data[i]), f32bits(want.Data[i]))
		}
	}
}

// TestWorkspaceReuseSameBacking verifies the arena's recycling and ownership
// rules: a Put buffer comes back from the same size class with the same
// backing array; foreign tensors and views never enter the free lists.
func TestWorkspaceReuseSameBacking(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(64, 8)
	if len(a.Data) != 512 {
		t.Fatalf("Get(64,8) len = %d", len(a.Data))
	}
	p := &a.Data[0]
	ws.Put(a)
	// Same class (512 elements), different shape: same backing array.
	b := ws.Get(16, 32)
	if &b.Data[0] != p {
		t.Fatal("workspace did not recycle the backing array within a class")
	}
	if b.Shape[0] != 16 || b.Shape[1] != 32 {
		t.Fatalf("recycled shape %v", b.Shape)
	}
	// Foreign tensors (New) and views (Reshape) are silently ignored by Put.
	ws.Put(New(64, 8))
	ws.Put(b.Reshape(512))
	ws.Put(b)
	c := ws.Get(512)
	if &c.Data[0] != p {
		t.Fatal("foreign tensor or view entered the free list ahead of the arena buffer")
	}
	// GetZeroed clears a dirty recycled buffer.
	c.Fill(3)
	ws.Put(c)
	z := ws.GetZeroed(512)
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("GetZeroed left dirty value %v at %d", v, i)
		}
	}
	// nil workspace degrades to a plain allocation.
	var nilWS *Workspace
	d := nilWS.Get(3, 4)
	if len(d.Data) != 12 {
		t.Fatalf("nil workspace Get len = %d", len(d.Data))
	}
	nilWS.Put(d) // must not panic
}

// TestIm2ColWSZeroAlloc pins the Im2Col allocation fix: once the size class
// is warm, the im2col hot path performs no net heap allocations per call.
func TestIm2ColWSZeroAlloc(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	ws := NewWorkspace()
	r := newTestRand(9)
	in := randTensor(r, 4, 3, 12, 12)
	ws.Put(Im2ColWS(ws, in, 3, 3, 1, 1)) // warm the size class
	allocs := testing.AllocsPerRun(50, func() {
		ws.Put(Im2ColWS(ws, in, 3, 3, 1, 1))
	})
	if allocs != 0 {
		t.Fatalf("Im2ColWS allocates %v times per call on a warm workspace, want 0", allocs)
	}
}
