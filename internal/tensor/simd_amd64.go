//go:build amd64

package tensor

// cpuHasAVX2 reports whether the CPU and OS support AVX2 (CPUID + XGETBV).
func cpuHasAVX2() bool

// mmPanel32 computes dst[0:32] = Σ_p a[p]·pb[p*32+0:32] with four YMM
// accumulator chains in ascending-p order (VMULPS+VADDPS, never FMA), so the
// result is bit-identical to the scalar kernels for finite operands. dst, a,
// and pb must point at ≥32, ≥k, and ≥k*32 valid floats respectively.
//
//go:noescape
func mmPanel32(dst *float32, a *float32, pb *float32, k int)

// mmPanelI8x16 computes dst[0:16] = Σ_pp a[2pp]·pb[pp*32+2l] +
// a[2pp+1]·pb[pp*32+2l+1] with VPMADDWD over int16-widened int8 codes —
// exact int32 accumulation, bit-identical to mmPanelI8x16Go. dst, a, and pb
// must point at ≥16 int32, ≥2·kp int16, and ≥32·kp int16 respectively.
//
//go:noescape
func mmPanelI8x16(dst *int32, a *int16, pb *int16, kp int)

// useWideKernel gates the 32-wide AVX2 matmul path and the int8 VPMADDWD
// panel kernel.
var useWideKernel = cpuHasAVX2()
