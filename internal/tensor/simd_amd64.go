//go:build amd64

package tensor

// cpuHasAVX2 reports whether the CPU and OS support AVX2 (CPUID + XGETBV).
func cpuHasAVX2() bool

// mmPanel32 computes dst[0:32] = Σ_p a[p]·pb[p*32+0:32] with four YMM
// accumulator chains in ascending-p order (VMULPS+VADDPS, never FMA), so the
// result is bit-identical to the scalar kernels for finite operands. dst, a,
// and pb must point at ≥32, ≥k, and ≥k*32 valid floats respectively.
//
//go:noescape
func mmPanel32(dst *float32, a *float32, pb *float32, k int)

// useWideKernel gates the 32-wide AVX2 matmul path.
var useWideKernel = cpuHasAVX2()
