package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad rank/dims: %v", x.Shape)
	}
}

func TestFromSliceAndAtSet(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", x.At(1, 2))
	}
	x.Set(42, 0, 1)
	if x.At(0, 1) != 42 {
		t.Fatalf("Set did not stick")
	}
}

func TestFromSliceBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
	if !x.SameShape(y) {
		t.Fatal("Clone changed shape")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data[3] = 9
	if x.At(1, 1) != 9 {
		t.Fatal("Reshape must share data")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.Reshape(3)
}

func TestAddAddScaledScale(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := FromSlice([]float32{10, 20}, 2)
	x.Add(y)
	if x.Data[0] != 11 || x.Data[1] != 22 {
		t.Fatalf("Add: %v", x.Data)
	}
	x.AddScaled(0.5, y)
	if x.Data[0] != 16 || x.Data[1] != 32 {
		t.Fatalf("AddScaled: %v", x.Data)
	}
	x.Scale(2)
	if x.Data[0] != 32 || x.Data[1] != 64 {
		t.Fatalf("Scale: %v", x.Data)
	}
}

func TestDotAndL2(t *testing.T) {
	x := FromSlice([]float32{3, 4}, 2)
	if got := x.Dot(x); !almostEq(got, 25, 1e-9) {
		t.Fatalf("Dot = %v, want 25", got)
	}
	if got := x.L2(); !almostEq(got, 5, 1e-9) {
		t.Fatalf("L2 = %v, want 5", got)
	}
}

func TestMaxAbs(t *testing.T) {
	x := FromSlice([]float32{-7, 3, 5}, 3)
	if got := x.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
	if got := New(0).MaxAbs(); got != 0 {
		t.Fatalf("MaxAbs empty = %v, want 0", got)
	}
}

func TestFillAndZero(t *testing.T) {
	x := New(3)
	x.Fill(2.5)
	for _, v := range x.Data {
		if v != 2.5 {
			t.Fatal("Fill failed")
		}
	}
	x.Zero()
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

// naive reference matmul for property testing
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := New(2, 2)
	MatMul(c, a, b)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		m, k, n := 1+r.intn(8), 1+r.intn(8), 1+r.intn(8)
		a, b := randTensor(r, m, k), randTensor(r, k, n)
		c := New(m, n)
		MatMul(c, a, b)
		ref := naiveMatMul(a, b)
		for i := range ref.Data {
			if !almostEq(float64(c.Data[i]), float64(ref.Data[i]), 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransAMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		m, k, n := 1+r.intn(6), 1+r.intn(6), 1+r.intn(6)
		aT := randTensor(r, k, m) // aᵀ stored as (k×m)
		b := randTensor(r, k, n)
		c := New(m, n)
		MatMulTransA(c, aT, b)
		// reference: transpose aT then naive multiply
		a := New(m, k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				a.Set(aT.At(i, j), j, i)
			}
		}
		ref := naiveMatMul(a, b)
		for i := range ref.Data {
			if !almostEq(float64(c.Data[i]), float64(ref.Data[i]), 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransBMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		m, k, n := 1+r.intn(6), 1+r.intn(6), 1+r.intn(6)
		a := randTensor(r, m, k)
		bT := randTensor(r, n, k)
		c := New(m, n)
		MatMulTransB(c, a, bT)
		b := New(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				b.Set(bT.At(i, j), j, i)
			}
		}
		ref := naiveMatMul(a, b)
		for i := range ref.Data {
			if !almostEq(float64(c.Data[i]), float64(ref.Data[i]), 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: columns are just the flattened input.
	in := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	cols := Im2Col(in, 1, 1, 1, 0)
	if cols.Shape[0] != 4 || cols.Shape[1] != 1 {
		t.Fatalf("cols shape %v", cols.Shape)
	}
	for i, want := range []float32{1, 2, 3, 4} {
		if cols.Data[i] != want {
			t.Fatalf("cols = %v", cols.Data)
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	in := FromSlice([]float32{5}, 1, 1, 1, 1)
	cols := Im2Col(in, 3, 3, 1, 1)
	// one output position, 9 values; only the center is 5
	if cols.Len() != 9 {
		t.Fatalf("len = %d", cols.Len())
	}
	for i, v := range cols.Data {
		want := float32(0)
		if i == 4 {
			want = 5
		}
		if v != want {
			t.Fatalf("cols[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestCol2ImRoundTripSums(t *testing.T) {
	// Property: sum over Col2Im(Im2Col(x)) counts each input pixel once per
	// patch it appears in; with 1x1 kernel stride 1 it is exactly x.
	f := func(seed int64) bool {
		r := newTestRand(seed)
		b, c, h, w := 1+r.intn(2), 1+r.intn(2), 2+r.intn(3), 2+r.intn(3)
		in := randTensor(r, b, c, h, w)
		cols := Im2Col(in, 1, 1, 1, 0)
		back := Col2Im(cols, b, c, h, w, 1, 1, 1, 0)
		for i := range in.Data {
			if !almostEq(float64(in.Data[i]), float64(back.Data[i]), 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSetMaxWorkers(t *testing.T) {
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	c := New(2, 2)
	MatMul(c, a, a)
	if c.At(0, 0) != 7 {
		t.Fatalf("single-worker MatMul wrong: %v", c.Data)
	}
	if got := SetMaxWorkers(-3); got != 1 {
		t.Fatalf("SetMaxWorkers returned %d, want previous 1", got)
	}
}

// TestSetMaxWorkersConcurrent adjusts the worker bound while kernels run on
// another goroutine; run under -race it pins the atomic access to maxWorkers.
func TestSetMaxWorkersConcurrent(t *testing.T) {
	old := SetMaxWorkers(2)
	defer SetMaxWorkers(old)
	a := FromSlice(make([]float32, 64), 8, 8)
	for i := range a.Data {
		a.Data[i] = float32(i)
	}
	c := New(8, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			MatMul(c, a, a)
		}
	}()
	for i := 0; i < 50; i++ {
		SetMaxWorkers(1 + i%4)
	}
	<-done
	want := New(8, 8)
	prev := SetMaxWorkers(1)
	MatMul(want, a, a)
	SetMaxWorkers(prev)
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("concurrent-resize MatMul diverged at %d: %v != %v", i, c.Data[i], want.Data[i])
		}
	}
}

// minimal deterministic PRNG for tests (xorshift), avoids math/rand seeding
// boilerplate in property tests.
type testRand struct{ s uint64 }

func newTestRand(seed int64) *testRand {
	u := uint64(seed)
	if u == 0 {
		u = 0x9e3779b97f4a7c15
	}
	return &testRand{s: u}
}

func (r *testRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *testRand) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *testRand) float32() float32 {
	return float32(r.next()%1000)/500 - 1 // [-1, 1)
}

func randTensor(r *testRand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.float32()
	}
	return t
}

func TestSetDeterministic(t *testing.T) {
	if prev := SetDeterministic(true); prev {
		t.Fatal("deterministic mode should default to off")
	}
	defer SetDeterministic(false)
	if !Deterministic() {
		t.Fatal("SetDeterministic(true) did not stick")
	}
	if prev := SetDeterministic(false); !prev {
		t.Fatal("swap did not return previous value")
	}
}

// TestKernelsBitIdenticalAcrossWorkerCounts pins the determinism contract
// the conformance harness relies on: every kernel must produce bit-identical
// float32 output at any worker count, with and without deterministic mode.
func TestKernelsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	r := newTestRand(99)
	a := randTensor(r, 37, 19)
	b := randTensor(r, 19, 23)
	bt := randTensor(r, 23, 19)
	at := randTensor(r, 19, 37)
	img := randTensor(r, 3, 2, 9, 9)
	cols := Im2Col(img, 3, 3, 2, 1)

	type result struct{ mm, ta, tb, i2c, c2i []float32 }
	compute := func() result {
		mm := New(37, 23)
		MatMul(mm, a, b)
		ta := New(37, 23)
		MatMulTransA(ta, at, b)
		tb := New(37, 23)
		MatMulTransB(tb, a, bt)
		i2c := Im2Col(img, 3, 3, 2, 1)
		c2i := Col2Im(cols, 3, 2, 9, 9, 3, 3, 2, 1)
		return result{mm.Data, ta.Data, tb.Data, i2c.Data, c2i.Data}
	}

	SetDeterministic(true)
	want := compute()
	SetDeterministic(false)
	for _, workers := range []int{1, 2, 3, 8} {
		prev := SetMaxWorkers(workers)
		got := compute()
		SetMaxWorkers(prev)
		for name, pair := range map[string][2][]float32{
			"MatMul": {want.mm, got.mm}, "MatMulTransA": {want.ta, got.ta},
			"MatMulTransB": {want.tb, got.tb}, "Im2Col": {want.i2c, got.i2c},
			"Col2Im": {want.c2i, got.c2i},
		} {
			for i := range pair[0] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("%s diverged at workers=%d index=%d: %v != %v",
						name, workers, i, pair[0][i], pair[1][i])
				}
			}
		}
	}
}
