package tensor

import (
	"math"
	"sync"
	"time"

	"dlion/internal/obs"
)

// Int8 inference engine: a quantized sibling of the packed f32 matmul in
// kernels.go, built for the serve path where weights are frozen between
// Restore calls and can be packed once.
//
// Quantization is symmetric per output channel: row j of a weight matrix W
// (N×K, the MatMulTransB orientation used by Dense and Conv2D forward) is
// stored as int8 codes with scale Scales[j] = maxAbs(W[j,:])/127, and an
// activation row i is quantized on the fly with its own scale, so
//
//	y[i][j] ≈ aScale[i] · Scales[j] · Σ_p qa[i][p]·qw[j][p] + bias[j]
//
// with one int32 dot product per output element. Codes are widened to int16
// at pack time: the AVX2 kernel is built on VPMADDWD (16 int16×int16
// multiplies + pairwise adds per instruction), which doubles MAC throughput
// over the f32 path and halves memory traffic, and int8-range operands can
// never hit VPMADDWD's lone saturation case ((-32768)² pairs).
//
// Determinism contract: both kernels accumulate in int32, which is exact —
// asm and portable paths agree bit-for-bit at any worker count, with or
// without SetDeterministic (pinned by TestInt8PanelKernelsAgree). The only
// floats are the two scale multiplies per output element, applied in a fixed
// order.

// qmNR is the int8 panel width: 16 output channels per panel, two YMM int32
// accumulators in the AVX2 kernel.
const qmNR = 16

// QuantMat is an int8-quantized, panel-packed weight matrix.
//
// Layout: K is padded to an even number of "k-pairs" (kp = ceil(K/2)) and N
// to 16-column panels. Panel pj stores, per k-pair pp, the 16 interleaved
// code pairs [w[j][2pp], w[j][2pp+1]] for j = 16pj..16pj+15 — 32 int16 = 64
// bytes, exactly the two VPMADDWD operands of one kernel step. Padded lanes
// are zero and contribute nothing to the integer accumulators.
type QuantMat struct {
	N, K   int       // logical shape: N output channels, K inputs
	kp     int       // padded k-pairs, ceil(K/2)
	panels []int16   // packed int8-range codes, ceil(N/16)·kp·32 entries
	Scales []float32 // per-output-channel dequantization scales, len N
}

// quantCodeI8 quantizes v to a symmetric int8-range code (round half away
// from zero, clamped to ±127), mirroring grad.QuantizeI8 semantics: a
// non-finite value or corrupt scale takes the zero code.
func quantCodeI8(v, scale float32) int16 {
	if !(scale > 0) || math.IsInf(float64(scale), 0) ||
		math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
		return 0
	}
	r := v / scale
	if r >= 127 {
		return 127
	}
	if r <= -127 {
		return -127
	}
	if r >= 0 {
		return int16(r + 0.5)
	}
	return int16(r - 0.5)
}

// rowScaleI8 returns the symmetric quantization scale for a row: maxAbs/127,
// or 1 for an all-zero (or non-finite) row so dequantization stays a no-op.
func rowScaleI8(row []float32) float32 {
	maxAbs := float32(0)
	for _, v := range row {
		// Branchless |v|: the sign branch mispredicts ~50% on real
		// activations, which dominates this loop.
		a := math.Float32frombits(math.Float32bits(v) &^ (1 << 31))
		if a > maxAbs && a-a == 0 { // finite values only
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / 127
}

// PackQuantMat quantizes and packs w (N×K row-major, MatMulTransB
// orientation) into the int8 panel layout. Pack once per weight snapshot;
// the result is immutable and safe for concurrent MatMulTransB calls.
func PackQuantMat(w []float32, n, k int) *QuantMat {
	if len(w) < n*k {
		panic("tensor: PackQuantMat: short weight slice")
	}
	kp := (k + 1) / 2
	nPanels := (n + qmNR - 1) / qmNR
	q := &QuantMat{
		N:      n,
		K:      k,
		kp:     kp,
		panels: make([]int16, nPanels*kp*2*qmNR),
		Scales: make([]float32, n),
	}
	for j := 0; j < n; j++ {
		q.Scales[j] = rowScaleI8(w[j*k : j*k+k])
	}
	for pj := 0; pj < nPanels; pj++ {
		base := pj * kp * 2 * qmNR
		for pp := 0; pp < kp; pp++ {
			out := q.panels[base+pp*2*qmNR:]
			for l := 0; l < qmNR; l++ {
				j := pj*qmNR + l
				if j >= n {
					continue // padded lanes stay zero
				}
				row, s := w[j*k:j*k+k], q.Scales[j]
				out[2*l] = quantCodeI8(row[2*pp], s)
				if 2*pp+1 < k {
					out[2*l+1] = quantCodeI8(row[2*pp+1], s)
				}
			}
		}
	}
	return q
}

// PackedK is the activation stride MatMulTransB expects: K rounded up to an
// even number of elements (codes per row in qa).
func (q *QuantMat) PackedK() int { return 2 * q.kp }

// QuantizeRowsI8 quantizes m activation rows of x (m×k row-major) into
// int8-range codes stored as int16, one symmetric scale per row. dst must
// hold m·(k rounded up to even) entries; the odd-k pad code is zero. Rows
// are independent, so the result is identical at any worker count.
func QuantizeRowsI8(dst []int16, scales []float32, x []float32, m, k int) {
	stride := 2 * ((k + 1) / 2)
	if len(dst) < m*stride || len(scales) < m || len(x) < m*k {
		panic("tensor: QuantizeRowsI8: short buffer")
	}
	for i := 0; i < m; i++ {
		row := x[i*k : i*k+k]
		s := rowScaleI8(row)
		scales[i] = s
		out := dst[i*stride : i*stride+stride]
		if !(s > 0) {
			// Degenerate scale (all-zero row underflowed): every code is 0.
			for p := range row {
				out[p] = 0
			}
		} else {
			// Hot path: one multiply per element instead of a divide, with
			// the scale checks hoisted out of the loop. v-v != 0 catches NaN
			// and ±Inf (both quantize to the zero code, mirroring
			// grad.QuantizeI8); the float-domain clamp bounds the rest, so
			// the int16 conversion never overflows. Rounding half away from
			// zero adds ±0.5 built branchlessly from r's sign bit — a
			// sign-dependent branch mispredicts ~50% on real activations.
			inv := 1 / s
			q := out[:len(row)]
			for p, v := range row {
				if v-v != 0 {
					q[p] = 0
					continue
				}
				r := v * inv
				if r >= 127 {
					q[p] = 127
					continue
				}
				if r <= -127 {
					q[p] = -127
					continue
				}
				half := math.Float32frombits(math.Float32bits(r)&(1<<31) | 0x3f000000)
				q[p] = int16(r + half)
			}
		}
		if stride > k {
			out[k] = 0
		}
	}
}

// mmPanelI8x16Go is the portable panel kernel: dst[l] accumulates the int32
// dot product of the activation row with packed column 16·panel+l across kp
// k-pairs. Integer adds are associative, so this is exactly the asm kernel's
// arithmetic.
func mmPanelI8x16Go(dst *[qmNR]int32, a []int16, pb []int16, kp int) {
	for l := range dst {
		dst[l] = 0
	}
	for pp := 0; pp < kp; pp++ {
		alo, ahi := int32(a[2*pp]), int32(a[2*pp+1])
		row := pb[pp*2*qmNR : pp*2*qmNR+2*qmNR]
		for l := 0; l < qmNR; l++ {
			dst[l] += alo*int32(row[2*l]) + ahi*int32(row[2*l+1])
		}
	}
}

// qmJob is the pooled per-call argument block for the parallel row loop.
type qmJob struct {
	q       *QuantMat
	dst     []float32
	qa      []int16
	aScales []float32
	bias    []float32
}

func (j *qmJob) index(i int) {
	q := j.q
	stride := 2 * q.kp
	aRow := j.qa[i*stride : i*stride+stride]
	out := j.dst[i*q.N : i*q.N+q.N]
	sa := j.aScales[i]
	var acc [qmNR]int32
	nPanels := (q.N + qmNR - 1) / qmNR
	for pj := 0; pj < nPanels; pj++ {
		pb := q.panels[pj*q.kp*2*qmNR:]
		if useWideKernel && q.kp > 0 {
			mmPanelI8x16(&acc[0], &aRow[0], &pb[0], q.kp)
		} else {
			mmPanelI8x16Go(&acc, aRow, pb, q.kp)
		}
		jBase := pj * qmNR
		w := q.N - jBase
		if w > qmNR {
			w = qmNR
		}
		for l := 0; l < w; l++ {
			y := sa * q.Scales[jBase+l] * float32(acc[l])
			if j.bias != nil {
				y += j.bias[jBase+l]
			}
			out[jBase+l] = y
		}
	}
}

var qmJobs = sync.Pool{New: func() any { return new(qmJob) }}

// MatMulTransB computes dst = dequant(qa · Wᵀ) + bias for m quantized
// activation rows: dst[i·N+j] = aScales[i]·Scales[j]·(int32 dot) + bias[j].
// qa is m rows of PackedK codes from QuantizeRowsI8; bias (len N) may be
// nil. dst must hold m·N floats. Results are bit-identical at any worker
// count and between the asm and portable kernels.
func (q *QuantMat) MatMulTransB(dst []float32, qa []int16, aScales []float32, m int, bias []float32) {
	stride := 2 * q.kp
	if len(dst) < m*q.N || len(qa) < m*stride || len(aScales) < m {
		panic("tensor: QuantMat.MatMulTransB: short buffer")
	}
	if bias != nil && len(bias) < q.N {
		panic("tensor: QuantMat.MatMulTransB: short bias")
	}
	start := time.Now()
	j := qmJobs.Get().(*qmJob)
	j.q, j.dst, j.qa, j.aScales, j.bias = q, dst, qa, aScales, bias
	parallelRun(m, j)
	*j = qmJob{}
	qmJobs.Put(j)
	i8MatmulNs.Add(time.Since(start).Nanoseconds())
}

// i8MatmulNs accumulates nanoseconds spent inside QuantMat.MatMulTransB,
// exposed as tensor.int8_matmul_ns (METRICS.md) — the serve path's direct
// view of quantized inference cost.
var i8MatmulNs = &obs.Counter{}

// Int8MatmulNs reports total nanoseconds spent in quantized matmuls.
func Int8MatmulNs() int64 { return i8MatmulNs.Load() }

// AttachQuantMetrics exposes the quantized-kernel counters on reg under the
// names documented in METRICS.md. Safe on a nil registry.
func AttachQuantMetrics(reg *obs.Registry) {
	reg.AttachCounter("tensor.int8_matmul_ns", i8MatmulNs)
}
