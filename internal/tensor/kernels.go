package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps kernel parallelism. Tests may lower it via SetMaxWorkers;
// it is read from every kernel call, so access must be atomic.
var maxWorkers atomic.Int64

// deterministic, when set, forces every kernel to execute its outer loop
// inline on the calling goroutine. The kernels in this package already
// produce bit-identical results at any worker count — each body(i) owns
// output index i and reduces sequentially — but that is a property of the
// current kernels, not of the parallelFor contract. Conformance runs
// (gradcheck, sim↔realtime equivalence, golden gates in internal/testkit)
// flip this switch so a future kernel with a cross-goroutine reduction
// cannot silently make them order-dependent.
var deterministic atomic.Bool

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetMaxWorkers bounds the number of goroutines the heavy kernels use and
// returns the previous bound. n < 1 is treated as 1. Safe to call while
// kernels run on other goroutines.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// SetDeterministic toggles deterministic-reduction mode and returns the
// previous setting. While enabled, kernels run sequentially regardless of
// SetMaxWorkers/GOMAXPROCS, guaranteeing bit-reproducible float32 results.
// Safe to call while kernels run on other goroutines; per-call sequential
// execution does not serialize independent callers against each other.
func SetDeterministic(on bool) bool {
	return deterministic.Swap(on)
}

// Deterministic reports whether deterministic-reduction mode is enabled.
func Deterministic() bool { return deterministic.Load() }

// parallelFor runs body(i) for i in [0,n) across up to maxWorkers goroutines.
// Small ranges run inline to avoid goroutine overhead.
func parallelFor(n int, body func(i int)) {
	workers := int(maxWorkers.Load())
	if deterministic.Load() {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes c = a·b for a (m×k), b (k×n), c (m×n), parallelizing over
// rows of a. c must not alias a or b.
func MatMul(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMul shape mismatch")
	}
	parallelFor(m, func(i int) {
		crow := c.Data[i*n : (i+1)*n]
		for x := range crow {
			crow[x] = 0
		}
		arow := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	})
}

// MatMulTransA computes c = aᵀ·b for a (k×m), b (k×n), c (m×n).
func MatMulTransA(c, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulTransA shape mismatch")
	}
	parallelFor(m, func(i int) {
		crow := c.Data[i*n : (i+1)*n]
		for x := range crow {
			crow[x] = 0
		}
		for p := 0; p < k; p++ {
			av := a.Data[p*m+i]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	})
}

// MatMulTransB computes c = a·bᵀ for a (m×k), b (n×k), c (m×n).
func MatMulTransB(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulTransB shape mismatch")
	}
	parallelFor(m, func(i int) {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	})
}

// Im2Col unrolls input (batch, ch, h, w) into columns of kh×kw patches with
// the given stride and zero padding, producing a
// (batch*outH*outW, ch*kh*kw) matrix suitable for convolution-as-matmul.
func Im2Col(in *Tensor, kh, kw, stride, pad int) *Tensor {
	b, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	cols := New(b*outH*outW, c*kh*kw)
	rowLen := c * kh * kw
	parallelFor(b, func(n int) {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := cols.Data[((n*outH+oy)*outW+ox)*rowLen:][:rowLen]
				ri := 0
				for ch := 0; ch < c; ch++ {
					base := ((n * c) + ch) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								row[ri] = in.Data[base+iy*w+ix]
							} else {
								row[ri] = 0
							}
							ri++
						}
					}
				}
			}
		}
	})
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters column gradients back into an
// input-shaped tensor (batch, ch, h, w), accumulating overlaps.
func Col2Im(cols *Tensor, b, c, h, w, kh, kw, stride, pad int) *Tensor {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	out := New(b, c, h, w)
	rowLen := c * kh * kw
	parallelFor(b, func(n int) {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := cols.Data[((n*outH+oy)*outW+ox)*rowLen:][:rowLen]
				ri := 0
				for ch := 0; ch < c; ch++ {
					base := ((n * c) + ch) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								out.Data[base+iy*w+ix] += row[ri]
							}
							ri++
						}
					}
				}
			}
		}
	})
	return out
}
