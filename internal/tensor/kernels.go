package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps kernel parallelism. Tests may lower it via SetMaxWorkers;
// it is read from every kernel call, so access must be atomic.
var maxWorkers atomic.Int64

// deterministic, when set, forces every kernel to execute its outer loop
// inline on the calling goroutine. The kernels in this package already
// produce bit-identical results at any worker count — each body(i) owns
// output index i and reduces sequentially — but that is a property of the
// current kernels, not of the parallelRun contract. Conformance runs
// (gradcheck, sim↔realtime equivalence, golden gates in internal/testkit)
// flip this switch so a future kernel with a cross-goroutine reduction
// cannot silently make them order-dependent.
var deterministic atomic.Bool

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetMaxWorkers bounds the number of goroutines the heavy kernels use and
// returns the previous bound. n < 1 is treated as 1. Raising the bound
// pre-spawns persistent pool helpers so the first kernel call after a resize
// does not pay goroutine startup. Safe to call while kernels run on other
// goroutines.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	if n > 1 {
		ensureHelpers(int64(n - 1))
	}
	return int(maxWorkers.Swap(int64(n)))
}

// SetDeterministic toggles deterministic-reduction mode and returns the
// previous setting. While enabled, kernels run sequentially regardless of
// SetMaxWorkers/GOMAXPROCS, guaranteeing bit-reproducible float32 results.
// Safe to call while kernels run on other goroutines; per-call sequential
// execution does not serialize independent callers against each other.
func SetDeterministic(on bool) bool {
	return deterministic.Swap(on)
}

// Deterministic reports whether deterministic-reduction mode is enabled.
func Deterministic() bool { return deterministic.Load() }

// All three matmul variants funnel into one cache-blocked, register-tiled
// engine: B is packed into 8-column panels (transposing on the fly for
// MatMulTransB, which is cheap — 8 sequential row streams), A is transposed
// once into pooled scratch for MatMulTransA (replacing k×m strided reads per
// output row with one cache-blocked pass), and every output row is produced
// by a 1×8 micro-kernel carrying 8 scalar accumulators in registers across
// the shared dimension. 8 accumulators is the sweet spot for gc on amd64:
// wider tiles (4×4 = 16 live float32s) spill to the stack and run slower
// than a plain axpy loop.
//
// The micro-kernel skips p where a's element is exactly zero, like the
// original axpy kernels. Post-ReLU activations and gradients are heavily
// sparse, so on the training path this skips a large fraction of the madds.
//
// Bit-exactness contract: every output element is produced by exactly one
// accumulator whose additions run in ascending p order, one `acc += a*b` per
// p, zero products skipped. For finite operands this is bit-identical to the
// previous kernels — skipped terms are ±0 products, and a float32 sum chain
// that only ever adds terms can never sit at -0, so adding a ±0 product
// never changes the accumulator — at any worker count, with or without
// SetDeterministic (pinned by TestBlockedMatMulMatchesReferenceBitExact and
// the testkit goldens).

// mmNR is the portable register tile width: one A row against 8 packed B
// columns (8 accumulators in XMM registers).
const mmNR = 8

// mmNRWide is the AVX2 tile width: one A row against 32 packed B columns,
// four YMM accumulator chains deep enough to hide VADDPS latency.
const mmNRWide = 32

// mmSmall is the flop threshold below which the packed path is not worth
// the panel-packing pass (gradcheck drives thousands of tiny matmuls).
const mmSmall = 4096

// packBuf is a pooled panel-packing / transpose scratch buffer.
type packBuf struct{ data []float32 }

var packPool = sync.Pool{New: func() any { return new(packBuf) }}

// getPack returns a pooled buffer of at least n floats (contents dirty).
func getPack(n int) *packBuf {
	b := packPool.Get().(*packBuf)
	if cap(b.data) < n {
		b.data = make([]float32, n)
	}
	b.data = b.data[:n]
	return b
}

func putPack(b *packBuf) { packPool.Put(b) }

// packPanels copies b (k×n, row-major) into 8-column panels: panel pj holds
// columns [8pj, 8pj+8) contiguously per p, zero-padding the final partial
// panel. Padded lanes feed accumulators that are never stored.
func packPanels(dst, b []float32, k, n int) {
	nPanels := (n + mmNR - 1) / mmNR
	for pj := 0; pj < nPanels; pj++ {
		j0 := pj * mmNR
		w := n - j0
		if w > mmNR {
			w = mmNR
		}
		out := dst[pj*k*mmNR:]
		if w == mmNR {
			for p := 0; p < k; p++ {
				src := b[p*n+j0:][:8]
				o := out[p*8:][:8]
				o[0], o[1], o[2], o[3] = src[0], src[1], src[2], src[3]
				o[4], o[5], o[6], o[7] = src[4], src[5], src[6], src[7]
			}
			continue
		}
		for p := 0; p < k; p++ {
			o := out[p*8 : p*8+8]
			o[0], o[1], o[2], o[3] = 0, 0, 0, 0
			o[4], o[5], o[6], o[7] = 0, 0, 0, 0
			copy(o, b[p*n+j0:][:w])
		}
	}
}

// packPanelsT packs panels of bᵀ directly from row-major b (n×k): panel pj
// lane l at depth p holds b[(8pj+l)*k+p]. Each full panel streams 8 rows of
// b sequentially, so the transpose costs one pass over b.
func packPanelsT(dst, b []float32, k, n int) {
	nPanels := (n + mmNR - 1) / mmNR
	for pj := 0; pj < nPanels; pj++ {
		j0 := pj * mmNR
		w := n - j0
		if w > mmNR {
			w = mmNR
		}
		out := dst[pj*k*mmNR:]
		if w == mmNR {
			b0 := b[(j0+0)*k:][:k]
			b1 := b[(j0+1)*k:][:k]
			b2 := b[(j0+2)*k:][:k]
			b3 := b[(j0+3)*k:][:k]
			b4 := b[(j0+4)*k:][:k]
			b5 := b[(j0+5)*k:][:k]
			b6 := b[(j0+6)*k:][:k]
			b7 := b[(j0+7)*k:][:k]
			for p := 0; p < k; p++ {
				o := out[p*8:][:8]
				o[0], o[1], o[2], o[3] = b0[p], b1[p], b2[p], b3[p]
				o[4], o[5], o[6], o[7] = b4[p], b5[p], b6[p], b7[p]
			}
			continue
		}
		for p := 0; p < k; p++ {
			o := out[p*8 : p*8+8]
			o[0], o[1], o[2], o[3] = 0, 0, 0, 0
			o[4], o[5], o[6], o[7] = 0, 0, 0, 0
			for l := 0; l < w; l++ {
				o[l] = b[(j0+l)*k+p]
			}
		}
	}
}

// packPanels32 is packPanels with 32-column panels for the AVX2 kernel.
func packPanels32(dst, b []float32, k, n int) {
	nPanels := (n + mmNRWide - 1) / mmNRWide
	for pj := 0; pj < nPanels; pj++ {
		j0 := pj * mmNRWide
		w := n - j0
		if w > mmNRWide {
			w = mmNRWide
		}
		out := dst[pj*k*mmNRWide:]
		if w == mmNRWide {
			for p := 0; p < k; p++ {
				copy(out[p*mmNRWide:][:mmNRWide], b[p*n+j0:][:mmNRWide])
			}
			continue
		}
		for p := 0; p < k; p++ {
			o := out[p*mmNRWide : p*mmNRWide+mmNRWide]
			for x := range o {
				o[x] = 0
			}
			copy(o, b[p*n+j0:][:w])
		}
	}
}

// packPanelsT32 is packPanelsT with 32-column panels: per p it gathers one
// element from each of 32 b-row streams, so at most 32 source cache lines
// are live and each is reused for 16 consecutive p.
func packPanelsT32(dst, b []float32, k, n int) {
	nPanels := (n + mmNRWide - 1) / mmNRWide
	for pj := 0; pj < nPanels; pj++ {
		j0 := pj * mmNRWide
		w := n - j0
		if w > mmNRWide {
			w = mmNRWide
		}
		out := dst[pj*k*mmNRWide:]
		for p := 0; p < k; p++ {
			o := out[p*mmNRWide : p*mmNRWide+mmNRWide]
			if w < mmNRWide {
				for x := range o {
					o[x] = 0
				}
			}
			idx := j0*k + p
			for l := 0; l < w; l++ {
				o[l] = b[idx]
				idx += k
			}
		}
	}
}

// transposeInto writes a (k×m, row-major) into dst as (m×k). The inner loop
// walks one source row while cycling through m destination cache lines, each
// hit 16 times over consecutive p before eviction matters.
func transposeInto(dst, a []float32, k, m int) {
	for p := 0; p < k; p++ {
		row := a[p*m:][:m]
		for i, v := range row {
			dst[i*k+p] = v
		}
	}
}

// store8 writes up to 8 accumulated values into one output row.
func store8(row []float32, w int, s0, s1, s2, s3, s4, s5, s6, s7 float32) {
	if w == mmNR {
		r := row[:8]
		r[0], r[1], r[2], r[3] = s0, s1, s2, s3
		r[4], r[5], r[6], r[7] = s4, s5, s6, s7
		return
	}
	s := [8]float32{s0, s1, s2, s3, s4, s5, s6, s7}
	copy(row[:w], s[:w])
}

// matMulJob computes rows of c = a·b against packed panels of b, with a in
// row-major (m×k) form (pre-transposed by the dispatcher when needed).
type matMulJob struct {
	c, a, bp []float32
	m, n, k  int
	nPanels  int
	wide     bool // 32-wide AVX2 panels instead of 8-wide portable ones
}

var matMulJobs = sync.Pool{New: func() any { return new(matMulJob) }}

// indexWide computes output row i with the 32-wide AVX2 micro-kernel. Full
// panels accumulate straight into the output row; the final partial panel
// lands in stack scratch first.
func (j *matMulJob) indexWide(i int) {
	k, n := j.k, j.n
	a := &j.a[i*k]
	crow := j.c[i*n : (i+1)*n]
	nFull := n / mmNRWide
	for pj := 0; pj < nFull; pj++ {
		mmPanel32(&crow[pj*mmNRWide], a, &j.bp[pj*k*mmNRWide], k)
	}
	if rem := n - nFull*mmNRWide; rem > 0 {
		var buf [mmNRWide]float32
		mmPanel32(&buf[0], a, &j.bp[nFull*k*mmNRWide], k)
		copy(crow[nFull*mmNRWide:], buf[:rem])
	}
}

// index computes output row i with the 1×8 zero-skipping micro-kernel.
func (j *matMulJob) index(i int) {
	if j.wide {
		j.indexWide(i)
		return
	}
	k, n := j.k, j.n
	ar := j.a[i*k:][:k]
	crow := j.c[i*n : (i+1)*n]
	for pj := 0; pj < j.nPanels; pj++ {
		pb := j.bp[pj*k*8:]
		var s0, s1, s2, s3, s4, s5, s6, s7 float32
		for p := 0; p < k; p++ {
			av := ar[p]
			if av == 0 {
				continue
			}
			bq := pb[p*8:][:8]
			s0 += av * bq[0]
			s1 += av * bq[1]
			s2 += av * bq[2]
			s3 += av * bq[3]
			s4 += av * bq[4]
			s5 += av * bq[5]
			s6 += av * bq[6]
			s7 += av * bq[7]
		}
		j0 := pj * mmNR
		w := n - j0
		if w > mmNR {
			w = mmNR
		}
		store8(crow[j0:], w, s0, s1, s2, s3, s4, s5, s6, s7)
	}
}

// Matmul operand layouts handled by runPacked.
const (
	mmPlain  = iota // a (m×k), b (k×n)
	mmTransA        // a (k×m), b (k×n)
	mmTransB        // a (m×k), b (n×k)
)

// runPacked dispatches the packed matmul: bring a into row-major form, pack
// panels of b (transposing when b is stored n×k), shard rows across the
// pool, recycle the scratch.
func runPacked(c, a, b []float32, m, n, k, mode int) {
	nr := mmNR
	wide := useWideKernel && n > mmNR
	if wide {
		nr = mmNRWide
	}
	nPanels := (n + nr - 1) / nr
	pk := getPack(nPanels * k * nr)
	switch {
	case mode == mmTransB && wide:
		packPanelsT32(pk.data, b, k, n)
	case mode == mmTransB:
		packPanelsT(pk.data, b, k, n)
	case wide:
		packPanels32(pk.data, b, k, n)
	default:
		packPanels(pk.data, b, k, n)
	}
	var at *packBuf
	if mode == mmTransA {
		at = getPack(m * k)
		transposeInto(at.data, a, k, m)
		a = at.data
	}
	j := matMulJobs.Get().(*matMulJob)
	j.c, j.a, j.bp = c, a, pk.data
	j.m, j.n, j.k, j.nPanels, j.wide = m, n, k, nPanels, wide
	parallelRun(m, j)
	j.c, j.a, j.bp = nil, nil, nil
	matMulJobs.Put(j)
	if at != nil {
		putPack(at)
	}
	putPack(pk)
}

// MatMul computes c = a·b for a (m×k), b (k×n), c (m×n). c must not alias
// a or b.
func MatMul(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMul shape mismatch")
	}
	if m*n*k <= mmSmall {
		matMulSmall(c.Data, a.Data, b.Data, m, n, k, false)
		return
	}
	runPacked(c.Data, a.Data, b.Data, m, n, k, mmPlain)
}

// MatMulTransA computes c = aᵀ·b for a (k×m), b (k×n), c (m×n).
func MatMulTransA(c, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulTransA shape mismatch")
	}
	if m*n*k <= mmSmall {
		matMulSmall(c.Data, a.Data, b.Data, m, n, k, true)
		return
	}
	runPacked(c.Data, a.Data, b.Data, m, n, k, mmTransA)
}

// MatMulTransB computes c = a·bᵀ for a (m×k), b (n×k), c (m×n).
func MatMulTransB(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulTransB shape mismatch")
	}
	if m*n*k <= mmSmall {
		matMulSmallTB(c.Data, a.Data, b.Data, m, n, k)
		return
	}
	runPacked(c.Data, a.Data, b.Data, m, n, k, mmTransB)
}

// matMulSmall is the unblocked fallback for tiny problems, in the same
// ascending-p zero-skipping axpy order as the tiled kernel (and the original
// kernels).
func matMulSmall(c, a, b []float32, m, n, k int, transposeA bool) {
	for i := 0; i < m; i++ {
		crow := c[i*n : (i+1)*n]
		for x := range crow {
			crow[x] = 0
		}
		for p := 0; p < k; p++ {
			var av float32
			if transposeA {
				av = a[p*m+i]
			} else {
				av = a[i*k+p]
			}
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for x, bv := range brow {
				crow[x] += av * bv
			}
		}
	}
}

// matMulSmallTB is the unblocked c = a·bᵀ fallback: plain row-dot-row
// products, ascending p.
func matMulSmallTB(c, a, b []float32, m, n, k int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for jc := 0; jc < n; jc++ {
			brow := b[jc*k : (jc+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[jc] = s
		}
	}
}

// im2colJob unrolls one batch image into patch columns.
type im2colJob struct {
	dst, src                                         []float32
	c, h, w, kh, kw, stride, pad, outH, outW, rowLen int
}

var im2colJobs = sync.Pool{New: func() any { return new(im2colJob) }}

func (j *im2colJob) index(n int) {
	c, h, w := j.c, j.h, j.w
	for oy := 0; oy < j.outH; oy++ {
		for ox := 0; ox < j.outW; ox++ {
			row := j.dst[((n*j.outH+oy)*j.outW+ox)*j.rowLen:][:j.rowLen]
			ri := 0
			for ch := 0; ch < c; ch++ {
				base := ((n * c) + ch) * h * w
				for ky := 0; ky < j.kh; ky++ {
					iy := oy*j.stride + ky - j.pad
					for kx := 0; kx < j.kw; kx++ {
						ix := ox*j.stride + kx - j.pad
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							row[ri] = j.src[base+iy*w+ix]
						} else {
							row[ri] = 0
						}
						ri++
					}
				}
			}
		}
	}
}

// Im2Col unrolls input (batch, ch, h, w) into columns of kh×kw patches with
// the given stride and zero padding, producing a
// (batch*outH*outW, ch*kh*kw) matrix suitable for convolution-as-matmul.
// The result is freshly allocated; hot paths use Im2ColWS.
func Im2Col(in *Tensor, kh, kw, stride, pad int) *Tensor {
	return Im2ColWS(nil, in, kh, kw, stride, pad)
}

// Im2ColWS is Im2Col with the column matrix drawn from ws (allocation-free
// at steady state). Every element is written, so a dirty arena buffer is
// fine. A nil ws falls back to a fresh allocation.
func Im2ColWS(ws *Workspace, in *Tensor, kh, kw, stride, pad int) *Tensor {
	b, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	cols := ws.Get(b*outH*outW, c*kh*kw)
	j := im2colJobs.Get().(*im2colJob)
	j.dst, j.src = cols.Data, in.Data
	j.c, j.h, j.w, j.kh, j.kw = c, h, w, kh, kw
	j.stride, j.pad, j.outH, j.outW, j.rowLen = stride, pad, outH, outW, c*kh*kw
	parallelRun(b, j)
	j.dst, j.src = nil, nil
	im2colJobs.Put(j)
	return cols
}

// col2imJob scatters one batch image's column gradients back to input shape.
type col2imJob struct {
	dst, src                                         []float32
	c, h, w, kh, kw, stride, pad, outH, outW, rowLen int
}

var col2imJobs = sync.Pool{New: func() any { return new(col2imJob) }}

func (j *col2imJob) index(n int) {
	c, h, w := j.c, j.h, j.w
	for oy := 0; oy < j.outH; oy++ {
		for ox := 0; ox < j.outW; ox++ {
			row := j.src[((n*j.outH+oy)*j.outW+ox)*j.rowLen:][:j.rowLen]
			ri := 0
			for ch := 0; ch < c; ch++ {
				base := ((n * c) + ch) * h * w
				for ky := 0; ky < j.kh; ky++ {
					iy := oy*j.stride + ky - j.pad
					for kx := 0; kx < j.kw; kx++ {
						ix := ox*j.stride + kx - j.pad
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							j.dst[base+iy*w+ix] += row[ri]
						}
						ri++
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters column gradients back into an
// input-shaped tensor (batch, ch, h, w), accumulating overlaps. The result
// is freshly allocated; hot paths use Col2ImWS.
func Col2Im(cols *Tensor, b, c, h, w, kh, kw, stride, pad int) *Tensor {
	return Col2ImWS(nil, cols, b, c, h, w, kh, kw, stride, pad)
}

// Col2ImWS is Col2Im with the output drawn from ws (zeroed before the
// scatter, which accumulates). A nil ws falls back to a fresh allocation.
func Col2ImWS(ws *Workspace, cols *Tensor, b, c, h, w, kh, kw, stride, pad int) *Tensor {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	out := ws.GetZeroed(b, c, h, w)
	j := col2imJobs.Get().(*col2imJob)
	j.dst, j.src = out.Data, cols.Data
	j.c, j.h, j.w, j.kh, j.kw = c, h, w, kh, kw
	j.stride, j.pad, j.outH, j.outW, j.rowLen = stride, pad, outH, outW, c*kh*kw
	parallelRun(b, j)
	j.dst, j.src = nil, nil
	col2imJobs.Put(j)
	return out
}
