package tensor

import (
	"math/bits"
	"sync/atomic"

	"dlion/internal/obs"
)

// Workspace is an arena of reusable float32 buffers organized as power-of-two
// size-class free lists. It exists to take layer activations, im2col columns,
// and gradient scratch off the garbage collector: the owner Puts a buffer
// back the moment its last consumer is done and Gets a fresh one in the same
// size class, so after one warmup iteration the training hot path recycles a
// constant working set instead of allocating ~9 MB per step.
//
// Ownership and aliasing contract (DESIGN.md §9):
//
//   - A Workspace is NOT safe for concurrent use. Each owner — one model,
//     one goroutine — holds its own; sharing one across goroutines is a race.
//   - Only tensors born from Get/GetZeroed are recyclable; Put silently
//     ignores foreign tensors (from New, FromSlice, Reshape views), so a
//     view of an arena buffer can never re-enter the free lists as a second
//     owner.
//   - Put declares the buffer dead. The caller must guarantee no live
//     reference reads it afterwards; the standard discipline is that a
//     producer Puts only its own previous output at the start of producing
//     the next one, by which time every downstream consumer has finished.
//   - Get returns a DIRTY buffer (previous contents). Use GetZeroed when the
//     kernel accumulates instead of overwriting.
type Workspace struct {
	free [wsMaxBits + 1][]*Tensor
}

const (
	// wsMinBits is the smallest tracked class, 256 elements (1 KiB): below
	// that the GC is cheap enough that recycling is not worth list traffic.
	wsMinBits = 8
	// wsMaxBits caps a class at 64 Mi elements (256 MiB) so a single huge
	// temporary cannot pin unbounded memory in a free list.
	wsMaxBits = 26
)

// NewWorkspace returns an empty arena.
func NewWorkspace() *Workspace { return &Workspace{} }

// wsClass returns the size class (ceil log2) for an n-element buffer.
func wsClass(n int) int {
	c := bits.Len(uint(n - 1))
	if c < wsMinBits {
		c = wsMinBits
	}
	return c
}

// Get returns a tensor of the given shape backed by a recycled buffer when
// one is available. Contents are unspecified. A nil workspace, an empty
// shape, or an oversize request falls back to a plain heap allocation.
func (w *Workspace) Get(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if w == nil || n <= 0 || n > 1<<wsMaxBits {
		// Equivalent of New(shape...), inlined so the variadic argument
		// never escapes: New's formatted panic would force every caller's
		// shape literal onto the heap, one allocation per Get even on the
		// recycled path.
		if n < 0 {
			panic("tensor: negative dimension in workspace Get")
		}
		return &Tensor{Shape: append(make([]int, 0, 4), shape...), Data: make([]float32, n)}
	}
	cls := wsClass(n)
	list := w.free[cls]
	if len(list) == 0 {
		wsMisses.Inc()
		t := &Tensor{
			Shape:  append(make([]int, 0, 4), shape...),
			Data:   make([]float32, n, 1<<cls),
			wsBits: int8(cls),
		}
		wsAccount(4 << cls)
		return t
	}
	t := list[len(list)-1]
	list[len(list)-1] = nil
	w.free[cls] = list[:len(list)-1]
	wsHits.Inc()
	t.Data = t.Data[:n]
	t.Shape = append(t.Shape[:0], shape...)
	wsAccount(4 << cls)
	return t
}

// GetZeroed is Get followed by zeroing — for kernels that accumulate into
// the buffer rather than overwriting every element.
func (w *Workspace) GetZeroed(shape ...int) *Tensor {
	t := w.Get(shape...)
	if w != nil && t.wsBits != 0 {
		t.Zero()
	}
	return t
}

// Put returns an arena-owned tensor to its size-class free list. nil tensors
// and tensors not obtained from Get (wsBits==0) are ignored, so callers can
// unconditionally recycle whatever they cached.
func (w *Workspace) Put(t *Tensor) {
	if w == nil || t == nil || t.wsBits == 0 {
		return
	}
	cls := int(t.wsBits)
	if cls < 0 || cls > wsMaxBits || 1<<cls > cap(t.Data) {
		return
	}
	w.free[cls] = append(w.free[cls], t)
	wsAccount(-(4 << cls))
}

// Package-wide workspace telemetry. Workspaces are per-owner, but memory
// pressure is a process property, so hits/misses/bytes aggregate globally;
// AttachWorkspaceMetrics exposes them on a Registry under the names
// documented in METRICS.md.
var (
	wsHits     = &obs.Counter{}
	wsMisses   = &obs.Counter{}
	wsInUse    = &obs.Gauge{}
	wsInUseRaw atomic.Int64
)

// wsAccount tracks bytes currently lent out across all workspaces (by class
// capacity, the figure that reflects held memory).
func wsAccount(delta int64) {
	wsInUse.Set(wsInUseRaw.Add(delta))
}

// WorkspaceStats reports the process-wide arena counters: free-list hits,
// misses (fresh allocations), and bytes currently lent out.
func WorkspaceStats() (hits, misses, bytesInUse int64) {
	return wsHits.Load(), wsMisses.Load(), wsInUseRaw.Load()
}

// AttachWorkspaceMetrics exposes the arena counters on reg as
// tensor.ws_hits, tensor.ws_misses, and tensor.ws_bytes_inuse (METRICS.md).
// Safe on a nil registry.
func AttachWorkspaceMetrics(reg *obs.Registry) {
	reg.AttachCounter("tensor.ws_hits", wsHits)
	reg.AttachCounter("tensor.ws_misses", wsMisses)
	reg.AttachGauge("tensor.ws_bytes_inuse", wsInUse)
}
