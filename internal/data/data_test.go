package data

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"dlion/internal/tensor"
)

func tinyConfig(seed uint64) Config {
	return Config{
		Name:       "tiny",
		NumClasses: 4,
		Train:      200,
		Test:       40,
		Channels:   1,
		Height:     8,
		Width:      8,
		Noise:      0.2,
		Jitter:     1,
		Bumps:      3,
		Seed:       seed,
	}
}

func TestGenerateShapes(t *testing.T) {
	train, test, err := Generate(tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 200 || test.Len() != 40 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	if train.SampleSize() != 64 {
		t.Fatalf("sample size %d", train.SampleSize())
	}
	if got := len(train.Image(5)); got != 64 {
		t.Fatalf("image len %d", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, _ := Generate(tinyConfig(7))
	b, _, _ := Generate(tinyConfig(7))
	for i := 0; i < a.Len(); i++ {
		if a.Label(i) != b.Label(i) {
			t.Fatal("labels differ across identical seeds")
		}
	}
	ai, bi := a.Image(0), b.Image(0)
	for k := range ai {
		if ai[k] != bi[k] {
			t.Fatal("pixels differ across identical seeds")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _, _ := Generate(tinyConfig(1))
	b, _, _ := Generate(tinyConfig(2))
	same := true
	ai, bi := a.Image(0), b.Image(0)
	for k := range ai {
		if ai[k] != bi[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

func TestClassBalance(t *testing.T) {
	train, _, _ := Generate(tinyConfig(3))
	counts := make([]int, 4)
	for i := 0; i < train.Len(); i++ {
		counts[train.Label(i)]++
	}
	for cls, c := range counts {
		if c != 50 {
			t.Fatalf("class %d has %d samples, want 50", cls, c)
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A nearest-template classifier should beat chance by a wide margin,
	// otherwise the dataset is unlearnable and every experiment is noise.
	cfg := tinyConfig(11)
	train, test, _ := Generate(cfg)
	sz := train.SampleSize()
	centroids := make([][]float64, cfg.NumClasses)
	counts := make([]int, cfg.NumClasses)
	for c := range centroids {
		centroids[c] = make([]float64, sz)
	}
	for i := 0; i < train.Len(); i++ {
		c := train.Label(i)
		counts[c]++
		img := train.Image(i)
		for k, v := range img {
			centroids[c][k] += float64(v)
		}
	}
	for c := range centroids {
		for k := range centroids[c] {
			centroids[c][k] /= float64(counts[c])
		}
	}
	correct := 0
	for i := 0; i < test.Len(); i++ {
		img := test.Image(i)
		best, bestD := -1, math.Inf(1)
		for c := range centroids {
			var d float64
			for k, v := range img {
				dv := float64(v) - centroids[c][k]
				d += dv * dv
			}
			if d < bestD {
				bestD, best = d, c
			}
		}
		if best == test.Label(i) {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.5 {
		t.Fatalf("nearest-centroid accuracy %.2f; dataset not separable (chance=0.25)", acc)
	}
}

func TestValidate(t *testing.T) {
	bad := tinyConfig(1)
	bad.NumClasses = 1
	if _, _, err := Generate(bad); err == nil {
		t.Fatal("1 class should fail")
	}
	bad = tinyConfig(1)
	bad.Train = 2
	if _, _, err := Generate(bad); err == nil {
		t.Fatal("tiny train set should fail")
	}
	bad = tinyConfig(1)
	bad.Height = 1
	if _, _, err := Generate(bad); err == nil {
		t.Fatal("tiny image should fail")
	}
}

func TestCIFAR10ConfigScaling(t *testing.T) {
	c := CIFAR10Config(0.01, 5)
	if c.Train != 600 || c.Test != 100 {
		t.Fatalf("scaled sizes %d/%d", c.Train, c.Test)
	}
	if c.NumClasses != 10 {
		t.Fatal("CIFAR10 must have 10 classes")
	}
	if c := CIFAR10Config(0, 5); c.Train != 60000 {
		t.Fatalf("scale<=0 should mean full size, got %d", c.Train)
	}
}

func TestImageNet100Config(t *testing.T) {
	c := ImageNet100Config(0.001, 5)
	if c.NumClasses != 100 || c.Channels != 3 {
		t.Fatalf("config %+v", c)
	}
	if c.Train != 1200 {
		t.Fatalf("train %d", c.Train)
	}
}

func TestPartitionDisjointAndComplete(t *testing.T) {
	train, _, _ := Generate(tinyConfig(9))
	shards, err := Partition(train, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	total := 0
	for _, s := range shards {
		total += s.Len()
		for _, i := range s.idx {
			if seen[i] {
				t.Fatalf("index %d in two shards", i)
			}
			seen[i] = true
		}
	}
	if total != train.Len() {
		t.Fatalf("shards cover %d of %d", total, train.Len())
	}
	// sizes within 1 of each other
	for _, s := range shards {
		if d := s.Len() - shards[0].Len(); d > 1 || d < -1 {
			t.Fatalf("uneven shards")
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	train, _, _ := Generate(tinyConfig(9))
	if _, err := Partition(train, 0, 1); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := Partition(train, train.Len()+1, 1); err == nil {
		t.Fatal("more shards than samples must fail")
	}
}

func TestNextBatchShapesAndCycle(t *testing.T) {
	train, _, _ := Generate(tinyConfig(4))
	shards, _ := Partition(train, 4, 1)
	s := shards[0]
	x, y := s.NextBatch(8)
	if x.Shape[0] != 8 || x.Shape[1] != 1 || x.Shape[2] != 8 || x.Shape[3] != 8 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if len(y) != 8 {
		t.Fatalf("labels %d", len(y))
	}
	// Drawing more than shard size must not panic and must keep labels valid.
	_, y2 := s.NextBatch(s.Len() * 2)
	for _, l := range y2 {
		if l < 0 || l >= 4 {
			t.Fatalf("bad label %d", l)
		}
	}
}

func TestNextBatchCoversEpoch(t *testing.T) {
	train, _, _ := Generate(tinyConfig(4))
	shards, _ := Partition(train, 10, 1)
	s := shards[0]
	n := s.Len()
	seen := map[int]int{}
	// one epoch worth of size-1 batches must touch every sample once
	for i := 0; i < n; i++ {
		before := s.pos
		s.NextBatch(1)
		pick := s.idx[s.ord[before]]
		seen[pick]++
	}
	if len(seen) != n {
		t.Fatalf("epoch covered %d of %d samples", len(seen), n)
	}
}

func TestEvalBatches(t *testing.T) {
	_, test, _ := Generate(tinyConfig(4))
	total := 0
	EvalBatches(test, 7, func(x *tensor.Tensor, y []int) {
		if x.Shape[0] != len(y) {
			t.Fatalf("batch mismatch %v vs %d", x.Shape, len(y))
		}
		total += len(y)
	})
	if total != test.Len() {
		t.Fatalf("eval covered %d of %d", total, test.Len())
	}
}

func TestBatchPropertyLabelsMatchImages(t *testing.T) {
	train, _, _ := Generate(tinyConfig(6))
	f := func(seed uint64) bool {
		i := int(seed % uint64(train.Len()))
		x, y := train.Batch([]int{i})
		if y[0] != train.Label(i) {
			return false
		}
		img := train.Image(i)
		for k, v := range img {
			if x.Data[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSeedDeterminismAcrossGOMAXPROCS pins the conformance harness's
// foundational assumption: generation, partitioning, and the per-shard
// batch stream are pure functions of the seed, bit-identical whether the
// runtime schedules one P or many. (Generation and shuffling are fully
// sequential today; this test keeps them that way.)
func TestSeedDeterminismAcrossGOMAXPROCS(t *testing.T) {
	type capture struct {
		pixels  []float32
		labels  []int
		batches [][]int // label sequence of successive NextBatch calls per shard
	}
	run := func() capture {
		var c capture
		train, _, err := Generate(tinyConfig(9))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < train.Len(); i++ {
			c.pixels = append(c.pixels, train.Image(i)...)
			c.labels = append(c.labels, train.Label(i))
		}
		shards, err := Partition(train, 3, 9)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range shards {
			var seq []int
			for k := 0; k < 40; k++ { // cross an epoch boundary: reshuffle included
				_, y := s.NextBatch(7)
				seq = append(seq, y...)
			}
			c.batches = append(c.batches, seq)
		}
		return c
	}

	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(prev)
	if prev == 1 {
		runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(1)
	}
	many := run()

	if len(one.pixels) != len(many.pixels) {
		t.Fatalf("pixel count %d vs %d", len(one.pixels), len(many.pixels))
	}
	for i := range one.pixels {
		if one.pixels[i] != many.pixels[i] {
			t.Fatalf("pixel %d differs across GOMAXPROCS: %v vs %v",
				i, one.pixels[i], many.pixels[i])
		}
	}
	for i := range one.labels {
		if one.labels[i] != many.labels[i] {
			t.Fatalf("label %d differs across GOMAXPROCS", i)
		}
	}
	for s := range one.batches {
		if len(one.batches[s]) != len(many.batches[s]) {
			t.Fatalf("shard %d batch stream length differs", s)
		}
		for k := range one.batches[s] {
			if one.batches[s][k] != many.batches[s][k] {
				t.Fatalf("shard %d: batch stream diverges at position %d", s, k)
			}
		}
	}
}
