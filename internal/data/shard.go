package data

import (
	"fmt"

	"dlion/internal/stats"
	"dlion/internal/tensor"
)

// Shard is one worker's disjoint slice of a dataset, with its own sampling
// stream. In DLion's model (§2.1) each worker trains on locally collected
// data; shards model that partitioning.
type Shard struct {
	ds  *Dataset
	idx []int
	rng *stats.RNG
	pos int
	ord []int // current epoch order
}

// Partition splits ds into n disjoint, contiguous shards of near-equal
// size. The dataset is pre-shuffled at generation time, so contiguous
// splits are class-balanced.
func Partition(ds *Dataset, n int, seed uint64) ([]*Shard, error) {
	if n < 1 {
		return nil, fmt.Errorf("data: cannot partition into %d shards", n)
	}
	if ds.Len() < n {
		return nil, fmt.Errorf("data: %d samples cannot fill %d shards", ds.Len(), n)
	}
	root := stats.NewRNG(seed)
	shards := make([]*Shard, n)
	per := ds.Len() / n
	rem := ds.Len() % n
	start := 0
	for w := 0; w < n; w++ {
		count := per
		if w < rem {
			count++
		}
		idx := make([]int, count)
		for i := range idx {
			idx[i] = start + i
		}
		start += count
		shards[w] = &Shard{ds: ds, idx: idx, rng: root.Split(uint64(w))}
		shards[w].reshuffle()
	}
	return shards, nil
}

func (s *Shard) reshuffle() {
	s.ord = s.rng.Perm(len(s.idx))
	s.pos = 0
}

// Len returns the number of samples in the shard.
func (s *Shard) Len() int { return len(s.idx) }

// Dataset returns the underlying dataset the shard indexes into.
func (s *Shard) Dataset() *Dataset { return s.ds }

// NextBatch draws the next m samples, cycling (and reshuffling) at epoch
// boundaries, and returns them as a (m, C, H, W) tensor plus labels. m may
// exceed the shard size; samples then repeat within the batch, which
// mirrors how a small worker keeps feeding a large LBS.
func (s *Shard) NextBatch(m int) (*tensor.Tensor, []int) {
	if m < 1 {
		panic("data: NextBatch with m < 1")
	}
	picks := make([]int, m)
	for i := 0; i < m; i++ {
		if s.pos >= len(s.ord) {
			s.reshuffle()
		}
		picks[i] = s.idx[s.ord[s.pos]]
		s.pos++
	}
	return s.ds.Batch(picks)
}

// EvalBatches iterates the whole dataset ds in batches of size m, calling
// fn with each batch. It is used for test-set evaluation (which, per the
// paper, runs every 20 iterations).
func EvalBatches(ds *Dataset, m int, fn func(x *tensor.Tensor, y []int)) {
	if m < 1 {
		panic("data: EvalBatches with m < 1")
	}
	for start := 0; start < ds.Len(); start += m {
		end := start + m
		if end > ds.Len() {
			end = ds.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, y := ds.Batch(idx)
		fn(x, y)
	}
}
