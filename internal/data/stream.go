package data

import (
	"fmt"

	"dlion/internal/stats"
)

// Continuous data: the paper's motivating workload is data "continuously
// generated from edge devices" with models that "periodically start or
// resume training with the collected data" (§1). Generator produces fresh
// samples from the same class templates over time, and Dataset/Shard grow
// to absorb them.

// Generator produces additional samples consistent with a dataset built
// from the same Config (same class templates, fresh noise and jitter).
type Generator struct {
	cfg       Config
	templates [][]float32
	rng       *stats.RNG
	produced  int
}

// NewGenerator builds a generator plus the initial train/test datasets.
// The returned datasets are identical to Generate(cfg)'s.
func NewGenerator(cfg Config) (*Generator, *Dataset, *Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	templates := makeTemplates(cfg, rng)
	train := synthesize(cfg, cfg.Train, templates, rng.Split(1))
	test := synthesize(cfg, cfg.Test, templates, rng.Split(2))
	g := &Generator{cfg: cfg, templates: templates, rng: rng.Split(3)}
	return g, train, test, nil
}

// Next produces n freshly generated samples as a standalone dataset chunk
// (class-balanced, shuffled). Successive calls draw fresh noise, modeling
// newly collected edge data.
func (g *Generator) Next(n int) *Dataset {
	if n < 1 {
		panic("data: Generator.Next with n < 1")
	}
	g.produced++
	return synthesize(g.cfg, n, g.templates, g.rng.Split(uint64(g.produced)))
}

// Append absorbs all of chunk's samples into d. The datasets must have
// identical geometry. Views created by Head before the append keep their
// original length; shards index the combined storage via Shard.Grow.
func (d *Dataset) Append(chunk *Dataset) error {
	if d.NumClasses != chunk.NumClasses || d.SampleSize() != chunk.SampleSize() {
		return fmt.Errorf("data: cannot append %q (%d classes, %d values) to %q (%d, %d)",
			chunk.Name, chunk.NumClasses, chunk.SampleSize(),
			d.Name, d.NumClasses, d.SampleSize())
	}
	d.images = append(d.images, chunk.images...)
	d.labels = append(d.labels, chunk.labels...)
	return nil
}

// Grow adds the dataset indices [from, to) to the shard's sampling pool.
// Newly added samples join the rotation at the next epoch boundary.
func (s *Shard) Grow(from, to int) error {
	if from < 0 || to > s.ds.Len() || from >= to {
		return fmt.Errorf("data: bad grow range [%d, %d) for dataset of %d", from, to, s.ds.Len())
	}
	for i := from; i < to; i++ {
		s.idx = append(s.idx, i)
	}
	return nil
}

// GrowEvenly appends chunk to the shared dataset and splits the new
// indices across the given shards round-robin — the "each micro-cloud
// collects nearby data" pattern. All shards must view the same dataset.
func GrowEvenly(ds *Dataset, chunk *Dataset, shards []*Shard) error {
	if len(shards) == 0 {
		return fmt.Errorf("data: no shards to grow")
	}
	for _, s := range shards {
		if s.ds != ds {
			return fmt.Errorf("data: shard does not view the given dataset")
		}
	}
	start := ds.Len()
	if err := ds.Append(chunk); err != nil {
		return err
	}
	for i := start; i < ds.Len(); i++ {
		s := shards[(i-start)%len(shards)]
		if err := s.Grow(i, i+1); err != nil {
			return err
		}
	}
	return nil
}
