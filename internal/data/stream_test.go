package data

import (
	"testing"
)

func TestGeneratorMatchesGenerate(t *testing.T) {
	cfg := tinyConfig(5)
	g, train, test, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refTrain, refTest, _ := Generate(cfg)
	if train.Len() != refTrain.Len() || test.Len() != refTest.Len() {
		t.Fatal("generator initial sets differ in size from Generate")
	}
	for i := 0; i < train.Len(); i++ {
		if train.Label(i) != refTrain.Label(i) {
			t.Fatal("generator initial labels differ from Generate")
		}
	}
	_ = g
}

func TestGeneratorNextFreshButConsistent(t *testing.T) {
	cfg := tinyConfig(6)
	g, train, _, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1 := g.Next(40)
	c2 := g.Next(40)
	if c1.Len() != 40 || c2.Len() != 40 {
		t.Fatal("chunk sizes")
	}
	// chunks differ from each other (fresh noise)
	same := true
	for k := range c1.Image(0) {
		if c1.Image(0)[k] != c2.Image(0)[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("successive chunks identical")
	}
	// but drawn from the same class templates: a centroid classifier
	// trained on the original data should classify chunk samples well
	sz := train.SampleSize()
	centroids := make([][]float64, cfg.NumClasses)
	counts := make([]int, cfg.NumClasses)
	for c := range centroids {
		centroids[c] = make([]float64, sz)
	}
	for i := 0; i < train.Len(); i++ {
		c := train.Label(i)
		counts[c]++
		for k, v := range train.Image(i) {
			centroids[c][k] += float64(v)
		}
	}
	for c := range centroids {
		for k := range centroids[c] {
			centroids[c][k] /= float64(counts[c])
		}
	}
	correct := 0
	for i := 0; i < c1.Len(); i++ {
		best, bestD := -1, 1e300
		for c := range centroids {
			var d float64
			for k, v := range c1.Image(i) {
				dv := float64(v) - centroids[c][k]
				d += dv * dv
			}
			if d < bestD {
				bestD, best = d, c
			}
		}
		if best == c1.Label(i) {
			correct++
		}
	}
	if acc := float64(correct) / float64(c1.Len()); acc < 0.5 {
		t.Fatalf("chunk not from same distribution: centroid acc %.2f", acc)
	}
}

func TestAppendAndGrow(t *testing.T) {
	cfg := tinyConfig(7)
	g, train, _, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := Partition(train, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int, 4)
	for i, s := range shards {
		before[i] = s.Len()
	}
	chunk := g.Next(41)
	if err := GrowEvenly(train, chunk, shards); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, s := range shards {
		grew := s.Len() - before[i]
		if grew < 10 || grew > 11 {
			t.Fatalf("shard %d grew by %d", i, grew)
		}
		total += grew
	}
	if total != 41 {
		t.Fatalf("grew %d of 41", total)
	}
	// new samples must be drawable without panic and with valid labels
	for _, s := range shards {
		for e := 0; e < 3; e++ {
			_, y := s.NextBatch(s.Len())
			for _, l := range y {
				if l < 0 || l >= cfg.NumClasses {
					t.Fatalf("bad label %d", l)
				}
			}
		}
	}
}

func TestAppendMismatch(t *testing.T) {
	a, _, _ := Generate(tinyConfig(1))
	other := tinyConfig(1)
	other.Height = 10
	b, _, _ := Generate(other)
	if err := a.Append(b); err == nil {
		t.Fatal("geometry mismatch must error")
	}
}

func TestGrowErrors(t *testing.T) {
	train, _, _ := Generate(tinyConfig(2))
	shards, _ := Partition(train, 2, 1)
	if err := shards[0].Grow(5, 5); err == nil {
		t.Fatal("empty range must error")
	}
	if err := shards[0].Grow(0, train.Len()+1); err == nil {
		t.Fatal("out-of-range must error")
	}
	chunk := train.Head(10)
	if err := GrowEvenly(train, chunk, nil); err == nil {
		t.Fatal("no shards must error")
	}
	other, _, _ := Generate(tinyConfig(3))
	otherShards, _ := Partition(other, 2, 1)
	if err := GrowEvenly(train, chunk, otherShards); err == nil {
		t.Fatal("foreign shards must error")
	}
}
