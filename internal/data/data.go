// Package data provides procedurally generated image-classification
// datasets substituting for CIFAR10 and ImageNet-100 in the DLion
// evaluation, plus the sharding and minibatch sampling machinery workers
// use.
//
// Substitution rationale (see DESIGN.md): DLion's techniques act on
// gradient statistics, data volume, and convergence dynamics — not on image
// semantics. Each class is a smooth random template (a mixture of random 2-D
// Gaussian bumps); samples are the template plus spatial jitter and pixel
// noise. A small CNN learns this task the same way it learns
// CIFAR10/MNIST: accuracy climbs quickly at first and saturates, which is
// the regime all of the paper's figures live in.
package data

import (
	"fmt"
	"math"

	"dlion/internal/stats"
	"dlion/internal/tensor"
)

// Dataset is an in-memory labeled image dataset. Images are stored in one
// flat slab, row-major (sample, channel, y, x).
type Dataset struct {
	Name       string
	NumClasses int
	Channels   int
	Height     int
	Width      int

	images []float32 // len = N * Channels*Height*Width
	labels []int32
}

// SampleSize returns the number of float32 values per image.
func (d *Dataset) SampleSize() int { return d.Channels * d.Height * d.Width }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.labels) }

// Label returns the class of sample i.
func (d *Dataset) Label(i int) int { return int(d.labels[i]) }

// Image returns the raw pixels of sample i (a view, not a copy).
func (d *Dataset) Image(i int) []float32 {
	sz := d.SampleSize()
	return d.images[i*sz : (i+1)*sz]
}

// Head returns a view dataset containing the first n samples (or all of
// them if n exceeds the size). The underlying storage is shared. Datasets
// are pre-shuffled at generation, so a head slice is class-balanced; the
// harness uses it for cheap periodic evaluation.
func (d *Dataset) Head(n int) *Dataset {
	if n <= 0 || n >= d.Len() {
		return d
	}
	sz := d.SampleSize()
	return &Dataset{Name: d.Name, NumClasses: d.NumClasses, Channels: d.Channels,
		Height: d.Height, Width: d.Width,
		images: d.images[:n*sz], labels: d.labels[:n]}
}

// Batch gathers the samples at idx into a (len(idx), C, H, W) tensor and a
// label slice. The tensor is freshly allocated.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	sz := d.SampleSize()
	x := tensor.New(len(idx), d.Channels, d.Height, d.Width)
	y := make([]int, len(idx))
	for bi, i := range idx {
		copy(x.Data[bi*sz:(bi+1)*sz], d.Image(i))
		y[bi] = d.Label(i)
	}
	return x, y
}

// Config describes a synthetic dataset to generate.
type Config struct {
	Name       string
	NumClasses int
	Train      int // number of training samples
	Test       int // number of test samples
	Channels   int
	Height     int
	Width      int
	Noise      float64 // pixel noise stddev
	Jitter     int     // max spatial shift in pixels
	Bumps      int     // Gaussian bumps per class template
	Seed       uint64
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	switch {
	case c.NumClasses < 2:
		return fmt.Errorf("data: need >=2 classes, got %d", c.NumClasses)
	case c.Train < c.NumClasses || c.Test < 1:
		return fmt.Errorf("data: train=%d test=%d too small", c.Train, c.Test)
	case c.Channels < 1 || c.Height < 4 || c.Width < 4:
		return fmt.Errorf("data: bad image dims %dx%dx%d", c.Channels, c.Height, c.Width)
	}
	return nil
}

// CIFAR10Config returns a config shaped like CIFAR10 (10 classes, 60K/10K)
// scaled by the given factor in sample count. scale=1 is the full paper
// size; the benches use smaller scales so experiments finish quickly and
// record the scale they used.
func CIFAR10Config(scale float64, seed uint64) Config {
	if scale <= 0 {
		scale = 1
	}
	return Config{
		Name:       fmt.Sprintf("synthetic-cifar10(x%.3g)", scale),
		NumClasses: 10,
		Train:      max(10, int(60000*scale)),
		Test:       max(10, int(10000*scale)),
		Channels:   1, // paper describes the Cipher input as 28x28 grayscale
		Height:     16,
		Width:      16,
		Noise:      1.3, // hard enough that accuracy saturates below 100%
		Jitter:     3,
		Bumps:      4,
		Seed:       seed,
	}
}

// ImageNet100Config returns a config shaped like the paper's 100-class
// ImageNet subset (1.2M/50K at scale=1), used with MobileNetLite on the
// simulated GPU cluster.
func ImageNet100Config(scale float64, seed uint64) Config {
	if scale <= 0 {
		scale = 1
	}
	return Config{
		Name:       fmt.Sprintf("synthetic-imagenet100(x%.3g)", scale),
		NumClasses: 100,
		Train:      max(200, int(1200000*scale)),
		Test:       max(100, int(50000*scale)),
		Channels:   3,
		Height:     16, // paper uses 256x256; scaled for single-machine runs
		Width:      16,
		Noise:      0.3,
		Jitter:     2,
		Bumps:      5,
		Seed:       seed,
	}
}

// Generate builds the train and test datasets for cfg.
func Generate(cfg Config) (train, test *Dataset, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	templates := makeTemplates(cfg, rng)
	train = synthesize(cfg, cfg.Train, templates, rng.Split(1))
	test = synthesize(cfg, cfg.Test, templates, rng.Split(2))
	return train, test, nil
}

// MustGenerate is Generate, panicking on config errors. For examples and
// benches with known-good configs.
func MustGenerate(cfg Config) (train, test *Dataset) {
	train, test, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return train, test
}

// makeTemplates builds one smooth template per class: a sum of random 2-D
// Gaussian bumps, per channel, normalized to zero mean / unit-ish range.
func makeTemplates(cfg Config, rng *stats.RNG) [][]float32 {
	sz := cfg.Channels * cfg.Height * cfg.Width
	templates := make([][]float32, cfg.NumClasses)
	for cls := range templates {
		t := make([]float32, sz)
		for b := 0; b < cfg.Bumps; b++ {
			cx := rng.Float64() * float64(cfg.Width)
			cy := rng.Float64() * float64(cfg.Height)
			sigma := 1.0 + rng.Float64()*float64(cfg.Width)/4
			amp := rng.NormFloat64() * 2
			ch := rng.Intn(cfg.Channels)
			for y := 0; y < cfg.Height; y++ {
				for x := 0; x < cfg.Width; x++ {
					dx, dy := float64(x)-cx, float64(y)-cy
					v := amp * math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
					t[(ch*cfg.Height+y)*cfg.Width+x] += float32(v)
				}
			}
		}
		normalize(t)
		templates[cls] = t
	}
	return templates
}

func normalize(t []float32) {
	var mean float64
	for _, v := range t {
		mean += float64(v)
	}
	mean /= float64(len(t))
	var ss float64
	for _, v := range t {
		d := float64(v) - mean
		ss += d * d
	}
	std := math.Sqrt(ss/float64(len(t))) + 1e-8
	for i := range t {
		t[i] = float32((float64(t[i]) - mean) / std)
	}
}

func synthesize(cfg Config, n int, templates [][]float32, rng *stats.RNG) *Dataset {
	d := &Dataset{
		Name:       cfg.Name,
		NumClasses: cfg.NumClasses,
		Channels:   cfg.Channels,
		Height:     cfg.Height,
		Width:      cfg.Width,
		images:     make([]float32, n*cfg.Channels*cfg.Height*cfg.Width),
		labels:     make([]int32, n),
	}
	sz := d.SampleSize()
	for i := 0; i < n; i++ {
		cls := i % cfg.NumClasses // balanced classes
		d.labels[i] = int32(cls)
		img := d.images[i*sz : (i+1)*sz]
		shiftX, shiftY := 0, 0
		if cfg.Jitter > 0 {
			shiftX = rng.Intn(2*cfg.Jitter+1) - cfg.Jitter
			shiftY = rng.Intn(2*cfg.Jitter+1) - cfg.Jitter
		}
		tmpl := templates[cls]
		for ch := 0; ch < cfg.Channels; ch++ {
			for y := 0; y < cfg.Height; y++ {
				sy := y + shiftY
				for x := 0; x < cfg.Width; x++ {
					sx := x + shiftX
					var v float32
					if sy >= 0 && sy < cfg.Height && sx >= 0 && sx < cfg.Width {
						v = tmpl[(ch*cfg.Height+sy)*cfg.Width+sx]
					}
					v += float32(rng.NormFloat64() * cfg.Noise)
					img[(ch*cfg.Height+y)*cfg.Width+x] = v
				}
			}
		}
	}
	// Shuffle so shards are class-balanced even with contiguous splits.
	rng.Shuffle(n, func(i, j int) {
		d.labels[i], d.labels[j] = d.labels[j], d.labels[i]
		a := d.images[i*sz : (i+1)*sz]
		b := d.images[j*sz : (j+1)*sz]
		for k := range a {
			a[k], b[k] = b[k], a[k]
		}
	})
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
