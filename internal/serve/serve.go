package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/tensor"
)

// Config assembles an inference server.
type Config struct {
	// Registry supplies model versions (required).
	Registry *Registry

	// MaxBatch is the largest micro-batch a runner coalesces (default 16).
	// 1 disables batching: every request runs its own forward pass.
	MaxBatch int

	// MaxDelay bounds how long a runner holds an underfull batch open
	// waiting for more requests (0 selects the 2ms default). Negative
	// means "never wait": the runner takes whatever is already queued
	// and runs immediately, trading batch fill for latency.
	MaxDelay time.Duration

	// QueueDepth bounds the admission queue (default 256). When it is
	// full the server sheds new requests with 429 instead of queueing
	// them into unbounded latency.
	QueueDepth int

	// Runners is the number of concurrent batch runners (default 1).
	// Each runner owns a private model replica restored from the current
	// version, so runners never contend on layer activation buffers.
	Runners int

	// Quantized switches runners to int8 inference: each runner packs its
	// restored replica into an nn.QuantModel (per-output-channel int8
	// weights, per-row activation quantization) and repacks on every
	// version swap. Predictions stay deterministic; logits carry int8
	// quantization error (see WIRE.md §precision model and EXPERIMENTS.md
	// for the accuracy/throughput trade).
	Quantized bool

	// Metrics, when non-nil, receives the serve.* counters, gauges, and
	// latency/batch histograms (METRICS.md). Nil runs uninstrumented.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = 16
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	} else if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	if c.Runners < 1 {
		c.Runners = 1
	}
	return c
}

// request is one admitted sample waiting for a runner.
type request struct {
	x    []float32
	enq  time.Time
	resp chan result // buffered size 1: runners never block on delivery
}

type result struct {
	seq    int64
	source string
	class  int
	probs  []float32
	err    error
}

// errNoModel is returned to admitted requests when no version has been
// published yet.
var errNoModel = errors.New("serve: no model version published")

// Server batches predict requests and runs them through the registry's
// current model version. It implements http.Handler; use NewServer +
// (*Server).Shutdown directly for in-process serving, or Listen for a
// TCP-bound server.
type Server struct {
	cfg     Config
	inLen   int // features per sample: channels*height*width
	classes int
	mux     *http.ServeMux

	queue chan *request

	// admitMu guards the draining flag against in-flight enqueues: Shutdown
	// takes the write lock to flip draining, which cannot succeed while any
	// handler holds the read lock mid-enqueue — after that, closing the
	// queue is safe and every admitted request is still answered.
	admitMu  sync.RWMutex
	draining bool

	runners  sync.WaitGroup
	shutOnce sync.Once
	shutErr  error

	// Metric handles (nil-safe no-ops without a registry).
	hLatency *obs.Histogram // admission → response, seconds
	hBatch   *obs.Histogram // executed batch sizes
	requests *obs.Counter
	answered *obs.Counter
	sheds    *obs.Counter
	batches  *obs.Counter
	qDepth   *obs.Gauge
}

// NewServer builds the server and starts its runners.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: nil registry")
	}
	cfg = cfg.withDefaults()
	spec := cfg.Registry.Spec()
	s := &Server{
		cfg:     cfg,
		inLen:   spec.Channels * spec.Height * spec.Width,
		classes: spec.Classes,
		queue:   make(chan *request, cfg.QueueDepth),

		hLatency: cfg.Metrics.Histogram("serve.latency"),
		hBatch:   cfg.Metrics.Histogram("serve.batch_fill"),
		requests: cfg.Metrics.Counter("serve.requests"),
		answered: cfg.Metrics.Counter("serve.answered"),
		sheds:    cfg.Metrics.Counter("serve.sheds"),
		batches:  cfg.Metrics.Counter("serve.batches"),
		qDepth:   cfg.Metrics.Gauge("serve.queue_depth"),
	}
	if s.inLen <= 0 || s.classes <= 0 {
		return nil, fmt.Errorf("serve: spec has no input geometry or classes")
	}
	if cfg.Metrics != nil {
		cfg.Registry.SetMetrics(cfg.Metrics)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/modelz", s.handleModelz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	for i := 0; i < cfg.Runners; i++ {
		s.runners.Add(1)
		go s.runner()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the server: new requests are refused with 503, every
// already-admitted request is answered, and the runners exit once the
// queue is empty. It returns ctx.Err() if draining outlives ctx (runners
// keep draining regardless). Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.admitMu.Lock()
		s.draining = true
		s.admitMu.Unlock()
		close(s.queue) // no enqueue can be in flight past the Lock above
		done := make(chan struct{})
		go func() {
			s.runners.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.shutErr = ctx.Err()
		}
	})
	return s.shutErr
}

// enqueue admits one sample into the batching queue, or reports shed=true
// when the queue is full and drain=true when the server is shutting down.
func (s *Server) enqueue(req *request) (shed, draining bool) {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		return false, true
	}
	select {
	case s.queue <- req:
		s.qDepth.Set(int64(len(s.queue)))
		return false, false
	default:
		return true, false
	}
}

// --- HTTP API ---

// PredictRequest is the /predict request body. Each input is one sample's
// flattened feature vector of length channels*height*width.
type PredictRequest struct {
	Inputs [][]float32 `json:"inputs"`
}

// Prediction is one sample's answer.
type Prediction struct {
	Class int       `json:"class"`
	Probs []float32 `json:"probs"`
}

// PredictResponse is the /predict response body. ModelSeq and ModelSource
// identify the version that produced every prediction in the response.
type PredictResponse struct {
	ModelSeq    int64        `json:"model_seq"`
	ModelSource string       `json:"model_source"`
	Predictions []Prediction `json:"predictions"`
}

// maxPredictBody bounds a /predict request body (16 MB: ~2000 CIFAR-sized
// samples, far above any sane micro-batch).
const maxPredictBody = 16 << 20

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var body PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPredictBody))
	if err := dec.Decode(&body); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body.Inputs) == 0 {
		http.Error(w, "no inputs", http.StatusBadRequest)
		return
	}
	for i, in := range body.Inputs {
		if len(in) != s.inLen {
			http.Error(w, fmt.Sprintf("input %d has %d features, want %d", i, len(in), s.inLen),
				http.StatusBadRequest)
			return
		}
	}

	// Admit each sample separately: they may land in different
	// micro-batches (and even different model versions under a swap; the
	// response reports the newest).
	now := time.Now()
	reqs := make([]*request, 0, len(body.Inputs))
	for _, in := range body.Inputs {
		req := &request{x: in, enq: now, resp: make(chan result, 1)}
		s.requests.Inc()
		if shed, draining := s.enqueue(req); draining {
			http.Error(w, "server draining", http.StatusServiceUnavailable)
			return
		} else if shed {
			s.sheds.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded: admission queue full", http.StatusTooManyRequests)
			return
		}
		reqs = append(reqs, req)
	}

	resp := PredictResponse{Predictions: make([]Prediction, 0, len(reqs))}
	for _, req := range reqs {
		res := <-req.resp
		if res.err != nil {
			http.Error(w, res.err.Error(), http.StatusServiceUnavailable)
			return
		}
		// With several samples racing a swap, report the newest version.
		if res.seq >= resp.ModelSeq {
			resp.ModelSeq, resp.ModelSource = res.seq, res.source
		}
		resp.Predictions = append(resp.Predictions, Prediction{Class: res.class, Probs: res.probs})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if s.cfg.Registry.Current() == nil {
		http.Error(w, "no model", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleModelz(w http.ResponseWriter, _ *http.Request) {
	v := s.cfg.Registry.Current()
	if v == nil {
		http.Error(w, "no model", http.StatusServiceUnavailable)
		return
	}
	resp := map[string]any{
		"seq": v.Seq, "source": v.Source, "at": v.At,
		"model": s.cfg.Registry.Spec().Kind, "ckpt_bytes": len(v.Ckpt),
		"quantized": s.cfg.Quantized,
		"digest":    v.Digest,
		"chain":     s.cfg.Registry.Chain(),
	}
	if v.Manifest != nil {
		resp["manifest"] = v.Manifest
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.cfg.Metrics.Expvar())
}

// --- batch runner ---

// runner owns one private model replica and executes micro-batches until
// the queue closes and drains. Version swaps happen between batches: the
// runner compares its replica's sequence against the registry on every
// batch and restores from the new checkpoint when it changed, so requests
// already in a batch always finish on the version they started with.
func (s *Server) runner() {
	defer s.runners.Done()
	var model *nn.Model
	var fwd forwarder
	seq := int64(-1)
	var source string
	for first := range s.queue {
		batch := s.collect(first)
		s.qDepth.Set(int64(len(s.queue)))

		v := s.cfg.Registry.Current()
		if v == nil {
			s.fail(batch, errNoModel)
			continue
		}
		if v.Seq != seq {
			if model == nil {
				model = s.cfg.Registry.Spec().Build()
			}
			if err := model.Restore(v.Ckpt); err != nil {
				// Validated at publish; only memory corruption gets here.
				s.fail(batch, fmt.Errorf("serve: restore version %d: %w", v.Seq, err))
				seq = -1
				continue
			}
			// Quantized packing captures a weight snapshot, so it must be
			// redone after every restore.
			if s.cfg.Quantized {
				fwd = nn.NewQuantModel(model)
			} else {
				fwd = model
			}
			seq, source = v.Seq, v.Source
		}

		s.run(fwd, seq, source, batch)
	}
}

// forwarder abstracts the runner's inference engine: the f32 replica or its
// int8-packed view.
type forwarder interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
}

// collect assembles a micro-batch around the first request: it keeps
// admitting queued requests until the batch is full or MaxDelay has
// passed. With MaxDelay 0 it takes only what is immediately available.
func (s *Server) collect(first *request) []*request {
	batch := append(make([]*request, 0, s.cfg.MaxBatch), first)
	if s.cfg.MaxBatch == 1 {
		return batch
	}
	if s.cfg.MaxDelay == 0 {
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.queue:
				if !ok {
					return batch
				}
				batch = append(batch, r)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(s.cfg.MaxDelay)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// run executes one micro-batch as a single forward pass and fans the rows
// back out to their requests.
func (s *Server) run(model forwarder, seq int64, source string, batch []*request) {
	spec := s.cfg.Registry.Spec()
	x := tensor.New(len(batch), spec.Channels, spec.Height, spec.Width)
	for i, req := range batch {
		copy(x.Data[i*s.inLen:(i+1)*s.inLen], req.x)
	}
	logits := model.Forward(x)
	now := time.Now()
	for i, req := range batch {
		probs, class := softmaxRow(logits.Data[i*s.classes : (i+1)*s.classes])
		req.resp <- result{seq: seq, source: source, class: class, probs: probs}
		s.hLatency.Observe(now.Sub(req.enq).Seconds())
	}
	s.batches.Inc()
	s.answered.Add(int64(len(batch)))
	s.hBatch.Observe(float64(len(batch)))
}

// fail answers every request in the batch with err.
func (s *Server) fail(batch []*request, err error) {
	for _, req := range batch {
		req.resp <- result{err: err}
	}
}

// softmaxRow computes stable softmax probabilities and the argmax class
// for one row of logits.
func softmaxRow(logits []float32) ([]float32, int) {
	maxV, class := float32(math.Inf(-1)), 0
	for i, v := range logits {
		if v > maxV {
			maxV, class = v, i
		}
	}
	probs := make([]float32, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - maxV))
		probs[i] = float32(e)
		sum += e
	}
	if sum > 0 {
		inv := float32(1 / sum)
		for i := range probs {
			probs[i] *= inv
		}
	}
	return probs, class
}

// --- TCP-bound convenience wrapper ---

// HTTPServer is a Server bound to a TCP listener.
type HTTPServer struct {
	App *Server
	hs  *http.Server
	ln  net.Listener
}

// Listen builds a server from cfg and serves it on addr (use
// "127.0.0.1:0" for an ephemeral port). It returns once listening.
func Listen(cfg Config, addr string) (*HTTPServer, error) {
	app, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		app.Shutdown(context.Background())
		return nil, err
	}
	h := &HTTPServer{App: app, hs: &http.Server{Handler: app}, ln: ln}
	go h.hs.Serve(ln)
	return h, nil
}

// Addr returns the bound address.
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// URL returns the server's base URL.
func (h *HTTPServer) URL() string { return "http://" + h.Addr() }

// Shutdown drains gracefully: the app stops admitting and answers every
// in-flight request, then the HTTP server finishes its connections.
func (h *HTTPServer) Shutdown(ctx context.Context) error {
	appErr := h.App.Shutdown(ctx)
	if err := h.hs.Shutdown(ctx); err != nil {
		return err
	}
	return appErr
}

// Close tears the server down without draining.
func (h *HTTPServer) Close() error {
	err := h.hs.Close()
	h.App.Shutdown(context.Background())
	return err
}
