// Package serve is the inference serving subsystem: it loads a model from
// an nn checkpoint and answers predict requests over HTTP with dynamic
// micro-batching, a bounded admission queue that sheds load instead of
// collapsing, and a model registry that hot-swaps new checkpoint versions
// without dropping in-flight requests.
//
// DLion trains models in place in micro-clouds precisely so they can be
// used near the data (PAPER.md §1); this package is the consumption end of
// that loop. A training cluster started with dlion-worker periodically
// publishes checkpoints — to a directory or to a queue-broker channel —
// and a dlion-serve process continuously picks them up, so the cluster
// feeds the server it trains for.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlion/internal/lineage"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/wire"
)

// ErrStaleVersion reports a Publish whose sequence number does not advance
// the registry — a reordered broadcast or a re-delivered checkpoint. The
// registry keeps the newer version; delivery order across a gossiping
// cluster is not guaranteed, so this is an expected, countable event, not
// a failure.
var ErrStaleVersion = errors.New("serve: stale model version")

// ErrManifestMismatch reports a publish whose lineage manifest does not
// commit to the checkpoint it arrived with: the manifest's digest disagrees
// with the weights actually decoded. Such a version never reaches a runner —
// serving weights under a provenance record that does not name them would
// defeat the point of lineage.
var ErrManifestMismatch = errors.New("serve: manifest does not match checkpoint")

// Version is one immutable published model snapshot. Ckpt is the raw nn
// checkpoint; readers must treat it as read-only (runners restore private
// replicas from it, so one buffer feeds any number of concurrent runners).
type Version struct {
	Seq    int64     // strictly increasing across accepted publishes
	Source string    // provenance: "init", "dir:<file>", "broadcast"
	At     time.Time // publish wall time
	Ckpt   []byte

	// Digest is the content digest of the checkpoint's weights, computed by
	// the registry itself from the validated scratch replica — present on
	// every version, manifest or not.
	Digest lineage.Hash

	// Manifest is the lineage record the publisher attached (nil for legacy
	// DLSV frames and bare directory checkpoints). When present, its digest
	// was verified against Digest at publish time.
	Manifest *lineage.Manifest
}

// ChainEntry is one accepted publish in the registry's version history —
// what /modelz exposes so an operator can answer "which weights served this
// request, and what training history produced them".
type ChainEntry struct {
	Seq      int64             `json:"seq"`
	Source   string            `json:"source"`
	At       time.Time         `json:"at"`
	Digest   lineage.Hash      `json:"digest"`
	Manifest *lineage.Manifest `json:"manifest,omitempty"`
}

// chainMax bounds the retained version history; older entries roll off.
const chainMax = 128

// Registry holds the currently served model version and swaps in new ones
// atomically. Publish validates a checkpoint against the model spec before
// it can ever reach a runner; Current is a single atomic load, so the
// request path never blocks on a swap.
type Registry struct {
	spec nn.Spec

	mu    sync.Mutex // serializes Publish (validate + ordered swap) and guards chain
	cur   atomic.Pointer[Version]
	chain []ChainEntry // accepted publishes, oldest first, bounded by chainMax

	nswaps atomic.Int64 // accepted publishes, independent of metrics wiring

	swaps      *obs.Counter
	rejected   *obs.Counter
	stale      *obs.Counter
	manRejects *obs.Counter
	seqGauge   *obs.Gauge
}

// NewRegistry returns an empty registry serving models built from spec.
func NewRegistry(spec nn.Spec) *Registry {
	return &Registry{spec: spec}
}

// SetMetrics wires the registry's counters into reg (METRICS.md:
// serve.swaps, serve.swap_rejected, serve.swap_stale,
// serve.manifest_rejects, and the serve.model_seq gauge). Call before
// publishing.
func (r *Registry) SetMetrics(reg *obs.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.swaps = reg.Counter("serve.swaps")
	r.rejected = reg.Counter("serve.swap_rejected")
	r.stale = reg.Counter("serve.swap_stale")
	r.manRejects = reg.Counter("serve.manifest_rejects")
	r.seqGauge = reg.Gauge("serve.model_seq")
}

// Spec returns the model spec versions are validated against.
func (r *Registry) Spec() nn.Spec { return r.spec }

// Current returns the live version, or nil before the first successful
// Publish. The returned version and its checkpoint are immutable.
func (r *Registry) Current() *Version { return r.cur.Load() }

// Swaps returns how many versions have been accepted.
func (r *Registry) Swaps() int64 { return r.nswaps.Load() }

// Publish validates ckpt against the registry's spec and atomically makes
// it the served version. Versions must arrive with strictly increasing
// seq: a stale or duplicate seq returns ErrStaleVersion and leaves the
// live version untouched, which is what makes hot-swap safe under
// reordered delivery. A checkpoint that fails structural validation is
// rejected and can never reach a runner.
func (r *Registry) Publish(seq int64, source string, ckpt []byte) error {
	return r.PublishManifest(seq, source, ckpt, nil)
}

// PublishManifest is Publish with a lineage manifest attached. Beyond the
// structural and ordering checks, the manifest must actually commit to the
// checkpoint: its digest is recomputed from the validated scratch replica
// and any disagreement rejects the publish (ErrManifestMismatch,
// serve.manifest_rejects). A nil manifest degrades to plain Publish — the
// version still records the registry-computed digest, so the /modelz chain
// stays digest-complete even for legacy feeds.
func (r *Registry) PublishManifest(seq int64, source string, ckpt []byte, man *lineage.Manifest) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur := r.cur.Load(); cur != nil && seq <= cur.Seq {
		r.stale.Inc()
		return fmt.Errorf("%w: seq %d <= current %d", ErrStaleVersion, seq, cur.Seq)
	}
	// Restore into a scratch replica: proves the checkpoint matches the
	// spec (names, shapes, length) before any runner sees it.
	scratch := r.spec.Build()
	if err := scratch.Restore(ckpt); err != nil {
		r.rejected.Inc()
		return fmt.Errorf("serve: reject version %d from %s: %w", seq, source, err)
	}
	digest := lineage.ModelHash(scratch)
	if man != nil {
		if err := man.Validate(); err != nil {
			r.manRejects.Inc()
			return fmt.Errorf("serve: reject version %d from %s: %w", seq, source, err)
		}
		if man.Digest != digest {
			r.manRejects.Inc()
			return fmt.Errorf("%w: version %d from %s: manifest digest %s, checkpoint decodes to %s",
				ErrManifestMismatch, seq, source, man.Digest, digest)
		}
	}
	v := &Version{Seq: seq, Source: source, At: time.Now(), Ckpt: ckpt,
		Digest: digest, Manifest: man}
	r.chain = append(r.chain, ChainEntry{
		Seq: v.Seq, Source: v.Source, At: v.At, Digest: digest, Manifest: man,
	})
	if len(r.chain) > chainMax {
		r.chain = append(r.chain[:0], r.chain[len(r.chain)-chainMax:]...)
	}
	r.cur.Store(v)
	r.nswaps.Add(1)
	r.swaps.Inc()
	r.seqGauge.Set(seq)
	return nil
}

// Chain returns a copy of the retained version history, oldest first. Seq
// is strictly increasing across the slice — publishes are serialized and
// stale sequences never enter the chain.
func (r *Registry) Chain() []ChainEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ChainEntry, len(r.chain))
	copy(out, r.chain)
	return out
}

// --- weight-update broadcast framing ---

// WeightsChannel is the queue PUB/SUB channel training workers publish
// checkpoint updates on and serving registries subscribe to (the serving
// analogue of the prototype's Redis control channels, §4.2).
const WeightsChannel = "dlion:serve:weights"

// updateMagic brands a weight-update frame ("DLSV": DLion serve version).
var updateMagic = [4]byte{'D', 'L', 'S', 'V'}

// ErrBadUpdate reports a structurally invalid weight-update frame.
var ErrBadUpdate = errors.New("serve: bad weight update")

// EncodeUpdate frames a checkpoint with its sequence number for broadcast:
// magic, u64 seq, checkpoint bytes.
func EncodeUpdate(seq int64, ckpt []byte) []byte {
	buf := make([]byte, 0, 12+len(ckpt))
	buf = append(buf, updateMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(seq))
	return append(buf, ckpt...)
}

// DecodeUpdate parses a frame produced by EncodeUpdate. The checkpoint
// slice aliases p.
func DecodeUpdate(p []byte) (seq int64, ckpt []byte, err error) {
	if len(p) < 12 || [4]byte(p[:4]) != updateMagic {
		return 0, nil, fmt.Errorf("%w: missing magic", ErrBadUpdate)
	}
	return int64(binary.LittleEndian.Uint64(p[4:])), p[12:], nil
}

// updateMagic2 brands a manifest-carrying weight-update frame ("DLS2"):
// magic, u64 seq, u32 manifest length, wire-encoded manifest, checkpoint.
var updateMagic2 = [4]byte{'D', 'L', 'S', '2'}

// EncodeUpdateManifest frames a checkpoint together with its lineage
// manifest for broadcast. Legacy subscribers that only understand DLSV
// frames will drop it; DecodeUpdateAny understands both.
func EncodeUpdateManifest(seq int64, man *lineage.Manifest, ckpt []byte) ([]byte, error) {
	mb, err := wire.EncodeManifest(man)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 16+len(mb)+len(ckpt))
	buf = append(buf, updateMagic2[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(seq))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(mb)))
	buf = append(buf, mb...)
	return append(buf, ckpt...), nil
}

// DecodeUpdateAny parses either weight-update framing: DLSV frames yield a
// nil manifest, DLS2 frames carry one. The checkpoint slice aliases p.
func DecodeUpdateAny(p []byte) (seq int64, man *lineage.Manifest, ckpt []byte, err error) {
	if len(p) >= 4 && [4]byte(p[:4]) == updateMagic {
		seq, ckpt, err = DecodeUpdate(p)
		return seq, nil, ckpt, err
	}
	if len(p) < 16 || [4]byte(p[:4]) != updateMagic2 {
		return 0, nil, nil, fmt.Errorf("%w: missing magic", ErrBadUpdate)
	}
	seq = int64(binary.LittleEndian.Uint64(p[4:]))
	mlen := int(binary.LittleEndian.Uint32(p[12:]))
	if mlen < 0 || 16+mlen > len(p) {
		return 0, nil, nil, fmt.Errorf("%w: manifest length %d in %d-byte frame",
			ErrBadUpdate, mlen, len(p))
	}
	man, err = wire.DecodeManifest(p[16 : 16+mlen])
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%w: %v", ErrBadUpdate, err)
	}
	return seq, man, p[16+mlen:], nil
}
