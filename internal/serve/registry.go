// Package serve is the inference serving subsystem: it loads a model from
// an nn checkpoint and answers predict requests over HTTP with dynamic
// micro-batching, a bounded admission queue that sheds load instead of
// collapsing, and a model registry that hot-swaps new checkpoint versions
// without dropping in-flight requests.
//
// DLion trains models in place in micro-clouds precisely so they can be
// used near the data (PAPER.md §1); this package is the consumption end of
// that loop. A training cluster started with dlion-worker periodically
// publishes checkpoints — to a directory or to a queue-broker channel —
// and a dlion-serve process continuously picks them up, so the cluster
// feeds the server it trains for.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlion/internal/nn"
	"dlion/internal/obs"
)

// ErrStaleVersion reports a Publish whose sequence number does not advance
// the registry — a reordered broadcast or a re-delivered checkpoint. The
// registry keeps the newer version; delivery order across a gossiping
// cluster is not guaranteed, so this is an expected, countable event, not
// a failure.
var ErrStaleVersion = errors.New("serve: stale model version")

// Version is one immutable published model snapshot. Ckpt is the raw nn
// checkpoint; readers must treat it as read-only (runners restore private
// replicas from it, so one buffer feeds any number of concurrent runners).
type Version struct {
	Seq    int64     // strictly increasing across accepted publishes
	Source string    // provenance: "init", "dir:<file>", "broadcast"
	At     time.Time // publish wall time
	Ckpt   []byte
}

// Registry holds the currently served model version and swaps in new ones
// atomically. Publish validates a checkpoint against the model spec before
// it can ever reach a runner; Current is a single atomic load, so the
// request path never blocks on a swap.
type Registry struct {
	spec nn.Spec

	mu  sync.Mutex // serializes Publish (validate + ordered swap)
	cur atomic.Pointer[Version]

	nswaps atomic.Int64 // accepted publishes, independent of metrics wiring

	swaps    *obs.Counter
	rejected *obs.Counter
	stale    *obs.Counter
	seqGauge *obs.Gauge
}

// NewRegistry returns an empty registry serving models built from spec.
func NewRegistry(spec nn.Spec) *Registry {
	return &Registry{spec: spec}
}

// SetMetrics wires the registry's counters into reg (METRICS.md:
// serve.swaps, serve.swap_rejected, serve.swap_stale, and the
// serve.model_seq gauge). Call before publishing.
func (r *Registry) SetMetrics(reg *obs.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.swaps = reg.Counter("serve.swaps")
	r.rejected = reg.Counter("serve.swap_rejected")
	r.stale = reg.Counter("serve.swap_stale")
	r.seqGauge = reg.Gauge("serve.model_seq")
}

// Spec returns the model spec versions are validated against.
func (r *Registry) Spec() nn.Spec { return r.spec }

// Current returns the live version, or nil before the first successful
// Publish. The returned version and its checkpoint are immutable.
func (r *Registry) Current() *Version { return r.cur.Load() }

// Swaps returns how many versions have been accepted.
func (r *Registry) Swaps() int64 { return r.nswaps.Load() }

// Publish validates ckpt against the registry's spec and atomically makes
// it the served version. Versions must arrive with strictly increasing
// seq: a stale or duplicate seq returns ErrStaleVersion and leaves the
// live version untouched, which is what makes hot-swap safe under
// reordered delivery. A checkpoint that fails structural validation is
// rejected and can never reach a runner.
func (r *Registry) Publish(seq int64, source string, ckpt []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur := r.cur.Load(); cur != nil && seq <= cur.Seq {
		r.stale.Inc()
		return fmt.Errorf("%w: seq %d <= current %d", ErrStaleVersion, seq, cur.Seq)
	}
	// Restore into a scratch replica: proves the checkpoint matches the
	// spec (names, shapes, length) before any runner sees it.
	if err := r.spec.Build().Restore(ckpt); err != nil {
		r.rejected.Inc()
		return fmt.Errorf("serve: reject version %d from %s: %w", seq, source, err)
	}
	v := &Version{Seq: seq, Source: source, At: time.Now(), Ckpt: ckpt}
	r.cur.Store(v)
	r.nswaps.Add(1)
	r.swaps.Inc()
	r.seqGauge.Set(seq)
	return nil
}

// --- weight-update broadcast framing ---

// WeightsChannel is the queue PUB/SUB channel training workers publish
// checkpoint updates on and serving registries subscribe to (the serving
// analogue of the prototype's Redis control channels, §4.2).
const WeightsChannel = "dlion:serve:weights"

// updateMagic brands a weight-update frame ("DLSV": DLion serve version).
var updateMagic = [4]byte{'D', 'L', 'S', 'V'}

// ErrBadUpdate reports a structurally invalid weight-update frame.
var ErrBadUpdate = errors.New("serve: bad weight update")

// EncodeUpdate frames a checkpoint with its sequence number for broadcast:
// magic, u64 seq, checkpoint bytes.
func EncodeUpdate(seq int64, ckpt []byte) []byte {
	buf := make([]byte, 0, 12+len(ckpt))
	buf = append(buf, updateMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(seq))
	return append(buf, ckpt...)
}

// DecodeUpdate parses a frame produced by EncodeUpdate. The checkpoint
// slice aliases p.
func DecodeUpdate(p []byte) (seq int64, ckpt []byte, err error) {
	if len(p) < 12 || [4]byte(p[:4]) != updateMagic {
		return 0, nil, fmt.Errorf("%w: missing magic", ErrBadUpdate)
	}
	return int64(binary.LittleEndian.Uint64(p[4:])), p[12:], nil
}
