package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dlion/internal/nn"
	"dlion/internal/obs"
)

// newTestServer builds a server over a registry pre-loaded with version 1.
func newTestServer(t *testing.T, cfg Config) (*Server, *Registry, *obs.Registry) {
	t.Helper()
	reg := NewRegistry(testSpec())
	if err := reg.Publish(1, "init", testCkpt(t, 1)); err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewRegistry()
	cfg.Registry = reg
	cfg.Metrics = metrics
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s, reg, metrics
}

func sampleInput() []float32 {
	in := make([]float32, 3*8*8)
	for i := range in {
		in[i] = float32(i%17) / 17
	}
	return in
}

func postPredict(t *testing.T, h http.Handler, body PredictRequest) (*httptest.ResponseRecorder, *PredictResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(raw)))
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var resp PredictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	return rec, &resp
}

func TestPredictSingle(t *testing.T) {
	s, _, metrics := newTestServer(t, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	rec, resp := postPredict(t, s, PredictRequest{Inputs: [][]float32{sampleInput()}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.ModelSeq != 1 || len(resp.Predictions) != 1 {
		t.Fatalf("response %+v", resp)
	}
	p := resp.Predictions[0]
	if p.Class < 0 || p.Class >= 10 || len(p.Probs) != 10 {
		t.Fatalf("prediction %+v", p)
	}
	var sum float32
	for _, v := range p.Probs {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("probs sum %v", sum)
	}
	if metrics.Histogram("serve.latency").Count() != 1 {
		t.Fatal("latency histogram not recorded")
	}
}

func TestPredictValidation(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	// Wrong feature count.
	rec, _ := postPredict(t, s, PredictRequest{Inputs: [][]float32{{1, 2, 3}}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("short input: status %d", rec.Code)
	}
	// Empty body.
	rec, _ = postPredict(t, s, PredictRequest{})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("no inputs: status %d", rec.Code)
	}
	// GET is not allowed.
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/predict", nil))
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", rec2.Code)
	}
}

func TestPredictNoModel(t *testing.T) {
	reg := NewRegistry(testSpec())
	s, err := NewServer(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	rec, _ := postPredict(t, s, PredictRequest{Inputs: [][]float32{sampleInput()}})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec2.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d, want 503", rec2.Code)
	}
}

// Micro-batching must coalesce concurrent requests: with 16 concurrent
// clients and MaxBatch 16, the server must execute fewer forward passes
// than requests (i.e. mean batch fill > 1).
func TestMicroBatchingCoalesces(t *testing.T) {
	s, _, metrics := newTestServer(t, Config{MaxBatch: 16, MaxDelay: 5 * time.Millisecond})
	const clients, perClient = 16, 10
	var wg sync.WaitGroup
	var failures atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				raw, _ := json.Marshal(PredictRequest{Inputs: [][]float32{sampleInput()}})
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(raw)))
				if rec.Code != http.StatusOK {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed", failures.Load())
	}
	answered := metrics.Counter("serve.answered").Load()
	batchesRun := metrics.Counter("serve.batches").Load()
	if answered != clients*perClient {
		t.Fatalf("answered %d, want %d", answered, clients*perClient)
	}
	if batchesRun >= answered {
		t.Fatalf("no coalescing: %d batches for %d requests", batchesRun, answered)
	}
	fill := metrics.Histogram("serve.batch_fill")
	if fill.Count() != batchesRun || fill.Max() < 2 {
		t.Fatalf("batch fill: count %d max %v", fill.Count(), fill.Max())
	}
}

// A multi-sample request larger than the queue must shed with 429 and set
// Retry-After, and the shed counter must account for it.
func TestOverloadSheds(t *testing.T) {
	s, _, metrics := newTestServer(t, Config{MaxBatch: 2, MaxDelay: 50 * time.Millisecond, QueueDepth: 2})
	inputs := make([][]float32, 32)
	for i := range inputs {
		inputs[i] = sampleInput()
	}
	rec, _ := postPredict(t, s, PredictRequest{Inputs: inputs})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if metrics.Counter("serve.sheds").Load() == 0 {
		t.Fatal("shed not counted")
	}
}

// At sustained overload (closed-loop clients far exceeding queue depth)
// the server must keep answering a subset, shed the rest with 429, and
// never let accepted-request latency grow with offered load: the p99 of
// accepted requests is bounded by queue_depth/throughput, not by client
// count.
func TestOverloadBoundedLatency(t *testing.T) {
	reg := NewRegistry(testSpec())
	if err := reg.Publish(1, "init", testCkpt(t, 1)); err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewRegistry()
	h, err := Listen(Config{
		Registry: reg, Metrics: metrics,
		MaxBatch: 8, MaxDelay: time.Millisecond, QueueDepth: 16,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	res, err := RunLoad(context.Background(), LoadConfig{
		URL: h.URL(), Concurrency: 64, Duration: 1500 * time.Millisecond, Input: sampleInput(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 {
		t.Fatalf("no requests served under overload: %+v", res)
	}
	if res.Shed == 0 {
		t.Fatalf("no sheds at 64 clients against queue 16: %+v", res)
	}
	if res.Failed != 0 {
		t.Fatalf("%d hard failures under overload: %+v", res.Failed, res)
	}
	// Accepted-request latency stays bounded: with queue 16 and batch 8
	// the worst admitted request waits ~2 batch turnarounds, comfortably
	// under a second; unbounded queue growth would blow far past this.
	if res.Latency.P99 > time.Second.Seconds() {
		t.Fatalf("p99 %v s: accepted latency not bounded", res.Latency.P99)
	}
}

// Graceful shutdown: requests admitted before Shutdown are all answered,
// requests after it are refused with 503, and Shutdown itself returns.
func TestGracefulDrain(t *testing.T) {
	s, _, metrics := newTestServer(t, Config{MaxBatch: 4, MaxDelay: 20 * time.Millisecond, QueueDepth: 64})
	const inflight = 24
	var wg sync.WaitGroup
	codes := make([]int, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(PredictRequest{Inputs: [][]float32{sampleInput()}})
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(raw)))
			codes[i] = rec.Code
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let most requests reach the queue
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d (dropped mid-drain?)", i, code)
		}
	}
	// Whatever was admitted was answered: no request vanished.
	admitted := metrics.Counter("serve.requests").Load() - metrics.Counter("serve.sheds").Load()
	_ = admitted // requests counter includes drained-away 503s, checked via codes above

	// After shutdown, new requests are refused, not queued.
	rec, _ := postPredict(t, s, PredictRequest{Inputs: [][]float32{sampleInput()}})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %d, want 503", rec.Code)
	}
}

// Batched serving must outperform batch=1 on concurrent load — the core
// claim of dynamic micro-batching (and the BENCH_serve acceptance bar).
// Uses the 16×16 worker-default geometry (the tiny 3×8×8 test spec is so
// cheap that HTTP overhead buries the forward pass), saturating client
// counts, and best-of-two runs per config to keep scheduler noise from
// deciding the comparison.
func TestBatchingImprovesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("load comparison")
	}
	spec := nn.CipherSpec(1, 16, 16, 10, 42)
	ckpt := spec.Build().Checkpoint()
	input := make([]float32, 1*16*16)
	for i := range input {
		input[i] = float32(i%29) / 29
	}
	run := func(maxBatch int) LoadResult {
		reg := NewRegistry(spec)
		if err := reg.Publish(1, "init", ckpt); err != nil {
			t.Fatal(err)
		}
		h, err := Listen(Config{Registry: reg, MaxBatch: maxBatch, MaxDelay: 2 * time.Millisecond,
			QueueDepth: 4096}, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		res, err := RunLoad(context.Background(), LoadConfig{
			URL: h.URL(), Concurrency: 32, Duration: 1200 * time.Millisecond, Input: input,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	best := func(maxBatch int) LoadResult {
		a, b := run(maxBatch), run(maxBatch)
		if b.QPS > a.QPS {
			return b
		}
		return a
	}
	single := best(1)
	batched := best(32)
	t.Logf("batch=1: %.0f qps, batch=32: %.0f qps", single.QPS, batched.QPS)
	if batched.QPS <= single.QPS {
		t.Fatalf("batched throughput %.0f qps not above batch=1 %.0f qps", batched.QPS, single.QPS)
	}
}

func TestModelzAndStatsz(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/modelz", nil))
	if rec.Code != http.StatusOK || !bytes.Contains(rec.Body.Bytes(), []byte(`"seq":1`)) {
		t.Fatalf("modelz %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("statsz %d", rec.Code)
	}
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if _, ok := stats["serve.model_seq"]; !ok {
		t.Fatalf("statsz missing model_seq: %v", stats)
	}
}

// Example of the wire format, for the docs.
func ExampleServer() {
	fmt.Println(`POST /predict {"inputs": [[...]]} -> {"model_seq": 1, "predictions": [{"class": 3, "probs": [...]}]}`)
	// Output: POST /predict {"inputs": [[...]]} -> {"model_seq": 1, "predictions": [{"class": 3, "probs": [...]}]}
}

// TestQuantizedServing: an int8 server answers correctly, repacks across a
// version swap, and agrees with the f32 server's classes on the same
// checkpoint for a spread of inputs.
func TestQuantizedServing(t *testing.T) {
	f32, _, _ := newTestServer(t, Config{MaxBatch: 4})
	q, reg, _ := newTestServer(t, Config{MaxBatch: 4, Quantized: true})

	inputs := make([][]float32, 6)
	for j := range inputs {
		in := make([]float32, 3*8*8)
		for i := range in {
			in[i] = float32((i*7+j*13)%23)/23 - 0.4
		}
		inputs[j] = in
	}
	_, refResp := postPredict(t, f32, PredictRequest{Inputs: inputs})
	_, qResp := postPredict(t, q, PredictRequest{Inputs: inputs})
	if refResp == nil || qResp == nil {
		t.Fatal("predict failed")
	}
	agree := 0
	for i := range inputs {
		if refResp.Predictions[i].Class == qResp.Predictions[i].Class {
			agree++
		}
	}
	if agree < len(inputs)-1 {
		t.Fatalf("quantized classes agree on %d/%d inputs", agree, len(inputs))
	}

	// Swap versions: the quantized runner must repack, not keep stale int8
	// weights. Serving still answers and reports the new sequence.
	if err := reg.Publish(2, "swap", testCkpt(t, 2)); err != nil {
		t.Fatal(err)
	}
	_, resp := postPredict(t, q, PredictRequest{Inputs: inputs[:1]})
	if resp == nil || resp.ModelSeq != 2 {
		t.Fatalf("post-swap response %+v", resp)
	}

	// Modelz advertises the quantized mode.
	rec := httptest.NewRecorder()
	q.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/modelz", nil))
	var mz map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &mz); err != nil {
		t.Fatal(err)
	}
	if mz["quantized"] != true {
		t.Fatalf("modelz quantized = %v", mz["quantized"])
	}
}
