package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dlion/internal/lineage"
	"dlion/internal/obs"
)

// manifestFor builds the lineage manifest a trainer would publish with the
// given checkpoint: digest recomputed from a restored replica, so it
// genuinely commits to the bytes.
func manifestFor(t testing.TB, ckpt []byte, iter int64) *lineage.Manifest {
	t.Helper()
	m := testSpec().Build()
	if err := m.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	return &lineage.Manifest{
		Schema: lineage.Schema,
		Model:  m.ModelName,
		Digest: lineage.ModelHash(m),
		Iter:   iter,
		Worker: 0,
	}
}

func TestPublishManifestVerifiesDigest(t *testing.T) {
	reg := NewRegistry(testSpec())
	metrics := obs.NewRegistry()
	reg.SetMetrics(metrics)
	ckpt := testCkpt(t, 4)
	man := manifestFor(t, ckpt, 10)

	if err := reg.PublishManifest(1, "test", ckpt, man); err != nil {
		t.Fatalf("honest manifest rejected: %v", err)
	}
	if v := reg.Current(); v.Manifest == nil || v.Digest != man.Digest {
		t.Fatalf("version lost its manifest: %+v", v)
	}

	// A manifest whose digest does not name these weights must never land.
	forged := *man
	forged.Digest ^= 1
	forged.Iter = 20
	if err := reg.PublishManifest(2, "test", ckpt, &forged); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("forged digest: err %v, want ErrManifestMismatch", err)
	}
	if got := metrics.Counter("serve.manifest_rejects").Load(); got != 1 {
		t.Fatalf("manifest_rejects %d, want 1", got)
	}
	if v := reg.Current(); v.Seq != 1 {
		t.Fatalf("forged publish advanced the registry: %+v", v)
	}

	// The chain records both the bare digest and the manifest.
	chain := reg.Chain()
	if len(chain) != 1 || chain[0].Digest != man.Digest || chain[0].Manifest == nil {
		t.Fatalf("chain %+v", chain)
	}
}

func TestUpdateManifestCodecRoundTrip(t *testing.T) {
	ckpt := testCkpt(t, 5)
	man := manifestFor(t, ckpt, 7)
	frame, err := EncodeUpdateManifest(42, man, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	seq, gotMan, gotCkpt, err := DecodeUpdateAny(frame)
	if err != nil || seq != 42 {
		t.Fatalf("decode: seq %d err %v", seq, err)
	}
	if gotMan == nil || gotMan.Digest != man.Digest || gotMan.Iter != 7 {
		t.Fatalf("manifest mangled: %+v", gotMan)
	}
	if string(gotCkpt) != string(ckpt) {
		t.Fatal("checkpoint bytes mangled")
	}

	// Legacy DLSV frames decode with a nil manifest.
	seq, gotMan, gotCkpt, err = DecodeUpdateAny(EncodeUpdate(9, ckpt))
	if err != nil || seq != 9 || gotMan != nil || string(gotCkpt) != string(ckpt) {
		t.Fatalf("legacy frame: seq %d man %v err %v", seq, gotMan, err)
	}
	for _, bad := range [][]byte{nil, {}, []byte("DLS2"), []byte("DLS2123456789012"), frame[:20]} {
		if _, _, _, err := DecodeUpdateAny(bad); err == nil {
			t.Fatalf("DecodeUpdateAny(%q) accepted", bad)
		}
	}
}

// TestWatchDirRejectsTornCheckpoint is the mid-write regression test: a
// zero-length file and a truncated (partially-written) checkpoint must
// never produce a swap attempt, and the completed file must still be picked
// up afterward even though its earlier torn form was seen and skipped.
func TestWatchDirRejectsTornCheckpoint(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(testSpec())
	metrics := obs.NewRegistry()
	reg.SetMetrics(metrics)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		reg.WatchDir(ctx, dir, 5*time.Millisecond)
	}()

	path := filepath.Join(dir, "model.ckpt")
	full := testCkpt(t, 11)

	// Phase 1: zero-length file (a writer just created it).
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if reg.Current() != nil {
		t.Fatal("zero-length checkpoint was published")
	}

	// Phase 2: mid-write — a valid prefix with the tail missing.
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if reg.Current() != nil {
		t.Fatal("torn checkpoint was published")
	}
	// Structural rejection happens before Publish, so no swap was attempted.
	if got := metrics.Counter("serve.swap_rejected").Load(); got != 0 {
		t.Fatalf("swap_rejected %d: torn file reached the registry", got)
	}

	// Phase 3: the write completes (with a sidecar manifest) — the same
	// file name must now be picked up.
	man := manifestFor(t, full, 3)
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := lineage.WriteFile(path, man); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.Current() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	v := reg.Current()
	if v == nil {
		t.Fatal("completed checkpoint never published")
	}
	if v.Digest != man.Digest {
		t.Fatalf("published digest %s, want %s", v.Digest, man.Digest)
	}
	if v.Manifest == nil || v.Manifest.Iter != 3 {
		t.Fatalf("sidecar manifest not attached: %+v", v.Manifest)
	}
	cancel()
	<-done
}

// TestModelzConcurrentSwaps hot-swaps manifest-carrying versions while
// hammering /modelz: every response must expose a strictly-increasing,
// digest-consistent chain, and no response may ever show a half-published
// entry (manifest present but digest disagreeing, or seq out of order).
// Run under -race this also proves the chain copy has no data races.
func TestModelzConcurrentSwaps(t *testing.T) {
	reg := NewRegistry(testSpec())
	srv, err := NewServer(Config{Registry: reg, Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	const versions = 40
	ckpts := make([][]byte, versions)
	mans := make([]*lineage.Manifest, versions)
	for i := range ckpts {
		ckpts[i] = testCkpt(t, uint64(100+i))
		mans[i] = manifestFor(t, ckpts[i], int64(i+1))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- "modelz: " + fmt.Sprintf(format, args...):
		default:
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("GET", "/modelz", nil))
				if rec.Code != 200 {
					continue // no version published yet
				}
				var body struct {
					Seq   int64 `json:"seq"`
					Chain []struct {
						Seq      int64             `json:"seq"`
						Digest   lineage.Hash      `json:"digest"`
						Manifest *lineage.Manifest `json:"manifest"`
					} `json:"chain"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					report("bad body: %v", err)
					return
				}
				last := int64(0)
				for _, e := range body.Chain {
					if e.Seq <= last {
						report("chain not strictly increasing: %d after %d", e.Seq, last)
						return
					}
					last = e.Seq
					if e.Digest == 0 {
						report("half-published entry: zero digest at seq %d", e.Seq)
						return
					}
					if e.Manifest != nil && e.Manifest.Digest != e.Digest {
						report("half-published entry: manifest %s vs digest %s",
							e.Manifest.Digest, e.Digest)
						return
					}
				}
			}
		}()
	}

	for i := 0; i < versions; i++ {
		if err := reg.PublishManifest(int64(i+1), "swap", ckpts[i], mans[i]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if got := len(reg.Chain()); got != versions {
		t.Fatalf("chain length %d, want %d", got, versions)
	}
}
