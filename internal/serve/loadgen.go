package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dlion/internal/obs"
)

// LoadConfig drives RunLoad, the closed-loop load generator behind
// `dlion-bench -serve` and the overload tests. Each of Concurrency workers
// issues single-sample /predict requests back-to-back, so offered load
// scales with concurrency and self-limits at the server's capacity —
// except when the admission queue fills first, which is exactly the
// shedding regime the overload experiments measure.
type LoadConfig struct {
	// URL is the server's base URL (e.g. "http://127.0.0.1:8080").
	URL string
	// Concurrency is the number of closed-loop clients (default 8).
	Concurrency int
	// Duration bounds the run (default 2s).
	Duration time.Duration
	// Input is the sample feature vector every request carries; it must
	// match the served spec's channels*height*width.
	Input []float32
	// Client overrides the HTTP client (default: pooled transport sized
	// to Concurrency).
	Client *http.Client
}

// LoadResult summarizes one load run. Latency quantiles cover *accepted*
// (HTTP 200) requests only: shed requests fail fast by design, and mixing
// their sub-millisecond 429s into the latency distribution would make an
// overloaded server look faster.
type LoadResult struct {
	Sent   int64   `json:"sent"`
	OK     int64   `json:"ok"`
	Shed   int64   `json:"shed"`   // 429 responses
	Failed int64   `json:"failed"` // transport errors and non-200/429 statuses
	Secs   float64 `json:"secs"`
	QPS    float64 `json:"qps"` // accepted requests per second

	Latency obs.HistogramSummary `json:"latency"` // seconds, accepted only
}

// RunLoad drives cfg.URL until the duration elapses or ctx is done and
// returns the client-side view of throughput and latency.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadResult, error) {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if len(cfg.Input) == 0 {
		return LoadResult{}, fmt.Errorf("serve: load config needs an input sample")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency,
			MaxIdleConnsPerHost: cfg.Concurrency,
		}}
	}
	body, err := json.Marshal(PredictRequest{Inputs: [][]float32{cfg.Input}})
	if err != nil {
		return LoadResult{}, err
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	var sent, ok, shed, failed atomic.Int64
	hist := obs.NewHistogram()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			url := cfg.URL + "/predict"
			for ctx.Err() == nil {
				sent.Add(1)
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						sent.Add(-1) // cut off mid-flight by the deadline
						return
					}
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					hist.Observe(time.Since(t0).Seconds())
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	res := LoadResult{
		Sent: sent.Load(), OK: ok.Load(), Shed: shed.Load(), Failed: failed.Load(),
		Secs: elapsed, Latency: hist.Summary(),
	}
	if elapsed > 0 {
		res.QPS = float64(res.OK) / elapsed
	}
	return res, nil
}
