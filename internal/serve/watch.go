package serve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// CheckpointSuffix is the file extension WatchDir considers a checkpoint.
const CheckpointSuffix = ".ckpt"

// WatchDir polls dir every interval and publishes the newest *.ckpt file
// (by modification time, then name) into the registry whenever it changes.
// The file's mtime in nanoseconds is the version sequence, so an older
// file reappearing cannot roll the server back. It runs until ctx is done;
// transient read errors are skipped (the file may still be mid-write — the
// registry's structural validation catches torn checkpoints and the next
// poll retries).
//
// Use either WatchDir or WatchBroadcasts as a registry's feed, not both:
// the two derive sequences from different clocks (file mtimes vs training
// iterations), so mixing them would make ordering meaningless.
func (r *Registry) WatchDir(ctx context.Context, dir string, interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	var lastName string
	var lastMod time.Time
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		if name, mod, ok := newestCheckpoint(dir); ok && (name != lastName || mod.After(lastMod)) {
			if data, err := os.ReadFile(filepath.Join(dir, name)); err == nil {
				if err := r.Publish(mod.UnixNano(), "dir:"+name, data); err == nil {
					lastName, lastMod = name, mod
				}
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// newestCheckpoint returns the most recent checkpoint file in dir.
func newestCheckpoint(dir string) (name string, mod time.Time, ok bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", time.Time{}, false
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), CheckpointSuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if !ok || info.ModTime().After(mod) || (info.ModTime().Equal(mod) && e.Name() > name) {
			name, mod, ok = e.Name(), info.ModTime(), true
		}
	}
	return name, mod, ok
}

// WatchBroadcasts consumes weight-update frames (EncodeUpdate) from ch —
// an in-process broker Subscription.C or a queue client's Subscribe
// channel on WeightsChannel — publishing each into the registry until ch
// closes or ctx is done. Malformed frames and stale versions are dropped;
// with several workers broadcasting, the registry's strictly-increasing
// sequence rule arbitrates, so the cluster's freshest checkpoint wins
// regardless of arrival order.
func (r *Registry) WatchBroadcasts(ctx context.Context, ch <-chan []byte) {
	for {
		select {
		case <-ctx.Done():
			return
		case p, ok := <-ch:
			if !ok {
				return
			}
			seq, ckpt, err := DecodeUpdate(p)
			if err != nil {
				continue
			}
			_ = r.Publish(seq, "broadcast", ckpt)
		}
	}
}
