package serve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dlion/internal/lineage"
	"dlion/internal/nn"
)

// CheckpointSuffix is the file extension WatchDir considers a checkpoint.
const CheckpointSuffix = ".ckpt"

// WatchDir polls dir every interval and publishes the newest *.ckpt file
// (by modification time, then name) into the registry whenever it changes.
// The file's mtime in nanoseconds is the version sequence, so an older
// file reappearing cannot roll the server back. It runs until ctx is done.
//
// Partially-written files never reach the registry: a zero-length or
// structurally torn checkpoint (nn.ScanCheckpoint fails — a writer's
// truncated tail, a mid-write snapshot) is skipped without attempting a
// swap, and because the skip does not mark the file as seen, the completed
// file is retried on the next poll. A sidecar manifest
// (<file>.ckpt.manifest.json, see lineage.WriteFile) is attached when
// present and readable; the registry then verifies its digest against the
// decoded weights.
//
// Use either WatchDir or WatchBroadcasts as a registry's feed, not both:
// the two derive sequences from different clocks (file mtimes vs training
// iterations), so mixing them would make ordering meaningless.
func (r *Registry) WatchDir(ctx context.Context, dir string, interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	var lastName string
	var lastMod time.Time
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		if name, mod, ok := newestCheckpoint(dir); ok && (name != lastName || mod.After(lastMod)) {
			path := filepath.Join(dir, name)
			if data, err := os.ReadFile(path); err == nil && validCheckpoint(data) {
				man, err := lineage.ReadFile(path)
				if err != nil {
					man = nil // no sidecar (or a torn one): publish bare
				}
				if err := r.PublishManifest(mod.UnixNano(), "dir:"+name, data, man); err == nil {
					lastName, lastMod = name, mod
				}
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// validCheckpoint reports whether data is a complete, structurally sound
// checkpoint — the pre-swap gate that keeps mid-write files out of the
// registry entirely.
func validCheckpoint(data []byte) bool {
	if len(data) == 0 {
		return false
	}
	_, _, err := nn.ScanCheckpoint(data)
	return err == nil
}

// newestCheckpoint returns the most recent checkpoint file in dir.
func newestCheckpoint(dir string) (name string, mod time.Time, ok bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", time.Time{}, false
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), CheckpointSuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if !ok || info.ModTime().After(mod) || (info.ModTime().Equal(mod) && e.Name() > name) {
			name, mod, ok = e.Name(), info.ModTime(), true
		}
	}
	return name, mod, ok
}

// WatchBroadcasts consumes weight-update frames (EncodeUpdate or
// EncodeUpdateManifest) from ch — an in-process broker Subscription.C or a
// queue client's Subscribe channel on WeightsChannel — publishing each into
// the registry until ch closes or ctx is done. Malformed frames and stale
// versions are dropped; with several workers broadcasting, the registry's
// strictly-increasing sequence rule arbitrates, so the cluster's freshest
// checkpoint wins regardless of arrival order. Manifest-carrying frames
// attach their lineage record to the published version.
func (r *Registry) WatchBroadcasts(ctx context.Context, ch <-chan []byte) {
	for {
		select {
		case <-ctx.Done():
			return
		case p, ok := <-ch:
			if !ok {
				return
			}
			seq, man, ckpt, err := DecodeUpdateAny(p)
			if err != nil {
				continue
			}
			_ = r.PublishManifest(seq, "broadcast", ckpt, man)
		}
	}
}
