package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/grad"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/queue"
	"dlion/internal/realtime"
	"dlion/internal/serve"
)

// TestEndToEndTrainingFeedsServing is the full loop from the issue: an
// in-process broker, two real-mode training workers, and a serve instance
// subscribed to their weight broadcasts. While training runs and versions
// hot-swap, a client hammers /predict continuously; the test demands at
// least one swap beyond the initial model, zero dropped in-flight requests
// throughout, and final answers served from the newest version.
func TestEndToEndTrainingFeedsServing(t *testing.T) {
	const n = 2
	spec := nn.CipherSpec(1, 8, 8, 3, 5)
	dc := data.Config{Name: "e2e", NumClasses: 3, Train: 240, Test: 60,
		Channels: 1, Height: 8, Width: 8, Noise: 0.4, Bumps: 3, Seed: 21}
	train, _, err := data.Generate(dc)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.Partition(train, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	system := core.Config{
		Name:         "e2e",
		LearningRate: 0.05,
		NewSelector:  func() grad.Selector { return grad.NewMaxN(100) },
		Batch:        core.BatchConfig{InitialLBS: 8},
		Sync:         core.SyncConfig{Mode: core.SyncAsync},
	}

	broker := queue.NewBroker()
	defer broker.Close()

	// Serving side: registry seeded with the untrained model at seq 0, fed
	// by weight broadcasts on the broker.
	reg := serve.NewRegistry(spec)
	if err := reg.Publish(0, "init", spec.Build().Checkpoint()); err != nil {
		t.Fatal(err)
	}
	sub, err := broker.Subscribe(serve.WeightsChannel, 64)
	if err != nil {
		t.Fatal(err)
	}
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	go reg.WatchBroadcasts(watchCtx, sub.C)

	metrics := obs.NewRegistry()
	srv, err := serve.Listen(serve.Config{
		Registry: reg, Metrics: metrics,
		MaxBatch: 8, MaxDelay: time.Millisecond, QueueDepth: 512,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Training side: two workers over broker transports.
	transports := make([]*realtime.BrokerTransport, n)
	nodes := make([]*realtime.Node, n)
	for i := 0; i < n; i++ {
		transports[i] = realtime.NewBrokerTransport(broker, i)
		node, err := realtime.NewNode(realtime.Config{
			ID: i, N: n, System: system, Spec: spec,
			Shard: shards[i], Transport: transports[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	trainCtx, stopTraining := context.WithTimeout(context.Background(), 4*time.Second)
	defer stopTraining()
	var trainWG sync.WaitGroup
	for _, node := range nodes {
		trainWG.Add(1)
		go func(nd *realtime.Node) {
			defer trainWG.Done()
			if err := nd.Run(trainCtx); err != nil {
				t.Errorf("node: %v", err)
			}
		}(node)
	}

	// Each worker broadcasts its checkpoint periodically, exactly as
	// dlion-worker's -serve-publish flag does: snapshot on the event loop,
	// frame with the training iteration as the version sequence, publish.
	var pubWG sync.WaitGroup
	for i := 0; i < n; i++ {
		pubWG.Add(1)
		go func(i int) {
			defer pubWG.Done()
			tick := time.NewTicker(150 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-trainCtx.Done():
					return
				case <-tick.C:
					iter, ckpt, err := nodes[i].Checkpoint(trainCtx)
					if err != nil || iter == 0 {
						continue // node stopping, or nothing trained yet
					}
					if err := transports[i].Publish(serve.WeightsChannel, serve.EncodeUpdate(iter, ckpt)); err != nil {
						t.Errorf("publish: %v", err)
					}
				}
			}
		}(i)
	}

	// Client side: hammer /predict for the duration of training. Every
	// request must come back 200 — the queue is deep enough that shedding
	// would itself be a failure, and any 5xx/transport error during a swap
	// means an in-flight request was dropped.
	input := make([]float32, 1*8*8)
	for i := range input {
		input[i] = float32(i%11) / 11
	}
	body, _ := json.Marshal(serve.PredictRequest{Inputs: [][]float32{input}})
	var answered, maxSeq atomic.Int64
	clientCtx := trainCtx
	var clientWG sync.WaitGroup
	for c := 0; c < 4; c++ {
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			for clientCtx.Err() == nil {
				req, _ := http.NewRequestWithContext(clientCtx, http.MethodPost,
					srv.URL()+"/predict", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					if clientCtx.Err() == nil {
						t.Errorf("predict: %v", err)
					}
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("predict dropped: status %d: %s", resp.StatusCode, raw)
					return
				}
				var pr serve.PredictResponse
				if err := json.Unmarshal(raw, &pr); err != nil {
					t.Errorf("predict body: %v", err)
					return
				}
				answered.Add(1)
				if pr.ModelSeq > maxSeq.Load() {
					maxSeq.Store(pr.ModelSeq)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	clientWG.Wait()
	pubWG.Wait()
	trainWG.Wait()

	if got := answered.Load(); got == 0 {
		t.Fatal("no predictions served")
	}
	swaps := metrics.Counter("serve.swaps").Load()
	if swaps < 2 { // init at seq 0 plus at least one broadcast hot-swap
		t.Fatalf("swaps %d: server never hot-swapped off the initial model", swaps)
	}
	cur := reg.Current()
	if cur == nil || cur.Seq == 0 || cur.Source != "broadcast" {
		t.Fatalf("current version %+v: not fed from training broadcasts", cur)
	}

	// The newest version must actually be the one answering: a fresh
	// predict after training reports the registry's final sequence.
	resp, err := http.Post(srv.URL()+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.ModelSeq != cur.Seq {
		t.Fatalf("final predict served seq %d, registry at %d", pr.ModelSeq, cur.Seq)
	}
	if maxSeq.Load() == 0 {
		t.Fatal("no in-flight request ever observed a swapped version")
	}
	t.Logf("answered %d requests across %d swaps; final seq %d",
		answered.Load(), swaps, cur.Seq)
}
