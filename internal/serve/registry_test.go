package serve

import (
	"errors"
	"sync"
	"testing"

	"dlion/internal/nn"
	"dlion/internal/obs"
)

// testSpec is a tiny cipher model: 3×8×8 input, 10 classes.
func testSpec() nn.Spec { return nn.CipherSpec(3, 8, 8, 10, 42) }

func testCkpt(t testing.TB, seed uint64) []byte {
	t.Helper()
	spec := testSpec()
	spec.Seed = seed
	return spec.Build().Checkpoint()
}

func TestRegistryPublishAndCurrent(t *testing.T) {
	reg := NewRegistry(testSpec())
	if reg.Current() != nil {
		t.Fatal("empty registry must have no current version")
	}
	if err := reg.Publish(1, "init", testCkpt(t, 1)); err != nil {
		t.Fatal(err)
	}
	v := reg.Current()
	if v == nil || v.Seq != 1 || v.Source != "init" {
		t.Fatalf("current %+v", v)
	}
}

func TestRegistryRejectsCorruptCheckpoint(t *testing.T) {
	reg := NewRegistry(testSpec())
	metrics := obs.NewRegistry()
	reg.SetMetrics(metrics)
	if err := reg.Publish(1, "bad", []byte("not a checkpoint")); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	// A checkpoint of a different architecture must be rejected too.
	other := nn.CipherSpec(1, 8, 8, 10, 7).Build().Checkpoint()
	if err := reg.Publish(2, "bad-arch", other); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
	if reg.Current() != nil {
		t.Fatal("rejected publishes must not install a version")
	}
	if got := metrics.Counter("serve.swap_rejected").Load(); got != 2 {
		t.Fatalf("swap_rejected %d, want 2", got)
	}
}

// Hot-swap version ordering: stale and duplicate sequence numbers must
// never roll the served model back, regardless of arrival order.
func TestRegistryVersionOrdering(t *testing.T) {
	reg := NewRegistry(testSpec())
	metrics := obs.NewRegistry()
	reg.SetMetrics(metrics)
	ckpt := testCkpt(t, 9)

	if err := reg.Publish(5, "a", ckpt); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish(3, "late", ckpt); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale publish: err %v, want ErrStaleVersion", err)
	}
	if err := reg.Publish(5, "dup", ckpt); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("duplicate publish: err %v, want ErrStaleVersion", err)
	}
	if v := reg.Current(); v.Seq != 5 || v.Source != "a" {
		t.Fatalf("current rolled back: %+v", v)
	}
	if err := reg.Publish(8, "b", ckpt); err != nil {
		t.Fatal(err)
	}
	if v := reg.Current(); v.Seq != 8 {
		t.Fatalf("current %+v, want seq 8", v)
	}
	if got := metrics.Counter("serve.swaps").Load(); got != 2 {
		t.Fatalf("swaps %d, want 2", got)
	}
	if got := metrics.Counter("serve.swap_stale").Load(); got != 2 {
		t.Fatalf("swap_stale %d, want 2", got)
	}
	if got := metrics.Gauge("serve.model_seq").Load(); got != 8 {
		t.Fatalf("model_seq %d, want 8", got)
	}
}

// Concurrent publishers racing on sequence numbers must converge on the
// maximum, with the rest reported stale — never a torn or reordered swap.
func TestRegistryConcurrentPublish(t *testing.T) {
	reg := NewRegistry(testSpec())
	ckpt := testCkpt(t, 3)
	const publishers, each = 8, 25
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq := int64(p*each + i + 1)
				err := reg.Publish(seq, "w", ckpt)
				if err != nil && !errors.Is(err, ErrStaleVersion) {
					t.Errorf("publish %d: %v", seq, err)
				}
			}
		}(p)
	}
	wg.Wait()
	if v := reg.Current(); v == nil || v.Seq != publishers*each {
		t.Fatalf("current %+v, want seq %d", reg.Current(), publishers*each)
	}
}

func TestUpdateCodecRoundTrip(t *testing.T) {
	ckpt := testCkpt(t, 5)
	frame := EncodeUpdate(77, ckpt)
	seq, got, err := DecodeUpdate(frame)
	if err != nil || seq != 77 {
		t.Fatalf("decode: seq %d err %v", seq, err)
	}
	if string(got) != string(ckpt) {
		t.Fatal("checkpoint bytes mangled")
	}
	for _, bad := range [][]byte{nil, {}, []byte("DLSV"), []byte("XXXX12345678")} {
		if _, _, err := DecodeUpdate(bad); !errors.Is(err, ErrBadUpdate) {
			t.Fatalf("DecodeUpdate(%q): err %v, want ErrBadUpdate", bad, err)
		}
	}
}
