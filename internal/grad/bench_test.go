package grad

import (
	"testing"

	"dlion/internal/nn"
	"dlion/internal/stats"
	"dlion/internal/tensor"
)

func benchParams(n int) []*nn.Param {
	rng := stats.NewRNG(1)
	g := make([]float32, n)
	for i := range g {
		g[i] = float32(rng.NormFloat64())
	}
	p := &nn.Param{Name: "w", W: tensor.New(n), G: tensor.FromSlice(g, n)}
	p.W.Fill(1)
	return []*nn.Param{p}
}

func BenchmarkFullSelect(b *testing.B) {
	ps := benchParams(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Full{}.Select(0, ps, 0)
	}
}

func BenchmarkMaxNSelectFixed(b *testing.B) {
	ps := benchParams(100_000)
	m := NewMaxN(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Select(0, ps, 0)
	}
}

func BenchmarkMaxNSelectBudgeted(b *testing.B) {
	ps := benchParams(100_000)
	m := NewMaxN(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Select(0, ps, 50_000)
	}
}

func BenchmarkGaiaSelect(b *testing.B) {
	ps := benchParams(100_000)
	g := NewGaia(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Select(0, ps, 0)
	}
}

func BenchmarkAkoSelect(b *testing.B) {
	ps := benchParams(100_000)
	a := NewAko(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Select(0, ps, 0)
	}
}

func BenchmarkSelectionAddTo(b *testing.B) {
	ps := benchParams(100_000)
	sels := NewMaxN(50).Select(0, ps, 0)
	dst := make([]float32, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sels {
			s.AddTo(dst, 0.01)
		}
	}
}

// BenchmarkMaxNQuickselect measures the quickselect top-k index selection
// that TopK.Select runs per variable; BenchmarkMaxNSortBaseline is the
// previous full-sort implementation on the same input, kept as the
// comparison point (topKIndicesSort).
func BenchmarkMaxNQuickselect(b *testing.B) {
	ps := benchParams(100_000)
	g := ps[0].G.Data
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topKIndices(g, 1000)
	}
}

func BenchmarkMaxNSortBaseline(b *testing.B) {
	ps := benchParams(100_000)
	g := ps[0].G.Data
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topKIndicesSort(g, 1000)
	}
}
