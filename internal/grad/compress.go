package grad

import (
	"sort"

	"dlion/internal/nn"
	"dlion/internal/stats"
)

// This file hosts the gradient-compression selectors the paper's related
// work section points at ("their compression algorithms can be placed in
// the data quality assurance module in DLion", §6): exact top-k selection
// with error feedback, and random-k sparsification. They slot into the
// same Selector interface as Max N, so any system preset can adopt them.

// TopK selects the k largest-magnitude gradient values per variable, where
// k is a fixed fraction of the variable's size (budget-driven when a link
// budget is supplied). Values not sent accumulate in an error-feedback
// buffer per peer, the standard correction that keeps sparsified SGD
// convergent (Alistarh et al., NeurIPS'18).
type TopK struct {
	// Fraction of each variable sent when no byte budget applies, (0, 1].
	Fraction float64
	// ErrorFeedback keeps and re-adds the unsent residual.
	ErrorFeedback bool

	residual map[int]map[string][]float32
}

// NewTopK returns a TopK selector sending the given fraction per variable,
// with error feedback enabled.
func NewTopK(fraction float64) *TopK {
	if fraction <= 0 || fraction > 1 {
		panic("grad: TopK requires 0 < fraction <= 1")
	}
	return &TopK{Fraction: fraction, ErrorFeedback: true,
		residual: map[int]map[string][]float32{}}
}

// Name implements Selector.
func (t *TopK) Name() string { return "topk" }

// Select implements Selector.
func (t *TopK) Select(to int, params []*nn.Param, budgetBytes int) []*Selection {
	peer := t.residual[to]
	if peer == nil {
		peer = map[string][]float32{}
		t.residual[to] = peer
	}
	// derive the per-variable fraction from the budget when present
	frac := t.Fraction
	if budgetBytes > 0 {
		total := 0
		for _, p := range params {
			total += p.G.Len()
		}
		if total > 0 {
			frac = float64(budgetBytes) / float64(total*sparseEntryBytes)
			if frac > 1 {
				frac = 1
			}
			if frac <= 0 {
				frac = 1.0 / float64(total)
			}
		}
	}
	out := make([]*Selection, 0, len(params))
	for _, p := range params {
		g := p.G.Data
		res := peer[p.Name]
		if t.ErrorFeedback {
			if res == nil {
				res = make([]float32, len(g))
				peer[p.Name] = res
			}
			for i, v := range g {
				res[i] += v
			}
			g = res
		}
		k := int(frac * float64(len(g)))
		if k < 1 {
			k = 1
		}
		if k >= len(g) {
			sel := &Selection{Var: p.Name, Total: len(g), Dense: append([]float32(nil), g...)}
			if t.ErrorFeedback {
				for i := range res {
					res[i] = 0
				}
			}
			out = append(out, sel)
			continue
		}
		idx := topKIndices(g, k)
		sel := &Selection{Var: p.Name, Total: len(g),
			Idx: make([]int32, 0, k), Val: make([]float32, 0, k)}
		for _, i := range idx {
			sel.Idx = append(sel.Idx, int32(i))
			sel.Val = append(sel.Val, g[i])
			if t.ErrorFeedback {
				res[i] = 0
			}
		}
		out = append(out, sel)
	}
	return out
}

// magBefore reports whether index a ranks strictly before index b in the
// selection order: larger |g| first, NaN above everything (a NaN gradient is
// a signal worth transmitting, and ranking it top keeps the order total),
// ascending index on ties. Because ties break on the index, this is a strict
// total order over distinct indices — the property quickselect's Hoare
// partition relies on.
func magBefore(g []float32, a, b int) bool {
	av, bv := abs32(g[a]), abs32(g[b])
	aNaN, bNaN := av != av, bv != bv
	switch {
	case aNaN && bNaN:
		return a < b
	case aNaN:
		return true
	case bNaN:
		return false
	case av != bv:
		return av > bv
	default:
		return a < b
	}
}

// topKIndices returns the indices of the k largest |values| under the
// magBefore order, ascending by index for cache-friendly application.
// Selection is O(n) expected (quickselect) plus O(k log k) to re-sort the
// chosen indices — the previous full sort.Slice was O(n log n) with an
// interface-call comparator on every element, and dominated TopK.Select on
// large variables.
func topKIndices(g []float32, k int) []int {
	idx := make([]int, len(g))
	for i := range idx {
		idx[i] = i
	}
	quickSelectTopK(g, idx, k)
	idx = idx[:k]
	sort.Ints(idx)
	return idx
}

// topKIndicesSort is the reference selection: a full deterministic sort under
// the same magBefore order. Kept for equivalence tests and as the benchmark
// baseline for the quickselect path.
func topKIndicesSort(g []float32, k int) []int {
	idx := make([]int, len(g))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return magBefore(g, idx[a], idx[b])
	})
	idx = idx[:k]
	sort.Ints(idx)
	return idx
}

// quickSelectTopK partitions idx so that its first k entries are the top k
// under magBefore (in unspecified internal order). Median-of-three Hoare
// quickselect; since magBefore is a strict total order over distinct
// indices, the partition needs no equal-element handling.
func quickSelectTopK(g []float32, idx []int, k int) {
	if k <= 0 || k >= len(idx) {
		return
	}
	lo, hi := 0, len(idx)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if magBefore(g, idx[mid], idx[lo]) {
			idx[lo], idx[mid] = idx[mid], idx[lo]
		}
		if magBefore(g, idx[hi], idx[lo]) {
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
		if magBefore(g, idx[hi], idx[mid]) {
			idx[mid], idx[hi] = idx[hi], idx[mid]
		}
		pivot := idx[mid]
		i, j := lo, hi
		for i <= j {
			for magBefore(g, idx[i], pivot) {
				i++
			}
			for magBefore(g, pivot, idx[j]) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		// idx[lo..j] now rank before idx[i..hi]; recurse into the side
		// holding the k-th boundary.
		switch {
		case k-1 <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return
		}
	}
}

// RandomK sparsifies by sending k uniformly random coordinates per
// variable, scaled by len/k so the sparsified gradient is an unbiased
// estimator. A control baseline for magnitude-aware selection: it answers
// "does picking the *important* values matter, or just sending fewer?".
type RandomK struct {
	Fraction float64
	rng      *stats.RNG
}

// NewRandomK returns a RandomK selector with its own deterministic stream.
func NewRandomK(fraction float64, seed uint64) *RandomK {
	if fraction <= 0 || fraction > 1 {
		panic("grad: RandomK requires 0 < fraction <= 1")
	}
	return &RandomK{Fraction: fraction, rng: stats.NewRNG(seed)}
}

// Name implements Selector.
func (r *RandomK) Name() string { return "randomk" }

// Select implements Selector. The byte budget, when present, overrides the
// fraction exactly as in TopK.
func (r *RandomK) Select(_ int, params []*nn.Param, budgetBytes int) []*Selection {
	frac := r.Fraction
	if budgetBytes > 0 {
		total := 0
		for _, p := range params {
			total += p.G.Len()
		}
		if total > 0 {
			frac = float64(budgetBytes) / float64(total*sparseEntryBytes)
			if frac > 1 {
				frac = 1
			}
			if frac <= 0 {
				frac = 1.0 / float64(total)
			}
		}
	}
	out := make([]*Selection, 0, len(params))
	for _, p := range params {
		g := p.G.Data
		k := int(frac * float64(len(g)))
		if k < 1 {
			k = 1
		}
		if k >= len(g) {
			out = append(out, denseSelection(p))
			continue
		}
		scale := float32(len(g)) / float32(k)
		perm := r.rng.Perm(len(g))[:k]
		sort.Ints(perm)
		sel := &Selection{Var: p.Name, Total: len(g),
			Idx: make([]int32, 0, k), Val: make([]float32, 0, k)}
		for _, i := range perm {
			sel.Idx = append(sel.Idx, int32(i))
			sel.Val = append(sel.Val, g[i]*scale)
		}
		out = append(out, sel)
	}
	return out
}
