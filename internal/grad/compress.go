package grad

import (
	"sort"

	"dlion/internal/nn"
	"dlion/internal/stats"
)

// This file hosts the gradient-compression selectors the paper's related
// work section points at ("their compression algorithms can be placed in
// the data quality assurance module in DLion", §6): exact top-k selection
// with error feedback, and random-k sparsification. They slot into the
// same Selector interface as Max N, so any system preset can adopt them.

// TopK selects the k largest-magnitude gradient values per variable, where
// k is a fixed fraction of the variable's size (budget-driven when a link
// budget is supplied). Values not sent accumulate in an error-feedback
// buffer per peer, the standard correction that keeps sparsified SGD
// convergent (Alistarh et al., NeurIPS'18).
type TopK struct {
	// Fraction of each variable sent when no byte budget applies, (0, 1].
	Fraction float64
	// ErrorFeedback keeps and re-adds the unsent residual.
	ErrorFeedback bool

	residual map[int]map[string][]float32
}

// NewTopK returns a TopK selector sending the given fraction per variable,
// with error feedback enabled.
func NewTopK(fraction float64) *TopK {
	if fraction <= 0 || fraction > 1 {
		panic("grad: TopK requires 0 < fraction <= 1")
	}
	return &TopK{Fraction: fraction, ErrorFeedback: true,
		residual: map[int]map[string][]float32{}}
}

// Name implements Selector.
func (t *TopK) Name() string { return "topk" }

// Select implements Selector.
func (t *TopK) Select(to int, params []*nn.Param, budgetBytes int) []*Selection {
	peer := t.residual[to]
	if peer == nil {
		peer = map[string][]float32{}
		t.residual[to] = peer
	}
	// derive the per-variable fraction from the budget when present
	frac := t.Fraction
	if budgetBytes > 0 {
		total := 0
		for _, p := range params {
			total += p.G.Len()
		}
		if total > 0 {
			frac = float64(budgetBytes) / float64(total*sparseEntryBytes)
			if frac > 1 {
				frac = 1
			}
			if frac <= 0 {
				frac = 1.0 / float64(total)
			}
		}
	}
	out := make([]*Selection, 0, len(params))
	for _, p := range params {
		g := p.G.Data
		res := peer[p.Name]
		if t.ErrorFeedback {
			if res == nil {
				res = make([]float32, len(g))
				peer[p.Name] = res
			}
			for i, v := range g {
				res[i] += v
			}
			g = res
		}
		k := int(frac * float64(len(g)))
		if k < 1 {
			k = 1
		}
		if k >= len(g) {
			sel := &Selection{Var: p.Name, Total: len(g), Dense: append([]float32(nil), g...)}
			if t.ErrorFeedback {
				for i := range res {
					res[i] = 0
				}
			}
			out = append(out, sel)
			continue
		}
		idx := topKIndices(g, k)
		sel := &Selection{Var: p.Name, Total: len(g),
			Idx: make([]int32, 0, k), Val: make([]float32, 0, k)}
		for _, i := range idx {
			sel.Idx = append(sel.Idx, int32(i))
			sel.Val = append(sel.Val, g[i])
			if t.ErrorFeedback {
				res[i] = 0
			}
		}
		out = append(out, sel)
	}
	return out
}

// topKIndices returns the indices of the k largest |values|, ascending by
// index for cache-friendly application.
func topKIndices(g []float32, k int) []int {
	idx := make([]int, len(g))
	for i := range idx {
		idx[i] = i
	}
	// partial selection: full sort is fine at our sizes and simplest
	sort.Slice(idx, func(a, b int) bool {
		return abs32(g[idx[a]]) > abs32(g[idx[b]])
	})
	idx = idx[:k]
	sort.Ints(idx)
	return idx
}

// RandomK sparsifies by sending k uniformly random coordinates per
// variable, scaled by len/k so the sparsified gradient is an unbiased
// estimator. A control baseline for magnitude-aware selection: it answers
// "does picking the *important* values matter, or just sending fewer?".
type RandomK struct {
	Fraction float64
	rng      *stats.RNG
}

// NewRandomK returns a RandomK selector with its own deterministic stream.
func NewRandomK(fraction float64, seed uint64) *RandomK {
	if fraction <= 0 || fraction > 1 {
		panic("grad: RandomK requires 0 < fraction <= 1")
	}
	return &RandomK{Fraction: fraction, rng: stats.NewRNG(seed)}
}

// Name implements Selector.
func (r *RandomK) Name() string { return "randomk" }

// Select implements Selector. The byte budget, when present, overrides the
// fraction exactly as in TopK.
func (r *RandomK) Select(_ int, params []*nn.Param, budgetBytes int) []*Selection {
	frac := r.Fraction
	if budgetBytes > 0 {
		total := 0
		for _, p := range params {
			total += p.G.Len()
		}
		if total > 0 {
			frac = float64(budgetBytes) / float64(total*sparseEntryBytes)
			if frac > 1 {
				frac = 1
			}
			if frac <= 0 {
				frac = 1.0 / float64(total)
			}
		}
	}
	out := make([]*Selection, 0, len(params))
	for _, p := range params {
		g := p.G.Data
		k := int(frac * float64(len(g)))
		if k < 1 {
			k = 1
		}
		if k >= len(g) {
			out = append(out, denseSelection(p))
			continue
		}
		scale := float32(len(g)) / float32(k)
		perm := r.rng.Perm(len(g))[:k]
		sort.Ints(perm)
		sel := &Selection{Var: p.Name, Total: len(g),
			Idx: make([]int32, 0, k), Val: make([]float32, 0, k)}
		for _, i := range perm {
			sel.Idx = append(sel.Idx, int32(i))
			sel.Val = append(sel.Val, g[i]*scale)
		}
		out = append(out, sel)
	}
	return out
}
