package grad

import (
	"math"
	"testing"
	"testing/quick"

	"dlion/internal/nn"
	"dlion/internal/stats"
	"dlion/internal/tensor"
)

// makeParams builds a small parameter set with the given gradient values.
func makeParams(grads map[string][]float32) []*nn.Param {
	var out []*nn.Param
	// deterministic order: fixed name list
	for _, name := range []string{"a", "b", "c"} {
		g, ok := grads[name]
		if !ok {
			continue
		}
		p := &nn.Param{Name: name,
			W: tensor.New(len(g)),
			G: tensor.FromSlice(append([]float32(nil), g...), len(g))}
		p.W.Fill(1)
		out = append(out, p)
	}
	return out
}

func TestFullSelectsEverything(t *testing.T) {
	ps := makeParams(map[string][]float32{"a": {1, 2, 3}, "b": {0, 0}})
	sels := Full{}.Select(0, ps, 0)
	if len(sels) != 2 {
		t.Fatalf("selections %d", len(sels))
	}
	if TotalCount(sels) != 5 {
		t.Fatalf("count %d", TotalCount(sels))
	}
	dst := make([]float32, 3)
	if err := sels[0].AddTo(dst, 2); err != nil {
		t.Fatal(err)
	}
	if dst[2] != 6 {
		t.Fatalf("AddTo dense: %v", dst)
	}
}

func TestSelectionBytes(t *testing.T) {
	dense := &Selection{Var: "x", Total: 10, Dense: make([]float32, 10)}
	if dense.Bytes() != headerBytes+40 {
		t.Fatalf("dense bytes %d", dense.Bytes())
	}
	sparse := &Selection{Var: "x", Total: 10, Idx: []int32{1, 5}, Val: []float32{1, 2}}
	if sparse.Bytes() != headerBytes+16 {
		t.Fatalf("sparse bytes %d", sparse.Bytes())
	}
}

func TestSelectionAddToErrors(t *testing.T) {
	s := &Selection{Var: "x", Total: 4, Idx: []int32{9}, Val: []float32{1}}
	if err := s.AddTo(make([]float32, 4), 1); err == nil {
		t.Fatal("out-of-range index must error")
	}
	if err := s.AddTo(make([]float32, 3), 1); err == nil {
		t.Fatal("wrong dst length must error")
	}
}

func TestMaxN100SendsAll(t *testing.T) {
	ps := makeParams(map[string][]float32{"a": {0.5, -2, 0.1, 0}})
	sels := NewMaxN(100).Select(0, ps, 0)
	if TotalCount(sels) != 4 {
		t.Fatalf("N=100 must send everything, got %d", TotalCount(sels))
	}
}

func TestMaxNSmallNSendsTop(t *testing.T) {
	// N=10: threshold = 0.9*max. Values within top 10% of range.
	ps := makeParams(map[string][]float32{"a": {1.0, -0.95, 0.5, 0.05}})
	sels := NewMaxN(10).Select(0, ps, 0)
	if TotalCount(sels) != 2 {
		t.Fatalf("want 2 values (1.0 and -0.95), got %d", TotalCount(sels))
	}
	got := map[int32]float32{}
	for k, i := range sels[0].Idx {
		got[i] = sels[0].Val[k]
	}
	if got[0] != 1.0 || got[1] != -0.95 {
		t.Fatalf("wrong values selected: %v", got)
	}
}

func TestMaxNMonotoneInN(t *testing.T) {
	rng := stats.NewRNG(1)
	g := make([]float32, 500)
	for i := range g {
		g[i] = float32(rng.NormFloat64())
	}
	ps := makeParams(map[string][]float32{"a": g})
	prev := -1
	for _, n := range []float64{1, 10, 25, 50, 75, 100} {
		c := TotalCount(NewMaxN(n).Select(0, ps, 0))
		if c < prev {
			t.Fatalf("count not monotone in N: %d after %d at N=%v", c, prev, n)
		}
		prev = c
	}
	if prev != 500 {
		t.Fatalf("N=100 must select all, got %d", prev)
	}
}

func TestMaxNPerVariableThresholds(t *testing.T) {
	// Each variable has its own max; selection must be per-variable (§3.3).
	ps := makeParams(map[string][]float32{
		"a": {100, 1, 1, 1}, // max 100: only 100 survives N=50
		"b": {0.2, 0.15, 0.01, 0.01},
	})
	sels := NewMaxN(50).Select(0, ps, 0)
	byVar := map[string]int{}
	for _, s := range sels {
		byVar[s.Var] = s.Count()
	}
	if byVar["a"] != 1 {
		t.Fatalf("var a: %d", byVar["a"])
	}
	if byVar["b"] != 2 { // threshold 0.1: 0.2 and 0.15
		t.Fatalf("var b: %d", byVar["b"])
	}
}

func TestMaxNZeroGradient(t *testing.T) {
	ps := makeParams(map[string][]float32{"a": {0, 0, 0}})
	sels := NewMaxN(50).Select(0, ps, 0)
	// all values equal the max (0), so all are selected; dense fallback
	if TotalCount(sels) != 3 {
		t.Fatalf("zero grad count %d", TotalCount(sels))
	}
}

func TestMaxNDenseFallback(t *testing.T) {
	// When most values are selected, encoding must switch to dense.
	ps := makeParams(map[string][]float32{"a": {1, 1, 1, 1, 1, 1}})
	sels := NewMaxN(100).Select(0, ps, 0)
	if sels[0].Dense == nil {
		t.Fatal("expected dense fallback")
	}
	if sels[0].Bytes() != headerBytes+24 {
		t.Fatalf("bytes %d", sels[0].Bytes())
	}
}

func TestAutoNFitsBudget(t *testing.T) {
	rng := stats.NewRNG(2)
	g := make([]float32, 10000)
	for i := range g {
		g[i] = float32(rng.NormFloat64())
	}
	ps := makeParams(map[string][]float32{"a": g})
	m := NewMaxN(100)
	for _, budget := range []int{500, 2000, 10000, 100000} {
		sels := m.Select(0, ps, budget)
		got := TotalBytes(sels)
		// histogram bucketing gives slight overshoot tolerance: one bucket
		slack := budget/10 + 200
		if got > budget+slack {
			t.Fatalf("budget %d exceeded: %d bytes", budget, got)
		}
	}
}

func TestAutoNUnlimitedBudgetSendsAll(t *testing.T) {
	ps := makeParams(map[string][]float32{"a": {1, 2, 3}})
	m := NewMaxN(100)
	sels := m.Select(0, ps, 1<<30)
	if TotalCount(sels) != 3 {
		t.Fatalf("huge budget should send all, got %d", TotalCount(sels))
	}
}

func TestAutoNRespectsMinN(t *testing.T) {
	rng := stats.NewRNG(3)
	g := make([]float32, 5000)
	for i := range g {
		g[i] = float32(rng.NormFloat64())
	}
	ps := makeParams(map[string][]float32{"a": g})
	m := NewMaxN(100)
	n := m.AutoN(ps, 1) // absurdly small budget
	if n != m.MinN {
		t.Fatalf("AutoN below MinN: %v", n)
	}
}

func TestMaxNBudgetMonotoneProperty(t *testing.T) {
	rng := stats.NewRNG(4)
	g := make([]float32, 2000)
	for i := range g {
		g[i] = float32(rng.NormFloat64())
	}
	ps := makeParams(map[string][]float32{"a": g})
	m := NewMaxN(100)
	f := func(b1, b2 uint16) bool {
		lo, hi := int(b1), int(b2)
		if lo > hi {
			lo, hi = hi, lo
		}
		c1 := TotalCount(m.Select(0, ps, lo+100))
		c2 := TotalCount(m.Select(0, ps, hi+100))
		return c1 <= c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGaiaSignificanceAndResidual(t *testing.T) {
	g := NewGaia(1) // 1% of weight (weights are 1) => threshold 0.01
	ps := makeParams(map[string][]float32{"a": {0.005, 0.5}})
	sels := g.Select(0, ps, 0)
	// 0.5 is significant, 0.005 is not
	if TotalCount(sels) != 1 || sels[0].Val[0] != 0.5 {
		t.Fatalf("sels %+v", sels)
	}
	// second iteration: another 0.005 accumulates to 0.01 => significant now
	ps2 := makeParams(map[string][]float32{"a": {0.005, 0}})
	sels2 := g.Select(0, ps2, 0)
	if TotalCount(sels2) != 1 {
		t.Fatalf("residual not accumulated: %+v", sels2)
	}
	if math.Abs(float64(sels2[0].Val[0])-0.01) > 1e-6 {
		t.Fatalf("accumulated value %v", sels2[0].Val[0])
	}
	// after flush, accumulator should be empty
	if g.PendingBytes(0) != 0 {
		t.Fatalf("pending %d", g.PendingBytes(0))
	}
}

func TestGaiaPerPeerState(t *testing.T) {
	g := NewGaia(1)
	ps := makeParams(map[string][]float32{"a": {0.005}})
	g.Select(0, ps, 0)
	// peer 1 has its own accumulator; after one sub-threshold step both
	// peers hold pending residual independently
	g.Select(1, ps, 0)
	if g.PendingBytes(0) == 0 || g.PendingBytes(1) == 0 {
		t.Fatal("per-peer accumulators missing")
	}
}

func TestGaiaNoUpdateLost(t *testing.T) {
	// Sum of everything sent plus pending accumulator equals sum of all
	// gradients fed in (conservation).
	g := NewGaia(5)
	rng := stats.NewRNG(5)
	var fedTotal float64
	var sentTotal float64
	for iter := 0; iter < 20; iter++ {
		vals := make([]float32, 50)
		for i := range vals {
			vals[i] = float32(rng.NormFloat64() * 0.01)
			fedTotal += float64(vals[i])
		}
		ps := makeParams(map[string][]float32{"a": vals})
		for _, s := range g.Select(0, ps, 0) {
			for _, v := range s.Val {
				sentTotal += float64(v)
			}
		}
	}
	var pending float64
	for _, a := range g.acc[0] {
		for _, v := range a {
			pending += float64(v)
		}
	}
	if math.Abs(fedTotal-(sentTotal+pending)) > 1e-3 {
		t.Fatalf("conservation violated: fed %v, sent+pending %v", fedTotal, sentTotal+pending)
	}
}

func TestAkoRotatesPartitions(t *testing.T) {
	a := NewAko(4)
	ps := makeParams(map[string][]float32{"a": {1, 2, 3, 4, 5, 6, 7, 8}})
	covered := map[int32]bool{}
	for iter := 0; iter < 4; iter++ {
		for _, s := range a.Select(0, ps, 0) {
			if s.Dense != nil {
				for i := range s.Dense {
					covered[int32(i)] = true
				}
			}
			for _, i := range s.Idx {
				covered[i] = true
			}
		}
	}
	if len(covered) != 8 {
		t.Fatalf("P rounds must cover all coordinates, got %d/8", len(covered))
	}
}

func TestAkoAccumulatesUnsent(t *testing.T) {
	a := NewAko(2)
	ps := makeParams(map[string][]float32{"a": {1, 1}})
	// iter 1 sends coord 0 (value 1); coord 1 accumulates
	s1 := a.Select(0, ps, 0)
	if TotalCount(s1) != 1 {
		t.Fatalf("iter1 count %d", TotalCount(s1))
	}
	// iter 2 sends coord 1 which accumulated two iterations: value 2
	s2 := a.Select(0, ps, 0)
	var got float32
	for _, s := range s2 {
		if len(s.Val) > 0 {
			got = s.Val[0]
		}
		if s.Dense != nil {
			t.Fatal("expected sparse for half partition")
		}
	}
	if got != 2 {
		t.Fatalf("unsent accumulation: got %v, want 2", got)
	}
}

func TestAkoConservation(t *testing.T) {
	// Over k*P iterations with constant gradients, everything fed is
	// eventually sent (accumulators drain every P rounds).
	a := NewAko(3)
	ps := makeParams(map[string][]float32{"a": {1, 1, 1, 1, 1, 1}})
	var sent float64
	iters := 9
	for i := 0; i < iters; i++ {
		for _, s := range a.Select(0, ps, 0) {
			if s.Dense != nil {
				for _, v := range s.Dense {
					sent += float64(v)
				}
			}
			for _, v := range s.Val {
				sent += float64(v)
			}
		}
	}
	fed := float64(iters * 6)
	// at most the trailing (P-1) partitions of recent feeds are pending
	if sent > fed || sent < fed-float64(2*6) {
		t.Fatalf("sent %v of fed %v", sent, fed)
	}
}

func TestAkoSpansVariables(t *testing.T) {
	a := NewAko(2)
	ps := makeParams(map[string][]float32{"a": {1, 2}, "b": {3, 4}})
	s1 := a.Select(0, ps, 0)
	// first partition covers the whole of "a" (dense) and none of "b"
	if len(s1) != 1 || s1[0].Var != "a" || s1[0].Dense == nil {
		t.Fatalf("partition 1: %+v", s1)
	}
	s2 := a.Select(0, ps, 0)
	if len(s2) != 1 || s2[0].Var != "b" {
		t.Fatalf("partition 2: %+v", s2)
	}
}

func TestSelectorNamesAndConstructorPanics(t *testing.T) {
	if (Full{}).Name() != "full" || NewMaxN(10).Name() != "maxN" ||
		NewGaia(1).Name() != "gaia" || NewAko(2).Name() != "ako" {
		t.Fatal("selector names")
	}
	for name, fn := range map[string]func(){
		"maxn0":   func() { NewMaxN(0) },
		"maxn101": func() { NewMaxN(101) },
		"gaia0":   func() { NewGaia(0) },
		"ako0":    func() { NewAko(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestApplyEquivalenceFullVsMaxN100(t *testing.T) {
	// Applying Full and MaxN(100) selections must produce identical updates.
	rng := stats.NewRNG(7)
	g := make([]float32, 100)
	for i := range g {
		g[i] = float32(rng.NormFloat64())
	}
	ps := makeParams(map[string][]float32{"a": g})
	d1 := make([]float32, 100)
	d2 := make([]float32, 100)
	for _, s := range (Full{}).Select(0, ps, 0) {
		s.AddTo(d1, 1)
	}
	for _, s := range NewMaxN(100).Select(0, ps, 0) {
		s.AddTo(d2, 1)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, d1[i], d2[i])
		}
	}
}
