package grad

import (
	"math"
	"math/rand"
	"testing"
)

// TestF16SpecialValues pins the binary16 conversion on every IEEE edge
// class: NaN, infinities, signed zeros, subnormals, and range boundaries.
func TestF16SpecialValues(t *testing.T) {
	nan32 := float32(math.NaN())
	cases := []struct {
		name string
		in   float32
		want float32 // expected round-trip value (NaN checked separately)
	}{
		{"+zero", 0, 0},
		{"-zero", float32(math.Copysign(0, -1)), float32(math.Copysign(0, -1))},
		{"+inf", float32(math.Inf(1)), float32(math.Inf(1))},
		{"-inf", float32(math.Inf(-1)), float32(math.Inf(-1))},
		{"one", 1, 1},
		{"max-f16", 65504, 65504},
		{"overflow", 65520, float32(math.Inf(1))},
		{"big-overflow", 1e30, float32(math.Inf(1))},
		{"min-normal", 6.103515625e-05, 6.103515625e-05},            // 2^-14
		{"subnormal", 5.960464477539063e-08, 5.960464477539063e-08}, // 2^-24
		{"underflow", 1e-9, 0},
		{"-underflow", -1e-9, float32(math.Copysign(0, -1))},
		{"f32-denormal", math.Float32frombits(1), 0}, // smallest f32 subnormal
	}
	for _, tc := range cases {
		got := F16FromBits(F16Bits(tc.in))
		if math.Float32bits(got) != math.Float32bits(tc.want) {
			t.Errorf("%s: round trip %v -> %v (bits %#x), want %v",
				tc.name, tc.in, got, F16Bits(tc.in), tc.want)
		}
	}
	if got := F16FromBits(F16Bits(nan32)); !math.IsNaN(float64(got)) {
		t.Errorf("NaN round trip produced %v", got)
	}
}

// TestF16RoundTripProperty checks, over random finite inputs, that the
// f32->f16->f32 conversion is idempotent and within the binary16 relative
// error bound 2^-11 for the normal range.
func TestF16RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		// Spread across the full normal f16 range via random exponents.
		v := float32((rng.Float64()*2 - 1) * math.Pow(2, float64(rng.Intn(30)-15)))
		h := F16Bits(v)
		back := F16FromBits(h)
		if F16Bits(back) != h {
			t.Fatalf("not idempotent: %v -> %#x -> %v -> %#x", v, h, back, F16Bits(back))
		}
		if math.IsInf(float64(back), 0) {
			if math.Abs(float64(v)) < 65504 {
				t.Fatalf("spurious overflow: %v -> Inf", v)
			}
			continue
		}
		if math.Abs(float64(v)) >= 6.103515625e-05 { // normal f16 range
			relErr := math.Abs(float64(back-v)) / math.Abs(float64(v))
			if relErr > 1.0/2048 {
				t.Fatalf("relative error %.3g > 2^-11 for %v -> %v", relErr, v, back)
			}
		} else if math.Abs(float64(back-v)) > 5.960464477539063e-08 {
			// Subnormal range: absolute error bounded by one ulp (2^-24).
			t.Fatalf("subnormal error %v for %v -> %v", back-v, v, back)
		}
	}
}

// TestQuantizeI8Properties checks the int8 quantizer's contract: zero code
// for non-finite inputs and corrupt scales, symmetric clamping, and the
// scale/2 absolute error bound inside the representable range.
func TestQuantizeI8Properties(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	if QuantizeI8(nan, 1, 0) != 0 || QuantizeI8(inf, 1, 0) != 0 || QuantizeI8(-inf, 1, 0) != 0 {
		t.Fatal("non-finite values must quantize to the zero code")
	}
	if QuantizeI8(1, 0, 3) != 3 || QuantizeI8(1, nan, 3) != 3 || QuantizeI8(1, inf, 3) != 3 {
		t.Fatal("corrupt scales must quantize to the zero code")
	}
	if QuantizeI8(0, 1, 0) != 0 || QuantizeI8(float32(math.Copysign(0, -1)), 1, 0) != 0 {
		t.Fatal("signed zeros must quantize to 0")
	}
	if q := QuantizeI8(1e30, 1, 0); q != 127 {
		t.Fatalf("overflow clamp: got %d, want 127", q)
	}
	if q := QuantizeI8(-1e30, 1, 0); q != -127 {
		t.Fatalf("underflow clamp: got %d, want -127", q)
	}

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		maxAbs := float32(rng.Float64()*10 + 0.01)
		scale := maxAbs / 127
		v := float32(rng.Float64()*2-1) * maxAbs
		q := QuantizeI8(v, scale, 0)
		back := DequantizeI8(q, scale, 0)
		if err := math.Abs(float64(back - v)); err > float64(scale)/2*(1+1e-5) {
			t.Fatalf("error %.4g > scale/2 = %.4g for v=%v scale=%v q=%d",
				err, scale/2, v, scale, q)
		}
	}
}

// TestSelectionQuantize covers the Selection-level contract: dense and
// sparse payloads, byte accounting, the dequantized image, idempotence,
// and NaN/Inf scrubbing.
func TestSelectionQuantize(t *testing.T) {
	nan := float32(math.NaN())
	dense := &Selection{Var: "w", Total: 6,
		Dense: []float32{0.5, -0.25, nan, float32(math.Inf(1)), 0, -1}}
	f32Bytes := dense.Bytes()
	dense.Quantize(PrecI8)
	if dense.Prec != PrecI8 || len(dense.Q8) != 6 {
		t.Fatalf("dense quantize: prec=%v q8=%d", dense.Prec, len(dense.Q8))
	}
	// maxAbs over finite values is 1 (NaN/Inf excluded), so scale = 1/127.
	if want := float32(1) / 127; dense.Scale != want {
		t.Fatalf("scale %v, want %v", dense.Scale, want)
	}
	if dense.Dense[2] != 0 || dense.Dense[3] != 0 {
		t.Fatalf("non-finite values must dequantize to 0, got %v %v", dense.Dense[2], dense.Dense[3])
	}
	if got := dense.Bytes(); got != headerBytes+6 {
		t.Fatalf("int8 dense bytes %d, want %d", got, headerBytes+6)
	}
	if f32Bytes != headerBytes+24 {
		t.Fatalf("f32 dense bytes %d, want %d", f32Bytes, headerBytes+24)
	}
	// Idempotent: a second Quantize (any precision) is a no-op.
	before := append([]int8(nil), dense.Q8...)
	dense.Quantize(PrecF16)
	if dense.Prec != PrecI8 || len(dense.F16) != 0 {
		t.Fatal("re-quantizing an already-quantized selection must be a no-op")
	}
	for i := range before {
		if dense.Q8[i] != before[i] {
			t.Fatal("re-quantize mutated the payload")
		}
	}

	sparse := &Selection{Var: "w", Total: 100,
		Idx: []int32{3, 50, 99}, Val: []float32{2, -0.5, 0.125}}
	sparse.Quantize(PrecF16)
	if sparse.Prec != PrecF16 || len(sparse.F16) != 3 {
		t.Fatalf("sparse quantize: prec=%v f16=%d", sparse.Prec, len(sparse.F16))
	}
	for k, v := range sparse.Val {
		if F16FromBits(sparse.F16[k]) != v {
			t.Fatalf("Val[%d]=%v is not the dequantized image of %#x", k, v, sparse.F16[k])
		}
	}
	if got, want := sparse.Bytes(), headerBytes+3*6; got != want {
		t.Fatalf("f16 sparse bytes %d, want %d", got, want)
	}
}

// TestQuantizeAllSavings verifies the byte-savings accounting against the
// encoding arithmetic: int8 dense is a 4x value-payload reduction.
func TestQuantizeAllSavings(t *testing.T) {
	sels := []*Selection{
		{Var: "a", Total: 1000, Dense: make([]float32, 1000)},
		{Var: "b", Total: 100, Idx: make([]int32, 10), Val: make([]float32, 10)},
	}
	for i := range sels[0].Dense {
		sels[0].Dense[i] = float32(i%13) - 6
	}
	for i := range sels[1].Val {
		sels[1].Val[i] = float32(i) - 5
	}
	before := TotalBytes(sels)
	saved := QuantizeAll(sels, PrecI8)
	after := TotalBytes(sels)
	if before-after != saved {
		t.Fatalf("saved %d but bytes dropped by %d", saved, before-after)
	}
	// dense: 4000 -> 1000; sparse: 10*8 -> 10*5.
	if want := 3000 + 30; saved != want {
		t.Fatalf("saved %d, want %d", saved, want)
	}
}

// TestPrecMask pins the negotiation clamp: a peer that accepts only f16
// downgrades an int8 sender to f16, and an empty (unknown) mask behaves as
// accept-all.
func TestPrecMask(t *testing.T) {
	if got := MaskF16.Clamp(PrecI8); got != PrecF16 {
		t.Fatalf("f16-only peer: int8 clamped to %v, want f16", got)
	}
	if got := PrecMask(0).Clamp(PrecI8); got != PrecF32 {
		t.Fatalf("empty mask allows nothing reduced: got %v, want f32", got)
	}
	if !MaskAll.Allows(PrecI8) || !MaskAll.Allows(PrecF16) || !MaskAll.Allows(PrecF32) {
		t.Fatal("MaskAll must allow every precision")
	}
	if MaskI8.Clamp(PrecF16) != PrecF32 {
		t.Fatal("int8-only peer must clamp f16 to f32")
	}
}
