package grad

import (
	"dlion/internal/nn"
)

// Ako implements the partitioned gradient exchange of Ako (Watcharapichat
// et al., SoCC'16) as described in §5.1.4: the flattened gradient space is
// split into P partitions; each iteration a worker sends one whole
// partition to each peer, rotating round-robin, while the values of
// partitions not sent this round keep accumulating so every coordinate is
// eventually synchronized (Ako's "accumulated partial gradient exchange").
// The partition count is derived from network and compute capacity in the
// original system; here it is a constructor parameter the systems preset
// chooses, and the per-link byte budget is ignored once P is fixed.
type Ako struct {
	P int // number of partitions, >= 1

	round map[int]int                  // per peer: next partition to send
	acc   map[int]map[string][]float32 // per peer, per variable accumulator
}

// NewAko returns an Ako selector with P partitions.
func NewAko(p int) *Ako {
	if p < 1 {
		panic("grad: Ako requires P >= 1")
	}
	return &Ako{P: p, round: map[int]int{}, acc: map[int]map[string][]float32{}}
}

// Name implements Selector.
func (a *Ako) Name() string { return "ako" }

// Select implements Selector.
func (a *Ako) Select(to int, params []*nn.Param, _ int) []*Selection {
	peer := a.acc[to]
	if peer == nil {
		peer = map[string][]float32{}
		a.acc[to] = peer
	}
	part := a.round[to]
	a.round[to] = (part + 1) % a.P

	// total gradient length defines partition boundaries over the
	// concatenated variable space
	total := 0
	for _, p := range params {
		total += p.G.Len()
	}
	lo := total * part / a.P
	hi := total * (part + 1) / a.P

	out := []*Selection{}
	offset := 0
	for _, p := range params {
		acc := peer[p.Name]
		if acc == nil {
			acc = make([]float32, p.G.Len())
			peer[p.Name] = acc
		}
		for i, gv := range p.G.Data {
			acc[i] += gv
		}
		vLo, vHi := offset, offset+p.G.Len()
		// intersection of [vLo, vHi) with [lo, hi)
		sLo, sHi := maxInt(vLo, lo), minInt(vHi, hi)
		if sLo < sHi {
			sel := &Selection{Var: p.Name, Total: p.G.Len()}
			if sHi-sLo == p.G.Len() {
				sel.Dense = make([]float32, p.G.Len())
				copy(sel.Dense, acc)
				for i := range acc {
					acc[i] = 0
				}
			} else {
				n := sHi - sLo
				sel.Idx = make([]int32, 0, n)
				sel.Val = make([]float32, 0, n)
				for gi := sLo - vLo; gi < sHi-vLo; gi++ {
					sel.Idx = append(sel.Idx, int32(gi))
					sel.Val = append(sel.Val, acc[gi])
					acc[gi] = 0
				}
			}
			out = append(out, sel)
		}
		offset = vHi
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
