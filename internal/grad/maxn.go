package grad

import (
	"dlion/internal/nn"
)

// MaxN implements DLion's data quality assurance algorithm (§3.3): for
// each weight variable, select the gradient values whose absolute value is
// within the top N% of the variable's maximum absolute value, i.e.
//
//	|g_i| >= (1 - N/100) · max_j |g_j|
//
// N=100 therefore exchanges the whole gradient and N→0 exchanges only the
// single largest value, matching the paper's "as N increases, the size of
// partial gradients increases" and "if N is 100, it is equivalent to
// exchanging whole gradients". (The paper's prose also contains the
// inverted phrasing "greater than or equal to N% of the maximum"; that
// reading contradicts its own N=100 example and Figure 7's
// accuracy-increases-with-N trend, so we implement the self-consistent
// form.)
//
// When a positive byte budget is supplied, AutoN is applied first: the
// largest N whose selection fits the budget is chosen per link, which is
// the transmission speed assurance module's job. MinN bounds the search
// from below (the paper's evaluation sets 0.85).
type MaxN struct {
	N    float64 // fixed N when no budget applies; (0, 100]
	MinN float64 // lower bound for auto-tuned N; default 0.85

	// scratch histogram reused across calls
	hist histogram
}

// NewMaxN returns a MaxN selector with a fixed N (used when the budget is
// unlimited) and the paper's default MinN.
func NewMaxN(n float64) *MaxN {
	if n <= 0 || n > 100 {
		panic("grad: MaxN requires 0 < N <= 100")
	}
	return &MaxN{N: n, MinN: 0.85}
}

// Name implements Selector.
func (m *MaxN) Name() string { return "maxN" }

// LinkInvariantSelection implements LinkInvariant: MaxN keeps no per-peer
// state, so equal budgets always produce equal selections.
func (m *MaxN) LinkInvariantSelection() {}

// Select implements Selector. The same fresh mean gradient must be passed
// for every peer of the current iteration; MaxN keeps no cross-iteration
// state, so per-link differences come only from the per-link budget.
func (m *MaxN) Select(_ int, params []*nn.Param, budgetBytes int) []*Selection {
	n := m.N
	if budgetBytes > 0 {
		n = m.AutoN(params, budgetBytes)
	}
	return m.SelectN(params, n)
}

// SelectN runs the Max N rule with an explicit N over all variables.
func (m *MaxN) SelectN(params []*nn.Param, n float64) []*Selection {
	if n <= 0 {
		n = m.MinN
	}
	if n > 100 {
		n = 100
	}
	frac := 1 - n/100
	out := make([]*Selection, 0, len(params))
	for _, p := range params {
		out = append(out, selectVariable(p, frac))
	}
	return out
}

// selectVariable applies threshold = frac·maxAbs to one variable. When the
// threshold admits every value the dense encoding is used (half the wire
// cost); otherwise the selection stays sparse so that exactly the chosen
// values — and nothing below the threshold — are transmitted.
func selectVariable(p *nn.Param, frac float64) *Selection {
	g := p.G.Data
	maxAbs := p.G.MaxAbs()
	thresh := float32(frac) * maxAbs
	count := 0
	for _, v := range g {
		if abs32(v) >= thresh {
			count++
		}
	}
	if count == len(g) {
		return denseSelection(p)
	}
	sel := &Selection{Var: p.Name, Total: len(g),
		Idx: make([]int32, 0, count), Val: make([]float32, 0, count)}
	for i, v := range g {
		if abs32(v) >= thresh {
			sel.Idx = append(sel.Idx, int32(i))
			sel.Val = append(sel.Val, v)
		}
	}
	return sel
}

// AutoN returns the largest N in [MinN, 100] whose selection fits within
// budgetBytes, using a shared histogram of |g|/maxAbs per variable so the
// search is O(params + buckets) instead of O(params·log) per link.
func (m *MaxN) AutoN(params []*nn.Param, budgetBytes int) float64 {
	m.hist.build(params)
	lo, hi := m.MinN, 100.0
	if m.hist.bytesAtN(hi) <= budgetBytes {
		return hi
	}
	if m.hist.bytesAtN(lo) > budgetBytes {
		return lo // even the minimum overshoots; MinN is a floor by design
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if m.hist.bytesAtN(mid) <= budgetBytes {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// histogram buckets |g|/maxAbs over all variables. bucket k holds values
// with ratio in [k/B, (k+1)/B); selection at threshold frac counts buckets
// >= frac·B. Dense fallback is accounted per variable.
type histogram struct {
	buckets   int
	perVar    [][]int // counts per variable
	varLens   []int
	varCumul  [][]int // suffix sums: cumul[v][k] = #values with ratio >= k/B
	numVars   int
	threshold []float64
}

const histBuckets = 512

func (h *histogram) build(params []*nn.Param) {
	h.buckets = histBuckets
	h.numVars = len(params)
	if cap(h.perVar) < len(params) {
		h.perVar = make([][]int, len(params))
		h.varCumul = make([][]int, len(params))
		h.varLens = make([]int, len(params))
	}
	h.perVar = h.perVar[:len(params)]
	h.varCumul = h.varCumul[:len(params)]
	h.varLens = h.varLens[:len(params)]
	for vi, p := range params {
		if h.perVar[vi] == nil {
			h.perVar[vi] = make([]int, h.buckets)
			h.varCumul[vi] = make([]int, h.buckets+1)
		}
		counts := h.perVar[vi]
		for i := range counts {
			counts[i] = 0
		}
		g := p.G.Data
		h.varLens[vi] = len(g)
		maxAbs := p.G.MaxAbs()
		if maxAbs == 0 {
			// all-zero gradient: everything is "at the max"; bucket B-1
			counts[h.buckets-1] = len(g)
		} else {
			inv := float64(h.buckets) / float64(maxAbs)
			for _, v := range g {
				k := int(float64(abs32(v)) * inv)
				if k >= h.buckets {
					k = h.buckets - 1
				}
				counts[k]++
			}
		}
		cum := h.varCumul[vi]
		cum[h.buckets] = 0
		for k := h.buckets - 1; k >= 0; k-- {
			cum[k] = cum[k+1] + counts[k]
		}
	}
}

// bytesAtN estimates wire bytes if selection ran at the given N, matching
// selectVariable's dense-fallback rule.
func (h *histogram) bytesAtN(n float64) int {
	frac := 1 - n/100
	k := int(frac * float64(h.buckets))
	if k < 0 {
		k = 0
	}
	if k > h.buckets {
		k = h.buckets
	}
	total := 0
	for vi := 0; vi < h.numVars; vi++ {
		count := h.varCumul[vi][k]
		if count == h.varLens[vi] {
			total += headerBytes + 4*h.varLens[vi]
		} else {
			total += headerBytes + sparseEntryBytes*count
		}
	}
	return total
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
