package grad

import (
	"math"
	"testing"

	"dlion/internal/stats"
)

func TestTopKSelectsLargestMagnitudes(t *testing.T) {
	ps := makeParams(map[string][]float32{"a": {0.1, -5, 0.2, 3, -0.05, 1}})
	tk := NewTopK(0.5) // k = 3
	sels := tk.Select(0, ps, 0)
	if TotalCount(sels) != 3 {
		t.Fatalf("count %d", TotalCount(sels))
	}
	got := map[int32]float32{}
	for k, i := range sels[0].Idx {
		got[i] = sels[0].Val[k]
	}
	if got[1] != -5 || got[3] != 3 || got[5] != 1 {
		t.Fatalf("wrong selection: %v", got)
	}
	// indices ascending
	for k := 1; k < len(sels[0].Idx); k++ {
		if sels[0].Idx[k] <= sels[0].Idx[k-1] {
			t.Fatal("indices not ascending")
		}
	}
}

func TestTopKErrorFeedbackAccumulates(t *testing.T) {
	tk := NewTopK(0.25) // k=1 of 4
	ps := makeParams(map[string][]float32{"a": {1, 0.6, 0.6, 0.6}})
	s1 := tk.Select(0, ps, 0)
	if s1[0].Val[0] != 1 {
		t.Fatalf("first round should send the 1: %v", s1[0].Val)
	}
	// second round, same fresh gradient: coord 0's residual was cleared so
	// it offers 1, while coord 1 offers residual 0.6 + fresh 0.6 = 1.2 and
	// must win — that is the error feedback doing its job
	s2 := tk.Select(0, ps, 0)
	if s2[0].Idx[0] == 0 {
		t.Fatalf("error feedback ignored: resent coord 0 (%v)", s2[0])
	}
	if math.Abs(float64(s2[0].Val[0])-1.2) > 1e-6 {
		t.Fatalf("accumulated value %v, want 1.2", s2[0].Val[0])
	}
}

func TestTopKConservationWithFeedback(t *testing.T) {
	// everything fed is eventually sent or held in residual
	tk := NewTopK(0.3)
	rng := stats.NewRNG(2)
	var fed, sent float64
	vals := make([]float32, 40)
	for round := 0; round < 10; round++ {
		for i := range vals {
			vals[i] = float32(rng.NormFloat64())
			fed += float64(vals[i])
		}
		ps := makeParams(map[string][]float32{"a": vals})
		for _, s := range tk.Select(0, ps, 0) {
			for _, v := range s.Val {
				sent += float64(v)
			}
			for _, v := range s.Dense {
				sent += float64(v)
			}
		}
	}
	var pending float64
	for _, res := range tk.residual[0] {
		for _, v := range res {
			pending += float64(v)
		}
	}
	if math.Abs(fed-(sent+pending)) > 1e-3 {
		t.Fatalf("conservation violated: fed %v vs sent+pending %v", fed, sent+pending)
	}
}

func TestTopKBudgetDrivesFraction(t *testing.T) {
	rng := stats.NewRNG(3)
	g := make([]float32, 1000)
	for i := range g {
		g[i] = float32(rng.NormFloat64())
	}
	ps := makeParams(map[string][]float32{"a": g})
	tk := NewTopK(1.0)
	small := TotalCount(tk.Select(0, ps, 800)) // ~100 entries
	tk2 := NewTopK(1.0)
	large := TotalCount(tk2.Select(0, ps, 4000)) // ~500 entries
	if small >= large {
		t.Fatalf("budget not respected: %d vs %d", small, large)
	}
	if small < 50 || small > 150 {
		t.Fatalf("small selection %d far from budget/8=100", small)
	}
}

func TestTopKFullFractionDense(t *testing.T) {
	ps := makeParams(map[string][]float32{"a": {1, 2}})
	tk := NewTopK(1.0)
	sels := tk.Select(0, ps, 0)
	if sels[0].Dense == nil {
		t.Fatal("fraction 1 should send dense")
	}
	// residual cleared after dense send
	s2 := tk.Select(0, ps, 0)
	if s2[0].Dense[0] != 1 {
		t.Fatalf("residual not cleared: %v", s2[0].Dense)
	}
}

func TestRandomKUnbiased(t *testing.T) {
	// E[sparsified] = gradient: average many draws of a constant gradient
	g := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	ps := makeParams(map[string][]float32{"a": g})
	rk := NewRandomK(0.25, 5)
	sum := make([]float64, len(g))
	const rounds = 4000
	for r := 0; r < rounds; r++ {
		for _, s := range rk.Select(0, ps, 0) {
			for k, i := range s.Idx {
				sum[i] += float64(s.Val[k])
			}
		}
	}
	for i, want := range g {
		got := sum[i] / rounds
		if math.Abs(got-float64(want))/float64(want) > 0.15 {
			t.Fatalf("biased at %d: mean %v, want %v", i, got, want)
		}
	}
}

func TestRandomKCount(t *testing.T) {
	g := make([]float32, 100)
	for i := range g {
		g[i] = 1
	}
	ps := makeParams(map[string][]float32{"a": g})
	rk := NewRandomK(0.1, 1)
	sels := rk.Select(0, ps, 0)
	if TotalCount(sels) != 10 {
		t.Fatalf("count %d, want 10", TotalCount(sels))
	}
	// distinct ascending indices
	seen := map[int32]bool{}
	for _, i := range sels[0].Idx {
		if seen[i] {
			t.Fatal("duplicate index")
		}
		seen[i] = true
	}
}

func TestCompressConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"topk0":    func() { NewTopK(0) },
		"topk2":    func() { NewTopK(2) },
		"randomk0": func() { NewRandomK(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
	if NewTopK(0.5).Name() != "topk" || NewRandomK(0.5, 1).Name() != "randomk" {
		t.Fatal("names")
	}
}

// TestQuickselectMatchesSortReference pins topKIndices (quickselect) to the
// full-sort reference under the magBefore order, on exactly the inputs where
// a selection algorithm can silently diverge: ties by magnitude, duplicate
// values, signed pairs, NaN gradients, and all-equal arrays. Because ties
// break on the index, both paths must return the identical index set in the
// identical (ascending) order.
func TestQuickselectMatchesSortReference(t *testing.T) {
	nan := float32(math.NaN())
	cases := map[string][]float32{
		"ties":       {1, -1, 1, -1, 1, -1, 1, -1},
		"duplicates": {3, 3, 3, 2, 2, 2, 1, 1, 1, 0, 0},
		"allEqual":   {7, 7, 7, 7, 7, 7},
		"allZero":    {0, 0, 0, 0, 0},
		"oneNaN":     {1, 2, nan, 4, 0.5, -3},
		"manyNaN":    {nan, 1, nan, -2, nan, 0},
		"negZero":    {float32(math.Copysign(0, -1)), 0, 1, -1, 0},
		"single":     {42},
	}
	for name, g := range cases {
		for k := 1; k <= len(g); k++ {
			got := topKIndices(g, k)
			want := topKIndicesSort(g, k)
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: len %d vs %d", name, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s k=%d: quickselect %v, sort reference %v", name, k, got, want)
				}
			}
		}
	}
}

// TestQuickselectMatchesSortRandom is the property version: random gradients
// with injected zeros, duplicates, and NaNs across many sizes and cut points.
func TestQuickselectMatchesSortRandom(t *testing.T) {
	rng := stats.NewRNG(99)
	nan := float32(math.NaN())
	for trial := 0; trial < 200; trial++ {
		n := 1 + int(rng.Uint64()%300)
		g := make([]float32, n)
		for i := range g {
			switch rng.Uint64() % 8 {
			case 0:
				g[i] = 0
			case 1:
				g[i] = nan
			case 2:
				g[i] = 1.5 // force cross-index magnitude ties
			default:
				g[i] = float32(rng.NormFloat64())
			}
		}
		k := 1 + int(rng.Uint64()%uint64(n))
		got := topKIndices(g, k)
		want := topKIndicesSort(g, k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d n=%d k=%d: quickselect %v, sort reference %v", trial, n, k, got, want)
			}
		}
	}
}
