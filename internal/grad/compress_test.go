package grad

import (
	"math"
	"testing"

	"dlion/internal/stats"
)

func TestTopKSelectsLargestMagnitudes(t *testing.T) {
	ps := makeParams(map[string][]float32{"a": {0.1, -5, 0.2, 3, -0.05, 1}})
	tk := NewTopK(0.5) // k = 3
	sels := tk.Select(0, ps, 0)
	if TotalCount(sels) != 3 {
		t.Fatalf("count %d", TotalCount(sels))
	}
	got := map[int32]float32{}
	for k, i := range sels[0].Idx {
		got[i] = sels[0].Val[k]
	}
	if got[1] != -5 || got[3] != 3 || got[5] != 1 {
		t.Fatalf("wrong selection: %v", got)
	}
	// indices ascending
	for k := 1; k < len(sels[0].Idx); k++ {
		if sels[0].Idx[k] <= sels[0].Idx[k-1] {
			t.Fatal("indices not ascending")
		}
	}
}

func TestTopKErrorFeedbackAccumulates(t *testing.T) {
	tk := NewTopK(0.25) // k=1 of 4
	ps := makeParams(map[string][]float32{"a": {1, 0.6, 0.6, 0.6}})
	s1 := tk.Select(0, ps, 0)
	if s1[0].Val[0] != 1 {
		t.Fatalf("first round should send the 1: %v", s1[0].Val)
	}
	// second round, same fresh gradient: coord 0's residual was cleared so
	// it offers 1, while coord 1 offers residual 0.6 + fresh 0.6 = 1.2 and
	// must win — that is the error feedback doing its job
	s2 := tk.Select(0, ps, 0)
	if s2[0].Idx[0] == 0 {
		t.Fatalf("error feedback ignored: resent coord 0 (%v)", s2[0])
	}
	if math.Abs(float64(s2[0].Val[0])-1.2) > 1e-6 {
		t.Fatalf("accumulated value %v, want 1.2", s2[0].Val[0])
	}
}

func TestTopKConservationWithFeedback(t *testing.T) {
	// everything fed is eventually sent or held in residual
	tk := NewTopK(0.3)
	rng := stats.NewRNG(2)
	var fed, sent float64
	vals := make([]float32, 40)
	for round := 0; round < 10; round++ {
		for i := range vals {
			vals[i] = float32(rng.NormFloat64())
			fed += float64(vals[i])
		}
		ps := makeParams(map[string][]float32{"a": vals})
		for _, s := range tk.Select(0, ps, 0) {
			for _, v := range s.Val {
				sent += float64(v)
			}
			for _, v := range s.Dense {
				sent += float64(v)
			}
		}
	}
	var pending float64
	for _, res := range tk.residual[0] {
		for _, v := range res {
			pending += float64(v)
		}
	}
	if math.Abs(fed-(sent+pending)) > 1e-3 {
		t.Fatalf("conservation violated: fed %v vs sent+pending %v", fed, sent+pending)
	}
}

func TestTopKBudgetDrivesFraction(t *testing.T) {
	rng := stats.NewRNG(3)
	g := make([]float32, 1000)
	for i := range g {
		g[i] = float32(rng.NormFloat64())
	}
	ps := makeParams(map[string][]float32{"a": g})
	tk := NewTopK(1.0)
	small := TotalCount(tk.Select(0, ps, 800)) // ~100 entries
	tk2 := NewTopK(1.0)
	large := TotalCount(tk2.Select(0, ps, 4000)) // ~500 entries
	if small >= large {
		t.Fatalf("budget not respected: %d vs %d", small, large)
	}
	if small < 50 || small > 150 {
		t.Fatalf("small selection %d far from budget/8=100", small)
	}
}

func TestTopKFullFractionDense(t *testing.T) {
	ps := makeParams(map[string][]float32{"a": {1, 2}})
	tk := NewTopK(1.0)
	sels := tk.Select(0, ps, 0)
	if sels[0].Dense == nil {
		t.Fatal("fraction 1 should send dense")
	}
	// residual cleared after dense send
	s2 := tk.Select(0, ps, 0)
	if s2[0].Dense[0] != 1 {
		t.Fatalf("residual not cleared: %v", s2[0].Dense)
	}
}

func TestRandomKUnbiased(t *testing.T) {
	// E[sparsified] = gradient: average many draws of a constant gradient
	g := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	ps := makeParams(map[string][]float32{"a": g})
	rk := NewRandomK(0.25, 5)
	sum := make([]float64, len(g))
	const rounds = 4000
	for r := 0; r < rounds; r++ {
		for _, s := range rk.Select(0, ps, 0) {
			for k, i := range s.Idx {
				sum[i] += float64(s.Val[k])
			}
		}
	}
	for i, want := range g {
		got := sum[i] / rounds
		if math.Abs(got-float64(want))/float64(want) > 0.15 {
			t.Fatalf("biased at %d: mean %v, want %v", i, got, want)
		}
	}
}

func TestRandomKCount(t *testing.T) {
	g := make([]float32, 100)
	for i := range g {
		g[i] = 1
	}
	ps := makeParams(map[string][]float32{"a": g})
	rk := NewRandomK(0.1, 1)
	sels := rk.Select(0, ps, 0)
	if TotalCount(sels) != 10 {
		t.Fatalf("count %d, want 10", TotalCount(sels))
	}
	// distinct ascending indices
	seen := map[int32]bool{}
	for _, i := range sels[0].Idx {
		if seen[i] {
			t.Fatal("duplicate index")
		}
		seen[i] = true
	}
}

func TestCompressConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"topk0":    func() { NewTopK(0) },
		"topk2":    func() { NewTopK(2) },
		"randomk0": func() { NewRandomK(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
	if NewTopK(0.5).Name() != "topk" || NewRandomK(0.5, 1).Name() != "randomk" {
		t.Fatal("names")
	}
}
