// Package grad implements the gradient selection algorithms DLion and the
// comparison systems use to decide *which* gradient values cross the
// network each iteration: Full (Baseline), Max N (DLion, §3.3), Gaia's
// significance filter, and Ako's partitioned exchange.
//
// Selection granularity is the individual weight variable, matching §4.2
// ("the granularity of data transmission is not the whole weight variables,
// but individual weight variables").
package grad

import (
	"fmt"

	"dlion/internal/nn"
)

// Selection is the subset of one weight variable's gradient chosen for
// transmission: either a dense vector or a sparse (index, value) list.
type Selection struct {
	Var   string
	Total int // full element count of the variable

	Dense []float32 // dense representation (len == Total), or nil
	Idx   []int32   // sparse indices, ascending, or nil
	Val   []float32 // sparse values parallel to Idx

	// Quantized wire payload (see quant.go). When Prec != PrecF32 the
	// values that cross the wire are Q8 or F16 (parallel to Dense or Val),
	// and Dense/Val hold their dequantized float32 image — what a receiver
	// reconstructs, and what AddTo applies. Scale/Zero are the int8
	// per-variable dequantization parameters.
	Prec  Precision
	Scale float32
	Zero  int8
	Q8    []int8
	F16   []uint16
}

// sparseEntryBytes is the wire cost of one sparse (index, value) pair.
const sparseEntryBytes = 8

// headerBytes approximates per-variable framing overhead (name, counts).
const headerBytes = 24

// Count returns the number of gradient values carried.
func (s *Selection) Count() int {
	if s.Dense != nil {
		return len(s.Dense)
	}
	return len(s.Val)
}

// Bytes returns the wire size of the selection at its precision. The
// int8 per-variable (scale, zero-point) pair rides inside the header
// approximation.
func (s *Selection) Bytes() int {
	elem := s.Prec.ElemBytes()
	if s.Dense != nil {
		return headerBytes + elem*len(s.Dense)
	}
	return headerBytes + (4+elem)*len(s.Val)
}

// AddTo accumulates scale·selection into dst, which must be the variable's
// full backing slice.
func (s *Selection) AddTo(dst []float32, scale float32) error {
	if len(dst) != s.Total {
		return fmt.Errorf("grad: %s: dst len %d != total %d", s.Var, len(dst), s.Total)
	}
	if s.Dense != nil {
		for i, v := range s.Dense {
			dst[i] += scale * v
		}
		return nil
	}
	for k, i := range s.Idx {
		if int(i) >= len(dst) {
			return fmt.Errorf("grad: %s: index %d out of range %d", s.Var, i, len(dst))
		}
		dst[i] += scale * s.Val[k]
	}
	return nil
}

// TotalBytes sums the wire size of a set of selections.
func TotalBytes(sels []*Selection) int {
	n := 0
	for _, s := range sels {
		n += s.Bytes()
	}
	return n
}

// TotalCount sums the number of gradient values across selections.
func TotalCount(sels []*Selection) int {
	n := 0
	for _, s := range sels {
		n += s.Count()
	}
	return n
}

// Selector chooses the partial gradients worker `self` sends to peer `to`.
// Implementations may keep per-peer state (accumulators, rotation
// counters); they are not safe for concurrent use.
//
// budgetBytes is the transmission budget computed by the transmission
// speed assurance module; <= 0 means unlimited. Selectors that ignore the
// budget (Full, Gaia, Ako) document that.
type Selector interface {
	Name() string
	Select(to int, params []*nn.Param, budgetBytes int) []*Selection
}

// LinkInvariant marks selectors whose Select result is a pure function of
// the current gradient and the byte budget — independent of the peer id and
// of any per-peer state. For such selectors a driver may run the selection
// once per distinct (budget, precision) and share the resulting Selections
// across every link of the iteration: with n-1 equal-bandwidth links that
// turns the per-iteration selection cost from O(n·model) into O(model),
// which is what makes thousand-worker federations simulable (DESIGN.md
// §14). Shared Selections are read-only after creation — AddTo and the wire
// encoders never mutate them.
//
// MaxN and Full qualify (MaxN documents that per-link differences come only
// from the per-link budget). Gaia and Ako keep per-peer accumulators and
// must NOT be marked.
type LinkInvariant interface {
	// LinkInvariantSelection is a marker; implementations do nothing.
	LinkInvariantSelection()
}

// denseSelection copies a parameter's full gradient into a dense Selection.
func denseSelection(p *nn.Param) *Selection {
	d := make([]float32, p.G.Len())
	copy(d, p.G.Data)
	return &Selection{Var: p.Name, Total: p.G.Len(), Dense: d}
}

// Full sends every gradient value to every peer — the paper's Baseline
// comparison system. It ignores the byte budget.
type Full struct{}

// Name implements Selector.
func (Full) Name() string { return "full" }

// LinkInvariantSelection implements LinkInvariant: Full ignores both the
// peer and the budget.
func (Full) LinkInvariantSelection() {}

// Select implements Selector.
func (Full) Select(_ int, params []*nn.Param, _ int) []*Selection {
	out := make([]*Selection, 0, len(params))
	for _, p := range params {
		out = append(out, denseSelection(p))
	}
	return out
}
