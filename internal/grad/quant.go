package grad

import "math"

// This file is the precision half of the paper's data quality adjustment
// (§3.3): where Max-N decides *which* gradient values cross a constrained
// link, quantization decides *how many bits* each value costs. A selection
// can be re-encoded at three wire precisions:
//
//	PrecF32 — 4 bytes/value, lossless (the pre-quantization format)
//	PrecF16 — 2 bytes/value, IEEE 754 binary16, ~3 decimal digits
//	PrecI8  — 1 byte/value + a per-variable (scale, zero-point) pair
//
// Quantization is applied at selection time, not encode time: the
// quantized payload (Q8/F16) and its dequantized float32 image are stored
// side by side on the Selection, so the simulator's math sees exactly the
// values a real receiver would reconstruct, byte accounting sees the
// reduced wire size, and the encoder emits the payload verbatim (keeping
// the canonical-encoding invariant the fuzz harness pins).

// Precision identifies a gradient wire precision.
type Precision uint8

// Wire precisions. The zero value is full float32 — every pre-quantization
// configuration and frame keeps its exact behavior.
const (
	PrecF32 Precision = iota // 4 bytes/value, lossless
	PrecF16                  // 2 bytes/value, IEEE 754 binary16
	PrecI8                   // 1 byte/value, per-variable scale/zero-point
)

// numPrecisions bounds the enum for wire validation.
const numPrecisions = 3

// String returns the precision's name.
func (p Precision) String() string {
	switch p {
	case PrecF32:
		return "f32"
	case PrecF16:
		return "f16"
	case PrecI8:
		return "int8"
	}
	return "Precision(?)"
}

// Valid reports whether p is a defined precision.
func (p Precision) Valid() bool { return p < numPrecisions }

// ElemBytes returns the wire cost of one value at this precision. Sparse
// entries additionally carry a 4-byte index; int8 variables additionally
// carry a 5-byte (scale, zero-point) pair.
func (p Precision) ElemBytes() int {
	switch p {
	case PrecF16:
		return 2
	case PrecI8:
		return 1
	}
	return 4
}

// PrecMask is a bitmask of the precisions a worker accepts on its inbound
// links, advertised in HELLO/WELCOME during membership negotiation. f32 is
// always accepted (every decoder handles it); the mask gates only the
// reduced precisions. The zero value means "reduced precisions unknown" and
// is treated as MaskAll for members that never ran the handshake (static
// founders share one binary and one wire version by construction).
type PrecMask uint8

// Capability bits.
const (
	MaskF16 PrecMask = 1 << 0
	MaskI8  PrecMask = 1 << 1
	// MaskAll accepts every reduced precision (the default policy).
	MaskAll = MaskF16 | MaskI8
)

// Allows reports whether the mask admits sending at precision p.
func (m PrecMask) Allows(p Precision) bool {
	switch p {
	case PrecF16:
		return m&MaskF16 != 0
	case PrecI8:
		return m&MaskI8 != 0
	}
	return true // f32 is always legal
}

// Clamp returns p if the mask allows it, stepping up toward f32 otherwise
// (int8 falls back to f16 when only f16 is accepted).
func (m PrecMask) Clamp(p Precision) Precision {
	if m.Allows(p) {
		return p
	}
	if p == PrecI8 && m.Allows(PrecF16) {
		return PrecF16
	}
	return PrecF32
}

// BudgetInflation returns the factor by which a byte budget stretches when
// the selection is quantized to p before transmission: the sparse-entry
// cost ratio (4+4)/(4+elem). It is conservative for selections that take
// the dense encoding, whose ratio is the full 4/elem.
func BudgetInflation(p Precision) float64 {
	return float64(4+4) / float64(4+p.ElemBytes())
}

// --- IEEE 754 binary16 conversion ---

// F16Bits converts a float32 to IEEE 754 binary16 with round-to-nearest-
// even, preserving NaN (as a quiet NaN), infinities, and signed zeros;
// values above the f16 range overflow to infinity and values below the
// smallest subnormal underflow to (signed) zero.
func F16Bits(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	mant := b & 0x7fffff
	switch {
	case exp == 0xff: // Inf or NaN
		if mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp > 142: // 2^16 and above: overflow to Inf (142 = 127+15)
		return sign | 0x7c00
	case exp >= 113: // normal range (113 = 127-14)
		// Round the 23-bit mantissa to 10 bits, ties to even.
		e := uint32(exp-112) << 10
		m := mant >> 13
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			m++ // may carry into the exponent; the +1 then lands in e
		}
		return sign | uint16(e+m)
	case exp >= 103: // subnormal range: 2^-24 <= |f| < 2^-14
		// Shift the implicit leading 1 into the mantissa, then round.
		m := (mant | 0x800000) >> uint32(126-exp)
		rem := (mant | 0x800000) & ((1 << uint32(126-exp)) - 1)
		half := uint32(1) << uint32(125-exp)
		if rem > half || (rem == half && m&1 == 1) {
			m++
		}
		return sign | uint16(m)
	default: // underflow to signed zero
		return sign
	}
}

// F16FromBits converts an IEEE 754 binary16 to float32 exactly (every
// binary16 value is representable in float32).
func F16FromBits(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf or NaN
		if mant != 0 {
			return math.Float32frombits(sign | 0x7fc00000 | mant<<13)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0: // zero or subnormal
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Normalize: shift until the leading 1 reaches bit 10.
		e := uint32(113)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		return math.Float32frombits(sign | (e << 23) | (mant&0x3ff)<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | mant<<13)
	}
}

// --- int8 affine quantization ---

// QuantizeI8 maps v to an int8 code under (scale, zero): round-half-away
// from zero of v/scale + zero, clamped to [-127, 127] (-128 stays unused so
// the range is symmetric). Non-finite v and non-positive or non-finite
// scales quantize to the zero code — a gradient that is already NaN carries
// no information worth a byte.
func QuantizeI8(v, scale float32, zero int8) int8 {
	if !(scale > 0) || math.IsInf(float64(scale), 0) ||
		math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
		return zero
	}
	r := float64(v)/float64(scale) + float64(zero)
	// Clamp in the float domain: int conversion of a huge quotient is
	// otherwise implementation-defined.
	if r >= 127 {
		return 127
	}
	if r <= -127 {
		return -127
	}
	if r >= 0 {
		return int8(r + 0.5)
	}
	return int8(r - 0.5)
}

// DequantizeI8 inverts QuantizeI8: scale·(q - zero). With a corrupt
// (non-finite) scale the result is non-finite; receivers treat gradient
// values the way they treat any hostile float payload.
func DequantizeI8(q int8, scale float32, zero int8) float32 {
	return scale * float32(int32(q)-int32(zero))
}

// i8Scale derives the symmetric per-variable scale maxAbs/127 over the
// finite values of g. An all-zero (or all-non-finite) gradient yields scale
// 0, under which every value quantizes to the zero code.
func i8Scale(g []float32) float32 {
	var maxAbs float32
	for _, v := range g {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			continue
		}
		if a := abs32(v); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs / 127
}

// Quantize re-encodes the selection's values at precision p, storing the
// quantized payload (Q8 or F16) and overwriting the float32 values with
// their dequantized image — the exact values a receiver reconstructs, so
// sender-side math, the simulator, and the wire all agree. Gradients are
// zero-centered, so the int8 zero-point is 0 (the wire format carries an
// explicit zero-point for asymmetric payloads). Quantizing to PrecF32, or
// re-quantizing an already-quantized selection, is a no-op.
func (s *Selection) Quantize(p Precision) {
	if p == PrecF32 || s.Prec != PrecF32 {
		return
	}
	vals := s.Dense
	if vals == nil {
		vals = s.Val
	}
	switch p {
	case PrecF16:
		s.F16 = make([]uint16, len(vals))
		for i, v := range vals {
			s.F16[i] = F16Bits(v)
			vals[i] = F16FromBits(s.F16[i])
		}
	case PrecI8:
		s.Scale, s.Zero = i8Scale(vals), 0
		s.Q8 = make([]int8, len(vals))
		for i, v := range vals {
			s.Q8[i] = QuantizeI8(v, s.Scale, s.Zero)
			vals[i] = DequantizeI8(s.Q8[i], s.Scale, s.Zero)
		}
	}
	s.Prec = p
}

// QuantizeAll quantizes every selection to p and returns the wire bytes
// saved relative to the f32 encoding of the same selections.
func QuantizeAll(sels []*Selection, p Precision) int {
	if p == PrecF32 {
		return 0
	}
	saved := 0
	for _, s := range sels {
		before := s.Bytes()
		s.Quantize(p)
		saved += before - s.Bytes()
	}
	return saved
}

// DenseBytes returns the wire size of a full dense f32 exchange of the
// given parameter set — the reference against which the auto-precision
// policy and the quant_bytes_saved counter measure reduction.
func DenseBytes(totals []int) int {
	n := 0
	for _, t := range totals {
		n += headerBytes + 4*t
	}
	return n
}
