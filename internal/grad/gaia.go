package grad

import (
	"dlion/internal/nn"
)

// Gaia implements the significance filter of Gaia (Hsieh et al., NSDI'17)
// as described in §5.1.4: a worker accumulates gradient updates per peer
// and sends only the accumulated values whose relative magnitude against
// the current weight exceeds the significance threshold S (percent). Sent
// values are cleared from the accumulator; insignificant residual keeps
// accumulating, so no update is ever lost, only delayed. The byte budget
// is ignored — Gaia is purely significance-driven.
type Gaia struct {
	S float64 // significance threshold in percent; the paper's eval uses 1

	acc map[int]map[string][]float32 // per peer, per variable
}

// NewGaia returns a Gaia selector with threshold S percent.
func NewGaia(s float64) *Gaia {
	if s <= 0 {
		panic("grad: Gaia requires S > 0")
	}
	return &Gaia{S: s, acc: map[int]map[string][]float32{}}
}

// Name implements Selector.
func (g *Gaia) Name() string { return "gaia" }

// Select implements Selector.
func (g *Gaia) Select(to int, params []*nn.Param, _ int) []*Selection {
	peer := g.acc[to]
	if peer == nil {
		peer = map[string][]float32{}
		g.acc[to] = peer
	}
	thresh := float32(g.S / 100)
	out := make([]*Selection, 0, len(params))
	for _, p := range params {
		a := peer[p.Name]
		if a == nil {
			a = make([]float32, p.G.Len())
			peer[p.Name] = a
		}
		w := p.W.Data
		sel := &Selection{Var: p.Name, Total: p.G.Len()}
		for i, gv := range p.G.Data {
			a[i] += gv
			// significance: |accumulated update| relative to |weight|
			denom := abs32(w[i])
			if denom < 1e-6 {
				denom = 1e-6
			}
			if abs32(a[i])/denom >= thresh {
				sel.Idx = append(sel.Idx, int32(i))
				sel.Val = append(sel.Val, a[i])
				a[i] = 0
			}
		}
		if sel.Count() > 0 {
			out = append(out, sel)
		}
	}
	return out
}

// PendingBytes reports the wire size of what would be flushed if every
// accumulated value became significant — useful for tests and metrics.
func (g *Gaia) PendingBytes(to int) int {
	peer := g.acc[to]
	n := 0
	for _, a := range peer {
		for _, v := range a {
			if v != 0 {
				n += sparseEntryBytes
			}
		}
	}
	return n
}
