// Package wire defines the messages DLion workers exchange — gradients,
// loss reports, direct-knowledge-transfer requests and weights, RCP
// (relative compute power) reports, and synchronization signals — and a
// compact binary encoding used by the TCP transport and for wire-size
// accounting. The original prototype serialized these through Redis; the
// format here is self-contained (stdlib encoding/binary only).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"dlion/internal/grad"
	"dlion/internal/tensor"
)

// MsgType discriminates message payloads.
type MsgType uint8

// Message types. Gradient and Weights ride the data queue; the rest ride
// the control queue, mirroring the prototype's two Redis queues (§4.2).
const (
	TypeGradient   MsgType = iota + 1 // partial gradients, per variable
	TypeLossReport                    // average of last l losses (§3.4)
	TypeDKTRequest                    // "send me your weights"
	TypeWeights                       // best worker's model weights
	TypeRCPReport                     // relative compute power share (§3.2)
	TypeSync                          // iteration-complete signal
	TypeHello                         // membership: join request / announce
	TypeWelcome                       // membership: admission (roster + weights)
	TypeLeave                         // membership: graceful-leave tombstone
)

var typeNames = map[MsgType]string{
	TypeGradient: "gradient", TypeLossReport: "loss", TypeDKTRequest: "dkt-req",
	TypeWeights: "weights", TypeRCPReport: "rcp", TypeSync: "sync",
	TypeHello: "hello", TypeWelcome: "welcome", TypeLeave: "leave",
}

// HelloNeedSync, when set in a Hello's Flags, asks the receiver to sponsor
// the sender: reply with a Welcome carrying an epoch-stamped roster snapshot
// and a full weight snapshot. A Hello without it is an announce — "add me to
// your roster, I am already synced" — sent to the remaining members after
// admission.
const HelloNeedSync uint8 = 1 << 0

// Selection flag-byte layout (see WIRE.md §4). Bit 0 is the dense/sparse
// discriminator the original format defined; bits 1-2 carry the payload
// precision (grad.PrecF32/PrecF16/PrecI8), so the legacy flag values 0
// (sparse f32) and 1 (dense f32) keep their exact meaning.
const (
	selDenseBit  = 0x01
	selPrecShift = 1
	selFlagMax   = selDenseBit | uint8(grad.PrecI8)<<selPrecShift
)

// String returns the type's name.
func (t MsgType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is one unit of worker-to-worker communication.
type Message struct {
	Type MsgType
	From int32
	To   int32
	Iter int64

	// Gradient payload
	LBS        int32 // sender's local batch size, for the db weight (Eq. 7)
	Selections []*grad.Selection

	// Weights payload (DKT)
	Weights map[string]*tensor.Tensor

	// Scalar payloads
	Loss float64 // LossReport
	RCP  float64 // RCPReport

	// Membership payloads (Hello/Welcome/Leave). Epoch stamps the sender's
	// roster version; Members is the Welcome roster snapshot (worker ids);
	// GBS carries the sponsor's current global batch size so a joiner's
	// controller starts from the federation's value; Flags holds the
	// Hello option bits (HelloNeedSync). Welcome reuses Weights for the
	// sponsor's model snapshot and Iter for its iteration count.
	Epoch   int64
	Members []int32
	GBS     int32
	Flags   uint8

	// Quant advertises the sender's accepted reduced wire precisions (a
	// grad.PrecMask) in Hello and Welcome, making precision negotiation
	// epoch-safe: a joiner learns the sponsor's capabilities with the same
	// message that carries the roster, and members learn the joiner's from
	// its Hello before any gradient frame is sent.
	Quant uint8
}

// WireBytes returns the encoded size of the message without encoding it,
// used by the simulator to charge transfer time.
func (m *Message) WireBytes() int {
	n := 1 + 4 + 4 + 8 // type, from, to, iter
	switch m.Type {
	case TypeGradient:
		n += 4 + 4 // LBS, selection count
		n += grad.TotalBytes(m.Selections)
	case TypeWeights:
		n += 4 // count
		for name, t := range m.Weights {
			n += 2 + len(name) + 4 + 4*t.Len()
		}
	case TypeLossReport, TypeRCPReport:
		n += 8
	case TypeHello:
		n += 1 + 8 + 1 // flags, epoch, quant mask
	case TypeWelcome:
		n += 8 + 4 + 1 + 4 + 4*len(m.Members) // epoch, gbs, quant, member count, ids
		n += 4                                // weight count
		for name, t := range m.Weights {
			n += 2 + len(name) + 4 + 4*t.Len()
		}
	case TypeLeave:
		n += 8 // epoch
	}
	return n
}

const maxName = 1 << 12

var (
	// ErrTruncated reports an incomplete message.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrCorrupt reports a structurally invalid message.
	ErrCorrupt = errors.New("wire: corrupt message")
)

// Encode serializes m in little-endian binary.
func Encode(m *Message) []byte {
	buf := make([]byte, 0, m.WireBytes())
	buf = append(buf, byte(m.Type))
	buf = le32(buf, uint32(m.From))
	buf = le32(buf, uint32(m.To))
	buf = le64(buf, uint64(m.Iter))
	switch m.Type {
	case TypeGradient:
		buf = le32(buf, uint32(m.LBS))
		buf = le32(buf, uint32(len(m.Selections)))
		for _, s := range m.Selections {
			buf = encodeSelection(buf, s)
		}
	case TypeWeights:
		buf = encodeWeights(buf, m.Weights)
	case TypeLossReport:
		buf = le64(buf, math.Float64bits(m.Loss))
	case TypeRCPReport:
		buf = le64(buf, math.Float64bits(m.RCP))
	case TypeHello:
		buf = append(buf, m.Flags)
		buf = le64(buf, uint64(m.Epoch))
		buf = append(buf, m.Quant)
	case TypeWelcome:
		buf = le64(buf, uint64(m.Epoch))
		buf = le32(buf, uint32(m.GBS))
		buf = append(buf, m.Quant)
		buf = le32(buf, uint32(len(m.Members)))
		for _, id := range m.Members {
			buf = le32(buf, uint32(id))
		}
		buf = encodeWeights(buf, m.Weights)
	case TypeLeave:
		buf = le64(buf, uint64(m.Epoch))
	}
	return buf
}

func encodeWeights(buf []byte, w map[string]*tensor.Tensor) []byte {
	buf = le32(buf, uint32(len(w)))
	// deterministic order is not required for correctness; iterate map
	for name, t := range w {
		buf = le16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = le32(buf, uint32(t.Len()))
		for _, v := range t.Data {
			buf = le32(buf, math.Float32bits(v))
		}
	}
	return buf
}

func encodeSelection(buf []byte, s *grad.Selection) []byte {
	buf = le16(buf, uint16(len(s.Var)))
	buf = append(buf, s.Var...)
	buf = le32(buf, uint32(s.Total))
	flag := uint8(s.Prec) << selPrecShift
	if s.Dense != nil {
		flag |= selDenseBit
	}
	buf = append(buf, flag)
	vals := s.Dense
	if s.Dense == nil {
		vals = s.Val
	}
	buf = le32(buf, uint32(len(vals)))
	if s.Prec == grad.PrecI8 {
		// Per-variable dequantization parameters, present even for an
		// empty selection so the layout is position-independent of count.
		buf = le32(buf, math.Float32bits(s.Scale))
		buf = append(buf, byte(s.Zero))
	}
	for k, v := range vals {
		if s.Dense == nil {
			buf = le32(buf, uint32(s.Idx[k]))
		}
		switch s.Prec {
		case grad.PrecF16:
			// Prefer the stored payload (canonical re-encode of a decoded
			// frame); fall back to quantizing on the fly for selections
			// built without Quantize.
			if s.F16 != nil {
				buf = le16(buf, s.F16[k])
			} else {
				buf = le16(buf, grad.F16Bits(v))
			}
		case grad.PrecI8:
			if s.Q8 != nil {
				buf = append(buf, byte(s.Q8[k]))
			} else {
				buf = append(buf, byte(grad.QuantizeI8(v, s.Scale, s.Zero)))
			}
		default:
			buf = le32(buf, math.Float32bits(v))
		}
	}
	return buf
}

// Decode parses a message produced by Encode.
func Decode(data []byte) (*Message, error) {
	r := &reader{data: data}
	m := &Message{}
	t, err := r.u8()
	if err != nil {
		return nil, err
	}
	m.Type = MsgType(t)
	if _, ok := typeNames[m.Type]; !ok {
		return nil, fmt.Errorf("%w: unknown type %d", ErrCorrupt, t)
	}
	if m.From, err = r.i32(); err != nil {
		return nil, err
	}
	if m.To, err = r.i32(); err != nil {
		return nil, err
	}
	iter, err := r.u64()
	if err != nil {
		return nil, err
	}
	m.Iter = int64(iter)
	switch m.Type {
	case TypeGradient:
		if m.LBS, err = r.i32(); err != nil {
			return nil, err
		}
		count, err := r.u32()
		if err != nil {
			return nil, err
		}
		if count > 1<<20 {
			return nil, fmt.Errorf("%w: selection count %d", ErrCorrupt, count)
		}
		for i := uint32(0); i < count; i++ {
			s, err := decodeSelection(r)
			if err != nil {
				return nil, err
			}
			m.Selections = append(m.Selections, s)
		}
	case TypeWeights:
		if m.Weights, err = decodeWeights(r); err != nil {
			return nil, err
		}
	case TypeLossReport:
		bits, err := r.u64()
		if err != nil {
			return nil, err
		}
		m.Loss = math.Float64frombits(bits)
	case TypeRCPReport:
		bits, err := r.u64()
		if err != nil {
			return nil, err
		}
		m.RCP = math.Float64frombits(bits)
	case TypeHello:
		if m.Flags, err = r.u8(); err != nil {
			return nil, err
		}
		if m.Flags > HelloNeedSync {
			return nil, fmt.Errorf("%w: hello flags %#x", ErrCorrupt, m.Flags)
		}
		epoch, err := r.u64()
		if err != nil {
			return nil, err
		}
		m.Epoch = int64(epoch)
		if m.Quant, err = r.u8(); err != nil {
			return nil, err
		}
		if grad.PrecMask(m.Quant) > grad.MaskAll {
			return nil, fmt.Errorf("%w: quant mask %#x", ErrCorrupt, m.Quant)
		}
	case TypeWelcome:
		epoch, err := r.u64()
		if err != nil {
			return nil, err
		}
		m.Epoch = int64(epoch)
		gbs, err := r.u32()
		if err != nil {
			return nil, err
		}
		m.GBS = int32(gbs)
		if m.Quant, err = r.u8(); err != nil {
			return nil, err
		}
		if grad.PrecMask(m.Quant) > grad.MaskAll {
			return nil, fmt.Errorf("%w: quant mask %#x", ErrCorrupt, m.Quant)
		}
		count, err := r.u32()
		if err != nil {
			return nil, err
		}
		if count > 1<<20 || int(count)*4 > r.remaining() {
			return nil, fmt.Errorf("%w: member count %d", ErrCorrupt, count)
		}
		if count > 0 {
			m.Members = make([]int32, count)
			for i := range m.Members {
				id, _ := r.u32()
				m.Members[i] = int32(id)
			}
		}
		if m.Weights, err = decodeWeights(r); err != nil {
			return nil, err
		}
	case TypeLeave:
		epoch, err := r.u64()
		if err != nil {
			return nil, err
		}
		m.Epoch = int64(epoch)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}
	return m, nil
}

func decodeWeights(r *reader) (map[string]*tensor.Tensor, error) {
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("%w: weight count %d", ErrCorrupt, count)
	}
	w := make(map[string]*tensor.Tensor, count)
	for i := uint32(0); i < count; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(n)*4 > r.remaining() {
			return nil, ErrTruncated
		}
		t := tensor.New(int(n))
		for k := 0; k < int(n); k++ {
			bits, _ := r.u32()
			t.Data[k] = math.Float32frombits(bits)
		}
		w[name] = t
	}
	return w, nil
}

func decodeSelection(r *reader) (*grad.Selection, error) {
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	total, err := r.u32()
	if err != nil {
		return nil, err
	}
	flag, err := r.u8()
	if err != nil {
		return nil, err
	}
	if flag > selFlagMax {
		return nil, fmt.Errorf("%w: selection flag %d", ErrCorrupt, flag)
	}
	prec := grad.Precision(flag >> selPrecShift)
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	s := &grad.Selection{Var: name, Total: int(total), Prec: prec}
	if prec == grad.PrecI8 {
		bits, err := r.u32()
		if err != nil {
			return nil, err
		}
		s.Scale = math.Float32frombits(bits)
		z, err := r.u8()
		if err != nil {
			return nil, err
		}
		s.Zero = int8(z)
	}
	elem := prec.ElemBytes()
	if flag&selDenseBit != 0 {
		if int(n)*elem > r.remaining() {
			return nil, ErrTruncated
		}
		s.Dense = make([]float32, n)
		fillValues(r, s, s.Dense)
		return s, nil
	}
	if int(n)*(4+elem) > r.remaining() {
		return nil, ErrTruncated
	}
	if n == 0 {
		return s, nil
	}
	s.Idx = make([]int32, n)
	s.Val = make([]float32, n)
	fillValues(r, s, s.Val)
	return s, nil
}

// fillValues reads n payload values at the selection's precision into dst
// (the float32 image a receiver works with), storing raw quantized codes on
// s so a re-encode is byte-identical even for hostile scale values. For a
// sparse selection (s.Idx non-nil) each value is preceded by its index. The
// caller has verified that r holds enough bytes; reads cannot fail.
func fillValues(r *reader, s *grad.Selection, dst []float32) {
	if len(dst) == 0 {
		return // keep Q8/F16 nil, matching an empty sender selection
	}
	switch s.Prec {
	case grad.PrecF16:
		s.F16 = make([]uint16, len(dst))
		for i := range dst {
			if s.Idx != nil {
				idx, _ := r.u32()
				s.Idx[i] = int32(idx)
			}
			s.F16[i], _ = r.u16()
			dst[i] = grad.F16FromBits(s.F16[i])
		}
	case grad.PrecI8:
		s.Q8 = make([]int8, len(dst))
		for i := range dst {
			if s.Idx != nil {
				idx, _ := r.u32()
				s.Idx[i] = int32(idx)
			}
			q, _ := r.u8()
			s.Q8[i] = int8(q)
			dst[i] = grad.DequantizeI8(s.Q8[i], s.Scale, s.Zero)
		}
	default:
		for i := range dst {
			if s.Idx != nil {
				idx, _ := r.u32()
				s.Idx[i] = int32(idx)
			}
			bits, _ := r.u32()
			dst[i] = math.Float32frombits(bits)
		}
	}
}

// WriteFrame writes a length-prefixed encoded message to w (the TCP
// transport framing).
func WriteFrame(w io.Writer, m *Message) error {
	payload := Encode(m)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// MaxFrameBytes caps a frame's payload length. It matches the queue
// transport's 64 MB frame limit and bounds the allocation a corrupt or
// hostile length prefix can force before the read fails.
const MaxFrameBytes = 64 << 20

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	// Read through a LimitReader instead of pre-allocating n bytes: a
	// corrupt prefix claiming a huge frame then costs only what the peer
	// actually sent before the truncation error.
	payload, err := io.ReadAll(io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, err
	}
	if uint32(len(payload)) != n {
		return nil, io.ErrUnexpectedEOF
	}
	return Decode(payload)
}

// --- low-level helpers ---

func le16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }
func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func le64(b []byte, v uint64) []byte {
	return le32(le32(b, uint32(v)), uint32(v>>32))
}

type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, ErrTruncated
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) i32() (int32, error) {
	v, err := r.u32()
	return int32(v), err
}

func (r *reader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxName || r.remaining() < int(n) {
		return "", ErrTruncated
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}
