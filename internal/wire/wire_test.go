package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"dlion/internal/grad"
	"dlion/internal/stats"
	"dlion/internal/tensor"
)

func gradientMsg() *Message {
	return &Message{
		Type: TypeGradient, From: 2, To: 5, Iter: 1234, LBS: 48,
		Selections: []*grad.Selection{
			{Var: "conv1/W", Total: 8, Idx: []int32{0, 3, 7}, Val: []float32{0.5, -1.25, 3}},
			{Var: "fc/b", Total: 4, Dense: []float32{1, 2, 3, 4}},
		},
	}
}

func TestGradientRoundTrip(t *testing.T) {
	m := gradientMsg()
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", m, got)
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	m := &Message{
		Type: TypeWeights, From: 1, To: 3, Iter: 7,
		Weights: map[string]*tensor.Tensor{
			"fc/W": tensor.FromSlice([]float32{1.5, -2.5}, 2),
			"fc/b": tensor.FromSlice([]float32{0}, 1),
		},
	}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeWeights || len(got.Weights) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got.Weights["fc/W"].Data[1] != -2.5 {
		t.Fatalf("weights %+v", got.Weights["fc/W"].Data)
	}
}

func TestScalarRoundTrips(t *testing.T) {
	for _, m := range []*Message{
		{Type: TypeLossReport, From: 0, To: 1, Iter: 3, Loss: 0.731},
		{Type: TypeRCPReport, From: 4, To: 2, Iter: 9, RCP: 123.456},
		{Type: TypeDKTRequest, From: 1, To: 0, Iter: 100},
		{Type: TypeSync, From: 5, To: 5, Iter: 42},
	} {
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("%v: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%v mismatch: %+v vs %+v", m.Type, m, got)
		}
	}
}

func TestMembershipRoundTrips(t *testing.T) {
	for _, m := range []*Message{
		{Type: TypeHello, From: 6, To: 0, Iter: 0, Flags: HelloNeedSync, Epoch: 2},
		{Type: TypeHello, From: 6, To: 3, Iter: 40, Epoch: 3}, // announce: no sync flag
		{Type: TypeLeave, From: 2, To: 4, Iter: 77, Epoch: 9},
	} {
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("%v: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%v mismatch: %+v vs %+v", m.Type, m, got)
		}
	}

	w := &Message{
		Type: TypeWelcome, From: 0, To: 6, Iter: 120, Epoch: 4, GBS: 192,
		Members: []int32{0, 1, 2, 6},
		Weights: map[string]*tensor.Tensor{"fc/W": tensor.FromSlice([]float32{1.5, -2.5}, 2)},
	}
	got, err := Decode(Encode(w))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 4 || got.GBS != 192 || got.Iter != 120 {
		t.Fatalf("welcome scalars: %+v", got)
	}
	if !reflect.DeepEqual(got.Members, w.Members) {
		t.Fatalf("members %v, want %v", got.Members, w.Members)
	}
	if got.Weights["fc/W"].Data[1] != -2.5 {
		t.Fatalf("welcome weights %+v", got.Weights)
	}

	// an empty-roster, no-weights welcome still round-trips
	empty := &Message{Type: TypeWelcome, From: 1, To: 2, Epoch: 1}
	got, err = Decode(Encode(empty))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Members) != 0 || len(got.Weights) != 0 {
		t.Fatalf("empty welcome decoded to %+v", got)
	}
}

func TestHelloRejectsUnknownFlags(t *testing.T) {
	enc := Encode(&Message{Type: TypeHello, From: 1, To: 0, Flags: HelloNeedSync})
	enc[1+4+4+8] |= 0x80 // set an undefined flag bit
	if _, err := Decode(enc); err == nil {
		t.Fatal("undefined hello flag must be rejected")
	}
}

func TestWireBytesMatchesEncoding(t *testing.T) {
	for _, m := range []*Message{
		gradientMsg(),
		{Type: TypeLossReport, Loss: 1},
		{Type: TypeDKTRequest},
		{Type: TypeWeights, Weights: map[string]*tensor.Tensor{
			"x": tensor.FromSlice([]float32{1, 2, 3}, 3)}},
		{Type: TypeHello, Flags: HelloNeedSync, Epoch: 7},
		{Type: TypeWelcome, Epoch: 2, GBS: 64, Members: []int32{0, 1, 5},
			Weights: map[string]*tensor.Tensor{"x": tensor.FromSlice([]float32{1, 2}, 2)}},
		{Type: TypeLeave, Epoch: 11},
	} {
		enc := Encode(m)
		want := m.WireBytes()
		// header accounting in grad.Selection uses a fixed 24-byte estimate;
		// allow that slack for gradient messages, exact for the rest
		if m.Type == TypeGradient {
			diff := want - len(enc)
			if diff < 0 || diff > 24*len(m.Selections) {
				t.Fatalf("%v: WireBytes %d vs encoded %d", m.Type, want, len(enc))
			}
			continue
		}
		if want != len(enc) {
			t.Fatalf("%v: WireBytes %d vs encoded %d", m.Type, want, len(enc))
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty must error")
	}
	if _, err := Decode([]byte{99}); err == nil {
		t.Fatal("unknown type must error")
	}
	enc := Encode(gradientMsg())
	if _, err := Decode(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated must error")
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes must error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m1 := gradientMsg()
	m2 := &Message{Type: TypeSync, From: 1, To: 2, Iter: 5}
	if err := WriteFrame(&buf, m1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, m2); err != nil {
		t.Fatal(err)
	}
	g1, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, g1) || !reflect.DeepEqual(m2, g2) {
		t.Fatal("frame round trip mismatch")
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("empty stream must error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		nSel := 1 + r.Intn(4)
		m := &Message{Type: TypeGradient,
			From: int32(r.Intn(6)), To: int32(r.Intn(6)),
			Iter: int64(r.Intn(10000)), LBS: int32(1 + r.Intn(256))}
		for s := 0; s < nSel; s++ {
			total := 1 + r.Intn(64)
			sel := &grad.Selection{Var: string(rune('a' + s)), Total: total}
			if r.Intn(2) == 0 {
				sel.Dense = make([]float32, total)
				for i := range sel.Dense {
					sel.Dense[i] = float32(r.NormFloat64())
				}
			} else {
				n := r.Intn(total)
				for i := 0; i < n; i++ {
					sel.Idx = append(sel.Idx, int32(i))
					sel.Val = append(sel.Val, float32(r.NormFloat64()))
				}
			}
			m.Selections = append(m.Selections, sel)
		}
		got, err := Decode(Encode(m))
		return err == nil && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFuzzDoesNotPanic(t *testing.T) {
	r := stats.NewRNG(1)
	base := Encode(gradientMsg())
	for trial := 0; trial < 500; trial++ {
		b := append([]byte(nil), base...)
		for flips := 0; flips < 1+r.Intn(8); flips++ {
			b[r.Intn(len(b))] ^= byte(r.Uint64())
		}
		Decode(b) // must not panic; error or garbage message both fine
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeGradient.String() != "gradient" {
		t.Fatal(TypeGradient.String())
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Fatal(MsgType(200).String())
	}
}

// TestRoundTripEdgeCases covers the payload corners the property test is
// unlikely to hit: empty tensors, single-element sparse selections,
// non-finite float bit patterns, and the dense/sparse representation
// boundary. Float comparisons go through Float32bits so NaN payloads
// (which compare unequal to themselves) are checked exactly.
func TestRoundTripEdgeCases(t *testing.T) {
	nanPayload := math.Float32frombits(0x7fc00001) // quiet NaN, nonzero payload
	inf := float32(math.Inf(1))
	cases := []struct {
		name string
		msg  *Message
	}{
		{"gradient heartbeat, no selections", &Message{
			Type: TypeGradient, From: 0, To: 1, Iter: 9, LBS: 8}},
		{"empty dense selection", &Message{
			Type: TypeGradient, From: 1, To: 0, Iter: 1, LBS: 8,
			Selections: []*grad.Selection{
				{Var: "fc/b", Total: 0, Dense: []float32{}}}}},
		{"empty sparse selection", &Message{
			Type: TypeGradient, From: 1, To: 0, Iter: 1, LBS: 8,
			Selections: []*grad.Selection{
				{Var: "fc/b", Total: 5}}}},
		{"single-element sparse", &Message{
			Type: TypeGradient, From: 2, To: 3, Iter: 77, LBS: 1,
			Selections: []*grad.Selection{
				{Var: "conv/W", Total: 1000, Idx: []int32{999}, Val: []float32{-0.25}}}}},
		{"nan and inf gradient values", &Message{
			Type: TypeGradient, From: 0, To: 1, Iter: 2, LBS: 4,
			Selections: []*grad.Selection{
				{Var: "a/W", Total: 3, Dense: []float32{nanPayload, inf, -inf}},
				{Var: "b/W", Total: 8, Idx: []int32{0, 7}, Val: []float32{inf, nanPayload}}}}},
		{"empty weights tensor", &Message{
			Type: TypeWeights, From: 4, To: 5, Iter: 3,
			Weights: map[string]*tensor.Tensor{
				"empty/W": tensor.FromSlice([]float32{}, 0)}}},
		{"nan weights", &Message{
			Type: TypeWeights, From: 4, To: 5, Iter: 3,
			Weights: map[string]*tensor.Tensor{
				"w/W": tensor.FromSlice([]float32{nanPayload, inf}, 2)}}},
		{"negative iter and ids", &Message{
			Type: TypeGradient, From: -1, To: -2, Iter: -5, LBS: -3}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			raw := Encode(tc.msg)
			// grad.Selection accounts per-variable framing with a fixed
			// 24-byte estimate, so gradient sizes carry that much slack per
			// selection; every other type must be byte-exact.
			want, slack := tc.msg.WireBytes(), 0
			if tc.msg.Type == TypeGradient {
				slack = 24 * len(tc.msg.Selections)
			}
			if diff := want - len(raw); diff < 0 || diff > slack {
				t.Fatalf("WireBytes %d, encoded %d (allowed slack %d)", want, len(raw), slack)
			}
			got, err := Decode(raw)
			if err != nil {
				t.Fatal(err)
			}
			assertMessageBitsEqual(t, tc.msg, got)
		})
	}
}

// assertMessageBitsEqual compares two messages with float32 fields reduced
// to their bit patterns, so NaN != NaN semantics cannot hide a corruption.
func assertMessageBitsEqual(t *testing.T, want, got *Message) {
	t.Helper()
	if want.Type != got.Type || want.From != got.From || want.To != got.To ||
		want.Iter != got.Iter || want.LBS != got.LBS {
		t.Fatalf("header mismatch: %+v vs %+v", want, got)
	}
	if len(want.Selections) != len(got.Selections) {
		t.Fatalf("selection count %d vs %d", len(want.Selections), len(got.Selections))
	}
	for i, ws := range want.Selections {
		gs := got.Selections[i]
		if ws.Var != gs.Var || ws.Total != gs.Total {
			t.Fatalf("selection %d header: %+v vs %+v", i, ws, gs)
		}
		if (ws.Dense != nil) != (gs.Dense != nil) {
			t.Fatalf("selection %d: dense flag flipped in transit", i)
		}
		if !bitsEqual(ws.Dense, gs.Dense) || !bitsEqual(ws.Val, gs.Val) {
			t.Fatalf("selection %d values: %+v vs %+v", i, ws, gs)
		}
		if len(ws.Idx) != len(gs.Idx) {
			t.Fatalf("selection %d idx len", i)
		}
		for k := range ws.Idx {
			if ws.Idx[k] != gs.Idx[k] {
				t.Fatalf("selection %d idx[%d]", i, k)
			}
		}
	}
	if len(want.Weights) != len(got.Weights) {
		t.Fatalf("weights count %d vs %d", len(want.Weights), len(got.Weights))
	}
	for name, wt := range want.Weights {
		gt, ok := got.Weights[name]
		if !ok || !bitsEqual(wt.Data, gt.Data) {
			t.Fatalf("weights %q: %+v vs %+v", name, wt, gt)
		}
	}
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestDenseSparsEquivalentApplication: a dense selection and the sparse
// selection enumerating every index carry the same update; after a round
// trip through the wire both must apply identically. The wire must also
// preserve which representation was chosen — the dense flag is part of
// the sender's bandwidth accounting.
func TestDenseSparseEquivalentApplication(t *testing.T) {
	vals := []float32{0.5, -1.5, 2.25, 0}
	dense := &grad.Selection{Var: "v", Total: 4, Dense: vals}
	sparse := &grad.Selection{Var: "v", Total: 4,
		Idx: []int32{0, 1, 2, 3}, Val: vals}

	apply := func(s *grad.Selection) []float32 {
		m := &Message{Type: TypeGradient, From: 0, To: 1, Iter: 1, LBS: 8,
			Selections: []*grad.Selection{s}}
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float32, 4)
		if err := got.Selections[0].AddTo(dst, 2); err != nil {
			t.Fatal(err)
		}
		return dst
	}
	dd, ds := apply(dense), apply(sparse)
	for i := range dd {
		if dd[i] != ds[i] {
			t.Fatalf("dense/sparse application diverges at %d: %v vs %v", i, dd[i], ds[i])
		}
	}
	// Representation is preserved, not canonicalized away.
	rt, err := Decode(Encode(&Message{Type: TypeGradient, Iter: 1, LBS: 8,
		Selections: []*grad.Selection{dense, sparse}}))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Selections[0].Dense == nil || rt.Selections[1].Dense != nil {
		t.Fatal("selection representation flipped through the wire")
	}
	// The sparse encoding of a full variable costs twice the dense bytes —
	// the reason selectVariable canonicalizes full selections to dense.
	if dense.Bytes() >= sparse.Bytes() {
		t.Fatalf("dense %dB should be cheaper than sparse %dB", dense.Bytes(), sparse.Bytes())
	}
}
