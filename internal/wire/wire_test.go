package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"dlion/internal/grad"
	"dlion/internal/stats"
	"dlion/internal/tensor"
)

func gradientMsg() *Message {
	return &Message{
		Type: TypeGradient, From: 2, To: 5, Iter: 1234, LBS: 48,
		Selections: []*grad.Selection{
			{Var: "conv1/W", Total: 8, Idx: []int32{0, 3, 7}, Val: []float32{0.5, -1.25, 3}},
			{Var: "fc/b", Total: 4, Dense: []float32{1, 2, 3, 4}},
		},
	}
}

func TestGradientRoundTrip(t *testing.T) {
	m := gradientMsg()
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", m, got)
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	m := &Message{
		Type: TypeWeights, From: 1, To: 3, Iter: 7,
		Weights: map[string]*tensor.Tensor{
			"fc/W": tensor.FromSlice([]float32{1.5, -2.5}, 2),
			"fc/b": tensor.FromSlice([]float32{0}, 1),
		},
	}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeWeights || len(got.Weights) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got.Weights["fc/W"].Data[1] != -2.5 {
		t.Fatalf("weights %+v", got.Weights["fc/W"].Data)
	}
}

func TestScalarRoundTrips(t *testing.T) {
	for _, m := range []*Message{
		{Type: TypeLossReport, From: 0, To: 1, Iter: 3, Loss: 0.731},
		{Type: TypeRCPReport, From: 4, To: 2, Iter: 9, RCP: 123.456},
		{Type: TypeDKTRequest, From: 1, To: 0, Iter: 100},
		{Type: TypeSync, From: 5, To: 5, Iter: 42},
	} {
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("%v: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%v mismatch: %+v vs %+v", m.Type, m, got)
		}
	}
}

func TestWireBytesMatchesEncoding(t *testing.T) {
	for _, m := range []*Message{
		gradientMsg(),
		{Type: TypeLossReport, Loss: 1},
		{Type: TypeDKTRequest},
		{Type: TypeWeights, Weights: map[string]*tensor.Tensor{
			"x": tensor.FromSlice([]float32{1, 2, 3}, 3)}},
	} {
		enc := Encode(m)
		want := m.WireBytes()
		// header accounting in grad.Selection uses a fixed 24-byte estimate;
		// allow that slack for gradient messages, exact for the rest
		if m.Type == TypeGradient {
			diff := want - len(enc)
			if diff < 0 || diff > 24*len(m.Selections) {
				t.Fatalf("%v: WireBytes %d vs encoded %d", m.Type, want, len(enc))
			}
			continue
		}
		if want != len(enc) {
			t.Fatalf("%v: WireBytes %d vs encoded %d", m.Type, want, len(enc))
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty must error")
	}
	if _, err := Decode([]byte{99}); err == nil {
		t.Fatal("unknown type must error")
	}
	enc := Encode(gradientMsg())
	if _, err := Decode(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated must error")
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes must error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m1 := gradientMsg()
	m2 := &Message{Type: TypeSync, From: 1, To: 2, Iter: 5}
	if err := WriteFrame(&buf, m1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, m2); err != nil {
		t.Fatal(err)
	}
	g1, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, g1) || !reflect.DeepEqual(m2, g2) {
		t.Fatal("frame round trip mismatch")
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("empty stream must error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		nSel := 1 + r.Intn(4)
		m := &Message{Type: TypeGradient,
			From: int32(r.Intn(6)), To: int32(r.Intn(6)),
			Iter: int64(r.Intn(10000)), LBS: int32(1 + r.Intn(256))}
		for s := 0; s < nSel; s++ {
			total := 1 + r.Intn(64)
			sel := &grad.Selection{Var: string(rune('a' + s)), Total: total}
			if r.Intn(2) == 0 {
				sel.Dense = make([]float32, total)
				for i := range sel.Dense {
					sel.Dense[i] = float32(r.NormFloat64())
				}
			} else {
				n := r.Intn(total)
				for i := 0; i < n; i++ {
					sel.Idx = append(sel.Idx, int32(i))
					sel.Val = append(sel.Val, float32(r.NormFloat64()))
				}
			}
			m.Selections = append(m.Selections, sel)
		}
		got, err := Decode(Encode(m))
		return err == nil && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFuzzDoesNotPanic(t *testing.T) {
	r := stats.NewRNG(1)
	base := Encode(gradientMsg())
	for trial := 0; trial < 500; trial++ {
		b := append([]byte(nil), base...)
		for flips := 0; flips < 1+r.Intn(8); flips++ {
			b[r.Intn(len(b))] ^= byte(r.Uint64())
		}
		Decode(b) // must not panic; error or garbage message both fine
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeGradient.String() != "gradient" {
		t.Fatal(TypeGradient.String())
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Fatal(MsgType(200).String())
	}
}
