package wire

import (
	"testing"

	"dlion/internal/grad"
	"dlion/internal/stats"
)

func benchMessage(values int) *Message {
	rng := stats.NewRNG(1)
	sel := &grad.Selection{Var: "conv1/W", Total: values * 2}
	for i := 0; i < values; i++ {
		sel.Idx = append(sel.Idx, int32(i*2))
		sel.Val = append(sel.Val, float32(rng.NormFloat64()))
	}
	return &Message{Type: TypeGradient, From: 0, To: 1, Iter: 42, LBS: 32,
		Selections: []*grad.Selection{sel}}
}

func BenchmarkEncodeGradient10k(b *testing.B) {
	m := benchMessage(10_000)
	b.SetBytes(int64(m.WireBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

func BenchmarkDecodeGradient10k(b *testing.B) {
	enc := Encode(benchMessage(10_000))
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDenseMessage builds a dense (Idx == nil) gradient message, the shape
// the quantized wire format compresses best.
func benchDenseMessage(values int) *Message {
	rng := stats.NewRNG(1)
	vals := make([]float32, values)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	sel := &grad.Selection{Var: "conv1/W", Total: values, Dense: vals}
	return &Message{Type: TypeGradient, From: 0, To: 1, Iter: 42, LBS: 32,
		Selections: []*grad.Selection{sel}}
}

// Quantized encode benchmarks report wire_bytes/op next to ns/op so the
// precision/bandwidth model in WIRE.md is checkable straight from the bench
// table: i8 dense must come in at ≥3x fewer bytes than f32 dense.
func BenchmarkEncodeDenseF32(b *testing.B) {
	m := benchDenseMessage(10_000)
	enc := Encode(m)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
	b.ReportMetric(float64(len(enc)), "wire_bytes/op")
}

func BenchmarkEncodeDenseF16(b *testing.B) {
	m := benchDenseMessage(10_000)
	grad.QuantizeAll(m.Selections, grad.PrecF16)
	enc := Encode(m)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
	b.ReportMetric(float64(len(enc)), "wire_bytes/op")
}

func BenchmarkEncodeDenseI8(b *testing.B) {
	m := benchDenseMessage(10_000)
	grad.QuantizeAll(m.Selections, grad.PrecI8)
	enc := Encode(m)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
	b.ReportMetric(float64(len(enc)), "wire_bytes/op")
}

func BenchmarkDecodeDenseI8(b *testing.B) {
	m := benchDenseMessage(10_000)
	grad.QuantizeAll(m.Selections, grad.PrecI8)
	enc := Encode(m)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireBytes(b *testing.B) {
	m := benchMessage(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.WireBytes()
	}
}
