package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"dlion/internal/grad"
	"dlion/internal/tensor"
)

// seedMessages covers every message type and both selection encodings, so
// the fuzzers start from structurally valid frames and mutate from there.
func seedMessages() []*Message {
	dense := &grad.Selection{Var: "w", Total: 4, Dense: []float32{1, -2, 3.5, 0}}
	sparse := &grad.Selection{Var: "fc1/w", Total: 8, Idx: []int32{0, 3, 7}, Val: []float32{0.1, -0.2, 0.3}}
	denseI8 := &grad.Selection{Var: "w", Total: 4, Dense: []float32{1, -2, 3.5, 0}}
	denseI8.Quantize(grad.PrecI8)
	sparseF16 := &grad.Selection{Var: "fc1/w", Total: 8, Idx: []int32{0, 3, 7}, Val: []float32{0.1, -0.2, 0.3}}
	sparseF16.Quantize(grad.PrecF16)
	sparseI8 := &grad.Selection{Var: "c/w", Total: 16, Idx: []int32{15}, Val: []float32{-0.5}}
	sparseI8.Quantize(grad.PrecI8)
	weights := map[string]*tensor.Tensor{"conv1": tensor.FromSlice([]float32{1, 2, 3}, 3)}
	return []*Message{
		{Type: TypeGradient, From: 0, To: 1, Iter: 7, LBS: 32, Selections: []*grad.Selection{dense, sparse}},
		{Type: TypeGradient, From: 2, To: 0, Iter: 1, LBS: 8, Selections: []*grad.Selection{{Var: "b", Total: 0}}},
		{Type: TypeGradient, From: 1, To: 2, Iter: 8, LBS: 16, Selections: []*grad.Selection{denseI8, sparseF16}},
		{Type: TypeGradient, From: 2, To: 1, Iter: 9, LBS: 16, Selections: []*grad.Selection{sparseI8,
			{Var: "e", Total: 3, Prec: grad.PrecF16}}},
		{Type: TypeWeights, From: 1, To: 2, Iter: 42, Weights: weights},
		{Type: TypeLossReport, From: 0, To: 1, Iter: 3, Loss: 0.25},
		{Type: TypeDKTRequest, From: 1, To: 0, Iter: 9},
		{Type: TypeRCPReport, From: 2, To: 1, Iter: 5, RCP: 0.4},
		{Type: TypeSync, From: 0, To: 2, Iter: 11},
		{Type: TypeHello, From: 6, To: 0, Iter: 0, Flags: HelloNeedSync, Epoch: 3,
			Quant: uint8(grad.MaskAll)},
		{Type: TypeWelcome, From: 0, To: 6, Iter: 120, Epoch: 4, GBS: 192,
			Quant: uint8(grad.MaskF16), Members: []int32{0, 1, 2, 6}, Weights: weights},
		{Type: TypeLeave, From: 3, To: 1, Iter: 88, Epoch: 5},
	}
}

// FuzzDecode asserts Decode never panics: every input either yields a
// structurally valid message or an error, and valid messages survive an
// encode/decode round trip.
func FuzzDecode(f *testing.F) {
	for _, m := range seedMessages() {
		f.Add(Encode(m))
	}
	// Adversarial seeds: empty, bare type byte, truncated header, huge
	// declared counts.
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{byte(TypeGradient), 0, 0, 0, 0})
	f.Add([]byte{byte(TypeWeights), 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			if m != nil {
				t.Fatal("Decode returned both a message and an error")
			}
			return
		}
		// A decoded message must re-encode to exactly the input: the format
		// has a canonical byte representation for every valid frame. Weights
		// are exempt — their map iteration order varies between encodes.
		if m.Type != TypeWeights && m.Type != TypeWelcome && !bytes.Equal(Encode(m), data) {
			t.Fatalf("re-encode mismatch for type %v", m.Type)
		}
	})
}

// FuzzReadFrame asserts the framed reader never panics and fails cleanly
// on malformed prefixes, truncated payloads, and trailing garbage.
func FuzzReadFrame(f *testing.F) {
	for _, m := range seedMessages() {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})      // length prefix past the cap
	f.Add([]byte{16, 0, 0, 0, byte(TypeSync)}) // declared 16, delivered 1
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		m, err := ReadFrame(r)
		if err != nil {
			if m != nil {
				t.Fatal("ReadFrame returned both a message and an error")
			}
			return
		}
		if m == nil {
			t.Fatal("ReadFrame returned neither message nor error")
		}
	})
}

// TestReadFrameRejectsOversizedPrefix pins the MaxFrameBytes cap outside
// the fuzzer, so `go test` alone covers the guard.
func TestReadFrameRejectsOversizedPrefix(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0x05}) // ~83 MB little-endian
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err %v, want ErrCorrupt", err)
	}
	// A truthful prefix with a truncated body errors instead of blocking
	// or panicking.
	buf.Reset()
	buf.Write([]byte{8, 0, 0, 0, byte(TypeSync)})
	if _, err := ReadFrame(&buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err %v, want unexpected EOF", err)
	}
}
