package wire

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dlion/internal/lineage"
)

// TestGenerateSeedCorpus regenerates the committed fuzz seed corpus under
// testdata/fuzz when run with -run TestGenerateSeedCorpus -generate-corpus.
// The corpus mirrors the f.Add seeds so `go test -fuzz` starts with
// coverage of every message type even on a cold build cache.
func TestGenerateSeedCorpus(t *testing.T) {
	if os.Getenv("WIRE_GENERATE_CORPUS") == "" {
		t.Skip("set WIRE_GENERATE_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range seedMessages() {
		write("FuzzDecode", fmt.Sprintf("seed-%s-%d", m.Type, i), Encode(m))
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
		write("FuzzReadFrame", fmt.Sprintf("seed-%s-%d", m.Type, i), buf.Bytes())
	}
	write("FuzzDecode", "seed-truncated", []byte{byte(TypeGradient), 0, 0, 0, 0})
	write("FuzzReadFrame", "seed-overlong-prefix", []byte{0xff, 0xff, 0xff, 0xff})
	for i, m := range seedManifests() {
		raw, err := EncodeManifest(m)
		if err != nil {
			t.Fatal(err)
		}
		write("FuzzManifestDecode", fmt.Sprintf("seed-bin-%d", i), raw)
		js, err := lineage.EncodeJSON(m)
		if err != nil {
			t.Fatal(err)
		}
		write("FuzzManifestDecode", fmt.Sprintf("seed-json-%d", i), js)
	}
	write("FuzzManifestDecode", "seed-truncated", []byte("DLMF\x01"))
}
