package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dlion/internal/grad"
)

// TestWireDocCoverage cross-checks WIRE.md against the implementation:
// every message type the decoder accepts must appear in the §3 table (both
// its numeric value and its String() name), and every wire precision must
// be documented. typeNames is the decoder's authoritative enumeration —
// Decode rejects anything outside it — so a new frame type added without a
// doc update fails here, which is the acceptance gate ISSUE: "WIRE.md
// covers every frame type in internal/wire".
func TestWireDocCoverage(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "WIRE.md"))
	if err != nil {
		t.Fatalf("WIRE.md must exist at the repo root: %v", err)
	}
	doc := string(raw)

	// Walk the contiguous type space the iota block defines; stop at the
	// first value the decoder would reject.
	n := 0
	for ty := MsgType(1); ; ty++ {
		if _, ok := typeNames[ty]; !ok {
			break
		}
		n++
		row := fmt.Sprintf("| %d | ", uint8(ty))
		if !strings.Contains(doc, row) {
			t.Errorf("WIRE.md §3 table missing a row for type %d (%s)", uint8(ty), ty)
		}
		name := fmt.Sprintf("`%s`", ty)
		if !strings.Contains(doc, name) {
			t.Errorf("WIRE.md does not mention the wire name %s of type %d", name, uint8(ty))
		}
	}
	if n != len(typeNames) {
		t.Errorf("typeNames has %d entries but only %d are contiguous from 1 — "+
			"the doc-coverage walk missed some", len(typeNames), n)
	}
	if n == 0 {
		t.Fatal("no message types enumerated")
	}

	// Every payload precision must be documented by its String() name.
	for _, p := range []grad.Precision{grad.PrecF32, grad.PrecF16, grad.PrecI8} {
		if !strings.Contains(doc, p.String()) {
			t.Errorf("WIRE.md does not mention precision %q", p.String())
		}
	}

	// Structural constants a reader would copy into another implementation.
	for _, want := range []string{"dlion:serve:weights", "DLSV", "HelloNeedSync", "MaskAll"} {
		if !strings.Contains(doc, want) {
			t.Errorf("WIRE.md does not mention %q", want)
		}
	}
}
