package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"dlion/internal/grad"
)

// quantMsg builds a gradient message whose selections have been through
// grad.Quantize — the normal sender path.
func quantMsg(p grad.Precision) *Message {
	dense := &grad.Selection{Var: "conv1/W", Total: 6,
		Dense: []float32{0.5, -0.25, 1.5, 0, -1, 0.125}}
	sparse := &grad.Selection{Var: "fc/W", Total: 1000,
		Idx: []int32{1, 500, 999}, Val: []float32{2, -0.5, 0.75}}
	dense.Quantize(p)
	sparse.Quantize(p)
	return &Message{Type: TypeGradient, From: 1, To: 2, Iter: 9, LBS: 32,
		Selections: []*grad.Selection{dense, sparse}}
}

// TestQuantizedRoundTrip: a quantized gradient message decodes to exactly
// the sender's struct — same precision, same raw codes, same dequantized
// image — for both reduced precisions.
func TestQuantizedRoundTrip(t *testing.T) {
	for _, p := range []grad.Precision{grad.PrecF16, grad.PrecI8} {
		m := quantMsg(p)
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%v round trip mismatch:\n%+v\n%+v", p, m.Selections[0], got.Selections[0])
		}
	}
}

// TestQuantizedWireSize pins the actual byte layout: an int8 dense payload
// costs 1 byte/value plus the 5-byte scale/zero pair, f16 sparse entries
// cost 6 bytes, and the int8 dense frame is >3x smaller than its f32 twin.
func TestQuantizedWireSize(t *testing.T) {
	mk := func(n int) *grad.Selection {
		d := make([]float32, n)
		for i := range d {
			d[i] = float32(i%7) - 3
		}
		return &grad.Selection{Var: "W", Total: n, Dense: d}
	}
	f32 := &Message{Type: TypeGradient, LBS: 1, Selections: []*grad.Selection{mk(1000)}}
	f32Len := len(Encode(f32))

	q := mk(1000)
	q.Quantize(grad.PrecI8)
	i8 := &Message{Type: TypeGradient, LBS: 1, Selections: []*grad.Selection{q}}
	i8Len := len(Encode(i8))
	// Gradient header (type..selcount) is 25B; per-selection overhead is
	// 2+1 name, 4 total, 1 flag, 4 count (+5 scale/zero for int8).
	if want := 25 + 12 + 1*1000 + 5; i8Len != want {
		t.Fatalf("int8 frame %dB, want %d", i8Len, want)
	}
	if f32Len < 3*i8Len {
		t.Fatalf("int8 dense frame %dB not >=3x smaller than f32 %dB", i8Len, f32Len)
	}

	s := &grad.Selection{Var: "W", Total: 100, Idx: []int32{1, 2}, Val: []float32{1, -1}}
	s.Quantize(grad.PrecF16)
	enc := Encode(&Message{Type: TypeGradient, LBS: 1, Selections: []*grad.Selection{s}})
	if want := 25 + 12 + 2*6; len(enc) != want {
		t.Fatalf("f16 sparse frame %dB, want %d", len(enc), want)
	}
}

// TestQuantizedEdgeSelections covers zero-length and single-element
// quantized selections in both representations: the int8 scale/zero pair is
// present even when the payload is empty, and everything round-trips.
func TestQuantizedEdgeSelections(t *testing.T) {
	cases := []*grad.Selection{
		{Var: "e1", Total: 0, Dense: []float32{}, Prec: grad.PrecI8, Scale: 0.5},
		{Var: "e2", Total: 9, Prec: grad.PrecI8, Scale: 2}, // empty sparse
		{Var: "e3", Total: 4, Dense: []float32{}, Prec: grad.PrecF16},
		{Var: "e4", Total: 4, Prec: grad.PrecF16}, // empty sparse
		{Var: "s1", Total: 5000, Idx: []int32{4999}, Val: []float32{-3}},
		{Var: "s2", Total: 1, Dense: []float32{0.25}},
	}
	cases[4].Quantize(grad.PrecI8)
	cases[5].Quantize(grad.PrecF16)
	m := &Message{Type: TypeGradient, From: 0, To: 1, Iter: 1, LBS: 8, Selections: cases}
	raw := Encode(m)
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("edge round trip mismatch:\n%+v\n%+v", m, got)
	}
	// The empty int8 selections still carried their scale through the wire.
	if got.Selections[0].Scale != 0.5 || got.Selections[1].Scale != 2 {
		t.Fatalf("empty-selection scales lost: %v %v",
			got.Selections[0].Scale, got.Selections[1].Scale)
	}
	if !bytes.Equal(Encode(got), raw) {
		t.Fatal("re-encode of decoded edge frame is not canonical")
	}
}

// TestQuantizedOnTheFlyEncoding: a selection with Prec set but no stored
// payload (Q8/F16 nil) is quantized by the encoder itself, and a decode
// yields the dequantized image plus the codes.
func TestQuantizedOnTheFlyEncoding(t *testing.T) {
	s := &grad.Selection{Var: "W", Total: 3, Dense: []float32{1, -0.5, 0.25},
		Prec: grad.PrecI8, Scale: float32(1) / 127}
	m := &Message{Type: TypeGradient, LBS: 1, Selections: []*grad.Selection{s}}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	gs := got.Selections[0]
	if len(gs.Q8) != 3 || gs.Q8[0] != 127 {
		t.Fatalf("on-the-fly codes %v", gs.Q8)
	}
	for i, v := range s.Dense {
		want := grad.DequantizeI8(grad.QuantizeI8(v, s.Scale, 0), s.Scale, 0)
		if gs.Dense[i] != want {
			t.Fatalf("value %d: %v, want %v", i, gs.Dense[i], want)
		}
	}
}

// TestQuantizedHostileScale: frames with non-finite or zero scales decode
// without panicking and re-encode byte-identically — the canonical-encoding
// invariant the fuzzer pins must hold for hostile dequantization params too.
func TestQuantizedHostileScale(t *testing.T) {
	s := &grad.Selection{Var: "W", Total: 2, Dense: []float32{1, 2}}
	s.Quantize(grad.PrecI8)
	m := &Message{Type: TypeGradient, LBS: 1, Selections: []*grad.Selection{s}}
	raw := Encode(m)
	// The scale f32 sits after name(2+1) + total(4) + flag(1) + count(4)
	// past the 25-byte gradient header (type..iter, LBS, selection count).
	off := 25 + 2 + 1 + 4 + 1 + 4
	for _, bits := range []uint32{0x7fc00000, 0x7f800000, 0, 0x80000000} {
		hostile := append([]byte(nil), raw...)
		hostile[off] = byte(bits)
		hostile[off+1] = byte(bits >> 8)
		hostile[off+2] = byte(bits >> 16)
		hostile[off+3] = byte(bits >> 24)
		got, err := Decode(hostile)
		if err != nil {
			t.Fatalf("scale bits %#x: %v", bits, err)
		}
		if !bytes.Equal(Encode(got), hostile) {
			t.Fatalf("scale bits %#x: re-encode not canonical", bits)
		}
	}
}

// TestSelectionFlagValidation: flag bytes beyond dense|int8<<1 are corrupt.
func TestSelectionFlagValidation(t *testing.T) {
	m := &Message{Type: TypeGradient, LBS: 1,
		Selections: []*grad.Selection{{Var: "W", Total: 1, Dense: []float32{1}}}}
	raw := Encode(m)
	flagOff := 25 + 2 + 1 + 4
	for _, bad := range []byte{6, 7, 0x10, 0xff} {
		corrupt := append([]byte(nil), raw...)
		corrupt[flagOff] = bad
		if _, err := Decode(corrupt); err == nil {
			t.Fatalf("flag %#x must be rejected", bad)
		}
	}
}

// TestMembershipQuantMask: the PrecMask advertised in Hello/Welcome
// round-trips, and undefined mask bits are rejected.
func TestMembershipQuantMask(t *testing.T) {
	for _, m := range []*Message{
		{Type: TypeHello, From: 6, To: 0, Flags: HelloNeedSync, Epoch: 2,
			Quant: uint8(grad.MaskAll)},
		{Type: TypeHello, From: 6, To: 0, Epoch: 3, Quant: uint8(grad.MaskF16)},
		{Type: TypeWelcome, From: 0, To: 6, Epoch: 4, GBS: 64,
			Quant: uint8(grad.MaskI8)},
	} {
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("%v: %v", m.Type, err)
		}
		if got.Quant != m.Quant {
			t.Fatalf("%v: quant %#x, want %#x", m.Type, got.Quant, m.Quant)
		}
		if m.WireBytes() != len(Encode(m)) {
			t.Fatalf("%v: WireBytes %d vs encoded %d", m.Type, m.WireBytes(), len(Encode(m)))
		}
	}

	hello := Encode(&Message{Type: TypeHello, Epoch: 1})
	hello[len(hello)-1] = 0x80 // undefined mask bit
	if _, err := Decode(hello); err == nil {
		t.Fatal("undefined hello quant mask must be rejected")
	}
	welcome := Encode(&Message{Type: TypeWelcome, Epoch: 1})
	welcome[1+4+4+8+8+4] = 0xf0
	if _, err := Decode(welcome); err == nil {
		t.Fatal("undefined welcome quant mask must be rejected")
	}
}

// TestQuantizedApplication: after a round trip, applying a quantized
// selection reproduces the sender's dequantized image exactly — the error
// budget is spent at quantization time, not in transit.
func TestQuantizedApplication(t *testing.T) {
	src := []float32{0.5, -0.25, 1.5, 0, -1, 0.125}
	s := &grad.Selection{Var: "W", Total: 6, Dense: append([]float32(nil), src...)}
	s.Quantize(grad.PrecI8)
	m := &Message{Type: TypeGradient, LBS: 1, Selections: []*grad.Selection{s}}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 6)
	if err := got.Selections[0].AddTo(dst, 1); err != nil {
		t.Fatal(err)
	}
	maxAbs := 1.5 / float64(127)
	for i := range dst {
		if dst[i] != s.Dense[i] {
			t.Fatalf("receiver value %d diverges from sender image: %v vs %v", i, dst[i], s.Dense[i])
		}
		if err := math.Abs(float64(dst[i] - src[i])); err > maxAbs/2*(1+1e-6) {
			t.Fatalf("quantization error %v exceeds scale/2 at %d", err, i)
		}
	}
}
