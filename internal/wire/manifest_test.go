package wire

import (
	"bytes"
	"errors"
	"testing"

	"dlion/internal/lineage"
)

// seedManifests covers the codec's structural variety: root and chained
// manifests, with and without replay descriptors and per-variable tables.
func seedManifests() []*lineage.Manifest {
	return []*lineage.Manifest{
		{
			Schema: lineage.Schema, Model: "cipher", Digest: 0xdeadbeefcafef00d,
			Iter: 12, Worker: 0, Seed: 42, Precision: "f32",
		},
		{
			Schema: lineage.Schema, Model: "cipher", Digest: 2, Parent: 1,
			ParentIter: 6, Iter: 12, Epoch: 3, Worker: 1, Job: "job-7",
			Config: "name=eq-dense lr=0.05", ConfigHash: lineage.Fingerprint("name=eq-dense lr=0.05"),
			Seed: 7, Precision: "int8",
			Vars: map[string]lineage.Hash{"conv1/w": 11, "conv1/b": 12, "fc/w": 13},
			Replay: &lineage.Replay{
				Substrate: lineage.SubstrateSim, Workers: 2, Sparse: true, Quant: "i8",
			},
		},
		{
			Schema: lineage.Schema, Model: "m", Digest: 1, Iter: 0, Worker: 3,
			Replay: &lineage.Replay{Substrate: lineage.SubstrateRealtime, Workers: 4},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	for i, m := range seedManifests() {
		raw, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("manifest %d: encode: %v", i, err)
		}
		got, err := DecodeManifest(raw)
		if err != nil {
			t.Fatalf("manifest %d: decode: %v", i, err)
		}
		raw2, err := EncodeManifest(got)
		if err != nil {
			t.Fatalf("manifest %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Errorf("manifest %d: re-encode differs (non-canonical codec)", i)
		}
		if got.Digest != m.Digest || got.Parent != m.Parent || got.Iter != m.Iter ||
			got.Worker != m.Worker || got.Model != m.Model || got.Seed != m.Seed {
			t.Errorf("manifest %d: fields drifted: %+v vs %+v", i, got, m)
		}
		if (got.Replay == nil) != (m.Replay == nil) {
			t.Errorf("manifest %d: replay presence drifted", i)
		}
	}
}

func TestManifestDecodeRejects(t *testing.T) {
	valid, err := EncodeManifest(seedManifests()[1])
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), valid[4:]...),
		"bad ver":   append(append([]byte{}, valid[:4]...), append([]byte{99}, valid[5:]...)...),
		"truncated": valid[:len(valid)-3],
		"trailing":  append(append([]byte{}, valid...), 0),
		"bit flip in digest": func() []byte {
			b := append([]byte{}, valid...)
			// digest sits right after magic+ver+model string
			b[4+1+2+len("cipher")] ^= 0xff
			return b
		}(),
	}
	for name, data := range cases {
		m, err := DecodeManifest(data)
		if name == "bit flip in digest" {
			// A flipped digest byte still parses — the point is that it
			// decodes to a different commitment, not silently the same.
			if err == nil && m.Digest == seedManifests()[1].Digest {
				t.Errorf("%s: flipped digest decoded unchanged", name)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
}

// FuzzManifestDecode asserts the manifest codecs never panic: any input to
// the binary decoder either round-trips canonically or errors, and the same
// bytes fed to the JSON sidecar decoder behave likewise. Corpus seeds live
// in testdata/fuzz/FuzzManifestDecode (see gen_corpus_test.go).
func FuzzManifestDecode(f *testing.F) {
	for _, m := range seedManifests() {
		raw, err := EncodeManifest(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		js, err := lineage.EncodeJSON(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(js)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeManifest(data); err == nil {
			raw, err := EncodeManifest(m)
			if err != nil {
				t.Fatalf("decoded manifest does not re-encode: %v", err)
			}
			m2, err := DecodeManifest(raw)
			if err != nil {
				t.Fatalf("canonical re-encode does not decode: %v", err)
			}
			raw2, err := EncodeManifest(m2)
			if err != nil || !bytes.Equal(raw, raw2) {
				t.Fatalf("codec not canonical: %v", err)
			}
		} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) &&
			!errors.Is(err, lineage.ErrBadManifest) {
			t.Fatalf("unexpected error class: %v", err)
		}
		if m, err := lineage.DecodeJSON(data); err == nil {
			js, err := lineage.EncodeJSON(m)
			if err != nil {
				t.Fatalf("decoded JSON manifest does not re-encode: %v", err)
			}
			if _, err := lineage.DecodeJSON(js); err != nil {
				t.Fatalf("re-encoded JSON does not decode: %v", err)
			}
		}
	})
}
