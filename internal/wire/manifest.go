package wire

import (
	"fmt"
	"sort"

	"dlion/internal/lineage"
)

// Manifest framing: lineage manifests ride serve's weight-update frames and
// the jobs store alongside checkpoints, so their binary codec lives with the
// rest of the wire formats. Layout (little-endian, "DLMF" magic + version):
//
//	magic[4] ver[1]
//	model str · digest u64 · parent u64 · parentIter u64 · iter u64 ·
//	epoch u64 · worker u32 · job str · config str · configHash u64 ·
//	seed u64 · precision str · flags u8 ·
//	[flags&1: substrate str · workers u32 · quant str]   (replay descriptor)
//	varCount u32 · (name str · hash u64)*                (sorted by name)
//
// Strings use the shared u16-length prefix (capped at maxName); the JSON
// sidecar codec (lineage.EncodeJSON) is the human-facing twin of this frame.

var manifestMagic = [4]byte{'D', 'L', 'M', 'F'}

const (
	manifestVersion = 1
	// maxManifestVars bounds the per-variable digest table; real models have
	// a handful of variables, so anything larger is corruption.
	maxManifestVars = 1 << 10

	manReplayBit = 0x01 // flags: replay descriptor present
	manSparseBit = 0x02 // flags: replay segment used sparse exchange
	manFlagMax   = manReplayBit | manSparseBit
)

func manStr(buf []byte, s string) []byte {
	buf = le16(buf, uint16(len(s)))
	return append(buf, s...)
}

// EncodeManifest serializes a validated manifest. Per-variable digests are
// written in sorted name order, so encoding is canonical: equal manifests
// produce equal bytes.
func EncodeManifest(m *lineage.Manifest) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	for _, s := range []string{m.Model, m.Job, m.Config, m.Precision} {
		if len(s) > maxName {
			return nil, fmt.Errorf("%w: manifest string %d bytes", ErrCorrupt, len(s))
		}
	}
	if len(m.Vars) > maxManifestVars {
		return nil, fmt.Errorf("%w: %d manifest vars", ErrCorrupt, len(m.Vars))
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, manifestMagic[:]...)
	buf = append(buf, manifestVersion)
	buf = manStr(buf, m.Model)
	buf = le64(buf, uint64(m.Digest))
	buf = le64(buf, uint64(m.Parent))
	buf = le64(buf, uint64(m.ParentIter))
	buf = le64(buf, uint64(m.Iter))
	buf = le64(buf, uint64(m.Epoch))
	buf = le32(buf, uint32(m.Worker))
	buf = manStr(buf, m.Job)
	buf = manStr(buf, m.Config)
	buf = le64(buf, uint64(m.ConfigHash))
	buf = le64(buf, m.Seed)
	buf = manStr(buf, m.Precision)
	var flags uint8
	if m.Replay != nil {
		flags |= manReplayBit
		if m.Replay.Sparse {
			flags |= manSparseBit
		}
	}
	buf = append(buf, flags)
	if m.Replay != nil {
		buf = manStr(buf, string(m.Replay.Substrate))
		buf = le32(buf, uint32(m.Replay.Workers))
		buf = manStr(buf, m.Replay.Quant)
	}
	names := make([]string, 0, len(m.Vars))
	for name := range m.Vars {
		if len(name) > maxName {
			return nil, fmt.Errorf("%w: manifest var name %d bytes", ErrCorrupt, len(name))
		}
		names = append(names, name)
	}
	sort.Strings(names)
	buf = le32(buf, uint32(len(names)))
	for _, name := range names {
		buf = manStr(buf, name)
		buf = le64(buf, uint64(m.Vars[name]))
	}
	return buf, nil
}

// DecodeManifest parses a manifest frame produced by EncodeManifest. The
// returned manifest passed lineage validation; trailing bytes, unknown flag
// bits, and oversized tables are rejected.
func DecodeManifest(data []byte) (*lineage.Manifest, error) {
	if len(data) < 5 {
		return nil, ErrTruncated
	}
	if [4]byte(data[:4]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	if data[4] != manifestVersion {
		return nil, fmt.Errorf("%w: manifest version %d", ErrCorrupt, data[4])
	}
	r := &reader{data: data, off: 5}
	m := &lineage.Manifest{Schema: lineage.Schema}
	var err error
	if m.Model, err = r.str(); err != nil {
		return nil, err
	}
	var u uint64
	for _, dst := range []*lineage.Hash{&m.Digest, &m.Parent} {
		if u, err = r.u64(); err != nil {
			return nil, err
		}
		*dst = lineage.Hash(u)
	}
	for _, dst := range []*int64{&m.ParentIter, &m.Iter, &m.Epoch} {
		if u, err = r.u64(); err != nil {
			return nil, err
		}
		if u > 1<<62 {
			return nil, fmt.Errorf("%w: manifest counter %d", ErrCorrupt, u)
		}
		*dst = int64(u)
	}
	worker, err := r.u32()
	if err != nil {
		return nil, err
	}
	if worker > 1<<20 {
		return nil, fmt.Errorf("%w: manifest worker %d", ErrCorrupt, worker)
	}
	m.Worker = int(worker)
	if m.Job, err = r.str(); err != nil {
		return nil, err
	}
	if m.Config, err = r.str(); err != nil {
		return nil, err
	}
	if u, err = r.u64(); err != nil {
		return nil, err
	}
	m.ConfigHash = lineage.Hash(u)
	if m.Seed, err = r.u64(); err != nil {
		return nil, err
	}
	if m.Precision, err = r.str(); err != nil {
		return nil, err
	}
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	if flags > manFlagMax || (flags&manSparseBit != 0 && flags&manReplayBit == 0) {
		return nil, fmt.Errorf("%w: manifest flags %#x", ErrCorrupt, flags)
	}
	if flags&manReplayBit != 0 {
		rep := &lineage.Replay{Sparse: flags&manSparseBit != 0}
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		rep.Substrate = lineage.Substrate(s)
		workers, err := r.u32()
		if err != nil {
			return nil, err
		}
		if workers > 1<<20 {
			return nil, fmt.Errorf("%w: replay workers %d", ErrCorrupt, workers)
		}
		rep.Workers = int(workers)
		if rep.Quant, err = r.str(); err != nil {
			return nil, err
		}
		m.Replay = rep
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if count > maxManifestVars {
		return nil, fmt.Errorf("%w: %d manifest vars", ErrCorrupt, count)
	}
	if count > 0 {
		m.Vars = make(map[string]lineage.Hash, count)
		for i := uint32(0); i < count; i++ {
			name, err := r.str()
			if err != nil {
				return nil, err
			}
			if _, dup := m.Vars[name]; dup {
				return nil, fmt.Errorf("%w: duplicate manifest var %q", ErrCorrupt, name)
			}
			if u, err = r.u64(); err != nil {
				return nil, err
			}
			m.Vars[name] = lineage.Hash(u)
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing manifest bytes", ErrCorrupt, r.remaining())
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
