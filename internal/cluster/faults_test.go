package cluster

import (
	"testing"

	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/fault"
	"dlion/internal/nn"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
	"dlion/internal/systems"
)

// chaosConfig is a 6-worker cluster sized for churn experiments: enough
// horizon that crashed workers get a meaningful post-restart life.
func chaosConfig(sys core.Config) Config {
	dc := data.Config{Name: "chaos", NumClasses: 4, Train: 600, Test: 150,
		Channels: 1, Height: 8, Width: 8, Noise: 0.5, Jitter: 1, Bumps: 3, Seed: 5}
	comps := make([]*simcompute.Compute, 6)
	for i := range comps {
		comps[i] = simcompute.New(simcompute.Constant(12),
			simcompute.CostModel{Overhead: 0.05, PerSample: 0.5}, uint64(i))
	}
	return Config{
		System:     sys,
		Model:      nn.CipherSpec(1, 8, 8, 4, 0),
		Data:       dc,
		N:          6,
		Computes:   comps,
		Network:    simnet.Uniform(6, simcompute.Constant(200), 0.001),
		Horizon:    120,
		EvalPeriod: 30,
		Seed:       9,
	}
}

func chaosSystem() core.Config {
	sys := systems.DLion()
	sys.LivenessTimeout = 3
	return sys
}

// TestChaosChurnConverges is the acceptance chaos scenario: two of six
// workers crash mid-training and restart from checkpoints, and one link is
// partitioned for 30 virtual seconds — yet the run must converge within 5%
// of the fault-free run's final accuracy.
func TestChaosChurnConverges(t *testing.T) {
	clean, err := Run(chaosConfig(chaosSystem()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(chaosSystem())
	cfg.Faults = &fault.Schedule{
		CheckpointPeriod: 10,
		Crashes: []fault.Crash{
			{Worker: 1, At: 30, RestartAfter: 15},
			{Worker: 4, At: 45, RestartAfter: 20},
		},
		Partitions: []fault.Partition{
			{From: 2, To: 3, Bidirectional: true, Window: fault.Window{Start: 40, End: 70}},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cleanAcc, faultAcc := clean.Timeline.FinalMean(), res.Timeline.FinalMean()
	if faultAcc < cleanAcc*0.95 {
		t.Fatalf("faulty run accuracy %.3f, fault-free %.3f: degradation > 5%%",
			faultAcc, cleanAcc)
	}
	if res.Faults.Crashes != 2 || res.Faults.Restarts != 2 {
		t.Fatalf("fault counters %+v, want 2 crashes and 2 restarts", res.Faults)
	}
	if res.Faults.Partitioned == 0 {
		t.Fatal("the 30s partition dropped no messages")
	}
	// crashed workers rejoined and kept iterating
	for _, i := range []int{1, 4} {
		if res.Iters[i] < clean.Iters[i]/3 {
			t.Fatalf("restarted worker %d made only %d iterations (fault-free %d)",
				i, res.Iters[i], clean.Iters[i])
		}
	}
	// delivered-only accounting: a run that dropped traffic must not charge
	// more bytes than its fault-free twin
	if res.TotalBytes >= clean.TotalBytes {
		t.Fatalf("faulty TotalBytes %d >= fault-free %d: drops were charged",
			res.TotalBytes, clean.TotalBytes)
	}
}

// TestCrashRestartBeatsNoRestart pins down that the restart path actually
// runs: with a restart the crashed worker keeps accumulating iterations.
func TestCrashRestartBeatsNoRestart(t *testing.T) {
	dead := chaosConfig(chaosSystem())
	dead.Faults = &fault.Schedule{
		CheckpointPeriod: 10,
		Crashes:          []fault.Crash{{Worker: 1, At: 30}}, // never returns
	}
	rd, err := Run(dead)
	if err != nil {
		t.Fatal(err)
	}
	revived := chaosConfig(chaosSystem())
	revived.Faults = &fault.Schedule{
		CheckpointPeriod: 10,
		Crashes:          []fault.Crash{{Worker: 1, At: 30, RestartAfter: 10}},
	}
	rr, err := Run(revived)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Iters[1] <= rd.Iters[1] {
		t.Fatalf("restarted worker should out-iterate a dead one: %d vs %d",
			rr.Iters[1], rd.Iters[1])
	}
	if rd.Faults.Restarts != 0 || rr.Faults.Restarts != 1 {
		t.Fatalf("restart counters: dead %+v revived %+v", rd.Faults, rr.Faults)
	}
	if rd.Faults.DeadDrops == 0 {
		t.Fatal("traffic to the dead worker should be counted as dead drops")
	}
}

// TestFullPartitionDeliversNothing: with every link partitioned for the
// whole run, TotalBytes must be exactly zero — the accounting counts only
// delivered messages, not attempted sends.
func TestFullPartitionDeliversNothing(t *testing.T) {
	cfg := tinyConfig(systems.Ako(1))
	cfg.Faults = &fault.Schedule{Partitions: []fault.Partition{
		{From: fault.Any, To: fault.Any},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 0 {
		t.Fatalf("TotalBytes %d on a fully partitioned network", res.TotalBytes)
	}
	if res.Faults.Partitioned == 0 {
		t.Fatal("no partition drops recorded")
	}
	if res.Iters[0] < 5 {
		t.Fatal("async workers should keep training locally")
	}
}

// TestZeroBandwidthActsAsPartition: a bw <= 0 link must drop traffic (and
// charge nothing) instead of crawling along a phantom 0.01 Mbps link.
func TestZeroBandwidthActsAsPartition(t *testing.T) {
	cfg := tinyConfig(systems.Ako(1))
	cfg.Network = simnet.Uniform(4, simcompute.Constant(0), 0.001)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 0 {
		t.Fatalf("TotalBytes %d across dead links", res.TotalBytes)
	}
	if res.Iters[0] < 5 {
		t.Fatal("async workers should keep training locally")
	}
}

// TestInjectedLossReducesDeliveredBytes: random loss drops roughly its rate
// of the traffic from the delivered-bytes ledger.
func TestInjectedLossReducesDeliveredBytes(t *testing.T) {
	clean, err := Run(tinyConfig(systems.Ako(1)))
	if err != nil {
		t.Fatal(err)
	}
	lossy := tinyConfig(systems.Ako(1))
	lossy.Faults = &fault.Schedule{Seed: 11, Loss: []fault.Loss{
		{From: fault.Any, To: fault.Any, Rate: 0.5},
	}}
	res, err := Run(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Lost == 0 {
		t.Fatal("no loss recorded")
	}
	perIterClean := float64(clean.TotalBytes) / float64(clean.Iters[0])
	perIterLossy := float64(res.TotalBytes) / float64(res.Iters[0])
	if perIterLossy >= perIterClean*0.85 {
		t.Fatalf("50%% loss barely moved delivered bytes/iter: %.0f vs %.0f",
			perIterLossy, perIterClean)
	}
}

// TestCorruptionIsDropped: rate-1 corruption delivers nothing but still
// lets async training proceed locally.
func TestCorruptionIsDropped(t *testing.T) {
	cfg := tinyConfig(systems.Ako(1))
	cfg.Faults = &fault.Schedule{Corruption: []fault.Corrupt{
		{From: fault.Any, To: fault.Any, Rate: 1},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 0 {
		t.Fatalf("TotalBytes %d with rate-1 corruption", res.TotalBytes)
	}
	if res.Faults.Corrupted == 0 {
		t.Fatal("no corruption recorded")
	}
}

// TestInjectedDelayStillDelivers: delayed messages arrive and are charged.
func TestInjectedDelayStillDelivers(t *testing.T) {
	cfg := tinyConfig(systems.Ako(1))
	cfg.Faults = &fault.Schedule{Delays: []fault.Delay{
		{From: fault.Any, To: fault.Any, Extra: 0.2},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes == 0 {
		t.Fatal("delayed messages must still be delivered")
	}
	if res.Faults.Delayed == 0 {
		t.Fatal("no delays recorded")
	}
}

// TestFaultScheduleValidation: invalid schedules are rejected up front.
func TestFaultScheduleValidation(t *testing.T) {
	cfg := tinyConfig(systems.Baseline())
	cfg.Faults = &fault.Schedule{Crashes: []fault.Crash{{Worker: 99, At: 1}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range crash worker must error")
	}
}

// TestSyncSurvivesCrashWithLiveness: a SyncFull cluster normally deadlocks
// when a peer dies mid-run; with liveness tracking the survivors declare it
// dead and keep the barrier among themselves.
func TestSyncSurvivesCrashWithLiveness(t *testing.T) {
	sys := systems.Baseline() // SyncFull
	sys.LivenessTimeout = 3
	cfg := tinyConfig(sys)
	cfg.Faults = &fault.Schedule{Crashes: []fault.Crash{{Worker: 2, At: 20}}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// survivors must make clear progress after the crash at t=20 of a
	// 60-second run; a deadlocked barrier would freeze them near the
	// crash-time count
	clean, err := Run(tinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters[0] < clean.Iters[0]/2 {
		t.Fatalf("survivor froze after peer crash: %d vs fault-free %d",
			res.Iters[0], clean.Iters[0])
	}
}
