package cluster

import (
	"testing"

	"dlion/internal/systems"
)

// TestObserveCollectsBreakdown runs a small observed simulation and checks
// the per-worker phase breakdown and transfer counters land in Result.Obs
// with the invariants the METRICS.md schema promises.
func TestObserveCollectsBreakdown(t *testing.T) {
	cfg := tinyConfig(systems.DLion())
	cfg.Observe = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Obs) != cfg.N {
		t.Fatalf("obs records: %d, want %d", len(res.Obs), cfg.N)
	}
	for i, w := range res.Obs {
		if w.ID != i || w.Iters != res.Iters[i] {
			t.Fatalf("worker %d header: %+v", i, w)
		}
		if w.Phases["compute"] <= 0 {
			t.Fatalf("worker %d: no compute time recorded", i)
		}
		if w.Phases["serialize"] <= 0 {
			t.Fatalf("worker %d: no serialize time recorded", i)
		}
		if w.Phases["send"] <= 0 {
			t.Fatalf("worker %d: no send time recorded", i)
		}
		// Virtual phase time can never exceed the horizon per phase.
		for name, sec := range w.Phases {
			if sec < 0 || sec > cfg.Horizon*float64(cfg.N) {
				t.Fatalf("worker %d: phase %s = %v out of range", i, name, sec)
			}
		}
		if w.SentBytes["gradient"] <= 0 || w.SentMsgs["gradient"] <= 0 {
			t.Fatalf("worker %d: no gradient traffic: %+v", i, w.SentBytes)
		}
		if w.RecvMsgs["gradient"] <= 0 {
			t.Fatalf("worker %d: received no gradients", i)
		}
		// Sent bytes must match the worker's own byte counter across classes.
		var total int64
		for _, b := range w.SentBytes {
			total += b
		}
		if total != res.Stats[i].BytesSent {
			t.Fatalf("worker %d: class bytes %d != stats bytes %d",
				i, total, res.Stats[i].BytesSent)
		}
	}
}

// TestObserveOffLeavesResultBare confirms the default path allocates no
// sinks and reports no breakdown.
func TestObserveOffLeavesResultBare(t *testing.T) {
	res, err := Run(tinyConfig(systems.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != nil {
		t.Fatalf("unobserved run produced obs records: %+v", res.Obs)
	}
}
