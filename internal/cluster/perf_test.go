package cluster

// Tests pinning the perf work of the fleet-scale DES effort: parallel
// evaluation must not change a single timeline byte, trace sampling must
// stay at its fixed allocation budget, and the hierarchical federation
// workloads must run end to end.

import (
	"testing"

	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/systems"
	"dlion/internal/tensor"
	"dlion/internal/wire"
)

// TestParallelEvalDeterministic runs the same seeded experiment with
// evaluation fanned out across goroutines and with everything forced
// inline, and requires bit-identical timelines — the merge in worker-id
// order makes scheduling invisible.
func TestParallelEvalDeterministic(t *testing.T) {
	prevW := tensor.SetMaxWorkers(4)
	prevD := tensor.SetDeterministic(false)
	parallel, err := Run(tinyConfig(systems.DLion()))
	tensor.SetDeterministic(true)
	inline, err2 := Run(tinyConfig(systems.DLion()))
	tensor.SetMaxWorkers(prevW)
	tensor.SetDeterministic(prevD)
	if err != nil || err2 != nil {
		t.Fatal(err, err2)
	}
	if len(parallel.Timeline) != len(inline.Timeline) {
		t.Fatalf("timeline lengths diverge: %d vs %d",
			len(parallel.Timeline), len(inline.Timeline))
	}
	for i := range parallel.Timeline {
		p, q := parallel.Timeline[i], inline.Timeline[i]
		if p.T != q.T || p.Mean != q.Mean || p.Loss != q.Loss {
			t.Fatalf("timeline[%d] diverges: %+v vs %+v", i, p, q)
		}
		if len(p.PerWork) != len(q.PerWork) {
			t.Fatalf("timeline[%d] acc counts diverge", i)
		}
		for j := range p.PerWork {
			if p.PerWork[j] != q.PerWork[j] {
				t.Fatalf("timeline[%d] acc[%d]: %v vs %v", i, j, p.PerWork[j], q.PerWork[j])
			}
		}
	}
	if parallel.Events != inline.Events {
		t.Fatalf("event counts diverge: %d vs %d", parallel.Events, inline.Events)
	}
}

// traceEnv is the minimal core.Env needed to construct workers for the
// trace-allocation measurement; nothing is ever scheduled on it.
type traceEnv struct{ n int }

func (e *traceEnv) Now() float64                       { return 0 }
func (e *traceEnv) After(d float64, fn func())         {}
func (e *traceEnv) NumWorkers() int                    { return e.n }
func (e *traceEnv) Send(from, to int, m *wire.Message) {}
func (e *traceEnv) Bandwidth(from, to int) float64     { return 100 }
func (e *traceEnv) IterSeconds(w, batch int) float64   { return 1 }
func (e *traceEnv) SendScale() float64                 { return 1 }
func (e *traceEnv) ProfileCompute(w int, batches []int) (x, y []float64) {
	for _, b := range batches {
		x = append(x, float64(b))
		y = append(y, 0.01+float64(b)/32)
	}
	return x, y
}

func traceWorkers(t testing.TB, n int) []*core.Worker {
	dc := data.Config{Name: "trace", NumClasses: 3, Train: 96, Test: 30,
		Channels: 1, Height: 8, Width: 8, Noise: 0.3, Jitter: 0, Bumps: 3, Seed: 4}
	train, _, err := data.Generate(dc)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.Partition(train, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := nn.CipherSpec(1, 8, 8, 3, 77)
	env := &traceEnv{n: n}
	ws := make([]*core.Worker, n)
	for i := range ws {
		w, err := core.New(i, systems.DLion(), spec.Build(), shards[i], env)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	return ws
}

// TestTraceSampleAllocs pins the fixed allocation budget of one trace
// sample: the LBS slice, the two exact-capacity maps (whose pre-sized
// buckets never rehash mid-fill), and small map internals — but nothing
// proportional to fill order. The bound is deliberately loose in absolute
// terms (map bucket arrays count) while still catching a regression to
// per-entry rehashing growth.
func TestTraceSampleAllocs(t *testing.T) {
	ws := traceWorkers(t, 8)
	allocs := testing.AllocsPerRun(20, func() {
		tr := sampleTrace(ws, 1)
		if len(tr.LBS) != 8 || len(tr.SelCount) != 8*7 || len(tr.Budget) != 8*7 {
			t.Fatal("trace shape wrong")
		}
	})
	// 8 workers → 56 entries per map. Exact-capacity maps allocate their
	// bucket arrays up front: ~6 allocations total (slice, 2× map header +
	// bucket array, Trace escape). Growth-by-rehash would multiply this.
	if allocs > 12 {
		t.Fatalf("sampleTrace allocates %.0f times per sample, want <= 12", allocs)
	}
}

func BenchmarkTraceSample(b *testing.B) {
	ws := traceWorkers(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr := sampleTrace(ws, float64(i)); len(tr.LBS) != 32 {
			b.Fatal("trace shape wrong")
		}
	}
}

// TestHierarchicalFederationRuns exercises the fleet-scale benchmark
// configuration end to end at a small size: a 4-cloud hierarchical
// federation must run to its horizon, execute events, and report a
// throughput figure.
func TestHierarchicalFederationRuns(t *testing.T) {
	cfg := FederationConfig(8) // 4 clouds × 2 workers
	cfg.Horizon = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Fatal("no events executed")
	}
	if res.EventsPerSec <= 0 {
		t.Fatal("EventsPerSec not reported")
	}
	if res.Timeline[len(res.Timeline)-1].T != cfg.Horizon {
		t.Fatal("final eval not at horizon")
	}
	for i, it := range res.Iters {
		if it == 0 {
			t.Fatalf("worker %d never iterated", i)
		}
	}
}

func TestAttachSimMetrics(t *testing.T) {
	if _, err := Run(tinyConfig(systems.Baseline())); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	AttachSimMetrics(reg)
	v, ok := reg.Snapshot()["sim.events_per_sec"]
	if !ok {
		t.Fatal("sim.events_per_sec not registered")
	}
	if v <= 0 {
		t.Fatalf("sim.events_per_sec = %d after a run", v)
	}
}
