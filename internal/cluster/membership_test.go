package cluster

import (
	"testing"

	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/fault"
	"dlion/internal/nn"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
	"dlion/internal/systems"
)

// Elastic membership over the simulator: declarative Join/Leave schedule
// entries, dormant joiners, sponsor resolution, and renormalization of the
// gradient fan-out at every epoch boundary.

// elasticConfig is an 8-slot cluster: ids 0..5 found the federation, 6..7
// are reserved for mid-run joiners.
func elasticConfig(sys core.Config) Config {
	dc := data.Config{Name: "elastic", NumClasses: 4, Train: 600, Test: 150,
		Channels: 1, Height: 8, Width: 8, Noise: 0.5, Jitter: 1, Bumps: 3, Seed: 5}
	comps := make([]*simcompute.Compute, 8)
	for i := range comps {
		comps[i] = simcompute.New(simcompute.Constant(12),
			simcompute.CostModel{Overhead: 0.05, PerSample: 0.5}, uint64(i))
	}
	return Config{
		System:     sys,
		Model:      nn.CipherSpec(1, 8, 8, 4, 0),
		Data:       dc,
		N:          8,
		Computes:   comps,
		Network:    simnet.Uniform(8, simcompute.Constant(200), 0.001),
		Horizon:    120,
		EvalPeriod: 30,
		Seed:       9,
	}
}

// assertRenormalization checks the exact fan-out invariant over one
// worker's membership log: between consecutive epoch entries the worker
// sent exactly ΔIter·(Size-1) gradient messages, Size being the roster the
// earlier entry established. Requires LivenessTimeout == 0 so the live set
// equals the roster.
func assertRenormalization(t *testing.T, id int, log []core.EpochChange, final core.Stats, finalIters int64) {
	t.Helper()
	if len(log) == 0 {
		t.Fatalf("worker %d has no membership log", id)
	}
	check := func(prev core.EpochChange, iters, grads int64, upto string) {
		want := prev.GradMsgsSent + (iters-prev.Iter)*int64(prev.Size-1)
		if grads != want {
			t.Fatalf("worker %d epoch %d(%s)→%s: %d gradient msgs, want %d (size %d, iters %d→%d)",
				id, prev.Epoch, prev.Reason, upto, grads, want, prev.Size, prev.Iter, iters)
		}
	}
	for i := 1; i < len(log); i++ {
		check(log[i-1], log[i].Iter, log[i].GradMsgsSent, log[i].Reason)
	}
	check(log[len(log)-1], finalIters, final.GradMsgsSent, "end")
}

// TestElasticChurnScenario is the acceptance scenario: 2 workers join a
// 6-founder federation and 2 of the original 6 leave, all mid-training.
// Every surviving worker must end on the same roster, message counts must
// renormalize exactly at each epoch boundary, and accuracy must not
// collapse relative to the static 6-worker run.
func TestElasticChurnScenario(t *testing.T) {
	static, err := Run(chaosConfig(systems.DLion()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := elasticConfig(systems.DLion())
	cfg.Faults = &fault.Schedule{
		Joins: []fault.Join{
			{Worker: 6, At: 30, Sponsor: -1}, // freshest live member sponsors
			{Worker: 7, At: 45, Sponsor: 2},
		},
		Leaves: []fault.Leave{
			{Worker: 1, At: 60},
			{Worker: 4, At: 75},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Joins != 2 || res.Faults.Leaves != 2 {
		t.Fatalf("fault counters %+v, want 2 joins and 2 leaves", res.Faults)
	}
	survivors := []int{0, 2, 3, 5, 6, 7}
	for _, i := range survivors {
		if res.States[i] != core.StateActive {
			t.Fatalf("worker %d state %v, want active", i, res.States[i])
		}
		got := res.Rosters[i]
		if len(got) != len(survivors) {
			t.Fatalf("worker %d roster %v, want %v", i, got, survivors)
		}
		for k := range got {
			if got[k] != survivors[k] {
				t.Fatalf("worker %d roster %v, want %v", i, got, survivors)
			}
		}
		// 4 epochs observed: 2 joins + 2 leaves (joiners adopt the epochs
		// that preceded them inside the WELCOME's epoch stamp).
		last := res.Membership[i][len(res.Membership[i])-1]
		if last.Epoch != 4 {
			t.Fatalf("worker %d final epoch %d, want 4", i, last.Epoch)
		}
	}
	for _, i := range []int{1, 4} {
		if res.States[i] != core.StateLeft {
			t.Fatalf("leaver %d state %v, want left", i, res.States[i])
		}
	}
	// Joiners trained after admission.
	for _, i := range []int{6, 7} {
		if res.Iters[i] < 10 {
			t.Fatalf("joiner %d made only %d iterations", i, res.Iters[i])
		}
	}
	// Exact renormalization at every epoch boundary, every worker.
	for i := 0; i < cfg.N; i++ {
		assertRenormalization(t, i, res.Membership[i], res.Stats[i], res.Iters[i])
	}
	// The elastic run must stay within 10% of the static federation's final
	// accuracy (the golden-tolerance convergence gate runs in testkit).
	if res.Timeline.FinalMean() < static.Timeline.FinalMean()*0.90 {
		t.Fatalf("elastic run accuracy %.3f vs static %.3f: churn broke convergence",
			res.Timeline.FinalMean(), static.Timeline.FinalMean())
	}
}

// TestJoinResolvesDeadSponsor: the declared sponsor is crashed at join
// time, so the driver must fall back to the freshest live member and the
// admission must still succeed.
func TestJoinResolvesDeadSponsor(t *testing.T) {
	cfg := elasticConfig(systems.DLion())
	cfg.Faults = &fault.Schedule{
		Crashes: []fault.Crash{{Worker: 1, At: 10}}, // never returns
		Joins:   []fault.Join{{Worker: 6, At: 30, Sponsor: 1}},
	}
	// Keep id 7 out of the run entirely: it joins at a time past the horizon.
	cfg.Faults.Joins = append(cfg.Faults.Joins, fault.Join{Worker: 7, At: 1e9, Sponsor: 0})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.States[6] != core.StateActive {
		t.Fatalf("joiner state %v, want active", res.States[6])
	}
	if res.Iters[6] < 10 {
		t.Fatalf("joiner made only %d iterations after sponsor fallback", res.Iters[6])
	}
	found := false
	for _, id := range res.Rosters[0] {
		if id == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("founder roster %v missing the joiner", res.Rosters[0])
	}
	if res.States[7] != core.StateJoining {
		t.Fatalf("dormant worker state %v, want joining", res.States[7])
	}
	if res.Iters[7] != 0 {
		t.Fatalf("dormant worker trained %d iters before its join time", res.Iters[7])
	}
}

// TestAllJoinersRejected: a schedule where every worker joins has no
// founders and must be rejected up front.
func TestAllJoinersRejected(t *testing.T) {
	cfg := tinyConfig(systems.Ako(1))
	cfg.Faults = &fault.Schedule{Joins: []fault.Join{
		{Worker: 0, At: 1, Sponsor: 1}, {Worker: 1, At: 1, Sponsor: 0},
		{Worker: 2, At: 1, Sponsor: 0}, {Worker: 3, At: 1, Sponsor: 0},
	}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("founderless schedule must error")
	}
}

// TestStaticRosterUnchanged pins the compatibility guarantee: without
// Join/Leave entries every worker keeps the full static roster, stays
// active, and logs exactly one seed epoch entry.
func TestStaticRosterUnchanged(t *testing.T) {
	res, err := Run(tinyConfig(systems.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rosters {
		if len(res.Rosters[i]) != 4 {
			t.Fatalf("worker %d roster %v, want all 4", i, res.Rosters[i])
		}
		if res.States[i] != core.StateActive {
			t.Fatalf("worker %d state %v", i, res.States[i])
		}
		if len(res.Membership[i]) != 1 || res.Membership[i][0].Reason != "seed" {
			t.Fatalf("worker %d log %+v, want single seed entry", i, res.Membership[i])
		}
	}
}
