package cluster

// The worker-loop benchmark pair backing the observability design claim:
// with Observe off, every instrumentation point sees a nil sink and the
// run must show no measurable regression against the pre-obs seed; the
// Observed variant prices the enabled path. Compare with:
//
//	go test -bench=SimRun -benchtime=3x ./internal/cluster

import (
	"testing"

	"dlion/internal/systems"
)

func benchmarkRun(b *testing.B, observe bool) {
	cfg := tinyConfig(systems.DLion())
	cfg.Observe = observe
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Timeline.FinalMean() <= 0 {
			b.Fatal("run learned nothing")
		}
	}
}

func BenchmarkSimRun(b *testing.B)         { benchmarkRun(b, false) }
func BenchmarkSimRunObserved(b *testing.B) { benchmarkRun(b, true) }
