package cluster

// The worker-loop benchmark pair backing the observability design claim:
// with Observe off, every instrumentation point sees a nil sink and the
// run must show no measurable regression against the pre-obs seed; the
// Observed variant prices the enabled path. Compare with:
//
//	go test -bench=SimRun -benchtime=3x ./internal/cluster

import (
	"fmt"
	"testing"

	"dlion/internal/systems"
)

func benchmarkRun(b *testing.B, observe bool) {
	cfg := tinyConfig(systems.DLion())
	cfg.Observe = observe
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Timeline.FinalMean() <= 0 {
			b.Fatal("run learned nothing")
		}
	}
}

func BenchmarkSimRun(b *testing.B)         { benchmarkRun(b, false) }
func BenchmarkSimRunObserved(b *testing.B) { benchmarkRun(b, true) }

// The DES throughput workloads live in workloads.go (SimEventsConfig,
// FederationConfig) so that dlion-bench -sim profiles exactly what the
// benchmark measures.

// BenchmarkSimEvents measures raw DES throughput (events per wall second,
// reported as the custom events/s metric) at micro-cloud, rack, and
// fleet scale, with and without elastic churn; the 256/512/1024 sizes run
// as 4-cloud hierarchical federations. Emitted into BENCH_sim.json by
// `make bench-sim`; run one-shot with:
//
//	go test -run='^$' -bench=SimEvents -benchtime=1x ./internal/cluster
func BenchmarkSimEvents(b *testing.B) {
	run := func(b *testing.B, cfg Config) {
		b.ReportAllocs()
		var events uint64
		for i := 0; i < b.N; i++ {
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Events == 0 {
				b.Fatal("no events executed")
			}
			events += res.Events
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
	for _, n := range []int{6, 32, 128} {
		for _, churn := range []bool{false, true} {
			name := fmt.Sprintf("n=%d", n)
			if churn {
				name += "-churn"
			}
			b.Run(name, func(b *testing.B) { run(b, SimEventsConfig(n, churn)) })
		}
	}
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { run(b, FederationConfig(n)) })
	}
}
