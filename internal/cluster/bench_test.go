package cluster

// The worker-loop benchmark pair backing the observability design claim:
// with Observe off, every instrumentation point sees a nil sink and the
// run must show no measurable regression against the pre-obs seed; the
// Observed variant prices the enabled path. Compare with:
//
//	go test -bench=SimRun -benchtime=3x ./internal/cluster

import (
	"fmt"
	"testing"

	"dlion/internal/data"
	"dlion/internal/fault"
	"dlion/internal/nn"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
	"dlion/internal/systems"
)

func benchmarkRun(b *testing.B, observe bool) {
	cfg := tinyConfig(systems.DLion())
	cfg.Observe = observe
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Timeline.FinalMean() <= 0 {
			b.Fatal("run learned nothing")
		}
	}
}

func BenchmarkSimRun(b *testing.B)         { benchmarkRun(b, false) }
func BenchmarkSimRunObserved(b *testing.B) { benchmarkRun(b, true) }

// benchEventsConfig sizes one DES throughput workload: n DLion workers on
// the tiny Cipher task over a short horizon, evaluation kept out of the
// measured window. With churn, the last slot joins a third of the way in
// and one founder leaves at two thirds — pricing the membership machinery
// (handshake, tombstones, renormalization) against the static baseline.
func benchEventsConfig(n int, churn bool) Config {
	dc := data.Config{Name: "bench-events", NumClasses: 3, Train: 2048, Test: 256,
		Channels: 1, Height: 8, Width: 8, Noise: 0.4, Jitter: 0, Bumps: 3, Seed: 11}
	comps := make([]*simcompute.Compute, n)
	for i := range comps {
		comps[i] = simcompute.New(simcompute.Constant(12),
			simcompute.CostModel{Overhead: 0.05, PerSample: 0.5}, uint64(i))
	}
	const horizon = 8
	cfg := Config{
		System:     systems.DLion(),
		Model:      nn.CipherSpec(1, 8, 8, 3, 0),
		Data:       dc,
		N:          n,
		Computes:   comps,
		Network:    simnet.Uniform(n, simcompute.Constant(200), 0.001),
		Horizon:    horizon,
		EvalPeriod: horizon,
		EvalSubset: 60,
		EvalBatch:  30,
		Seed:       13,
	}
	if churn {
		cfg.Faults = &fault.Schedule{
			Joins:  []fault.Join{{Worker: n - 1, At: horizon * 0.3, Sponsor: 0}},
			Leaves: []fault.Leave{{Worker: 1, At: horizon * 0.6}},
		}
	}
	return cfg
}

// BenchmarkSimEvents measures raw DES throughput (events per wall second,
// reported as the custom events/s metric) at micro-cloud, rack, and
// fleet scale, with and without elastic churn. Emitted into BENCH_sim.json
// by `make bench-sim`; run one-shot with:
//
//	go test -run='^$' -bench=SimEvents -benchtime=1x ./internal/cluster
func BenchmarkSimEvents(b *testing.B) {
	for _, n := range []int{6, 32, 128} {
		for _, churn := range []bool{false, true} {
			name := fmt.Sprintf("n=%d", n)
			if churn {
				name += "-churn"
			}
			b.Run(name, func(b *testing.B) {
				cfg := benchEventsConfig(n, churn)
				b.ReportAllocs()
				var events uint64
				for i := 0; i < b.N; i++ {
					res, err := Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if res.Events == 0 {
						b.Fatal("no events executed")
					}
					events += res.Events
				}
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}
