package cluster

// Canonical DES throughput workloads, shared by BenchmarkSimEvents (via
// `make bench-sim`) and the dlion-bench -sim profiling mode so both measure
// exactly the same configurations.

import (
	"dlion/internal/data"
	"dlion/internal/fault"
	"dlion/internal/nn"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
	"dlion/internal/systems"
)

// SimEventsConfig sizes one DES throughput workload: n DLion workers on the
// tiny Cipher task over a short horizon on a flat 200 Mbps mesh, evaluation
// kept out of the measured window. With churn, the last slot joins a third
// of the way in and one founder leaves at two thirds — pricing the
// membership machinery (handshake, tombstones, renormalization) against the
// static baseline.
func SimEventsConfig(n int, churn bool) Config {
	dc := data.Config{Name: "bench-events", NumClasses: 3, Train: 2048, Test: 256,
		Channels: 1, Height: 8, Width: 8, Noise: 0.4, Jitter: 0, Bumps: 3, Seed: 11}
	comps := make([]*simcompute.Compute, n)
	for i := range comps {
		comps[i] = simcompute.New(simcompute.Constant(12),
			simcompute.CostModel{Overhead: 0.05, PerSample: 0.5}, uint64(i))
	}
	const horizon = 8
	cfg := Config{
		System:     systems.DLion(),
		Model:      nn.CipherSpec(1, 8, 8, 3, 0),
		Data:       dc,
		N:          n,
		Computes:   comps,
		Network:    simnet.Uniform(n, simcompute.Constant(200), 0.001),
		Horizon:    horizon,
		EvalPeriod: horizon,
		EvalSubset: 60,
		EvalBatch:  30,
		Seed:       13,
	}
	if churn {
		cfg.Faults = &fault.Schedule{
			Joins:  []fault.Join{{Worker: n - 1, At: horizon * 0.3, Sponsor: 0}},
			Leaves: []fault.Leave{{Worker: 1, At: horizon * 0.6}},
		}
	}
	return cfg
}

// FederationConfig sizes one fleet-scale DES workload: n workers spread
// over four micro-clouds (simnet.HierarchicalUniform — gigabit LAN meshes
// inside each cloud, a shared 100 Mbps WAN tier between them), a shorter
// horizon than the flat workloads so the thousand-worker size stays
// benchable, and evaluation kept out of the measured window. n must divide
// into 4 clouds.
func FederationConfig(n int) Config {
	cfg := SimEventsConfig(n, false)
	const clouds = 4
	if n%clouds != 0 {
		panic("cluster: federation workload size must divide into 4 clouds")
	}
	cfg.Network = simnet.HierarchicalUniform(clouds, n/clouds, 1000, 100, 0.0002, 0.03)
	cfg.Horizon = 2
	cfg.EvalPeriod = 2
	return cfg
}
