package cluster

import (
	"testing"

	"dlion/internal/systems"
)

// TestRunUntilConvergedExtendsHorizon: with an unreachable plateau bar the
// driver must keep doubling the horizon until maxTime, and the final run's
// timeline must cover the extended horizon — not the initial one.
func TestRunUntilConvergedExtendsHorizon(t *testing.T) {
	cfg := tinyConfig(systems.Baseline())
	cfg.Horizon = 10
	cfg.EvalPeriod = 5
	// eps=0 cannot plateau (it would need two evaluations exactly equal
	// four apart), so only the maxTime cap at 40 stops the doubling:
	// horizons 10 -> 20 -> 40
	res, convT, err := RunUntilConverged(cfg, 4, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Timeline[len(res.Timeline)-1].T
	if last <= 10 {
		t.Fatalf("final timeline ends at %v: horizon was never extended", last)
	}
	if convT <= 0 || convT > last {
		t.Fatalf("convergence time %v outside the run (last eval %v)", convT, last)
	}
}

// TestRunUntilConvergedMaxTimeCap: maxTime equal to the initial horizon
// means exactly one run — no doubling — even when nothing has plateaued.
func TestRunUntilConvergedMaxTimeCap(t *testing.T) {
	cfg := tinyConfig(systems.Baseline())
	cfg.Horizon = 20
	cfg.EvalPeriod = 5
	res, convT, err := RunUntilConverged(cfg, 4, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Timeline[len(res.Timeline)-1].T
	if last > 20 {
		t.Fatalf("maxTime-capped run evaluated at %v, past the 20s horizon", last)
	}
	if convT <= 0 || convT > 20 {
		t.Fatalf("convergence time %v outside the capped run", convT)
	}
}

// TestRunUntilConvergedTimeExtraction: the reported convergence time is
// the first evaluation whose mean accuracy is within eps of the final one.
func TestRunUntilConvergedTimeExtraction(t *testing.T) {
	cfg := tinyConfig(systems.Baseline())
	cfg.Horizon = 30
	cfg.EvalPeriod = 5
	const eps = 0.05
	res, convT, err := RunUntilConverged(cfg, 2, eps, 60)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Timeline.FinalMean()
	want := -1.0
	for _, p := range res.Timeline {
		if p.Mean >= final-eps {
			want = p.T
			break
		}
	}
	if want < 0 {
		t.Fatal("no timeline point within eps of the final accuracy")
	}
	if convT != want {
		t.Fatalf("convergence time %v, want first-within-eps point %v", convT, want)
	}
	// and never later than the final evaluation
	if convT > res.Timeline[len(res.Timeline)-1].T {
		t.Fatalf("convergence time %v past the end of the run", convT)
	}
}
