package cluster

import (
	"math"
	"testing"

	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/env"
	"dlion/internal/grad"
	"dlion/internal/nn"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
	"dlion/internal/systems"
)

// tinyConfig is a minimal fast experiment: 4 workers, small data, small
// model, 60 virtual seconds (a couple of wall seconds).
func tinyConfig(sys core.Config) Config {
	dc := data.Config{Name: "tc", NumClasses: 4, Train: 400, Test: 100,
		Channels: 1, Height: 8, Width: 8, Noise: 0.5, Jitter: 1, Bumps: 3, Seed: 5}
	comps := make([]*simcompute.Compute, 4)
	for i := range comps {
		comps[i] = simcompute.New(simcompute.Constant(12),
			simcompute.CostModel{Overhead: 0.05, PerSample: 0.5}, uint64(i))
	}
	return Config{
		System:   sys,
		Model:    nn.CipherSpec(1, 8, 8, 4, 0),
		Data:     dc,
		N:        4,
		Computes: comps,
		Network:  simnet.Uniform(4, simcompute.Constant(200), 0.001),
		Horizon:  60,
		Seed:     9,
	}
}

func TestRunBasics(t *testing.T) {
	res, err := Run(tinyConfig(systems.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) < 2 {
		t.Fatalf("timeline too short: %d", len(res.Timeline))
	}
	if res.Timeline[0].T != 0 {
		t.Fatal("first eval must be at t=0")
	}
	last := res.Timeline[len(res.Timeline)-1]
	if last.T != 60 {
		t.Fatalf("final eval at %v, want horizon 60", last.T)
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].T <= res.Timeline[i-1].T {
			t.Fatal("timeline not strictly increasing")
		}
	}
	if len(res.Stats) != 4 || len(res.Iters) != 4 || len(res.Models) != 4 {
		t.Fatal("per-worker outputs missing")
	}
	for i, it := range res.Iters {
		if it < 5 {
			t.Fatalf("worker %d only %d iterations", i, it)
		}
	}
	if res.TotalBytes <= 0 {
		t.Fatal("no traffic accounted")
	}
}

func TestRunLearns(t *testing.T) {
	res, err := Run(tinyConfig(systems.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	first, final := res.Timeline[0].Mean, res.Timeline.FinalMean()
	if final <= first+0.1 {
		t.Fatalf("no learning: %.3f -> %.3f", first, final)
	}
}

func TestRunDeterministic(t *testing.T) {
	// Identical configs must produce identical timelines (fresh computes
	// needed because jitter RNG state lives in them).
	run := func() *Result {
		res, err := Run(tinyConfig(systems.DLion()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Timeline) != len(b.Timeline) {
		t.Fatalf("timeline lengths differ: %d vs %d", len(a.Timeline), len(b.Timeline))
	}
	for i := range a.Timeline {
		if math.Abs(a.Timeline[i].Mean-b.Timeline[i].Mean) > 1e-12 {
			t.Fatalf("nondeterministic at %d: %v vs %v",
				i, a.Timeline[i].Mean, b.Timeline[i].Mean)
		}
	}
	for i := range a.Iters {
		if a.Iters[i] != b.Iters[i] {
			t.Fatal("iteration counts differ across identical runs")
		}
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	c1 := tinyConfig(systems.Baseline())
	c2 := tinyConfig(systems.Baseline())
	c2.Seed = 1234
	r1, err := Run(c1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Timeline {
		if i < len(r2.Timeline) && r1.Timeline[i].Mean != r2.Timeline[i].Mean {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical timelines")
	}
}

func TestWireScaleChargesBytes(t *testing.T) {
	small := tinyConfig(systems.Baseline())
	small.Model.WireBytes = 0 // real size
	big := tinyConfig(systems.Baseline())
	big.Model.WireBytes = 64 << 20
	// slow the network so iteration counts stay comparable but finite
	rs, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	bytesPerIterSmall := float64(rs.TotalBytes) / float64(rs.Iters[0])
	bytesPerIterBig := float64(rb.TotalBytes) / float64(rb.Iters[0])
	if bytesPerIterBig < 5*bytesPerIterSmall {
		t.Fatalf("wire scaling ineffective: %v vs %v", bytesPerIterBig, bytesPerIterSmall)
	}
}

func TestNetworkBoundSlowsIterations(t *testing.T) {
	fast := tinyConfig(systems.Baseline())
	slow := tinyConfig(systems.Baseline())
	slow.Network = simnet.Uniform(4, simcompute.Constant(2), 0.001) // 2 Mbps
	slow.Model.WireBytes = 5 << 20
	rf, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	rsl, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if rsl.Iters[0] >= rf.Iters[0] {
		t.Fatalf("starved network should slow sync training: %d vs %d",
			rsl.Iters[0], rf.Iters[0])
	}
}

func TestHeterogeneousComputeSlowsSync(t *testing.T) {
	cfg := tinyConfig(systems.Baseline())
	comps := make([]*simcompute.Compute, 4)
	for i := range comps {
		cap := 12.0
		if i == 3 {
			cap = 1 // hard straggler
		}
		comps[i] = simcompute.New(simcompute.Constant(cap),
			simcompute.CostModel{Overhead: 0.05, PerSample: 0.5}, uint64(i))
	}
	cfg.Computes = comps
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(tinyConfig(systems.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters[0] >= base.Iters[0] {
		t.Fatal("sync system should be bounded by the straggler")
	}
	// DLion's dynamic batching should recover most of the loss
	dcfg := tinyConfig(systems.DLion())
	dcfg.Computes = func() []*simcompute.Compute {
		cs := make([]*simcompute.Compute, 4)
		for i := range cs {
			cap := 12.0
			if i == 3 {
				cap = 1
			}
			cs[i] = simcompute.New(simcompute.Constant(cap),
				simcompute.CostModel{Overhead: 0.05, PerSample: 0.5}, uint64(i))
		}
		return cs
	}()
	dres, err := Run(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Iters[0] <= res.Iters[0] {
		t.Fatalf("DLion should out-iterate sync Baseline under a straggler: %d vs %d",
			dres.Iters[0], res.Iters[0])
	}
}

func TestTraceCollection(t *testing.T) {
	cfg := tinyConfig(systems.DLion())
	cfg.TracePeriod = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) < 4 {
		t.Fatalf("traces %d", len(res.Traces))
	}
	tr := res.Traces[len(res.Traces)-1]
	if len(tr.LBS) != 4 || tr.GBS <= 0 {
		t.Fatalf("trace %+v", tr)
	}
	sum := 0
	for _, l := range tr.LBS {
		if l < 1 {
			t.Fatalf("nonpositive LBS in %v", tr.LBS)
		}
		sum += l
	}
	if sum < tr.GBS/2 || sum > tr.GBS*2 {
		t.Fatalf("LBS sum %d far from GBS %d", sum, tr.GBS)
	}
	if tr.SelCount[[2]int{0, 1}] == 0 {
		t.Fatal("no selection count recorded")
	}
}

func TestValidationErrors(t *testing.T) {
	base := tinyConfig(systems.Baseline())
	cases := map[string]func(*Config){
		"too few workers": func(c *Config) { c.N = 1 },
		"computes count":  func(c *Config) { c.Computes = c.Computes[:2] },
		"nil network":     func(c *Config) { c.Network = nil },
		"network size":    func(c *Config) { c.Network = simnet.Uniform(3, simcompute.Constant(1), 0) },
		"bad horizon":     func(c *Config) { c.Horizon = 0 },
	}
	for name, mutate := range cases {
		c := base
		mutate(&c)
		if _, err := Run(c); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	bad := base
	bad.Data.NumClasses = 1
	if _, err := Run(bad); err == nil {
		t.Fatal("bad data config must error")
	}
	bad = base
	bad.System.LearningRate = -1
	if _, err := Run(bad); err == nil {
		t.Fatal("bad system config must error")
	}
}

func TestRunUntilConverged(t *testing.T) {
	cfg := tinyConfig(systems.Baseline())
	cfg.Horizon = 30
	res, convT, err := RunUntilConverged(cfg, 2, 0.05, 120)
	if err != nil {
		t.Fatal(err)
	}
	if convT <= 0 {
		t.Fatalf("convergence time %v", convT)
	}
	if res.Timeline.FinalMean() < 0.3 {
		t.Fatalf("converged accuracy too low: %v", res.Timeline.FinalMean())
	}
}

func TestAllSystemPresetsRun(t *testing.T) {
	for _, sys := range systems.All() {
		res, err := Run(tinyConfig(sys))
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		if res.Timeline.FinalMean() <= 0.2 {
			t.Fatalf("%s failed to learn: %.3f", sys.Name, res.Timeline.FinalMean())
		}
	}
}

func TestGaiaSendsFewerBytesThanBaseline(t *testing.T) {
	rb, err := Run(tinyConfig(systems.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	rg, err := Run(tinyConfig(systems.Gaia(1)))
	if err != nil {
		t.Fatal(err)
	}
	baselinePerIter := float64(rb.TotalBytes) / float64(rb.Iters[0])
	gaiaPerIter := float64(rg.TotalBytes) / float64(rg.Iters[0])
	if gaiaPerIter >= baselinePerIter {
		t.Fatalf("Gaia should send less per iteration: %v vs %v",
			gaiaPerIter, baselinePerIter)
	}
}

func TestDLionRespectsBandwidthBudget(t *testing.T) {
	// On a starved network, DLion's per-iteration egress should stay near
	// what the links can carry, while Baseline's demand vastly exceeds it.
	mk := func(sys core.Config) Config {
		c := tinyConfig(sys)
		c.Network = simnet.Uniform(4, simcompute.Constant(10), 0.001)
		c.Model.WireBytes = 5 << 20
		return c
	}
	rd, err := Run(mk(systems.DLion()))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(mk(systems.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Iters[0] <= 2*rb.Iters[0] {
		t.Fatalf("budgeted DLion should iterate much faster on a starved net: %d vs %d",
			rd.Iters[0], rb.Iters[0])
	}
}

func TestCustomSelectorSystem(t *testing.T) {
	// The plugin surface: a user-defined selector drops everything, which
	// must still train (local SGD only) without crashing.
	sys := core.Config{
		Name:         "silent",
		LearningRate: 0.05,
		NewSelector:  func() grad.Selector { return silentSelector{} },
		Batch:        core.BatchConfig{InitialLBS: 8},
		Sync:         core.SyncConfig{Mode: core.SyncAsync},
	}
	res, err := Run(tinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters[0] < 5 {
		t.Fatal("silent system should still iterate")
	}
}

type silentSelector struct{}

func (silentSelector) Name() string { return "silent" }
func (silentSelector) Select(int, []*nn.Param, int) []*grad.Selection {
	return nil
}

func TestEnvIntegration(t *testing.T) {
	// One end-to-end pass over a real Table 3 environment.
	e := env.MustGet("Hetero CPU A", 3)
	dc := data.CIFAR10Config(0.02, 11)
	res, err := Run(Config{
		System:   systems.DLion(),
		Model:    nn.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0),
		Data:     dc,
		N:        e.N,
		Computes: e.Computes,
		Network:  e.Network,
		Horizon:  100,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// dynamic batching must give the 24-core workers bigger batches than
	// the 6-core ones; verify via samples processed
	if res.Stats[0].SamplesProcessed <= res.Stats[5].SamplesProcessed {
		t.Fatalf("big worker processed %d <= small worker %d",
			res.Stats[0].SamplesProcessed, res.Stats[5].SamplesProcessed)
	}
}
