// Package cluster is the simulation driver: it assembles a micro-cloud (n
// workers with compute capacity schedules, a network, a dataset, a model
// spec, and a system configuration), runs it on the discrete-event engine,
// and collects the evaluation timelines, traces, and counters the paper's
// figures are built from.
package cluster

import (
	"fmt"
	"time"

	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/fault"
	"dlion/internal/metrics"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/simclock"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
	"dlion/internal/tensor"
	"dlion/internal/wire"
)

// Config describes one experiment run.
type Config struct {
	System core.Config
	Model  nn.Spec
	Data   data.Config

	N        int
	Computes []*simcompute.Compute // per-worker compute, len N
	Network  *simnet.Network       // n-worker mesh

	Horizon     float64 // virtual seconds to simulate
	EvalPeriod  float64 // seconds between accuracy evaluations (default 50)
	EvalSubset  int     // test samples used per evaluation (default 256)
	EvalBatch   int     // forward batch for evaluation (default 64)
	TracePeriod float64 // seconds between trace samples; 0 disables traces

	// Faults schedules injected failures — worker crash/restart, link
	// partitions, packet loss, delay, corruption — over virtual time. Nil
	// runs fault-free. Crashed workers are restored from the schedule's
	// periodic checkpoints and re-synced from the freshest live peer.
	//
	// Faults.Joins/Leaves drive elastic membership: a worker with a Join
	// entry stays dormant (excluded from the founding roster) until its
	// join time, when the driver runs the admission handshake toward its
	// sponsor (or the freshest active member when Sponsor < 0); a Leave
	// entry makes the worker depart gracefully at its time.
	Faults *fault.Schedule

	// Observe attaches a per-worker observability sink (internal/obs) and
	// charges the virtual-time phase breakdown — compute, serialize, send,
	// recv-wait — as the run executes. Off by default: the instrumentation
	// points then see nil sinks and cost one branch each (see METRICS.md).
	Observe bool

	// PerWorker, when non-nil, rewrites worker id's core config before
	// construction — heterogeneous experiments (mixed quantization accept
	// masks, per-worker batch policy) without one Config per worker. It runs
	// after the driver's own membership rewrites, so it sees (and may
	// override) the final config.
	PerWorker func(id int, c core.Config) core.Config

	Seed uint64
}

// Trace is one sample of internal controller state (Figures 6, 8, 19, 20).
type Trace struct {
	T        float64
	GBS      int
	LBS      []int          // per worker
	SelCount map[[2]int]int // gradient values last sent on link [from,to]
	Budget   map[[2]int]int // byte budget last used on link [from,to]
}

// Result aggregates everything a run produced.
type Result struct {
	System   string
	Timeline metrics.Timeline
	Stats    []core.Stats
	Iters    []int64
	Traces   []Trace

	// TotalBytes is the sum of bytes actually delivered to live workers
	// (network-model scaled), for communication-volume comparisons.
	// Messages dropped by partitions, loss, corruption, dead links, or
	// crashed receivers are not counted.
	TotalBytes int64

	// Faults snapshots the fault-injection counters (zero when no schedule
	// was configured).
	Faults fault.Stats

	// Obs holds one phase/transfer breakdown per worker when Config.Observe
	// was set (nil otherwise). The records follow the METRICS.md schema and
	// drop straight into an obs.Report's workers section.
	Obs []obs.WorkerReport

	// Models exposes the final model replicas (inspection and tests).
	Models []*nn.Model

	// Membership is each worker's roster mutation history (always present;
	// static runs log one seed entry). States and Rosters are the final
	// membership state and roster per worker. The testkit churn gate
	// asserts exact gradient-fanout renormalization over these logs.
	Membership [][]core.EpochChange
	States     []core.MemberState
	Rosters    [][]int

	// Events is the number of DES events the engine executed — the
	// numerator of the sim-throughput benchmark (events per wall second).
	Events uint64

	// EventsPerSec is Events divided by the wall-clock seconds the event
	// loop ran — the run's simulation throughput. The same figure is
	// published on the sim.events_per_sec gauge (see AttachSimMetrics).
	EventsPerSec float64
}

// simEventsPerSec is the process-wide DES throughput gauge: the most recent
// run's events per wall second (Result.EventsPerSec, truncated). Exposed as
// sim.events_per_sec via AttachSimMetrics; see METRICS.md.
var simEventsPerSec obs.Gauge

// AttachSimMetrics registers the simulation driver's gauges on reg:
//
//	sim.events_per_sec  DES events executed per wall-clock second (last run)
func AttachSimMetrics(reg *obs.Registry) {
	reg.AttachGauge("sim.events_per_sec", &simEventsPerSec)
}

func (c *Config) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("cluster: need >= 2 workers, got %d", c.N)
	case len(c.Computes) != c.N:
		return fmt.Errorf("cluster: %d computes for %d workers", len(c.Computes), c.N)
	case c.Network == nil || c.Network.Size() != c.N:
		return fmt.Errorf("cluster: network size mismatch")
	case c.Horizon <= 0:
		return fmt.Errorf("cluster: horizon %v", c.Horizon)
	}
	if c.Faults != nil && len(c.Faults.Joins) >= c.N {
		return fmt.Errorf("cluster: all %d workers join; no founders", c.N)
	}
	return c.Faults.Validate(c.N)
}

func (c Config) withDefaults() Config {
	if c.EvalPeriod == 0 {
		c.EvalPeriod = 50
	}
	if c.EvalSubset == 0 {
		c.EvalSubset = 256
	}
	if c.EvalBatch == 0 {
		c.EvalBatch = 64
	}
	return c
}

// simEnv implements core.Env over the simulation substrates.
type simEnv struct {
	eng       *simclock.Engine
	net       *simnet.Network
	computes  []*simcompute.Compute
	workers   []*core.Worker
	inj       *fault.Injector
	wireScale float64
	egress    []float64 // per worker: time its NIC is busy until
	sentBytes int64
	ckpts     [][]byte         // latest checkpoint per worker (crash recovery)
	obs       []*obs.WorkerObs // per-worker sinks; nil when Observe is off
	delivFree []*delivery      // retired delivery events for reuse
}

// delivery is a pooled message-arrival event. Send used to schedule a
// closure per message — the dominant steady-state allocation of the event
// loop at large n. A delivery is taken from the env's free list, scheduled
// via Engine.AtHandler (no closure), and returns itself to the free list
// after firing. The simulation is single-threaded, so the free list needs
// no locking; recursion is safe because Fire re-pools itself only after
// HandleMessage (and any Sends it triggers) returns.
type delivery struct {
	env   *simEnv
	to    int
	bytes float64
	m     *wire.Message
}

// Fire implements simclock.Handler: the message arrives at worker `to`.
func (d *delivery) Fire() {
	e := d.env
	if e.workers[d.to].Stopped() {
		e.inj.DeadDrop()
	} else {
		e.sentBytes += int64(d.bytes)
		e.workers[d.to].HandleMessage(d.m)
	}
	d.m = nil
	e.delivFree = append(e.delivFree, d)
}

// newDelivery takes a delivery event from the free list or allocates one.
func (e *simEnv) newDelivery(to int, bytes float64, m *wire.Message) *delivery {
	if n := len(e.delivFree); n > 0 {
		d := e.delivFree[n-1]
		e.delivFree[n-1] = nil
		e.delivFree = e.delivFree[:n-1]
		d.to, d.bytes, d.m = to, bytes, m
		return d
	}
	return &delivery{env: e, to: to, bytes: bytes, m: m}
}

func (e *simEnv) SendScale() float64           { return e.wireScale }
func (e *simEnv) Now() float64                 { return e.eng.Now() }
func (e *simEnv) After(d float64, fn func())   { e.eng.After(d, fn) }
func (e *simEnv) NumWorkers() int              { return len(e.computes) }
func (e *simEnv) IterSeconds(w, b int) float64 { return e.computes[w].IterTime(b, e.eng.Now()) }

func (e *simEnv) ProfileCompute(w int, batches []int) (x, y []float64) {
	return e.computes[w].Profile(batches, e.eng.Now())
}

func (e *simEnv) Bandwidth(from, to int) float64 {
	bw, err := e.net.BandwidthAt(from, to, e.eng.Now())
	if err != nil {
		return 0
	}
	return bw
}

// Send models a store-and-forward transfer: data-plane messages (gradients
// and weights) are scaled to the paper's model wire size, serialized on the
// sender's egress link (shared across its peers, which is what makes
// all-to-all full-gradient exchange expensive), and delivered after
// serialization plus half the RTT plus any injected delay.
//
// Failure semantics: an unconnected or zero-bandwidth link, or an injected
// partition, drops the message before it consumes egress time (the NIC
// fails fast). Injected loss and corruption drop it after serialization —
// the bytes crossed the sender's egress and died in the WAN or at the
// receiver's integrity check. TotalBytes counts only messages actually
// delivered to a live worker.
func (e *simEnv) Send(from, to int, m *wire.Message) {
	bytes := float64(m.WireBytes())
	if m.Type == wire.TypeGradient || m.Type == wire.TypeWeights {
		bytes *= e.wireScale
	}
	now := e.eng.Now()
	start := now
	if e.egress[from] > start {
		start = e.egress[from]
	}
	// One link lookup serves both the bandwidth sample and the RTT; the old
	// path resolved the link twice per message.
	l, err := e.net.Link(from, to)
	if err != nil {
		return // unconnected link: behaves as a partition
	}
	bw := l.Bandwidth.At(start)
	if bw <= 0 {
		return // dead link: behaves as a partition
	}
	v := e.inj.Message(from, to, now)
	if v.Partitioned {
		return
	}
	ser := bytes * 8 / (bw * 1e6)
	e.egress[from] = start + ser
	if e.obs != nil {
		// Virtual-time phase charges: egress serialization (including any
		// wait for the shared NIC) and in-flight propagation.
		e.obs[from].AddPhase(obs.PhaseSerialize, start+ser-now)
	}
	if !v.Deliver {
		return // lost or corrupted in flight: egress was spent, nothing arrives
	}
	arrival := start + ser + l.RTT/2 + v.ExtraDelay
	if e.obs != nil {
		e.obs[from].AddPhase(obs.PhaseSend, arrival-(start+ser))
	}
	e.eng.AtHandler(arrival, e.newDelivery(to, bytes, m))
}

// Run executes one experiment and returns its results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	train, test, err := data.Generate(cfg.Data)
	if err != nil {
		return nil, err
	}
	shards, err := data.Partition(train, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	evalSet := test.Head(cfg.EvalSubset)

	env := &simEnv{
		eng:      simclock.New(),
		net:      cfg.Network,
		computes: cfg.Computes,
		inj:      fault.NewInjector(cfg.Faults),
		egress:   make([]float64, cfg.N),
	}
	models := make([]*nn.Model, cfg.N)
	spec := cfg.Model
	spec.Seed = cfg.Seed + 1000 // all replicas share this seed: identical init
	for i := range models {
		models[i] = spec.Build()
	}
	env.wireScale = float64(spec.ExchangeBytes()) / float64(models[0].SizeBytes())
	if env.wireScale < 1 {
		env.wireScale = 1
	}

	env.workers = make([]*core.Worker, cfg.N)
	if cfg.Observe {
		env.obs = make([]*obs.WorkerObs, cfg.N)
		for i := range env.obs {
			env.obs[i] = obs.NewWorkerObs()
		}
	}
	// Workers with a Join entry stay dormant: they are excluded from the
	// founding roster and admitted via the handshake at their join time.
	joiners := map[int]bool{}
	if cfg.Faults != nil {
		for _, j := range cfg.Faults.Joins {
			joiners[j.Worker] = true
		}
	}
	var founders []int
	if len(joiners) > 0 {
		for i := 0; i < cfg.N; i++ {
			if !joiners[i] {
				founders = append(founders, i)
			}
		}
	}
	// Iteration-triggered leaves are a per-worker config knob, not a timer.
	leaveAfter := map[int]int64{}
	if cfg.Faults != nil {
		for _, l := range cfg.Faults.Leaves {
			if l.AfterIters > 0 {
				leaveAfter[l.Worker] = l.AfterIters
			}
		}
	}
	for i := range env.workers {
		wcfg := cfg.System
		if len(joiners) > 0 {
			if joiners[i] {
				wcfg.Membership.Join = true
				wcfg.Membership.Sponsor = -1 // resolved at join time
				wcfg.Membership.InitialMembers = nil
			} else {
				wcfg.Membership.Join = false
				wcfg.Membership.InitialMembers = founders
			}
		}
		if la := leaveAfter[i]; la > 0 {
			wcfg.Membership.LeaveAfterIters = la
		}
		if cfg.PerWorker != nil {
			wcfg = cfg.PerWorker(i, wcfg)
		}
		w, err := core.New(i, wcfg, models[i], shards[i], env)
		if err != nil {
			return nil, err
		}
		if env.obs != nil {
			w.SetObs(env.obs[i])
		}
		env.workers[i] = w
	}

	res := &Result{System: cfg.System.Name}
	// evalBuf holds one slot per replica so evaluation can fan out across
	// goroutines and still merge in worker-id order below.
	type evalSlot struct {
		acc, loss float64
		ok        bool
	}
	evalBuf := make([]evalSlot, cfg.N)
	evaluate := func() {
		// Dormant (not yet admitted) joiners are excluded: their fresh
		// replicas are not part of the federation. Crashed and departed
		// workers keep contributing their frozen models, as before.
		//
		// The forward passes are read-only on independent replicas, so they
		// run concurrently (tensor.ParallelReplicas); each pass is itself
		// bit-identical at any kernel worker count, and the accs slice and
		// loss sum are merged serially in worker-id order, so the timeline
		// is byte-for-byte the same as the sequential loop produced.
		for i := range evalBuf {
			evalBuf[i] = evalSlot{}
		}
		tensor.ParallelReplicas(cfg.N, func(i int) {
			if st := env.workers[i].State(); st == core.StateJoining || st == core.StateSyncing {
				return
			}
			a, l := models[i].Evaluate(evalSet, cfg.EvalBatch)
			evalBuf[i] = evalSlot{acc: a, loss: l, ok: true}
		})
		accs := make([]float64, 0, cfg.N)
		var lossSum float64
		for i := range evalBuf {
			if evalBuf[i].ok {
				accs = append(accs, evalBuf[i].acc)
				lossSum += evalBuf[i].loss
			}
		}
		if len(accs) == 0 {
			return
		}
		res.Timeline = append(res.Timeline,
			metrics.NewPoint(env.eng.Now(), accs, lossSum/float64(len(accs))))
	}
	trace := func() {
		res.Traces = append(res.Traces, sampleTrace(env.workers, env.eng.Now()))
	}

	evaluate() // t = 0 baseline point
	env.eng.Every(cfg.EvalPeriod, evaluate, nil)
	if cfg.TracePeriod > 0 {
		env.eng.Every(cfg.TracePeriod, trace, nil)
	}
	scheduleFaults(env, models, spec)
	for i, w := range env.workers {
		if !joiners[i] {
			w.Start()
		}
	}
	wallStart := time.Now()
	env.eng.Run(cfg.Horizon)
	wall := time.Since(wallStart).Seconds()

	// Final state at the horizon.
	if len(res.Timeline) == 0 || res.Timeline[len(res.Timeline)-1].T < cfg.Horizon {
		evaluate()
		res.Timeline[len(res.Timeline)-1].T = cfg.Horizon
	}
	for i, w := range env.workers {
		res.Stats = append(res.Stats, w.Stats())
		res.Iters = append(res.Iters, w.Iter())
		res.Membership = append(res.Membership, w.MembershipLog())
		res.States = append(res.States, w.State())
		res.Rosters = append(res.Rosters, w.Members())
		if env.obs != nil {
			wr := env.obs[i].Snapshot(i)
			wr.Iters = w.Iter()
			res.Obs = append(res.Obs, wr)
		}
	}
	res.TotalBytes = env.sentBytes
	res.Faults = env.inj.Stats()
	res.Models = models
	res.Events = env.eng.Executed()
	if wall > 0 {
		res.EventsPerSec = float64(res.Events) / wall
		simEventsPerSec.Set(int64(res.EventsPerSec))
	}
	return res, nil
}

// sampleTrace captures one Trace of the controllers' internal state. The
// maps and the LBS slice are allocated at exact final size — every ordered
// worker pair (i,j), i != j, gets one entry in each map — so a sample costs
// a fixed small number of allocations and never rehashes mid-fill (pinned
// by BenchmarkTraceSample / TestTraceSampleAllocs).
func sampleTrace(workers []*core.Worker, t float64) Trace {
	n := len(workers)
	nLinks := n * (n - 1)
	tr := Trace{T: t, GBS: workers[0].GBS(),
		LBS:      make([]int, n),
		SelCount: make(map[[2]int]int, nLinks),
		Budget:   make(map[[2]int]int, nLinks)}
	for i, w := range workers {
		tr.LBS[i] = w.LBS()
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			tr.SelCount[[2]int{i, j}] = w.LastSelectedCount(j)
			tr.Budget[[2]int{i, j}] = w.LastBudget(j)
		}
	}
	return tr
}

// scheduleFaults arms the crash/restart timeline and the periodic
// checkpoint loop on the event engine. A crashed worker is Stop()ped (its
// timers die, traffic to it is dropped); at restart its replica is restored
// from the latest checkpoint — or rebuilt from the spec when none exists
// yet — and Resume re-syncs it by pulling a full weight snapshot from the
// freshest live peer (the rejoin path).
func scheduleFaults(env *simEnv, models []*nn.Model, spec nn.Spec) {
	if period := env.inj.CheckpointPeriod(); period > 0 {
		ckpts := make([][]byte, len(models))
		env.eng.Every(period, func() {
			for i, w := range env.workers {
				if !w.Stopped() {
					ckpts[i] = models[i].Checkpoint()
				}
			}
		}, nil)
		env.ckpts = ckpts
	}
	for _, j := range env.inj.Joins() {
		j := j
		env.eng.At(j.At, func() {
			w := env.workers[j.Worker]
			if w.Stopped() || w.State() != core.StateJoining {
				return // crashed while dormant, or already joined
			}
			sponsor := j.Sponsor
			if sponsor < 0 || sponsor == j.Worker ||
				env.workers[sponsor].Stopped() || env.workers[sponsor].State() != core.StateActive {
				sponsor = freshestLivePeer(env.workers, j.Worker)
			}
			if sponsor < 0 {
				// Nobody is alive to sponsor: aim at any peer so the
				// handshake times out into solo training instead of never
				// starting.
				sponsor = (j.Worker + 1) % len(env.workers)
			}
			env.inj.JoinExecuted()
			w.StartJoin(sponsor)
		})
	}
	for _, l := range env.inj.Leaves() {
		l := l
		if l.AfterIters > 0 {
			continue // configured on the worker itself (step-exact trigger)
		}
		env.eng.At(l.At, func() {
			w := env.workers[l.Worker]
			if w.Stopped() || w.State() != core.StateActive {
				return // already crashed, left, or never admitted
			}
			w.Leave()
			env.inj.LeaveExecuted()
		})
	}
	for _, cr := range env.inj.Crashes() {
		cr := cr
		env.eng.At(cr.At, func() {
			w := env.workers[cr.Worker]
			if w.Stopped() {
				return
			}
			w.Stop()
			env.inj.CrashExecuted()
			if cr.RestartAfter <= 0 {
				return
			}
			env.eng.After(cr.RestartAfter, func() {
				if env.ckpts != nil && env.ckpts[cr.Worker] != nil {
					// ignore restore errors: same spec produced the
					// checkpoint, so they cannot occur
					_ = models[cr.Worker].Restore(env.ckpts[cr.Worker])
				} else {
					// no checkpoint yet: cold restart from a fresh replica
					_ = models[cr.Worker].CopyWeightsFrom(spec.Build())
				}
				env.inj.RestartExecuted()
				w.Resume(freshestLivePeer(env.workers, cr.Worker))
			})
		})
	}
}

// freshestLivePeer returns the running active member (other than self)
// with the most completed iterations, or -1 when none is alive. Dormant
// joiners are not members yet and cannot serve as rejoin sources or
// admission sponsors.
func freshestLivePeer(workers []*core.Worker, self int) int {
	best, bestIter := -1, int64(-1)
	for i, w := range workers {
		if i == self || w.Stopped() || w.State() != core.StateActive {
			continue
		}
		if w.Iter() > bestIter {
			best, bestIter = i, w.Iter()
		}
	}
	return best
}

// RunUntilConverged repeatedly extends the horizon until the accuracy
// timeline plateaus (Figure 21's "train until fully converged") or maxTime
// is hit, returning the result of the final run plus the convergence time.
func RunUntilConverged(cfg Config, window int, eps, maxTime float64) (*Result, float64, error) {
	cfg = cfg.withDefaults()
	horizon := cfg.Horizon
	for {
		c := cfg
		c.Horizon = horizon
		res, err := Run(c)
		if err != nil {
			return nil, 0, err
		}
		if res.Timeline.Converged(window, eps) || horizon >= maxTime {
			// convergence time: first point within eps of the final accuracy
			final := res.Timeline.FinalMean()
			for _, p := range res.Timeline {
				if p.Mean >= final-eps {
					return res, p.T, nil
				}
			}
			return res, horizon, nil
		}
		horizon *= 2
	}
}
