package testkit

import (
	"testing"

	"dlion/internal/nn"
	"dlion/internal/stats"
	"dlion/internal/tensor"
)

// randInput builds a (batch, ch, h, w) tensor of unit normals and matching
// random labels.
func randInput(seed uint64, batch, ch, h, w, classes int) (*tensor.Tensor, []int) {
	rng := stats.NewRNG(seed)
	x := tensor.New(batch, ch, h, w)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return x, labels
}

// TestGradCheckLayers covers every layer type in internal/nn with a small
// model built around it: analytic backprop must match central finite
// differences of the loss for both weight and input gradients.
func TestGradCheckLayers(t *testing.T) {
	const classes = 3
	cases := []struct {
		name  string
		ch    int // input channels
		h, w  int
		build func(rng *stats.RNG) []nn.Layer
	}{
		{"dense", 1, 4, 4, func(rng *stats.RNG) []nn.Layer {
			return []nn.Layer{nn.NewFlatten("f"), nn.NewDense("fc", 16, classes, rng)}
		}},
		{"dense-relu-dense", 1, 4, 4, func(rng *stats.RNG) []nn.Layer {
			return []nn.Layer{nn.NewFlatten("f"),
				nn.NewDense("fc1", 16, 10, rng), nn.NewReLU("r"),
				nn.NewDense("fc2", 10, classes, rng)}
		}},
		{"conv-pad", 2, 5, 5, func(rng *stats.RNG) []nn.Layer {
			return []nn.Layer{nn.NewConv2D("c", 2, 4, 3, 1, 1, rng),
				nn.NewFlatten("f"), nn.NewDense("fc", 4*5*5, classes, rng)}
		}},
		{"conv-stride2-nopad", 1, 7, 7, func(rng *stats.RNG) []nn.Layer {
			return []nn.Layer{nn.NewConv2D("c", 1, 3, 3, 2, 0, rng),
				nn.NewFlatten("f"), nn.NewDense("fc", 3*3*3, classes, rng)}
		}},
		{"depthwise", 3, 5, 5, func(rng *stats.RNG) []nn.Layer {
			return []nn.Layer{nn.NewDepthwiseConv2D("dw", 3, 3, 1, 1, rng),
				nn.NewFlatten("f"), nn.NewDense("fc", 3*5*5, classes, rng)}
		}},
		{"maxpool", 1, 6, 6, func(rng *stats.RNG) []nn.Layer {
			return []nn.Layer{nn.NewConv2D("c", 1, 4, 3, 1, 1, rng),
				nn.NewMaxPool2("p"), nn.NewFlatten("f"),
				nn.NewDense("fc", 4*3*3, classes, rng)}
		}},
		{"globalavgpool", 2, 6, 6, func(rng *stats.RNG) []nn.Layer {
			return []nn.Layer{nn.NewConv2D("c", 2, 5, 3, 1, 1, rng),
				nn.NewGlobalAvgPool("gap"), nn.NewDense("fc", 5, classes, rng)}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := stats.NewRNG(11)
			m := nn.NewModel(tc.name, tc.build(rng)...)
			x, labels := randInput(23, 4, tc.ch, tc.h, tc.w, classes)
			if err := GradCheck(m, x, labels, GradCheckOpts{}); err != nil {
				t.Fatal(err)
			}
			if err := GradCheckInput(m, x, labels, GradCheckOpts{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGradCheckFullModels runs the check on the two evaluation models the
// paper uses, exactly as the cluster builds them.
func TestGradCheckFullModels(t *testing.T) {
	t.Run("cipher", func(t *testing.T) {
		m := nn.CipherSpec(1, 8, 8, 3, 31).Build()
		x, labels := randInput(7, 4, 1, 8, 8, 3)
		if err := GradCheck(m, x, labels, GradCheckOpts{MaxPerParam: 8}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("mobilenet-lite", func(t *testing.T) {
		if testing.Short() {
			t.Skip("short mode: MobileNetLite gradcheck is the slow one")
		}
		m := nn.MobileNetLiteSpec(3, 16, 16, 3, 31).Build()
		x, labels := randInput(7, 2, 3, 16, 16, 3)
		// Through 18 float32 layers the loss is a staircase at fine scales
		// and ReLU kinks are dense in every perturbation direction, so no
		// step size yields a clean numeric derivative; the sharp per-layer
		// tolerances live in TestGradCheckLayers and this full-depth pass
		// is a looser end-to-end sanity gate.
		opts := GradCheckOpts{MaxPerParam: 4, AbsTol: 6e-3, RelTol: 0.1}
		if err := GradCheck(m, x, labels, opts); err != nil {
			t.Fatal(err)
		}
	})
}

// brokenDense silently corrupts its weight gradients after a correct
// backward pass — the kind of bug gradcheck exists to catch.
type brokenDense struct{ *nn.Dense }

func (b brokenDense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := b.Dense.Backward(dout)
	for _, p := range b.Dense.Params() {
		for i := range p.G.Data {
			p.G.Data[i] *= 1.5
		}
	}
	return dx
}

func TestGradCheckCatchesBrokenBackward(t *testing.T) {
	rng := stats.NewRNG(3)
	m := nn.NewModel("broken", nn.NewFlatten("f"),
		brokenDense{nn.NewDense("fc", 16, 3, rng)})
	x, labels := randInput(5, 4, 1, 4, 4, 3)
	if err := GradCheck(m, x, labels, GradCheckOpts{}); err == nil {
		t.Fatal("gradcheck accepted a 1.5x-scaled gradient")
	}
}

func TestGradCheckRestoresWeights(t *testing.T) {
	rng := stats.NewRNG(5)
	m := nn.NewModel("restore", nn.NewFlatten("f"), nn.NewDense("fc", 16, 3, rng))
	before := DigestModel(m)
	x, labels := randInput(9, 4, 1, 4, 4, 3)
	if err := GradCheck(m, x, labels, GradCheckOpts{}); err != nil {
		t.Fatal(err)
	}
	if !EqualDigests(before, DigestModel(m)) {
		t.Fatal("gradcheck perturbed the weights it promised to restore")
	}
}
