package testkit

import (
	"context"
	"testing"
	"time"

	"dlion/internal/grad"
)

// budget scales wall-clock allowances for the race detector's slowdown.
func budget(d time.Duration) time.Duration {
	if raceEnabled {
		return d * 6
	}
	return d
}

// TestSimDeterminism: the discrete-event simulator must be bit-reproducible
// — two runs of the same seeded workload yield identical per-variable
// weight hashes on every worker.
func TestSimDeterminism(t *testing.T) {
	cfg := EquivalenceConfig{N: 2, Steps: 10, Seed: 42}
	a, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights {
		if !EqualDigests(DigestWeights(a.Weights[i]), DigestWeights(b.Weights[i])) {
			t.Fatalf("worker %d: repeated sim runs diverged bitwise", i)
		}
	}
}

// TestSimRealtimeEquivalence trains the same seeded Cipher workload on the
// simulator and over the in-proc broker and requires the final weights to
// agree per variable: bit-identical when no float32 reordering occurred,
// tolerance-bounded otherwise. SyncFull + fixed batching pins the gradient
// sequence, so the structural counters must match exactly on both
// substrates — that part has zero tolerance.
func TestSimRealtimeEquivalence(t *testing.T) {
	const steps = 24
	cases := []struct {
		name           string
		n              int
		sparse         bool
		absTol, relTol float64
	}{
		// Dense exchange applies identical gradient sets on both
		// substrates; only apply order differs. At 2 workers there is one
		// ordering per step and drift stays rounding-scale; at 4 workers
		// the per-step reorderings compound chaotically through 24
		// nonlinear training steps (observed max |Δ| ≈ 0.05 over repeated
		// runs; the floor leaves ~2x headroom).
		{"dense-2w", 2, false, 5e-3, 5e-2},
		{"dense-4w", 4, false, 1e-1, 1e-1},
		// Sparse Max-N selection thresholds can flip on order-induced
		// drift, so the bound is looser (observed max |Δ| ≈ 0.027 over
		// repeated runs; the floor leaves ~2x headroom).
		{"sparse-2w", 2, true, 2e-2, 1e-1},
		{"sparse-4w", 4, true, 5e-2, 1e-1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := EquivalenceConfig{N: tc.n, Steps: steps, Seed: 7, Sparse: tc.sparse}
			sim, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), budget(60*time.Second))
			defer cancel()
			rt, err := RunRealtime(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}

			wantMsgs := int64(tc.n-1) * steps
			for i := 0; i < tc.n; i++ {
				if sim.Iters[i] != steps || rt.Iters[i] != steps {
					t.Fatalf("worker %d: iterations sim=%d realtime=%d, want %d",
						i, sim.Iters[i], rt.Iters[i], steps)
				}
				if sim.Stats[i].MsgsRecvd != wantMsgs || rt.Stats[i].MsgsRecvd != wantMsgs {
					t.Fatalf("worker %d: msgs recvd sim=%d realtime=%d, want %d",
						i, sim.Stats[i].MsgsRecvd, rt.Stats[i].MsgsRecvd, wantMsgs)
				}
				if EqualDigests(DigestWeights(sim.Weights[i]), DigestWeights(rt.Weights[i])) {
					continue // bit-identical, the strongest outcome
				}
				if err := CompareWeights(sim.Weights[i], rt.Weights[i], tc.absTol, tc.relTol); err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
				t.Logf("worker %d: tolerance-bounded agreement, max |Δ| = %.3g",
					i, MaxAbsDiff(sim.Weights[i], rt.Weights[i]))
			}
		})
	}
}

// TestSimRealtimeEquivalenceQuantized reruns the equivalence gate with int8
// wire precision on every link. Quantization is deterministic per gradient,
// so both substrates dequantize the identical code stream wherever apply
// order hasn't drifted the inputs; where it has, individual codes can flip by
// one step — the same failure shape as sparse Max-N threshold flips, hence
// the same tolerance family. The byte-savings counter is a pure function of
// the (pinned) gradient schedule, so it must agree exactly across substrates
// and be nonzero — proving the quantized path actually carried the traffic.
func TestSimRealtimeEquivalenceQuantized(t *testing.T) {
	const steps = 24
	cases := []struct {
		name           string
		n              int
		absTol, relTol float64
	}{
		// Quantization amplifies cross-substrate drift: rounding-scale
		// differences in float addition order can flip an int8 code at a
		// round-half boundary, turning an O(1e-7) divergence into an
		// O(scale) one that then compounds over remaining steps. Observed
		// max |Δ| ≈ 4e-6 (2w) / 8e-2 (4w) over repeated runs; floors
		// leave ~2x headroom. The byte-savings counters above are the
		// exact gate; weights agreement is tolerance-bounded.
		{"i8-2w", 2, 2e-2, 1e-1},
		{"i8-4w", 4, 1.5e-1, 1e-1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := EquivalenceConfig{N: tc.n, Steps: steps, Seed: 7, Quant: grad.PrecI8}
			sim, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), budget(60*time.Second))
			defer cancel()
			rt, err := RunRealtime(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}

			for i := 0; i < tc.n; i++ {
				simSaved := sim.Stats[i].QuantBytesSaved
				rtSaved := rt.Stats[i].QuantBytesSaved
				if simSaved == 0 || simSaved != rtSaved {
					t.Fatalf("worker %d: quant bytes saved sim=%d realtime=%d, want equal and > 0",
						i, simSaved, rtSaved)
				}
				if EqualDigests(DigestWeights(sim.Weights[i]), DigestWeights(rt.Weights[i])) {
					continue
				}
				if err := CompareWeights(sim.Weights[i], rt.Weights[i], tc.absTol, tc.relTol); err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
				t.Logf("worker %d: tolerance-bounded agreement, max |Δ| = %.3g",
					i, MaxAbsDiff(sim.Weights[i], rt.Weights[i]))
			}
		})
	}
}

// TestMixedPrecisionPeers runs three workers that each send at a different
// wire precision (int8, f16, f32) — the interop workload for epoch-safe
// mixed-precision clusters. Every worker must finish the full budget on both
// substrates, the quantizing senders must report byte savings (and the f32
// sender none), and the final weights must agree across substrates within
// the quantized-exchange tolerance.
func TestMixedPrecisionPeers(t *testing.T) {
	const steps = 24
	cfg := EquivalenceConfig{
		N: 3, Steps: steps, Seed: 11,
		QuantMix: []grad.Precision{grad.PrecI8, grad.PrecF16, grad.PrecF32},
	}
	sim, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget(60*time.Second))
	defer cancel()
	rt, err := RunRealtime(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < cfg.N; i++ {
		simSaved := sim.Stats[i].QuantBytesSaved
		rtSaved := rt.Stats[i].QuantBytesSaved
		if simSaved != rtSaved {
			t.Fatalf("worker %d: quant bytes saved sim=%d realtime=%d, want equal", i, simSaved, rtSaved)
		}
		quantizes := cfg.QuantMix[i] != grad.PrecF32
		if quantizes && simSaved == 0 {
			t.Fatalf("worker %d sends %v but saved no bytes", i, cfg.QuantMix[i])
		}
		if !quantizes && simSaved != 0 {
			t.Fatalf("worker %d sends f32 but reports %d bytes saved", i, simSaved)
		}
		if EqualDigests(DigestWeights(sim.Weights[i]), DigestWeights(rt.Weights[i])) {
			continue
		}
		// Same code-flip amplification argument (and tolerance) as the
		// quantized equivalence cases above; observed max |Δ| ≈ 8e-2.
		if err := CompareWeights(sim.Weights[i], rt.Weights[i], 1.5e-1, 1e-1); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		t.Logf("worker %d: tolerance-bounded agreement, max |Δ| = %.3g",
			i, MaxAbsDiff(sim.Weights[i], rt.Weights[i]))
	}
}
