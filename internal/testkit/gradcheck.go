package testkit

import (
	"fmt"
	"math"
	"sort"

	"dlion/internal/nn"
	"dlion/internal/stats"
	"dlion/internal/tensor"
)

// GradCheckOpts tunes the finite-difference gradient check. The defaults
// are calibrated for float32 forward passes: the loss is accumulated in
// float64 but each activation is float32, so the numerical derivative
// carries roundoff noise of roughly eps_f32/h ≈ 1e-7/5e-3 ≈ 2e-5 plus a
// truncation error of O(h²). Tighter settings produce false alarms on
// perfectly correct layers.
type GradCheckOpts struct {
	Eps         float64 // central-difference step (default 5e-3)
	RelTol      float64 // relative tolerance (default 2e-2)
	AbsTol      float64 // absolute tolerance floor (default 1e-3)
	MaxPerParam int     // sampled indices per variable (default 12; <0 checks all)
	Seed        uint64  // index-sampling seed (default 1)
}

func (o GradCheckOpts) withDefaults() GradCheckOpts {
	if o.Eps == 0 {
		o.Eps = 5e-3
	}
	if o.RelTol == 0 {
		o.RelTol = 2e-2
	}
	if o.AbsTol == 0 {
		o.AbsTol = 1e-3
	}
	if o.MaxPerParam == 0 {
		o.MaxPerParam = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// GradCheck validates the model's analytic parameter gradients against
// central finite differences of the softmax cross-entropy loss on the
// given batch. For each variable it samples up to MaxPerParam indices,
// perturbs the weight by ±Eps, and requires
//
//	|analytic - numeric| <= AbsTol + RelTol·max(|analytic|, |numeric|).
//
// It returns nil when every sampled index agrees, or an error naming the
// first violation. The model's weights are restored bit-exactly; its
// gradient buffers hold the analytic gradient on return.
func GradCheck(m *nn.Model, x *tensor.Tensor, labels []int, o GradCheckOpts) error {
	o = o.withDefaults()
	lossAt := func() float64 {
		loss, _, _ := nn.SoftmaxCrossEntropy(m.Forward(x), labels)
		return loss
	}

	// Analytic pass: TrainStep leaves the mean batch gradient in each G.
	m.TrainStep(x, labels)
	analytic := make(map[string][]float32, len(m.Params()))
	for _, p := range m.Params() {
		analytic[p.Name] = append([]float32(nil), p.G.Data...)
	}

	rng := stats.NewRNG(o.Seed)
	for _, p := range m.Params() {
		idxs := sampleIndices(rng, len(p.W.Data), o.MaxPerParam)
		for _, i := range idxs {
			ana := float64(analytic[p.Name][i])
			if err := checkIndex(&p.W.Data[i], ana, lossAt, o); err != nil {
				return fmt.Errorf("testkit: gradcheck %s: %s[%d]: %w",
					m.Name(), p.Name, i, err)
			}
		}
	}
	// Leave the analytic gradient in place (TrainStep's contract).
	for _, p := range m.Params() {
		copy(p.G.Data, analytic[p.Name])
	}
	return nil
}

// GradCheckInput validates dL/dx — the gradient each layer's Backward
// propagates to its input — against finite differences on the input
// tensor. This exercises the part of every Backward that GradCheck cannot
// see for the first layer of a stack (input gradients of later layers are
// implicitly covered by earlier layers' weight gradients).
func GradCheckInput(m *nn.Model, x *tensor.Tensor, labels []int, o GradCheckOpts) error {
	o = o.withDefaults()
	forward := func(in *tensor.Tensor) float64 {
		out := in
		for _, l := range m.Layers {
			out = l.Forward(out)
		}
		loss, _, _ := nn.SoftmaxCrossEntropy(out, labels)
		return loss
	}

	// Analytic dL/dx via the full backward chain.
	m.ZeroGrads()
	out := x
	for _, l := range m.Layers {
		out = l.Forward(out)
	}
	_, _, d := nn.SoftmaxCrossEntropy(out, labels)
	for i := len(m.Layers) - 1; i >= 0; i-- {
		d = m.Layers[i].Backward(d)
	}
	if len(d.Data) != len(x.Data) {
		return fmt.Errorf("testkit: gradcheck %s: dL/dx has %d elements, input has %d",
			m.Name(), len(d.Data), len(x.Data))
	}
	dx := append([]float32(nil), d.Data...)

	rng := stats.NewRNG(o.Seed)
	for _, i := range sampleIndices(rng, len(x.Data), o.MaxPerParam) {
		lossAt := func() float64 { return forward(x) }
		if err := checkIndex(&x.Data[i], float64(dx[i]), lossAt, o); err != nil {
			return fmt.Errorf("testkit: gradcheck %s: input[%d]: %w", m.Name(), i, err)
		}
	}
	return nil
}

// checkIndex compares the analytic derivative at one scalar against
// central differences. ReLU kinks and MaxPool argmax ties make the loss
// only piecewise differentiable: a finite step that crosses a kink yields
// a legitimate analytic/numeric gap even when backprop is correct, so a
// mismatch at Eps is retried at Eps/5 and Eps/25 — a kink crossing heals
// as the step shrinks below the distance to the kink, while a genuinely
// wrong gradient fails at every step size.
func checkIndex(w *float32, ana float64, lossAt func() float64, o GradCheckOpts) error {
	var err error
	for _, eps := range []float64{o.Eps, o.Eps / 5, o.Eps / 25} {
		num := centralDiff(w, eps, lossAt)
		if err = gradMismatch(ana, num, o); err == nil {
			return nil
		}
	}
	if atKink(w, o.Eps/5, lossAt, o) {
		// The loss is non-differentiable at this exact point (e.g. a dead
		// unit whose zero-initialized bias sits on the ReLU boundary): the
		// one-sided derivatives disagree, so no finite difference can
		// represent the subgradient backprop legitimately picked. Skip.
		return nil
	}
	return err
}

// atKink reports whether the loss has inconsistent one-sided derivatives
// at the current value of *w — the signature of sitting exactly on a
// non-differentiable point. On smooth ground the forward and backward
// differences agree to O(eps·f″), so a large relative gap between them
// distinguishes a kink-at-the-point from a merely wrong gradient (which
// leaves the two sides consistent with each other).
func atKink(w *float32, eps float64, lossAt func() float64, o GradCheckOpts) bool {
	orig := *w
	f0 := lossAt()
	*w = float32(float64(orig) + eps)
	fp := lossAt()
	*w = float32(float64(orig) - eps)
	fm := lossAt()
	*w = orig
	dPlus := (fp - f0) / eps
	dMinus := (f0 - fm) / eps
	gap := math.Abs(dPlus - dMinus)
	return gap > o.AbsTol && gap > 0.5*math.Max(math.Abs(dPlus), math.Abs(dMinus))
}

// centralDiff evaluates (f(w+eps) - f(w-eps)) / 2eps, restoring *w to its
// exact original bits.
func centralDiff(w *float32, eps float64, f func() float64) float64 {
	orig := *w
	*w = float32(float64(orig) + eps)
	plus := f()
	*w = float32(float64(orig) - eps)
	minus := f()
	*w = orig
	return (plus - minus) / (2 * eps)
}

func gradMismatch(ana, num float64, o GradCheckOpts) error {
	diff := math.Abs(ana - num)
	tol := o.AbsTol + o.RelTol*math.Max(math.Abs(ana), math.Abs(num))
	if diff <= tol && !math.IsNaN(diff) {
		return nil
	}
	return fmt.Errorf("analytic %.6g vs numeric %.6g (|Δ|=%.3g > tol %.3g)",
		ana, num, diff, tol)
}

// sampleIndices returns up to max distinct indices from [0,n), sorted. A
// non-positive max (after defaulting) or max >= n checks every index.
func sampleIndices(rng *stats.RNG, n, max int) []int {
	if max < 0 || max >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := make(map[int]bool, max)
	out := make([]int, 0, max)
	for len(out) < max {
		i := rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
