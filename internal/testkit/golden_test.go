package testkit

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"dlion/internal/cluster"
	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/nn"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
	"dlion/internal/systems"
	"dlion/internal/tensor"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden/*.json from the current code instead of comparing")

const goldenSeed = 17

// goldenRun executes the small, fully seeded sim workload a snapshot
// gates: 3 heterogeneous workers on the Cipher task, evaluated every 12
// virtual seconds over a 36-second horizon. Kernels run in
// deterministic-reduction mode so the result is bit-reproducible.
func goldenRun(t *testing.T, sys core.Config) Golden {
	return goldenRunN(t, sys, 3)
}

// goldenRunN is goldenRun at an arbitrary worker count: the heterogeneous
// capacity pattern repeats past four workers.
func goldenRunN(t *testing.T, sys core.Config, n int) Golden {
	t.Helper()
	defer tensor.SetDeterministic(tensor.SetDeterministic(true))
	computes := make([]*simcompute.Compute, n)
	for i := range computes {
		// Mild heterogeneity so the dynamic systems have something to react to.
		cap := []float64{12, 9, 15, 11}[i%4]
		computes[i] = simcompute.New(simcompute.Constant(cap),
			simcompute.CostModel{Overhead: 0.05, PerSample: 0.5}, uint64(i))
	}
	res, err := cluster.Run(cluster.Config{
		System: sys,
		Model:  nn.CipherSpec(1, 8, 8, 3, 0),
		Data: data.Config{Name: "golden", NumClasses: 3, Train: 240, Test: 60,
			Channels: 1, Height: 8, Width: 8, Noise: 0.35, Jitter: 0, Bumps: 3,
			Seed: goldenSeed},
		N:          n,
		Computes:   computes,
		Network:    simnet.Uniform(n, simcompute.Constant(200), 0.001),
		Horizon:    36,
		EvalPeriod: 12,
		EvalSubset: 60,
		EvalBatch:  30,
		Seed:       goldenSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return GoldenFromResult(sys.Name, goldenSeed, res)
}

// TestGoldenConvergence gates two representative systems — the dense
// synchronous Baseline and the full DLion stack — against committed
// convergence snapshots. Regenerate deliberately with
//
//	go test ./internal/testkit -run Golden -update-golden
//
// and review the JSON diff like any other code change (see TESTING.md).
func TestGoldenConvergence(t *testing.T) {
	cases := []struct {
		name string
		sys  core.Config
	}{
		{"baseline", systems.Baseline()},
		{"dlion", systems.DLion()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := goldenRun(t, tc.sys)
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := SaveGolden(path, got); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d points, final acc %.3f)",
					path, len(got.Points), got.Points[len(got.Points)-1].Acc)
				return
			}
			want, err := LoadGolden(path)
			if errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("missing %s; regenerate with -update-golden", path)
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := CompareGolden(want, got, GoldenTol{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGoldenQuantConvergence gates the quantized exchange: DLion with every
// link forced to int8 wire precision, at 2 and 4 workers, against committed
// convergence snapshots. A change to the quantizer (rounding, scale
// selection, code layout) that alters what peers learn from each other shows
// up here as a snapshot diff rather than a silent accuracy drift.
// Regenerate like any golden: -update-golden, review the JSON diff.
func TestGoldenQuantConvergence(t *testing.T) {
	for _, n := range []int{2, 4} {
		n := n
		t.Run(fmt.Sprintf("quant-i8-%dw", n), func(t *testing.T) {
			sys, err := systems.WithQuant(systems.DLion(), "i8")
			if err != nil {
				t.Fatal(err)
			}
			got := goldenRunN(t, sys, n)
			path := filepath.Join("testdata", "golden", fmt.Sprintf("quant-i8-%dw.json", n))
			if *updateGolden {
				if err := SaveGolden(path, got); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d points, final acc %.3f)",
					path, len(got.Points), got.Points[len(got.Points)-1].Acc)
				return
			}
			want, err := LoadGolden(path)
			if errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("missing %s; regenerate with -update-golden", path)
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := CompareGolden(want, got, GoldenTol{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGoldenSanity validates that the committed snapshots describe runs
// that actually learned something — a regenerated-by-accident empty or
// degenerate snapshot should not silently pass the gate.
func TestGoldenSanity(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "golden", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no golden snapshots found (err=%v); run -update-golden", err)
	}
	for _, p := range paths {
		g, err := LoadGolden(p)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(p), ".json")
		if len(g.Points) < 2 || len(g.Iters) == 0 {
			t.Fatalf("%s: degenerate snapshot: %d points, %d workers",
				name, len(g.Points), len(g.Iters))
		}
		final := g.Points[len(g.Points)-1]
		if final.Acc < 0.5 {
			t.Errorf("%s: final accuracy %.3f — snapshot of a run that never learned", name, final.Acc)
		}
		for i, it := range g.Iters {
			if it < 5 {
				t.Errorf("%s: worker %d only %d iterations", name, i, it)
			}
		}
	}
}

// TestCompareGoldenRejects exercises the gate's failure modes directly.
func TestCompareGoldenRejects(t *testing.T) {
	base := Golden{System: "s", Seed: 1, Iters: []int64{100, 100},
		Points: []GoldenPoint{{T: 10, Acc: 0.5, Loss: 1.0}, {T: 20, Acc: 0.8, Loss: 0.5}}}
	cases := map[string]func(g *Golden){
		"acc drift":     func(g *Golden) { g.Points[1].Acc -= 0.2 },
		"loss drift":    func(g *Golden) { g.Points[0].Loss += 0.5 },
		"iter drift":    func(g *Golden) { g.Iters[1] = 80 },
		"fewer points":  func(g *Golden) { g.Points = g.Points[:1] },
		"shifted sched": func(g *Golden) { g.Points[0].T = 11 },
		"nan loss":      func(g *Golden) { g.Points[1].Loss = nan() },
		"wrong system":  func(g *Golden) { g.System = "other" },
	}
	for name, mutate := range cases {
		got := Golden{System: base.System, Seed: base.Seed,
			Iters:  append([]int64(nil), base.Iters...),
			Points: append([]GoldenPoint(nil), base.Points...)}
		mutate(&got)
		if err := CompareGolden(base, got, GoldenTol{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := CompareGolden(base, base, GoldenTol{}); err != nil {
		t.Errorf("identical run rejected: %v", err)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
