// Package testkit is the repo's conformance harness: the machinery that
// proves the DLion reproduction computes the same math everywhere it
// claims to. It provides three gates, all exercised by this package's own
// tests and wired into `make conformance`:
//
//   - Gradcheck (gradcheck.go): every layer's analytic backward pass is
//     validated against central finite differences of the loss.
//   - Cross-mode equivalence (equivalence.go): the same seeded workload is
//     trained once on the discrete-event simulator (internal/cluster) and
//     once on the realtime broker path (internal/realtime), and the final
//     per-variable weights must agree — bit-identical when no reordering
//     occurred, tolerance-bounded where float32 apply order differs.
//   - Golden convergence gates (golden.go): seeded sim runs are compared
//     against committed testdata/golden/*.json snapshots, failing when a
//     change shifts convergence beyond tolerance.
//
// This file holds the shared primitives: exact per-variable weight digests
// and tolerance-bounded weight comparison.
package testkit

import (
	"fmt"
	"math"
	"sort"

	"dlion/internal/lineage"
	"dlion/internal/nn"
	"dlion/internal/tensor"
)

// Digest returns the FNV-1a 64-bit hash of a tensor's exact float32 bit
// patterns (little-endian), preceded by its shape. Two tensors digest
// equally iff they are bitwise identical, including NaN payloads and
// signed zeros. It is the same hash lineage manifests commit to
// (lineage.TensorHash), so a conformance digest and a published checkpoint
// digest are directly comparable.
func Digest(t *tensor.Tensor) uint64 {
	return uint64(lineage.TensorHash(t))
}

// DigestWeights hashes every variable of a weight map independently, so a
// mismatch can be attributed to a single variable.
func DigestWeights(w map[string]*tensor.Tensor) map[string]uint64 {
	out := make(map[string]uint64, len(w))
	for name, t := range w {
		out[name] = Digest(t)
	}
	return out
}

// DigestModel hashes every parameter of a model by name.
func DigestModel(m *nn.Model) map[string]uint64 {
	out := make(map[string]uint64, len(m.Params()))
	for _, p := range m.Params() {
		out[p.Name] = Digest(p.W)
	}
	return out
}

// EqualDigests reports whether two per-variable digest maps are identical:
// same variables, same hashes.
func EqualDigests(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// CompareWeights checks that two weight maps hold the same variables with
// the same shapes and elementwise values within
//
//	|a - b| <= absTol + relTol·max(|a|, |b|)
//
// It returns nil when everything agrees, or an error naming the worst
// offending element. NaN on either side is always a mismatch.
func CompareWeights(a, b map[string]*tensor.Tensor, absTol, relTol float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("testkit: variable count %d vs %d", len(a), len(b))
	}
	names := make([]string, 0, len(a))
	for name := range a {
		if _, ok := b[name]; !ok {
			return fmt.Errorf("testkit: variable %q missing from second map", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var worst struct {
		name   string
		idx    int
		av, bv float64
		excess float64 // how far past the tolerance
	}
	worst.excess = -1
	for _, name := range names {
		ta, tb := a[name], b[name]
		if len(ta.Data) != len(tb.Data) {
			return fmt.Errorf("testkit: %s: length %d vs %d", name, len(ta.Data), len(tb.Data))
		}
		for i := range ta.Data {
			av, bv := float64(ta.Data[i]), float64(tb.Data[i])
			if math.IsNaN(av) || math.IsNaN(bv) {
				return fmt.Errorf("testkit: %s[%d]: NaN (%v vs %v)", name, i, av, bv)
			}
			diff := math.Abs(av - bv)
			tol := absTol + relTol*math.Max(math.Abs(av), math.Abs(bv))
			if diff-tol > worst.excess {
				worst.excess = diff - tol
				worst.name, worst.idx, worst.av, worst.bv = name, i, av, bv
			}
		}
	}
	if worst.excess > 0 {
		return fmt.Errorf("testkit: weights diverge: %s[%d] = %v vs %v (|Δ|=%.3g exceeds tol by %.3g)",
			worst.name, worst.idx, worst.av, worst.bv,
			math.Abs(worst.av-worst.bv), worst.excess)
	}
	return nil
}

// MaxAbsDiff returns the largest elementwise |a-b| across all variables —
// useful for reporting how close an equivalence run actually came.
func MaxAbsDiff(a, b map[string]*tensor.Tensor) float64 {
	worst := 0.0
	for name, ta := range a {
		tb, ok := b[name]
		if !ok || len(ta.Data) != len(tb.Data) {
			return math.Inf(1)
		}
		for i := range ta.Data {
			d := math.Abs(float64(ta.Data[i]) - float64(tb.Data[i]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
