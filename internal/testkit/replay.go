package testkit

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dlion/internal/grad"
	"dlion/internal/lineage"
	"dlion/internal/tensor"
)

// Replay support: the bridge between the equivalence harness and lineage
// manifests. CheckpointSegment runs a seeded ordered-apply training segment
// and publishes its result as a (checkpoint, manifest) pair; Audit takes a
// manifest back, re-executes the segment it describes on a chosen substrate,
// and confirms the published digests bit-exactly. dlion-audit is a thin CLI
// over these two functions.

// ReplayConfig describes one deterministic training segment in manifest
// terms. It is the information a lineage.Manifest carries (Replay descriptor
// + Iter/Seed/Worker), expressed as the harness input that reproduces it.
type ReplayConfig struct {
	Substrate lineage.Substrate // where to execute ("sim" or "realtime")
	Workers   int               // worker-group size (>= 2)
	Worker    int               // the replica whose weights are checkpointed
	Steps     int64             // iterations per worker
	Seed      uint64            // data + partition seed (replicas init from Seed+1000)
	Sparse    bool              // Max-N sparse exchange instead of dense
	Quant     string            // wire precision: "", "f16", or "i8"
}

// equivalence translates the replay terms into the harness workload. Every
// replayable segment runs Ordered: that is the discipline that makes the
// digest a pure function of (config, seed, steps) on either substrate.
func (rc ReplayConfig) equivalence() (EquivalenceConfig, error) {
	ec := EquivalenceConfig{
		N: rc.Workers, Steps: rc.Steps, Seed: rc.Seed,
		Sparse: rc.Sparse, Ordered: true,
	}
	switch rc.Quant {
	case "":
	case "f16":
		ec.Quant = grad.PrecF16
	case "i8":
		ec.Quant = grad.PrecI8
	default:
		return ec, fmt.Errorf("testkit: replay quant %q", rc.Quant)
	}
	if rc.Worker < 0 || rc.Worker >= rc.Workers {
		return ec, fmt.Errorf("testkit: replay worker %d outside group [0,%d)", rc.Worker, rc.Workers)
	}
	return ec, nil
}

// Run executes the segment on the configured substrate and returns the
// audited worker's final weights.
func (rc ReplayConfig) Run(ctx context.Context) (map[string]*tensor.Tensor, error) {
	ec, err := rc.equivalence()
	if err != nil {
		return nil, err
	}
	var res *EquivalenceResult
	switch rc.Substrate {
	case lineage.SubstrateSim:
		res, err = RunSim(ec)
	case lineage.SubstrateRealtime:
		res, err = RunRealtime(ctx, ec)
	default:
		return nil, fmt.Errorf("testkit: replay substrate %q", rc.Substrate)
	}
	if err != nil {
		return nil, err
	}
	return res.Weights[rc.Worker], nil
}

// CheckpointSegment runs the segment and publishes the result: the audited
// worker's checkpoint bytes plus the lineage manifest committing to them.
// A non-nil parent chains the manifest to a previous segment's (manifests
// chain by digest; the audit verifies the parent by a second, shorter
// replay — under the ordered discipline the state at iteration k of a long
// run is bit-identical to the final state of a Steps=k run).
func CheckpointSegment(ctx context.Context, rc ReplayConfig, parent *lineage.Manifest) ([]byte, *lineage.Manifest, error) {
	ec, err := rc.equivalence()
	if err != nil {
		return nil, nil, err
	}
	weights, err := rc.Run(ctx)
	if err != nil {
		return nil, nil, err
	}
	model := ec.spec().Build()
	if err := model.SetWeights(weights); err != nil {
		return nil, nil, fmt.Errorf("testkit: checkpoint segment: %w", err)
	}
	cfg := ec.workerSystem(rc.Worker).Fingerprint()
	man := &lineage.Manifest{
		Schema:     lineage.Schema,
		Model:      model.ModelName,
		Digest:     lineage.WeightsHash(weights),
		Vars:       lineage.VarHashes(weights),
		Iter:       rc.Steps,
		Worker:     rc.Worker,
		Config:     cfg,
		ConfigHash: lineage.Fingerprint(cfg),
		Seed:       rc.Seed,
		Precision:  precisionName(rc.Quant),
		Replay: &lineage.Replay{
			Substrate: rc.Substrate,
			Workers:   rc.Workers,
			Sparse:    rc.Sparse,
			Quant:     rc.Quant,
		},
	}
	man.Link(parent)
	if err := man.Validate(); err != nil {
		return nil, nil, err
	}
	return model.Checkpoint(), man, nil
}

func precisionName(quant string) string {
	switch quant {
	case "f16":
		return "f16"
	case "i8":
		return "int8"
	}
	return "f32"
}

// Audit re-executes the segment a manifest describes on the given substrate
// and verifies every commitment bit-exactly: the combined digest, each
// per-variable digest (so a mismatch names the variable), the config
// fingerprint, and — when the manifest is chained — the parent digest, by a
// second replay truncated at ParentIter. A nil error means the manifest's
// weights are exactly what the seeded segment produces.
func Audit(ctx context.Context, man *lineage.Manifest, substrate lineage.Substrate) error {
	if err := man.Validate(); err != nil {
		return err
	}
	if man.Replay == nil {
		return lineage.ErrNotReplayable
	}
	rc := ReplayConfig{
		Substrate: substrate,
		Workers:   man.Replay.Workers,
		Worker:    man.Worker,
		Steps:     man.Iter,
		Seed:      man.Seed,
		Sparse:    man.Replay.Sparse,
		Quant:     man.Replay.Quant,
	}
	ec, err := rc.equivalence()
	if err != nil {
		return err
	}
	if man.ConfigHash != 0 {
		cfg := ec.workerSystem(rc.Worker).Fingerprint()
		if got := lineage.Fingerprint(cfg); got != man.ConfigHash {
			return fmt.Errorf("testkit: audit: config fingerprint %s, manifest commits to %s (config drift: %q)",
				got, man.ConfigHash, cfg)
		}
	}
	weights, err := rc.Run(ctx)
	if err != nil {
		return fmt.Errorf("testkit: audit replay: %w", err)
	}
	if got := lineage.WeightsHash(weights); got != man.Digest {
		return fmt.Errorf("testkit: audit: replay digest %s, manifest publishes %s%s",
			got, man.Digest, blameVars(weights, man.Vars))
	}
	if man.Parent != 0 {
		prc := rc
		prc.Steps = man.ParentIter
		pw, err := prc.Run(ctx)
		if err != nil {
			return fmt.Errorf("testkit: audit parent replay: %w", err)
		}
		if got := lineage.WeightsHash(pw); got != man.Parent {
			return fmt.Errorf("testkit: audit: parent replay digest %s at iter %d, manifest claims parent %s",
				got, man.ParentIter, man.Parent)
		}
	}
	return nil
}

// blameVars names the variables whose per-variable digests disagree with the
// replayed weights — empty when the manifest carried no Vars map.
func blameVars(weights map[string]*tensor.Tensor, vars map[string]lineage.Hash) string {
	if len(vars) == 0 {
		return ""
	}
	got := lineage.VarHashes(weights)
	var bad []string
	for name, h := range got {
		if vars[name] != h {
			bad = append(bad, name)
		}
	}
	if len(bad) == 0 {
		return " (per-variable digests all agree: combined-digest forgery)"
	}
	sort.Strings(bad)
	return " (diverging variables: " + strings.Join(bad, ", ") + ")"
}
