package testkit

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dlion/internal/cluster"
	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/fault"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/queue"
	"dlion/internal/realtime"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
	"dlion/internal/tensor"
)

// Churn equivalence: the same seeded SyncFull workload with one worker
// departing mid-run, executed on the simulator and over a live TCP broker.
//
// A time-scheduled leave lands on a substrate-dependent iteration, so the
// harness uses the step-exact trigger instead (fault.Leave.AfterIters /
// core Membership.LeaveAfterIters): the leaver departs after completing
// exactly LeaveAfter iterations — its final gradient broadcast included —
// on both substrates. That pins the leave side bit-for-bit: iteration
// count, gradient fan-out, terminal state. The survivors' side is verified
// structurally (iteration budget, final roster, epoch count, and the exact
// renormalization invariant within each substrate) rather than by weight
// comparison: the tombstone's arrival iteration is timing-dependent, so
// the divisor under which late pre-leave gradients apply may differ
// between substrates — a real property of asynchronous membership, not a
// bug the gate should reject.

// ChurnConfig describes one cross-mode churn workload.
type ChurnConfig struct {
	N          int    // workers (>= 3, so survivors still exchange)
	Steps      int64  // survivor iteration budget (MaxIters)
	Leaver     int    // id of the departing worker
	LeaveAfter int64  // leaver departs after exactly this many iterations
	Seed       uint64 // data + partition seed; replicas init from Seed+1000
}

func (c ChurnConfig) validate() error {
	if c.N < 3 || c.Steps < 1 {
		return fmt.Errorf("testkit: churn needs N >= 3 and Steps >= 1, got N=%d Steps=%d",
			c.N, c.Steps)
	}
	if c.Leaver < 0 || c.Leaver >= c.N {
		return fmt.Errorf("testkit: churn leaver %d outside [0,%d)", c.Leaver, c.N)
	}
	if c.LeaveAfter < 1 || c.LeaveAfter >= c.Steps {
		return fmt.Errorf("testkit: churn leave point %d outside [1,%d)", c.LeaveAfter, c.Steps)
	}
	return nil
}

func (c ChurnConfig) equivalence() EquivalenceConfig {
	return EquivalenceConfig{N: c.N, Steps: c.Steps, Seed: c.Seed}
}

// ChurnResult is one substrate's outcome.
type ChurnResult struct {
	Iters      []int64
	Stats      []core.Stats
	States     []core.MemberState
	Membership [][]core.EpochChange
	Rosters    [][]int
	FifoDrops  int64 // realtime only: frames shed from send FIFOs (must be 0)
}

// CheckRenormalization verifies the exact gradient fan-out invariant over
// one worker's membership log: between consecutive epoch entries — and
// from the last entry to the end of the run — the worker sent exactly
// ΔIter·(Size-1) gradient messages, Size being the roster the earlier
// entry established. Holds whenever the live-peer set equals the roster
// (no liveness expiries during the run).
func CheckRenormalization(log []core.EpochChange, finalIters, finalGradMsgs int64) error {
	if len(log) == 0 {
		return fmt.Errorf("testkit: empty membership log")
	}
	check := func(prev core.EpochChange, iters, grads int64, upto string) error {
		want := prev.GradMsgsSent + (iters-prev.Iter)*int64(prev.Size-1)
		if grads != want {
			return fmt.Errorf("testkit: epoch %d(%s)→%s: %d gradient msgs, want %d (size %d, iters %d→%d)",
				prev.Epoch, prev.Reason, upto, grads, want, prev.Size, prev.Iter, iters)
		}
		return nil
	}
	for i := 1; i < len(log); i++ {
		if err := check(log[i-1], log[i].Iter, log[i].GradMsgsSent, log[i].Reason); err != nil {
			return err
		}
	}
	return check(log[len(log)-1], finalIters, finalGradMsgs, "end")
}

// CheckChurn validates one substrate's run against the step-exact churn
// contract: the leaver departed at exactly the configured iteration with a
// full gradient fan-out behind it, every survivor spent its whole budget
// on the renormalized roster, and the fan-out invariant holds on every
// worker's epoch log.
func CheckChurn(c ChurnConfig, r *ChurnResult) error {
	if r.States[c.Leaver] != core.StateLeft {
		return fmt.Errorf("testkit: leaver state %v, want left", r.States[c.Leaver])
	}
	if r.Iters[c.Leaver] != c.LeaveAfter {
		return fmt.Errorf("testkit: leaver completed %d iterations, want exactly %d",
			r.Iters[c.Leaver], c.LeaveAfter)
	}
	if want := c.LeaveAfter * int64(c.N-1); r.Stats[c.Leaver].GradMsgsSent != want {
		return fmt.Errorf("testkit: leaver sent %d gradient msgs, want exactly %d",
			r.Stats[c.Leaver].GradMsgsSent, want)
	}
	for i := 0; i < c.N; i++ {
		if i == c.Leaver {
			continue
		}
		if r.States[i] != core.StateActive {
			return fmt.Errorf("testkit: survivor %d state %v, want active", i, r.States[i])
		}
		if r.Iters[i] != c.Steps {
			return fmt.Errorf("testkit: survivor %d completed %d/%d iterations",
				i, r.Iters[i], c.Steps)
		}
		if len(r.Rosters[i]) != c.N-1 {
			return fmt.Errorf("testkit: survivor %d roster %v still has %d members, want %d",
				i, r.Rosters[i], len(r.Rosters[i]), c.N-1)
		}
		last := r.Membership[i][len(r.Membership[i])-1]
		if last.Epoch != 1 || last.Reason != "leave" {
			return fmt.Errorf("testkit: survivor %d final epoch entry %+v, want epoch 1 via leave", i, last)
		}
	}
	for i := 0; i < c.N; i++ {
		if err := CheckRenormalization(r.Membership[i], r.Iters[i], r.Stats[i].GradMsgsSent); err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}
	return nil
}

// RunChurnSim executes the churn workload on the discrete-event simulator.
func RunChurnSim(c ChurnConfig) (*ChurnResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	defer tensor.SetDeterministic(tensor.SetDeterministic(true))

	eq := c.equivalence()
	horizon := float64(c.Steps)*2 + 20
	computes := make([]*simcompute.Compute, c.N)
	for i := range computes {
		computes[i] = simcompute.New(simcompute.Constant(12),
			simcompute.CostModel{Overhead: 0.05, PerSample: 0.5}, uint64(i))
	}
	res, err := cluster.Run(cluster.Config{
		System:     eq.system(),
		Model:      nn.CipherSpec(1, 8, 8, 3, 0), // seed overwritten to Seed+1000 by cluster.Run
		Data:       eq.dataConfig(),
		N:          c.N,
		Computes:   computes,
		Network:    simnet.Uniform(c.N, simcompute.Constant(200), 0.001),
		Horizon:    horizon,
		EvalPeriod: horizon, // evaluation is read-only; keep it out of the way
		Seed:       c.Seed,
		Faults: &fault.Schedule{
			Leaves: []fault.Leave{{Worker: c.Leaver, AfterIters: c.LeaveAfter}},
		},
	})
	if err != nil {
		return nil, err
	}
	return &ChurnResult{Iters: res.Iters, Stats: res.Stats, States: res.States,
		Membership: res.Membership, Rosters: res.Rosters}, nil
}

// RunChurnRealtime executes the same workload against a live TCP broker
// (queue.Serve + ClientTransport), the full production message path. It
// additionally reports the send-FIFO shed count: a graceful leave must
// drop zero in-flight frames, and under SyncFull the survivors can only
// finish their budget if the tombstone and every pre-leave gradient
// actually arrived.
func RunChurnRealtime(ctx context.Context, c ChurnConfig) (*ChurnResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	defer tensor.SetDeterministic(tensor.SetDeterministic(true))

	eq := c.equivalence()
	train, _, err := data.Generate(eq.dataConfig())
	if err != nil {
		return nil, err
	}
	shards, err := data.Partition(train, c.N, c.Seed)
	if err != nil {
		return nil, err
	}

	b := queue.NewBroker()
	defer b.Close()
	srv, err := queue.Serve(b, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	transports := make([]*realtime.ClientTransport, c.N)
	nodes := make([]*realtime.Node, c.N)
	for i := range nodes {
		transports[i], err = realtime.NewClientTransport(srv.Addr(), i)
		if err != nil {
			return nil, err
		}
		sys := eq.system()
		if i == c.Leaver {
			sys.Membership.LeaveAfterIters = c.LeaveAfter
		}
		nodes[i], err = realtime.NewNode(realtime.Config{
			ID: i, N: c.N, System: sys, Spec: eq.spec(),
			Shard: shards[i], Transport: transports[i], Metrics: reg,
		})
		if err != nil {
			return nil, err
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	runErr := make(chan error, c.N)
	for _, nd := range nodes {
		wg.Add(1)
		go func(nd *realtime.Node) {
			defer wg.Done()
			if err := nd.Run(runCtx); err != nil {
				runErr <- err
			}
		}(nd)
	}

	// Settled: the leaver has left, every survivor spent its budget.
	settled := func(i int, nd *realtime.Node) (bool, error) {
		var done bool
		err := nd.Inspect(ctx, func(w *core.Worker) {
			if i == c.Leaver {
				done = w.State() == core.StateLeft
			} else {
				done = w.Iter() == c.Steps
			}
		})
		return done, err
	}
	for i, nd := range nodes {
		for {
			done, err := settled(i, nd)
			if err != nil {
				return nil, fmt.Errorf("testkit: churn realtime poll: %w", err)
			}
			if done {
				break
			}
			select {
			case err := <-runErr:
				return nil, fmt.Errorf("testkit: churn realtime node: %w", err)
			case <-ctx.Done():
				return nil, fmt.Errorf("testkit: churn realtime run: %w", ctx.Err())
			case <-time.After(2 * time.Millisecond):
			}
		}
	}

	out := &ChurnResult{
		Iters:      make([]int64, c.N),
		Stats:      make([]core.Stats, c.N),
		States:     make([]core.MemberState, c.N),
		Membership: make([][]core.EpochChange, c.N),
		Rosters:    make([][]int, c.N),
	}
	for i, nd := range nodes {
		i := i
		err := nd.Inspect(ctx, func(w *core.Worker) {
			out.Iters[i] = w.Iter()
			out.Stats[i] = w.Stats()
			out.States[i] = w.State()
			out.Membership[i] = w.MembershipLog()
			out.Rosters[i] = w.Members()
		})
		if err != nil {
			return nil, fmt.Errorf("testkit: churn realtime snapshot: %w", err)
		}
	}
	cancel()
	wg.Wait()
	for i, nd := range nodes {
		if !nd.FlushSends(5 * time.Second) {
			return nil, fmt.Errorf("testkit: node %d send queues never drained", i)
		}
	}
	for _, tr := range transports {
		if err := tr.Close(); err != nil {
			return nil, err
		}
	}
	out.FifoDrops = reg.Counter("realtime.fifo_drops").Load()
	return out, nil
}
