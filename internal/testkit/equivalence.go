package testkit

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dlion/internal/cluster"
	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/grad"
	"dlion/internal/nn"
	"dlion/internal/queue"
	"dlion/internal/realtime"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
	"dlion/internal/tensor"
)

// EquivalenceConfig describes one cross-mode workload: the same seeded
// Cipher training job, run for exactly Steps iterations per worker on
// either substrate. SyncFull with fixed batching makes the gradient
// *sequence* timing-independent — worker j's iteration k+1 always sees
// exactly rounds 1..k from every peer — so the two substrates may differ
// only in float32 apply order (and, for sparse exchange, in threshold
// flips that order-induced drift causes near the Max-N cutoff).
type EquivalenceConfig struct {
	N      int    // workers (>= 2)
	Steps  int64  // iterations per worker (the MaxIters budget)
	Seed   uint64 // data + partition seed; replicas init from Seed+1000
	Sparse bool   // Max-N (GQ) selection instead of dense Full exchange

	// Quant fixes the wire precision every worker sends at (grad.PrecF32,
	// the zero value, keeps the exchange unquantized). Quantization is
	// deterministic, so equivalence bounds hold the same way they do for
	// sparse selection: the dequantized image is identical on both
	// substrates, and only order-induced drift can flip individual codes.
	Quant grad.Precision

	// QuantMix, when non-nil (len N), gives each worker its own fixed wire
	// precision — the mixed-precision-peers interop workload. Overrides
	// Quant.
	QuantMix []grad.Precision

	// Ordered runs the workload under core.Config.OrderedApply: peer
	// gradients apply at the sync barrier in (round, worker-id) order
	// instead of arrival order. This removes the one freedom the substrates
	// have left — float32 apply order — so final weights are bit-identical
	// across sim and realtime, which is what the lineage audit replays
	// rely on.
	Ordered bool
}

// EquivalenceResult is one substrate's outcome: per-worker final weights
// (deep copies), iteration counts, and message counters.
type EquivalenceResult struct {
	Weights []map[string]*tensor.Tensor
	Iters   []int64
	Stats   []core.Stats
}

// system builds the shared core config: SyncFull, fixed batching, no DKT,
// no link budgets — the deterministic-math subset both substrates must
// agree on.
func (c EquivalenceConfig) system() core.Config {
	sel := func() grad.Selector { return grad.Full{} }
	name := "eq-dense"
	if c.Sparse {
		sel = func() grad.Selector { return grad.NewMaxN(60) }
		name = "eq-sparse"
	}
	switch c.Quant {
	case grad.PrecF16:
		name += "-f16"
	case grad.PrecI8:
		name += "-i8"
	}
	if c.QuantMix != nil {
		name += "-mixed"
	}
	if c.Ordered {
		name += "-ordered"
	}
	return core.Config{
		Name:         name,
		LearningRate: 0.05,
		NewSelector:  sel,
		Sync:         core.SyncConfig{Mode: core.SyncFull},
		Batch:        core.BatchConfig{InitialLBS: 8},
		MaxIters:     c.Steps,
		Quant:        core.QuantConfig{Precision: c.Quant},
		OrderedApply: c.Ordered,
	}
}

// workerSystem is worker id's final core config: the shared system with the
// per-worker precision override applied.
func (c EquivalenceConfig) workerSystem(id int) core.Config {
	sys := c.system()
	if c.QuantMix != nil {
		sys.Quant.Precision = c.QuantMix[id]
	}
	return sys
}

func (c EquivalenceConfig) dataConfig() data.Config {
	return data.Config{Name: "eq", NumClasses: 3, Train: 240, Test: 60,
		Channels: 1, Height: 8, Width: 8, Noise: 0.35, Jitter: 0, Bumps: 3,
		Seed: c.Seed}
}

func (c EquivalenceConfig) spec() nn.Spec {
	// Mirrors cluster.Run's replica-init convention: spec seed = Seed+1000.
	return nn.CipherSpec(1, 8, 8, 3, c.Seed+1000)
}

func (c EquivalenceConfig) validate() error {
	if c.N < 2 || c.Steps < 1 {
		return fmt.Errorf("testkit: equivalence needs N >= 2 and Steps >= 1, got N=%d Steps=%d",
			c.N, c.Steps)
	}
	if c.QuantMix != nil && len(c.QuantMix) != c.N {
		return fmt.Errorf("testkit: QuantMix has %d entries for %d workers", len(c.QuantMix), c.N)
	}
	return nil
}

// RunSim executes the workload on the discrete-event simulator via
// cluster.Run and returns the final weights. Kernel execution is forced
// into deterministic-reduction mode for the duration of the run.
func RunSim(c EquivalenceConfig) (*EquivalenceResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	defer tensor.SetDeterministic(tensor.SetDeterministic(true))

	// Round time ≈ overhead + perSample·LBS/capacity + transfer; with the
	// constants below one SyncFull round is well under a virtual second,
	// so the horizon leaves generous slack for Steps rounds.
	horizon := float64(c.Steps)*2 + 20
	computes := make([]*simcompute.Compute, c.N)
	for i := range computes {
		computes[i] = simcompute.New(simcompute.Constant(12),
			simcompute.CostModel{Overhead: 0.05, PerSample: 0.5}, uint64(i))
	}
	clusterCfg := cluster.Config{
		System:     c.system(),
		Model:      nn.CipherSpec(1, 8, 8, 3, 0), // seed overwritten to Seed+1000 by cluster.Run
		Data:       c.dataConfig(),
		N:          c.N,
		Computes:   computes,
		Network:    simnet.Uniform(c.N, simcompute.Constant(200), 0.001),
		Horizon:    horizon,
		EvalPeriod: horizon, // evaluation is read-only; keep it out of the way
		Seed:       c.Seed,
	}
	if c.QuantMix != nil {
		clusterCfg.PerWorker = func(id int, wc core.Config) core.Config {
			wc.Quant.Precision = c.QuantMix[id]
			return wc
		}
	}
	res, err := cluster.Run(clusterCfg)
	if err != nil {
		return nil, err
	}
	out := &EquivalenceResult{Iters: res.Iters, Stats: res.Stats}
	for i, m := range res.Models {
		if res.Iters[i] != c.Steps {
			return nil, fmt.Errorf("testkit: sim worker %d finished %d/%d iterations (horizon too short?)",
				i, res.Iters[i], c.Steps)
		}
		out.Weights = append(out.Weights, m.Weights())
	}
	return out, nil
}

// RunRealtime executes the same workload over wall time: one realtime.Node
// per worker, all connected through an in-process broker. It mirrors
// cluster.Run's setup exactly — same data config, same Partition seed,
// same replica-init seed — then polls each node (on its event loop, via
// Inspect) until the iteration budget is spent and every peer's final
// gradients have landed, and snapshots the weights before shutdown.
func RunRealtime(ctx context.Context, c EquivalenceConfig) (*EquivalenceResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	defer tensor.SetDeterministic(tensor.SetDeterministic(true))

	train, _, err := data.Generate(c.dataConfig())
	if err != nil {
		return nil, err
	}
	shards, err := data.Partition(train, c.N, c.Seed)
	if err != nil {
		return nil, err
	}

	b := queue.NewBroker()
	defer b.Close()
	nodes := make([]*realtime.Node, c.N)
	for i := range nodes {
		nodes[i], err = realtime.NewNode(realtime.Config{
			ID: i, N: c.N, System: c.workerSystem(i), Spec: c.spec(),
			Shard: shards[i], Transport: realtime.NewBrokerTransport(b, i),
		})
		if err != nil {
			return nil, err
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	runErr := make(chan error, c.N)
	for _, nd := range nodes {
		wg.Add(1)
		go func(nd *realtime.Node) {
			defer wg.Done()
			if err := nd.Run(runCtx); err != nil {
				runErr <- err
			}
		}(nd)
	}

	// A node is settled when it spent its own budget AND heard every
	// peer's gradient for every round — one TypeGradient per peer per
	// iteration is the only traffic in this configuration, so the count
	// is exact: (N-1)·Steps.
	wantMsgs := int64(c.N-1) * c.Steps
	settled := func(nd *realtime.Node) (bool, error) {
		var done bool
		err := nd.Inspect(ctx, func(w *core.Worker) {
			done = w.Iter() == c.Steps && w.Stats().MsgsRecvd == wantMsgs
		})
		return done, err
	}
	for _, nd := range nodes {
		for {
			done, err := settled(nd)
			if err != nil {
				return nil, fmt.Errorf("testkit: realtime poll: %w", err)
			}
			if done {
				break
			}
			select {
			case err := <-runErr:
				return nil, fmt.Errorf("testkit: realtime node: %w", err)
			case <-ctx.Done():
				return nil, fmt.Errorf("testkit: realtime run: %w", ctx.Err())
			case <-time.After(2 * time.Millisecond):
			}
		}
	}

	// Everything settled: snapshot on each node's event loop, then stop.
	out := &EquivalenceResult{
		Weights: make([]map[string]*tensor.Tensor, c.N),
		Iters:   make([]int64, c.N),
		Stats:   make([]core.Stats, c.N),
	}
	for i, nd := range nodes {
		i := i
		err := nd.Inspect(ctx, func(w *core.Worker) {
			out.Weights[i] = w.Model().Weights()
			out.Iters[i] = w.Iter()
			out.Stats[i] = w.Stats()
		})
		if err != nil {
			return nil, fmt.Errorf("testkit: realtime snapshot: %w", err)
		}
	}
	cancel()
	wg.Wait()
	return out, nil
}
