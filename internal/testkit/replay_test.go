package testkit

import (
	"context"
	"testing"
	"time"

	"dlion/internal/lineage"
)

// TestOrderedBitExactAcrossSubstrates is the foundation the lineage audit
// stands on: under the ordered-apply discipline the simulator and the
// realtime broker must produce bit-identical final weights — not
// tolerance-close, identical. Without Ordered the same workload is only
// tolerance-bounded (see equivalence_test.go), because apply order differs.
func TestOrderedBitExactAcrossSubstrates(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, tc := range []struct {
		name string
		cfg  EquivalenceConfig
	}{
		{"dense", EquivalenceConfig{N: 2, Steps: 6, Seed: 42, Ordered: true}},
		{"sparse-3w", EquivalenceConfig{N: 3, Steps: 5, Seed: 7, Sparse: true, Ordered: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := RunSim(tc.cfg)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			rt, err := RunRealtime(ctx, tc.cfg)
			if err != nil {
				t.Fatalf("realtime: %v", err)
			}
			for i := range sim.Weights {
				a, b := DigestWeights(sim.Weights[i]), DigestWeights(rt.Weights[i])
				if !EqualDigests(a, b) {
					t.Errorf("worker %d: sim and realtime digests differ: %v vs %v", i, a, b)
				}
			}
		})
	}
}

// TestOrderedPrefixProperty checks the truncation identity parent
// verification relies on: the state at iteration k of a Steps=n run equals
// the final state of a Steps=k run (same seed, same group). dlion-audit
// verifies a manifest's Parent digest by exactly this second, shorter
// replay.
func TestOrderedPrefixProperty(t *testing.T) {
	// The identity is checked through CheckpointSegment's chain: a parent at
	// iteration 4 and a child at 10 must audit cleanly, which replays both
	// lengths and compares digests.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rc := ReplayConfig{Substrate: lineage.SubstrateSim, Workers: 2, Worker: 1, Steps: 4, Seed: 11}
	_, parent, err := CheckpointSegment(ctx, rc, nil)
	if err != nil {
		t.Fatalf("parent segment: %v", err)
	}
	rc.Steps = 10
	_, child, err := CheckpointSegment(ctx, rc, parent)
	if err != nil {
		t.Fatalf("child segment: %v", err)
	}
	if err := lineage.VerifyLink(parent, child); err != nil {
		t.Fatalf("link: %v", err)
	}
	if err := Audit(ctx, child, lineage.SubstrateSim); err != nil {
		t.Fatalf("audit (sim replay, incl. parent at iter 4): %v", err)
	}
	if err := Audit(ctx, child, lineage.SubstrateRealtime); err != nil {
		t.Fatalf("audit (realtime replay): %v", err)
	}
}

// TestAuditDetectsMutation is the mutation self-test of the acceptance
// criteria: a manifest whose digest commits to weights with a single flipped
// value, or whose parent digest is forged, must fail the audit.
func TestAuditDetectsMutation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rc := ReplayConfig{Substrate: lineage.SubstrateSim, Workers: 2, Worker: 0, Steps: 5, Seed: 3}
	_, man, err := CheckpointSegment(ctx, rc, nil)
	if err != nil {
		t.Fatalf("segment: %v", err)
	}

	t.Run("clean", func(t *testing.T) {
		if err := Audit(ctx, man, lineage.SubstrateSim); err != nil {
			t.Fatalf("clean audit failed: %v", err)
		}
	})
	t.Run("mutated-weight", func(t *testing.T) {
		// Honest re-digest over dishonest weights: recompute the manifest
		// from mutated weights, as a trainer that diverged (or tampered)
		// would publish.
		weights, err := rc.Run(ctx)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		for _, tt := range weights {
			tt.Data[0] += 1e-3
			break
		}
		forged := *man
		forged.Digest = lineage.WeightsHash(weights)
		forged.Vars = lineage.VarHashes(weights)
		if err := Audit(ctx, &forged, lineage.SubstrateSim); err == nil {
			t.Fatal("audit accepted a mutated weight")
		} else {
			t.Logf("mutation detected: %v", err)
		}
	})
	t.Run("forged-parent", func(t *testing.T) {
		rc2 := rc
		rc2.Steps = 9
		_, child, err := CheckpointSegment(ctx, rc2, man)
		if err != nil {
			t.Fatalf("child segment: %v", err)
		}
		child.Parent ^= 1 // single flipped bit in the chain link
		if err := Audit(ctx, child, lineage.SubstrateSim); err == nil {
			t.Fatal("audit accepted a forged parent digest")
		} else {
			t.Logf("forgery detected: %v", err)
		}
	})
}
