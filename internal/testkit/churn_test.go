package testkit

import (
	"context"
	"errors"
	"io/fs"
	"path/filepath"
	"testing"
	"time"

	"dlion/internal/cluster"
	"dlion/internal/core"
	"dlion/internal/data"
	"dlion/internal/fault"
	"dlion/internal/nn"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
	"dlion/internal/systems"
	"dlion/internal/tensor"
)

// TestChurnEquivalence runs the same seeded SyncFull workload with a
// mid-run graceful leave on the simulator and against a live TCP broker,
// and requires the step-exact churn contract to hold on both: the leaver
// departs at exactly the configured iteration with a full gradient fan-out
// behind it, survivors spend their whole budget on the renormalized
// roster, the fan-out invariant holds on every epoch log, and — realtime
// only — not a single in-flight frame is shed on the way out.
func TestChurnEquivalence(t *testing.T) {
	cfg := ChurnConfig{N: 3, Steps: 16, Leaver: 2, LeaveAfter: 8, Seed: 7}

	sim, err := RunChurnSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckChurn(cfg, sim); err != nil {
		t.Fatalf("sim: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), budget(90*time.Second))
	defer cancel()
	rt, err := RunChurnRealtime(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckChurn(cfg, rt); err != nil {
		t.Fatalf("realtime: %v", err)
	}
	if rt.FifoDrops != 0 {
		t.Fatalf("realtime shed %d frames; a graceful leave must drop zero in-flight messages", rt.FifoDrops)
	}

	// The contract pins the leave side to the same numbers on both
	// substrates; spell the cross-substrate equalities out anyway so a
	// future loosening of CheckChurn cannot silently weaken this gate.
	if sim.Iters[cfg.Leaver] != rt.Iters[cfg.Leaver] {
		t.Fatalf("leaver iterations sim=%d realtime=%d", sim.Iters[cfg.Leaver], rt.Iters[cfg.Leaver])
	}
	if sim.Stats[cfg.Leaver].GradMsgsSent != rt.Stats[cfg.Leaver].GradMsgsSent {
		t.Fatalf("leaver fan-out sim=%d realtime=%d",
			sim.Stats[cfg.Leaver].GradMsgsSent, rt.Stats[cfg.Leaver].GradMsgsSent)
	}
	for i := 0; i < cfg.N; i++ {
		if i == cfg.Leaver {
			continue
		}
		if len(sim.Rosters[i]) != len(rt.Rosters[i]) {
			t.Fatalf("survivor %d roster sim=%v realtime=%v", i, sim.Rosters[i], rt.Rosters[i])
		}
		for k := range sim.Rosters[i] {
			if sim.Rosters[i][k] != rt.Rosters[i][k] {
				t.Fatalf("survivor %d roster sim=%v realtime=%v", i, sim.Rosters[i], rt.Rosters[i])
			}
		}
	}
}

// TestChurnConfigValidate pins the harness's own input checking.
func TestChurnConfigValidate(t *testing.T) {
	bad := []ChurnConfig{
		{N: 2, Steps: 8, Leaver: 1, LeaveAfter: 4}, // survivors must still exchange
		{N: 3, Steps: 8, Leaver: 3, LeaveAfter: 4}, // leaver out of range
		{N: 3, Steps: 8, Leaver: 0, LeaveAfter: 8}, // leave point past the budget
		{N: 3, Steps: 8, Leaver: 0, LeaveAfter: 0}, // no leave point
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("bad churn config %d accepted: %+v", i, c)
		}
	}
}

// TestCheckRenormalizationRejects: the invariant gate must actually bite.
func TestCheckRenormalizationRejects(t *testing.T) {
	log := []core.EpochChange{
		{Epoch: 0, Size: 3, Iter: 0, GradMsgsSent: 0, Reason: "seed"},
		{Epoch: 1, Size: 2, Iter: 8, GradMsgsSent: 16, Reason: "leave"},
	}
	if err := CheckRenormalization(log, 16, 24); err != nil {
		t.Fatalf("exact log rejected: %v", err)
	}
	if err := CheckRenormalization(log, 16, 25); err == nil {
		t.Fatal("over-count accepted")
	}
	if err := CheckRenormalization(log, 16, 23); err == nil {
		t.Fatal("under-count accepted")
	}
	if err := CheckRenormalization(nil, 0, 0); err == nil {
		t.Fatal("empty log accepted")
	}
}

// churnGoldenRun is the elastic sibling of goldenRun: 3 founders on the
// Cipher task, one worker joining a third of the way in and one founder
// leaving two thirds of the way in, fully seeded and bit-deterministic.
func churnGoldenRun(t *testing.T, sys core.Config) Golden {
	t.Helper()
	defer tensor.SetDeterministic(tensor.SetDeterministic(true))
	n := 4
	computes := make([]*simcompute.Compute, n)
	for i := range computes {
		cap := []float64{12, 9, 15, 12}[i]
		computes[i] = simcompute.New(simcompute.Constant(cap),
			simcompute.CostModel{Overhead: 0.05, PerSample: 0.5}, uint64(i))
	}
	res, err := cluster.Run(cluster.Config{
		System: sys,
		Model:  nn.CipherSpec(1, 8, 8, 3, 0),
		Data: data.Config{Name: "golden", NumClasses: 3, Train: 240, Test: 60,
			Channels: 1, Height: 8, Width: 8, Noise: 0.35, Jitter: 0, Bumps: 3,
			Seed: goldenSeed},
		N:          n,
		Computes:   computes,
		Network:    simnet.Uniform(n, simcompute.Constant(200), 0.001),
		Horizon:    36,
		EvalPeriod: 12,
		EvalSubset: 60,
		EvalBatch:  30,
		Seed:       goldenSeed,
		Faults: &fault.Schedule{
			Joins:  []fault.Join{{Worker: 3, At: 12, Sponsor: 0}},
			Leaves: []fault.Leave{{Worker: 1, At: 24}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return GoldenFromResult(sys.Name, goldenSeed, res)
}

// TestGoldenConvergenceUnderChurn gates the elastic scenario against a
// committed snapshot: a join and a leave mid-run must not move convergence
// beyond the same tolerances the static goldens use. Regenerate
// deliberately with -update-golden, like the static snapshots.
func TestGoldenConvergenceUnderChurn(t *testing.T) {
	got := churnGoldenRun(t, systems.DLion())
	path := filepath.Join("testdata", "golden", "dlion-churn.json")
	if *updateGolden {
		if err := SaveGolden(path, got); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d points, final acc %.3f)",
			path, len(got.Points), got.Points[len(got.Points)-1].Acc)
		return
	}
	want, err := LoadGolden(path)
	if errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing %s; regenerate with -update-golden", path)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareGolden(want, got, GoldenTol{}); err != nil {
		t.Fatal(err)
	}
}
