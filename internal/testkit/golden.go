package testkit

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"dlion/internal/cluster"
)

// Golden is a committed convergence snapshot of one seeded simulator run:
// the accuracy/loss timeline plus per-worker iteration counts. Snapshots
// live in testdata/golden/*.json and gate CI — a change that shifts
// convergence beyond GoldenTol fails the golden tests until the snapshot
// is deliberately regenerated with -update-golden (see TESTING.md).
type Golden struct {
	System string        `json:"system"`
	Seed   uint64        `json:"seed"`
	Iters  []int64       `json:"iters"`
	Points []GoldenPoint `json:"points"`
}

// GoldenPoint is one periodic evaluation: virtual time, mean test accuracy
// across workers, and mean test loss.
type GoldenPoint struct {
	T    float64 `json:"t"`
	Acc  float64 `json:"acc"`
	Loss float64 `json:"loss"`
}

// GoldenTol bounds how far a run may drift from its snapshot before the
// gate fails. The simulator is bit-deterministic, so on unchanged code the
// drift is exactly zero; the tolerances exist so benign float32-order
// refactors don't force a regeneration.
type GoldenTol struct {
	Acc      float64 // per-point mean-accuracy tolerance (default 0.05)
	Loss     float64 // per-point mean-loss tolerance (default 0.15)
	IterFrac float64 // per-worker iteration-count tolerance, fractional (default 0.02)
}

func (t GoldenTol) withDefaults() GoldenTol {
	if t.Acc == 0 {
		t.Acc = 0.05
	}
	if t.Loss == 0 {
		t.Loss = 0.15
	}
	if t.IterFrac == 0 {
		t.IterFrac = 0.02
	}
	return t
}

// GoldenFromResult extracts the snapshot-worthy view of a sim run.
func GoldenFromResult(system string, seed uint64, res *cluster.Result) Golden {
	g := Golden{System: system, Seed: seed,
		Iters: append([]int64(nil), res.Iters...)}
	for _, p := range res.Timeline {
		g.Points = append(g.Points, GoldenPoint{T: p.T, Acc: p.Mean, Loss: p.Loss})
	}
	return g
}

// LoadGolden reads a snapshot from disk.
func LoadGolden(path string) (Golden, error) {
	var g Golden
	raw, err := os.ReadFile(path)
	if err != nil {
		return g, err
	}
	if err := json.Unmarshal(raw, &g); err != nil {
		return g, fmt.Errorf("testkit: %s: %w", path, err)
	}
	return g, nil
}

// SaveGolden writes a snapshot, creating parent directories as needed.
func SaveGolden(path string, g Golden) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// CompareGolden checks a fresh run against its snapshot: identical
// structure (worker count, evaluation schedule) and convergence within
// tolerance at every evaluation point.
func CompareGolden(want, got Golden, tol GoldenTol) error {
	tol = tol.withDefaults()
	if want.System != got.System || want.Seed != got.Seed {
		return fmt.Errorf("testkit: golden identity mismatch: %s/%d vs %s/%d",
			want.System, want.Seed, got.System, got.Seed)
	}
	if len(want.Iters) != len(got.Iters) {
		return fmt.Errorf("testkit: golden worker count %d vs %d",
			len(want.Iters), len(got.Iters))
	}
	for i := range want.Iters {
		lim := math.Max(1, tol.IterFrac*float64(want.Iters[i]))
		if math.Abs(float64(want.Iters[i]-got.Iters[i])) > lim {
			return fmt.Errorf("testkit: golden worker %d iterations %d, want %d (±%.0f)",
				i, got.Iters[i], want.Iters[i], lim)
		}
	}
	if len(want.Points) != len(got.Points) {
		return fmt.Errorf("testkit: golden eval count %d vs %d (schedule changed?)",
			len(want.Points), len(got.Points))
	}
	for i, wp := range want.Points {
		gp := got.Points[i]
		switch {
		case math.Abs(wp.T-gp.T) > 1e-9:
			return fmt.Errorf("testkit: golden point %d at t=%v, want t=%v", i, gp.T, wp.T)
		case math.Abs(wp.Acc-gp.Acc) > tol.Acc:
			return fmt.Errorf("testkit: golden point %d (t=%v) accuracy %.4f, want %.4f ±%.3f",
				i, wp.T, gp.Acc, wp.Acc, tol.Acc)
		case math.Abs(wp.Loss-gp.Loss) > tol.Loss || math.IsNaN(gp.Loss):
			return fmt.Errorf("testkit: golden point %d (t=%v) loss %.4f, want %.4f ±%.3f",
				i, wp.T, gp.Loss, wp.Loss, tol.Loss)
		}
	}
	return nil
}
