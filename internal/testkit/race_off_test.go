//go:build !race

package testkit

// raceEnabled scales wall-clock budgets for the race detector's slowdown.
const raceEnabled = false
