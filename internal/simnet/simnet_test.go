package simnet

import (
	"math"
	"testing"

	"dlion/internal/simcompute"
)

func TestUniformMesh(t *testing.T) {
	nw := Uniform(4, simcompute.Constant(100), 0.01)
	if nw.Size() != 4 {
		t.Fatalf("size %d", nw.Size())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			bw, err := nw.BandwidthAt(i, j, 0)
			if err != nil || bw != 100 {
				t.Fatalf("bw(%d,%d) = %v, %v", i, j, bw, err)
			}
		}
	}
}

func TestTransferTime(t *testing.T) {
	nw := Uniform(2, simcompute.Constant(80), 0.02) // 80 Mbps = 10 MB/s
	d, err := nw.TransferTime(0, 1, 10_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 0.01 // 10 MB at 10 MB/s + RTT/2
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("transfer %v, want %v", d, want)
	}
}

func TestTransferSelfIsFree(t *testing.T) {
	nw := Uniform(2, simcompute.Constant(1), 1)
	d, err := nw.TransferTime(1, 1, 1<<30, 0)
	if err != nil || d != 0 {
		t.Fatalf("self transfer %v, %v", d, err)
	}
}

func TestMissingLink(t *testing.T) {
	nw := New(3)
	if _, err := nw.TransferTime(0, 1, 10, 0); err == nil {
		t.Fatal("missing link must error")
	}
	if _, err := nw.BandwidthAt(0, 5, 0); err == nil {
		t.Fatal("out of range must error")
	}
}

func TestDeadLinkCrawls(t *testing.T) {
	nw := New(2)
	nw.SetLink(0, 1, Link{Bandwidth: simcompute.Constant(0)})
	d, err := nw.TransferTime(0, 1, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(d, 1) || d <= 0 {
		t.Fatalf("dead link transfer %v", d)
	}
}

func TestDynamicBandwidth(t *testing.T) {
	nw := New(2)
	nw.SetLink(0, 1, Link{Bandwidth: simcompute.Steps(0, 30, 100, 100)})
	slow, _ := nw.TransferTime(0, 1, 1_000_000, 50)
	fast, _ := nw.TransferTime(0, 1, 1_000_000, 150)
	if math.Abs(slow/fast-100.0/30.0) > 1e-9 {
		t.Fatalf("bandwidth change not reflected: %v vs %v", slow, fast)
	}
}

func TestPerWorkerEgress(t *testing.T) {
	scheds := []simcompute.Schedule{
		simcompute.Constant(50), simcompute.Constant(20),
	}
	nw := PerWorkerEgress(scheds, 0)
	bw01, _ := nw.BandwidthAt(0, 1, 0)
	bw10, _ := nw.BandwidthAt(1, 0, 0)
	if bw01 != 50 || bw10 != 20 {
		t.Fatalf("egress bw %v/%v", bw01, bw10)
	}
}

func TestFromMatrixAsymmetric(t *testing.T) {
	m := [][]float64{
		{0, 190, 181},
		{187, 0, 91},
		{171, 92, 0},
	}
	nw := FromMatrix(m, 0.05)
	bw, _ := nw.BandwidthAt(2, 1, 0)
	if bw != 92 {
		t.Fatalf("bw(2,1) = %v", bw)
	}
	bw, _ = nw.BandwidthAt(1, 2, 0)
	if bw != 91 {
		t.Fatalf("bw(1,2) = %v", bw)
	}
}

func TestFromMatrixRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FromMatrix([][]float64{{0, 1}, {1}}, 0)
}

func TestSelfLinkPanics(t *testing.T) {
	nw := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	nw.SetLink(1, 1, Link{})
}

// TestTransferDuringZeroBandwidthWindow pins the dead-window semantics: a
// link whose schedule drops to zero crawls at the 0.01 Mbps floor instead
// of wedging the simulation, and recovers on the far side of the window.
func TestTransferDuringZeroBandwidthWindow(t *testing.T) {
	nw := Uniform(2, simcompute.Steps(0, 100, 10, 0, 20, 100), 0.002)
	before, err := nw.TransferTime(0, 1, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	inside, err := nw.TransferTime(0, 1, 1000, 15)
	if err != nil {
		t.Fatal(err)
	}
	after, err := nw.TransferTime(0, 1, 1000, 25)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("bandwidth did not recover: %v vs %v", before, after)
	}
	wantInside := 1000/(0.01*1e6/8) + 0.001 // floored bandwidth + RTT/2
	if math.Abs(inside-wantInside) > 1e-12 {
		t.Fatalf("zero-bw transfer %v, want floored %v", inside, wantInside)
	}
	// Window edges: closed on the left, exclusive on the right.
	if got, _ := nw.TransferTime(0, 1, 1000, 10); got != inside {
		t.Fatalf("transfer at window open %v, want %v", got, inside)
	}
	if got, _ := nw.TransferTime(0, 1, 1000, 20); got != before {
		t.Fatalf("transfer at window close %v, want %v", got, before)
	}
	// The monitor must report the raw schedule — zero, not the floor; the
	// floor is transfer-only so budgets see the true (dead) link.
	if bw, err := nw.BandwidthAt(0, 1, 15); err != nil || bw != 0 {
		t.Fatalf("BandwidthAt during window = %v,%v, want 0,nil", bw, err)
	}
}

// TestSingleTickLink drives a link that is alive for a single millisecond
// of virtual time: transfers starting inside the tick use the burst
// bandwidth (sampled at send time), and the surrounding dead schedule uses
// the floor.
func TestSingleTickLink(t *testing.T) {
	nw := Uniform(2, simcompute.Steps(0, 0, 5, 1000, 5.001, 0), 0)
	burst, err := nw.TransferTime(0, 1, 1e6, 5.0005)
	if err != nil {
		t.Fatal(err)
	}
	dead, err := nw.TransferTime(0, 1, 1e6, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantBurst := 1e6 / (1000 * 1e6 / 8)
	if math.Abs(burst-wantBurst) > 1e-12 {
		t.Fatalf("burst transfer %v, want %v", burst, wantBurst)
	}
	wantDead := 1e6 / (0.01 * 1e6 / 8)
	if math.Abs(dead-wantDead) > 1e-9 {
		t.Fatalf("dead transfer %v, want %v", dead, wantDead)
	}
	// A transfer that begins inside the tick keeps its start-time bandwidth
	// even though the window closes mid-transfer (documented approximation).
	late, _ := nw.TransferTime(0, 1, 1e9, 5.0005)
	if math.Abs(late-1e9/(1000*1e6/8)) > 1e-9 {
		t.Fatalf("mid-transfer window close changed the rate: %v", late)
	}
}

// TestScheduleWraparoundBehavior documents that schedules do NOT wrap:
// after the last step the final value holds forever, so periodic capacity
// patterns must be authored explicitly over the experiment horizon.
func TestScheduleWraparoundBehavior(t *testing.T) {
	s := simcompute.Steps(0, 100, 30, 10)
	for _, tt := range []float64{30, 60, 1e6, 1e12} {
		if got := s.At(tt); got != 10 {
			t.Fatalf("At(%v) = %v; schedules must hold the last value, not wrap", tt, got)
		}
	}
	if _, ok := s.NextChange(30); ok {
		t.Fatal("NextChange after the last step must be final")
	}
}

func TestHierarchicalTopology(t *testing.T) {
	// 2 clouds of 3 and 2 workers: ids 0-2 in cloud A, 3-4 in cloud B.
	nw := Hierarchical([]Cloud{
		{Workers: 3, LAN: simcompute.Constant(1000), LANRTT: 0.0002},
		{Workers: 2, LAN: simcompute.Constant(500), LANRTT: 0.0004},
	}, simcompute.Constant(100), 0.03)
	if nw.Size() != 5 {
		t.Fatalf("size %d, want 5", nw.Size())
	}
	cloudOf := func(i int) int {
		if i < 3 {
			return 0
		}
		return 1
	}
	wantBW := map[[2]int]float64{{0, 0}: 1000, {1, 1}: 500}
	wantRTT := map[[2]int]float64{{0, 0}: 0.0002, {1, 1}: 0.0004}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				continue
			}
			l, err := nw.Link(i, j)
			if err != nil {
				t.Fatalf("link %d->%d: %v", i, j, err)
			}
			tier := [2]int{cloudOf(i), cloudOf(j)}
			bw, rtt := 100.0, 0.03 // WAN defaults
			if w, ok := wantBW[tier]; ok {
				bw, rtt = w, wantRTT[tier]
			}
			if got := l.Bandwidth.At(0); got != bw {
				t.Fatalf("bw %d->%d = %v, want %v", i, j, got, bw)
			}
			if l.RTT != rtt {
				t.Fatalf("rtt %d->%d = %v, want %v", i, j, l.RTT, rtt)
			}
		}
	}
}

func TestHierarchicalSharesLinkObjects(t *testing.T) {
	nw := HierarchicalUniform(2, 3, 1000, 100, 0.0002, 0.03)
	lan01, _ := nw.Link(0, 1)
	lan12, _ := nw.Link(1, 2)
	if lan01 != lan12 {
		t.Fatal("intra-cloud links must share one Link object")
	}
	wan03, _ := nw.Link(0, 3)
	wan41, _ := nw.Link(4, 1)
	if wan03 != wan41 {
		t.Fatal("WAN links must share one Link object")
	}
	if lan01 == wan03 {
		t.Fatal("LAN and WAN tiers must be distinct links")
	}
	// Second cloud's LAN is a distinct object from the first cloud's.
	lan34, _ := nw.Link(3, 4)
	if lan34 == lan01 {
		t.Fatal("each cloud owns its own LAN link object")
	}
}

func TestHierarchicalPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("empty cloud", func() {
		Hierarchical([]Cloud{{Workers: 0}}, simcompute.Constant(1), 0)
	})
	assertPanics("no clouds", func() {
		HierarchicalUniform(0, 4, 1, 1, 0, 0)
	})
}
